// Package adsim is a reproduction of "The Architectural Implications of
// Autonomous Driving: Constraints and Acceleration" (Lin et al., ASPLOS
// 2018) as a Go library.
//
// It provides:
//
//   - An end-to-end autonomous driving pipeline with native Go
//     implementations of every engine the paper builds: a YOLO-style object
//     detector, a GOTURN-style tracker pool, an ORB-SLAM-style localizer
//     (oFAST + rBRIEF + prior map + relocalization + loop closing), sensor
//     fusion, lattice motion planners and a rule-based mission planner —
//     see NewPipeline.
//
//   - Calibrated analytical models of the paper's four computing platforms
//     (CPU, GPU, FPGA, ASIC) that regenerate its latency, power and
//     scalability results — see NewModel and Simulate.
//
//   - The paper's design-constraint checks (performance, predictability,
//     storage, thermal, power) — see CheckConstraints.
//
//   - Every table and figure of the paper's evaluation as a runnable
//     experiment — see RunExperiment and the adbench command.
//
// The package is a facade over the internal implementation packages; the
// exported names below are aliases, so values flow freely between the
// facade and the engines.
package adsim

import (
	"io"
	"time"

	"adsim/internal/accel"
	"adsim/internal/constraint"
	"adsim/internal/dnn"
	"adsim/internal/experiment"
	"adsim/internal/faultinject"
	"adsim/internal/pipeline"
	"adsim/internal/scenario"
	"adsim/internal/scene"
	"adsim/internal/slam"
	"adsim/internal/stats"
	"adsim/internal/telemetry"
)

// Platform identifies one of the paper's four computing platforms.
type Platform = accel.Platform

// Platform values (the paper's Table 2).
const (
	CPU  = accel.CPU
	GPU  = accel.GPU
	FPGA = accel.FPGA
	ASIC = accel.ASIC
)

// Engine identifies one of the three computational bottlenecks.
type Engine = accel.Engine

// Engine values.
const (
	DET = accel.DET
	TRA = accel.TRA
	LOC = accel.LOC
)

// ScenarioKind selects a synthetic driving scenario archetype.
type ScenarioKind = scene.Kind

// Scenario kinds.
const (
	Highway = scene.Highway
	Urban   = scene.Urban
)

// Model is the calibrated platform latency/power model.
type Model = accel.Model

// NewModel builds the platform model calibrated against the paper's
// measurements (see internal/accel/calib.go for every constant).
func NewModel() *Model { return accel.NewModel() }

// Resolution is a camera resolution for the scalability sweep.
type Resolution = accel.Resolution

// Resolutions of the paper's Figure 13 sweep plus the KITTI base.
var (
	ResKITTI = accel.ResKITTI
	ResHHD   = accel.ResHHD
	Res720p  = accel.Res720p
	ResHDP   = accel.ResHDP
	Res1080p = accel.Res1080p
	Res1440p = accel.Res1440p
)

// Assignment maps each bottleneck engine to a platform.
type Assignment = pipeline.Assignment

// Uniform returns the assignment running every engine on p.
func Uniform(p Platform) Assignment { return pipeline.Uniform(p) }

// SimConfig parameterizes a simulated (paper-scale) run.
type SimConfig = pipeline.SimConfig

// SimResult holds a simulated run's latency distributions.
type SimResult = pipeline.SimResult

// Simulate composes per-frame latency samples from the platform models
// under the pipeline's dependency law.
func Simulate(m *Model, cfg SimConfig) (SimResult, error) {
	return pipeline.Simulate(m, cfg)
}

// Pipeline is the native end-to-end autonomous driving system.
type Pipeline = pipeline.Pipeline

// PipelineConfig parameterizes the native pipeline.
type PipelineConfig = pipeline.Config

// FrameResult is the output of one native pipeline step.
type FrameResult = pipeline.FrameResult

// DefaultPipelineConfig returns a ready-to-run configuration for a
// scenario kind.
func DefaultPipelineConfig(kind ScenarioKind) PipelineConfig {
	return pipeline.DefaultConfig(kind)
}

// NewPipeline constructs the native pipeline for a scenario kind with
// default settings. Use NewPipelineFromConfig for full control.
func NewPipeline(kind ScenarioKind) (*Pipeline, error) {
	return pipeline.NewNative(DefaultPipelineConfig(kind))
}

// NewPipelineFromConfig constructs the native pipeline from an explicit
// configuration.
func NewPipelineFromConfig(cfg PipelineConfig) (*Pipeline, error) {
	return pipeline.NewNative(cfg)
}

// Runner pipelines multiple frames through a native pipeline concurrently,
// delivering results in frame order that are bitwise-identical to a
// sequential Step loop.
type Runner = pipeline.Runner

// RunnerOptions parameterizes the pipelined executor.
type RunnerOptions = pipeline.RunnerOptions

// RunnerResult is one frame's output from the pipelined executor.
type RunnerResult = pipeline.RunnerResult

// NewRunner wraps a native pipeline in a pipelined executor. The runner
// owns the pipeline from construction: do not call Step on it afterwards.
func NewRunner(p *Pipeline, opts RunnerOptions) (*Runner, error) {
	return pipeline.NewRunner(p, opts)
}

// TailScheduler is the closed-loop tail-latency controller: it adapts the
// pipelined executor's admission window and steps DET's input resolution
// down a committed ladder when the rolling delivered-latency tail
// approaches its target, recovering both once the tail subsides. Wire one
// into RunnerOptions.Tail (pipelined) or Pipeline.AttachTail (sequential;
// ladder only) — one scheduler serves exactly one executor.
type TailScheduler = pipeline.TailScheduler

// TailConfig parameterizes a TailScheduler.
type TailConfig = pipeline.TailConfig

// NewTailScheduler validates a TailConfig and constructs the controller.
func NewTailScheduler(cfg TailConfig) (*TailScheduler, error) {
	return pipeline.NewTailScheduler(cfg)
}

// Fleet drives N vehicle pipelines concurrently with DET/TRA inference
// multiplexed through one shared batching executor and, optionally, one
// shared prior-map store. Per-vehicle results are bitwise-identical to solo
// runs of the same seeds.
type Fleet = pipeline.Fleet

// FleetConfig parameterizes a Fleet.
type FleetConfig = pipeline.FleetConfig

// FleetReport is the fleet-level scorecard of one Fleet.Run.
type FleetReport = pipeline.FleetReport

// VehicleScore is one vehicle's scorecard within a FleetReport.
type VehicleScore = pipeline.VehicleScore

// NewFleet builds a fleet of vehicle pipelines; nothing executes until Run.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return pipeline.NewFleet(cfg) }

// AdmissionConfig parameterizes the fleet's frame-budget admission
// controller (FleetConfig.Admission): when the fleet-wide delivered tail
// overruns the per-frame budget, whole vehicle streams are shed
// deterministically (lowest priority first) and readmitted with hysteresis
// once pressure subsides.
type AdmissionConfig = pipeline.AdmissionConfig

// AdmissionEvent is one shed or readmit decision in FleetReport.Admission.
type AdmissionEvent = pipeline.AdmissionEvent

// DNNExecutor is an instance-scoped inference executor: it owns its kernel
// worker count and (optionally) the cross-stream batching seam that gathers
// concurrent same-shape forward calls into one batched GEMM.
type DNNExecutor = dnn.Executor

// NewDNNExecutor returns an unbatched executor whose kernels shard across
// workers goroutines (0 = runtime.NumCPU). Results are bitwise-identical
// for any worker count.
func NewDNNExecutor(workers int) *DNNExecutor { return dnn.NewExecutor(workers) }

// NewBatchDNNExecutor is NewDNNExecutor with cross-stream batching enabled:
// overlapping same-shape forward calls (e.g. from a fleet's DET engines)
// execute as one batched GEMM, bitwise-identical to unbatched runs.
func NewBatchDNNExecutor(workers int) *DNNExecutor { return dnn.NewBatchExecutor(workers) }

// SetDNNWorkers overrides how many goroutines the process-default
// executor's conv/FC kernels shard across. 0 restores the default
// (runtime.NumCPU). The kernels are bitwise-deterministic for any worker
// count.
//
// Deprecated: worker state is executor-scoped now — construct a
// DNNExecutor and wire it through DetectConfig/TrackConfig (or
// FleetConfig.Executor) instead of mutating the process default.
func SetDNNWorkers(n int) { dnn.SetWorkers(n) }

// DNNWorkers reports the process-default executor's kernel worker count.
//
// Deprecated: ask the DNNExecutor you constructed instead.
func DNNWorkers() int { return dnn.Workers() }

// Distribution accumulates latency samples and answers quantile queries.
type Distribution = stats.Distribution

// NewDistribution returns an empty distribution with capacity n.
func NewDistribution(n int) *Distribution { return stats.NewDistribution(n) }

// Window is a bounded streaming latency window with O(1) folds and
// Distribution-compatible quantile queries.
type Window = stats.Window

// NewWindow returns an empty streaming window holding the last capacity
// samples (≤ 0 selects the default capacity).
func NewWindow(capacity int) *Window { return stats.NewWindow(capacity) }

// TelemetrySink receives per-stage spans and per-frame completions from
// the pipeline's executors and the simulator.
type TelemetrySink = telemetry.Sink

// TelemetrySpan is one stage execution of one frame (queue wait + execute).
type TelemetrySpan = telemetry.Span

// TelemetryFrameEnd marks one frame's delivery.
type TelemetryFrameEnd = telemetry.FrameEnd

// TelemetryCollector aggregates spans into per-stage latency metrics and
// renders JSON/CSV/text summaries.
type TelemetryCollector = telemetry.Collector

// NewTelemetryCollector returns a collector whose distributions keep the
// last windowCap samples (≤ 0 selects the default).
func NewTelemetryCollector(windowCap int) *TelemetryCollector {
	return telemetry.NewCollector(windowCap)
}

// MultiSink fans telemetry out to several sinks.
func MultiSink(sinks ...TelemetrySink) TelemetrySink { return telemetry.Multi(sinks...) }

// ConstraintMonitor folds delivered frames into a rolling window and gives
// live performance/predictability verdicts; it implements TelemetrySink.
type ConstraintMonitor = constraint.Monitor

// ConstraintMonitorConfig parameterizes the live monitor.
type ConstraintMonitorConfig = constraint.MonitorConfig

// LiveConstraintReport is the monitor's point-in-time verdict.
type LiveConstraintReport = constraint.LiveReport

// NewConstraintMonitor returns a live constraint monitor.
func NewConstraintMonitor(cfg ConstraintMonitorConfig) *ConstraintMonitor {
	return constraint.NewMonitor(cfg)
}

// ConstraintInput describes a candidate system for constraint checking.
type ConstraintInput = constraint.Input

// ConstraintReport is the verdict across all constraint classes.
type ConstraintReport = constraint.Report

// CheckConstraints evaluates the paper's Section 2.4 design constraints.
func CheckConstraints(in ConstraintInput) ConstraintReport { return constraint.Check(in) }

// Pose is the 2D ground-plane vehicle pose used throughout the pipeline.
type Pose = scene.Pose

// Keyframe is one prior-map entry: the features observed at a surveyed
// pose.
type Keyframe = slam.Keyframe

// Keypoint is one oFAST feature location.
type Keypoint = slam.Keypoint

// Descriptor is a 256-bit rBRIEF feature descriptor.
type Descriptor = slam.Descriptor

// PriorMap is the monolithic in-memory prior map the LOC engine localizes
// against. It implements MapStore.
type PriorMap = slam.PriorMap

// NewPriorMap returns an empty prior map.
func NewPriorMap() *PriorMap { return slam.NewPriorMap() }

// ReadPriorMap deserializes a prior map from the compact ADM1 format
// written by PriorMap.WriteTo.
func ReadPriorMap(r io.Reader) (*PriorMap, error) { return slam.ReadPriorMap(r) }

// MapStore is the prior-map database interface the LOC engine reads and
// extends: monolithic in memory (PriorMap) or tiled on disk behind a
// byte-budgeted LRU cache (ShardStore). The paper's storage constraint
// (~41 TB of US prior maps) is why the map must be able to page.
type MapStore = slam.MapStore

// ShardStore is the tiled on-disk prior-map store with an LRU shard cache.
type ShardStore = slam.ShardStore

// ShardStoreOptions parameterizes OpenShardStore (cache budget, telemetry,
// prefetch).
type ShardStoreOptions = slam.ShardStoreOptions

// ShardIndex is a shard directory's table of contents.
type ShardIndex = slam.ShardIndex

// MapCacheStats is a point-in-time snapshot of a ShardStore's cache
// counters.
type MapCacheStats = slam.CacheStats

// DefaultTilePitch is the default longitudinal tile length in meters.
const DefaultTilePitch = slam.DefaultTilePitch

// WriteMapShards splits a prior map into fixed-pitch longitudinal tiles
// under dir (ADM1 shard files plus a JSON index) for serving through a
// ShardStore. pitch ≤ 0 selects DefaultTilePitch.
func WriteMapShards(m *PriorMap, dir string, pitch float64) (*ShardIndex, error) {
	return slam.WriteShards(m, dir, pitch)
}

// OpenShardStore opens a shard directory written by WriteMapShards.
func OpenShardStore(dir string, opts ShardStoreOptions) (*ShardStore, error) {
	return slam.OpenShardStore(dir, opts)
}

// LOCConfig parameterizes the localization engine.
type LOCConfig = slam.Config

// DefaultLOCConfig returns the standard LOC configuration.
func DefaultLOCConfig() LOCConfig { return slam.DefaultConfig() }

// LOCEngine is the standalone localization engine (the pipeline embeds
// one; build your own over a MapStore to replay against sharded maps).
type LOCEngine = slam.Engine

// NewLOCEngine builds a localization engine over any prior-map store.
func NewLOCEngine(cfg LOCConfig, store MapStore) (*LOCEngine, error) {
	return slam.NewEngineStore(cfg, store)
}

// TelemetryRegistry is the named counter/gauge/distribution registry;
// pass one in ShardStoreOptions.Telemetry to observe the map cache.
type TelemetryRegistry = telemetry.Registry

// NewTelemetryRegistry returns a registry whose streaming distributions
// keep the most recent distCap samples (0 selects the default).
func NewTelemetryRegistry(distCap int) *TelemetryRegistry { return telemetry.NewRegistry(distCap) }

// TraceRecord is one frame's entry in a machine-readable pipeline trace.
type TraceRecord = pipeline.TraceRecord

// TraceWriter streams trace records as JSON Lines.
type TraceWriter = pipeline.TraceWriter

// NewTraceRecord flattens one native FrameResult into a trace record.
func NewTraceRecord(res FrameResult) TraceRecord { return pipeline.NewTraceRecord(res) }

// DeadlinePolicy configures per-stage deadline budgets and degraded-mode
// enforcement on the native pipeline (PipelineConfig.Deadline).
type DeadlinePolicy = pipeline.DeadlinePolicy

// DegradedMask records, bit per stage, which stages of a frame fell back
// to a degraded mode after blowing their deadline budget.
type DegradedMask = pipeline.DegradedMask

// DefaultFrameBudget is the end-to-end frame deadline the default stage
// budgets are split from: the paper's 100 ms latency constraint.
const DefaultFrameBudget = pipeline.DefaultFrameBudget

// DefaultStageBudgets splits a frame deadline across the pipeline stages
// in proportion to their share of the paper's latency breakdown.
func DefaultStageBudgets(frame time.Duration) [pipeline.NumStages]time.Duration {
	return pipeline.DefaultStageBudgets(frame)
}

// FaultScenario is a reproducible chaos specification: a seed and a rule
// list, evaluated by a FaultInjector.
type FaultScenario = faultinject.Scenario

// FaultRule is one fault source in a scenario: a target stage (or
// FaultIOTarget), a trigger and an action.
type FaultRule = faultinject.Rule

// FaultInjector evaluates a fault scenario deterministically; wire
// Injector.Stage into PipelineConfig.Inject and Injector.OpenFile into
// ShardStoreOptions.Open.
type FaultInjector = faultinject.Injector

// FaultIOTarget is the FaultRule.Stage value selecting map-shard I/O.
const FaultIOTarget = faultinject.IOTarget

// ErrFaultInjected is the sentinel wrapped by every injected fault.
var ErrFaultInjected = faultinject.ErrInjected

// NewFaultInjector validates a scenario and returns its injector.
func NewFaultInjector(sc FaultScenario) (*FaultInjector, error) { return faultinject.New(sc) }

// ParseFaultScenario builds a scenario from the compact rule syntax the
// adpipe -fault flag accepts (e.g. "DET:delay=30ms:every=5,IO:err:p=0.2").
func ParseFaultScenario(spec string, seed int64) (FaultScenario, error) {
	return faultinject.Parse(spec, seed)
}

// ScenarioProgram is a validated, replayable scenario program: phased world
// clauses (traffic density, driver profiles, illumination, blackout and
// occlusion windows, loop segments) and fault rules in one text format.
// See internal/scenario for the grammar; the committed library lives in
// scenarios/ and ships compiled into the binary.
type ScenarioProgram = scenario.Program

// SceneTimeline is a program's compiled world timeline; Configure installs
// it onto a scene configuration (SceneConfig.Timeline).
type SceneTimeline = scene.Timeline

// ScenePhase is one phase of a SceneTimeline: a time range plus the world
// parameters it overrides while active.
type ScenePhase = scene.Phase

// SceneTimeWindow is a blackout/occlusion interval within a phase.
type SceneTimeWindow = scene.TimeWindow

// SceneConfig parameterizes the synthetic world generator
// (PipelineConfig.Scene and FleetConfig.Scenes use it).
type SceneConfig = scene.Config

// DefaultSceneConfig returns the standard world configuration for a
// scenario kind.
func DefaultSceneConfig(kind ScenarioKind) SceneConfig { return scene.DefaultConfig(kind) }

// DriverProfile selects how scripted traffic behaves (calm or aggressive
// cut-in/hard-brake maneuvers).
type DriverProfile = scene.DriverProfile

// Driver profiles.
const (
	DriverCalm       = scene.DriverCalm
	DriverAggressive = scene.DriverAggressive
)

// ParseScenarioProgram parses and statically validates a scenario program
// (phase ordering, parameter ranges, loop-topology constraints) before any
// frame renders.
func ParseScenarioProgram(name, src string) (*ScenarioProgram, error) {
	return scenario.Parse(name, src)
}

// LoadScenarioProgram loads a program from the committed library by name.
func LoadScenarioProgram(name string) (*ScenarioProgram, error) { return scenario.Load(name) }

// ResolveScenarioProgram loads a program by library name or, failing that,
// by file path — the lookup behind the -scenario CLI flags.
func ResolveScenarioProgram(ref string) (*ScenarioProgram, error) { return scenario.Resolve(ref) }

// ScenarioLibrary lists the committed scenario-program names.
func ScenarioLibrary() []string { return scenario.Library() }

// FaultScenarioFromProgram lifts a program's fault rules into a seeded
// FaultScenario for NewFaultInjector.
func FaultScenarioFromProgram(prog *ScenarioProgram, seed int64) FaultScenario {
	return faultinject.FromProgram(prog, seed)
}

// ConstraintScorecard folds one whole scenario run — every delivered
// frame's wall and per-stage latencies — into a per-scenario constraint
// verdict. Replaying the same program and seed folds identical samples.
type ConstraintScorecard = constraint.Scorecard

// ScorecardReport is a scorecard's rendered verdict.
type ScorecardReport = constraint.ScorecardReport

// NewConstraintScorecard starts an empty scorecard for one (scenario,
// seed) run driven at the configured source frame rate.
func NewConstraintScorecard(scenarioName string, seed int64, fps float64) *ConstraintScorecard {
	return constraint.NewScorecard(scenarioName, seed, fps)
}

// ExperimentOptions tune experiment execution.
type ExperimentOptions = experiment.Options

// DefaultExperimentOptions returns the standard experiment sizing.
func DefaultExperimentOptions() ExperimentOptions { return experiment.DefaultOptions() }

// ExperimentIDs lists the available experiments (one per paper table and
// figure, plus the headline claim).
func ExperimentIDs() []string { return experiment.IDs() }

// RunExperiment regenerates one paper table/figure and returns its rendered
// output.
func RunExperiment(id string, opts ExperimentOptions) (string, error) {
	res, err := experiment.Run(id, opts)
	if err != nil {
		return "", err
	}
	return res.Render(), nil
}
