package adsim

// One benchmark per paper table and figure: each regenerates the
// corresponding experiment end to end (workload generation, platform-model
// sampling, aggregation, rendering), so `go test -bench=.` re-runs the full
// evaluation and reports how long each reproduction takes.
//
// Sizing note: benchmarks use a reduced frame count per iteration (the
// experiment drivers' tails converge well before the default 40k frames);
// `cmd/adbench` runs the full-size versions.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"adsim/internal/accel"
	"adsim/internal/pipeline"
	"adsim/internal/scene"
	"adsim/internal/slam"
)

// benchOpts sizes experiments for benchmarking iterations.
func benchOpts() ExperimentOptions {
	return ExperimentOptions{Frames: 20000, Seed: 1, NativeFrames: 4}
}

func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	opts := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		if _, err := RunExperiment(id, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchmarkExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchmarkExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchmarkExperiment(b, "table3") }

// BenchmarkFig2 regenerates the driving-range-reduction analysis.
func BenchmarkFig2(b *testing.B) { benchmarkExperiment(b, "fig2") }

// BenchmarkFig6 regenerates the CPU per-component latency characterization.
func BenchmarkFig6(b *testing.B) { benchmarkExperiment(b, "fig6") }

// BenchmarkFig7 regenerates the cycle breakdown via native instrumentation.
func BenchmarkFig7(b *testing.B) { benchmarkExperiment(b, "fig7") }

// BenchmarkFig10 regenerates the per-platform acceleration results.
func BenchmarkFig10(b *testing.B) { benchmarkExperiment(b, "fig10") }

// BenchmarkFig11 regenerates the end-to-end configuration comparison.
func BenchmarkFig11(b *testing.B) { benchmarkExperiment(b, "fig11") }

// BenchmarkFig12 regenerates the end-to-end power analysis.
func BenchmarkFig12(b *testing.B) { benchmarkExperiment(b, "fig12") }

// BenchmarkFig13 regenerates the resolution scalability sweep.
func BenchmarkFig13(b *testing.B) { benchmarkExperiment(b, "fig13") }

// BenchmarkHeadline regenerates the 169x/10x/93x tail-reduction claim.
func BenchmarkHeadline(b *testing.B) { benchmarkExperiment(b, "headline") }

// BenchmarkNativePipelineFrame measures one full native end-to-end frame
// (all engines, DNNs enabled) — the reproduction's own Fig 6 analogue.
func BenchmarkNativePipelineFrame(b *testing.B) {
	cfg := DefaultPipelineConfig(Highway)
	cfg.Scene.Width, cfg.Scene.Height = 512, 256
	cfg.SurveyFrames = 20
	p, err := NewPipelineFromConfig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkRunner measures the pipelined executor on the same workload as
// BenchmarkNativePipelineFrame: identical config and seed, but with four
// frames in flight so DET/LOC of frame N+1 overlap the back half of frame
// N and the conv/FC kernels shard across cores. It reports throughput and
// the P99.99 admission-to-delivery latency; the frames/s ratio against the
// sequential benchmark is the pipelining speedup on this machine.
func BenchmarkRunner(b *testing.B) {
	cfg := DefaultPipelineConfig(Highway)
	cfg.Scene.Width, cfg.Scene.Height = 512, 256
	cfg.SurveyFrames = 20
	p, err := NewPipelineFromConfig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRunner(p, RunnerOptions{InFlight: 4})
	if err != nil {
		b.Fatal(err)
	}
	wall := NewDistribution(b.N)
	b.ResetTimer()
	for res := range r.Run(b.N) {
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		wall.Add(float64(res.Wall) / 1e6)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	b.ReportMetric(wall.P9999(), "p99.99-ms")
}

// BenchmarkRunnerTail measures the closed-loop tail scheduler against a
// static in-flight window on a stall-injected workload: the same seeded
// scenario with DET stalled 32ms on three of every seven frames, run with
// deadline enforcement through a window-6 executor. The static/adaptive
// p99.99-ms spread is the scheduler's delivered-latency win; ns/op tracks
// the (unchanged) throughput cost of admission control. Functional
// perception keeps the injected stalls — not machine-dependent DNN time —
// the workload under measurement.
func BenchmarkRunnerTail(b *testing.B) {
	for _, mode := range []string{"static", "adaptive"} {
		adaptive := mode == "adaptive"
		b.Run(mode, func(b *testing.B) {
			cfg := DefaultPipelineConfig(Highway)
			cfg.Scene.Width, cfg.Scene.Height = 384, 192
			cfg.SurveyFrames = 20
			cfg.Detect.RunDNN = false
			cfg.Track.RunDNN = false
			cfg.Deadline = DeadlinePolicy{Enforce: true, Anytime: adaptive}
			sc, err := ParseFaultScenario("DET:delay=32ms:every=7:burst=3", 1)
			if err != nil {
				b.Fatal(err)
			}
			inj, err := NewFaultInjector(sc)
			if err != nil {
				b.Fatal(err)
			}
			cfg.Inject = inj.Stage
			p, err := NewPipelineFromConfig(cfg)
			if err != nil {
				b.Fatal(err)
			}
			opts := RunnerOptions{InFlight: 6}
			if adaptive {
				ts, err := NewTailScheduler(TailConfig{
					Target:        40 * time.Millisecond,
					InitialWindow: 1,
					Ladder:        []int{64, 48, 32},
				})
				if err != nil {
					b.Fatal(err)
				}
				opts.Tail = ts
			}
			r, err := NewRunner(p, opts)
			if err != nil {
				b.Fatal(err)
			}
			wall := NewDistribution(b.N)
			b.ResetTimer()
			for res := range r.Run(b.N) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				wall.Add(float64(res.Wall) / 1e6)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
			b.ReportMetric(wall.P9999(), "p99.99-ms")
		})
	}
}

// BenchmarkFleet measures vehicle-stream consolidation: four full native
// pipelines (DNNs on) multiplexed onto one shared batching executor and one
// shared prior-map store, swept over core counts via GOMAXPROCS. The
// vehicles/s metric is the consolidation headroom — how many real-time
// vehicle streams (at the scenario frame rate) one machine of that width
// sustains; compare it across the cores= sub-benchmarks for the scaling
// curve. b.N is frames PER VEHICLE, so total work per iteration is 4x.
func BenchmarkFleet(b *testing.B) {
	const vehicles = 4
	cfg := DefaultPipelineConfig(Highway)
	cfg.Scene.Width, cfg.Scene.Height = 512, 256
	cfg.SurveyFrames = 0 // all vehicles share the base surveyed below

	base := slam.NewPriorMap()
	eng, err := slam.NewEngine(cfg.SLAM, base)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := scene.New(cfg.Scene)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		f := gen.Step()
		eng.Survey(f.Image, f.EgoPose)
	}

	for _, cores := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(cores)
			defer runtime.GOMAXPROCS(prev)
			f, err := NewFleet(FleetConfig{
				Vehicles:  vehicles,
				Config:    cfg,
				InFlight:  4,
				SharedMap: base,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Pre-pay the one-time cold-start costs (detector ladder weight
			// init, shard-cache fill, map view construction) so the timed
			// region measures steady-state consolidation, not first-frame
			// skew.
			f.Warm()
			b.ResetTimer()
			rep := f.Run(b.N, func(v int, res RunnerResult) {
				if res.Err != nil {
					b.Error(res.Err)
				}
			})
			b.ReportMetric(rep.VehiclesPerSec, "vehicles/s")
			b.ReportMetric(rep.FramesPerSec, "frames/s")
			b.ReportMetric(rep.Fleet.TailMs, "p99.99-ms")
		})
	}
}

// BenchmarkFleetCapacity is the capacity curve at the consolidation limit:
// eight full native pipelines (DNNs on) on one machine, swept across the
// three fleet operating modes. "plain" is the shared batching executor
// alone; "phase" adds executor-aware phase-locking so co-resident DET
// admissions align into deeper same-shape batches; "admit" adds the
// frame-budget admission controller (100ms wall budget), which sheds whole
// streams until the delivered tail fits the budget. Compare p99.99-ms
// across modes for the budget story (admit must hold the windowed tail at
// or under budget where plain blows through it), batch-depth for the
// phase-lock win, and admitted for how many of the eight streams the
// controller sustains at run end. b.N is frames PER VEHICLE.
func BenchmarkFleetCapacity(b *testing.B) {
	const vehicles = 8
	cfg := DefaultPipelineConfig(Highway)
	cfg.Scene.Width, cfg.Scene.Height = 512, 256
	cfg.SurveyFrames = 0 // all vehicles share the base surveyed below

	base := slam.NewPriorMap()
	eng, err := slam.NewEngine(cfg.SLAM, base)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := scene.New(cfg.Scene)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		f := gen.Step()
		eng.Survey(f.Image, f.EgoPose)
	}

	run := func(b *testing.B, fcfg FleetConfig) {
		fcfg.Vehicles = vehicles
		fcfg.Config = cfg
		// A shallow window: delivered wall latency in steady state is
		// roughly InFlight x the stream's inter-delivery interval, so a
		// deep window at this population would put the 100ms budget out of
		// reach for any admitted set — queueing, not compute, would
		// dominate the tail the controller is trying to govern.
		fcfg.InFlight = 2
		fcfg.SharedMap = base
		// A small rolling window so the end-of-run tail reflects the
		// post-shed steady state rather than averaging in the admission
		// controller's settling transient. Sized to the admission decision
		// cadence (Epoch frames per admitted stream between decisions) so
		// each decision sees a window mostly refreshed since the last one —
		// a laggy window double-counts old pressure and over-sheds.
		fcfg.MonitorWindow = 64
		f, err := NewFleet(fcfg)
		if err != nil {
			b.Fatal(err)
		}
		f.Warm()
		// Exclude the warm-up forwards from the batch-depth accounting.
		warmBatches, warmCalls := f.Executor().GatherStats()
		// The reported tail is sampled from the live fleet monitor the
		// moment the first stream completes: at that instant the rolling
		// window holds exactly the steady-state population's deliveries.
		// Sampling at Wait instead would fold in the end-of-run drain,
		// where streams the controller had shed flush their remaining
		// frames all at once — a transient no admission policy governs.
		var mu sync.Mutex
		perVehicle := make(map[int]int)
		steadyTail := -1.0
		b.ResetTimer()
		rep := f.Run(b.N, func(v int, res RunnerResult) {
			if res.Err != nil {
				b.Error(res.Err)
			}
			mu.Lock()
			perVehicle[v]++
			if perVehicle[v] == b.N && steadyTail < 0 {
				steadyTail = f.Snapshot().TailMs
			}
			mu.Unlock()
		})
		batches, calls := f.Executor().GatherStats()
		batches -= warmBatches
		calls -= warmCalls
		depth := 0.0
		if batches > 0 {
			depth = float64(calls) / float64(batches)
		}
		admitted := 0
		for _, vs := range rep.PerVehicle {
			if !vs.Shed {
				admitted++
			}
		}
		tail := rep.Fleet.TailMs
		if steadyTail >= 0 {
			tail = steadyTail
		}
		b.ReportMetric(rep.VehiclesPerSec, "vehicles/s")
		b.ReportMetric(tail, "p99.99-ms")
		b.ReportMetric(depth, "batch-depth")
		b.ReportMetric(float64(admitted), "admitted")
	}

	b.Run("plain", func(b *testing.B) {
		run(b, FleetConfig{})
	})
	b.Run("phase", func(b *testing.B) {
		run(b, FleetConfig{PhaseLock: true})
	})
	b.Run("admit", func(b *testing.B) {
		run(b, FleetConfig{
			PhaseLock: true,
			Admission: &AdmissionConfig{
				Target: 100 * time.Millisecond,
				Epoch:  16,
				// Wider shed watermark than the default: shed only when
				// the tail is genuinely near budget, not at the
				// conservative 0.7 margin, so the cascade stops at the
				// largest admitted set the budget covers. The readmit
				// watermark is pinned BELOW one stream's queueing floor
				// (~2 frame times) so the controller parks there: on a
				// saturated host every upward probe's re-alignment
				// transient spikes the max-of-window tail past budget and
				// is immediately re-shed, which would make the reported
				// steady state depend on probe phase. Readmission dynamics
				// are pinned by the admission unit tests and the soak.
				High: 0.9,
				Low:  0.3,
			},
		})
	})
}

// BenchmarkTelemetryOverhead quantifies the cost of full instrumentation:
// the same pipelined Runner workload once with the no-op sink and once with
// a Collector plus live constraint Monitor attached. The issue's acceptance
// bar is the instrumented run staying within 5% frames/s of the no-op run;
// compare the sub-benchmarks' frames/s to verify.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, sink TelemetrySink) {
		cfg := DefaultPipelineConfig(Highway)
		cfg.Scene.Width, cfg.Scene.Height = 512, 256
		cfg.SurveyFrames = 20
		cfg.Telemetry = sink
		p, err := NewPipelineFromConfig(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r, err := NewRunner(p, RunnerOptions{InFlight: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for res := range r.Run(b.N) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	}
	b.Run("nop", func(b *testing.B) { run(b, nil) })
	b.Run("instrumented", func(b *testing.B) {
		col := NewTelemetryCollector(0)
		mon := NewConstraintMonitor(ConstraintMonitorConfig{})
		run(b, MultiSink(col, mon))
		if col.Frames() != int64(b.N) {
			b.Fatalf("collector saw %d frames, want %d", col.Frames(), b.N)
		}
	})
}

// BenchmarkSimulatedFrame measures the cost of one simulated frame sample
// across the three engines.
func BenchmarkSimulatedFrame(b *testing.B) {
	m := accel.NewModel()
	frames := 1000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Simulate(m, pipeline.SimConfig{
			Assignment: pipeline.Uniform(accel.ASIC),
			Frames:     frames,
			Seed:       int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*frames)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkSceneFrame measures synthetic frame generation at KITTI size.
func BenchmarkSceneFrame(b *testing.B) {
	cfg := scene.DefaultConfig(scene.Urban)
	g, err := scene.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step()
	}
}
