module adsim

go 1.22
