package adsim

import (
	"strings"
	"testing"
)

func TestFacadePipeline(t *testing.T) {
	cfg := DefaultPipelineConfig(Urban)
	cfg.Scene.Width, cfg.Scene.Height = 384, 192
	cfg.SurveyFrames = 10
	cfg.Detect.RunDNN = false
	cfg.Track.RunDNN = false
	p, err := NewPipelineFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.E2E <= 0 {
		t.Error("no end-to-end timing")
	}
}

func TestFacadeSimulate(t *testing.T) {
	m := NewModel()
	sim, err := Simulate(m, SimConfig{Assignment: Uniform(ASIC), Frames: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sim.E2E.N() != 1000 {
		t.Error("missing samples")
	}
	if sim.E2E.Mean() > 100 {
		t.Error("ASIC config should be well under 100 ms")
	}
}

func TestFacadeConstraints(t *testing.T) {
	d := NewDistribution(50000)
	for i := 0; i < 50000; i++ {
		d.Add(16)
	}
	r := CheckConstraints(ConstraintInput{
		Latency:            d,
		FrameRate:          30,
		AvailableStorageTB: 50,
		ComputePowerW:      140,
		MapTB:              41,
		CoolingCapacityW:   800,
	})
	if !r.Pass() {
		t.Errorf("expected pass:\n%s", r)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 25 {
		t.Fatalf("experiments = %v", ids)
	}
	opts := DefaultExperimentOptions()
	out, err := RunExperiment("table3", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "21.97") {
		t.Error("table3 output wrong")
	}
	if _, err := RunExperiment("nope", opts); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadeShardedMapStore(t *testing.T) {
	m := NewPriorMap()
	for i := 0; i < 12; i++ {
		m.Add(Pose{Z: float64(i * 3)}, nil, nil)
	}
	dir := t.TempDir()
	idx, err := WriteMapShards(m, dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Tiles) < 3 {
		t.Fatalf("expected several tiles, got %d", len(idx.Tiles))
	}
	reg := NewTelemetryRegistry(0)
	store, err := OpenShardStore(dir, ShardStoreOptions{CacheBudget: 1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Len() != m.Len() {
		t.Fatalf("store holds %d keyframes, want %d", store.Len(), m.Len())
	}
	if _, err := NewLOCEngine(DefaultLOCConfig(), store); err != nil {
		t.Fatal(err)
	}
	n := 0
	store.Scan(func(Keyframe) bool { n++; return true })
	if n != m.Len() {
		t.Fatalf("Scan visited %d keyframes, want %d", n, m.Len())
	}
	if reg.Counter("mapstore/misses").Value() == 0 {
		t.Error("scan through a cold cache recorded no misses")
	}
}
