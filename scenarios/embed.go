// Package scenarios embeds the repository's committed scenario-program
// library (the *.adsc files alongside this file). internal/scenario loads
// programs from it by name; see that package for the grammar.
package scenarios

import "embed"

// FS holds every committed scenario program.
//
//go:embed *.adsc
var FS embed.FS
