// Package benchjson parses `go test -bench` output into a schema'd report,
// the storage format of the repo's benchmark trajectory (BENCH_<n>.json,
// ROADMAP item 5). Committing one report per optimization PR — each
// embedding the measurement it was compared against — keeps speed claims
// reproducible instead of resetting every PR.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Schema identifies the report format version.
const Schema = "adsim-bench/v1"

// Report is one benchmark run: environment header plus parsed benchmark
// lines, optionally carrying the baseline measurement the run is compared
// against.
type Report struct {
	Schema  string `json:"schema"`
	Created string `json:"created,omitempty"` // RFC3339, stamped by the producer
	Go      string `json:"go,omitempty"`
	GOOS    string `json:"goos,omitempty"`
	GOARCH  string `json:"goarch,omitempty"`
	CPU     string `json:"cpu,omitempty"`

	Benchmarks []Benchmark `json:"benchmarks"`

	// Baseline is the pre-change measurement of Baseline.Name recorded in
	// the same file, so the claimed speedup is auditable from this report
	// alone.
	Baseline *Baseline `json:"baseline,omitempty"`
	// SpeedupVsBaseline is mean ns/op of the baseline divided by mean
	// ns/op of the matching benchmark in this run (>1 means faster now).
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"` // frames/s, p99.99-ms, B/op, ...
}

// Baseline is a prior measurement of one benchmark.
type Baseline struct {
	Ref     string             `json:"ref"` // where it came from (commit, file)
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Parse reads `go test -bench` text output (one or more packages) and
// returns the structured report. Repeated -count runs of one benchmark stay
// separate entries; use MeanNsPerOp for the aggregate.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Schema: Schema}
	sc := bufio.NewScanner(r)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %w", err)
			}
			b.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	return rep, nil
}

// parseLine parses one benchmark result line:
//
//	BenchmarkRunner-4  100  25865505 ns/op  38.66 frames/s  186.8 p99.99-ms
func parseLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Benchmark{}, fmt.Errorf("malformed bench line %q", line)
	}
	name := f[0]
	// Strip the -GOMAXPROCS suffix so names are stable across machines.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations in %q: %w", line, err)
	}
	ns, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("ns/op in %q: %w", line, err)
	}
	b := Benchmark{Name: name, Iterations: iters, NsPerOp: ns}
	// Remaining fields come in (value, unit) pairs: custom ReportMetric
	// units plus -benchmem's B/op and allocs/op.
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("metric value in %q: %w", line, err)
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[f[i+1]] = v
	}
	return b, nil
}

// MeanNsPerOp averages ns/op over every entry named name (repeated -count
// runs), returning 0 when absent.
func (r *Report) MeanNsPerOp(name string) float64 {
	var sum float64
	n := 0
	for _, b := range r.Benchmarks {
		if b.Name == name {
			sum += b.NsPerOp
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanMetric averages metric unit over every entry named name, returning 0
// when absent.
func (r *Report) MeanMetric(name, unit string) float64 {
	var sum float64
	n := 0
	for _, b := range r.Benchmarks {
		if b.Name == name {
			if v, ok := b.Metrics[unit]; ok {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SetBaseline records the baseline and derives SpeedupVsBaseline from the
// matching benchmark in this report (0 when the benchmark is absent).
func (r *Report) SetBaseline(b Baseline) {
	r.Baseline = &b
	if m := r.MeanNsPerOp(b.Name); m > 0 && b.NsPerOp > 0 {
		r.SpeedupVsBaseline = b.NsPerOp / m
	} else {
		r.SpeedupVsBaseline = 0
	}
}

// Validate checks the structural invariants a committed BENCH_<n>.json must
// satisfy.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("benchjson: schema %q, want %q", r.Schema, Schema)
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmarks")
	}
	for _, b := range r.Benchmarks {
		if b.Name == "" || !strings.HasPrefix(b.Name, "Benchmark") {
			return fmt.Errorf("benchjson: bad benchmark name %q", b.Name)
		}
		if b.Iterations <= 0 || b.NsPerOp <= 0 {
			return fmt.Errorf("benchjson: %s: non-positive iterations/ns_per_op", b.Name)
		}
	}
	if r.Baseline != nil {
		if r.Baseline.Name == "" || r.Baseline.NsPerOp <= 0 || r.Baseline.Ref == "" {
			return fmt.Errorf("benchjson: incomplete baseline")
		}
	}
	return nil
}

// Delta is one benchmark's change between two reports, matched by name and
// aggregated over repeated -count runs.
type Delta struct {
	Name       string
	OldNsPerOp float64
	NewNsPerOp float64
	// Ratio is new/old mean ns/op: > 1 is slower now, < 1 faster.
	Ratio float64
	// Metrics maps each unit present in both reports to its {old, new}
	// means (frames/s, p99.99-ms, vehicles/s, B/op, ...).
	Metrics map[string][2]float64
}

// Compare matches cur's benchmarks against prev by name and returns one
// delta per benchmark present in both, in cur's order. Benchmarks that
// appear on only one side are skipped — the gate judges shared coverage,
// not suite growth.
func Compare(prev, cur *Report) []Delta {
	var deltas []Delta
	seen := make(map[string]bool)
	for _, b := range cur.Benchmarks {
		if seen[b.Name] {
			continue
		}
		seen[b.Name] = true
		old := prev.MeanNsPerOp(b.Name)
		if old <= 0 {
			continue
		}
		d := Delta{
			Name:       b.Name,
			OldNsPerOp: old,
			NewNsPerOp: cur.MeanNsPerOp(b.Name),
		}
		d.Ratio = d.NewNsPerOp / old
		for unit := range b.Metrics {
			ov, nv := prev.MeanMetric(b.Name, unit), cur.MeanMetric(b.Name, unit)
			if ov != 0 || nv != 0 {
				if prevHasMetric(prev, b.Name, unit) {
					if d.Metrics == nil {
						d.Metrics = make(map[string][2]float64)
					}
					d.Metrics[unit] = [2]float64{ov, nv}
				}
			}
		}
		deltas = append(deltas, d)
	}
	return deltas
}

func prevHasMetric(r *Report, name, unit string) bool {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			if _, ok := b.Metrics[unit]; ok {
				return true
			}
		}
	}
	return false
}

// String renders the delta as one human-readable line.
func (d Delta) String() string {
	verdict := "slower"
	if d.Ratio <= 1 {
		verdict = "faster"
	}
	return fmt.Sprintf("%-40s %10s -> %-10s %.2fx %s",
		d.Name, fmtNs(d.OldNsPerOp), fmtNs(d.NewNsPerOp), d.Ratio, verdict)
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// Regressions returns the deltas whose ns/op ratio exceeds threshold and
// whose name has no entry in explained — the set that should fail a
// regression gate. explained maps a benchmark name to the reason its
// slowdown is accepted (e.g. "BenchmarkX=now also validates checksums").
func Regressions(deltas []Delta, threshold float64, explained map[string]string) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Ratio > threshold {
			if _, ok := explained[d.Name]; !ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// Encode writes the report as indented JSON.
func (r *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Decode reads a report back and validates it.
func Decode(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return &rep, nil
}
