// Package benchjson parses `go test -bench` output into a schema'd report,
// the storage format of the repo's benchmark trajectory (BENCH_<n>.json,
// ROADMAP item 5). Committing one report per optimization PR — each
// embedding the measurement it was compared against — keeps speed claims
// reproducible instead of resetting every PR.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Schema identifies the report format version.
const Schema = "adsim-bench/v1"

// Report is one benchmark run: environment header plus parsed benchmark
// lines, optionally carrying the baseline measurement the run is compared
// against.
type Report struct {
	Schema  string `json:"schema"`
	Created string `json:"created,omitempty"` // RFC3339, stamped by the producer
	Go      string `json:"go,omitempty"`
	GOOS    string `json:"goos,omitempty"`
	GOARCH  string `json:"goarch,omitempty"`
	CPU     string `json:"cpu,omitempty"`

	Benchmarks []Benchmark `json:"benchmarks"`

	// Baseline is the pre-change measurement of Baseline.Name recorded in
	// the same file, so the claimed speedup is auditable from this report
	// alone.
	Baseline *Baseline `json:"baseline,omitempty"`
	// SpeedupVsBaseline is mean ns/op of the baseline divided by mean
	// ns/op of the matching benchmark in this run (>1 means faster now).
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"` // frames/s, p99.99-ms, B/op, ...
}

// Baseline is a prior measurement of one benchmark.
type Baseline struct {
	Ref     string             `json:"ref"` // where it came from (commit, file)
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Parse reads `go test -bench` text output (one or more packages) and
// returns the structured report. Repeated -count runs of one benchmark stay
// separate entries; use MeanNsPerOp for the aggregate.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Schema: Schema}
	sc := bufio.NewScanner(r)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %w", err)
			}
			b.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	return rep, nil
}

// parseLine parses one benchmark result line:
//
//	BenchmarkRunner-4  100  25865505 ns/op  38.66 frames/s  186.8 p99.99-ms
func parseLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Benchmark{}, fmt.Errorf("malformed bench line %q", line)
	}
	name := f[0]
	// Strip the -GOMAXPROCS suffix so names are stable across machines.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations in %q: %w", line, err)
	}
	ns, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("ns/op in %q: %w", line, err)
	}
	b := Benchmark{Name: name, Iterations: iters, NsPerOp: ns}
	// Remaining fields come in (value, unit) pairs: custom ReportMetric
	// units plus -benchmem's B/op and allocs/op.
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("metric value in %q: %w", line, err)
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[f[i+1]] = v
	}
	return b, nil
}

// MeanNsPerOp averages ns/op over every entry named name (repeated -count
// runs), returning 0 when absent.
func (r *Report) MeanNsPerOp(name string) float64 {
	var sum float64
	n := 0
	for _, b := range r.Benchmarks {
		if b.Name == name {
			sum += b.NsPerOp
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanMetric averages metric unit over every entry named name, returning 0
// when absent.
func (r *Report) MeanMetric(name, unit string) float64 {
	var sum float64
	n := 0
	for _, b := range r.Benchmarks {
		if b.Name == name {
			if v, ok := b.Metrics[unit]; ok {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SetBaseline records the baseline and derives SpeedupVsBaseline from the
// matching benchmark in this report (0 when the benchmark is absent).
func (r *Report) SetBaseline(b Baseline) {
	r.Baseline = &b
	if m := r.MeanNsPerOp(b.Name); m > 0 && b.NsPerOp > 0 {
		r.SpeedupVsBaseline = b.NsPerOp / m
	} else {
		r.SpeedupVsBaseline = 0
	}
}

// Validate checks the structural invariants a committed BENCH_<n>.json must
// satisfy.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("benchjson: schema %q, want %q", r.Schema, Schema)
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmarks")
	}
	for _, b := range r.Benchmarks {
		if b.Name == "" || !strings.HasPrefix(b.Name, "Benchmark") {
			return fmt.Errorf("benchjson: bad benchmark name %q", b.Name)
		}
		if b.Iterations <= 0 || b.NsPerOp <= 0 {
			return fmt.Errorf("benchjson: %s: non-positive iterations/ns_per_op", b.Name)
		}
	}
	if r.Baseline != nil {
		if r.Baseline.Name == "" || r.Baseline.NsPerOp <= 0 || r.Baseline.Ref == "" {
			return fmt.Errorf("benchjson: incomplete baseline")
		}
	}
	return nil
}

// Encode writes the report as indented JSON.
func (r *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Decode reads a report back and validates it.
func Decode(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return &rep, nil
}
