package benchjson

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: adsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRunner-4   	     100	  13707749 ns/op	        72.94 frames/s	       102.9 p99.99-ms
BenchmarkRunner-4   	     100	  13392765 ns/op	        74.67 frames/s	        82.79 p99.99-ms
PASS
ok  	adsim	5.0s
goos: linux
goarch: amd64
pkg: adsim/internal/tensor
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkConv2DInt8-4      	     142	   8212345 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	adsim/internal/tensor	2.1s
`

func TestParseSampleOutput(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" {
		t.Errorf("env: goos=%q goarch=%q", rep.GOOS, rep.GOARCH)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkRunner" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", b.Name)
	}
	if b.Pkg != "adsim" {
		t.Errorf("pkg = %q", b.Pkg)
	}
	if b.Iterations != 100 || b.NsPerOp != 13707749 {
		t.Errorf("iters/ns = %d/%v", b.Iterations, b.NsPerOp)
	}
	if b.Metrics["frames/s"] != 72.94 || b.Metrics["p99.99-ms"] != 102.9 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	conv := rep.Benchmarks[2]
	if conv.Pkg != "adsim/internal/tensor" {
		t.Errorf("conv pkg = %q", conv.Pkg)
	}
	if conv.Metrics["allocs/op"] != 0 {
		t.Errorf("benchmem metrics = %v", conv.Metrics)
	}
}

func TestMeansAverageRepeatedRuns(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	wantNs := (13707749.0 + 13392765.0) / 2
	if got := rep.MeanNsPerOp("BenchmarkRunner"); got != wantNs {
		t.Errorf("MeanNsPerOp = %v, want %v", got, wantNs)
	}
	wantFps := (72.94 + 74.67) / 2
	if got := rep.MeanMetric("BenchmarkRunner", "frames/s"); got != wantFps {
		t.Errorf("MeanMetric = %v, want %v", got, wantFps)
	}
	if got := rep.MeanNsPerOp("BenchmarkMissing"); got != 0 {
		t.Errorf("missing benchmark mean = %v, want 0", got)
	}
}

func TestSetBaselineDerivesSpeedup(t *testing.T) {
	rep, _ := Parse(strings.NewReader(sampleOutput))
	rep.SetBaseline(Baseline{Ref: "pre-change", Name: "BenchmarkRunner", NsPerOp: 26051823})
	want := 26051823 / ((13707749.0 + 13392765.0) / 2)
	if rep.SpeedupVsBaseline != want {
		t.Errorf("speedup = %v, want %v", rep.SpeedupVsBaseline, want)
	}
	rep.SetBaseline(Baseline{Ref: "x", Name: "BenchmarkMissing", NsPerOp: 1})
	if rep.SpeedupVsBaseline != 0 {
		t.Errorf("speedup for absent benchmark = %v, want 0", rep.SpeedupVsBaseline)
	}
}

func TestRoundTripEncodeDecode(t *testing.T) {
	rep, _ := Parse(strings.NewReader(sampleOutput))
	rep.Created = "2026-08-08T00:00:00Z"
	rep.SetBaseline(Baseline{Ref: "seed", Name: "BenchmarkRunner", NsPerOp: 26051823,
		Metrics: map[string]float64{"frames/s": 38.39}})
	var buf bytes.Buffer
	if err := rep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || len(back.Benchmarks) != len(rep.Benchmarks) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Baseline == nil || back.Baseline.NsPerOp != 26051823 {
		t.Fatal("round trip lost the baseline")
	}
	if back.SpeedupVsBaseline != rep.SpeedupVsBaseline {
		t.Fatal("round trip lost the speedup")
	}
}

func TestCompareMatchesByNameAndAverages(t *testing.T) {
	prev := &Report{Schema: Schema, Benchmarks: []Benchmark{
		{Name: "BenchmarkRunner", Iterations: 100, NsPerOp: 20e6,
			Metrics: map[string]float64{"frames/s": 50}},
		{Name: "BenchmarkRunner", Iterations: 100, NsPerOp: 30e6,
			Metrics: map[string]float64{"frames/s": 40}},
		{Name: "BenchmarkRetired", Iterations: 1, NsPerOp: 1},
	}}
	cur := &Report{Schema: Schema, Benchmarks: []Benchmark{
		{Name: "BenchmarkRunner", Iterations: 100, NsPerOp: 50e6,
			Metrics: map[string]float64{"frames/s": 20, "p99.99-ms": 90}},
		{Name: "BenchmarkFleet/cores=1", Iterations: 10, NsPerOp: 60e6,
			Metrics: map[string]float64{"vehicles/s": 7}},
	}}
	deltas := Compare(prev, cur)
	if len(deltas) != 1 {
		t.Fatalf("got %d deltas, want 1 (only the shared benchmark): %v", len(deltas), deltas)
	}
	d := deltas[0]
	if d.Name != "BenchmarkRunner" || d.OldNsPerOp != 25e6 || d.NewNsPerOp != 50e6 {
		t.Errorf("delta = %+v", d)
	}
	if d.Ratio != 2 {
		t.Errorf("ratio = %v, want 2", d.Ratio)
	}
	if got := d.Metrics["frames/s"]; got != [2]float64{45, 20} {
		t.Errorf("frames/s delta = %v, want {45 20}", got)
	}
	if _, ok := d.Metrics["p99.99-ms"]; ok {
		t.Error("metric absent from prev must not appear in the delta")
	}
	if s := d.String(); !strings.Contains(s, "2.00x slower") {
		t.Errorf("String() = %q", s)
	}
}

func TestRegressionsThresholdAndExplained(t *testing.T) {
	deltas := []Delta{
		{Name: "BenchmarkFast", Ratio: 0.8},
		{Name: "BenchmarkNoisy", Ratio: 1.4},
		{Name: "BenchmarkSlow", Ratio: 2.0},
		{Name: "BenchmarkWaived", Ratio: 3.0},
	}
	regs := Regressions(deltas, 1.5, map[string]string{
		"BenchmarkWaived": "now does twice the work by design",
	})
	if len(regs) != 1 || regs[0].Name != "BenchmarkSlow" {
		t.Fatalf("regressions = %v, want only BenchmarkSlow", regs)
	}
	if got := Regressions(deltas, 1.5, nil); len(got) != 2 {
		t.Fatalf("without waivers got %d regressions, want 2", len(got))
	}
}

func TestParseRejectsMalformedBenchLine(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkX 12 fast\n"))
	if err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestValidateRejectsBadReports(t *testing.T) {
	cases := map[string]*Report{
		"wrong schema": {Schema: "nope", Benchmarks: []Benchmark{{Name: "BenchmarkA", Iterations: 1, NsPerOp: 1}}},
		"empty":        {Schema: Schema},
		"bad name":     {Schema: Schema, Benchmarks: []Benchmark{{Name: "TestA", Iterations: 1, NsPerOp: 1}}},
		"zero ns": {Schema: Schema,
			Benchmarks: []Benchmark{{Name: "BenchmarkA", Iterations: 1, NsPerOp: 0}}},
		"incomplete baseline": {Schema: Schema,
			Benchmarks: []Benchmark{{Name: "BenchmarkA", Iterations: 1, NsPerOp: 1}},
			Baseline:   &Baseline{Name: "BenchmarkA"}},
	}
	for name, rep := range cases {
		if err := rep.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}
