package dnn

import (
	"testing"

	"adsim/internal/tensor"
)

func TestBatchNormShapeAndCost(t *testing.T) {
	bn := NewBatchNorm(1)
	in := Shape{C: 4, H: 8, W: 8}
	if bn.OutShape(in) != in {
		t.Error("batchnorm must preserve shape")
	}
	c := bn.CostAt(in)
	if c.MACs != 256 || c.WeightBytes != 32 {
		t.Errorf("batchnorm cost %+v", c)
	}
	if bn.Name() != "batchnorm" {
		t.Error("name wrong")
	}
}

func TestBatchNormForward(t *testing.T) {
	bn := NewBatchNorm(1)
	in := tensor.New(2, 2, 2)
	in.Fill(1)
	out := bn.Forward(in)
	if in.Data[0] != 1 {
		t.Error("batchnorm must not mutate its input")
	}
	// y = a*1 + b with a in [0.8,1.2], b in [-0.05,0.05].
	for _, v := range out.Data {
		if v < 0.7 || v > 1.3 {
			t.Fatalf("batchnorm output %v outside near-identity band", v)
		}
	}
	// Per-channel params: all elements of one channel transform equally.
	in2 := tensor.New(2, 2, 2)
	in2.Data = []float32{1, 2, 3, 4, 1, 2, 3, 4}
	out2 := bn.Forward(in2)
	r0 := out2.Data[1] - out2.Data[0]
	r1 := out2.Data[2] - out2.Data[1]
	if r0 != r1 {
		t.Error("affine transform not linear within a channel")
	}
}

func TestReorgShapes(t *testing.T) {
	r := NewReorg(2)
	out := r.OutShape(Shape{C: 64, H: 26, W: 26})
	if out != (Shape{256, 13, 13}) {
		t.Fatalf("reorg shape %v, want 256x13x13", out)
	}
	if bad := r.OutShape(Shape{C: 4, H: 7, W: 8}); bad.H != 0 {
		t.Error("odd input should produce invalid shape")
	}
	if r.CostAt(Shape{C: 1, H: 4, W: 4}).MACs != 0 {
		t.Error("reorg should cost no MACs")
	}
}

func TestReorgPanicsOnBadStride(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewReorg(1) should panic")
		}
	}()
	NewReorg(1)
}

func TestReorgForwardPreservesValues(t *testing.T) {
	r := NewReorg(2)
	in := tensor.New(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	out := r.Forward(in)
	if out.C != 4 || out.H != 2 || out.W != 2 {
		t.Fatalf("reorg out %v", out)
	}
	// Every input value appears exactly once.
	seen := map[float32]int{}
	for _, v := range out.Data {
		seen[v]++
	}
	for i := range in.Data {
		if seen[float32(i)] != 1 {
			t.Fatalf("value %d appears %d times", i, seen[float32(i)])
		}
	}
	// Block (0,0) values {0,1,4,5} land in channels 0..3 at (0,0).
	if out.At(0, 0, 0) != 0 || out.At(1, 0, 0) != 1 || out.At(2, 0, 0) != 4 || out.At(3, 0, 0) != 5 {
		t.Errorf("reorg layout wrong: %v", out.Data)
	}
}

func TestGraphLinearEquivalence(t *testing.T) {
	// A graph with no branches must agree with the Network equivalent.
	net := MustNetwork("lin", Shape{C: 1, H: 16, W: 16},
		NewConv(4, 3, 1, 1, Leaky, 11),
		NewMaxPool(2, 2),
		NewFC(5, Linear, 12),
	)
	g := NewGraph("lin", Shape{C: 1, H: 16, W: 16})
	n := g.AddLayer(NewConv(4, 3, 1, 1, Leaky, 11), InputID)
	n = g.AddLayer(NewMaxPool(2, 2), n)
	g.AddLayer(NewFC(5, Linear, 12), n)

	if g.OutShape() != net.OutShape() {
		t.Fatalf("shapes differ: %v vs %v", g.OutShape(), net.OutShape())
	}
	if g.Cost() != net.Cost() {
		t.Fatalf("costs differ: %+v vs %+v", g.Cost(), net.Cost())
	}
	in := tensor.New(1, 16, 16)
	for i := range in.Data {
		in.Data[i] = float32(i%13) / 13
	}
	a := net.Forward(in)
	b := g.Forward(in)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("forward outputs differ")
		}
	}
}

func TestGraphConcat(t *testing.T) {
	g := NewGraph("cat", Shape{C: 2, H: 4, W: 4})
	a := g.AddLayer(NewConv(3, 1, 1, 0, Linear, 1), InputID)
	b := g.AddLayer(NewConv(5, 1, 1, 0, Linear, 2), InputID)
	g.AddConcat(a, b)
	out, err := g.Check()
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{8, 4, 4}) {
		t.Fatalf("concat shape %v, want 8x4x4", out)
	}
	res := g.Forward(tensor.New(2, 4, 4))
	if res.C != 8 {
		t.Fatalf("forward concat C=%d", res.C)
	}
}

func TestGraphConcatMismatchRejected(t *testing.T) {
	g := NewGraph("bad", Shape{C: 1, H: 8, W: 8})
	a := g.AddLayer(NewConv(2, 1, 1, 0, Linear, 1), InputID)
	b := g.AddLayer(NewMaxPool(2, 2), InputID) // 4x4: spatial mismatch
	g.AddConcat(a, b)
	if _, err := g.Check(); err == nil {
		t.Error("spatial-mismatch concat accepted")
	}
}

func TestGraphEmptyRejected(t *testing.T) {
	if _, err := NewGraph("e", Shape{C: 1, H: 4, W: 4}).Check(); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestYOLOv2GraphProfile(t *testing.T) {
	g := YOLOv2Graph(416)
	out := g.OutShape()
	if out.H != 13 || out.W != 13 {
		t.Errorf("grid %dx%d, want 13x13", out.H, out.W)
	}
	if out.C != DetCellDepth*DetBoxesPerCell {
		t.Errorf("out channels %d", out.C)
	}
	full := g.Cost()
	plain := YOLOv2(416).Cost()
	// The passthrough's concat feeds 1280 channels (vs 1024) into the
	// penultimate conv, plus the 1x1/64 branch: ~2-3 GMACs extra.
	if full.MACs <= plain.MACs {
		t.Errorf("passthrough graph (%d MACs) should exceed the plain stack (%d)", full.MACs, plain.MACs)
	}
	if float64(full.MACs) > 1.3*float64(plain.MACs) {
		t.Errorf("passthrough overhead implausibly large: %d vs %d", full.MACs, plain.MACs)
	}
}

func TestYOLOv2GraphForwardTiny(t *testing.T) {
	// Executing the full 416 graph natively is too slow for unit tests;
	// 32px exercises every node type including the concat and reorg.
	g := YOLOv2Graph(32)
	out := g.Forward(tensor.New(3, 32, 32))
	want := g.OutShape()
	if out.C != want.C || out.H != want.H || out.W != want.W {
		t.Fatalf("forward %v, want %v", out, want)
	}
}
