package dnn

import (
	"fmt"

	"adsim/internal/tensor"
)

// Graph is a directed acyclic network supporting skip connections and
// channel concatenation — enough to express YOLOv2's passthrough (the
// 26×26×512 feature map reorganized and concatenated with the 13×13×1024
// head), which the feed-forward Network type cannot.
//
// Build with NewGraph/AddLayer/AddConcat; the last node added is the
// output. Node IDs are dense ints; InputID designates the graph input.
type Graph struct {
	Name  string
	Input Shape
	nodes []gnode
}

// InputID is the pseudo-node ID of the graph input.
const InputID = -1

type gnode struct {
	layer  Layer // nil for concat nodes
	inputs []int
}

// NewGraph starts a graph with the given input shape.
func NewGraph(name string, input Shape) *Graph {
	return &Graph{Name: name, Input: input}
}

// AddLayer appends a layer node reading from the node with ID from
// (InputID for the graph input) and returns the new node's ID.
func (g *Graph) AddLayer(l Layer, from int) int {
	g.nodes = append(g.nodes, gnode{layer: l, inputs: []int{from}})
	return len(g.nodes) - 1
}

// AddConcat appends a channel-concatenation node over the given nodes and
// returns its ID. All inputs must share spatial dimensions (validated by
// Check/Forward).
func (g *Graph) AddConcat(from ...int) int {
	g.nodes = append(g.nodes, gnode{inputs: append([]int(nil), from...)})
	return len(g.nodes) - 1
}

// shapeOf computes the output shape of node id (InputID = graph input).
func (g *Graph) shapeOf(id int, memo map[int]Shape) (Shape, error) {
	if id == InputID {
		return g.Input, nil
	}
	if id < 0 || id >= len(g.nodes) {
		return Shape{}, fmt.Errorf("dnn: graph %s references unknown node %d", g.Name, id)
	}
	if s, ok := memo[id]; ok {
		return s, nil
	}
	n := g.nodes[id]
	var out Shape
	if n.layer != nil {
		in, err := g.shapeOf(n.inputs[0], memo)
		if err != nil {
			return Shape{}, err
		}
		out = n.layer.OutShape(in)
		if out.C <= 0 || out.H <= 0 || out.W <= 0 {
			return Shape{}, fmt.Errorf("dnn: graph %s node %d (%s) produces invalid shape %v",
				g.Name, id, n.layer.Name(), out)
		}
	} else {
		if len(n.inputs) == 0 {
			return Shape{}, fmt.Errorf("dnn: graph %s node %d concat has no inputs", g.Name, id)
		}
		for i, from := range n.inputs {
			s, err := g.shapeOf(from, memo)
			if err != nil {
				return Shape{}, err
			}
			if i == 0 {
				out = s
			} else {
				if s.H != out.H || s.W != out.W {
					return Shape{}, fmt.Errorf("dnn: graph %s node %d concat shape mismatch %v vs %v",
						g.Name, id, out, s)
				}
				out.C += s.C
			}
		}
	}
	memo[id] = out
	return out, nil
}

// Check validates the whole graph and returns its output shape.
func (g *Graph) Check() (Shape, error) {
	if len(g.nodes) == 0 {
		return Shape{}, fmt.Errorf("dnn: graph %s is empty", g.Name)
	}
	memo := map[int]Shape{}
	return g.shapeOf(len(g.nodes)-1, memo)
}

// OutShape returns the output shape; it panics on an invalid graph (use
// Check for error handling — the zoo constructs graphs statically).
func (g *Graph) OutShape() Shape {
	s, err := g.Check()
	if err != nil {
		panic(err)
	}
	return s
}

// Cost aggregates the cost of every node at the declared input shape.
func (g *Graph) Cost() Cost {
	memo := map[int]Shape{}
	var total Cost
	for id, n := range g.nodes {
		if n.layer == nil {
			continue // concat moves pointers, no MACs
		}
		in, err := g.shapeOf(n.inputs[0], memo)
		if err != nil {
			panic(err)
		}
		total = total.Add(n.layer.CostAt(in))
		if _, err := g.shapeOf(id, memo); err != nil {
			panic(err)
		}
	}
	return total
}

// Forward runs inference through the graph and returns the output tensor.
func (g *Graph) Forward(in *tensor.T) *tensor.T {
	if _, err := g.Check(); err != nil {
		panic(err)
	}
	outs := make([]*tensor.T, len(g.nodes))
	get := func(id int) *tensor.T {
		if id == InputID {
			return in
		}
		return outs[id]
	}
	for id, n := range g.nodes {
		if n.layer != nil {
			outs[id] = n.layer.Forward(get(n.inputs[0]))
			continue
		}
		// Concatenate along channels.
		first := get(n.inputs[0])
		totalC := 0
		for _, from := range n.inputs {
			totalC += get(from).C
		}
		cat := tensor.New(totalC, first.H, first.W)
		off := 0
		for _, from := range n.inputs {
			t := get(from)
			copy(cat.Data[off:], t.Data)
			off += len(t.Data)
		}
		outs[id] = cat
	}
	return outs[len(outs)-1]
}

// NumNodes reports the number of nodes in the graph.
func (g *Graph) NumNodes() int { return len(g.nodes) }
