package dnn

import (
	"math/rand"
	"testing"
)

// A checkpoint that never fires must leave the anytime pass bitwise equal
// to the plain scratch forward, for both the Network and Executor paths.
func TestForwardAnytimeFullRunBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	net := TinyYOLO(32)
	in := randInput(rng, net.Input.C, net.Input.H, net.Input.W)

	var want Scratch
	ref := net.ForwardScratch(in.Clone(), &want).Clone()

	var s1 Scratch
	out, ran := net.ForwardAnytimeScratch(in.Clone(), &s1, func(int) bool { return true })
	if ran != len(net.Layers) {
		t.Fatalf("network pass ran %d layers, want %d", ran, len(net.Layers))
	}
	for j := range ref.Data {
		if out.Data[j] != ref.Data[j] {
			t.Fatalf("network pass out[%d] = %v, want %v (bitwise)", j, out.Data[j], ref.Data[j])
		}
	}

	for _, workers := range []int{1, 3} {
		exec := NewExecutor(workers)
		var s2 Scratch
		out, ran := exec.ForwardAnytime(net, in.Clone(), &s2, nil)
		if ran != len(net.Layers) {
			t.Fatalf("workers=%d: ran %d layers, want %d", workers, ran, len(net.Layers))
		}
		for j := range ref.Data {
			if out.Data[j] != ref.Data[j] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v (bitwise)", workers, j, out.Data[j], ref.Data[j])
			}
		}
	}
}

// An exit at layer boundary k must execute exactly k layers, return the
// k-th intermediate activation, and consult the checkpoint in ascending
// order once per attempted layer.
func TestForwardAnytimeEarlyExit(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	net := TinyYOLO(32)
	in := randInput(rng, net.Input.C, net.Input.H, net.Input.W)
	exec := NewExecutor(2)

	for cut := 0; cut <= len(net.Layers); cut++ {
		// Reference: run the truncated prefix through the plain path.
		var ref Scratch
		ref.begin()
		want := in
		for i := 0; i < cut; i++ {
			want = net.Layers[i].ForwardScratch(want, &ref)
		}

		var asked []int
		var s Scratch
		out, ran := exec.ForwardAnytime(net, in.Clone(), &s, func(next int) bool {
			asked = append(asked, next)
			return next < cut
		})
		if ran != cut {
			t.Fatalf("cut=%d: ran %d layers", cut, ran)
		}
		wantAsks := cut + 1
		if cut == len(net.Layers) {
			wantAsks = cut // no boundary after the last layer
		}
		if len(asked) != wantAsks {
			t.Fatalf("cut=%d: checkpoint consulted %d times, want %d", cut, len(asked), wantAsks)
		}
		for i, a := range asked {
			if a != i {
				t.Fatalf("cut=%d: checkpoint order %v", cut, asked)
			}
		}
		if out.Len() != want.Len() {
			t.Fatalf("cut=%d: out len %d, want %d", cut, out.Len(), want.Len())
		}
		for j := range want.Data {
			if out.Data[j] != want.Data[j] {
				t.Fatalf("cut=%d: out[%d] = %v, want %v (bitwise)", cut, j, out.Data[j], want.Data[j])
			}
		}
	}
}
