package dnn

import "sync"

// NetCache memoizes deterministically-constructed networks by
// (architecture, size) so co-resident engines — a fleet's per-vehicle
// detectors and trackers — hold the SAME *Network instead of private,
// bitwise-identical copies. Zoo constructors seed weights per layer, so
// two builds of one architecture at one size are indistinguishable; the
// cache makes that equality a pointer equality.
//
// Sharing matters twice. It collapses per-vehicle weight memory to one
// copy per architecture+size, and — the reason the fleet wires it — it is
// what lets a batching executor's gather seam group cross-stream forward
// calls: the seam batches requests on the same network pointer (grouping
// by weights-equality would cost more than the GEMM it saves), so private
// per-vehicle networks can never batch no matter how well their admission
// is phase-aligned.
//
// Networks are safe to share: inference only reads weights (lazy weight
// and quantization initialization is mutex-guarded in the layers), and all
// per-call state lives in the caller's Scratch.
//
// A nil *NetCache is valid and simply builds uncached — engines call Get
// unconditionally.
type NetCache struct {
	mu sync.Mutex
	m  map[netKey]*Network
}

type netKey struct {
	kind string
	size int
}

// NewNetCache returns an empty shared-network cache.
func NewNetCache() *NetCache { return &NetCache{} }

// Get returns the cached network for (kind, size), building and caching it
// via build on first use. On a nil receiver Get just builds: callers keep
// one unconditional call site whether or not sharing is configured.
func (c *NetCache) Get(kind string, size int, build func(size int) *Network) *Network {
	if c == nil {
		return build(size)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := netKey{kind: kind, size: size}
	if n, ok := c.m[k]; ok {
		return n
	}
	n := build(size)
	if c.m == nil {
		c.m = make(map[netKey]*Network)
	}
	c.m[k] = n
	return n
}
