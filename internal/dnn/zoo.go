package dnn

// The network zoo defines the DNN architectures used by the paper's
// pipeline at two scales:
//
//   - Paper scale (YOLOv2, GOTURN/CaffeNet): used for cost accounting that
//     drives the calibrated platform latency models. Running these natively
//     in pure Go would take seconds per frame, exactly as the paper found on
//     CPUs — the experiments instead consume their MAC/byte profiles.
//   - Tiny scale (TinyYOLO-ish, TinyTracker): structurally identical
//     (same layer types, same decode heads) but small enough to execute
//     natively in tests and examples.
//
// Seeds are fixed per layer so weights — and therefore detector/tracker
// behaviour — are reproducible across runs.

// DetGridClasses is the number of object classes the detection head
// predicts. The paper keeps four: vehicles, bicycles, traffic signs and
// pedestrians.
const DetGridClasses = 4

// DetBoxesPerCell is the number of anchor boxes predicted per grid cell.
const DetBoxesPerCell = 2

// DetCellDepth is the per-cell prediction depth: per box (x, y, w, h,
// confidence) plus shared class scores, YOLOv1-style decode.
const DetCellDepth = DetBoxesPerCell*5 + DetGridClasses

// YOLOv2 returns the paper-scale object-detection network: the Darknet-19
// backbone plus detection head, as used by the YOLO detector the paper
// selected for DET. Input is inSize×inSize luminance (the canonical YOLOv2
// input is 416×416; Fig 13 rescales it).
func YOLOv2(inSize int) *Network {
	s := int64(100)
	next := func() int64 { s++; return s }
	return MustNetwork("yolov2", Shape{C: 3, H: inSize, W: inSize},
		NewConv(32, 3, 1, 1, Leaky, next()),
		NewMaxPool(2, 2),
		NewConv(64, 3, 1, 1, Leaky, next()),
		NewMaxPool(2, 2),
		NewConv(128, 3, 1, 1, Leaky, next()),
		NewConv(64, 1, 1, 0, Leaky, next()),
		NewConv(128, 3, 1, 1, Leaky, next()),
		NewMaxPool(2, 2),
		NewConv(256, 3, 1, 1, Leaky, next()),
		NewConv(128, 1, 1, 0, Leaky, next()),
		NewConv(256, 3, 1, 1, Leaky, next()),
		NewMaxPool(2, 2),
		NewConv(512, 3, 1, 1, Leaky, next()),
		NewConv(256, 1, 1, 0, Leaky, next()),
		NewConv(512, 3, 1, 1, Leaky, next()),
		NewConv(256, 1, 1, 0, Leaky, next()),
		NewConv(512, 3, 1, 1, Leaky, next()),
		NewMaxPool(2, 2),
		NewConv(1024, 3, 1, 1, Leaky, next()),
		NewConv(512, 1, 1, 0, Leaky, next()),
		NewConv(1024, 3, 1, 1, Leaky, next()),
		NewConv(512, 1, 1, 0, Leaky, next()),
		NewConv(1024, 3, 1, 1, Leaky, next()),
		// Detection head.
		NewConv(1024, 3, 1, 1, Leaky, next()),
		NewConv(1024, 3, 1, 1, Leaky, next()),
		NewConv(DetCellDepth*DetBoxesPerCell, 1, 1, 0, Linear, next()),
	)
}

// YOLOv2Graph returns the complete YOLOv2 as a DAG, including the pieces
// the feed-forward YOLOv2 network omits: batch normalization after every
// convolution and the passthrough connection (the 26×26×512 feature map
// routed through a 1×1 conv and a stride-2 reorg, then concatenated with
// the 13×13×1024 head before the final detection convolutions).
func YOLOv2Graph(inSize int) *Graph {
	s := int64(700)
	next := func() int64 { s++; return s }
	g := NewGraph("yolov2-passthrough", Shape{C: 3, H: inSize, W: inSize})

	// convBN appends conv + batch-norm and returns the BN node ID.
	convBN := func(from, outC, k, stride, pad int) int {
		id := g.AddLayer(NewConv(outC, k, stride, pad, Leaky, next()), from)
		return g.AddLayer(NewBatchNorm(next()), id)
	}

	n := convBN(InputID, 32, 3, 1, 1)
	n = g.AddLayer(NewMaxPool(2, 2), n)
	n = convBN(n, 64, 3, 1, 1)
	n = g.AddLayer(NewMaxPool(2, 2), n)
	n = convBN(n, 128, 3, 1, 1)
	n = convBN(n, 64, 1, 1, 0)
	n = convBN(n, 128, 3, 1, 1)
	n = g.AddLayer(NewMaxPool(2, 2), n)
	n = convBN(n, 256, 3, 1, 1)
	n = convBN(n, 128, 1, 1, 0)
	n = convBN(n, 256, 3, 1, 1)
	n = g.AddLayer(NewMaxPool(2, 2), n)
	n = convBN(n, 512, 3, 1, 1)
	n = convBN(n, 256, 1, 1, 0)
	n = convBN(n, 512, 3, 1, 1)
	n = convBN(n, 256, 1, 1, 0)
	passSrc := convBN(n, 512, 3, 1, 1) // 26x26x512 passthrough source
	n = g.AddLayer(NewMaxPool(2, 2), passSrc)
	n = convBN(n, 1024, 3, 1, 1)
	n = convBN(n, 512, 1, 1, 0)
	n = convBN(n, 1024, 3, 1, 1)
	n = convBN(n, 512, 1, 1, 0)
	n = convBN(n, 1024, 3, 1, 1)
	// Detection head.
	n = convBN(n, 1024, 3, 1, 1)
	head := convBN(n, 1024, 3, 1, 1)
	// Passthrough branch: 1x1 conv then space-to-depth.
	p := convBN(passSrc, 64, 1, 1, 0)
	p = g.AddLayer(NewReorg(2), p)
	cat := g.AddConcat(head, p)
	n = convBN(cat, 1024, 3, 1, 1)
	g.AddLayer(NewConv(DetCellDepth*DetBoxesPerCell, 1, 1, 0, Linear, next()), n)
	return g
}

// TinyYOLO returns a structurally-YOLO detection network small enough for
// native execution in tests: a short conv/pool tower ending in the same
// per-cell detection encoding as YOLOv2. inSize must be a multiple of 16.
func TinyYOLO(inSize int) *Network {
	s := int64(200)
	next := func() int64 { s++; return s }
	return MustNetwork("tiny-yolo", Shape{C: 1, H: inSize, W: inSize},
		NewConv(8, 3, 1, 1, Leaky, next()),
		NewMaxPool(2, 2),
		NewConv(16, 3, 1, 1, Leaky, next()),
		NewMaxPool(2, 2),
		NewConv(32, 3, 1, 1, Leaky, next()),
		NewMaxPool(2, 2),
		NewConv(32, 3, 1, 1, Leaky, next()),
		NewMaxPool(2, 2),
		NewConv(DetCellDepth, 1, 1, 0, Linear, next()),
	)
}

// GOTURNTower returns the paper-scale convolutional feature tower of the
// GOTURN tracker (CaffeNet/AlexNet-style). GOTURN runs this tower twice per
// tracked object — once on the previous frame's target crop and once on the
// current frame's search region — then regresses the target box with the FC
// head. Canonical input is 227×227 RGB.
func GOTURNTower(inSize int) *Network {
	s := int64(300)
	next := func() int64 { s++; return s }
	return MustNetwork("goturn-tower", Shape{C: 3, H: inSize, W: inSize},
		NewConv(96, 11, 4, 0, ReLU, next()),
		NewMaxPool(3, 2),
		NewConv(256, 5, 1, 2, ReLU, next()),
		NewMaxPool(3, 2),
		NewConv(384, 3, 1, 1, ReLU, next()),
		NewConv(384, 3, 1, 1, ReLU, next()),
		NewConv(256, 3, 1, 1, ReLU, next()),
		NewMaxPool(3, 2),
	)
}

// GOTURNHead returns the FC regression head consuming the concatenated
// two-branch tower output. towerOut is the per-branch output shape.
// The head is FC-dominated (~58M parameters at paper scale), which is why
// the paper accelerates TRA with an EIE-style FC ASIC.
func GOTURNHead(towerOut Shape) *Network {
	s := int64(400)
	next := func() int64 { s++; return s }
	concat := Shape{C: 2 * towerOut.Elems(), H: 1, W: 1}
	return MustNetwork("goturn-head", concat,
		NewFC(4096, ReLU, next()),
		NewFC(4096, ReLU, next()),
		NewFC(4096, ReLU, next()),
		NewFC(4, Linear, next()),
	)
}

// TinyTrackerTower returns a small natively-executable tracker tower. Like
// its paper-scale counterpart, its convolutional work dominates the
// tracker's crop/match bookkeeping by a comfortable margin.
func TinyTrackerTower(inSize int) *Network {
	s := int64(500)
	next := func() int64 { s++; return s }
	return MustNetwork("tiny-tracker-tower", Shape{C: 1, H: inSize, W: inSize},
		NewConv(16, 5, 2, 2, ReLU, next()),
		NewMaxPool(2, 2),
		NewConv(32, 3, 1, 1, ReLU, next()),
		NewConv(32, 3, 1, 1, ReLU, next()),
		NewMaxPool(2, 2),
	)
}

// TinyTrackerHead returns the FC head matching TinyTrackerTower.
func TinyTrackerHead(towerOut Shape) *Network {
	s := int64(600)
	next := func() int64 { s++; return s }
	concat := Shape{C: 2 * towerOut.Elems(), H: 1, W: 1}
	return MustNetwork("tiny-tracker-head", concat,
		NewFC(64, ReLU, next()),
		NewFC(4, Linear, next()),
	)
}

// TrackerCost returns the aggregate cost of one GOTURN-style tracking
// inference: two tower passes plus one head pass.
func TrackerCost(tower, head *Network) Cost {
	towerCost := tower.Cost()
	// Two branches share weights, so weight bytes are counted once but
	// compute and activations twice.
	double := Cost{
		MACs:        2 * towerCost.MACs,
		WeightBytes: towerCost.WeightBytes,
		ActBytes:    2 * towerCost.ActBytes,
		ConvMACs:    2 * towerCost.ConvMACs,
		FCMACs:      2 * towerCost.FCMACs,
	}
	return double.Add(head.Cost())
}
