package dnn

import (
	"fmt"
	"strings"

	"adsim/internal/tensor"
)

// Network is a feed-forward sequence of layers with a declared input shape.
type Network struct {
	Name   string
	Input  Shape
	Layers []Layer
}

// NewNetwork builds a network. It validates that every layer produces a
// positive output shape when fed the declared input.
func NewNetwork(name string, input Shape, layers ...Layer) (*Network, error) {
	n := &Network{Name: name, Input: input, Layers: layers}
	shape := input
	for i, l := range layers {
		shape = l.OutShape(shape)
		if shape.C <= 0 || shape.H <= 0 || shape.W <= 0 {
			return nil, fmt.Errorf("dnn: %s layer %d (%s) produces invalid shape %v",
				name, i, l.Name(), shape)
		}
	}
	return n, nil
}

// MustNetwork is NewNetwork that panics on error; for the static network zoo
// whose shapes are fixed at compile time.
func MustNetwork(name string, input Shape, layers ...Layer) *Network {
	n, err := NewNetwork(name, input, layers...)
	if err != nil {
		panic(err)
	}
	return n
}

// OutShape returns the network's final output shape.
func (n *Network) OutShape() Shape {
	shape := n.Input
	for _, l := range n.Layers {
		shape = l.OutShape(shape)
	}
	return shape
}

// Cost returns the aggregate cost at the declared input shape.
func (n *Network) Cost() Cost { return n.CostAt(n.Input) }

// CostAt returns the aggregate cost for an arbitrary input shape, used by
// the resolution-scaling experiments.
func (n *Network) CostAt(input Shape) Cost {
	var total Cost
	shape := input
	for _, l := range n.Layers {
		total = total.Add(l.CostAt(shape))
		shape = l.OutShape(shape)
	}
	return total
}

// LayerCosts returns the per-layer costs at the declared input shape, in
// layer order. The platform models consume this for layer-wise roofline
// latency estimation.
func (n *Network) LayerCosts() []Cost {
	costs := make([]Cost, len(n.Layers))
	shape := n.Input
	for i, l := range n.Layers {
		costs[i] = l.CostAt(shape)
		shape = l.OutShape(shape)
	}
	return costs
}

// LayerCostsAt is LayerCosts for an arbitrary input shape.
func (n *Network) LayerCostsAt(input Shape) []Cost {
	costs := make([]Cost, len(n.Layers))
	shape := input
	for i, l := range n.Layers {
		costs[i] = l.CostAt(shape)
		shape = l.OutShape(shape)
	}
	return costs
}

// Forward runs inference through all layers.
func (n *Network) Forward(in *tensor.T) *tensor.T {
	out := in
	for _, l := range n.Layers {
		out = l.Forward(out)
	}
	return out
}

// Summary renders a table of layers, shapes and costs, similar to the
// summaries printed by deep-learning frameworks.
func (n *Network) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (input %v)\n", n.Name, n.Input)
	shape := n.Input
	var total Cost
	for _, l := range n.Layers {
		c := l.CostAt(shape)
		out := l.OutShape(shape)
		fmt.Fprintf(&b, "  %-16s %-14v %12d MACs %10d wbytes\n",
			l.Name(), out, c.MACs, c.WeightBytes)
		total = total.Add(c)
		shape = out
	}
	fmt.Fprintf(&b, "  total: %.2f GMAC, %.1f MB weights\n",
		float64(total.MACs)/1e9, float64(total.WeightBytes)/1e6)
	return b.String()
}
