package dnn

import (
	"adsim/internal/tensor"
)

// Scratch is a per-worker inference arena. Passing one to
// Network.ForwardScratch makes the whole feed-forward pass allocation-free
// once warm: layer outputs ping-pong between two arena slots and the conv
// kernels draw their im2col/quantization buffers from the same arena.
//
// Ownership rules (see DESIGN.md "Buffer ownership and reuse"):
//
//   - A Scratch is NOT safe for concurrent use; pool one per worker.
//   - The tensor returned by ForwardScratch aliases arena memory and is
//     valid only until the scratch is used again — copy out (or consume)
//     what must survive, e.g. via Hold.
//   - Hold slots are never touched by the layers, so held tensors survive
//     any number of forward passes on the same scratch.
//
// Quantized selects the int8 inference path: convolutions and fully
// connected layers run tensor.Conv2DInt8 / tensor.FullyConnectedInt8
// against lazily cached per-channel quantized weights. Everything else
// (pooling, batch norm, reorg, activations) runs in float32 on the
// dequantized activations. The zero value is a ready-to-use float scratch.
type Scratch struct {
	// Quantized switches conv/FC layers to int8 kernels. Flip it only
	// between forward passes, never mid-pass.
	Quantized bool

	arena tensor.Scratch
	ping  int
}

// begin resets the ping-pong rotation for a new forward pass.
func (s *Scratch) begin() { s.ping = 0 }

// next returns the output slot for the upcoming layer and advances the
// rotation. Slots 0 and 1 alternate, so a layer always reads its input from
// one slot (or the caller's tensor) and writes the other.
func (s *Scratch) next(sh Shape) *tensor.T {
	t := s.arena.Buf(s.ping, sh.C, sh.H, sh.W)
	s.ping ^= 1
	return t
}

// Hold returns caller-owned slot i (i >= 0 maps to arena slots >= 2) shaped
// c×h×w. The layers never write these slots, so callers use them to keep
// values alive across forward passes on the same scratch — e.g. the
// tracker's two-branch feature concat.
func (s *Scratch) Hold(i, c, h, w int) *tensor.T {
	if i < 0 {
		panic("dnn: negative scratch hold slot")
	}
	return s.arena.Buf(2+i, c, h, w)
}

// Arena exposes the underlying tensor arena for callers that invoke tensor
// kernels directly against the same backing store.
func (s *Scratch) Arena() *tensor.Scratch { return &s.arena }

// ForwardScratch runs inference drawing every intermediate and output
// buffer from s; a warm (network, scratch) pair allocates nothing. The
// float path is bitwise-identical to Forward. With s.Quantized set, conv/FC
// layers run int8 (see the tolerance contract in internal/tensor/int8.go).
// The returned tensor aliases scratch memory — see Scratch ownership rules.
func (n *Network) ForwardScratch(in *tensor.T, s *Scratch) *tensor.T {
	s.begin()
	out := in
	for _, l := range n.Layers {
		out = l.ForwardScratch(out, s)
	}
	return out
}
