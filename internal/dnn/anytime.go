package dnn

import (
	"adsim/internal/tensor"
)

// This file is the anytime-inference seam: a forward pass that can stop at
// any layer boundary when its time budget is nearly spent, returning the
// deepest features computed so far instead of blowing the deadline. It is
// the mechanism behind the pipeline's anytime DET mode — a budget-pressed
// detection frame commits a coarser-but-on-time result rather than missing
// outright (see internal/pipeline/deadline.go and DESIGN.md §12).

// Checkpoint is the anytime-execution probe. Before executing layer i
// (0-based), the forward pass asks keep(i) whether the remaining budget
// still covers more work; a false answer stops the pass at that boundary.
// keep is called once per layer in ascending order, from the calling
// goroutine only.
type Checkpoint func(next int) bool

// ForwardAnytimeScratch is ForwardScratch with layer-boundary checkpoints:
// the pass stops before the first layer whose checkpoint reports false and
// returns the output of the last executed layer (in itself when no layer
// ran) along with the number of layers executed. A pass whose checkpoint
// never fires is bitwise-identical to ForwardScratch. The returned tensor
// aliases scratch memory under the usual Scratch ownership rules.
func (n *Network) ForwardAnytimeScratch(in *tensor.T, s *Scratch, keep Checkpoint) (*tensor.T, int) {
	s.begin()
	out := in
	for i, l := range n.Layers {
		if keep != nil && !keep(i) {
			return out, i
		}
		out = l.ForwardScratch(out, s)
	}
	return out, len(n.Layers)
}

// ForwardAnytime is the executor's anytime forward: the layer loop of
// forwardOne (conv/FC kernels sharded across this executor's workers) with
// a checkpoint consulted at every layer boundary. It always runs inline and
// unbatched, even on a batching executor — an anytime call is
// latency-critical by definition, so it never waits on the gather seam.
// With s == nil a pooled arena is used and a caller-owned copy is returned.
func (e *Executor) ForwardAnytime(n *Network, in *tensor.T, s *Scratch, keep Checkpoint) (*tensor.T, int) {
	if s == nil {
		sc := e.AcquireScratch()
		out, ran := e.ForwardAnytime(n, in, sc, keep)
		out = out.Clone()
		e.ReleaseScratch(sc)
		return out, ran
	}
	w := e.Workers()
	s.begin()
	out := in
	for i, l := range n.Layers {
		if keep != nil && !keep(i) {
			return out, i
		}
		switch l := l.(type) {
		case *Conv:
			out = l.forward(out, s, w)
		case *FC:
			out = l.forward(out, s, w)
		default:
			out = l.ForwardScratch(out, s)
		}
	}
	return out, len(n.Layers)
}
