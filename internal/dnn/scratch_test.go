package dnn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"adsim/internal/tensor"
)

func randInput(rng *rand.Rand, c, h, w int) *tensor.T {
	in := tensor.New(c, h, w)
	for i := range in.Data {
		in.Data[i] = float32(rng.NormFloat64())
	}
	return in
}

// ForwardScratch is the same arithmetic as Forward routed through the arena;
// any divergence means a buffer was reused while still live.
func TestForwardScratchBitwiseEqualForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nets := map[string]*Network{
		"tiny-yolo":     TinyYOLO(32),
		"tracker-tower": TinyTrackerTower(32),
	}
	for name, net := range nets {
		in := randInput(rng, net.Input.C, net.Input.H, net.Input.W)
		want := net.Forward(in.Clone())
		var s Scratch
		for pass := 0; pass < 3; pass++ { // reused arena must stay stable
			got := net.ForwardScratch(in.Clone(), &s)
			if got.C != want.C || got.H != want.H || got.W != want.W {
				t.Fatalf("%s: shape %v, want %v", name, got, want)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%s pass %d: out[%d] = %v, want %v (bitwise)",
						name, pass, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func TestForwardScratchQuantizedWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := TinyTrackerTower(32)
	in := randInput(rng, net.Input.C, net.Input.H, net.Input.W)
	want := net.Forward(in.Clone())

	var s Scratch
	s.Quantized = true
	got := net.ForwardScratch(in.Clone(), &s)

	// Per-layer error compounds, so the end-to-end bound is loose; the
	// per-kernel budget is property-tested in tensor/int8_test.go. Here we
	// check the quantized network tracks the float one: same shape, outputs
	// within a small fraction of the float activation range.
	if got.Len() != want.Len() {
		t.Fatalf("quantized output len %d, want %d", got.Len(), want.Len())
	}
	var rangeMax float64
	for _, v := range want.Data {
		if a := math.Abs(float64(v)); a > rangeMax {
			rangeMax = a
		}
	}
	tol := 0.05*rangeMax + 1e-3
	for i := range want.Data {
		if diff := math.Abs(float64(got.Data[i] - want.Data[i])); diff > tol {
			t.Fatalf("out[%d]: quantized %v vs float %v, |diff| %v > %v (5%% of range)",
				i, got.Data[i], want.Data[i], diff, tol)
		}
	}
}

// Satellite regression: Conv.params/FC.params used to re-seed (and therefore
// silently replace) the weights whenever the same layer saw a different
// input shape in between — each shape must get one stable parameter set.
func TestParamsStableAcrossInterleavedShapes(t *testing.T) {
	c := NewConv(4, 3, 1, 1, ReLU, 9)
	p8 := c.params(8)
	p16 := c.params(16)
	if &p8.w[0] == &p16.w[0] {
		t.Fatal("different input shapes share a weight buffer")
	}
	w0 := p8.w[0]
	if again := c.params(8); again != p8 || again.w[0] != w0 {
		t.Fatal("conv params re-seeded after an interleaved shape change")
	}
	if again := c.params(16); again != p16 {
		t.Fatal("conv params(16) lost its entry")
	}

	f := NewFC(4, Linear, 9)
	q8 := f.params(8)
	q16 := f.params(16)
	qw0 := q8.w[0]
	if again := f.params(8); again != q8 || again.w[0] != qw0 {
		t.Fatal("fc params re-seeded after an interleaved shape change")
	}
	if again := f.params(16); again != q16 {
		t.Fatal("fc params(16) lost its entry")
	}
}

// The forward pass itself must be stable when one network alternates
// between two input sizes (the re-seeding bug made outputs change).
func TestForwardStableAcrossInterleavedInputSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := MustNetwork("probe", Shape{C: 1, H: 16, W: 16},
		NewConv(4, 3, 1, 1, ReLU, 9),
		NewFC(8, Linear, 10),
	)
	small := randInput(rng, 1, 16, 16)
	big := randInput(rng, 1, 24, 24)
	want := net.Forward(small.Clone())
	net.Forward(big.Clone()) // different FC input length in between
	got := net.Forward(small.Clone())
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("out[%d] changed after an interleaved input size: %v vs %v",
				i, got.Data[i], want.Data[i])
		}
	}
}

// Concurrent forward passes with separate scratches must not interfere
// (run under -race as part of `make race`).
func TestForwardScratchConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := TinyTrackerTower(32)
	in := randInput(rng, net.Input.C, net.Input.H, net.Input.W)
	want := net.Forward(in.Clone())

	var wg sync.WaitGroup
	fail := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s Scratch
			for iter := 0; iter < 10; iter++ {
				got := net.ForwardScratch(in.Clone(), &s)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						fail <- "concurrent ForwardScratch diverged"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	if msg, ok := <-fail; ok {
		t.Fatal(msg)
	}
}

// Hold slots must survive a second forward pass through the same scratch —
// the tracker's two-branch concat depends on it.
func TestHoldSurvivesForwardPass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := TinyTrackerTower(32)
	in := randInput(rng, net.Input.C, net.Input.H, net.Input.W)

	var s Scratch
	a := net.ForwardScratch(in.Clone(), &s)
	held := s.Hold(0, a.Len(), 1, 1)
	copy(held.Data, a.Data)
	snapshot := append([]float32(nil), held.Data...)
	net.ForwardScratch(in.Clone(), &s) // ping-pong slots get overwritten
	for i, v := range snapshot {
		if held.Data[i] != v {
			t.Fatalf("hold slot clobbered by a later forward pass at [%d]", i)
		}
	}
}

// Alloc gate (run by `make alloc-gate`): a warm float or int8 forward pass
// allocates nothing per frame.
func TestAllocForwardScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := TinyYOLO(32)
	in := randInput(rng, net.Input.C, net.Input.H, net.Input.W)
	for _, mode := range []struct {
		name      string
		quantized bool
	}{{"float", false}, {"int8", true}} {
		var s Scratch
		s.Quantized = mode.quantized
		net.ForwardScratch(in, &s) // warm: arena growth + lazy weight init
		allocs := testing.AllocsPerRun(10, func() {
			net.ForwardScratch(in, &s)
		})
		if allocs != 0 {
			t.Errorf("%s: warm ForwardScratch allocates %.1f/op, want 0", mode.name, allocs)
		}
	}
}

func BenchmarkNetworkForwardScratch(b *testing.B) {
	net := TinyYOLO(64)
	in := tensor.New(net.Input.C, net.Input.H, net.Input.W)
	for i := range in.Data {
		in.Data[i] = float32(i%255)/255 - 0.5
	}
	var s Scratch
	net.ForwardScratch(in, &s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardScratch(in, &s)
	}
}

func BenchmarkNetworkForwardScratchInt8(b *testing.B) {
	net := TinyYOLO(64)
	in := tensor.New(net.Input.C, net.Input.H, net.Input.W)
	for i := range in.Data {
		in.Data[i] = float32(i%255)/255 - 0.5
	}
	var s Scratch
	s.Quantized = true
	net.ForwardScratch(in, &s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardScratch(in, &s)
	}
}
