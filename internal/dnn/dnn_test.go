package dnn

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"adsim/internal/tensor"
)

func TestConvShapeAndCost(t *testing.T) {
	c := NewConv(16, 3, 1, 1, Leaky, 1)
	in := Shape{C: 8, H: 32, W: 32}
	out := c.OutShape(in)
	if out != (Shape{16, 32, 32}) {
		t.Fatalf("out shape %v", out)
	}
	cost := c.CostAt(in)
	wantMACs := int64(16 * 8 * 9 * 32 * 32)
	if cost.MACs != wantMACs || cost.ConvMACs != wantMACs || cost.FCMACs != 0 {
		t.Errorf("cost %+v, want MACs=%d", cost, wantMACs)
	}
	if cost.WeightBytes != 4*16*8*9 {
		t.Errorf("weight bytes %d", cost.WeightBytes)
	}
}

func TestConvStrideShape(t *testing.T) {
	c := NewConv(4, 3, 2, 1, Linear, 1)
	out := c.OutShape(Shape{C: 1, H: 9, W: 9})
	if out != (Shape{4, 5, 5}) {
		t.Fatalf("stride-2 shape %v, want 4x5x5", out)
	}
}

func TestFCShapeAndCost(t *testing.T) {
	f := NewFC(10, Linear, 1)
	in := Shape{C: 4, H: 2, W: 2}
	if f.OutShape(in) != (Shape{10, 1, 1}) {
		t.Fatal("fc out shape wrong")
	}
	cost := f.CostAt(in)
	if cost.MACs != 160 || cost.FCMACs != 160 || cost.ConvMACs != 0 {
		t.Errorf("fc cost %+v", cost)
	}
	if cost.WeightBytes != 640 {
		t.Errorf("fc weight bytes %d", cost.WeightBytes)
	}
}

func TestPoolShape(t *testing.T) {
	p := NewMaxPool(2, 2)
	if p.OutShape(Shape{3, 8, 8}) != (Shape{3, 4, 4}) {
		t.Fatal("pool shape wrong")
	}
}

func TestLayerNames(t *testing.T) {
	if NewConv(64, 3, 2, 1, Leaky, 1).Name() != "conv3-64/2" {
		t.Error("conv name wrong")
	}
	if NewMaxPool(2, 2).Name() != "maxpool2/2" {
		t.Error("pool name wrong")
	}
	if NewFC(4096, ReLU, 1).Name() != "fc-4096" {
		t.Error("fc name wrong")
	}
}

func TestConstructorsPanicOnBadArgs(t *testing.T) {
	cases := []func(){
		func() { NewConv(0, 3, 1, 1, Linear, 1) },
		func() { NewConv(8, 3, 0, 1, Linear, 1) },
		func() { NewMaxPool(0, 2) },
		func() { NewFC(0, Linear, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNetworkValidation(t *testing.T) {
	_, err := NewNetwork("bad", Shape{C: 1, H: 4, W: 4},
		NewMaxPool(2, 2), // 2x2
		NewMaxPool(2, 2), // 1x1
		NewMaxPool(2, 2), // 0x0 -> invalid
	)
	if err == nil {
		t.Error("network producing empty shape should be rejected")
	}
}

func TestNetworkCostsSumLayers(t *testing.T) {
	n := MustNetwork("t", Shape{C: 1, H: 8, W: 8},
		NewConv(4, 3, 1, 1, Leaky, 1),
		NewMaxPool(2, 2),
		NewFC(10, Linear, 2),
	)
	var sum Cost
	for _, c := range n.LayerCosts() {
		sum = sum.Add(c)
	}
	if sum != n.Cost() {
		t.Errorf("layer cost sum %+v != network cost %+v", sum, n.Cost())
	}
}

func TestNetworkForwardShapes(t *testing.T) {
	n := MustNetwork("t", Shape{C: 1, H: 16, W: 16},
		NewConv(4, 3, 1, 1, Leaky, 1),
		NewMaxPool(2, 2),
		NewConv(8, 3, 1, 1, Leaky, 2),
		NewMaxPool(2, 2),
		NewFC(12, SigmoidAct, 3),
	)
	in := tensor.New(1, 16, 16)
	for i := range in.Data {
		in.Data[i] = float32(i%7) / 7
	}
	out := n.Forward(in)
	want := n.OutShape()
	if out.C != want.C || out.H != want.H || out.W != want.W {
		t.Fatalf("forward shape %v, want %v", out, want)
	}
	for _, v := range out.Data {
		if v < 0 || v > 1 {
			t.Fatalf("sigmoid output %v out of range", v)
		}
	}
}

func TestForwardDeterministic(t *testing.T) {
	build := func() *Network {
		return MustNetwork("t", Shape{C: 1, H: 16, W: 16},
			NewConv(4, 3, 1, 1, Leaky, 11),
			NewFC(5, Linear, 12),
		)
	}
	in := tensor.New(1, 16, 16)
	in.Fill(0.5)
	a := build().Forward(in)
	b := build().Forward(in)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same-seed networks produced different outputs")
		}
	}
}

func TestDifferentSeedsDifferentWeights(t *testing.T) {
	in := tensor.New(1, 8, 8)
	in.Fill(1)
	a := NewConv(4, 3, 1, 1, Linear, 1).Forward(in)
	b := NewConv(4, 3, 1, 1, Linear, 2).Forward(in)
	same := true
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical conv outputs")
	}
}

func TestYOLOv2Profile(t *testing.T) {
	n := YOLOv2(416)
	out := n.OutShape()
	// 416 / 2^5 = 13: the classic 13x13 YOLOv2 grid.
	if out.H != 13 || out.W != 13 {
		t.Errorf("yolov2 grid %dx%d, want 13x13", out.H, out.W)
	}
	c := n.Cost()
	gmacs := float64(c.MACs) / 1e9
	// Darknet reports ~29.4 BFLOPs (2 ops per MAC) for YOLOv2-416, i.e.
	// ~14.7 GMACs. Our four-class head trims a little; accept 10-20.
	if gmacs < 10 || gmacs > 20 {
		t.Errorf("yolov2 = %.2f GMACs, expected ~14.7", gmacs)
	}
	if c.ConvMACs != c.MACs-poolMACs(n) {
		t.Errorf("conv MACs accounting inconsistent")
	}
}

func poolMACs(n *Network) int64 {
	var total int64
	shape := n.Input
	for _, l := range n.Layers {
		if _, ok := l.(*MaxPool); ok {
			total += l.CostAt(shape).MACs
		}
		shape = l.OutShape(shape)
	}
	return total
}

func TestGOTURNProfile(t *testing.T) {
	tower := GOTURNTower(227)
	head := GOTURNHead(tower.OutShape())
	c := TrackerCost(tower, head)
	// GOTURN's head is FC-dominated: three fc-4096 + fc-4 over an 18432-d
	// concat input: ~92M FC macs... check weights ~350MB? No: 18432*4096 +
	// 4096*4096*2 + 4096*4 ≈ 109M params ≈ 437MB fp32. The paper-relevant
	// property asserted here: FC weights dominate total weight bytes.
	headBytes := head.Cost().WeightBytes
	if headBytes < c.WeightBytes/2 {
		t.Errorf("FC head bytes %d should dominate total %d", headBytes, c.WeightBytes)
	}
	if tower.OutShape() != (Shape{256, 6, 6}) {
		t.Errorf("tower out %v, want 256x6x6 (AlexNet pool5)", tower.OutShape())
	}
}

func TestTrackerCostDoublesTower(t *testing.T) {
	tower := TinyTrackerTower(32)
	head := TinyTrackerHead(tower.OutShape())
	c := TrackerCost(tower, head)
	if c.MACs != 2*tower.Cost().MACs+head.Cost().MACs {
		t.Error("tracker cost should double tower MACs")
	}
	if c.WeightBytes != tower.Cost().WeightBytes+head.Cost().WeightBytes {
		t.Error("tracker weights should count shared tower once")
	}
}

func TestTinyNetsRunNatively(t *testing.T) {
	det := TinyYOLO(64)
	in := tensor.New(1, 64, 64)
	out := det.Forward(in)
	if out.C != DetCellDepth || out.H != 4 || out.W != 4 {
		t.Errorf("tiny yolo out %v", out)
	}

	tower := TinyTrackerTower(32)
	a := tower.Forward(tensor.New(1, 32, 32))
	b := tower.Forward(tensor.New(1, 32, 32))
	concat := tensor.NewVec(a.Len() + b.Len())
	copy(concat.Data, a.Data)
	copy(concat.Data[a.Len():], b.Data)
	head := TinyTrackerHead(tower.OutShape())
	box := head.Forward(concat)
	if box.Len() != 4 {
		t.Errorf("tracker head output len %d, want 4", box.Len())
	}
}

func TestCostScale(t *testing.T) {
	c := Cost{MACs: 100, WeightBytes: 40, ActBytes: 80, ConvMACs: 90, FCMACs: 10}
	s := c.Scale(2)
	if s.MACs != 200 || s.ActBytes != 160 || s.ConvMACs != 180 {
		t.Errorf("scale wrong: %+v", s)
	}
	if s.WeightBytes != 40 {
		t.Error("weight bytes must not scale with resolution")
	}
	if s.FCMACs != 10 {
		t.Error("FC MACs must not scale with resolution")
	}
}

// Property: Cost.Add is commutative and associative on small values.
func TestCostAddProperty(t *testing.T) {
	f := func(a, b, c uint32) bool {
		x := Cost{MACs: int64(a), WeightBytes: int64(b), ActBytes: int64(c)}
		y := Cost{MACs: int64(c), WeightBytes: int64(a), ActBytes: int64(b)}
		z := Cost{MACs: int64(b), WeightBytes: int64(c), ActBytes: int64(a)}
		if x.Add(y) != y.Add(x) {
			return false
		}
		return x.Add(y).Add(z) == x.Add(y.Add(z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: conv output shape is positive whenever the standard shape
// formula says it should be.
func TestConvShapeProperty(t *testing.T) {
	f := func(k8, s8, p8, h8 uint8) bool {
		k := int(k8)%5 + 1
		s := int(s8)%3 + 1
		p := int(p8) % 3
		h := int(h8)%40 + k // ensure h >= k
		c := NewConv(4, k, s, p, Linear, 1)
		out := c.OutShape(Shape{C: 2, H: h, W: h})
		wantH := (h+2*p-k)/s + 1
		return out.H == wantH && out.W == wantH && out.C == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummaryRenders(t *testing.T) {
	s := TinyYOLO(64).Summary()
	if s == "" {
		t.Fatal("empty summary")
	}
}

func TestShapeString(t *testing.T) {
	if (Shape{3, 416, 416}).String() != "3x416x416" {
		t.Error("shape string wrong")
	}
}

// TestForwardConcurrentAndWorkerInvariant checks the two guarantees the
// parallel tracker pool and pipelined runner rely on: concurrent Forward
// calls through one shared network are safe (lazy weight init is guarded),
// and the result is bitwise-identical for any kernel worker count. Worker
// counts are instance-scoped executors now — no global mutation, no
// test-order sensitivity.
func TestForwardConcurrentAndWorkerInvariant(t *testing.T) {
	build := func() *Network {
		return MustNetwork("t", Shape{C: 1, H: 16, W: 16},
			NewConv(8, 3, 1, 1, Leaky, 11),
			NewMaxPool(2, 2),
			NewConv(16, 3, 1, 1, Leaky, 12),
			NewFC(32, ReLU, 13),
		)
	}
	in := tensor.New(1, 16, 16)
	for i := range in.Data {
		in.Data[i] = float32(i%7) / 7
	}

	ref := NewExecutor(1).Forward(build(), in, nil)

	exec := NewExecutor(4)
	net := build() // fresh net: weights lazily initialized under contention
	const goroutines = 8
	outs := make([]*tensor.T, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			outs[g] = exec.Forward(net, in, nil)
		}(g)
	}
	wg.Wait()
	for g, out := range outs {
		if out.Len() != ref.Len() {
			t.Fatalf("goroutine %d: len %d != %d", g, out.Len(), ref.Len())
		}
		for i := range out.Data {
			if out.Data[i] != ref.Data[i] {
				t.Fatalf("goroutine %d: elem %d = %v, serial single-worker %v",
					g, i, out.Data[i], ref.Data[i])
			}
		}
	}
}

// Executor worker counts are private to each instance: configuring one
// executor never perturbs another (the property the old package-global
// SetWorkers could not give).
func TestExecutorWorkersInstanceScoped(t *testing.T) {
	a, b := NewExecutor(3), NewExecutor(0)
	if a.Workers() != 3 {
		t.Errorf("a.Workers = %d, want 3", a.Workers())
	}
	if b.Workers() != runtime.NumCPU() {
		t.Errorf("b.Workers = %d, want NumCPU default", b.Workers())
	}
	a.SetWorkers(-5)
	if a.Workers() != runtime.NumCPU() {
		t.Errorf("a.Workers = %d, want NumCPU after reset", a.Workers())
	}
	if Default().Workers() != runtime.NumCPU() {
		t.Errorf("Default().Workers = %d perturbed by instance executors", Default().Workers())
	}
}
