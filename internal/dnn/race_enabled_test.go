//go:build race

package dnn

// raceEnabled reports whether the race detector instruments this build.
// AllocsPerRun gates are unreliable under it (instrumentation defeats
// sync.Pool caching); `make alloc-gate` runs them uninstrumented.
const raceEnabled = true
