// Package dnn provides the deep-neural-network substrate for the pipeline's
// two DNN engines (object detection and object tracking): a layer/network
// abstraction over internal/tensor, deterministic weight initialization, and
// exact per-layer cost accounting (multiply-accumulates, weight bytes,
// activation bytes).
//
// Cost accounting is the load-bearing part for the reproduction: the
// calibrated platform models in internal/accel convert a network's MAC and
// byte counts into per-platform latencies, which is how the paper's Figures
// 6, 10, 11 and 13 are regenerated without GPU/FPGA/ASIC hardware.
package dnn

import (
	"fmt"
	"sync"

	"adsim/internal/stats"
	"adsim/internal/tensor"
)

// Shape is a CHW tensor shape used for static shape/cost inference.
type Shape struct {
	C, H, W int
}

// Elems returns the number of elements in the shape.
func (s Shape) Elems() int { return s.C * s.H * s.W }

func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// Cost captures the computational footprint of a layer or network.
type Cost struct {
	MACs        int64 // multiply-accumulate operations
	WeightBytes int64 // parameter storage (float32)
	ActBytes    int64 // output activation storage (float32)
	ConvMACs    int64 // MACs in convolutional layers
	FCMACs      int64 // MACs in fully connected layers
}

// Add returns the element-wise sum of two costs.
func (c Cost) Add(o Cost) Cost {
	return Cost{
		MACs:        c.MACs + o.MACs,
		WeightBytes: c.WeightBytes + o.WeightBytes,
		ActBytes:    c.ActBytes + o.ActBytes,
		ConvMACs:    c.ConvMACs + o.ConvMACs,
		FCMACs:      c.FCMACs + o.FCMACs,
	}
}

// Scale returns the cost with MACs and activation bytes multiplied by f.
// Weight bytes are unchanged: resizing the input does not change parameter
// count. Used by the Fig 13 resolution sweep for convolutional workloads.
func (c Cost) Scale(f float64) Cost {
	return Cost{
		MACs:        int64(float64(c.MACs) * f),
		WeightBytes: c.WeightBytes,
		ActBytes:    int64(float64(c.ActBytes) * f),
		ConvMACs:    int64(float64(c.ConvMACs) * f),
		FCMACs:      c.FCMACs,
	}
}

// Activation selects the nonlinearity applied after a layer's affine part.
type Activation int

const (
	// Linear applies no nonlinearity.
	Linear Activation = iota
	// ReLU applies max(0,x).
	ReLU
	// Leaky applies LeakyReLU with slope 0.1, as YOLO does.
	Leaky
	// SigmoidAct applies the logistic function.
	SigmoidAct
)

func (a Activation) apply(t *tensor.T) *tensor.T {
	switch a {
	case ReLU:
		return tensor.ReLU(t)
	case Leaky:
		return tensor.LeakyReLU(t, 0.1)
	case SigmoidAct:
		return tensor.Sigmoid(t)
	default:
		return t
	}
}

// Layer is one network stage. Layers are immutable after construction and
// safe for concurrent Forward calls.
type Layer interface {
	// Name returns a short human-readable description ("conv3-256/2").
	Name() string
	// OutShape computes the output shape for a given input shape.
	OutShape(in Shape) Shape
	// CostAt computes the layer cost for a given input shape.
	CostAt(in Shape) Cost
	// Forward runs inference. The input tensor is not modified.
	Forward(in *tensor.T) *tensor.T
	// ForwardScratch runs inference drawing the output (and any
	// intermediates) from s; a warm call allocates nothing. The input
	// tensor is not modified; the result may alias scratch memory. The
	// float path is bitwise-identical to Forward.
	ForwardScratch(in *tensor.T, s *Scratch) *tensor.T
}

// convParams holds one input-channel-count instantiation of a conv layer's
// parameters. The quantized form is derived lazily from the float weights.
type convParams struct {
	w, b   []float32
	qw     []int8    // per-channel symmetric int8 weights (lazy)
	wScale []float32 // per-output-channel quantization scales
}

// Conv is a 2D convolution layer with optional activation.
type Conv struct {
	OutC, K, Stride, Pad int
	Act                  Activation

	mu    sync.Mutex          // guards the lazy weight initialization below
	byInC map[int]*convParams // weights keyed by input channel count
	seed  int64
}

// NewConv constructs a convolution layer. Weights are deterministically
// initialized on first Forward (He-scaled uniform from seed), when the input
// channel count becomes known.
func NewConv(outC, k, stride, pad int, act Activation, seed int64) *Conv {
	if outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("dnn: invalid conv outC=%d k=%d stride=%d pad=%d", outC, k, stride, pad))
	}
	return &Conv{OutC: outC, K: k, Stride: stride, Pad: pad, Act: act, seed: seed}
}

func (c *Conv) Name() string {
	return fmt.Sprintf("conv%d-%d/%d", c.K, c.OutC, c.Stride)
}

func (c *Conv) OutShape(in Shape) Shape {
	if in.H+2*c.Pad < c.K || in.W+2*c.Pad < c.K {
		return Shape{C: c.OutC, H: 0, W: 0}
	}
	return Shape{
		C: c.OutC,
		H: (in.H+2*c.Pad-c.K)/c.Stride + 1,
		W: (in.W+2*c.Pad-c.K)/c.Stride + 1,
	}
}

func (c *Conv) CostAt(in Shape) Cost {
	out := c.OutShape(in)
	macs := int64(c.OutC) * int64(in.C) * int64(c.K*c.K) * int64(out.H) * int64(out.W)
	return Cost{
		MACs:        macs,
		ConvMACs:    macs,
		WeightBytes: 4 * int64(c.OutC) * int64(in.C) * int64(c.K*c.K),
		ActBytes:    4 * int64(out.Elems()),
	}
}

// params returns the parameter set for an input channel count, initializing
// it on first use. The cache is keyed by inC, so a network shared across
// two input shapes keeps both instantiations instead of re-seeding (and
// silently swapping) weights every time the shape alternates. The mutex
// makes lazy initialization safe under concurrent Forward calls (the
// parallel tracker pool runs many inferences through one shared network).
func (c *Conv) params(inC int) *convParams {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.byInC[inC]; ok {
		return p
	}
	n := c.OutC * inC * c.K * c.K
	rng := stats.NewRNG(c.seed)
	// He-style scale keeps activations in range through deep stacks.
	scale := 2.0 / float64(inC*c.K*c.K)
	w := make([]float32, n)
	for i := range w {
		w[i] = float32(rng.Uniform(-scale, scale))
	}
	b := make([]float32, c.OutC)
	for i := range b {
		b[i] = float32(rng.Uniform(-0.01, 0.01))
	}
	p := &convParams{w: w, b: b}
	if c.byInC == nil {
		c.byInC = make(map[int]*convParams)
	}
	c.byInC[inC] = p
	return p
}

// qparams returns the int8 quantization of p's weights, deriving it on
// first use.
func (c *Conv) qparams(p *convParams) (qw []int8, wScale []float32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p.qw == nil {
		p.qw, p.wScale = tensor.QuantizePerChannel(p.w, c.OutC)
	}
	return p.qw, p.wScale
}

func (c *Conv) Forward(in *tensor.T) *tensor.T {
	p := c.params(in.C)
	// The im2col lowering is ~4x faster than the direct loop at these
	// shapes (property-tested equivalent in internal/tensor).
	out := tensor.Conv2DIm2ColPar(in, p.w, p.b, c.OutC, c.K, c.Stride, c.Pad, Workers())
	return c.Act.apply(out)
}

func (c *Conv) ForwardScratch(in *tensor.T, s *Scratch) *tensor.T {
	return c.forward(in, s, Workers())
}

// forward is ForwardScratch with an explicit kernel worker count — the
// executor-scoped entry point (results are worker-count invariant).
func (c *Conv) forward(in *tensor.T, s *Scratch, workers int) *tensor.T {
	p := c.params(in.C)
	dst := s.next(c.OutShape(Shape{C: in.C, H: in.H, W: in.W}))
	var out *tensor.T
	if s.Quantized {
		qw, wScale := c.qparams(p)
		out = tensor.Conv2DInt8(dst, in, qw, wScale, p.b, c.OutC, c.K, c.Stride, c.Pad, workers, s.Arena())
	} else {
		out = tensor.Conv2DIm2ColParInto(dst, in, p.w, p.b, c.OutC, c.K, c.Stride, c.Pad, workers, s.Arena())
	}
	return c.Act.apply(out)
}

// MaxPool is a max-pooling layer.
type MaxPool struct {
	K, Stride int
}

// NewMaxPool constructs a pooling layer.
func NewMaxPool(k, stride int) *MaxPool {
	if k <= 0 || stride <= 0 {
		panic(fmt.Sprintf("dnn: invalid pool k=%d stride=%d", k, stride))
	}
	return &MaxPool{K: k, Stride: stride}
}

func (p *MaxPool) Name() string { return fmt.Sprintf("maxpool%d/%d", p.K, p.Stride) }

func (p *MaxPool) OutShape(in Shape) Shape {
	if in.H < p.K || in.W < p.K {
		return Shape{C: in.C, H: 0, W: 0}
	}
	return Shape{C: in.C, H: (in.H-p.K)/p.Stride + 1, W: (in.W-p.K)/p.Stride + 1}
}

func (p *MaxPool) CostAt(in Shape) Cost {
	out := p.OutShape(in)
	// Pooling comparisons are counted as MACs-equivalent at 1 op per tap;
	// they are negligible next to conv cost but kept for completeness.
	return Cost{
		MACs:     int64(out.Elems()) * int64(p.K*p.K),
		ActBytes: 4 * int64(out.Elems()),
	}
}

func (p *MaxPool) Forward(in *tensor.T) *tensor.T {
	return tensor.MaxPool2D(in, p.K, p.Stride)
}

func (p *MaxPool) ForwardScratch(in *tensor.T, s *Scratch) *tensor.T {
	dst := s.next(p.OutShape(Shape{C: in.C, H: in.H, W: in.W}))
	return tensor.MaxPool2DInto(dst, in, p.K, p.Stride)
}

// BatchNorm is an inference-time batch-normalization layer: the learned
// scale/shift and running statistics fold into one per-channel affine
// transform y = a·x + b, which is how deployed YOLOv2 executes its BN.
type BatchNorm struct {
	mu   sync.Mutex // guards the lazy parameter initialization
	a, b []float32
	seed int64
}

// NewBatchNorm constructs a batch-norm layer with deterministic
// near-identity folded parameters.
func NewBatchNorm(seed int64) *BatchNorm { return &BatchNorm{seed: seed} }

func (bn *BatchNorm) Name() string { return "batchnorm" }

func (bn *BatchNorm) OutShape(in Shape) Shape { return in }

func (bn *BatchNorm) CostAt(in Shape) Cost {
	return Cost{
		MACs:        int64(in.Elems()), // one multiply-add per element
		WeightBytes: 8 * int64(in.C),   // folded a,b per channel
		ActBytes:    4 * int64(in.Elems()),
	}
}

// params returns the folded per-channel affine parameters, initializing
// them on first use (safe under concurrent Forward calls).
func (bn *BatchNorm) params(c int) (a, b []float32) {
	bn.mu.Lock()
	defer bn.mu.Unlock()
	if len(bn.a) != c {
		rng := stats.NewRNG(bn.seed)
		bn.a = make([]float32, c)
		bn.b = make([]float32, c)
		for i := 0; i < c; i++ {
			bn.a[i] = float32(rng.Uniform(0.8, 1.2))
			bn.b[i] = float32(rng.Uniform(-0.05, 0.05))
		}
	}
	return bn.a, bn.b
}

func (bn *BatchNorm) Forward(in *tensor.T) *tensor.T {
	return bn.forwardInto(in.Clone(), in)
}

func (bn *BatchNorm) ForwardScratch(in *tensor.T, s *Scratch) *tensor.T {
	return bn.forwardInto(s.next(Shape{C: in.C, H: in.H, W: in.W}), in)
}

func (bn *BatchNorm) forwardInto(out, in *tensor.T) *tensor.T {
	as, bs := bn.params(in.C)
	hw := in.H * in.W
	for c := 0; c < in.C; c++ {
		a, b := as[c], bs[c]
		src := in.Data[c*hw : (c+1)*hw]
		seg := out.Data[c*hw : (c+1)*hw]
		for i, v := range src {
			seg[i] = a*v + b
		}
	}
	return out
}

// Reorg is YOLOv2's space-to-depth layer: each Stride×Stride spatial block
// becomes Stride² channels, so a C×H×W map reorganizes to
// (C·S²)×(H/S)×(W/S). It moves data without arithmetic; YOLOv2 uses it to
// bring the 26×26×512 passthrough map to the 13×13 head resolution.
type Reorg struct {
	Stride int
}

// NewReorg constructs a space-to-depth layer. It panics on stride < 2.
func NewReorg(stride int) *Reorg {
	if stride < 2 {
		panic(fmt.Sprintf("dnn: invalid reorg stride %d", stride))
	}
	return &Reorg{Stride: stride}
}

func (r *Reorg) Name() string { return fmt.Sprintf("reorg/%d", r.Stride) }

func (r *Reorg) OutShape(in Shape) Shape {
	if in.H%r.Stride != 0 || in.W%r.Stride != 0 {
		return Shape{C: in.C * r.Stride * r.Stride, H: 0, W: 0}
	}
	return Shape{C: in.C * r.Stride * r.Stride, H: in.H / r.Stride, W: in.W / r.Stride}
}

func (r *Reorg) CostAt(in Shape) Cost {
	return Cost{ActBytes: 4 * int64(in.Elems())} // pure data movement
}

func (r *Reorg) Forward(in *tensor.T) *tensor.T {
	outShape := r.OutShape(Shape{C: in.C, H: in.H, W: in.W})
	return r.forwardInto(tensor.New(outShape.C, outShape.H, outShape.W), in)
}

func (r *Reorg) ForwardScratch(in *tensor.T, sc *Scratch) *tensor.T {
	return r.forwardInto(sc.next(r.OutShape(Shape{C: in.C, H: in.H, W: in.W})), in)
}

// forwardInto writes the space-to-depth permutation into out. Every input
// element maps to exactly one output element (a bijection), so out is fully
// written and needs no pre-clearing.
func (r *Reorg) forwardInto(out, in *tensor.T) *tensor.T {
	s := r.Stride
	for c := 0; c < in.C; c++ {
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				// Sub-position within the block selects the channel slot.
				oc := c*s*s + (y%s)*s + (x % s)
				out.Set(oc, y/s, x/s, in.At(c, y, x))
			}
		}
	}
	return out
}

// FC is a fully connected layer over the flattened input.
type FC struct {
	OutN int
	Act  Activation

	mu    sync.Mutex          // guards the lazy weight initialization below
	byInN map[int]*convParams // weights keyed by input length
	seed  int64
}

// NewFC constructs a fully connected layer with deterministic lazy weights.
func NewFC(outN int, act Activation, seed int64) *FC {
	if outN <= 0 {
		panic(fmt.Sprintf("dnn: invalid fc outN=%d", outN))
	}
	return &FC{OutN: outN, Act: act, seed: seed}
}

func (f *FC) Name() string { return fmt.Sprintf("fc-%d", f.OutN) }

func (f *FC) OutShape(in Shape) Shape { return Shape{C: f.OutN, H: 1, W: 1} }

func (f *FC) CostAt(in Shape) Cost {
	macs := int64(f.OutN) * int64(in.Elems())
	return Cost{
		MACs:        macs,
		FCMACs:      macs,
		WeightBytes: 4 * macs,
		ActBytes:    4 * int64(f.OutN),
	}
}

// params returns the parameter set for an input length, initializing it on
// first use. As with Conv, the cache is keyed by inN so alternating input
// shapes keep both instantiations instead of re-seeding mid-run (safe under
// concurrent Forward calls).
func (f *FC) params(inN int) *convParams {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p, ok := f.byInN[inN]; ok {
		return p
	}
	rng := stats.NewRNG(f.seed)
	scale := 2.0 / float64(inN)
	w := make([]float32, f.OutN*inN)
	for i := range w {
		w[i] = float32(rng.Uniform(-scale, scale))
	}
	b := make([]float32, f.OutN)
	for i := range b {
		b[i] = float32(rng.Uniform(-0.01, 0.01))
	}
	p := &convParams{w: w, b: b}
	if f.byInN == nil {
		f.byInN = make(map[int]*convParams)
	}
	f.byInN[inN] = p
	return p
}

// qparams returns the int8 quantization of p's weights, deriving it on
// first use.
func (f *FC) qparams(p *convParams) (qw []int8, wScale []float32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p.qw == nil {
		p.qw, p.wScale = tensor.QuantizePerChannel(p.w, f.OutN)
	}
	return p.qw, p.wScale
}

func (f *FC) Forward(in *tensor.T) *tensor.T {
	p := f.params(in.Len())
	out := tensor.FullyConnectedPar(in, p.w, p.b, f.OutN, Workers())
	return f.Act.apply(out)
}

func (f *FC) ForwardScratch(in *tensor.T, s *Scratch) *tensor.T {
	return f.forward(in, s, Workers())
}

// forward is ForwardScratch with an explicit kernel worker count — the
// executor-scoped entry point (results are worker-count invariant).
func (f *FC) forward(in *tensor.T, s *Scratch, workers int) *tensor.T {
	p := f.params(in.Len())
	dst := s.next(Shape{C: f.OutN, H: 1, W: 1})
	var out *tensor.T
	if s.Quantized {
		qw, wScale := f.qparams(p)
		out = tensor.FullyConnectedInt8(dst, in, qw, wScale, p.b, f.OutN, workers, s.Arena())
	} else {
		out = tensor.FullyConnectedParInto(dst, in, p.w, p.b, f.OutN, workers)
	}
	return f.Act.apply(out)
}
