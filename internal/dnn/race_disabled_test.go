//go:build !race

package dnn

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
