package dnn

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"adsim/internal/telemetry"
	"adsim/internal/tensor"
)

// ForwardBatch is the fleet's cross-stream seam; every sample must come out
// bitwise-identical to a solo ForwardScratch of the same input, in the same
// ping-pong slot, for any batch size and worker count.
func TestForwardBatchBitwiseEqualSolo(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, netCase := range []struct {
		name string
		net  *Network
	}{
		{"tiny-yolo", TinyYOLO(32)},
		{"tracker-tower", TinyTrackerTower(32)},
	} {
		for _, batch := range []int{1, 2, 4} {
			for _, workers := range []int{1, 3} {
				exec := NewExecutor(workers)
				ins := make([]*tensor.T, batch)
				scs := make([]*Scratch, batch)
				wants := make([]*tensor.T, batch)
				for i := range ins {
					ins[i] = randInput(rng, netCase.net.Input.C, netCase.net.Input.H, netCase.net.Input.W)
					scs[i] = &Scratch{}
					var solo Scratch
					wants[i] = netCase.net.ForwardScratch(ins[i].Clone(), &solo).Clone()
				}
				outs := exec.ForwardBatch(netCase.net, ins, scs, nil)
				for i := range outs {
					if outs[i].Len() != wants[i].Len() {
						t.Fatalf("%s b=%d w=%d sample %d: len %d, want %d",
							netCase.name, batch, workers, i, outs[i].Len(), wants[i].Len())
					}
					for j := range wants[i].Data {
						if outs[i].Data[j] != wants[i].Data[j] {
							t.Fatalf("%s b=%d w=%d sample %d: out[%d] = %v, want %v (bitwise)",
								netCase.name, batch, workers, i, j, outs[i].Data[j], wants[i].Data[j])
						}
					}
				}
			}
		}
	}
}

// The quantized path falls back to per-sample kernels inside the batch and
// must equal its solo int8 run exactly.
func TestForwardBatchQuantizedEqualSolo(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	net := TinyTrackerTower(32)
	exec := NewExecutor(1)
	const batch = 3
	ins := make([]*tensor.T, batch)
	scs := make([]*Scratch, batch)
	wants := make([]*tensor.T, batch)
	for i := range ins {
		ins[i] = randInput(rng, net.Input.C, net.Input.H, net.Input.W)
		scs[i] = &Scratch{Quantized: true}
		solo := Scratch{Quantized: true}
		wants[i] = net.ForwardScratch(ins[i].Clone(), &solo).Clone()
	}
	outs := exec.ForwardBatch(net, ins, scs, nil)
	for i := range outs {
		for j := range wants[i].Data {
			if outs[i].Data[j] != wants[i].Data[j] {
				t.Fatalf("sample %d: out[%d] = %v, want solo int8 %v", i, j, outs[i].Data[j], wants[i].Data[j])
			}
		}
	}
}

// Hammer the gather seam: many goroutine "vehicles" drive concurrent
// Forward calls through one batching executor; every result must equal the
// unbatched single-stream reference bitwise, no matter how the leader
// groups them. Run under -race by `make race`.
func TestBatchExecutorGatherBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tower := TinyTrackerTower(32)
	yolo := TinyYOLO(32)
	towerIn := randInput(rng, tower.Input.C, tower.Input.H, tower.Input.W)
	yoloIn := randInput(rng, yolo.Input.C, yolo.Input.H, yolo.Input.W)
	var refS Scratch
	towerWant := tower.ForwardScratch(towerIn.Clone(), &refS).Clone()
	yoloWant := yolo.ForwardScratch(yoloIn.Clone(), &refS).Clone()

	exec := NewBatchExecutor(2)
	const vehicles = 8
	var wg sync.WaitGroup
	fail := make(chan string, vehicles)
	for v := 0; v < vehicles; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			var s Scratch
			for iter := 0; iter < 25; iter++ {
				// Interleave two networks so the queue carries mixed keys.
				net, in, want := tower, towerIn, towerWant
				if (v+iter)%3 == 0 {
					net, in, want = yolo, yoloIn, yoloWant
				}
				out := exec.Forward(net, in, &s)
				for i := range want.Data {
					if out.Data[i] != want.Data[i] {
						fail <- "gathered forward diverged from solo reference"
						return
					}
				}
			}
		}(v)
	}
	wg.Wait()
	close(fail)
	if msg, ok := <-fail; ok {
		t.Fatal(msg)
	}
}

// The gather hold is the fleet phase-locker's executor half: with a cohort
// of N armed, N staggered concurrent calls must land in ONE depth-N batch
// (the leader waits for the cohort instead of draining a 1-deep head), with
// the depth recorded by GatherStats and the attached telemetry registry.
func TestGatherHoldDeepensBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	net := TinyYOLO(32)
	in := randInput(rng, net.Input.C, net.Input.H, net.Input.W)
	var refS Scratch
	want := net.ForwardScratch(in.Clone(), &refS).Clone()

	exec := NewBatchExecutor(1)
	reg := telemetry.NewRegistry(0)
	exec.SetMetrics(reg)
	const cohort = 4
	exec.SetGatherHold(cohort, time.Second)

	var wg sync.WaitGroup
	for v := 0; v < cohort; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			time.Sleep(time.Duration(v) * 2 * time.Millisecond) // staggered arrivals
			var s Scratch
			out := exec.Forward(net, in, &s)
			for i := range want.Data {
				if out.Data[i] != want.Data[i] {
					t.Error("held gathered forward diverged from solo reference")
					return
				}
			}
		}(v)
	}
	wg.Wait()
	batches, calls := exec.GatherStats()
	if batches != 1 || calls != cohort {
		t.Errorf("gather stats = %d batches / %d calls, want 1 / %d", batches, calls, cohort)
	}
	if got := reg.Counter("dnn/gather_calls").Value(); got != cohort {
		t.Errorf("telemetry gather_calls = %d, want %d", got, cohort)
	}
	if d := reg.Dist("dnn/batch_depth").Snapshot(); d.Max != cohort {
		t.Errorf("telemetry batch_depth max = %v, want %d", d.Max, cohort)
	}
}

// A mis-sized cohort (more vehicles armed than calls arriving) must time out
// and drain, never deadlock — the hold is bounded by construction.
func TestGatherHoldTimesOut(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	net := TinyYOLO(32)
	in := randInput(rng, net.Input.C, net.Input.H, net.Input.W)
	exec := NewBatchExecutor(1)
	exec.SetGatherHold(8, 10*time.Millisecond)
	var s Scratch
	if out := exec.Forward(net, in, &s); out == nil {
		t.Fatal("held forward returned nil")
	}
	if batches, calls := exec.GatherStats(); batches != 1 || calls != 1 {
		t.Errorf("gather stats = %d/%d, want 1/1", batches, calls)
	}
	exec.SetGatherHold(0, 0) // disarm: back to the timerless path
	if out := exec.Forward(net, in, &s); out == nil {
		t.Fatal("disarmed forward returned nil")
	}
}

// Alloc gate (run by `make alloc-gate`): the batched steady state must stay
// zero-alloc per frame per vehicle — a warm ForwardBatch with a reused
// output buffer allocates nothing for the whole batch.
func TestAllocForwardBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	net := TinyYOLO(32)
	exec := NewExecutor(1)
	const batch = 3
	ins := make([]*tensor.T, batch)
	scs := make([]*Scratch, batch)
	for i := range ins {
		ins[i] = randInput(rng, net.Input.C, net.Input.H, net.Input.W)
		scs[i] = &Scratch{}
	}
	outs := exec.ForwardBatch(net, ins, scs, nil) // warm arenas + lazy weights
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race; make alloc-gate runs this uninstrumented")
	}
	allocs := testing.AllocsPerRun(10, func() {
		outs = exec.ForwardBatch(net, ins, scs, outs)
	})
	if allocs != 0 {
		t.Errorf("warm ForwardBatch allocates %.1f/op for %d vehicles, want 0", allocs, batch)
	}
}

func BenchmarkForwardBatch(b *testing.B) {
	net := TinyYOLO(64)
	exec := NewExecutor(1)
	const batch = 4
	ins := make([]*tensor.T, batch)
	scs := make([]*Scratch, batch)
	for i := range ins {
		in := tensor.New(net.Input.C, net.Input.H, net.Input.W)
		for j := range in.Data {
			in.Data[j] = float32((i+j)%255)/255 - 0.5
		}
		ins[i] = in
		scs[i] = &Scratch{}
	}
	outs := exec.ForwardBatch(net, ins, scs, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs = exec.ForwardBatch(net, ins, scs, outs)
	}
}
