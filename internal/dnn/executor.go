package dnn

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"adsim/internal/telemetry"
	"adsim/internal/tensor"
)

// Executor is an instance-scoped inference executor: it owns the kernel
// worker count, a pool of per-worker Scratch arenas, and (optionally) the
// cross-stream batching seam that gathers concurrent same-shape forward
// calls — from many vehicles' DET/TRA engines — into one batched GEMM.
//
// Worker state used to be a package global (SetWorkers); it is per-Executor
// now, so independent pipelines sharing a process cannot perturb each
// other's kernel configuration. Results are bitwise-identical for any
// worker count and whether or not batching groups a call with others (see
// internal/tensor/batch.go for the kernel-level contract).
//
// All methods are safe for concurrent use.
type Executor struct {
	// workers is the kernel fan-out; 0 means runtime.NumCPU().
	workers atomic.Int32
	// batch enables the gather seam below.
	batch bool

	// Gather state: concurrent Forward calls enqueue requests; the first
	// arrival becomes the leader and drains the queue batch by batch
	// (grouping same network/shape/quantization runs), while followers
	// block on their request's done channel. No timers are involved —
	// batches form exactly when calls overlap, so an idle stream never
	// waits on a window.
	mu      sync.Mutex
	queue   []*fwdReq
	leading bool
	take    []*fwdReq // leader-only staging for the current batch

	// Gather hold (the fleet phase-locking seam): when holdN > 1, a new
	// leader defers its first drain until the queue holds holdN requests or
	// holdWait elapses, so co-resident streams whose frame admission is
	// phase-aligned gather into one deep batch instead of a 1-deep head
	// batch plus stragglers. holdSig is pulsed on enqueue while a hold is
	// armed. The wait is bounded, so a mis-sized cohort (a vehicle shed
	// between fleet updates) costs at most holdWait per leadership, never a
	// deadlock. Zero holdN (the default) keeps the seam fully timerless.
	holdN    atomic.Int32
	holdWait atomic.Int64 // nanoseconds
	holdSig  chan struct{}

	// Batch-depth instrumentation over the gather seam: how many drains
	// (batches, singletons included) served how many forward calls. Two
	// atomic adds per batch — noise next to a GEMM. metrics, when set,
	// additionally records the per-batch depth distribution.
	gatherBatches atomic.Int64
	gatherCalls   atomic.Int64
	metrics       atomic.Pointer[gatherMetrics]

	reqPool     sync.Pool // *fwdReq, done channel pre-allocated
	bufsPool    sync.Pool // *batchBufs
	scratchPool sync.Pool // *Scratch per-worker arenas
}

// gatherMetrics holds the retained registry handles for batch telemetry.
type gatherMetrics struct {
	depth   *telemetry.Dist
	batches *telemetry.Counter
	calls   *telemetry.Counter
}

// fwdReq is one gathered forward call.
type fwdReq struct {
	net  *Network
	in   *tensor.T
	s    *Scratch
	out  *tensor.T
	done chan struct{}
}

// batchBufs holds one batch execution's slice staging and the shared patch
// arena, pooled so a warm batched forward allocates nothing.
type batchBufs struct {
	cur   []*tensor.T
	nxt   []*tensor.T
	scs   []*Scratch
	arena tensor.Scratch
}

// NewExecutor builds an executor whose kernels fan out across workers
// goroutines (<= 0 means runtime.NumCPU()). Calls run inline, unbatched —
// the right mode for a single stream.
func NewExecutor(workers int) *Executor {
	e := &Executor{holdSig: make(chan struct{}, 1)}
	e.SetWorkers(workers)
	return e
}

// NewBatchExecutor is NewExecutor with the cross-stream batching seam
// enabled: concurrent Forward calls on the same network, input shape and
// quantization mode are executed as one batched GEMM. Outputs stay
// bitwise-identical to unbatched runs.
func NewBatchExecutor(workers int) *Executor {
	e := NewExecutor(workers)
	e.batch = true
	return e
}

// Batching reports whether the cross-stream gather seam is enabled.
func (e *Executor) Batching() bool { return e.batch }

// Workers reports the kernel worker count.
func (e *Executor) Workers() int {
	if n := e.workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.NumCPU()
}

// SetWorkers changes the kernel worker count for subsequent calls; n <= 0
// restores the runtime.NumCPU() default. Sharding never changes results.
func (e *Executor) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	e.workers.Store(int32(n))
}

// SetGatherHold arms (or, with cohort <= 1, disarms) the leader hold on the
// gather seam: a new leader waits until cohort requests are queued — or
// maxWait elapses — before its first drain. The fleet phase-locker keeps
// cohort equal to the number of actively admitted vehicles so one barrier
// round's DET calls land in one batch. Only meaningful on a batching
// executor; results are unaffected either way (batching never changes
// outputs), only the batch-depth distribution and the schedule.
func (e *Executor) SetGatherHold(cohort int, maxWait time.Duration) {
	if cohort <= 1 || maxWait <= 0 {
		cohort, maxWait = 0, 0
	}
	e.holdN.Store(int32(cohort))
	e.holdWait.Store(int64(maxWait))
}

// GatherStats reports how many leader drains (batches, singleton groups
// included) the gather seam has executed and how many forward calls they
// served; calls/batches is the mean batch depth. Counts are cumulative —
// callers comparing configurations should difference two readings.
func (e *Executor) GatherStats() (batches, calls int64) {
	return e.gatherBatches.Load(), e.gatherCalls.Load()
}

// SetMetrics attaches a telemetry registry to the gather seam: every drained
// batch observes its depth on dnn/batch_depth and bumps dnn/gather_batches /
// dnn/gather_calls. nil detaches.
func (e *Executor) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		e.metrics.Store(nil)
		return
	}
	e.metrics.Store(&gatherMetrics{
		depth:   reg.Dist("dnn/batch_depth"),
		batches: reg.Counter("dnn/gather_batches"),
		calls:   reg.Counter("dnn/gather_calls"),
	})
}

// noteBatch records one drained gather group of the given depth.
func (e *Executor) noteBatch(depth int) {
	e.gatherBatches.Add(1)
	e.gatherCalls.Add(int64(depth))
	if m := e.metrics.Load(); m != nil {
		m.depth.Observe(float64(depth))
		m.batches.Inc()
		m.calls.Add(int64(depth))
	}
}

// AcquireScratch returns a pooled per-worker inference arena; pair with
// ReleaseScratch. The scratch comes back with Quantized cleared.
func (e *Executor) AcquireScratch() *Scratch {
	if s, _ := e.scratchPool.Get().(*Scratch); s != nil {
		s.Quantized = false
		return s
	}
	return &Scratch{}
}

// ReleaseScratch returns a scratch to the executor's pool.
func (e *Executor) ReleaseScratch(s *Scratch) { e.scratchPool.Put(s) }

// Forward runs one inference through n. With a non-nil scratch the output
// aliases scratch memory exactly as Network.ForwardScratch; with s == nil a
// pooled arena is used and a caller-owned copy is returned. On a batching
// executor the call may be grouped with concurrent same-shape calls; the
// result is bitwise-identical either way.
func (e *Executor) Forward(n *Network, in *tensor.T, s *Scratch) *tensor.T {
	if s == nil {
		sc := e.AcquireScratch()
		out := e.forwardOne(n, in, sc).Clone()
		e.ReleaseScratch(sc)
		return out
	}
	if !e.batch {
		return e.forwardOne(n, in, s)
	}
	return e.forwardGather(n, in, s)
}

// ForwardBatch synchronously runs one batched inference: ins[i] forwards
// through n drawing from scs[i], and the outputs (aliasing each scratch's
// ping-pong slot, as in ForwardScratch) are appended to outs and returned.
// Pass a reused outs buffer to keep a warm call allocation-free. All inputs
// must share one shape and all scratches one Quantized mode.
func (e *Executor) ForwardBatch(n *Network, ins []*tensor.T, scs []*Scratch, outs []*tensor.T) []*tensor.T {
	if len(ins) == 0 || len(scs) != len(ins) {
		panic(fmt.Sprintf("dnn: batch of %d inputs, %d scratches", len(ins), len(scs)))
	}
	for i := 1; i < len(ins); i++ {
		if !sameBatchKey(ins[i], scs[i], ins[0], scs[0]) {
			panic(fmt.Sprintf("dnn: batch sample %d (shape %dx%dx%d quant=%v) does not match sample 0",
				i, ins[i].C, ins[i].H, ins[i].W, scs[i].Quantized))
		}
	}
	outs = append(outs[:0], ins...)
	bb := e.acquireBufs(len(ins))
	e.runBatch(n, outs, scs, bb.nxt[:len(ins)], &bb.arena)
	e.bufsPool.Put(bb)
	return outs
}

// sameBatchKey reports whether two forward calls can share one batch.
func sameBatchKey(in *tensor.T, s *Scratch, in0 *tensor.T, s0 *Scratch) bool {
	return in.C == in0.C && in.H == in0.H && in.W == in0.W && s.Quantized == s0.Quantized
}

func (e *Executor) acquireBufs(n int) *batchBufs {
	bb, _ := e.bufsPool.Get().(*batchBufs)
	if bb == nil {
		bb = &batchBufs{}
	}
	for len(bb.nxt) < n {
		bb.nxt = append(bb.nxt, nil)
	}
	return bb
}

// forwardOne is the unbatched layer loop, conv/FC kernels sharded across
// this executor's workers. Bitwise-identical to Network.ForwardScratch.
func (e *Executor) forwardOne(n *Network, in *tensor.T, s *Scratch) *tensor.T {
	w := e.Workers()
	s.begin()
	out := in
	for _, l := range n.Layers {
		switch l := l.(type) {
		case *Conv:
			out = l.forward(out, s, w)
		case *FC:
			out = l.forward(out, s, w)
		default:
			out = l.ForwardScratch(out, s)
		}
	}
	return out
}

// runBatch advances every sample through n one layer at a time: conv and FC
// float layers run the batched kernels; everything else (pooling, batch
// norm, reorg, int8 layers) runs per sample through the exact solo path.
// cur is mutated in place to the per-sample outputs. Each scratch sees the
// same begin/next sequence as a solo ForwardScratch, so outputs land in the
// same ping-pong slots.
func (e *Executor) runBatch(n *Network, cur []*tensor.T, scs []*Scratch, nxt []*tensor.T, arena *tensor.Scratch) {
	w := e.Workers()
	quant := scs[0].Quantized
	for i := range scs {
		scs[i].begin()
	}
	for _, l := range n.Layers {
		switch l := l.(type) {
		case *Conv:
			if quant {
				for i := range cur {
					cur[i] = l.forward(cur[i], scs[i], w)
				}
				continue
			}
			p := l.params(cur[0].C)
			sh := l.OutShape(Shape{C: cur[0].C, H: cur[0].H, W: cur[0].W})
			for i := range cur {
				nxt[i] = scs[i].next(sh)
			}
			tensor.Conv2DIm2ColBatchInto(nxt, cur, p.w, p.b, l.OutC, l.K, l.Stride, l.Pad, w, arena)
			for i := range cur {
				cur[i] = l.Act.apply(nxt[i])
			}
		case *FC:
			if quant {
				for i := range cur {
					cur[i] = l.forward(cur[i], scs[i], w)
				}
				continue
			}
			p := l.params(cur[0].Len())
			for i := range cur {
				nxt[i] = scs[i].next(Shape{C: l.OutN, H: 1, W: 1})
			}
			tensor.FullyConnectedBatchInto(nxt, cur, p.w, p.b, l.OutN, w)
			for i := range cur {
				cur[i] = l.Act.apply(nxt[i])
			}
		default:
			for i := range cur {
				cur[i] = l.ForwardScratch(cur[i], scs[i])
			}
		}
	}
}

// forwardGather enqueues the call and either follows (blocks until a leader
// delivers the result) or leads: drain the queue, batching maximal
// same-key groups, until it is empty. Requests, buffers and the done
// channels are pooled, so a warm gathered call allocates nothing beyond
// the goroutine synchronization itself.
func (e *Executor) forwardGather(n *Network, in *tensor.T, s *Scratch) *tensor.T {
	req, _ := e.reqPool.Get().(*fwdReq)
	if req == nil {
		req = &fwdReq{done: make(chan struct{}, 1)}
	}
	req.net, req.in, req.s = n, in, s

	e.mu.Lock()
	e.queue = append(e.queue, req)
	if e.leading {
		e.mu.Unlock()
		if e.holdN.Load() > 1 {
			// Pulse a waiting leader: its cohort may now be complete.
			select {
			case e.holdSig <- struct{}{}:
			default:
			}
		}
		<-req.done
		out := req.out
		req.net, req.in, req.s, req.out = nil, nil, nil, nil
		e.reqPool.Put(req)
		return out
	}
	e.leading = true
	e.mu.Unlock()

	e.gatherHold()

	var out *tensor.T
	for {
		e.mu.Lock()
		if len(e.queue) == 0 {
			e.leading = false
			e.mu.Unlock()
			break
		}
		// Take every queued request compatible with the head; the filter
		// writes lag the reads, so compacting in place is safe.
		head := e.queue[0]
		take := e.take[:0]
		rest := e.queue[:0]
		for _, r := range e.queue {
			if r.net == head.net && sameBatchKey(r.in, r.s, head.in, head.s) {
				take = append(take, r)
			} else {
				rest = append(rest, r)
			}
		}
		e.queue = rest
		e.take = take
		e.mu.Unlock()

		e.runReqs(take)
		for _, r := range take {
			if r == req {
				out = r.out
				continue
			}
			r.done <- struct{}{}
		}
	}
	// The leader's own request was in the queue throughout, so it is
	// always served before the queue drains.
	req.net, req.in, req.s, req.out = nil, nil, nil, nil
	e.reqPool.Put(req)
	return out
}

// gatherHold delays a new leader's first drain until the armed cohort is
// queued or the hold window expires. Called without e.mu held.
func (e *Executor) gatherHold() {
	n := int(e.holdN.Load())
	if n <= 1 {
		return
	}
	wait := time.Duration(e.holdWait.Load())
	if wait <= 0 {
		return
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		e.mu.Lock()
		queued := len(e.queue)
		e.mu.Unlock()
		if queued >= n {
			return
		}
		select {
		case <-e.holdSig:
			// re-check the queue; a stale pulse just loops once more
		case <-timer.C:
			return
		}
	}
}

// runReqs executes one gathered batch and stores each request's output.
func (e *Executor) runReqs(reqs []*fwdReq) {
	e.noteBatch(len(reqs))
	if len(reqs) == 1 {
		reqs[0].out = e.forwardOne(reqs[0].net, reqs[0].in, reqs[0].s)
		return
	}
	bb := e.acquireBufs(len(reqs))
	bb.cur = bb.cur[:0]
	bb.scs = bb.scs[:0]
	for _, r := range reqs {
		bb.cur = append(bb.cur, r.in)
		bb.scs = append(bb.scs, r.s)
	}
	e.runBatch(reqs[0].net, bb.cur, bb.scs, bb.nxt[:len(reqs)], &bb.arena)
	for i, r := range reqs {
		r.out = bb.cur[i]
	}
	e.bufsPool.Put(bb)
}

// defaultExecutor backs the deprecated package-level shims and every code
// path that predates instance-scoped executors (Layer.Forward,
// Network.ForwardScratch with no executor in sight).
var defaultExecutor = NewExecutor(0)

// Default returns the process-wide default executor, used when no explicit
// Executor is configured.
func Default() *Executor { return defaultExecutor }

// Workers reports the default executor's kernel worker count.
//
// Deprecated: worker state is instance-scoped — construct an Executor and
// ask it. This shim remains for flags and the facade.
func Workers() int { return defaultExecutor.Workers() }

// SetWorkers sets the default executor's kernel worker count; n <= 0
// restores the runtime.NumCPU() default.
//
// Deprecated: worker state is instance-scoped — construct an Executor via
// NewExecutor(n) instead of mutating the process default.
func SetWorkers(n int) { defaultExecutor.SetWorkers(n) }
