package mission

// StageName identifies the mission planner in the pipeline's declarative
// stage graph and in telemetry spans (implements telemetry.Stage).
func (p *Planner) StageName() string { return "MISPLAN" }
