package mission

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLightPhases(t *testing.T) {
	l := TrafficLight{GreenSec: 20, RedSec: 10}
	cases := []struct {
		t    float64
		want LightPhase
	}{
		{0, Green}, {19.9, Green}, {20, Red}, {29.9, Red}, {30, Green}, {50, Red},
	}
	for _, c := range cases {
		if got := l.PhaseAt(c.t); got != c.want {
			t.Errorf("PhaseAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if Green.String() != "green" || Red.String() != "red" {
		t.Error("phase strings wrong")
	}
}

func TestLightOffsetAndNegativeTime(t *testing.T) {
	l := TrafficLight{GreenSec: 10, RedSec: 10, OffsetSec: 10}
	if l.PhaseAt(0) != Red {
		t.Error("offset should shift the cycle")
	}
	l2 := TrafficLight{GreenSec: 10, RedSec: 10}
	if l2.PhaseAt(-5) != Red {
		t.Error("negative time should wrap into the cycle (t=-5 ≡ 15: red)")
	}
	// Degenerate cycle: always green.
	if (TrafficLight{}).PhaseAt(123) != Green {
		t.Error("zero cycle should be green")
	}
}

func TestTimeToGreen(t *testing.T) {
	l := TrafficLight{GreenSec: 20, RedSec: 10}
	if l.TimeToGreen(5) != 0 {
		t.Error("green now should report 0")
	}
	if got := l.TimeToGreen(25); math.Abs(got-5) > 1e-9 {
		t.Errorf("TimeToGreen(25) = %v, want 5", got)
	}
}

// Property: phase and TimeToGreen are consistent — advancing by
// TimeToGreen always lands on green.
func TestTimeToGreenProperty(t *testing.T) {
	f := func(g8, r8, t8 uint8) bool {
		l := TrafficLight{GreenSec: float64(g8%30) + 1, RedSec: float64(r8%30) + 1}
		now := float64(t8)
		return l.PhaseAt(now+l.TimeToGreen(now)) == Green
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAddLightValidation(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{ID: 1})
	if err := g.AddLight(99, TrafficLight{GreenSec: 1, RedSec: 1}); err == nil {
		t.Error("light at unknown node accepted")
	}
	if err := g.AddLight(1, TrafficLight{}); err == nil {
		t.Error("zero-cycle light accepted")
	}
	if err := g.AddLight(1, TrafficLight{GreenSec: 5, RedSec: 5}); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.LightAt(1); !ok {
		t.Error("installed light not found")
	}
	if _, ok := g.LightAt(2); ok {
		t.Error("phantom light")
	}
}

func TestGuidanceReflectsLightPhase(t *testing.T) {
	g := lineGraph(t, 3, Arterial)
	if err := g.AddLight(1, TrafficLight{GreenSec: 10, RedSec: 10}); err != nil {
		t.Fatal(err)
	}
	p, _ := NewPlanner(g)
	if err := p.Start(0, 2); err != nil {
		t.Fatal(err)
	}
	// During green: no stop.
	guid, err := p.UpdateAt(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if guid.StopAhead || guid.LightRed {
		t.Errorf("green phase produced stop guidance: %+v", guid)
	}
	// During red: stop with countdown.
	guid, _ = p.UpdateAt(0, 11, 15)
	if !guid.StopAhead || !guid.LightRed {
		t.Fatalf("red phase missing stop guidance: %+v", guid)
	}
	if math.Abs(guid.TimeToGreen-5) > 1e-9 {
		t.Errorf("TimeToGreen = %v, want 5", guid.TimeToGreen)
	}
	// Static Update() evaluates at t=0 (green).
	if guid, _ := p.Update(0, 12); guid.LightRed {
		t.Error("Update() should evaluate lights at t=0")
	}
}

// Property: guidance invariants hold for arbitrary positions and times —
// non-negative speed limit and TimeToGreen, LightRed implies StopAhead.
func TestGuidanceInvariantsProperty(t *testing.T) {
	g := lineGraph(t, 4, Local)
	if err := g.AddLight(2, TrafficLight{GreenSec: 7, RedSec: 13}); err != nil {
		t.Fatal(err)
	}
	p, _ := NewPlanner(g)
	if err := p.Start(0, 3); err != nil {
		t.Fatal(err)
	}
	f := func(x int8, z uint16, now uint16) bool {
		guid, err := p.UpdateAt(float64(x)/30, float64(z%350), float64(now))
		if err != nil {
			return false
		}
		if guid.SpeedLimit < 0 || guid.TimeToGreen < 0 || guid.DistanceToLegEnd < 0 {
			return false
		}
		if guid.LightRed && !guid.StopAhead {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
