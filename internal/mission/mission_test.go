package mission

import (
	"math"
	"testing"
	"testing/quick"
)

func lineGraph(t *testing.T, n int, class RoadClass) *Graph {
	t.Helper()
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddNode(Node{ID: NodeID(i), X: 0, Z: float64(i) * 100})
	}
	for i := 0; i < n-1; i++ {
		if err := g.AddBidirectional(Edge{From: NodeID(i), To: NodeID(i + 1), Class: class}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestGraphValidation(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{ID: 1})
	if err := g.AddEdge(Edge{From: 1, To: 2}); err == nil {
		t.Error("edge to unknown node accepted")
	}
	if err := g.AddEdge(Edge{From: 2, To: 1}); err == nil {
		t.Error("edge from unknown node accepted")
	}
}

func TestRoadClassRules(t *testing.T) {
	if Local.SpeedLimit() >= Arterial.SpeedLimit() ||
		Arterial.SpeedLimit() >= HighwayRoad.SpeedLimit() {
		t.Error("speed limits not ordered by road class")
	}
	if Local.String() != "local" || HighwayRoad.String() != "highway" {
		t.Error("RoadClass strings wrong")
	}
}

func TestPlanRouteLine(t *testing.T) {
	g := lineGraph(t, 5, Arterial)
	r, err := g.PlanRoute(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Steps) != 4 {
		t.Fatalf("steps = %d, want 4", len(r.Steps))
	}
	if r.Length != 400 {
		t.Errorf("length = %v, want 400", r.Length)
	}
	wantTime := 400 / Arterial.SpeedLimit()
	if math.Abs(r.TravelTime-wantTime) > 1e-9 {
		t.Errorf("travel time = %v, want %v", r.TravelTime, wantTime)
	}
	if r.Nodes[0] != 0 || r.Nodes[len(r.Nodes)-1] != 4 {
		t.Errorf("nodes = %v", r.Nodes)
	}
}

func TestPlanRouteSameNode(t *testing.T) {
	g := lineGraph(t, 3, Local)
	r, err := g.PlanRoute(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Empty() {
		t.Error("same-node route should be empty")
	}
}

func TestPlanRouteUnknownNodes(t *testing.T) {
	g := lineGraph(t, 3, Local)
	if _, err := g.PlanRoute(99, 1); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := g.PlanRoute(0, 99); err == nil {
		t.Error("unknown destination accepted")
	}
}

func TestPlanRouteDisconnected(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{ID: 0})
	g.AddNode(Node{ID: 1, X: 100})
	if _, err := g.PlanRoute(0, 1); err == nil {
		t.Error("disconnected route should fail")
	}
}

func TestRouterPrefersFasterRoads(t *testing.T) {
	// Two routes 0→3: direct local (200m) vs detour highway (300m).
	// Highway at 27.8 m/s takes 10.8s; local at 8.3 m/s takes 24s.
	g := NewGraph()
	g.AddNode(Node{ID: 0, X: 0, Z: 0})
	g.AddNode(Node{ID: 1, X: 0, Z: 200})   // destination
	g.AddNode(Node{ID: 2, X: 100, Z: 100}) // highway midpoint
	if err := g.AddBidirectional(Edge{From: 0, To: 1, Class: Local}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddBidirectional(Edge{From: 0, To: 2, Class: HighwayRoad}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddBidirectional(Edge{From: 2, To: 1, Class: HighwayRoad}); err != nil {
		t.Fatal(err)
	}
	r, err := g.PlanRoute(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Steps) != 2 || r.Steps[0].Edge.To != 2 {
		t.Errorf("router chose %v, want the highway detour via node 2", r.Nodes)
	}
}

func TestStopPenaltyAvoidsStopLines(t *testing.T) {
	// Same geometry, same class, one path with a stop line.
	g := NewGraph()
	g.AddNode(Node{ID: 0, X: 0, Z: 0})
	g.AddNode(Node{ID: 1, X: -50, Z: 100})
	g.AddNode(Node{ID: 2, X: 50, Z: 100})
	g.AddNode(Node{ID: 3, X: 0, Z: 200})
	for _, e := range []Edge{
		{From: 0, To: 1, Class: Arterial, StopAtEnd: true},
		{From: 1, To: 3, Class: Arterial},
		{From: 0, To: 2, Class: Arterial},
		{From: 2, To: 3, Class: Arterial},
	} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	r, err := g.PlanRoute(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes[1] != 2 {
		t.Errorf("router chose stop-line path: %v", r.Nodes)
	}
}

// Property: on a grid, routes between random nodes always exist and route
// length is at least the Manhattan-ish straight-line distance.
func TestGridRouteProperty(t *testing.T) {
	g, err := GridGraph(4, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		src := NodeID(int(a) % 25)
		dst := NodeID(int(b) % 25)
		r, err := g.PlanRoute(src, dst)
		if err != nil {
			return false
		}
		sn, _ := g.Node(src)
		dn, _ := g.Node(dst)
		crow := math.Hypot(dn.X-sn.X, dn.Z-sn.Z)
		return r.Length >= crow-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPlannerLifecycle(t *testing.T) {
	g := lineGraph(t, 4, Arterial) // nodes at z=0,100,200,300
	p, err := NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(0, 3); err != nil {
		t.Fatal(err)
	}
	// Drive along the route.
	guid, err := p.Update(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if guid.Arrived || guid.Replanned {
		t.Fatalf("unexpected guidance %+v", guid)
	}
	if guid.SpeedLimit != Arterial.SpeedLimit() {
		t.Errorf("speed limit = %v", guid.SpeedLimit)
	}
	if math.Abs(guid.DistanceToLegEnd-90) > 1e-9 {
		t.Errorf("leg distance = %v, want 90", guid.DistanceToLegEnd)
	}
	// Pass node 1: leg advances.
	guid, _ = p.Update(0, 99)
	if math.Abs(guid.DistanceToLegEnd-101) > 1e-9 {
		t.Errorf("after advance, leg distance = %v, want 101", guid.DistanceToLegEnd)
	}
	// Arrive.
	guid, _ = p.Update(0, 299)
	guid, _ = p.Update(0, 300)
	if !guid.Arrived {
		t.Error("not arrived at destination")
	}
}

func TestPlannerDeviationTriggersReplan(t *testing.T) {
	g, err := GridGraph(3, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewPlanner(g)
	if err := p.Start(0, 15); err != nil { // corner to corner
		t.Fatal(err)
	}
	// Teleport far off the first leg: must re-plan from the nearest node.
	guid, err := p.Update(250, 250)
	if err != nil {
		t.Fatal(err)
	}
	if !guid.Replanned {
		t.Fatal("deviation did not trigger re-plan")
	}
	if p.Replans() != 1 {
		t.Errorf("replans = %d, want 1", p.Replans())
	}
	// The new route must still lead to the destination.
	r := p.Route()
	if len(r.Nodes) == 0 || r.Nodes[len(r.Nodes)-1] != 15 {
		t.Errorf("re-planned route %v does not reach 15", r.Nodes)
	}
}

func TestPlannerOnRouteNoReplan(t *testing.T) {
	g := lineGraph(t, 4, Arterial)
	p, _ := NewPlanner(g)
	p.Start(0, 3)
	for z := 0.0; z <= 290; z += 10 {
		if guid, _ := p.Update(0, z); guid.Replanned {
			t.Fatalf("spurious re-plan at z=%v", z)
		}
	}
	if p.Replans() != 0 {
		t.Error("replans should be 0 on-route")
	}
}

func TestNewPlannerRejectsEmptyGraph(t *testing.T) {
	if _, err := NewPlanner(NewGraph()); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := NewPlanner(nil); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestGridGraphShape(t *testing.T) {
	g, err := GridGraph(2, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 {
		t.Errorf("nodes = %d, want 12", g.NumNodes())
	}
	if _, err := GridGraph(0, 3, 50); err == nil {
		t.Error("zero cols accepted")
	}
}

func TestDistToSegment(t *testing.T) {
	if d := distToSegment(0, 5, -10, 0, 10, 0); d != 5 {
		t.Errorf("perpendicular distance = %v, want 5", d)
	}
	if d := distToSegment(20, 0, -10, 0, 10, 0); d != 10 {
		t.Errorf("beyond-end distance = %v, want 10", d)
	}
	if d := distToSegment(3, 4, 0, 0, 0, 0); d != 5 {
		t.Errorf("degenerate segment distance = %v, want 5", d)
	}
}
