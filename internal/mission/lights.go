package mission

import (
	"fmt"
	"math"
)

// LightPhase is a traffic light's current state.
type LightPhase int

const (
	// Green allows passage.
	Green LightPhase = iota
	// Red requires a stop at the intersection's stop line.
	Red
)

func (p LightPhase) String() string {
	if p == Green {
		return "green"
	}
	return "red"
}

// TrafficLight is a fixed-cycle signal at a road-graph node: GreenSec of
// green followed by RedSec of red, phase-shifted by OffsetSec. The rule
// engine evaluates it against the pipeline clock, so the motion planner
// sees a stop requirement appear and disappear over time.
type TrafficLight struct {
	GreenSec  float64
	RedSec    float64
	OffsetSec float64
}

// PhaseAt returns the light's phase at time t (seconds).
func (l TrafficLight) PhaseAt(t float64) LightPhase {
	cycle := l.GreenSec + l.RedSec
	if cycle <= 0 {
		return Green
	}
	pos := math.Mod(t+l.OffsetSec, cycle)
	if pos < 0 {
		pos += cycle
	}
	if pos < l.GreenSec {
		return Green
	}
	return Red
}

// TimeToGreen returns how long after t the light next turns (or stays)
// green; 0 when it is green now.
func (l TrafficLight) TimeToGreen(t float64) float64 {
	if l.PhaseAt(t) == Green {
		return 0
	}
	cycle := l.GreenSec + l.RedSec
	pos := math.Mod(t+l.OffsetSec, cycle)
	if pos < 0 {
		pos += cycle
	}
	return cycle - pos
}

// AddLight installs a traffic light at a node. Lights and static stop lines
// compose: a leg requires a stop when it has StopAtEnd or its end node's
// light is red at evaluation time.
func (g *Graph) AddLight(node NodeID, l TrafficLight) error {
	if _, ok := g.nodes[node]; !ok {
		return fmt.Errorf("mission: light at unknown node %d", node)
	}
	if l.GreenSec < 0 || l.RedSec < 0 || l.GreenSec+l.RedSec <= 0 {
		return fmt.Errorf("mission: invalid light cycle %+v", l)
	}
	if g.lights == nil {
		g.lights = make(map[NodeID]TrafficLight)
	}
	g.lights[node] = l
	return nil
}

// LightAt returns the light installed at a node, if any.
func (g *Graph) LightAt(node NodeID) (TrafficLight, bool) {
	l, ok := g.lights[node]
	return l, ok
}
