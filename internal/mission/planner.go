package mission

import (
	"fmt"
	"math"
)

// Planner is the mission-planning engine: it holds the active route,
// tracks progress against the vehicle's localized position, surfaces the
// current leg's traffic rules, and re-plans when the vehicle deviates from
// the route — matching the paper's "only invoked when the vehicle deviates
// from the original routing plan".
type Planner struct {
	g   *Graph
	dst NodeID

	route   Route
	leg     int // index of the active step in route.Steps
	replans int

	// DeviationLimit is the lateral distance (m) from the active leg
	// beyond which the planner declares a deviation and re-routes.
	DeviationLimit float64
}

// NewPlanner creates a mission planner over a road graph.
func NewPlanner(g *Graph) (*Planner, error) {
	if g == nil || g.NumNodes() == 0 {
		return nil, fmt.Errorf("mission: empty road graph")
	}
	return &Planner{g: g, DeviationLimit: 6.0}, nil
}

// Route returns the active route.
func (p *Planner) Route() Route { return p.route }

// Replans reports how many times the route was re-planned after deviations.
func (p *Planner) Replans() int { return p.replans }

// Start plans the initial route from src to dst. This is the single
// up-front MISPLAN invocation.
func (p *Planner) Start(src, dst NodeID) error {
	r, err := p.g.PlanRoute(src, dst)
	if err != nil {
		return err
	}
	p.route = r
	p.dst = dst
	p.leg = 0
	return nil
}

// Guidance is the mission planner's per-position output for the motion
// planner: current leg rules plus progress state.
type Guidance struct {
	// SpeedLimit for the active leg (m/s); 0 when the route is complete.
	SpeedLimit float64
	// StopAhead is true when the active leg currently requires stopping
	// at its end: a static stop line, or a red light at evaluation time.
	StopAhead bool
	// LightRed is true when StopAhead is caused by a red traffic light;
	// TimeToGreen then reports how long until it clears (seconds).
	LightRed    bool
	TimeToGreen float64
	// DistanceToLegEnd is the remaining length of the active leg (m).
	DistanceToLegEnd float64
	// Arrived is true once the final node is reached.
	Arrived bool
	// Replanned is true when this update triggered a deviation re-plan.
	Replanned bool
}

// Update advances route progress given the vehicle's localized position,
// evaluating time-dependent rules (traffic lights) at t=0. Use UpdateAt to
// supply the pipeline clock.
func (p *Planner) Update(x, z float64) (Guidance, error) {
	return p.UpdateAt(x, z, 0)
}

// UpdateAt advances route progress given the vehicle's localized position
// and the current time (seconds, for traffic-light phases). It advances
// legs as their end nodes are passed, re-plans from the nearest node on
// deviation, and reports the active leg's rules.
func (p *Planner) UpdateAt(x, z, now float64) (Guidance, error) {
	if p.route.Empty() || p.leg >= len(p.route.Steps) {
		return Guidance{Arrived: true}, nil
	}

	step := p.route.Steps[p.leg]
	from, _ := p.g.Node(step.Edge.From)
	to, _ := p.g.Node(step.Edge.To)

	// Advance to the next leg once within arrival radius of the leg end.
	const arriveRadius = 3.0
	if math.Hypot(to.X-x, to.Z-z) <= arriveRadius {
		p.leg++
		if p.leg >= len(p.route.Steps) {
			return Guidance{Arrived: true}, nil
		}
		step = p.route.Steps[p.leg]
		from, _ = p.g.Node(step.Edge.From)
		to, _ = p.g.Node(step.Edge.To)
	}

	// Deviation check: lateral distance from the active leg segment.
	if distToSegment(x, z, from.X, from.Z, to.X, to.Z) > p.DeviationLimit {
		src := p.nearestNode(x, z)
		r, err := p.g.PlanRoute(src, p.dst)
		if err != nil {
			return Guidance{}, fmt.Errorf("mission: deviation re-plan failed: %w", err)
		}
		p.route = r
		p.leg = 0
		p.replans++
		if r.Empty() {
			return Guidance{Arrived: true, Replanned: true}, nil
		}
		step = r.Steps[0]
		to, _ = p.g.Node(step.Edge.To)
		guid := p.legGuidance(step, to, x, z, now)
		guid.Replanned = true
		return guid, nil
	}

	return p.legGuidance(step, to, x, z, now), nil
}

// legGuidance assembles the rule-engine output for the active leg,
// composing static stop lines with the end node's traffic-light phase.
func (p *Planner) legGuidance(step RouteStep, to Node, x, z, now float64) Guidance {
	guid := Guidance{
		SpeedLimit:       step.SpeedLimit,
		StopAhead:        step.StopAtEnd,
		DistanceToLegEnd: math.Hypot(to.X-x, to.Z-z),
	}
	if light, ok := p.g.LightAt(step.Edge.To); ok && light.PhaseAt(now) == Red {
		guid.StopAhead = true
		guid.LightRed = true
		guid.TimeToGreen = light.TimeToGreen(now)
	}
	return guid
}

// nearestNode returns the graph node closest to (x,z).
func (p *Planner) nearestNode(x, z float64) NodeID {
	var best NodeID
	bestD := math.Inf(1)
	for id, n := range p.g.nodes {
		d := math.Hypot(n.X-x, n.Z-z)
		if d < bestD {
			best, bestD = id, d
		}
	}
	return best
}

// distToSegment returns the distance from point (px,pz) to segment
// (ax,az)-(bx,bz).
func distToSegment(px, pz, ax, az, bx, bz float64) float64 {
	dx, dz := bx-ax, bz-az
	lenSq := dx*dx + dz*dz
	if lenSq == 0 {
		return math.Hypot(px-ax, pz-az)
	}
	t := ((px-ax)*dx + (pz-az)*dz) / lenSq
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return math.Hypot(px-(ax+t*dx), pz-(az+t*dz))
}

// GridGraph builds a rectangular road-grid test world: (cols+1)×(rows+1)
// intersections spaced pitch meters apart, connected bidirectionally.
// Horizontal streets are Local with stop lines; vertical avenues are
// Arterial. Node IDs are row*(cols+1)+col. Useful for examples and tests.
func GridGraph(cols, rows int, pitch float64) (*Graph, error) {
	if cols <= 0 || rows <= 0 || pitch <= 0 {
		return nil, fmt.Errorf("mission: invalid grid %dx%d pitch %v", cols, rows, pitch)
	}
	g := NewGraph()
	id := func(r, c int) NodeID { return NodeID(r*(cols+1) + c) }
	for r := 0; r <= rows; r++ {
		for c := 0; c <= cols; c++ {
			g.AddNode(Node{ID: id(r, c), X: float64(c) * pitch, Z: float64(r) * pitch})
		}
	}
	for r := 0; r <= rows; r++ {
		for c := 0; c < cols; c++ {
			if err := g.AddBidirectional(Edge{From: id(r, c), To: id(r, c+1), Class: Local, StopAtEnd: true}); err != nil {
				return nil, err
			}
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c <= cols; c++ {
			if err := g.AddBidirectional(Edge{From: id(r, c), To: id(r+1, c), Class: Arterial}); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
