// Package mission implements the mission-planning engine (MISPLAN) of the
// pipeline: rule-based route planning over a road graph, as the paper
// adopts from Autoware and attributes to Mobileye's rule-based policy.
//
// Per the paper's Figure 1, the mission planner determines the routing path
// from source to destination (like a navigation service would), is executed
// once up front, and is re-invoked only when the vehicle deviates from the
// planned route. The rule engine applies traffic rules (speed limits, stop
// requirements) per road segment for the motion planner to honor.
package mission

import (
	"container/heap"
	"fmt"
	"math"
)

// NodeID identifies a road-graph node (an intersection or waypoint).
type NodeID int

// Node is a road-graph vertex positioned in the world frame.
type Node struct {
	ID   NodeID
	X, Z float64
}

// RoadClass carries the per-segment traffic rules the rule engine applies.
type RoadClass int

const (
	// Local roads: low speed, stop lines at intersections.
	Local RoadClass = iota
	// Arterial roads: medium speed.
	Arterial
	// HighwayRoad: high speed, no stops.
	HighwayRoad
)

func (r RoadClass) String() string {
	switch r {
	case Local:
		return "local"
	case Arterial:
		return "arterial"
	default:
		return "highway"
	}
}

// SpeedLimit returns the class speed limit (m/s).
func (r RoadClass) SpeedLimit() float64 {
	switch r {
	case Local:
		return 8.3 // 30 km/h
	case Arterial:
		return 13.9 // 50 km/h
	default:
		return 27.8 // 100 km/h
	}
}

// Edge is a directed road segment.
type Edge struct {
	From, To NodeID
	Class    RoadClass
	// StopAtEnd marks a stop line (sign or signal) at the destination
	// node that the rule engine will surface.
	StopAtEnd bool
}

// Graph is a directed road graph.
type Graph struct {
	nodes  map[NodeID]Node
	adj    map[NodeID][]Edge
	lights map[NodeID]TrafficLight
}

// NewGraph returns an empty road graph.
func NewGraph() *Graph {
	return &Graph{nodes: make(map[NodeID]Node), adj: make(map[NodeID][]Edge)}
}

// AddNode inserts (or replaces) a node.
func (g *Graph) AddNode(n Node) { g.nodes[n.ID] = n }

// AddEdge inserts a directed edge; both endpoints must exist.
func (g *Graph) AddEdge(e Edge) error {
	if _, ok := g.nodes[e.From]; !ok {
		return fmt.Errorf("mission: edge from unknown node %d", e.From)
	}
	if _, ok := g.nodes[e.To]; !ok {
		return fmt.Errorf("mission: edge to unknown node %d", e.To)
	}
	g.adj[e.From] = append(g.adj[e.From], e)
	return nil
}

// AddBidirectional inserts the edge in both directions.
func (g *Graph) AddBidirectional(e Edge) error {
	if err := g.AddEdge(e); err != nil {
		return err
	}
	rev := e
	rev.From, rev.To = e.To, e.From
	return g.AddEdge(rev)
}

// Node returns a node by ID.
func (g *Graph) Node(id NodeID) (Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// edgeLength returns the Euclidean length of e (m).
func (g *Graph) edgeLength(e Edge) float64 {
	a, b := g.nodes[e.From], g.nodes[e.To]
	return math.Hypot(b.X-a.X, b.Z-a.Z)
}

// RouteStep is one leg of a planned route.
type RouteStep struct {
	Edge   Edge
	Length float64 // m
	// SpeedLimit from the rule engine (m/s).
	SpeedLimit float64
	// StopAtEnd propagated from the edge's rules.
	StopAtEnd bool
}

// Route is a mission plan from source to destination.
type Route struct {
	Steps []RouteStep
	Nodes []NodeID // visited nodes, source first
	// TravelTime is the rule-respecting ETA (s).
	TravelTime float64
	// Length is the total distance (m).
	Length float64
}

// Empty reports whether the route has no legs (already at destination).
func (r Route) Empty() bool { return len(r.Steps) == 0 }

// pqItem is a priority-queue element for Dijkstra.
type pqItem struct {
	node NodeID
	cost float64
	idx  int
}

type pq []*pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].cost < p[j].cost }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i]; p[i].idx = i; p[j].idx = j }
func (p *pq) Push(x interface{}) { it := x.(*pqItem); it.idx = len(*p); *p = append(*p, it) }
func (p *pq) Pop() interface{} {
	old := *p
	it := old[len(old)-1]
	*p = old[:len(old)-1]
	return it
}

// PlanRoute computes the minimum-travel-time route from src to dst with
// Dijkstra's algorithm, where each edge costs length/speedLimit plus a stop
// penalty — so the router prefers faster road classes, as navigation
// services do.
func (g *Graph) PlanRoute(src, dst NodeID) (Route, error) {
	if _, ok := g.nodes[src]; !ok {
		return Route{}, fmt.Errorf("mission: unknown source node %d", src)
	}
	if _, ok := g.nodes[dst]; !ok {
		return Route{}, fmt.Errorf("mission: unknown destination node %d", dst)
	}
	if src == dst {
		return Route{Nodes: []NodeID{src}}, nil
	}
	const stopPenalty = 5.0 // seconds lost per stop line

	dist := map[NodeID]float64{src: 0}
	prevEdge := map[NodeID]Edge{}
	visited := map[NodeID]bool{}
	q := &pq{}
	heap.Init(q)
	heap.Push(q, &pqItem{node: src, cost: 0})

	for q.Len() > 0 {
		cur := heap.Pop(q).(*pqItem)
		if visited[cur.node] {
			continue
		}
		visited[cur.node] = true
		if cur.node == dst {
			break
		}
		for _, e := range g.adj[cur.node] {
			cost := cur.cost + g.edgeLength(e)/e.Class.SpeedLimit()
			if e.StopAtEnd {
				cost += stopPenalty
			}
			if old, seen := dist[e.To]; !seen || cost < old {
				dist[e.To] = cost
				prevEdge[e.To] = e
				heap.Push(q, &pqItem{node: e.To, cost: cost})
			}
		}
	}
	if !visited[dst] {
		return Route{}, fmt.Errorf("mission: no route from %d to %d", src, dst)
	}

	// Reconstruct.
	var steps []RouteStep
	nodes := []NodeID{dst}
	for at := dst; at != src; {
		e := prevEdge[at]
		steps = append(steps, RouteStep{
			Edge:       e,
			Length:     g.edgeLength(e),
			SpeedLimit: e.Class.SpeedLimit(),
			StopAtEnd:  e.StopAtEnd,
		})
		at = e.From
		nodes = append(nodes, at)
	}
	// Reverse into forward order.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}

	r := Route{Steps: steps, Nodes: nodes, TravelTime: dist[dst]}
	for _, s := range steps {
		r.Length += s.Length
	}
	return r, nil
}
