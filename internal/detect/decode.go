package detect

import (
	"math"

	"adsim/internal/dnn"
	"adsim/internal/img"
	"adsim/internal/scene"
	"adsim/internal/tensor"
)

// DecodeGrid decodes a YOLO detection head's output tensor into candidate
// detections. The tensor layout matches the network zoo's detection head:
// for each grid cell, DetBoxesPerCell boxes of (tx, ty, tw, th, tc)
// followed by DetGridClasses shared class logits, all along the channel
// dimension.
//
// Decode semantics follow YOLO's: box centers are cell-relative through a
// sigmoid, box extents are squared sigmoids of the raw predictions (so
// extents live in (0,1) of the frame), confidence is sigmoid(tc), and the
// reported per-detection score is confidence × max class probability.
// Detections below confThresh are dropped; NMS is the caller's job, so the
// full pipeline shares one suppression implementation.
func DecodeGrid(out *tensor.T, frameW, frameH int, confThresh float64) []Detection {
	if out.C < dnn.DetCellDepth {
		return nil
	}
	gridH, gridW := out.H, out.W
	cellW := float64(frameW) / float64(gridW)
	cellH := float64(frameH) / float64(gridH)
	var dets []Detection
	classProbs := make([]float32, dnn.DetGridClasses)
	for gy := 0; gy < gridH; gy++ {
		for gx := 0; gx < gridW; gx++ {
			// Shared class distribution for the cell.
			for c := 0; c < dnn.DetGridClasses; c++ {
				classProbs[c] = out.At(dnn.DetBoxesPerCell*5+c, gy, gx)
			}
			tensor.Softmax(classProbs)
			bestClass, bestProb := 0, classProbs[0]
			for c := 1; c < dnn.DetGridClasses; c++ {
				if classProbs[c] > bestProb {
					bestClass, bestProb = c, classProbs[c]
				}
			}
			for b := 0; b < dnn.DetBoxesPerCell; b++ {
				base := b * 5
				tc := sigmoid(float64(out.At(base+4, gy, gx)))
				score := tc * float64(bestProb)
				if score < confThresh {
					continue
				}
				tx := sigmoid(float64(out.At(base+0, gy, gx)))
				ty := sigmoid(float64(out.At(base+1, gy, gx)))
				tw := sigmoid(float64(out.At(base+2, gy, gx)))
				th := sigmoid(float64(out.At(base+3, gy, gx)))
				cx := (float64(gx) + tx) * cellW
				cy := (float64(gy) + ty) * cellH
				w := tw * tw * float64(frameW)
				h := th * th * float64(frameH)
				box := img.RectCenter(cx, cy, w, h).Clip(0, 0, frameW, frameH)
				if box.Empty() {
					continue
				}
				dets = append(dets, Detection{
					Box:        box,
					Class:      sceneClass(bestClass),
					Confidence: score,
				})
			}
		}
	}
	return dets
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// sceneClass maps a class index of the detection head to the shared object
// taxonomy (the head predicts the same four classes, in order).
func sceneClass(idx int) scene.Class { return scene.Class(idx) }

// DetectDNN runs the pure DNN detection path: resize, forward pass, YOLO
// grid decode, NMS. This is the faithful YOLO inference pipeline; with the
// deterministic untrained weights of this reproduction its functional
// output is not meaningful (DESIGN.md substitution 2) — tests exercise the
// decode semantics with crafted tensors, and the reference proposal path
// in Detect supplies functional boxes.
func (d *Detector) DetectDNN(frame *img.Gray) []Detection {
	if d.net == nil {
		return nil
	}
	small := frame.Resize(d.cfg.InputSize, d.cfg.InputSize)
	input := tensor.New(1, d.cfg.InputSize, d.cfg.InputSize)
	for i, p := range small.Pix {
		input.Data[i] = float32(p) / 255
	}
	out := d.net.Forward(input)
	dets := DecodeGrid(out, frame.W, frame.H, d.cfg.ConfThreshold)
	return NMS(dets, d.cfg.NMSThreshold)
}
