package detect

import (
	"testing"

	"adsim/internal/img"
	"adsim/internal/scene"
)

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{InputSize: 0, ConfThreshold: 0.3, NMSThreshold: 0.5},
		{InputSize: 63, ConfThreshold: 0.3, NMSThreshold: 0.5},
		{InputSize: 64, ConfThreshold: -1, NMSThreshold: 0.5},
		{InputSize: 64, ConfThreshold: 0.3, NMSThreshold: 0},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v should be rejected", i, cfg)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func frameWithBox(w, h int, box img.Rect) *img.Gray {
	f := img.NewGray(w, h)
	f.Fill(100)
	f.FillRect(box, 60)
	f.StrokeRect(box, 255)
	return f
}

func TestDetectSingleObject(t *testing.T) {
	d, _ := New(DefaultConfig())
	want := img.RectWH(40, 30, 40, 33) // vehicle-ish aspect 1.21
	f := frameWithBox(160, 120, want)
	dets := d.Detect(f)
	if len(dets) != 1 {
		t.Fatalf("got %d detections, want 1", len(dets))
	}
	if iou := dets[0].Box.IoU(want); iou < 0.8 {
		t.Errorf("detection IoU %.2f too low (box %v, want %v)", iou, dets[0].Box, want)
	}
	if dets[0].Class != scene.Vehicle {
		t.Errorf("class = %v, want vehicle", dets[0].Class)
	}
	if dets[0].Confidence < 0.5 {
		t.Errorf("clean outline confidence %.2f too low", dets[0].Confidence)
	}
}

func TestDetectMultipleObjects(t *testing.T) {
	d, _ := New(DefaultConfig())
	f := img.NewGray(320, 240)
	f.Fill(90)
	boxes := []img.Rect{
		img.RectWH(20, 50, 48, 40),  // vehicle
		img.RectWH(120, 40, 20, 65), // pedestrian
		img.RectWH(220, 60, 30, 30), // sign
	}
	for _, b := range boxes {
		f.FillRect(b, 50)
		f.StrokeRect(b, 255)
	}
	dets := d.Detect(f)
	if len(dets) != 3 {
		t.Fatalf("got %d detections, want 3", len(dets))
	}
	classes := map[scene.Class]int{}
	for _, det := range dets {
		classes[det.Class]++
	}
	if classes[scene.Vehicle] != 1 || classes[scene.Pedestrian] != 1 || classes[scene.TrafficSign] != 1 {
		t.Errorf("class histogram %v", classes)
	}
}

func TestDetectEmptyFrame(t *testing.T) {
	d, _ := New(DefaultConfig())
	f := img.NewGray(160, 120)
	f.Fill(128)
	if dets := d.Detect(f); len(dets) != 0 {
		t.Errorf("flat frame produced %d detections", len(dets))
	}
}

func TestDetectIgnoresTinyBlobs(t *testing.T) {
	cfg := DefaultConfig()
	d, _ := New(cfg)
	f := img.NewGray(160, 120)
	f.Set(10, 10, 255) // single bright pixel: below MinBoxPixels
	f.Set(11, 10, 255)
	if dets := d.Detect(f); len(dets) != 0 {
		t.Errorf("tiny blob produced %d detections", len(dets))
	}
}

func TestDetectOnSyntheticScene(t *testing.T) {
	cfg := scene.DefaultConfig(scene.Urban)
	cfg.Width, cfg.Height = 640, 360
	gen, err := scene.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det, _ := New(DefaultConfig())

	matched, total := 0, 0
	for i := 0; i < 10; i++ {
		frame := gen.Step()
		dets := det.Detect(frame.Image)
		for _, truth := range frame.Truth {
			if truth.Box.Area() < 100 {
				continue // far objects may be sub-resolution
			}
			total++
			for _, d := range dets {
				if d.Box.IoU(truth.Box) > 0.4 {
					matched++
					break
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no sizable ground-truth objects in 10 frames")
	}
	recall := float64(matched) / float64(total)
	if recall < 0.6 {
		t.Errorf("recall %.2f (%d/%d) on synthetic scene too low", recall, matched, total)
	}
}

func TestTimingBreakdownRecorded(t *testing.T) {
	d, _ := New(DefaultConfig())
	f := frameWithBox(160, 120, img.RectWH(40, 30, 40, 33))
	_, tm := d.DetectTimed(f)
	if tm.DNN <= 0 {
		t.Error("DNN time not recorded")
	}
	if tm.Other <= 0 {
		t.Error("Other time not recorded")
	}
	if tm.Total() != tm.DNN+tm.Other {
		t.Error("Total inconsistent")
	}
	// The DNN forward dominates the reference pre/post path (paper: 99.4%).
	if tm.DNN < tm.Other {
		t.Errorf("DNN %v should dominate Other %v", tm.DNN, tm.Other)
	}
}

func TestRunDNNDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RunDNN = false
	d, _ := New(cfg)
	f := frameWithBox(160, 120, img.RectWH(40, 30, 40, 33))
	dets, tm := d.DetectTimed(f)
	if len(dets) != 1 {
		t.Fatalf("functional path broken without DNN: %d dets", len(dets))
	}
	if tm.DNN != 0 {
		t.Error("DNN time should be zero when disabled")
	}
}

func TestNMSSuppresses(t *testing.T) {
	a := Detection{Box: img.RectWH(0, 0, 10, 10), Confidence: 0.9}
	b := Detection{Box: img.RectWH(1, 1, 10, 10), Confidence: 0.8} // heavy overlap
	c := Detection{Box: img.RectWH(50, 50, 10, 10), Confidence: 0.7}
	out := NMS([]Detection{b, a, c}, 0.45)
	if len(out) != 2 {
		t.Fatalf("NMS kept %d, want 2", len(out))
	}
	if out[0].Confidence != 0.9 || out[1].Confidence != 0.7 {
		t.Errorf("NMS kept wrong boxes: %+v", out)
	}
}

func TestNMSKeepsDisjoint(t *testing.T) {
	dets := []Detection{
		{Box: img.RectWH(0, 0, 10, 10), Confidence: 0.5},
		{Box: img.RectWH(20, 0, 10, 10), Confidence: 0.6},
		{Box: img.RectWH(40, 0, 10, 10), Confidence: 0.7},
	}
	if out := NMS(dets, 0.45); len(out) != 3 {
		t.Errorf("NMS dropped disjoint boxes: kept %d", len(out))
	}
}

func TestNMSDoesNotMutateInput(t *testing.T) {
	dets := []Detection{
		{Box: img.RectWH(0, 0, 10, 10), Confidence: 0.5},
		{Box: img.RectWH(1, 1, 10, 10), Confidence: 0.9},
	}
	NMS(dets, 0.45)
	if dets[0].Confidence != 0.5 {
		t.Error("NMS reordered the caller's slice")
	}
}

func TestNMSEmpty(t *testing.T) {
	if out := NMS(nil, 0.5); len(out) != 0 {
		t.Error("NMS(nil) should be empty")
	}
}

func TestClassifyBox(t *testing.T) {
	cases := []struct {
		w, h float64
		want scene.Class
	}{
		{36, 30, scene.Vehicle},     // aspect 1.2
		{30, 30, scene.TrafficSign}, // aspect 1.0
		{12, 34, scene.Cyclist},     // aspect 0.35
		{10, 35, scene.Pedestrian},  // aspect 0.29
	}
	for _, c := range cases {
		got := ClassifyBox(img.RectWH(0, 0, c.w, c.h))
		if got != c.want {
			t.Errorf("ClassifyBox(%vx%v) = %v, want %v", c.w, c.h, got, c.want)
		}
	}
	if ClassifyBox(img.Rect{}) != scene.Vehicle {
		t.Error("degenerate box should default to vehicle")
	}
}

func TestPaperWorkload(t *testing.T) {
	n := PaperWorkload()
	if n.Name != "yolov2" {
		t.Errorf("paper workload = %q", n.Name)
	}
	if n.Cost().MACs < 1e10 {
		t.Error("paper workload suspiciously small")
	}
}

func BenchmarkDetectNative(b *testing.B) {
	d, _ := New(DefaultConfig())
	f := frameWithBox(640, 360, img.RectWH(100, 100, 80, 66))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(f)
	}
}
