package detect

import (
	"testing"
	"time"

	"adsim/internal/img"
)

// multiBoxFrame renders several well-separated objects so the detector
// yields a multi-element detection set for coarsening to cut.
func multiBoxFrame() *img.Gray {
	f := img.NewGray(320, 240)
	f.Fill(90)
	for _, b := range []img.Rect{
		img.RectWH(20, 50, 48, 40),
		img.RectWH(120, 40, 20, 65),
		img.RectWH(200, 60, 50, 42),
		img.RectWH(270, 30, 22, 24),
	} {
		f.FillRect(b, 60)
		f.StrokeRect(b, 255)
	}
	return f
}

// Zero-valued BudgetOpts must reproduce DetectTimed exactly — same boxes,
// full run, quality 1.
func TestDetectBudgetedZeroOptsMatchesDetectTimed(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := multiBoxFrame()
	want, _ := d.DetectTimed(f)
	got, _, info := d.DetectBudgeted(f, BudgetOpts{})
	if info.EarlyExit || info.Quality != 1 {
		t.Fatalf("zero opts reported anytime exit: %+v", info)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d detections, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("detection %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// A resolution-ladder rung change alone must not change the detection set:
// boxes come from the functional proposal path on the full frame. This is
// the property that lets the tail scheduler scale resolution without
// breaking Step/Runner bitwise equivalence.
func TestDetectBudgetedResolutionInvariant(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := multiBoxFrame()
	want, _ := d.DetectTimed(f)
	for _, size := range []int{32, 48, 96} {
		got, _, info := d.DetectBudgeted(f, BudgetOpts{InputSize: size})
		if info.EarlyExit {
			t.Fatalf("size %d: unexpected anytime exit", size)
		}
		if len(got) != len(want) {
			t.Fatalf("size %d: got %d detections, want %d", size, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("size %d: detection %d = %+v, want %+v", size, i, got[i], want[i])
			}
		}
	}
}

// An expired deadline forces the earliest exit: no layers run, the quality
// floor applies, and the committed set is the non-empty confidence prefix.
func TestDetectBudgetedDeadlineExit(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := multiBoxFrame()
	full, _ := d.DetectTimed(f)
	if len(full) < 2 {
		t.Fatalf("scene yields %d detections; need >= 2 for a visible cut", len(full))
	}

	got, _, info := d.DetectBudgeted(f, BudgetOpts{Deadline: time.Now().Add(-time.Second)})
	if !info.EarlyExit || info.LayersRun != 0 {
		t.Fatalf("expired deadline: info = %+v, want earliest exit", info)
	}
	if info.Quality != AnytimeQualityFloor {
		t.Fatalf("quality = %v, want floor %v", info.Quality, AnytimeQualityFloor)
	}
	if len(got) == 0 || len(got) >= len(full) {
		t.Fatalf("coarsened set has %d of %d detections; want a non-empty strict subset", len(got), len(full))
	}
	for i := range got {
		if got[i] != full[i] {
			t.Fatalf("coarsened set is not a confidence prefix: det %d = %+v, want %+v", i, got[i], full[i])
		}
	}
}

// VirtualFrac is the deterministic anytime clock: the layer count, quality
// and committed set are pure functions of the fraction, and a repeated call
// is identical.
func TestDetectBudgetedVirtualFracDeterministic(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := multiBoxFrame()
	a, _, ia := d.DetectBudgeted(f, BudgetOpts{VirtualFrac: 0.3})
	b, _, ib := d.DetectBudgeted(f, BudgetOpts{VirtualFrac: 0.3})
	if ia != ib {
		t.Fatalf("virtual anytime info not deterministic: %+v vs %+v", ia, ib)
	}
	if !ia.EarlyExit || ia.LayersRun >= ia.LayersTotal {
		t.Fatalf("frac 0.3 should exit early: %+v", ia)
	}
	if len(a) != len(b) {
		t.Fatalf("virtual anytime set not deterministic: %d vs %d detections", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("virtual anytime det %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}

	// With the DNN disabled the virtual cut still applies, from the
	// fraction alone.
	cfg := DefaultConfig()
	cfg.RunDNN = false
	dn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := dn.DetectTimed(f)
	got, _, info := dn.DetectBudgeted(f, BudgetOpts{VirtualFrac: 0.25})
	if !info.EarlyExit {
		t.Fatalf("RunDNN=false virtual anytime did not exit: %+v", info)
	}
	if wantQ := AnytimeQualityFloor + (1-AnytimeQualityFloor)*0.25; info.Quality != wantQ {
		t.Fatalf("quality = %v, want %v", info.Quality, wantQ)
	}
	if len(got) == 0 || len(got) > len(full) {
		t.Fatalf("coarsened %d of %d detections", len(got), len(full))
	}
}
