package detect

import (
	"math"
	"testing"

	"adsim/internal/dnn"
	"adsim/internal/img"
	"adsim/internal/scene"
	"adsim/internal/tensor"
)

// emptyGrid builds a head output with every box confidence pushed to ~0.
func emptyGrid(gridW, gridH int) *tensor.T {
	out := tensor.New(dnn.DetCellDepth, gridH, gridW)
	for b := 0; b < dnn.DetBoxesPerCell; b++ {
		for y := 0; y < gridH; y++ {
			for x := 0; x < gridW; x++ {
				out.Set(b*5+4, y, x, -20) // sigmoid(-20) ≈ 0
			}
		}
	}
	return out
}

func TestDecodeEmptyGrid(t *testing.T) {
	if dets := DecodeGrid(emptyGrid(4, 4), 400, 400, 0.3); len(dets) != 0 {
		t.Errorf("empty grid decoded %d detections", len(dets))
	}
}

func TestDecodeSingleBox(t *testing.T) {
	out := emptyGrid(4, 4)
	// Activate box 0 in cell (1,2) [gy=1, gx=2]: center offset 0.5
	// within the cell, sqrt-extent 0.5 → extent 0.25 of the frame.
	out.Set(0, 1, 2, 0)  // tx: sigmoid(0)=0.5
	out.Set(1, 1, 2, 0)  // ty
	out.Set(2, 1, 2, 0)  // tw
	out.Set(3, 1, 2, 0)  // th
	out.Set(4, 1, 2, 20) // tc: sigmoid(20) ≈ 1
	// Class logits: make class 1 (pedestrian) dominate.
	out.Set(dnn.DetBoxesPerCell*5+1, 1, 2, 10)

	dets := DecodeGrid(out, 400, 400, 0.3)
	if len(dets) != 1 {
		t.Fatalf("decoded %d detections, want 1", len(dets))
	}
	d := dets[0]
	// Cell (gx=2, gy=1) of a 4x4 grid over 400px: cell size 100, center
	// at (250, 150); extent 0.25*400 = 100.
	cx, cy := d.Box.Center()
	if math.Abs(cx-250) > 1e-9 || math.Abs(cy-150) > 1e-9 {
		t.Errorf("center = (%v,%v), want (250,150)", cx, cy)
	}
	if math.Abs(d.Box.W()-100) > 1e-9 || math.Abs(d.Box.H()-100) > 1e-9 {
		t.Errorf("size = %vx%v, want 100x100", d.Box.W(), d.Box.H())
	}
	if d.Class != scene.Pedestrian {
		t.Errorf("class = %v, want pedestrian", d.Class)
	}
	if d.Confidence < 0.9 {
		t.Errorf("confidence = %v, want ~1", d.Confidence)
	}
}

func TestDecodeConfidenceThreshold(t *testing.T) {
	out := emptyGrid(2, 2)
	out.Set(4, 0, 0, 0) // tc: sigmoid(0)=0.5; class prob ~0.25 → score ~0.125
	if dets := DecodeGrid(out, 100, 100, 0.2); len(dets) != 0 {
		t.Errorf("sub-threshold box survived: %d", len(dets))
	}
	if dets := DecodeGrid(out, 100, 100, 0.1); len(dets) != 1 {
		t.Errorf("above-threshold box dropped: %d", len(dets))
	}
}

func TestDecodeSecondBoxSlot(t *testing.T) {
	out := emptyGrid(2, 2)
	base := 5 // box slot 1
	out.Set(base+4, 0, 1, 20)
	out.Set(dnn.DetBoxesPerCell*5+0, 0, 1, 10) // vehicle
	dets := DecodeGrid(out, 200, 200, 0.3)
	if len(dets) != 1 {
		t.Fatalf("decoded %d, want 1 from box slot 1", len(dets))
	}
	if dets[0].Class != scene.Vehicle {
		t.Errorf("class = %v, want vehicle", dets[0].Class)
	}
	cx, _ := dets[0].Box.Center()
	if cx < 100 {
		t.Errorf("box in wrong cell: center x=%v", cx)
	}
}

func TestDecodeClipsToFrame(t *testing.T) {
	out := emptyGrid(2, 2)
	// Huge box in the corner cell: must clip to frame bounds.
	out.Set(2, 0, 0, 20) // tw: sigmoid≈1 → full-frame width
	out.Set(3, 0, 0, 20)
	out.Set(4, 0, 0, 20)
	dets := DecodeGrid(out, 100, 100, 0.1)
	if len(dets) != 1 {
		t.Fatalf("decoded %d", len(dets))
	}
	b := dets[0].Box
	if b.X0 < 0 || b.Y0 < 0 || b.X1 > 100 || b.Y1 > 100 {
		t.Errorf("box %v not clipped to frame", b)
	}
}

func TestDecodeRejectsShallowTensor(t *testing.T) {
	out := tensor.New(3, 4, 4) // too few channels
	if dets := DecodeGrid(out, 100, 100, 0.1); dets != nil {
		t.Error("shallow tensor should decode to nil")
	}
}

func TestDetectDNNRuns(t *testing.T) {
	d, _ := New(DefaultConfig())
	f := img.NewGray(160, 120)
	f.Fill(100)
	// Untrained weights: output content is unspecified, but the path must
	// run, respect NMS, and produce in-frame boxes.
	dets := d.DetectDNN(f)
	for _, det := range dets {
		if det.Box.X0 < 0 || det.Box.X1 > 160 || det.Box.Y0 < 0 || det.Box.Y1 > 120 {
			t.Fatalf("DNN detection %v outside frame", det.Box)
		}
	}
	// With the DNN disabled the path degrades to nil.
	cfg := DefaultConfig()
	cfg.RunDNN = false
	d2, _ := New(cfg)
	if d2.DetectDNN(f) != nil {
		t.Error("DetectDNN without a network should return nil")
	}
}
