package detect

// StageName identifies the detector in the pipeline's declarative stage
// graph and in telemetry spans (implements telemetry.Stage).
func (d *Detector) StageName() string { return "DET" }
