// Package detect implements the object-detection engine (DET) of the
// pipeline — the paper's YOLO stage.
//
// The engine has two coupled paths:
//
//   - Computational path: a YOLO-shaped convolutional network is executed
//     natively through internal/dnn (a tiny variant in native mode), and the
//     paper-scale YOLOv2 cost profile drives the platform latency models.
//     Per-call instrumentation splits time into DNN vs. pre/post-processing,
//     reproducing the paper's Fig 7 breakdown (DNN ≈ 99.4 % of DET).
//
//   - Functional path: because trained YOLO weights are unavailable (and
//     untrainable here), detection boxes come from a deterministic reference
//     proposal generator that finds the high-contrast object outlines the
//     synthetic scenes render, then runs through the same confidence
//     filtering and non-maximum suppression the YOLO decode uses. DESIGN.md
//     documents this substitution.
package detect

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"adsim/internal/dnn"
	"adsim/internal/img"
	"adsim/internal/scene"
	"adsim/internal/tensor"
)

// Detection is one detected object.
type Detection struct {
	Box        img.Rect // frame pixel coordinates
	Class      scene.Class
	Confidence float64
}

// Timing reports where one Detect call spent its time, mirroring the
// paper's DNN-vs-others cycle breakdown.
type Timing struct {
	DNN   time.Duration
	Other time.Duration
}

// Total returns the end-to-end duration of the call.
func (t Timing) Total() time.Duration { return t.DNN + t.Other }

// Config parameterizes the detector.
type Config struct {
	// InputSize is the square DNN input resolution (must be a multiple of
	// 16 for the tiny network's four pooling stages).
	InputSize int
	// ConfThreshold discards detections below this confidence.
	ConfThreshold float64
	// NMSThreshold is the IoU above which overlapping boxes are suppressed.
	NMSThreshold float64
	// MinBoxPixels discards proposals smaller than this many pixels of
	// area in frame coordinates.
	MinBoxPixels float64
	// RunDNN controls whether the native network is executed. Experiments
	// that only need functional boxes (e.g. planner tests) can disable it.
	RunDNN bool
	// Quantized runs the network through the int8 inference path instead
	// of float32. Detection results are unaffected (boxes come from the
	// functional path); only the computational profile changes. See the
	// tolerance contract in internal/tensor/int8.go.
	Quantized bool
	// Executor runs the network's forward passes. nil uses dnn.Default().
	// A fleet shares one batching executor across many detectors so
	// concurrent same-shape calls gather into one batched GEMM.
	Executor *dnn.Executor
	// Nets, when non-nil, is a shared network cache: detectors drawing from
	// one cache hold the SAME network per input size instead of private
	// identical copies. The executor's gather seam batches calls on the
	// same network pointer, so sharing is what makes cross-stream DET
	// batching possible at all; it also collapses per-vehicle weight memory
	// to one copy per size. nil keeps networks private.
	Nets *dnn.NetCache
}

// DefaultConfig returns the standard detector configuration.
func DefaultConfig() Config {
	return Config{
		InputSize:     64,
		ConfThreshold: 0.3,
		NMSThreshold:  0.45,
		MinBoxPixels:  30,
		RunDNN:        true,
	}
}

// Detector is the DET engine. Per-call mutable state lives in pooled
// scratch arenas (one per in-flight call), so Detect calls are safe for
// concurrent use; the pipeline still owns one detector per camera stream,
// as the paper's system replicates the computing engine per camera.
type Detector struct {
	cfg     Config
	net     *dnn.Network
	exec    *dnn.Executor
	scratch sync.Pool // of *detScratch

	// nets caches networks for non-default input sizes — the tail
	// scheduler's resolution-ladder rungs. Built lazily; a rung is visited
	// many times once the controller settles, so the cache keeps rung
	// changes allocation-cheap.
	mu   sync.Mutex
	nets map[int]*dnn.Network
}

// detScratch is the per-call buffer set for the DNN sub-path: the resized
// network input image, the normalized input tensor and the layer arena.
// Pooling them makes the steady-state Detect call allocation-free.
type detScratch struct {
	s     dnn.Scratch
	small img.Gray
	input *tensor.T
}

// New constructs a detector.
func New(cfg Config) (*Detector, error) {
	if cfg.InputSize <= 0 || cfg.InputSize%16 != 0 {
		return nil, fmt.Errorf("detect: InputSize %d must be a positive multiple of 16", cfg.InputSize)
	}
	if cfg.ConfThreshold < 0 || cfg.ConfThreshold > 1 {
		return nil, fmt.Errorf("detect: ConfThreshold %v out of [0,1]", cfg.ConfThreshold)
	}
	if cfg.NMSThreshold <= 0 || cfg.NMSThreshold > 1 {
		return nil, fmt.Errorf("detect: NMSThreshold %v out of (0,1]", cfg.NMSThreshold)
	}
	d := &Detector{cfg: cfg, exec: cfg.Executor}
	if d.exec == nil {
		d.exec = dnn.Default()
	}
	if cfg.RunDNN {
		d.net = cfg.Nets.Get("tiny-yolo", cfg.InputSize, dnn.TinyYOLO)
	}
	return d, nil
}

// Warm pre-builds the per-size networks for the given input sizes so a
// resolution-ladder transition mid-run never pays first-use network
// construction inside a frame's deadline. Sizes the detector already holds
// (including the configured InputSize) are skipped; invalid sizes are
// ignored — the ladder was validated where it was committed. A no-op when
// the DNN sub-path is disabled.
func (d *Detector) Warm(sizes ...int) {
	if !d.cfg.RunDNN {
		return
	}
	for _, size := range sizes {
		if size <= 0 || size%16 != 0 {
			continue
		}
		d.netFor(size)
	}
}

// PaperWorkload returns the paper-scale DET network as a plain feed-forward
// stack (used by layer-wise analyses like the roofline experiment).
func PaperWorkload() *dnn.Network { return dnn.YOLOv2(416) }

// PaperWorkloadGraph returns the complete paper-scale DET network — YOLOv2
// with batch normalization and the passthrough connection — whose cost
// profile the platform models consume.
func PaperWorkloadGraph() *dnn.Graph { return dnn.YOLOv2Graph(416) }

// Detect runs the DET engine on one frame and returns the surviving
// detections, highest confidence first. Use DetectTimed when the call's
// time breakdown is needed.
func (d *Detector) Detect(frame *img.Gray) []Detection {
	dets, _ := d.DetectTimed(frame)
	return dets
}

// DetectTimed is Detect with the call's DNN-vs-other time breakdown
// returned alongside the result. Returning the timing (instead of the old
// LastTiming accessor) means a pipelined frame N+1 can never overwrite the
// breakdown frame N is about to read.
func (d *Detector) DetectTimed(frame *img.Gray) ([]Detection, Timing) {
	dets, tm, _ := d.DetectBudgeted(frame, BudgetOpts{})
	return dets, tm
}

// BudgetOpts steers one Detect call's latency–accuracy trade, the per-call
// face of the tail scheduler's two knobs (DESIGN.md §12). The zero value
// reproduces DetectTimed exactly.
type BudgetOpts struct {
	// InputSize overrides Config.InputSize for this call — a resolution-
	// ladder rung. 0 (or an invalid size, anything not a positive multiple
	// of 16) keeps the configured size.
	InputSize int
	// Deadline, when nonzero, arms the anytime exit for wall-clock budget
	// enforcement: the DNN forward stops at the first layer boundary past
	// the deadline and the detection set is coarsened (see AnytimeInfo).
	Deadline time.Time
	// VirtualFrac, when in (0,1), arms the deterministic anytime exit the
	// virtual enforcement clock uses: the forward runs ceil(frac*layers)
	// layers, with no timers involved, so the result is a pure function of
	// the inputs. Ignored when Deadline is set.
	VirtualFrac float64
}

// AnytimeInfo reports how a budgeted Detect call executed.
type AnytimeInfo struct {
	// EarlyExit is true when the DNN forward stopped at a layer boundary
	// before the last layer (or, with RunDNN off under VirtualFrac, when
	// the virtual clock modeled such a stop).
	EarlyExit bool
	// LayersRun / LayersTotal locate the exit boundary (zero when RunDNN
	// is off).
	LayersRun, LayersTotal int
	// Quality is the modeled relative detection quality of the committed
	// set: 1 for a full run, AnytimeQualityFloor + (1-floor)·progress for
	// an early exit. The coarsening keeps the top ceil(Quality·n) of the n
	// candidate detections by confidence.
	Quality float64
}

// AnytimeQualityFloor is the modeled relative quality of the earliest
// anytime exit — the first-exit head of an anytime network retains most of
// the prominent detections even when almost no layers ran (the deep layers
// mostly refine small, low-confidence objects). Exits between the first
// and last boundary interpolate linearly up to 1.
const AnytimeQualityFloor = 0.6

// DetectBudgeted runs the DET engine with a per-call input resolution and
// an optional anytime exit. The functional detection path (proposal decode
// on the full frame) is independent of the DNN input size, so a resolution
// change alone never changes the detection set — only the compute profile;
// an anytime exit additionally coarsens the committed set (highest
// confidences kept) as the modeled cost of stopping the network early.
func (d *Detector) DetectBudgeted(frame *img.Gray, opt BudgetOpts) ([]Detection, Timing, AnytimeInfo) {
	info := AnytimeInfo{Quality: 1}
	size := d.cfg.InputSize
	if opt.InputSize > 0 && opt.InputSize%16 == 0 {
		size = opt.InputSize
	}
	startOther := time.Now()

	// Pre-processing: resize to network input and normalize, reusing a
	// pooled scratch so the steady-state call allocates nothing. A rung
	// change reshapes the pooled input tensor once, then that size is warm.
	var sc *detScratch
	if d.cfg.RunDNN {
		sc, _ = d.scratch.Get().(*detScratch)
		if sc == nil || sc.input.H != size {
			sc = &detScratch{input: tensor.New(1, size, size)}
		}
		sc.s.Quantized = d.cfg.Quantized
		frame.ResizeInto(&sc.small, size, size)
		for i, p := range sc.small.Pix {
			sc.input.Data[i] = float32(p) / 255
		}
	}
	preDur := time.Since(startOther)

	// DNN forward pass (computational fidelity; see package comment).
	var dnnDur time.Duration
	progress := 1.0
	if d.cfg.RunDNN {
		net := d.netFor(size)
		info.LayersTotal = len(net.Layers)
		info.LayersRun = info.LayersTotal
		startDNN := time.Now()
		switch {
		case !opt.Deadline.IsZero():
			_, ran := d.exec.ForwardAnytime(net, sc.input, &sc.s, func(int) bool {
				return time.Now().Before(opt.Deadline)
			})
			info.LayersRun = ran
		case opt.VirtualFrac > 0 && opt.VirtualFrac < 1:
			target := int(math.Ceil(opt.VirtualFrac * float64(info.LayersTotal)))
			_, ran := d.exec.ForwardAnytime(net, sc.input, &sc.s, func(next int) bool {
				return next < target
			})
			info.LayersRun = ran
		default:
			_ = d.exec.Forward(net, sc.input, &sc.s)
		}
		dnnDur = time.Since(startDNN)
		d.scratch.Put(sc)
		if info.LayersRun < info.LayersTotal {
			info.EarlyExit = true
			progress = float64(info.LayersRun) / float64(info.LayersTotal)
		}
	} else if opt.VirtualFrac > 0 && opt.VirtualFrac < 1 {
		// No network to exit from, but the virtual clock still models the
		// anytime cut deterministically from the budget fraction alone.
		info.EarlyExit = true
		progress = opt.VirtualFrac
	}

	// Post-processing: proposal decode + confidence filter + NMS.
	startPost := time.Now()
	props := proposeOutlineBoxes(frame, d.cfg.MinBoxPixels)
	dets := make([]Detection, 0, len(props))
	for _, p := range props {
		if p.Confidence >= d.cfg.ConfThreshold {
			dets = append(dets, p)
		}
	}
	dets = NMS(dets, d.cfg.NMSThreshold)
	if info.EarlyExit {
		info.Quality = AnytimeQualityFloor + (1-AnytimeQualityFloor)*progress
		dets = coarsenAnytime(dets, info.Quality)
	}
	postDur := time.Since(startPost)

	return dets, Timing{DNN: dnnDur, Other: preDur + postDur}, info
}

// netFor returns the network for an input size, lazily building and caching
// ladder rungs other than the configured default.
func (d *Detector) netFor(size int) *dnn.Network {
	if size == d.cfg.InputSize {
		return d.net
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if n, ok := d.nets[size]; ok {
		return n
	}
	if d.nets == nil {
		d.nets = make(map[int]*dnn.Network)
	}
	n := d.cfg.Nets.Get("tiny-yolo", size, dnn.TinyYOLO)
	d.nets[size] = n
	return n
}

// coarsenAnytime keeps the top ceil(quality·n) detections by confidence —
// NMS output is already confidence-descending, so the cut is a prefix. At
// least one detection survives whenever any candidate exists: the anytime
// contract is a coarser result, never an empty one.
func coarsenAnytime(dets []Detection, quality float64) []Detection {
	if len(dets) == 0 {
		return dets
	}
	k := int(math.Ceil(quality * float64(len(dets))))
	if k < 1 {
		k = 1
	}
	if k > len(dets) {
		k = len(dets)
	}
	return dets[:k]
}

// NMS performs greedy non-maximum suppression: detections are processed in
// decreasing confidence order and any detection overlapping an already kept
// one with IoU above thresh is discarded. The input slice is not modified.
func NMS(dets []Detection, thresh float64) []Detection {
	sorted := make([]Detection, len(dets))
	copy(sorted, dets)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Confidence > sorted[j].Confidence
	})
	kept := sorted[:0]
	for _, cand := range sorted {
		suppressed := false
		for _, k := range kept {
			if cand.Box.IoU(k.Box) > thresh {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, cand)
		}
	}
	out := make([]Detection, len(kept))
	copy(out, kept)
	return out
}

// ClassifyBox assigns one of the four paper classes from box geometry: the
// reference classifier used when no trained class head exists. Vehicles are
// wider than tall, traffic signs are square, pedestrians and cyclists are
// tall and narrow (cyclists slightly wider).
func ClassifyBox(b img.Rect) scene.Class {
	h := b.H()
	if h <= 0 {
		return scene.Vehicle
	}
	aspect := b.W() / h
	switch {
	case aspect >= 1.08:
		return scene.Vehicle
	case aspect >= 0.7:
		return scene.TrafficSign
	case aspect >= 0.32:
		return scene.Cyclist
	default:
		return scene.Pedestrian
	}
}
