package detect

import (
	"testing"

	"adsim/internal/img"
	"adsim/internal/testutil"
)

// The DNN forward is executed for its latency profile; detections come from
// the classical proposal path. Quantized execution must therefore change
// timing only — results stay identical to the float path.
func TestQuantizedDetectionsIdenticalToFloat(t *testing.T) {
	f := frameWithBox(160, 120, img.RectWH(40, 30, 40, 33))

	dFloat, _ := New(DefaultConfig())
	qcfg := DefaultConfig()
	qcfg.Quantized = true
	dInt8, _ := New(qcfg)

	for i := 0; i < 3; i++ {
		want, _ := dFloat.DetectTimed(f)
		got, _ := dInt8.DetectTimed(f)
		if len(got) != len(want) {
			t.Fatalf("pass %d: %d detections quantized vs %d float", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("pass %d: det[%d] = %+v quantized vs %+v float", i, j, got[j], want[j])
			}
		}
	}
}

// Alloc gate (run by `make alloc-gate`): the pooled scratch keeps the warm
// DNN path's per-frame allocation overhead near the no-DNN floor. The
// proposal/NMS path allocates its result slices either way, so gate the
// delta rather than the absolute count.
func TestAllocDetectSteadyState(t *testing.T) {
	f := frameWithBox(160, 120, img.RectWH(40, 30, 40, 33))

	base := DefaultConfig()
	base.RunDNN = false
	dBase, _ := New(base)
	dDNN, _ := New(DefaultConfig())

	dBase.Detect(f)
	dDNN.Detect(f)
	noDNN := testing.AllocsPerRun(10, func() { dBase.Detect(f) })
	withDNN := testing.AllocsPerRun(10, func() { dDNN.Detect(f) })

	// Budget: sync.Pool round-trip plus timing bookkeeping — not the dozens
	// of per-layer tensor allocations the scratch arena replaced.
	if delta := withDNN - noDNN; delta > 4 {
		if testutil.RaceEnabled {
			// The detector's own allocations make AllocsPerRun noisy;
			// the measured path still ran above for race coverage, and
			// `make alloc-gate` enforces the budget without -race.
			t.Skipf("AllocsPerRun unreliable under -race: delta %.1f", delta)
		}
		t.Errorf("DNN adds %.1f allocs/frame over the no-DNN floor (%.1f vs %.1f), want <= 4",
			delta, withDNN, noDNN)
	}
}
