package detect

import (
	"adsim/internal/img"
)

// proposeOutlineBoxes is the reference proposal generator: it extracts
// connected components of saturated outline pixels (the synthetic renderer
// strokes every object at intensity 255, far above any background texture)
// and emits one candidate detection per component.
//
// Confidence is the fraction of the component's bounding-box perimeter that
// is covered by outline pixels: a clean unoccluded object scores near 1,
// partially occluded or clipped objects score lower — giving the confidence
// threshold and NMS real work to do.
func proposeOutlineBoxes(frame *img.Gray, minArea float64) []Detection {
	const outlineMin = 250
	w, h := frame.W, frame.H
	visited := make([]bool, w*h)
	var out []Detection

	// BFS flood fill over 8-connected bright pixels.
	queue := make([]int, 0, 256)
	for start := 0; start < w*h; start++ {
		if visited[start] || frame.Pix[start] < outlineMin {
			continue
		}
		minX, minY := w, h
		maxX, maxY := 0, 0
		count := 0
		queue = queue[:0]
		queue = append(queue, start)
		visited[start] = true
		for len(queue) > 0 {
			idx := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			x, y := idx%w, idx/w
			count++
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := x+dx, y+dy
					if nx < 0 || ny < 0 || nx >= w || ny >= h {
						continue
					}
					nidx := ny*w + nx
					if !visited[nidx] && frame.Pix[nidx] >= outlineMin {
						visited[nidx] = true
						queue = append(queue, nidx)
					}
				}
			}
		}

		box := img.Rect{X0: float64(minX), Y0: float64(minY),
			X1: float64(maxX + 1), Y1: float64(maxY + 1)}
		if box.Area() < minArea {
			continue
		}
		perimeter := 2 * (box.W() + box.H())
		conf := float64(count) / perimeter
		if conf > 1 {
			conf = 1
		}
		out = append(out, Detection{
			Box:        box,
			Class:      ClassifyBox(box),
			Confidence: conf,
		})
	}
	return out
}
