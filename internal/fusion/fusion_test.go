package fusion

import (
	"math"
	"testing"
	"testing/quick"

	"adsim/internal/img"
	"adsim/internal/scene"
)

func testEngine(t *testing.T) (*Engine, scene.Camera) {
	t.Helper()
	cam := scene.StandardCamera(640, 360)
	e, err := New(cam, 10)
	if err != nil {
		t.Fatal(err)
	}
	return e, cam
}

func TestNewValidation(t *testing.T) {
	cam := scene.StandardCamera(640, 360)
	if _, err := New(scene.Camera{}, 10); err == nil {
		t.Error("zero camera accepted")
	}
	if _, err := New(cam, 0); err == nil {
		t.Error("zero fps accepted")
	}
}

func TestClassHeight(t *testing.T) {
	if ClassHeight(scene.Pedestrian) != 1.75 {
		t.Error("pedestrian height prior wrong")
	}
	if ClassHeight(scene.Class(99)) != 1.5 {
		t.Error("unknown class should default to vehicle height")
	}
}

// projectTruth renders the box a vehicle of height hm at (relX, depth)
// would produce under cam, mirroring the scene generator's projection.
func projectTruth(cam scene.Camera, relX, depth, wm, hm float64) img.Rect {
	u0, v0, _ := cam.Project(relX-wm/2, hm, depth)
	u1, v1, _ := cam.Project(relX+wm/2, 0, depth)
	return img.Rect{X0: u0, Y0: v0, X1: u1, Y1: v1}
}

func TestFuseRecoversDepthAndPosition(t *testing.T) {
	e, cam := testEngine(t)
	relX, depth := 2.0, 20.0
	box := projectTruth(cam, relX, depth, 1.8, 1.5)
	f := e.Fuse(scene.Pose{X: 0, Z: 0}, []TrackedObject{
		{ID: 1, Class: scene.Vehicle, Box: box},
	})
	if len(f.Objects) != 1 {
		t.Fatal("object dropped")
	}
	o := f.Objects[0]
	if math.Abs(o.Depth-depth) > 0.5 {
		t.Errorf("depth = %.2f, want %.2f", o.Depth, depth)
	}
	if math.Abs(o.X-relX) > 0.3 {
		t.Errorf("world X = %.2f, want %.2f", o.X, relX)
	}
	if math.Abs(o.Z-depth) > 0.5 {
		t.Errorf("world Z = %.2f, want %.2f", o.Z, depth)
	}
	if math.Abs(o.Width-1.8) > 0.3 {
		t.Errorf("width = %.2f, want 1.8", o.Width)
	}
}

func TestFuseTranslatesWithEgoPose(t *testing.T) {
	e, cam := testEngine(t)
	box := projectTruth(cam, 0, 15, 1.8, 1.5)
	f := e.Fuse(scene.Pose{X: -1.75, Z: 100}, []TrackedObject{
		{ID: 1, Class: scene.Vehicle, Box: box},
	})
	o := f.Objects[0]
	if math.Abs(o.Z-115) > 0.5 {
		t.Errorf("world Z = %.2f, want 115", o.Z)
	}
	if math.Abs(o.X-(-1.75)) > 0.3 {
		t.Errorf("world X = %.2f, want -1.75", o.X)
	}
}

func TestFuseRotatesWithHeading(t *testing.T) {
	e, cam := testEngine(t)
	box := projectTruth(cam, 0, 10, 1.8, 1.5)
	// Heading 90° right: an object dead ahead in camera frame sits at +X
	// in the world frame.
	f := e.Fuse(scene.Pose{Theta: math.Pi / 2}, []TrackedObject{
		{ID: 1, Class: scene.Vehicle, Box: box},
	})
	o := f.Objects[0]
	if math.Abs(o.X-10) > 0.5 || math.Abs(o.Z) > 0.5 {
		t.Errorf("rotated object at (%.2f, %.2f), want (10, 0)", o.X, o.Z)
	}
}

func TestFuseNearerObjectsLargerBoxes(t *testing.T) {
	e, cam := testEngine(t)
	near := projectTruth(cam, 0, 8, 1.8, 1.5)
	far := projectTruth(cam, 0, 40, 1.8, 1.5)
	f := e.Fuse(scene.Pose{}, []TrackedObject{
		{ID: 1, Class: scene.Vehicle, Box: near},
		{ID: 2, Class: scene.Vehicle, Box: far},
	})
	if f.Objects[0].Depth >= f.Objects[1].Depth {
		t.Error("bigger box should be nearer")
	}
}

func TestFuseVelocity(t *testing.T) {
	e, cam := testEngine(t)
	depth := 20.0
	box := projectTruth(cam, 0, depth, 1.8, 1.5)
	// 5 px/frame rightward at 20 m and 10 fps.
	f := e.Fuse(scene.Pose{}, []TrackedObject{
		{ID: 1, Class: scene.Vehicle, Box: box, VX: 5},
	})
	wantVX := 5 * depth / cam.FocalPx * 10
	if math.Abs(f.Objects[0].VX-wantVX) > 0.2 {
		t.Errorf("VX = %.2f, want %.2f", f.Objects[0].VX, wantVX)
	}
}

func TestFuseSkipsDegenerateBoxes(t *testing.T) {
	e, _ := testEngine(t)
	f := e.Fuse(scene.Pose{}, []TrackedObject{
		{ID: 1, Class: scene.Vehicle, Box: img.Rect{}},
	})
	if len(f.Objects) != 0 {
		t.Error("degenerate box not skipped")
	}
}

func TestFuseEmptyInput(t *testing.T) {
	e, _ := testEngine(t)
	f := e.Fuse(scene.Pose{Z: 5}, nil)
	if len(f.Objects) != 0 || f.EgoPose.Z != 5 {
		t.Error("empty fuse wrong")
	}
}

// Property: fused depth is always positive and decreases as box height
// grows.
func TestFuseDepthMonotoneProperty(t *testing.T) {
	e, _ := testEngine(t)
	f := func(h1Raw, h2Raw uint8) bool {
		h1 := float64(h1Raw%100) + 5
		h2 := float64(h2Raw%100) + 5
		if h1 == h2 {
			return true
		}
		mk := func(h float64) WorldObject {
			fr := e.Fuse(scene.Pose{}, []TrackedObject{
				{ID: 1, Class: scene.Vehicle, Box: img.RectWH(300, 100, h*1.2, h)},
			})
			return fr.Objects[0]
		}
		a, b := mk(h1), mk(h2)
		if a.Depth <= 0 || b.Depth <= 0 {
			return false
		}
		return (h1 > h2) == (a.Depth < b.Depth)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// End-to-end consistency: fuse ground-truth boxes from the scene generator
// and compare against the generator's world state.
func TestFuseAgainstSceneGroundTruth(t *testing.T) {
	cfg := scene.DefaultConfig(scene.Urban)
	cfg.Width, cfg.Height = 640, 360
	gen, _ := scene.New(cfg)
	e, err := New(gen.Camera(), cfg.FPS)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		frame := gen.Step()
		var tracked []TrackedObject
		for _, tr := range frame.Truth {
			if tr.Box.Area() < 150 || tr.Box.X0 <= 1 || tr.Box.X1 >= float64(cfg.Width)-1 ||
				tr.Box.Y1 >= float64(cfg.Height)-1 {
				continue // clipped boxes break the height prior
			}
			tracked = append(tracked, TrackedObject{ID: tr.ID, Class: tr.Class, Box: tr.Box})
		}
		fused := e.Fuse(frame.EgoPose, tracked)
		for j, o := range fused.Objects {
			truthDepth := 0.0
			for _, tr := range frame.Truth {
				if tr.ID == o.ID {
					truthDepth = tr.Depth
					break
				}
			}
			if truthDepth == 0 {
				t.Fatalf("frame %d: fused object %d has no truth", i, j)
			}
			if relErr := math.Abs(o.Depth-truthDepth) / truthDepth; relErr > 0.25 {
				t.Errorf("frame %d: object %d depth %.1f vs truth %.1f (rel %.2f)",
					i, o.ID, o.Depth, truthDepth, relErr)
			}
		}
	}
}
