// Package fusion implements the sensor-fusion engine (FUSION) of the
// pipeline: it retrieves the coordinates of the objects being tracked by the
// tracking engine, combines them with the vehicle location produced by the
// localization engine, and projects everything into one world-frame 3D
// coordinate space for the motion planner — step 2 of the paper's Figure 1.
//
// Depth for monocular boxes is recovered from per-class physical-height
// priors (a vehicle is ~1.5 m tall, a pedestrian ~1.75 m): depth =
// focal × height_m / height_px, the standard monocular range estimate for
// vision-only systems like Mobileye's that the paper's pipeline follows.
package fusion

import (
	"fmt"
	"math"

	"adsim/internal/img"
	"adsim/internal/scene"
)

// classHeights is the physical-height prior per object class, meters.
var classHeights = [scene.NumClasses]float64{
	scene.Vehicle:     1.5,
	scene.Pedestrian:  1.75,
	scene.Cyclist:     1.7,
	scene.TrafficSign: 0.8,
}

// ClassHeight returns the physical-height prior for a class (meters).
func ClassHeight(c scene.Class) float64 {
	if c < 0 || int(c) >= scene.NumClasses {
		return 1.5
	}
	return classHeights[c]
}

// TrackedObject is the fusion engine's view of one tracker output.
type TrackedObject struct {
	ID     int
	Class  scene.Class
	Box    img.Rect
	VX, VY float64 // pixels/frame
}

// WorldObject is one fused object in the world frame: absolute position on
// the ground plane plus estimated ground velocity.
type WorldObject struct {
	ID    int
	Class scene.Class
	// X is lateral position (m, world frame), Z longitudinal (m).
	X, Z float64
	// VX, VZ is the estimated ground velocity (m/s).
	VX, VZ float64
	// Depth is the camera-relative range estimate (m).
	Depth float64
	// Width, Height are estimated physical extents (m).
	Width, Height float64
}

// Frame is the fused world state handed to the motion planner.
type Frame struct {
	EgoPose scene.Pose
	Objects []WorldObject
}

// Engine is the fusion engine. It is stateless apart from configuration and
// safe for concurrent use.
type Engine struct {
	cam scene.Camera
	fps float64
}

// New builds a fusion engine for a camera model and a frame rate (used to
// convert per-frame pixel velocities into per-second ground velocities).
func New(cam scene.Camera, fps float64) (*Engine, error) {
	if cam.FocalPx <= 0 {
		return nil, fmt.Errorf("fusion: non-positive focal length %v", cam.FocalPx)
	}
	if fps <= 0 {
		return nil, fmt.Errorf("fusion: non-positive fps %v", fps)
	}
	return &Engine{cam: cam, fps: fps}, nil
}

// Fuse projects tracked objects into the world frame anchored at the
// localization engine's pose estimate.
func (e *Engine) Fuse(pose scene.Pose, objects []TrackedObject) Frame {
	out := Frame{EgoPose: pose, Objects: make([]WorldObject, 0, len(objects))}
	sinT, cosT := math.Sin(pose.Theta), math.Cos(pose.Theta)
	for _, t := range objects {
		if t.Box.H() <= 0 {
			continue
		}
		hm := ClassHeight(t.Class)
		depth := e.cam.FocalPx * hm / t.Box.H()
		cx, _ := t.Box.Center()
		// Camera-relative lateral offset at that depth.
		relX := (cx - e.cam.Cx) * depth / e.cam.FocalPx
		// Rotate into the world frame and translate by ego pose. Theta=0
		// faces +Z; positive Theta yaws toward +X.
		wx := pose.X + relX*cosT + depth*sinT
		wz := pose.Z - relX*sinT + depth*cosT

		// Ground-velocity estimate from pixel velocity at the object's
		// depth (lateral) and from box-scale change (longitudinal) is
		// approximated laterally only; longitudinal relative velocity is
		// left to the planner's constant-velocity extrapolation.
		vx := t.VX * depth / e.cam.FocalPx * e.fps

		out.Objects = append(out.Objects, WorldObject{
			ID:     t.ID,
			Class:  t.Class,
			X:      wx,
			Z:      wz,
			VX:     vx,
			Depth:  depth,
			Width:  t.Box.W() * depth / e.cam.FocalPx,
			Height: hm,
		})
	}
	return out
}
