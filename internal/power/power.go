// Package power models the paper's power, thermal and storage constraint
// interactions (Sections 2.4.3–2.4.5) and their effect on the vehicle:
//
//   - Storage: a prior map of the entire United States occupies 41 TB, and
//     a typical storage system draws ~8 W per 3 TB.
//   - Thermal: the computing system must live in the climate-controlled
//     cabin, and removing its heat costs extra air-conditioning load at a
//     coefficient of performance of 1.3 — i.e. 77 W of cooling per 100 W of
//     computing, which nearly doubles system power.
//   - Power: extra electrical load shortens an EV's driving range (modeled
//     on a Chevy Bolt) and reduces a gasoline car's MPG by roughly 1 MPG
//     per 400 W.
package power

import "fmt"

const (
	// USMapTB is the paper's prior-map size for the entire United States.
	USMapTB = 41.0
	// StorageWattsPerTB is derived from the paper's figure of ~8 W per
	// 3 TB of desktop HDD storage.
	StorageWattsPerTB = 8.0 / 3.0
	// CoolingCOP is the automotive air conditioner's coefficient of
	// performance: 1.3 units of heat moved per unit of work, so removing
	// Q watts of heat costs Q/1.3 ≈ 0.77·Q watts.
	CoolingCOP = 1.3
	// BoltDrivePowerW is the traction power draw of the reference EV
	// (Chevy Bolt) at highway speed — the denominator of the
	// driving-range-reduction model. 60 kWh / 238 mi at ~65 mph ≈ 15 kW.
	// Calibrated so the paper's headline numbers reproduce: a 1 kW
	// computing engine alone reduces range by ~6%, and the corresponding
	// aggregate system by ~11.5%.
	BoltDrivePowerW = 15000.0
	// WattsPerMPG is the gasoline-vehicle rule of thumb: each additional
	// 400 W of electrical load costs about one MPG.
	WattsPerMPG = 400.0
)

// StoragePower returns the storage subsystem's power draw (W) for a prior
// map of the given size in TB.
func StoragePower(mapTB float64) float64 {
	if mapTB < 0 {
		return 0
	}
	return mapTB * StorageWattsPerTB
}

// CoolingOverhead returns the additional air-conditioning power (W) needed
// to remove heatW of waste heat from the cabin.
func CoolingOverhead(heatW float64) float64 {
	if heatW < 0 {
		return 0
	}
	return heatW / CoolingCOP
}

// SystemBreakdown decomposes the total power of an autonomous driving
// system into the paper's three contributors.
type SystemBreakdown struct {
	ComputeW float64
	StorageW float64
	CoolingW float64
}

// Total returns the aggregate system power (W).
func (b SystemBreakdown) Total() float64 { return b.ComputeW + b.StorageW + b.CoolingW }

func (b SystemBreakdown) String() string {
	return fmt.Sprintf("compute %.0fW + storage %.0fW + cooling %.0fW = %.0fW",
		b.ComputeW, b.StorageW, b.CoolingW, b.Total())
}

// System computes the end-to-end power breakdown for a computing engine of
// computeW watts and a prior map of mapTB terabytes: both the computing and
// storage systems dissipate their power as cabin heat, which the air
// conditioner must remove.
func System(computeW, mapTB float64) SystemBreakdown {
	storage := StoragePower(mapTB)
	return SystemBreakdown{
		ComputeW: computeW,
		StorageW: storage,
		CoolingW: CoolingOverhead(computeW + storage),
	}
}

// RangeReduction returns the fractional driving-range reduction of the
// reference EV caused by an additional load of powerW watts: the extra load
// competes with traction power for the same battery energy.
func RangeReduction(powerW float64) float64 {
	if powerW <= 0 {
		return 0
	}
	return powerW / (powerW + BoltDrivePowerW)
}

// MPGReduction returns the MPG lost by a gasoline vehicle carrying an
// additional electrical load of powerW watts (the 400 W-per-MPG rule).
func MPGReduction(powerW float64) float64 {
	if powerW <= 0 {
		return 0
	}
	return powerW / WattsPerMPG
}
