package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStoragePower(t *testing.T) {
	// 41 TB US map at 8W/3TB ≈ 109.3 W (the paper's ~110 W).
	got := StoragePower(USMapTB)
	if math.Abs(got-109.33) > 0.1 {
		t.Errorf("US map storage power = %.2f, want ~109.3", got)
	}
	if StoragePower(-5) != 0 {
		t.Error("negative TB should give 0")
	}
}

func TestCoolingOverhead(t *testing.T) {
	// Paper: "a 100 W system imposes 77 W cooling overhead".
	got := CoolingOverhead(100)
	if math.Abs(got-76.9) > 0.1 {
		t.Errorf("cooling for 100W = %.2f, want ~77", got)
	}
	if CoolingOverhead(-1) != 0 {
		t.Error("negative heat should give 0")
	}
}

func TestSystemNearlyDoubles(t *testing.T) {
	// The paper's central thermal observation: cooling + storage nearly
	// double the computing engine's power draw.
	b := System(1000, USMapTB)
	if b.Total() < 1.8*b.ComputeW || b.Total() > 2.2*b.ComputeW {
		t.Errorf("aggregate %.0fW should be ~2x compute 1000W", b.Total())
	}
	if b.String() == "" {
		t.Error("empty breakdown string")
	}
}

func TestPaperHeadlineRangeNumbers(t *testing.T) {
	// "a computing engine equipped with 1 CPU and 3 GPUs ... alone only
	// reduces the driving range by 6%, while the entire system experiences
	// almost doubled reduction (i.e., 11.5%)".
	computeOnly := RangeReduction(1000)
	if math.Abs(computeOnly-0.0625) > 0.005 {
		t.Errorf("1kW compute range reduction = %.3f, want ~0.06", computeOnly)
	}
	agg := System(1000, USMapTB)
	full := RangeReduction(agg.Total())
	if math.Abs(full-0.115) > 0.01 {
		t.Errorf("aggregate range reduction = %.3f, want ~0.115", full)
	}
}

func TestRangeReductionEdgeCases(t *testing.T) {
	if RangeReduction(0) != 0 || RangeReduction(-100) != 0 {
		t.Error("non-positive load should give 0")
	}
	if r := RangeReduction(1e12); r <= 0.99 || r > 1 {
		t.Errorf("huge load reduction = %v, want →1", r)
	}
}

func TestMPGReduction(t *testing.T) {
	// Paper: 400 W costs one MPG; for a 31-MPG 2017 Audi A4 that's 3.23%.
	if MPGReduction(400) != 1 {
		t.Errorf("400W = %v MPG, want 1", MPGReduction(400))
	}
	pct := MPGReduction(400) / 31
	if math.Abs(pct-0.0323) > 0.001 {
		t.Errorf("Audi A4 reduction = %.4f, want ~0.0323", pct)
	}
	if MPGReduction(-1) != 0 {
		t.Error("negative load should give 0")
	}
}

// Property: range reduction is monotone in load and bounded in [0,1).
func TestRangeReductionMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		pa, pb := float64(a%100000), float64(b%100000)
		ra, rb := RangeReduction(pa), RangeReduction(pb)
		if ra < 0 || ra >= 1 || rb < 0 || rb >= 1 {
			return false
		}
		if pa < pb && ra > rb {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the system aggregate is always compute + storage + cooling with
// cooling proportional to the heat.
func TestSystemConsistencyProperty(t *testing.T) {
	f := func(cw, tb uint16) bool {
		b := System(float64(cw), float64(tb%100))
		wantCooling := (b.ComputeW + b.StorageW) / CoolingCOP
		return math.Abs(b.CoolingW-wantCooling) < 1e-9 &&
			math.Abs(b.Total()-(b.ComputeW+b.StorageW+b.CoolingW)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
