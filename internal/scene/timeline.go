package scene

import (
	"fmt"
	"math"
)

// DriverProfile selects how the moving actors around the ego behave. The
// profiles mirror the aggressivity index of driver-behaviour simulators:
// calm traffic holds lane and speed; aggressive traffic injects cut-in and
// hard-brake maneuvers — the events that stress the tracker (sudden box
// displacement) and the planner (closing-gap obstacles).
type DriverProfile int

const (
	// DriverCalm traffic holds lane and speed (the pre-timeline behavior).
	DriverCalm DriverProfile = iota
	// DriverAggressive traffic starts cut-in and hard-brake maneuvers on a
	// seeded event process.
	DriverAggressive
)

func (d DriverProfile) String() string {
	if d == DriverAggressive {
		return "aggressive"
	}
	return "calm"
}

// TimeWindow is a half-open interval [Start, End) in scenario seconds.
type TimeWindow struct {
	Start, End float64
}

// Contains reports whether t lies inside the window.
func (w TimeWindow) Contains(t float64) bool { return t >= w.Start && t < w.End }

// PhaseSet is the bitmask of which optional clauses a Phase carries. Unset
// parameters inherit their current value across phase boundaries, so a
// phase only states what changes.
type PhaseSet uint16

const (
	SetDensity PhaseSet = 1 << iota
	SetPedDensity
	SetDriver
	SetIllumination
	SetEgoSpeed
	SetLaneWidth
	SetNumLanes
)

// Has reports whether clause c is present.
func (s PhaseSet) Has(c PhaseSet) bool { return s&c != 0 }

// Phase is one segment of a scenario timeline: a time range plus the world
// parameters that change when it begins. Parameters persist across phase
// boundaries until a later phase overrides them; LoopLength and the
// blackout/occlusion windows are scoped to their own phase only.
type Phase struct {
	// Start and End bound the phase in scenario seconds; End <= 0 leaves
	// the phase open-ended (it runs until the next phase or forever).
	Start, End float64

	// Set records which of the optional world clauses below are present.
	Set PhaseSet

	// Density is moving-vehicle density in vehicles per km of road ahead;
	// the generator's arrival process spawns and despawns to hold it.
	// Setting 0 clears moving vehicles.
	Density float64
	// PedDensity is the pedestrian/cyclist density in actors per km.
	PedDensity float64
	// Driver selects the traffic behavior profile.
	Driver DriverProfile
	// Illumination scales rendered pixels exactly like Config.Illumination.
	Illumination float64
	// EgoSpeed changes the ego vehicle's speed (m/s).
	EgoSpeed float64
	// LaneWidth and NumLanes change the road geometry.
	LaneWidth float64
	NumLanes  int

	// LoopLength, when positive, renders this phase as a periodic loop of
	// that many meters anchored at the ego position on phase entry — the
	// reloc/loop-closure-forcing route segment. Loop phases are static:
	// moving actors are despawned at entry, and programs that would spawn
	// actors inside a loop phase are rejected by validation.
	LoopLength float64

	// Blackouts are sensor-blackout windows (the camera delivers a black
	// frame); Occlusions draw a large foreground occluder over the scene.
	// Both must lie inside the phase's own time range.
	Blackouts  []TimeWindow
	Occlusions []TimeWindow
}

// Timeline is an ordered list of phases driving a Generator: the compiled
// form of a scenario program. A nil Timeline (or one with no phases) leaves
// the generator in its static single-phase behavior.
type Timeline struct {
	Phases []Phase
}

// Validate checks phase ordering and parameter ranges. It returns the
// first violation; the scenario package reports richer, source-anchored
// errors before a timeline is ever built, so this is the scene layer's own
// defensive check.
func (tl *Timeline) Validate() error {
	if tl == nil {
		return nil
	}
	prevEnd := math.Inf(-1)
	density, peds := -1.0, -1.0 // unknown until a phase sets them
	for i := range tl.Phases {
		ph := &tl.Phases[i]
		if !(ph.Start >= 0) { // negated to also reject NaN
			return fmt.Errorf("scene: phase %d starts at %gs (negative)", i, ph.Start)
		}
		if math.IsNaN(ph.End) {
			return fmt.Errorf("scene: phase %d has NaN end time", i)
		}
		if ph.End > 0 && ph.End <= ph.Start {
			return fmt.Errorf("scene: phase %d range %g-%gs is empty", i, ph.Start, ph.End)
		}
		if ph.Start < prevEnd {
			return fmt.Errorf("scene: phase %d at %gs overlaps the previous phase", i, ph.Start)
		}
		if ph.End <= 0 && i != len(tl.Phases)-1 {
			return fmt.Errorf("scene: open-ended phase %d is not last", i)
		}
		prevEnd = ph.End
		// Range checks are written in negated form so NaN (which fails
		// every comparison) is rejected rather than slipping through.
		if ph.Set.Has(SetDensity) {
			if !(ph.Density >= 0 && ph.Density <= MaxDensityPerKm) {
				return fmt.Errorf("scene: phase %d density %g outside [0,%g]/km", i, ph.Density, MaxDensityPerKm)
			}
			density = ph.Density
		}
		if ph.Set.Has(SetPedDensity) {
			if !(ph.PedDensity >= 0 && ph.PedDensity <= MaxDensityPerKm) {
				return fmt.Errorf("scene: phase %d peds %g outside [0,%g]/km", i, ph.PedDensity, MaxDensityPerKm)
			}
			peds = ph.PedDensity
		}
		if ph.Set.Has(SetIllumination) && !(ph.Illumination > 0 && ph.Illumination <= 2) {
			return fmt.Errorf("scene: phase %d illumination %g outside (0,2]", i, ph.Illumination)
		}
		if ph.Set.Has(SetEgoSpeed) && !(ph.EgoSpeed >= 0 && ph.EgoSpeed <= MaxEgoSpeed) {
			return fmt.Errorf("scene: phase %d egospeed %g outside [0,%g]", i, ph.EgoSpeed, MaxEgoSpeed)
		}
		if ph.Set.Has(SetLaneWidth) && !(ph.LaneWidth >= MinLaneWidth && ph.LaneWidth <= MaxLaneWidth) {
			return fmt.Errorf("scene: phase %d lanewidth %g outside [%g,%g]", i, ph.LaneWidth, MinLaneWidth, MaxLaneWidth)
		}
		if ph.Set.Has(SetNumLanes) && (ph.NumLanes < 1 || ph.NumLanes > MaxLanes) {
			return fmt.Errorf("scene: phase %d lanes %d outside [1,%d]", i, ph.NumLanes, MaxLanes)
		}
		if ph.LoopLength < 0 {
			return fmt.Errorf("scene: phase %d negative loop length", i)
		}
		if ph.LoopLength > 0 {
			if math.Mod(ph.LoopLength, 6) != 0 {
				return fmt.Errorf("scene: phase %d loop length %gm is not a multiple of 6m (lane-dash period)", i, ph.LoopLength)
			}
			if density > 0 || peds > 0 {
				return fmt.Errorf("scene: phase %d is a loop segment but moving-actor density is %g/km vehicles, %g/km peds — loop worlds are static; set density=0 and peds=0 first", i, math.Max(density, 0), math.Max(peds, 0))
			}
		}
		for _, w := range append(append([]TimeWindow{}, ph.Blackouts...), ph.Occlusions...) {
			if !(w.End > w.Start) {
				return fmt.Errorf("scene: phase %d window %g-%gs is empty", i, w.Start, w.End)
			}
			if !(w.Start >= ph.Start) || (ph.End > 0 && !(w.End <= ph.End)) {
				return fmt.Errorf("scene: phase %d window %g-%gs outside phase range %g-%gs", i, w.Start, w.End, ph.Start, ph.End)
			}
		}
	}
	return nil
}

// Parameter bounds enforced by Timeline.Validate and Config.Validate.
const (
	// MaxDensityPerKm bounds the arrival process (a bumper-to-bumper lane
	// holds ~150 vehicles/km; beyond that the spawner cannot place actors).
	MaxDensityPerKm = 200.0
	// MaxEgoSpeed bounds ego speed in m/s (~250 km/h).
	MaxEgoSpeed = 70.0
	// MinLaneWidth/MaxLaneWidth bound lane geometry in meters.
	MinLaneWidth = 2.5
	MaxLaneWidth = 6.0
	// MaxLanes bounds the carriageway width.
	MaxLanes = 8
)
