package scene

import (
	"math"
	"testing"
)

func TestDefaultConfigs(t *testing.T) {
	for _, kind := range []Kind{Highway, Urban} {
		cfg := DefaultConfig(kind)
		if cfg.Width <= 0 || cfg.Height <= 0 || cfg.FPS <= 0 {
			t.Fatalf("%v: bad defaults %+v", kind, cfg)
		}
	}
	if DefaultConfig(Highway).NumPeds != 0 {
		t.Error("highway scenario should have no pedestrians")
	}
	if DefaultConfig(Urban).NumPeds == 0 {
		t.Error("urban scenario should have pedestrians")
	}
}

func TestKindString(t *testing.T) {
	if Highway.String() != "highway" || Urban.String() != "urban" {
		t.Error("Kind.String wrong")
	}
}

func TestClassString(t *testing.T) {
	if Vehicle.String() != "vehicle" || TrafficSign.String() != "traffic-sign" {
		t.Error("Class.String wrong")
	}
	if Class(99).String() != "class(99)" {
		t.Errorf("unknown class formatted as %q", Class(99).String())
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	_, err := New(Config{Width: 0, Height: 100})
	if err == nil {
		t.Error("zero width should be rejected")
	}
	_, err = New(Config{Width: 100, Height: 100, EgoSpeed: -1})
	if err == nil {
		t.Error("negative speed should be rejected")
	}
}

func TestFPSDefaulted(t *testing.T) {
	g, err := New(Config{Width: 100, Height: 80, EgoSpeed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if g.Config().FPS != 10 {
		t.Errorf("FPS defaulted to %v, want 10", g.Config().FPS)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig(Urban)
	cfg.Width, cfg.Height = 320, 240
	a, _ := New(cfg)
	b, _ := New(cfg)
	for i := 0; i < 5; i++ {
		fa, fb := a.Step(), b.Step()
		if len(fa.Truth) != len(fb.Truth) {
			t.Fatalf("frame %d: truth count differs %d vs %d", i, len(fa.Truth), len(fb.Truth))
		}
		for j := range fa.Image.Pix {
			if fa.Image.Pix[j] != fb.Image.Pix[j] {
				t.Fatalf("frame %d: pixel %d differs", i, j)
			}
		}
	}
}

func TestSeedChangesScenario(t *testing.T) {
	cfg := DefaultConfig(Urban)
	cfg.Width, cfg.Height = 320, 240
	a, _ := New(cfg)
	cfg.Seed = 2
	b, _ := New(cfg)
	fa, fb := a.Step(), b.Step()
	diff := 0
	for j := range fa.Image.Pix {
		if fa.Image.Pix[j] != fb.Image.Pix[j] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical first frames")
	}
}

func TestStepAdvancesEgoAndTime(t *testing.T) {
	cfg := DefaultConfig(Highway)
	cfg.Width, cfg.Height = 320, 240
	g, _ := New(cfg)
	f0 := g.Step()
	f1 := g.Step()
	if f0.Index != 0 || f1.Index != 1 {
		t.Fatalf("frame indices %d,%d", f0.Index, f1.Index)
	}
	wantDz := cfg.EgoSpeed / cfg.FPS
	if math.Abs((f1.EgoPose.Z-f0.EgoPose.Z)-wantDz) > 1e-9 {
		t.Errorf("ego advanced %v, want %v", f1.EgoPose.Z-f0.EgoPose.Z, wantDz)
	}
	if math.Abs(f1.Time-1/cfg.FPS) > 1e-12 {
		t.Errorf("frame time %v, want %v", f1.Time, 1/cfg.FPS)
	}
}

func TestGroundTruthBoxesValid(t *testing.T) {
	cfg := DefaultConfig(Urban)
	cfg.Width, cfg.Height = 640, 360
	g, _ := New(cfg)
	totalTruth := 0
	for i := 0; i < 30; i++ {
		f := g.Step()
		totalTruth += len(f.Truth)
		for _, tr := range f.Truth {
			if tr.Box.Empty() {
				t.Fatalf("frame %d: empty truth box", i)
			}
			if tr.Box.X0 < 0 || tr.Box.Y0 < 0 ||
				tr.Box.X1 > float64(cfg.Width) || tr.Box.Y1 > float64(cfg.Height) {
				t.Fatalf("frame %d: truth box %v outside frame", i, tr.Box)
			}
			if tr.Depth <= 0 {
				t.Fatalf("frame %d: non-positive depth %v", i, tr.Depth)
			}
		}
	}
	if totalTruth == 0 {
		t.Fatal("30 urban frames produced no ground-truth objects")
	}
}

func TestObjectsPersistAcrossFrames(t *testing.T) {
	cfg := DefaultConfig(Highway)
	cfg.Width, cfg.Height = 640, 360
	g, _ := New(cfg)
	f0 := g.Step()
	f1 := g.Step()
	ids0 := map[int]bool{}
	for _, tr := range f0.Truth {
		ids0[tr.ID] = true
	}
	persisted := 0
	for _, tr := range f1.Truth {
		if ids0[tr.ID] {
			persisted++
		}
	}
	if persisted == 0 && len(f0.Truth) > 0 {
		t.Error("no object IDs persisted between consecutive frames")
	}
}

func TestFrameHasTexture(t *testing.T) {
	cfg := DefaultConfig(Urban)
	cfg.Width, cfg.Height = 320, 240
	g, _ := New(cfg)
	f := g.Step()
	counts := map[uint8]int{}
	for _, p := range f.Image.Pix {
		counts[p]++
	}
	if len(counts) < 8 {
		t.Errorf("frame has only %d distinct gray levels; too flat for feature extraction", len(counts))
	}
}

func TestProjectRoundTrip(t *testing.T) {
	cam := StandardCamera(640, 360)
	x, y, z := 2.5, 1.0, 20.0
	u, v, ok := cam.Project(x, y, z)
	if !ok {
		t.Fatal("projection failed")
	}
	bx, by := cam.BackProject(u, v, z)
	if math.Abs(bx-x) > 1e-9 || math.Abs(by-y) > 1e-9 {
		t.Errorf("round trip (%v,%v) != (%v,%v)", bx, by, x, y)
	}
}

func TestProjectBehindCamera(t *testing.T) {
	cam := StandardCamera(640, 360)
	if _, _, ok := cam.Project(0, 0, 0.1); ok {
		t.Error("point at z=0.1 should be rejected (near plane)")
	}
	if _, _, ok := cam.Project(0, 0, -5); ok {
		t.Error("point behind camera should be rejected")
	}
}

func TestProjectionDepthOrdering(t *testing.T) {
	cam := StandardCamera(640, 360)
	// A nearer object of the same physical size must appear larger.
	u0a, _, _ := cam.Project(-1, 0, 10)
	u1a, _, _ := cam.Project(1, 0, 10)
	u0b, _, _ := cam.Project(-1, 0, 40)
	u1b, _, _ := cam.Project(1, 0, 40)
	if (u1a - u0a) <= (u1b - u0b) {
		t.Error("nearer object should span more pixels")
	}
}

func TestRecycledActorsGetFreshIDs(t *testing.T) {
	cfg := DefaultConfig(Urban)
	cfg.Width, cfg.Height = 320, 240
	cfg.EgoSpeed = 30 // fast ego overtakes everything quickly
	g, _ := New(cfg)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		f := g.Step()
		for _, tr := range f.Truth {
			seen[tr.ID] = true
		}
	}
	// With recycling, more distinct IDs must appear than initial actors.
	initial := cfg.NumVehicles + cfg.NumPeds + cfg.NumSigns
	if len(seen) <= initial {
		t.Errorf("only %d distinct IDs over 200 fast frames; recycling not generating new IDs", len(seen))
	}
}

func TestResolutionScaling(t *testing.T) {
	for _, wh := range [][2]int{{640, 360}, {1280, 720}, {1920, 1080}} {
		cfg := DefaultConfig(Highway)
		cfg.Width, cfg.Height = wh[0], wh[1]
		g, err := New(cfg)
		if err != nil {
			t.Fatalf("%v: %v", wh, err)
		}
		f := g.Step()
		if f.Image.W != wh[0] || f.Image.H != wh[1] {
			t.Fatalf("frame size %dx%d, want %dx%d", f.Image.W, f.Image.H, wh[0], wh[1])
		}
	}
}

func TestIlluminationScaling(t *testing.T) {
	cfg := DefaultConfig(Urban)
	cfg.Width, cfg.Height = 160, 120
	bright, _ := New(cfg)
	dimCfg := cfg
	dimCfg.Illumination = 0.5
	dim, _ := New(dimCfg)
	fb, fd := bright.Step(), dim.Step()
	var sb, sd int
	for i := range fb.Image.Pix {
		sb += int(fb.Image.Pix[i])
		sd += int(fd.Image.Pix[i])
	}
	ratio := float64(sd) / float64(sb)
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("0.5x illumination produced brightness ratio %.2f", ratio)
	}
	// Validation bounds.
	bad := cfg
	bad.Illumination = 3
	if _, err := New(bad); err == nil {
		t.Error("illumination 3 accepted")
	}
	neg := cfg
	neg.Illumination = -1
	if _, err := New(neg); err == nil {
		t.Error("negative illumination accepted")
	}
}

// TestFrameGoldens locks the exact pixel content of each scenario's first
// frame: any unintentional change to the deterministic renderer (RNG
// consumption order, rasterization, texture hashing) trips this test.
// Update the constants deliberately when the renderer changes.
func TestFrameGoldens(t *testing.T) {
	hash := func(k Kind) uint64 {
		cfg := DefaultConfig(k)
		cfg.Width, cfg.Height = 320, 160
		g, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f := g.Step()
		var h uint64 = 1469598103934665603
		for _, p := range f.Image.Pix {
			h ^= uint64(p)
			h *= 1099511628211
		}
		return h
	}
	got := map[string]uint64{
		"urban":   hash(Urban),
		"highway": hash(Highway),
	}
	// Golden values recorded from the current renderer.
	t.Logf("urban=%#x highway=%#x", got["urban"], got["highway"])
	if got["urban"] == got["highway"] {
		t.Fatal("scenarios render identically; goldens meaningless")
	}
	want := map[string]uint64{
		"urban":   0x75053d508134dcf9,
		"highway": 0x305b0bd86fca80b8,
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s frame hash %#x, want %#x", k, got[k], w)
		}
	}
}
