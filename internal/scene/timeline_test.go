package scene

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// smallCfg is a fast test sizing of the urban archetype.
func smallCfg() Config {
	cfg := DefaultConfig(Urban)
	cfg.Width, cfg.Height = 160, 80
	cfg.Seed = 5
	return cfg
}

// stressTimeline exercises every timeline mechanism in under six seconds of
// scenario time: an aggressive dense phase, then a dusk phase with blackout
// and occlusion windows, then a slow narrow-road phase.
func stressTimeline() *Timeline {
	return &Timeline{Phases: []Phase{
		{Start: 0, End: 2,
			Set:     SetDensity | SetPedDensity | SetDriver,
			Density: 30, PedDensity: 10, Driver: DriverAggressive},
		{Start: 2, End: 4,
			Set:          SetIllumination | SetEgoSpeed,
			Illumination: 0.5, EgoSpeed: 9,
			Blackouts:  []TimeWindow{{Start: 2.5, End: 2.8}},
			Occlusions: []TimeWindow{{Start: 3.2, End: 3.6}}},
		{Start: 4,
			Set:       SetLaneWidth | SetNumLanes | SetEgoSpeed,
			LaneWidth: 2.8, NumLanes: 2, EgoSpeed: 6},
	}}
}

// requireIdenticalStreams steps both generators n frames and requires a
// bitwise-identical frame stream: pixels, truth annotations (IDs included),
// poses and timestamps.
func requireIdenticalStreams(t *testing.T, a, b *Generator, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		fa, fb := a.Step(), b.Step()
		if fa.Index != fb.Index || fa.Time != fb.Time || fa.EgoPose != fb.EgoPose {
			t.Fatalf("frame %d: header diverged: %+v vs %+v", i, fa, fb)
		}
		if !bytes.Equal(fa.Image.Pix, fb.Image.Pix) {
			t.Fatalf("frame %d: pixels diverged", i)
		}
		if !reflect.DeepEqual(fa.Truth, fb.Truth) {
			t.Fatalf("frame %d: truth diverged:\n%+v\n%+v", i, fa.Truth, fb.Truth)
		}
	}
}

// TestTimelineBitwiseDeterminism: the same Config and Seed produce the
// bitwise-identical frame/truth/ID sequence across two independent
// generators — with no timeline, under a full stress timeline, and under a
// phase-scoped loop segment. This is the replayability contract every
// scenario program inherits.
func TestTimelineBitwiseDeterminism(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"static", func(c *Config) {}},
		{"stress timeline", func(c *Config) { c.Timeline = stressTimeline() }},
		{"loop phase", func(c *Config) {
			c.Timeline = &Timeline{Phases: []Phase{
				{Start: 1, LoopLength: 12},
			}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallCfg()
			tc.mut(&cfg)
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireIdenticalStreams(t, a, b, 60)
		})
	}
}

// TestDegenerateProgramMatchesStatic: a one-phase timeline that overrides
// nothing is the degenerate scenario program every static Config is — its
// frame stream is bitwise-identical to Timeline == nil.
func TestDegenerateProgramMatchesStatic(t *testing.T) {
	static := smallCfg()
	phased := smallCfg()
	phased.Timeline = &Timeline{Phases: []Phase{{Start: 0}}}
	a, err := New(static)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(phased)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalStreams(t, a, b, 40)
}

// TestTruthIDStabilityAcrossDespawn: under the arrival process, a track ID
// that leaves the world never returns, and an ID never changes class — the
// contract the tracker and the truth annotations depend on. Turnover must
// actually happen for the test to mean anything.
func TestTruthIDStabilityAcrossDespawn(t *testing.T) {
	cfg := smallCfg()
	cfg.Timeline = &Timeline{Phases: []Phase{
		{Start: 0, Set: SetDensity | SetPedDensity, Density: 25, PedDensity: 10},
	}}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	classOf := map[int]Class{}
	retired := map[int]bool{}
	live := map[int]bool{}
	for i := 0; i < 120; i++ {
		g.Step()
		cur := map[int]bool{}
		for _, a := range g.actors {
			cur[a.id] = true
			if retired[a.id] {
				t.Fatalf("frame %d: despawned ID %d resurrected", i, a.id)
			}
			if c, seen := classOf[a.id]; seen && c != a.class {
				t.Fatalf("frame %d: ID %d changed class %v -> %v", i, a.id, c, a.class)
			}
			classOf[a.id] = a.class
		}
		for id := range live {
			if !cur[id] {
				retired[id] = true
			}
		}
		live = cur
	}
	if len(retired) == 0 {
		t.Fatal("no actor turnover in 120 frames; the stability check never bit")
	}
	if len(classOf) <= len(live) {
		t.Fatalf("only %d IDs ever allocated for %d live actors", len(classOf), len(live))
	}
}

// TestLoopLapPixelIdentical: inside a loop phase, frames one loop period
// apart are pixel-identical with identical truth — every lap revisits the
// same scenery with the same IDs, which is what hands the SLAM engine true
// loop-closure evidence.
func TestLoopLapPixelIdentical(t *testing.T) {
	cfg := smallCfg()
	cfg.EgoSpeed = 12 // 1.2 m/frame at 10 fps: a 12 m loop laps every 10 frames
	cfg.Timeline = &Timeline{Phases: []Phase{{Start: 1, LoopLength: 12}}}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]Frame, 40)
	for i := range frames {
		frames[i] = g.Step()
	}
	for _, i := range []int{12, 17, 23} {
		a, b := frames[i], frames[i+10]
		if !bytes.Equal(a.Image.Pix, b.Image.Pix) {
			t.Errorf("frames %d and %d (one lap apart) differ in pixels", i, i+10)
		}
		if !reflect.DeepEqual(a.Truth, b.Truth) {
			t.Errorf("frames %d and %d differ in truth:\n%+v\n%+v", i, i+10, a.Truth, b.Truth)
		}
	}
	// The real pose keeps advancing even though the rendered world wraps.
	if frames[39].EgoPose.Z <= frames[29].EgoPose.Z {
		t.Error("ego pose stopped advancing inside the loop")
	}
}

// TestLoopCoercionWarning: a loop world configured with moving actors is
// repaired, not rejected — the coercion surfaces as a validation warning
// and the world holds only signs.
func TestLoopCoercionWarning(t *testing.T) {
	cfg := smallCfg()
	cfg.LoopLength = 120
	cfg.NumVehicles, cfg.NumPeds = 4, 2
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warns := g.Warnings()
	if len(warns) != 1 || !strings.Contains(warns[0], "dropping 4 vehicles and 2 pedestrians") {
		t.Fatalf("warnings = %q", warns)
	}
	for _, a := range g.actors {
		if a.class != TrafficSign {
			t.Fatalf("loop world holds a %v", a.class)
		}
	}
	// Silencing works: explicit zero counts validate clean.
	quiet := smallCfg()
	quiet.LoopLength = 120
	quiet.NumVehicles, quiet.NumPeds = 0, 0
	q, err := New(quiet)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Warnings()) != 0 {
		t.Fatalf("silenced config still warns: %q", q.Warnings())
	}
}

// TestLaneGeometryValidation: LaneWidth/NumLanes are validated with
// archetype defaults for zero values.
func TestLaneGeometryValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"narrow lane", func(c *Config) { c.LaneWidth = 1.0 }, "lane width"},
		{"wide lane", func(c *Config) { c.LaneWidth = 9.0 }, "lane width"},
		{"too many lanes", func(c *Config) { c.NumLanes = 20 }, "lanes outside"},
		{"negative lanes", func(c *Config) { c.NumLanes = -1 }, "lanes outside"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallCfg()
			tc.mut(&cfg)
			if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New err = %v, want substring %q", err, tc.want)
			}
		})
	}
	if g, err := New(smallCfg()); err != nil {
		t.Fatal(err)
	} else if c := g.Config(); c.LaneWidth != DefaultLaneWidth || c.NumLanes != defaultLanes(Urban) {
		t.Fatalf("defaults not applied: LaneWidth=%v NumLanes=%d", c.LaneWidth, c.NumLanes)
	}
}

// TestSensorWindows: a blackout window zeroes the rendered frame while
// ground truth marches on; an occlusion paints the featureless foreground
// slab. Both are sensor effects — world state (truth, pose) is unaffected.
func TestSensorWindows(t *testing.T) {
	cfg := smallCfg()
	cfg.Timeline = stressTimeline()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var blackout, occluded, clear Frame
	for i := 0; i < 40; i++ {
		f := g.Step()
		switch {
		case f.Time >= 2.5 && f.Time < 2.8:
			blackout = f
		case f.Time >= 3.2 && f.Time < 3.6:
			occluded = f
		case f.Time < 2:
			clear = f
		}
	}
	if blackout.Image == nil || occluded.Image == nil || clear.Image == nil {
		t.Fatal("windows never sampled")
	}
	for i, p := range blackout.Image.Pix {
		if p != 0 {
			t.Fatalf("blackout frame has live pixel %d at %d", p, i)
		}
	}
	if len(blackout.Truth) == 0 {
		t.Error("blackout erased ground truth; truth is world state, not sensor state")
	}
	// The occluder slab: flat interior fill at the slab shade.
	cx, cy := int(float64(cfg.Width)*0.4), int(float64(cfg.Height)*0.6)
	if p := occluded.Image.Pix[cy*cfg.Width+cx]; p != 48 {
		t.Errorf("occluded frame center pixel = %d, want the 48 slab fill", p)
	}
	sum := 0
	for _, p := range occluded.Image.Pix {
		sum += int(p)
	}
	if sum == 0 {
		t.Error("occlusion blanked the whole frame; only a blackout may do that")
	}
}
