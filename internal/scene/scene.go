// Package scene generates deterministic synthetic driving scenarios — the
// reproduction's substitute for the KITTI camera streams used by the paper.
//
// A Scenario owns a simple 3D world: an ego vehicle driving along a straight
// road, other vehicles in lanes, pedestrians and cyclists near the roadside,
// and static traffic signs. Each call to Step advances the world by one
// frame period and renders an 8-bit grayscale camera frame via a pinhole
// projection, together with pixel-exact ground truth (object class, track ID
// and bounding box) and the true ego pose.
//
// The rendering is deliberately schematic but is constructed to exercise the
// same code paths as real footage: textured façades and lane markings give
// the FAST detector dense corners, object outlines give strong gradients,
// and frame-to-frame ego motion gives the SLAM engine real displacement to
// estimate.
package scene

import (
	"fmt"

	"adsim/internal/img"
)

// Class enumerates the four object categories the paper's detector keeps
// ("we focus on four categories that we care the most in autonomous
// driving, including vehicles, bicycles, traffic signs and pedestrians").
type Class int

const (
	Vehicle Class = iota
	Pedestrian
	Cyclist
	TrafficSign
	NumClasses = 4
)

var classNames = [NumClasses]string{"vehicle", "pedestrian", "cyclist", "traffic-sign"}

func (c Class) String() string {
	if c < 0 || int(c) >= NumClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// Pose is the 2D ground-plane vehicle pose used throughout the pipeline:
// lateral offset X and longitudinal position Z in meters, heading Theta in
// radians (0 = straight down the road).
type Pose struct {
	X, Z, Theta float64
}

// Camera is a pinhole camera model. FocalPx is the focal length expressed in
// pixels at the rendered resolution; Cx/Cy is the principal point; Height is
// the mounting height above the road in meters.
type Camera struct {
	FocalPx float64
	Cx, Cy  float64
	Height  float64
	W, H    int
}

// StandardCamera returns a camera for a w×h frame with a horizontal field of
// view of about 60°, mounted 1.6 m above the road — representative of the
// roof cameras on the vehicles surveyed in the paper's Table 1.
func StandardCamera(w, h int) Camera {
	return Camera{
		FocalPx: float64(w) * 0.87, // ~60° horizontal FoV
		Cx:      float64(w) / 2,
		Cy:      float64(h) / 2,
		Height:  1.6,
		W:       w,
		H:       h,
	}
}

// Project maps a world point (x lateral, y height above road, z longitudinal,
// meters, relative to the camera) to pixel coordinates. ok is false when the
// point is behind the near plane.
func (c Camera) Project(x, y, z float64) (u, v float64, ok bool) {
	const near = 0.5
	if z < near {
		return 0, 0, false
	}
	u = c.Cx + c.FocalPx*x/z
	v = c.Cy + c.FocalPx*(c.Height-y)/z
	return u, v, true
}

// BackProject maps a pixel and a known depth back to camera-relative world
// coordinates (inverse of Project at y=0 ground height is not assumed; the
// caller supplies y). Used by the fusion engine's tests.
func (c Camera) BackProject(u, v, z float64) (x, y float64) {
	x = (u - c.Cx) * z / c.FocalPx
	y = c.Height - (v-c.Cy)*z/c.FocalPx
	return x, y
}

// TruthObject is one ground-truth annotation on a frame.
type TruthObject struct {
	ID    int
	Class Class
	Box   img.Rect // pixel coordinates, clipped to the frame
	Depth float64  // meters ahead of the camera
}

// Frame is one rendered camera frame with its ground truth.
type Frame struct {
	Index   int
	Time    float64 // seconds since scenario start
	Image   *img.Gray
	Truth   []TruthObject
	EgoPose Pose
}

// Kind selects the scenario archetype.
type Kind int

const (
	// Highway: three lanes, vehicle traffic at speed, sparse roadside
	// texture, no intersections. Tracking-heavy.
	Highway Kind = iota
	// Urban: two lanes, pedestrians and cyclists, dense façade texture,
	// periodic intersections with signs. Localization-heavy.
	Urban
)

func (k Kind) String() string {
	if k == Highway {
		return "highway"
	}
	return "urban"
}

// Config parameterizes a scenario.
type Config struct {
	Kind        Kind
	Width       int     // frame width in pixels
	Height      int     // frame height in pixels
	FPS         float64 // frame rate (the paper's constraint: ≥10)
	EgoSpeed    float64 // m/s
	NumVehicles int
	NumPeds     int
	NumSigns    int
	Seed        int64
	// LaneWidth is the lane width in meters; 0 selects DefaultLaneWidth.
	LaneWidth float64
	// NumLanes is the carriageway width in lanes; 0 selects the archetype
	// default (3 for Highway, 2 for Urban).
	NumLanes int
	// LoopLength, when positive, makes the rendered world periodic in Z
	// with this period (meters): driving past it revisits the same
	// scenery, which is what exercises the SLAM engine's loop closing.
	// Loop worlds are static (moving actors would break periodicity), so
	// NumVehicles and NumPeds are forced to 0; LoopLength should be a
	// multiple of 6 m so the lane-dash pattern is exactly periodic.
	LoopLength float64
	// Illumination scales every rendered pixel (1.0 = nominal, 0 treated
	// as 1.0). Surveying at one illumination and localizing at another
	// exercises the robustness the paper's map-update path exists for
	// ("the map is built under different weather conditions"); rBRIEF's
	// binary intensity comparisons are invariant to monotone scaling.
	Illumination float64
	// Timeline, when non-nil, drives the world through phased changes —
	// traffic density, driver profile, illumination, road geometry,
	// blackout/occlusion windows, loop segments — as scenario time passes.
	// nil keeps the static single-phase behavior. Timelines are usually
	// compiled from a scenario program (internal/scenario), which
	// statically validates them before any frame renders.
	Timeline *Timeline
}

// DefaultLaneWidth is the lane width (meters) used when Config.LaneWidth
// is zero.
const DefaultLaneWidth = 3.5

// defaultLanes returns the archetype's lane count.
func defaultLanes(k Kind) int {
	if k == Urban {
		return 2
	}
	return 3
}

// DefaultConfig returns a KITTI-like configuration: 1242×375 frames at
// 10 fps, ego at 13 m/s.
func DefaultConfig(kind Kind) Config {
	cfg := Config{
		Kind:        kind,
		Width:       1242,
		Height:      375,
		FPS:         10,
		EgoSpeed:    13,
		NumVehicles: 6,
		NumPeds:     4,
		NumSigns:    3,
		Seed:        1,
	}
	if kind == Highway {
		cfg.EgoSpeed = 28
		cfg.NumVehicles = 8
		cfg.NumPeds = 0
		cfg.NumSigns = 2
	}
	return cfg
}

// Validate normalizes the config (applying defaults for zero fields) and
// reports problems on two channels: hard violations come back as the
// error, while conditions the generator will silently repair — today, a
// loop world configured with moving actors, which New coerces to a static
// world — come back as human-readable warnings. Generator.Warnings
// re-exposes the same list after construction.
func (c *Config) Validate() (warnings []string, err error) {
	if c.Width <= 0 || c.Height <= 0 {
		return nil, fmt.Errorf("scene: invalid frame size %dx%d", c.Width, c.Height)
	}
	if c.FPS <= 0 {
		c.FPS = 10
	}
	if c.EgoSpeed < 0 {
		return nil, fmt.Errorf("scene: negative ego speed %v", c.EgoSpeed)
	}
	if c.EgoSpeed > MaxEgoSpeed {
		return nil, fmt.Errorf("scene: ego speed %v above %v m/s", c.EgoSpeed, float64(MaxEgoSpeed))
	}
	if c.Illumination < 0 || c.Illumination > 2 {
		return nil, fmt.Errorf("scene: illumination %v outside [0,2]", c.Illumination)
	}
	if c.Illumination == 0 {
		c.Illumination = 1
	}
	if c.LaneWidth == 0 {
		c.LaneWidth = DefaultLaneWidth
	}
	if c.LaneWidth < MinLaneWidth || c.LaneWidth > MaxLaneWidth {
		return nil, fmt.Errorf("scene: lane width %v outside [%v,%v]", c.LaneWidth, float64(MinLaneWidth), float64(MaxLaneWidth))
	}
	if c.NumLanes == 0 {
		c.NumLanes = defaultLanes(c.Kind)
	}
	if c.NumLanes < 1 || c.NumLanes > MaxLanes {
		return nil, fmt.Errorf("scene: %d lanes outside [1,%d]", c.NumLanes, MaxLanes)
	}
	if c.LoopLength > 0 && (c.NumVehicles > 0 || c.NumPeds > 0) {
		warnings = append(warnings, fmt.Sprintf(
			"scene: loop world is static and periodic; dropping %d vehicles and %d pedestrians (set NumVehicles/NumPeds to 0 to silence)",
			c.NumVehicles, c.NumPeds))
	}
	if err := c.Timeline.Validate(); err != nil {
		return nil, err
	}
	return warnings, nil
}
