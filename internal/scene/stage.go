package scene

// StageName identifies the frame source in the pipeline's declarative
// stage graph and in telemetry spans (implements telemetry.Stage).
func (g *Generator) StageName() string { return "SRC" }
