package scene

import (
	"math"

	"adsim/internal/img"
	"adsim/internal/stats"
)

// actor is a dynamic world object.
type actor struct {
	id     int
	class  Class
	x, z   float64 // world position (m); z is absolute longitudinal position
	vx, vz float64 // velocity (m/s)
	w, h   float64 // physical extent (m): width and height
	shade  uint8

	// Driver-maneuver state (aggressive profile). manUntil is the scenario
	// time the active maneuver ends (0 = none); origVZ remembers the
	// pre-brake speed a hard-braking vehicle recovers to.
	manUntil float64
	origVZ   float64
}

// Generator produces the frame stream for one scenario. Construct with New;
// the zero value is not usable.
//
// All randomness flows through one seeded RNG consumed in a fixed order by
// the single-threaded Step loop, so the same Config (timeline included) and
// Seed always produce the bitwise-identical frame/truth/ID sequence.
type Generator struct {
	cfg      Config
	cam      Camera
	rng      *stats.RNG
	actors   []actor
	ego      Pose
	frame    int
	nextID   int
	warnings []string

	// Current world parameters. They start from the Config and are the
	// seam the timeline drives: phases override them as scenario time
	// passes. With no timeline they never change, and the generator
	// behaves exactly like the pre-timeline static world.
	laneWidth  float64
	numLanes   int
	curIllum   float64
	curSpeed   float64
	density    float64 // vehicles/km managed by the arrival process; <0 = static counts
	pedDensity float64 // pedestrians+cyclists/km; <0 = static counts
	driver     DriverProfile

	// Active loop segment: the rendered world is periodic in Z with period
	// loopLen anchored at loopAnchor. Config.LoopLength sets a whole-run
	// loop (anchor 0); a loop phase sets one scoped to the phase.
	loopLen    float64
	loopAnchor float64

	// Timeline cursor.
	tl       *Timeline
	phaseIdx int
	active   *Phase // innermost phase entered, for window/loop scoping
}

// New builds a scenario generator. The same Config (including Seed) always
// produces the identical frame sequence.
func New(cfg Config) (*Generator, error) {
	warnings, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:        cfg,
		cam:        StandardCamera(cfg.Width, cfg.Height),
		rng:        stats.NewRNG(cfg.Seed),
		warnings:   warnings,
		laneWidth:  cfg.LaneWidth,
		numLanes:   cfg.NumLanes,
		curIllum:   cfg.Illumination,
		curSpeed:   cfg.EgoSpeed,
		density:    -1,
		pedDensity: -1,
		loopLen:    cfg.LoopLength,
		tl:         cfg.Timeline,
	}
	g.ego = Pose{X: -g.laneWidth / 2, Z: 0, Theta: 0} // right-of-center lane
	if cfg.LoopLength > 0 {
		// Loop worlds are static and periodic: distribute signs evenly
		// around the loop and drop all moving actors. Config.Validate
		// surfaces the coercion as a warning when it discards actors.
		g.cfg.NumVehicles, g.cfg.NumPeds = 0, 0
		for i := 0; i < g.cfg.NumSigns; i++ {
			side := 1.0
			if i%2 == 1 {
				side = -1.0
			}
			g.actors = append(g.actors, actor{
				id:    g.allocID(),
				class: TrafficSign,
				x:     side * (g.roadHalf() + 1.0),
				z:     float64(i) * cfg.LoopLength / float64(g.cfg.NumSigns),
				w:     0.8, h: 0.8,
				shade: 230,
			})
		}
		return g, nil
	}
	g.spawnActors()
	return g, nil
}

// Camera returns the generator's camera model.
func (g *Generator) Camera() Camera { return g.cam }

// Config returns the scenario configuration (after default normalization).
func (g *Generator) Config() Config { return g.cfg }

// Warnings returns the validation warnings recorded at construction — the
// conditions New repaired rather than rejected (e.g. moving actors dropped
// from a loop world).
func (g *Generator) Warnings() []string { return append([]string(nil), g.warnings...) }

// roadHalf is the half-width of the carriageway under the current lane
// geometry.
func (g *Generator) roadHalf() float64 { return g.laneWidth * float64(g.numLanes) / 2 }

func (g *Generator) spawnActors() {
	for i := 0; i < g.cfg.NumVehicles; i++ {
		g.spawnVehicle(8, 80)
	}
	for i := 0; i < g.cfg.NumPeds; i++ {
		g.spawnPed(10, 60)
	}
	for i := 0; i < g.cfg.NumSigns; i++ {
		side := 1.0
		if i%2 == 1 {
			side = -1.0
		}
		g.actors = append(g.actors, actor{
			id:    g.allocID(),
			class: TrafficSign,
			x:     side * (g.roadHalf() + 1.0),
			z:     g.ego.Z + 20 + float64(i)*35,
			w:     0.8, h: 0.8,
			shade: 230,
		})
	}
}

// spawnVehicle places one vehicle in a random lane between zMin and zMax
// meters ahead of the ego. RNG consumption order (lane, speed factor, depth,
// shade — via the literal's field order below) is part of the determinism
// contract the frame goldens pin.
func (g *Generator) spawnVehicle(zMin, zMax float64) {
	lane := g.rng.Intn(g.numLanes)
	laneX := (float64(lane)+0.5)*g.laneWidth - g.roadHalf()
	speed := g.curSpeed * g.rng.Uniform(0.7, 1.15)
	g.actors = append(g.actors, actor{
		id:    g.allocID(),
		class: Vehicle,
		x:     laneX,
		z:     g.ego.Z + g.rng.Uniform(zMin, zMax),
		vz:    speed,
		w:     1.8, h: 1.5,
		shade: uint8(40 + g.rng.Intn(60)),
	})
}

// spawnPed places one pedestrian (or, 30% of the time, a cyclist) at the
// roadside between zMin and zMax meters ahead.
func (g *Generator) spawnPed(zMin, zMax float64) {
	side := 1.0
	if g.rng.Bernoulli(0.5) {
		side = -1.0
	}
	class := Pedestrian
	w, h, vx := 0.5, 1.75, side*-g.rng.Uniform(0.2, 1.2)
	if g.rng.Bernoulli(0.3) {
		class = Cyclist
		w, h = 0.6, 1.7
		vx = 0
	}
	a := actor{
		id:    g.allocID(),
		class: class,
		x:     side * (g.roadHalf() + g.rng.Uniform(0.5, 3)),
		z:     g.ego.Z + g.rng.Uniform(zMin, zMax),
		vx:    vx,
		w:     w, h: h,
		shade: uint8(60 + g.rng.Intn(80)),
	}
	if class == Cyclist {
		a.vz = g.rng.Uniform(3, 7)
	}
	g.actors = append(g.actors, a)
}

func (g *Generator) allocID() int {
	g.nextID++
	return g.nextID
}

// Step advances the world by one frame period and renders the next frame.
func (g *Generator) Step() Frame {
	dt := 1.0 / g.cfg.FPS
	t := float64(g.frame) * dt
	g.enterPhases(t)
	if g.frame > 0 {
		g.ego.Z += g.curSpeed * dt
		if g.driver == DriverAggressive && g.loopLen <= 0 {
			g.driverEvents(t, dt)
		}
		for i := range g.actors {
			a := &g.actors[i]
			a.x += a.vx * dt
			a.z += a.vz * dt
		}
		if g.loopLen <= 0 {
			if g.density >= 0 || g.pedDensity >= 0 {
				g.arrival(dt)
			} else {
				g.recycleActors()
			}
		}
	}
	f := Frame{
		Index:   g.frame,
		Time:    t,
		EgoPose: g.ego,
	}
	f.Image, f.Truth = g.render()
	if g.curIllum != 1 {
		applyIllumination(f.Image, g.curIllum)
	}
	g.applyWindows(f.Image, t)
	g.frame++
	return f
}

// enterPhases applies every timeline phase whose start time has arrived and
// expires phase-scoped state (loop segments) whose phase has ended.
func (g *Generator) enterPhases(t float64) {
	if g.tl == nil {
		return
	}
	for g.phaseIdx < len(g.tl.Phases) && g.tl.Phases[g.phaseIdx].Start <= t {
		g.applyPhase(&g.tl.Phases[g.phaseIdx], t)
		g.phaseIdx++
	}
	if g.active != nil && g.active.End > 0 && t >= g.active.End {
		// The active phase ran out with no successor covering t: its loop
		// segment (if any) ends and the world continues from the real ego Z.
		if g.active.LoopLength > 0 {
			g.loopLen, g.loopAnchor = g.cfg.LoopLength, 0
		}
		g.active = nil
	}
}

// applyPhase commits one phase's world overrides. Parameters it does not
// set keep their current values.
func (g *Generator) applyPhase(ph *Phase, t float64) {
	if g.active != nil && g.active.LoopLength > 0 && ph.LoopLength <= 0 {
		g.loopLen, g.loopAnchor = g.cfg.LoopLength, 0
	}
	if ph.Set.Has(SetDensity) {
		g.density = ph.Density
	}
	if ph.Set.Has(SetPedDensity) {
		g.pedDensity = ph.PedDensity
	}
	if ph.Set.Has(SetDriver) {
		g.driver = ph.Driver
	}
	if ph.Set.Has(SetIllumination) {
		g.curIllum = ph.Illumination
	}
	if ph.Set.Has(SetEgoSpeed) {
		g.curSpeed = ph.EgoSpeed
	}
	if ph.Set.Has(SetLaneWidth) {
		g.laneWidth = ph.LaneWidth
	}
	if ph.Set.Has(SetNumLanes) {
		g.numLanes = ph.NumLanes
	}
	if ph.LoopLength > 0 {
		g.enterLoop(ph.LoopLength)
	}
	g.active = ph
	_ = t
}

// enterLoop starts a loop segment at the current ego position: moving
// actors despawn (their IDs retire — a despawn is permanent to the
// tracker), and the roadside signs are rebuilt evenly around the loop with
// fresh IDs so every lap revisits identical scenery.
func (g *Generator) enterLoop(length float64) {
	kept := g.actors[:0]
	for _, a := range g.actors {
		if a.class == TrafficSign {
			kept = append(kept, a)
		}
	}
	g.actors = kept
	g.loopAnchor = math.Round(g.ego.Z*1e9) / 1e9
	g.loopLen = length
	n := g.cfg.NumSigns
	g.actors = g.actors[:0]
	for i := 0; i < n; i++ {
		side := 1.0
		if i%2 == 1 {
			side = -1.0
		}
		g.actors = append(g.actors, actor{
			id:    g.allocID(),
			class: TrafficSign,
			x:     side * (g.roadHalf() + 1.0),
			z:     g.loopAnchor + float64(i)*length/float64(n),
			w:     0.8, h: 0.8,
			shade: 230,
		})
	}
}

// Aggressive-driver event process constants.
const (
	// aggressiveEventRate is each vehicle's maneuver start rate (events/s).
	aggressiveEventRate = 0.25
	// cutInDuration is how long a lane change takes (s).
	cutInDuration = 1.5
)

// driverEvents runs the aggressive-driver event process: each vehicle
// without an active maneuver may start a cut-in (lateral drift of one lane
// width toward the ego's lane) or a hard brake (speed cut to 30–55% for
// 0.8–1.6 s, then released). Actors are visited in stable index order so
// RNG consumption — and therefore the whole world evolution — replays
// identically for a given program and seed.
func (g *Generator) driverEvents(t, dt float64) {
	for i := range g.actors {
		a := &g.actors[i]
		if a.class != Vehicle {
			continue
		}
		if a.manUntil > 0 && t >= a.manUntil {
			// Maneuver over: settle into the lane / release the brake.
			a.vx = 0
			if a.origVZ > 0 {
				a.vz, a.origVZ = a.origVZ, 0
			}
			a.manUntil = 0
		}
		if a.manUntil > 0 {
			continue
		}
		if !g.rng.Bernoulli(aggressiveEventRate * dt) {
			continue
		}
		if g.rng.Bernoulli(0.5) {
			// Cut-in toward the ego's side of the road.
			dir := 1.0
			if a.x > g.ego.X {
				dir = -1.0
			}
			a.vx = dir * g.laneWidth / cutInDuration
			a.manUntil = t + cutInDuration
		} else {
			// Hard brake, then recover.
			a.origVZ = a.vz
			a.vz *= g.rng.Uniform(0.3, 0.55)
			a.manUntil = t + g.rng.Uniform(0.8, 1.6)
		}
	}
}

// arrivalSpan is the stretch of road ahead of the ego (meters) the arrival
// process manages density over.
const arrivalSpan = 150.0

// arrivalHz converts a standing deficit into spawn probability per second:
// each missing actor arrives as a Bernoulli(arrivalHz·dt) event per frame,
// so density transitions ramp over ~a second instead of teleporting.
const arrivalHz = 1.5

// arrival is the density-managed replacement for recycleActors: moving
// actors that fall behind, wander off, or pass beyond the managed span
// despawn for good (their IDs retire), and a seeded arrival process spawns
// replacements to hold the phase's target density. Signs recycle as in the
// static world so roadside texture persists.
func (g *Generator) arrival(dt float64) {
	kept := g.actors[:0]
	for _, a := range g.actors {
		if a.class == TrafficSign {
			kept = append(kept, a)
			continue
		}
		behind := a.z < g.ego.Z-10
		farOff := math.Abs(a.x) > g.roadHalf()+8
		beyond := a.z > g.ego.Z+arrivalSpan+50
		if behind || farOff || beyond {
			continue
		}
		kept = append(kept, a)
	}
	g.actors = kept
	for i := range g.actors {
		a := &g.actors[i]
		if a.class == TrafficSign && a.z < g.ego.Z-10 {
			a.id = g.allocID() // a respawn is a new object to the tracker
			a.z = g.ego.Z + g.rng.Uniform(40, 100)
		}
	}

	var nv, np int
	for _, a := range g.actors {
		switch a.class {
		case Vehicle:
			nv++
		case Pedestrian, Cyclist:
			np++
		}
	}
	if g.density >= 0 {
		target := int(math.Round(g.density * arrivalSpan / 1000))
		for nv > target {
			g.despawnFarthest(Vehicle)
			nv--
		}
		for i := nv; i < target; i++ {
			if g.rng.Bernoulli(math.Min(1, arrivalHz*dt)) {
				g.spawnVehicle(20, arrivalSpan)
			}
		}
	}
	if g.pedDensity >= 0 {
		target := int(math.Round(g.pedDensity * arrivalSpan / 1000))
		for np > target {
			g.despawnFarthest(Pedestrian)
			np--
		}
		for i := np; i < target; i++ {
			if g.rng.Bernoulli(math.Min(1, arrivalHz*dt)) {
				g.spawnPed(10, arrivalSpan*0.6)
			}
		}
	}
}

// despawnFarthest removes the actor of the given moving class (Pedestrian
// also matches Cyclist) farthest ahead of the ego — the least-visible one —
// without consuming RNG, so density reductions are deterministic.
func (g *Generator) despawnFarthest(class Class) {
	best, bestZ := -1, math.Inf(-1)
	for i, a := range g.actors {
		match := a.class == class || (class == Pedestrian && a.class == Cyclist)
		if match && a.z > bestZ {
			best, bestZ = i, a.z
		}
	}
	if best >= 0 {
		g.actors = append(g.actors[:best], g.actors[best+1:]...)
	}
}

// applyWindows applies the active phase's sensor windows to the rendered
// frame: an occlusion draws a large featureless foreground block (a truck
// swallowing the view), a blackout zeroes the frame outright. Ground truth
// is world state, not sensor state, so Truth is unaffected — the stress is
// exactly that perception must cope while truth marches on.
func (g *Generator) applyWindows(im *img.Gray, t float64) {
	if g.active == nil {
		return
	}
	for _, w := range g.active.Occlusions {
		if w.Contains(t) {
			g.drawOccluder(im)
			break
		}
	}
	for _, w := range g.active.Blackouts {
		if w.Contains(t) {
			for i := range im.Pix {
				im.Pix[i] = 0
			}
			break
		}
	}
}

// drawOccluder paints the foreground occluder: a flat dark slab over the
// center-left of the frame that erases corners and gradients beneath it.
func (g *Generator) drawOccluder(im *img.Gray) {
	w, h := float64(g.cfg.Width), float64(g.cfg.Height)
	box := img.RectWH(w*0.18, h*0.25, w*0.45, h*0.72)
	im.FillRect(box, 48)
	im.StrokeRect(box, 62)
}

// applyIllumination scales every pixel, saturating at white.
func applyIllumination(im *img.Gray, k float64) {
	for i, p := range im.Pix {
		v := float64(p) * k
		if v > 255 {
			v = 255
		}
		im.Pix[i] = uint8(v)
	}
}

// effZ returns the ego's position in the rendered world frame: the real Z
// on open routes, or wrapped into the active loop segment on periodic
// routes (whole-run Config.LoopLength loops anchor at 0; loop phases
// anchor where the phase began). The result is quantized to nanometers so
// that accumulated floating-point error cannot flip discrete rasterization
// decisions between laps — loop frames must be pixel-identical one period
// apart.
func (g *Generator) effZ() float64 {
	z := g.ego.Z
	if g.loopLen > 0 {
		z = g.loopAnchor + math.Mod(z-g.loopAnchor, g.loopLen)
	}
	return math.Round(z*1e9) / 1e9
}

// actorDepth returns the actor's longitudinal distance ahead of the ego in
// the rendered world frame, wrapping on loop routes.
func (g *Generator) actorDepth(a actor) float64 {
	dz := a.z - g.effZ()
	if g.loopLen > 0 {
		dz = math.Mod(dz, g.loopLen)
		if dz < 0 {
			dz += g.loopLen
		}
	}
	return dz
}

// recycleActors respawns actors that have fallen far behind the ego vehicle
// or wandered off the shoulder, keeping object density roughly constant.
func (g *Generator) recycleActors() {
	for i := range g.actors {
		a := &g.actors[i]
		behind := a.z < g.ego.Z-10
		farOff := math.Abs(a.x) > g.roadHalf()+8
		if !behind && !farOff {
			continue
		}
		a.id = g.allocID() // a respawn is a new object to the tracker
		a.manUntil, a.origVZ = 0, 0
		switch a.class {
		case Vehicle:
			lane := g.rng.Intn(g.numLanes)
			a.x = (float64(lane)+0.5)*g.laneWidth - g.roadHalf()
			a.z = g.ego.Z + g.rng.Uniform(30, 90)
			a.vx = 0
			a.vz = g.curSpeed * g.rng.Uniform(0.7, 1.15)
		case Pedestrian, Cyclist:
			side := 1.0
			if g.rng.Bernoulli(0.5) {
				side = -1.0
			}
			a.x = side * (g.roadHalf() + g.rng.Uniform(0.5, 3))
			a.z = g.ego.Z + g.rng.Uniform(15, 60)
			if a.class == Pedestrian {
				a.vx = -side * g.rng.Uniform(0.2, 1.2)
			}
		case TrafficSign:
			a.z = g.ego.Z + g.rng.Uniform(40, 100)
		}
	}
}

// render rasterizes the current world state and returns the frame image and
// ground-truth annotations sorted far-to-near so nearer objects overdraw.
func (g *Generator) render() (*img.Gray, []TruthObject) {
	im := img.NewGray(g.cfg.Width, g.cfg.Height)
	g.drawBackground(im)

	// Painter's order: far actors first.
	order := make([]int, len(g.actors))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort by depth descending
		for j := i; j > 0; j-- {
			if g.actorDepth(g.actors[order[j]]) > g.actorDepth(g.actors[order[j-1]]) {
				order[j], order[j-1] = order[j-1], order[j]
			} else {
				break
			}
		}
	}

	var truth []TruthObject
	const maxDepth = 120.0
	for _, idx := range order {
		a := g.actors[idx]
		dz := g.actorDepth(a)
		if dz < 1 || dz > maxDepth {
			continue
		}
		relX := a.x - g.ego.X
		baseY := 0.0 // objects stand on the road plane
		u0, v0, ok0 := g.cam.Project(relX-a.w/2, baseY+a.h, dz)
		u1, v1, ok1 := g.cam.Project(relX+a.w/2, baseY, dz)
		if !ok0 || !ok1 {
			continue
		}
		box := img.Rect{X0: u0, Y0: v0, X1: u1, Y1: v1}
		clipped := box.Clip(0, 0, g.cfg.Width, g.cfg.Height)
		if clipped.Empty() || clipped.Area() < 9 {
			continue
		}
		g.drawActor(im, a, box)
		truth = append(truth, TruthObject{ID: a.id, Class: a.class, Box: clipped, Depth: dz})
	}
	return im, truth
}

func (g *Generator) drawActor(im *img.Gray, a actor, box img.Rect) {
	im.FillRect(box, a.shade)
	im.StrokeRect(box, 255)
	switch a.class {
	case Vehicle:
		// Window band and wheel hints give interior gradients.
		win := img.Rect{X0: box.X0 + box.W()*0.15, Y0: box.Y0 + box.H()*0.1,
			X1: box.X1 - box.W()*0.15, Y1: box.Y0 + box.H()*0.45}
		im.FillRect(win, 20)
		wy := int(box.Y1) - 1
		r := int(box.W() * 0.08)
		if r > 0 {
			im.FillCircle(int(box.X0+box.W()*0.25), wy, r, 10)
			im.FillCircle(int(box.X0+box.W()*0.75), wy, r, 10)
		}
	case TrafficSign:
		inner := box.Scale(0.6)
		im.FillRect(inner, 30)
		// Pole down to the road.
		cx := int((box.X0 + box.X1) / 2)
		im.DrawLine(cx, int(box.Y1), cx, int(box.Y1)+int(box.H()), 90)
	case Pedestrian, Cyclist:
		// Head blob.
		r := int(box.W() * 0.3)
		if r > 0 {
			im.FillCircle(int((box.X0+box.X1)/2), int(box.Y0)+r, r, a.shade/2+90)
		}
	}
}

// drawBackground paints sky, road surface, lane markings, and textured
// roadside façades whose pattern scrolls consistently with ego motion, so
// the SLAM front-end observes coherent feature displacement.
func (g *Generator) drawBackground(im *img.Gray) {
	w, h := g.cfg.Width, g.cfg.Height
	horizon := int(g.cam.Cy)
	if horizon < 1 {
		horizon = 1
	}
	if horizon > h-1 {
		horizon = h - 1
	}
	// Sky.
	im.FillRect(img.RectWH(0, 0, float64(w), float64(horizon)), 200)
	// Road: darker toward the camera.
	for y := horizon; y < h; y++ {
		shade := uint8(90 - 30*(y-horizon)/(h-horizon+1))
		for x := 0; x < w; x++ {
			im.Pix[y*w+x] = shade
		}
	}
	// Roadside façades: scattered bright blocks on a dark band. Isolated
	// blocks present L-corners, which the FAST segment test responds to
	// (ideal checkerboard X-junctions do not produce the contiguous arc
	// FAST requires). Block positions are keyed to world coordinates so
	// the texture scrolls coherently with ego motion.
	bandTop := horizon - h/6
	bandH := h / 6
	if bandTop < 0 {
		bandTop, bandH = 0, horizon
	}
	im.FillRect(img.RectWH(0, float64(bandTop), float64(w), float64(bandH)), 70)
	const cell = 12
	scroll := int(g.effZ() * 6)
	for row := 0; row*cell < bandH; row++ {
		for col := -1; col*cell < w+cell; col++ {
			worldCol := col + scroll/cell
			hsh := uint32(worldCol*73856093) ^ uint32(row*19349663)
			hsh = (hsh ^ hsh>>13) * 0x5bd1e995
			if hsh%3 != 0 {
				continue // ~1/3 of cells carry a block
			}
			jx := int(hsh>>8) % (cell - 8)
			jy := int(hsh>>16) % (cell - 8)
			bw := 3 + int(hsh>>20)%5 // 3..7 px wide
			bh := 3 + int(hsh>>24)%5 // 3..7 px tall
			x0 := col*cell + jx - scroll%cell
			y0 := bandTop + row*cell + jy
			shade := uint8(140 + hsh%80) // ≤ 219: below the detector's outline mask
			im.FillRect(img.RectWH(float64(x0), float64(y0), float64(bw), float64(bh)), shade)
		}
	}
	// Lane markings: dashed center lines converging at the principal point.
	for lane := 0; lane <= g.numLanes; lane++ {
		laneX := float64(lane)*g.laneWidth - g.roadHalf()
		g.drawLaneLine(im, laneX, horizon)
	}
}

// drawLaneLine projects a longitudinal road line at lateral offset laneX and
// draws dashes along it. Dash phase follows ego Z, producing frame-to-frame
// optical flow on the road surface.
func (g *Generator) drawLaneLine(im *img.Gray, laneX float64, horizon int) {
	relX := laneX - g.ego.X
	dashLen := 3.0 // meters
	// March in depth; dash pattern keyed to absolute Z so it scrolls.
	for z := 2.0; z < 80; z += 0.5 {
		absZ := g.effZ() + z
		if int(absZ/dashLen)%2 == 1 {
			continue
		}
		u, v, ok := g.cam.Project(relX, 0, z)
		if !ok || v < float64(horizon) {
			continue
		}
		thickness := int(math.Max(1, g.cam.FocalPx*0.12/z))
		for t := 0; t < thickness; t++ {
			im.Set(int(u)+t, int(v), 240)
		}
	}
}
