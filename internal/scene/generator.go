package scene

import (
	"math"

	"adsim/internal/img"
	"adsim/internal/stats"
)

// actor is a dynamic world object.
type actor struct {
	id     int
	class  Class
	x, z   float64 // world position (m); z is absolute longitudinal position
	vx, vz float64 // velocity (m/s)
	w, h   float64 // physical extent (m): width and height
	shade  uint8
}

// Generator produces the frame stream for one scenario. Construct with New;
// the zero value is not usable.
type Generator struct {
	cfg    Config
	cam    Camera
	rng    *stats.RNG
	actors []actor
	ego    Pose
	frame  int
	nextID int

	laneWidth float64
	numLanes  int
	roadHalf  float64
}

// New builds a scenario generator. The same Config (including Seed) always
// produces the identical frame sequence.
func New(cfg Config) (*Generator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:       cfg,
		cam:       StandardCamera(cfg.Width, cfg.Height),
		rng:       stats.NewRNG(cfg.Seed),
		laneWidth: 3.5,
	}
	g.numLanes = 3
	if cfg.Kind == Urban {
		g.numLanes = 2
	}
	g.roadHalf = g.laneWidth * float64(g.numLanes) / 2
	g.ego = Pose{X: -g.laneWidth / 2, Z: 0, Theta: 0} // right-of-center lane
	if cfg.LoopLength > 0 {
		// Loop worlds are static and periodic: distribute signs evenly
		// around the loop and drop all moving actors.
		g.cfg.NumVehicles, g.cfg.NumPeds = 0, 0
		for i := 0; i < g.cfg.NumSigns; i++ {
			side := 1.0
			if i%2 == 1 {
				side = -1.0
			}
			g.actors = append(g.actors, actor{
				id:    g.allocID(),
				class: TrafficSign,
				x:     side * (g.roadHalf + 1.0),
				z:     float64(i) * cfg.LoopLength / float64(g.cfg.NumSigns),
				w:     0.8, h: 0.8,
				shade: 230,
			})
		}
		return g, nil
	}
	g.spawnActors()
	return g, nil
}

// Camera returns the generator's camera model.
func (g *Generator) Camera() Camera { return g.cam }

// Config returns the scenario configuration (after default normalization).
func (g *Generator) Config() Config { return g.cfg }

func (g *Generator) spawnActors() {
	for i := 0; i < g.cfg.NumVehicles; i++ {
		lane := g.rng.Intn(g.numLanes)
		laneX := (float64(lane)+0.5)*g.laneWidth - g.roadHalf
		speed := g.cfg.EgoSpeed * g.rng.Uniform(0.7, 1.15)
		g.actors = append(g.actors, actor{
			id:    g.allocID(),
			class: Vehicle,
			x:     laneX,
			z:     g.ego.Z + g.rng.Uniform(8, 80),
			vz:    speed,
			w:     1.8, h: 1.5,
			shade: uint8(40 + g.rng.Intn(60)),
		})
	}
	for i := 0; i < g.cfg.NumPeds; i++ {
		side := 1.0
		if g.rng.Bernoulli(0.5) {
			side = -1.0
		}
		class := Pedestrian
		w, h, vx := 0.5, 1.75, side*-g.rng.Uniform(0.2, 1.2)
		if g.rng.Bernoulli(0.3) {
			class = Cyclist
			w, h = 0.6, 1.7
			vx = 0
		}
		a := actor{
			id:    g.allocID(),
			class: class,
			x:     side * (g.roadHalf + g.rng.Uniform(0.5, 3)),
			z:     g.ego.Z + g.rng.Uniform(10, 60),
			vx:    vx,
			w:     w, h: h,
			shade: uint8(60 + g.rng.Intn(80)),
		}
		if class == Cyclist {
			a.vz = g.rng.Uniform(3, 7)
		}
		g.actors = append(g.actors, a)
	}
	for i := 0; i < g.cfg.NumSigns; i++ {
		side := 1.0
		if i%2 == 1 {
			side = -1.0
		}
		g.actors = append(g.actors, actor{
			id:    g.allocID(),
			class: TrafficSign,
			x:     side * (g.roadHalf + 1.0),
			z:     g.ego.Z + 20 + float64(i)*35,
			w:     0.8, h: 0.8,
			shade: 230,
		})
	}
}

func (g *Generator) allocID() int {
	g.nextID++
	return g.nextID
}

// Step advances the world by one frame period and renders the next frame.
func (g *Generator) Step() Frame {
	dt := 1.0 / g.cfg.FPS
	if g.frame > 0 {
		g.ego.Z += g.cfg.EgoSpeed * dt
		for i := range g.actors {
			a := &g.actors[i]
			a.x += a.vx * dt
			a.z += a.vz * dt
		}
		if g.cfg.LoopLength <= 0 {
			g.recycleActors()
		}
	}
	f := Frame{
		Index:   g.frame,
		Time:    float64(g.frame) * dt,
		EgoPose: g.ego,
	}
	f.Image, f.Truth = g.render()
	if g.cfg.Illumination != 1 {
		applyIllumination(f.Image, g.cfg.Illumination)
	}
	g.frame++
	return f
}

// applyIllumination scales every pixel, saturating at white.
func applyIllumination(im *img.Gray, k float64) {
	for i, p := range im.Pix {
		v := float64(p) * k
		if v > 255 {
			v = 255
		}
		im.Pix[i] = uint8(v)
	}
}

// effZ returns the ego's position in the rendered world frame: the real Z
// for open routes, or Z modulo the loop length on periodic loop routes.
// The result is quantized to nanometers so that accumulated floating-point
// error cannot flip discrete rasterization decisions between laps — loop
// frames must be pixel-identical one period apart.
func (g *Generator) effZ() float64 {
	z := g.ego.Z
	if g.cfg.LoopLength > 0 {
		z = math.Mod(z, g.cfg.LoopLength)
	}
	return math.Round(z*1e9) / 1e9
}

// actorDepth returns the actor's longitudinal distance ahead of the ego in
// the rendered world frame, wrapping on loop routes.
func (g *Generator) actorDepth(a actor) float64 {
	dz := a.z - g.effZ()
	if g.cfg.LoopLength > 0 {
		dz = math.Mod(dz, g.cfg.LoopLength)
		if dz < 0 {
			dz += g.cfg.LoopLength
		}
	}
	return dz
}

// recycleActors respawns actors that have fallen far behind the ego vehicle
// or wandered off the shoulder, keeping object density roughly constant.
func (g *Generator) recycleActors() {
	for i := range g.actors {
		a := &g.actors[i]
		behind := a.z < g.ego.Z-10
		farOff := math.Abs(a.x) > g.roadHalf+8
		if !behind && !farOff {
			continue
		}
		a.id = g.allocID() // a respawn is a new object to the tracker
		switch a.class {
		case Vehicle:
			lane := g.rng.Intn(g.numLanes)
			a.x = (float64(lane)+0.5)*g.laneWidth - g.roadHalf
			a.z = g.ego.Z + g.rng.Uniform(30, 90)
			a.vz = g.cfg.EgoSpeed * g.rng.Uniform(0.7, 1.15)
		case Pedestrian, Cyclist:
			side := 1.0
			if g.rng.Bernoulli(0.5) {
				side = -1.0
			}
			a.x = side * (g.roadHalf + g.rng.Uniform(0.5, 3))
			a.z = g.ego.Z + g.rng.Uniform(15, 60)
			if a.class == Pedestrian {
				a.vx = -side * g.rng.Uniform(0.2, 1.2)
			}
		case TrafficSign:
			a.z = g.ego.Z + g.rng.Uniform(40, 100)
		}
	}
}

// render rasterizes the current world state and returns the frame image and
// ground-truth annotations sorted far-to-near so nearer objects overdraw.
func (g *Generator) render() (*img.Gray, []TruthObject) {
	im := img.NewGray(g.cfg.Width, g.cfg.Height)
	g.drawBackground(im)

	// Painter's order: far actors first.
	order := make([]int, len(g.actors))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort by depth descending
		for j := i; j > 0; j-- {
			if g.actorDepth(g.actors[order[j]]) > g.actorDepth(g.actors[order[j-1]]) {
				order[j], order[j-1] = order[j-1], order[j]
			} else {
				break
			}
		}
	}

	var truth []TruthObject
	const maxDepth = 120.0
	for _, idx := range order {
		a := g.actors[idx]
		dz := g.actorDepth(a)
		if dz < 1 || dz > maxDepth {
			continue
		}
		relX := a.x - g.ego.X
		baseY := 0.0 // objects stand on the road plane
		u0, v0, ok0 := g.cam.Project(relX-a.w/2, baseY+a.h, dz)
		u1, v1, ok1 := g.cam.Project(relX+a.w/2, baseY, dz)
		if !ok0 || !ok1 {
			continue
		}
		box := img.Rect{X0: u0, Y0: v0, X1: u1, Y1: v1}
		clipped := box.Clip(0, 0, g.cfg.Width, g.cfg.Height)
		if clipped.Empty() || clipped.Area() < 9 {
			continue
		}
		g.drawActor(im, a, box)
		truth = append(truth, TruthObject{ID: a.id, Class: a.class, Box: clipped, Depth: dz})
	}
	return im, truth
}

func (g *Generator) drawActor(im *img.Gray, a actor, box img.Rect) {
	im.FillRect(box, a.shade)
	im.StrokeRect(box, 255)
	switch a.class {
	case Vehicle:
		// Window band and wheel hints give interior gradients.
		win := img.Rect{X0: box.X0 + box.W()*0.15, Y0: box.Y0 + box.H()*0.1,
			X1: box.X1 - box.W()*0.15, Y1: box.Y0 + box.H()*0.45}
		im.FillRect(win, 20)
		wy := int(box.Y1) - 1
		r := int(box.W() * 0.08)
		if r > 0 {
			im.FillCircle(int(box.X0+box.W()*0.25), wy, r, 10)
			im.FillCircle(int(box.X0+box.W()*0.75), wy, r, 10)
		}
	case TrafficSign:
		inner := box.Scale(0.6)
		im.FillRect(inner, 30)
		// Pole down to the road.
		cx := int((box.X0 + box.X1) / 2)
		im.DrawLine(cx, int(box.Y1), cx, int(box.Y1)+int(box.H()), 90)
	case Pedestrian, Cyclist:
		// Head blob.
		r := int(box.W() * 0.3)
		if r > 0 {
			im.FillCircle(int((box.X0+box.X1)/2), int(box.Y0)+r, r, a.shade/2+90)
		}
	}
}

// drawBackground paints sky, road surface, lane markings, and textured
// roadside façades whose pattern scrolls consistently with ego motion, so
// the SLAM front-end observes coherent feature displacement.
func (g *Generator) drawBackground(im *img.Gray) {
	w, h := g.cfg.Width, g.cfg.Height
	horizon := int(g.cam.Cy)
	if horizon < 1 {
		horizon = 1
	}
	if horizon > h-1 {
		horizon = h - 1
	}
	// Sky.
	im.FillRect(img.RectWH(0, 0, float64(w), float64(horizon)), 200)
	// Road: darker toward the camera.
	for y := horizon; y < h; y++ {
		shade := uint8(90 - 30*(y-horizon)/(h-horizon+1))
		for x := 0; x < w; x++ {
			im.Pix[y*w+x] = shade
		}
	}
	// Roadside façades: scattered bright blocks on a dark band. Isolated
	// blocks present L-corners, which the FAST segment test responds to
	// (ideal checkerboard X-junctions do not produce the contiguous arc
	// FAST requires). Block positions are keyed to world coordinates so
	// the texture scrolls coherently with ego motion.
	bandTop := horizon - h/6
	bandH := h / 6
	if bandTop < 0 {
		bandTop, bandH = 0, horizon
	}
	im.FillRect(img.RectWH(0, float64(bandTop), float64(w), float64(bandH)), 70)
	const cell = 12
	scroll := int(g.effZ() * 6)
	for row := 0; row*cell < bandH; row++ {
		for col := -1; col*cell < w+cell; col++ {
			worldCol := col + scroll/cell
			hsh := uint32(worldCol*73856093) ^ uint32(row*19349663)
			hsh = (hsh ^ hsh>>13) * 0x5bd1e995
			if hsh%3 != 0 {
				continue // ~1/3 of cells carry a block
			}
			jx := int(hsh>>8) % (cell - 8)
			jy := int(hsh>>16) % (cell - 8)
			bw := 3 + int(hsh>>20)%5 // 3..7 px wide
			bh := 3 + int(hsh>>24)%5 // 3..7 px tall
			x0 := col*cell + jx - scroll%cell
			y0 := bandTop + row*cell + jy
			shade := uint8(140 + hsh%80) // ≤ 219: below the detector's outline mask
			im.FillRect(img.RectWH(float64(x0), float64(y0), float64(bw), float64(bh)), shade)
		}
	}
	// Lane markings: dashed center lines converging at the principal point.
	for lane := 0; lane <= g.numLanes; lane++ {
		laneX := float64(lane)*g.laneWidth - g.roadHalf
		g.drawLaneLine(im, laneX, horizon)
	}
}

// drawLaneLine projects a longitudinal road line at lateral offset laneX and
// draws dashes along it. Dash phase follows ego Z, producing frame-to-frame
// optical flow on the road surface.
func (g *Generator) drawLaneLine(im *img.Gray, laneX float64, horizon int) {
	relX := laneX - g.ego.X
	dashLen := 3.0 // meters
	// March in depth; dash pattern keyed to absolute Z so it scrolls.
	for z := 2.0; z < 80; z += 0.5 {
		absZ := g.effZ() + z
		if int(absZ/dashLen)%2 == 1 {
			continue
		}
		u, v, ok := g.cam.Project(relX, 0, z)
		if !ok || v < float64(horizon) {
			continue
		}
		thickness := int(math.Max(1, g.cam.FocalPx*0.12/z))
		for t := 0; t < thickness; t++ {
			im.Set(int(u)+t, int(v), 240)
		}
	}
}
