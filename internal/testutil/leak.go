// Package testutil holds small cross-package test harness pieces. Nothing
// here is imported by production code.
package testutil

import (
	"runtime"
	"time"
)

// TB is the subset of testing.TB the helpers need; taking the interface
// keeps testing out of non-test import graphs and lets the checker be
// exercised from its own tests.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// CheckGoroutines snapshots the goroutine count and returns a function that
// verifies the count has returned to (at most) the snapshot. Deferred at the
// top of a test, it turns the shutdown-ordering bug class — a Stop/drain
// path that strands a stage goroutine — into a structural failure instead of
// an eventual test-suite hang:
//
//	defer testutil.CheckGoroutines(t)()
//
// Goroutines wind down asynchronously after a result channel closes (a
// drained runner's stage goroutines may still be between their last send and
// exit), so the check polls with a grace period before declaring a leak, and
// dumps all goroutine stacks on failure.
func CheckGoroutines(t TB) func() {
	return CheckGoroutinesWithGrace(t, 2*time.Second)
}

// CheckGoroutinesWithGrace is CheckGoroutines with an explicit grace period.
func CheckGoroutinesWithGrace(t TB, grace time.Duration) func() {
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(grace)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d before, %d after grace period\n%s", before, after, buf)
	}
}
