//go:build race

package testutil

// RaceEnabled reports whether the binary was built with the race detector.
// Allocation gates consult it: testing.AllocsPerRun is unreliable under
// -race (the detector and sync.Pool both allocate on their own schedule),
// so those assertions downgrade to skips while the code under test still
// runs for race coverage. `make alloc-gate` enforces them without -race.
const RaceEnabled = true
