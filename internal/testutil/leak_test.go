package testutil

import (
	"strings"
	"testing"
	"time"
)

// recorder captures Errorf calls without failing the real test.
type recorder struct {
	msgs []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.msgs = append(r.msgs, format)
	_ = args
}

func TestCheckGoroutinesPassesOnBalancedExit(t *testing.T) {
	check := CheckGoroutines(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	check() // the spawned goroutine exits within the grace period
}

func TestCheckGoroutinesToleratesLateExit(t *testing.T) {
	check := CheckGoroutines(t)
	go time.Sleep(50 * time.Millisecond)
	check() // still running at check time, gone within the grace period
}

func TestCheckGoroutinesReportsLeak(t *testing.T) {
	quit := make(chan struct{})
	defer close(quit)

	var rec recorder
	// Snapshot AFTER deciding to leak would mask it; snapshot first.
	check := CheckGoroutinesWithGrace(&rec, 50*time.Millisecond)
	go func() { <-quit }() // outlives the grace period
	check()
	if len(rec.msgs) != 1 || !strings.Contains(rec.msgs[0], "goroutine leak") {
		t.Fatalf("leak not reported: %q", rec.msgs)
	}
}
