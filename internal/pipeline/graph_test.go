package pipeline

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"adsim/internal/constraint"
	"adsim/internal/scene"
	"adsim/internal/telemetry"
)

// TestGraphEncodesFigure1 pins the declarative topology to the paper's
// dependency law. This is THE topology test: both executors are built from
// this graph, so no second copy of these assertions exists anywhere.
func TestGraphEncodesFigure1(t *testing.T) {
	p, err := NewNative(fastNativeConfig(scene.Urban))
	if err != nil {
		t.Fatal(err)
	}
	g := p.Graph()
	wantDeps := map[StageID][]StageID{
		StageSrc:     nil,
		StageDet:     {StageSrc},
		StageLoc:     {StageSrc},
		StageTra:     {StageDet},
		StageFusion:  {StageTra, StageLoc},
		StageMisplan: {StageLoc},
		StageMotplan: {StageFusion, StageMisplan},
		StageControl: {StageMotplan},
	}
	for id, want := range wantDeps {
		got := g.Deps(id)
		if len(got) != len(want) {
			t.Fatalf("%v deps = %v, want %v", id, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%v deps = %v, want %v", id, got, want)
			}
		}
	}
	topo := g.Topo()
	if len(topo) != int(NumStages) {
		t.Fatalf("topo covers %d stages, want %d", len(topo), NumStages)
	}
	pos := map[StageID]int{}
	for i, id := range topo {
		pos[id] = i
	}
	for id, deps := range wantDeps {
		for _, dep := range deps {
			if pos[dep] >= pos[id] {
				t.Errorf("topo places %v (pos %d) before its dependency %v (pos %d)",
					id, pos[id], dep, pos[dep])
			}
		}
	}
	// Stage names come from the engines' telemetry.Stage adapters and must
	// match the canonical table (finalize enforces it; spot-check here).
	for id := StageID(0); id < NumStages; id++ {
		if got := g.Stages()[id].Engine.StageName(); got != id.String() {
			t.Errorf("stage %v engine names itself %q", id, got)
		}
	}
	if StageID(99).String() == "" {
		t.Error("out-of-range String must not be empty")
	}
}

// TestGraphValidationRejectsBadTopologies drives finalize directly with
// corrupted graphs.
func TestGraphValidationRejectsBadTopologies(t *testing.T) {
	p, err := NewNative(fastNativeConfig(scene.Urban))
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() Graph { return p.buildGraph() }

	corruptions := map[string]func(*Graph){
		"missing body":     func(g *Graph) { g.stages[StageTra].Run = nil },
		"missing engine":   func(g *Graph) { g.stages[StageDet].Engine = nil },
		"missing fallback": func(g *Graph) { g.stages[StageTra].Fallback = nil },
		"missing reads":    func(g *Graph) { g.stages[StageLoc].Reads = nil },
		"missing writes":   func(g *Graph) { g.stages[StageControl].Writes = nil },
		"self loop":        func(g *Graph) { g.stages[StageTra].Deps = []StageID{StageTra} },
		"unknown dep":      func(g *Graph) { g.stages[StageTra].Deps = []StageID{NumStages + 3} },
		"duplicate dep":    func(g *Graph) { g.stages[StageFusion].Deps = []StageID{StageTra, StageTra} },
		"second root":      func(g *Graph) { g.stages[StageTra].Deps = nil },
		"second sink":      func(g *Graph) { g.stages[StageFusion].Deps = []StageID{StageLoc} }, // orphans TRA
		"cycle":            func(g *Graph) { g.stages[StageDet].Deps = []StageID{StageSrc, StageControl} },
		"wrong ID":         func(g *Graph) { g.stages[StageTra].ID = StageDet },
		"terminal output":  func(g *Graph) { g.stages[StageDet].Deps = []StageID{StageControl} },
	}
	for name, corrupt := range corruptions {
		g := fresh()
		corrupt(&g)
		if err := g.finalize(); err == nil {
			t.Errorf("%s: corrupted graph accepted", name)
		}
	}
	// The pristine graph must finalize cleanly.
	g := fresh()
	if err := g.finalize(); err != nil {
		t.Errorf("pristine graph rejected: %v", err)
	}
}

// errInjected is the sentinel the fault-injection tests look for.
var errInjected = errors.New("injected stage fault")

// TestRunnerErrPropagation is the satellite's contract: a frame whose
// mission/motion stage errors is delivered with Err set (and no sealed E2E
// timing), while later frames flow through unaffected. Run under -race
// this also exercises the skip/pass-through path concurrently with healthy
// frames in flight.
func TestRunnerErrPropagation(t *testing.T) {
	const frames = 12
	for _, tc := range []struct {
		name  string
		stage StageID
	}{
		{"misplan", StageMisplan},
		{"motplan", StageMotplan},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewNative(fastNativeConfig(scene.Urban))
			if err != nil {
				t.Fatal(err)
			}
			p.inject = func(stage string, frame int) (time.Duration, error) {
				if stage == tc.stage.String() && frame == 3 {
					return 0, fmt.Errorf("frame %d: %w", frame, errInjected)
				}
				return 0, nil
			}
			r, err := NewRunner(p, RunnerOptions{InFlight: 4})
			if err != nil {
				t.Fatal(err)
			}
			delivered := 0
			for res := range r.Run(frames) {
				i := res.Frame.Index
				if i != delivered {
					t.Fatalf("frame %d delivered at position %d: out of order", i, delivered)
				}
				delivered++
				if i == 3 {
					if !errors.Is(res.Err, errInjected) {
						t.Errorf("frame 3 Err = %v, want injected fault", res.Err)
					}
					if res.Timing.E2E != 0 {
						t.Error("failed frame must not seal an E2E timing")
					}
					continue
				}
				if res.Err != nil {
					t.Errorf("healthy frame %d carries error: %v", i, res.Err)
				}
				if res.Timing.E2E <= 0 {
					t.Errorf("healthy frame %d missing E2E timing", i)
				}
				if len(res.Plan.Path.Waypoints) == 0 && res.Plan.Decision.String() == "" {
					t.Errorf("healthy frame %d missing plan", i)
				}
			}
			if delivered != frames {
				t.Fatalf("delivered %d frames, want %d (errored frame stalled the pipeline?)", delivered, frames)
			}
		})
	}
}

// TestRunnerErrThenStopDrains checks the second half of the satellite:
// with every frame erroring, Stop must still drain the window cleanly and
// close the channel.
func TestRunnerErrThenStopDrains(t *testing.T) {
	p, err := NewNative(fastNativeConfig(scene.Highway))
	if err != nil {
		t.Fatal(err)
	}
	p.inject = func(stage string, frame int) (time.Duration, error) {
		if stage == StageMisplan.String() {
			return 0, errInjected
		}
		return 0, nil
	}
	r, err := NewRunner(p, RunnerOptions{InFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	deadline := time.After(60 * time.Second)
	ch := r.Run(0) // unbounded: only Stop ends the run
	for {
		select {
		case res, ok := <-ch:
			if !ok {
				if delivered < 5 {
					t.Fatalf("only %d frames delivered before close", delivered)
				}
				if delivered > 5+r.InFlight() {
					t.Errorf("%d frames delivered after Stop at 5; window is %d",
						delivered-5, r.InFlight())
				}
				return
			}
			if !errors.Is(res.Err, errInjected) {
				t.Fatalf("frame %d Err = %v, want injected fault", res.Frame.Index, res.Err)
			}
			delivered++
			if delivered == 5 {
				r.Stop()
			}
		case <-deadline:
			t.Fatal("runner failed to drain after Stop with erroring frames")
		}
	}
}

// TestStepErrPropagation mirrors the runner test on the sequential
// executor: same graph, same skip semantics.
func TestStepErrPropagation(t *testing.T) {
	p, err := NewNative(fastNativeConfig(scene.Urban))
	if err != nil {
		t.Fatal(err)
	}
	p.inject = func(stage string, frame int) (time.Duration, error) {
		if stage == StageMotplan.String() && frame == 1 {
			return 0, errInjected
		}
		return 0, nil
	}
	if _, err := p.Step(); err != nil {
		t.Fatalf("frame 0: %v", err)
	}
	res, err := p.Step()
	if !errors.Is(err, errInjected) {
		t.Fatalf("frame 1 err = %v, want injected fault", err)
	}
	if res.Timing.E2E != 0 {
		t.Error("failed frame must not seal an E2E timing")
	}
	res, err = p.Step()
	if err != nil {
		t.Fatalf("frame 2 after fault: %v", err)
	}
	if res.Timing.E2E <= 0 {
		t.Error("frame 2 missing E2E timing")
	}
}

// TestExecutorsEmitEquivalentTelemetry runs the same scenario through Step
// and through the Runner, each with its own collector, and checks both
// emit one span per stage per frame, kernel sub-spans included, plus one
// FrameDone per frame.
func TestExecutorsEmitEquivalentTelemetry(t *testing.T) {
	const frames = 6
	mk := func() (Config, *telemetry.Collector) {
		cfg := fastNativeConfig(scene.Urban)
		col := telemetry.NewCollector(0)
		cfg.Telemetry = col
		return cfg, col
	}

	seqCfg, seqCol := mk()
	seq, err := NewNative(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		if _, err := seq.Step(); err != nil {
			t.Fatal(err)
		}
	}

	pipeCfg, pipeCol := mk()
	pipe, err := NewNative(pipeCfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(pipe, RunnerOptions{InFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	for res := range r.Run(frames) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}

	for _, col := range []*telemetry.Collector{seqCol, pipeCol} {
		for id := StageID(0); id < NumStages; id++ {
			if got := col.SpanCount(id.String()); got != frames {
				t.Errorf("stage %v recorded %d spans, want %d", id, got, frames)
			}
		}
		if got := col.Frames(); got != frames {
			t.Errorf("collector saw %d frames, want %d", got, frames)
		}
		// LOC's feature-extraction kernel runs every frame.
		if got := col.SpanCount("LOC/fe"); got != frames {
			t.Errorf("LOC/fe sub-spans = %d, want %d", got, frames)
		}
		// Stage execution must account for a nonzero share of wall time.
		if col.ExecSumMs("LOC") <= 0 || col.ExecSumMs("LOC/fe") <= 0 {
			t.Error("LOC exec sums missing")
		}
		if col.ExecSumMs("LOC/fe") > col.ExecSumMs("LOC") {
			t.Error("LOC/fe kernel sum exceeds LOC stage sum")
		}
	}
}

// TestRunnerFeedsLiveMonitor wires the live constraint monitor as the
// runner's sink — the always-on deployment shape — and checks it folds
// every delivered frame.
func TestRunnerFeedsLiveMonitor(t *testing.T) {
	const frames = 8
	cfg := fastNativeConfig(scene.Highway)
	mon := constraint.NewMonitor(constraint.MonitorConfig{Window: 64})
	col := telemetry.NewCollector(0)
	cfg.Telemetry = telemetry.Multi(col, mon)
	p, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, RunnerOptions{InFlight: 3})
	if err != nil {
		t.Fatal(err)
	}
	for res := range r.Run(frames) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	snap := mon.Snapshot()
	if snap.Total != frames {
		t.Errorf("monitor folded %d frames, want %d", snap.Total, frames)
	}
	if snap.TailMs <= 0 || snap.FPS <= 0 {
		t.Errorf("monitor measurements empty: %+v", snap)
	}
	// Native tiny-scale frames on a dev machine won't satisfy the 20001
	// sample floor; predictability must therefore be failing, honestly.
	if snap.Predictability.Passed {
		t.Error("predictability cannot pass with 8 samples")
	}
	if col.Frames() != frames {
		t.Errorf("collector saw %d frames", col.Frames())
	}
}
