//go:build !race

package pipeline

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
