package pipeline

import (
	"fmt"
	"time"

	"adsim/internal/telemetry"
)

// This file is the single source of truth for the pipeline's topology: the
// declarative stage graph encoding the paper's Figure 1 dependency law.
// Both executors are constructed from it — the sequential Step loop runs
// the graph one frame at a time (stages still overlap within the frame
// wherever the graph allows), and the pipelined Runner turns each stage
// into a long-lived goroutine with one channel per graph edge. Neither
// executor hard-codes an ordering of its own, so the topology, the
// ordering guarantees, and the determinism test live in exactly one place.
//
//	SRC ─┬─► DET ──► TRA ──┐
//	     └─► LOC ──┬───────┴─► FUSION ──┐
//	               └─► MISPLAN ─────────┴─► MOTPLAN ──► CONTROL
//
// Determinism: every stateful engine is pinned to exactly one stage, and
// both executors run each stage over frames in admission order, so results
// are bitwise-identical across executors and in-flight window sizes.

// StageID identifies one stage of the graph. The declaration order is a
// valid topological order (validated at construction), which the executors
// and error reporting rely on.
type StageID int

const (
	StageSrc StageID = iota
	StageDet
	StageLoc
	StageTra
	StageFusion
	StageMisplan
	StageMotplan
	StageControl
	NumStages
)

// stageNames are the canonical names. Graph validation cross-checks each
// engine's telemetry.Stage adapter against this table, so a span's stage
// label, the graph, and the engine can never disagree.
var stageNames = [NumStages]string{
	"SRC", "DET", "LOC", "TRA", "FUSION", "MISPLAN", "MOTPLAN", "CONTROL",
}

func (id StageID) String() string {
	if id < 0 || id >= NumStages {
		return fmt.Sprintf("stage(%d)", int(id))
	}
	return stageNames[id]
}

// StageSpec declares one stage: the engine behind it (its telemetry.Stage
// adapter supplies the canonical name), the stages it depends on, and the
// per-frame body.
type StageSpec struct {
	ID     StageID
	Engine telemetry.Stage
	Deps   []StageID
	Run    func(*frameState) error
}

// Graph is a validated declarative stage graph.
type Graph struct {
	stages [NumStages]StageSpec
	topo   []StageID
}

// Stages returns the stage declarations indexed by StageID.
func (g *Graph) Stages() [NumStages]StageSpec { return g.stages }

// Topo returns a deterministic topological order (ascending StageID among
// ready stages).
func (g *Graph) Topo() []StageID { return g.topo }

// Deps returns the declared dependencies of a stage.
func (g *Graph) Deps(id StageID) []StageID { return g.stages[id].Deps }

// successors inverts the dependency edges: successors()[s] lists every
// stage that consumes s's output, in ascending StageID order.
func (g *Graph) successors() [NumStages][]StageID {
	var out [NumStages][]StageID
	for id := StageID(0); id < NumStages; id++ {
		for _, dep := range g.stages[id].Deps {
			out[dep] = append(out[dep], id)
		}
	}
	return out
}

// finalize validates the graph and computes its topological order:
// every stage declared with a body and a name matching the canonical
// table, dependencies in range without duplicates or self-loops, the
// whole graph acyclic with SRC as the only root and CONTROL as the only
// sink, and every stage reachable from SRC.
func (g *Graph) finalize() error {
	indeg := [NumStages]int{}
	for id := StageID(0); id < NumStages; id++ {
		s := g.stages[id]
		if s.ID != id {
			return fmt.Errorf("pipeline: stage %v declared with ID %v", id, s.ID)
		}
		if s.Run == nil {
			return fmt.Errorf("pipeline: stage %v has no body", id)
		}
		if s.Engine == nil {
			return fmt.Errorf("pipeline: stage %v has no engine", id)
		}
		if got, want := s.Engine.StageName(), id.String(); got != want {
			return fmt.Errorf("pipeline: stage %v engine names itself %q", id, got)
		}
		seen := map[StageID]bool{}
		for _, dep := range s.Deps {
			if dep < 0 || dep >= NumStages {
				return fmt.Errorf("pipeline: stage %v depends on unknown stage %d", id, int(dep))
			}
			if dep == id {
				return fmt.Errorf("pipeline: stage %v depends on itself", id)
			}
			if seen[dep] {
				return fmt.Errorf("pipeline: stage %v lists dependency %v twice", id, dep)
			}
			seen[dep] = true
		}
		indeg[id] = len(s.Deps)
		if len(s.Deps) == 0 && id != StageSrc {
			return fmt.Errorf("pipeline: stage %v has no dependencies; only %v may be a root", id, StageSrc)
		}
	}

	succ := g.successors()
	for id := StageID(0); id < NumStages; id++ {
		if len(succ[id]) == 0 && id != StageControl {
			return fmt.Errorf("pipeline: stage %v has no consumers; only %v may be the sink", id, StageControl)
		}
	}
	if len(succ[StageControl]) != 0 {
		return fmt.Errorf("pipeline: %v must be the terminal stage", StageControl)
	}

	// Kahn's algorithm with ascending-StageID tie-break: deterministic, and
	// detects cycles (not all stages drained).
	g.topo = g.topo[:0]
	ready := []StageID{StageSrc}
	deg := indeg
	for len(ready) > 0 {
		// Pop the smallest ready StageID.
		min := 0
		for i := range ready {
			if ready[i] < ready[min] {
				min = i
			}
		}
		id := ready[min]
		ready = append(ready[:min], ready[min+1:]...)
		g.topo = append(g.topo, id)
		for _, nxt := range succ[id] {
			deg[nxt]--
			if deg[nxt] == 0 {
				ready = append(ready, nxt)
			}
		}
	}
	if len(g.topo) != int(NumStages) {
		return fmt.Errorf("pipeline: stage graph is cyclic or disconnected (%d/%d stages ordered)",
			len(g.topo), NumStages)
	}
	return nil
}

// frameState carries one frame through the stage graph. Stages write
// disjoint FrameResult fields; cross-stage visibility is ordered by the
// executors (done-channel close in Step, channel send in Runner), so
// concurrent stages of the same frame never touch the same memory.
type frameState struct {
	admitted time.Time
	res      FrameResult
	// doneAt stamps each stage's completion; a consumer stage derives its
	// queue wait as (execution start − latest dependency completion).
	doneAt [NumStages]time.Time
	// failed marks stages that errored or were skipped because an upstream
	// stage failed; errs holds each stage's own error.
	failed [NumStages]bool
	errs   [NumStages]error
	// targetSpeed is MISPLAN's per-frame guidance-shaped speed for MOTPLAN
	// (the leg speed limit cap and stop-line ramp); <= 0 keeps the
	// planner's configured target speed.
	targetSpeed float64
}

// err returns the frame's first error in stage order, if any.
func (fs *frameState) err() error {
	for id := StageID(0); id < NumStages; id++ {
		if e := fs.errs[id]; e != nil {
			return e
		}
	}
	return nil
}

// execStage runs one stage of the graph for one frame. It is the single
// stage executor both Step and Runner go through: upstream-failure
// skipping, the test-only fault-injection hook, and queue/exec span
// emission all live here. The caller must have ordered every dependency's
// completion before this call.
func (p *Pipeline) execStage(spec StageSpec, fs *frameState) {
	ready := fs.admitted
	failed := false
	for _, dep := range spec.Deps {
		if t := fs.doneAt[dep]; t.After(ready) {
			ready = t
		}
		if fs.failed[dep] {
			failed = true
		}
	}
	if !failed {
		start := time.Now()
		var err error
		if p.inject != nil {
			err = p.inject(spec.ID, fs.res.Frame.Index)
		}
		if err == nil {
			err = spec.Run(fs)
		}
		if err != nil {
			fs.errs[spec.ID] = err
			failed = true
		}
		p.sink.Span(telemetry.Span{
			Stage: spec.Engine.StageName(),
			Frame: fs.res.Frame.Index,
			Queue: start.Sub(ready),
			Exec:  time.Since(start),
		})
	}
	fs.failed[spec.ID] = failed
	fs.doneAt[spec.ID] = time.Now()
}

// runFrame executes the whole graph for one frame: one goroutine per
// stage, each starting the moment its dependencies finish. This is the
// sequential executor's body — DET and LOC overlap within the frame
// exactly as Figure 1 allows, but only one frame is in flight.
func (p *Pipeline) runFrame(fs *frameState) {
	var done [NumStages]chan struct{}
	for i := range done {
		done[i] = make(chan struct{})
	}
	for _, id := range p.g.topo {
		spec := p.g.stages[id]
		go func() {
			for _, dep := range spec.Deps {
				<-done[dep]
			}
			p.execStage(spec, fs)
			close(done[spec.ID])
		}()
	}
	// CONTROL is the graph's only sink (validated), so its completion
	// transitively orders every stage's.
	<-done[StageControl]
}
