package pipeline

import (
	"fmt"
	"sync/atomic"
	"time"

	"adsim/internal/telemetry"
)

// This file is the single source of truth for the pipeline's topology: the
// declarative stage graph encoding the paper's Figure 1 dependency law.
// Both executors are constructed from it — the sequential Step loop runs
// the graph one frame at a time (stages still overlap within the frame
// wherever the graph allows), and the pipelined Runner turns each stage
// into a long-lived goroutine with one channel per graph edge. Neither
// executor hard-codes an ordering of its own, so the topology, the
// ordering guarantees, and the determinism test live in exactly one place.
//
//	SRC ─┬─► DET ──► TRA ──┐
//	     └─► LOC ──┬───────┴─► FUSION ──┐
//	               └─► MISPLAN ─────────┴─► MOTPLAN ──► CONTROL
//
// Determinism: every stateful engine is pinned to exactly one stage, and
// both executors run each stage over frames in admission order, so results
// are bitwise-identical across executors and in-flight window sizes.

// StageID identifies one stage of the graph. The declaration order is a
// valid topological order (validated at construction), which the executors
// and error reporting rely on.
type StageID int

const (
	StageSrc StageID = iota
	StageDet
	StageLoc
	StageTra
	StageFusion
	StageMisplan
	StageMotplan
	StageControl
	NumStages
)

// stageNames are the canonical names. Graph validation cross-checks each
// engine's telemetry.Stage adapter against this table, so a span's stage
// label, the graph, and the engine can never disagree.
var stageNames = [NumStages]string{
	"SRC", "DET", "LOC", "TRA", "FUSION", "MISPLAN", "MOTPLAN", "CONTROL",
}

func (id StageID) String() string {
	if id < 0 || id >= NumStages {
		return fmt.Sprintf("stage(%d)", int(id))
	}
	return stageNames[id]
}

// StageSpec declares one stage: the engine behind it (its telemetry.Stage
// adapter supplies the canonical name), the stages it depends on, the
// per-frame body, and the deadline-layer adapters.
//
// The Reads/Writes pair is the copy discipline that lets a budget-blown
// attempt keep running after the frame has moved on: Reads copies the
// stage's dependency-produced inputs from the frame into a private attempt
// state, Writes commits only this stage's own output fields back. Both
// touch exclusively fields this stage reads or owns, so a late attempt
// never races the concurrent same-frame stages (DET ∥ LOC ∥ MISPLAN under
// the Runner) or the delivered frame.
type StageSpec struct {
	ID     StageID
	Engine telemetry.Stage
	Deps   []StageID
	Run    func(*frameState) error

	// Reads copies the stage's inputs (fields produced by its transitive
	// dependencies, which are all complete when the stage starts) from src
	// into dst. Required for every stage but SRC.
	Reads func(dst, src *frameState)
	// Writes commits the stage's own output fields from src (a completed
	// attempt) into dst (the live frame). Required for every stage but SRC.
	Writes func(dst, src *frameState)
	// Fallback writes the stage's degraded-mode outputs into fs when its
	// budget is blown: held previous outputs, a motion-model pose, or
	// nothing (DET, whose degraded mode is the absence of detections).
	// Required for every stage but SRC.
	Fallback func(fs *frameState)
	// Held, when set, records the stage's outputs after a successful
	// execution as the hold state a later Fallback replays. Called from
	// the stage's own execution context only, so it needs no locking.
	Held func(fs *frameState)
	// Anytime marks a stage whose body supports an anytime early exit
	// under DeadlinePolicy.Anytime (DET): when its budget is nearly spent
	// the body stops the network at a layer boundary and commits a coarser
	// on-time result instead of missing. The body reads the exit signal
	// from the frame state (detDeadline under wall-clock enforcement,
	// anytimeFrac under virtual) and reports the exit via frameState.anytime.
	Anytime bool
}

// Graph is a validated declarative stage graph.
type Graph struct {
	stages [NumStages]StageSpec
	topo   []StageID
}

// Stages returns the stage declarations indexed by StageID.
func (g *Graph) Stages() [NumStages]StageSpec { return g.stages }

// Topo returns a deterministic topological order (ascending StageID among
// ready stages).
func (g *Graph) Topo() []StageID { return g.topo }

// Deps returns the declared dependencies of a stage.
func (g *Graph) Deps(id StageID) []StageID { return g.stages[id].Deps }

// successors inverts the dependency edges: successors()[s] lists every
// stage that consumes s's output, in ascending StageID order.
func (g *Graph) successors() [NumStages][]StageID {
	var out [NumStages][]StageID
	for id := StageID(0); id < NumStages; id++ {
		for _, dep := range g.stages[id].Deps {
			out[dep] = append(out[dep], id)
		}
	}
	return out
}

// finalize validates the graph and computes its topological order:
// every stage declared with a body and a name matching the canonical
// table, dependencies in range without duplicates or self-loops, the
// whole graph acyclic with SRC as the only root and CONTROL as the only
// sink, and every stage reachable from SRC.
func (g *Graph) finalize() error {
	indeg := [NumStages]int{}
	for id := StageID(0); id < NumStages; id++ {
		s := g.stages[id]
		if s.ID != id {
			return fmt.Errorf("pipeline: stage %v declared with ID %v", id, s.ID)
		}
		if s.Run == nil {
			return fmt.Errorf("pipeline: stage %v has no body", id)
		}
		if s.Engine == nil {
			return fmt.Errorf("pipeline: stage %v has no engine", id)
		}
		if id != StageSrc && (s.Reads == nil || s.Writes == nil || s.Fallback == nil) {
			return fmt.Errorf("pipeline: stage %v is missing deadline adapters (Reads/Writes/Fallback)", id)
		}
		if got, want := s.Engine.StageName(), id.String(); got != want {
			return fmt.Errorf("pipeline: stage %v engine names itself %q", id, got)
		}
		seen := map[StageID]bool{}
		for _, dep := range s.Deps {
			if dep < 0 || dep >= NumStages {
				return fmt.Errorf("pipeline: stage %v depends on unknown stage %d", id, int(dep))
			}
			if dep == id {
				return fmt.Errorf("pipeline: stage %v depends on itself", id)
			}
			if seen[dep] {
				return fmt.Errorf("pipeline: stage %v lists dependency %v twice", id, dep)
			}
			seen[dep] = true
		}
		indeg[id] = len(s.Deps)
		if len(s.Deps) == 0 && id != StageSrc {
			return fmt.Errorf("pipeline: stage %v has no dependencies; only %v may be a root", id, StageSrc)
		}
	}

	succ := g.successors()
	for id := StageID(0); id < NumStages; id++ {
		if len(succ[id]) == 0 && id != StageControl {
			return fmt.Errorf("pipeline: stage %v has no consumers; only %v may be the sink", id, StageControl)
		}
	}
	if len(succ[StageControl]) != 0 {
		return fmt.Errorf("pipeline: %v must be the terminal stage", StageControl)
	}

	// Kahn's algorithm with ascending-StageID tie-break: deterministic, and
	// detects cycles (not all stages drained).
	g.topo = g.topo[:0]
	ready := []StageID{StageSrc}
	deg := indeg
	for len(ready) > 0 {
		// Pop the smallest ready StageID.
		min := 0
		for i := range ready {
			if ready[i] < ready[min] {
				min = i
			}
		}
		id := ready[min]
		ready = append(ready[:min], ready[min+1:]...)
		g.topo = append(g.topo, id)
		for _, nxt := range succ[id] {
			deg[nxt]--
			if deg[nxt] == 0 {
				ready = append(ready, nxt)
			}
		}
	}
	if len(g.topo) != int(NumStages) {
		return fmt.Errorf("pipeline: stage graph is cyclic or disconnected (%d/%d stages ordered)",
			len(g.topo), NumStages)
	}
	return nil
}

// frameState carries one frame through the stage graph. Stages write
// disjoint FrameResult fields; cross-stage visibility is ordered by the
// executors (done-channel close in Step, channel send in Runner), so
// concurrent stages of the same frame never touch the same memory.
type frameState struct {
	admitted time.Time
	res      FrameResult
	// doneAt stamps each stage's completion; a consumer stage derives its
	// queue wait as (execution start − latest dependency completion).
	doneAt [NumStages]time.Time
	// failed marks stages that errored or were skipped because an upstream
	// stage failed; errs holds each stage's own error.
	failed [NumStages]bool
	errs   [NumStages]error
	// targetSpeed is MISPLAN's per-frame guidance-shaped speed for MOTPLAN
	// (the leg speed limit cap and stop-line ramp); <= 0 keeps the
	// planner's configured target speed.
	targetSpeed float64
	// detSize is the DET input resolution the tail scheduler's ladder
	// committed for this frame at admission (0 = the detector's configured
	// size). Stamped before SRC runs and read only by DET, so the
	// executors' frame hand-off is all the ordering it needs. Resolution
	// changes never alter the functional detection set (detect.BudgetOpts),
	// which is why a wall-clock-driven ladder preserves Step/Runner
	// bitwise equivalence.
	detSize int
	// detDeadline and anytimeFrac are DET's anytime-exit signals, set by
	// runStage when the policy arms them: detDeadline is the guarded
	// wall-clock finish line (wall enforcement), anytimeFrac the
	// deterministic completed-budget fraction (virtual enforcement).
	// anytime reports back that the body actually exited early; DET's
	// Writes adapter carries it from a raced attempt to the live frame.
	detDeadline time.Time
	anytimeFrac float64
	anytime     bool
	// degraded accumulates the frame's DegradedMask bits. Atomic because
	// concurrent same-frame stages (DET ∥ LOC) may both miss their budget;
	// the executors seal it into res.Degraded at delivery.
	degraded atomic.Uint32
}

// markDegraded sets the stage's bit in the frame's degraded mask.
// A CAS loop rather than atomic.Or: the module targets go 1.22, which
// predates Uint32.Or.
func (fs *frameState) markDegraded(id StageID) {
	fs.orDegraded(uint32(1) << uint(id))
}

// markAnytime sets the mask's anytime bit (DET committed an early-exited
// coarser result on time).
func (fs *frameState) markAnytime() {
	fs.orDegraded(uint32(1) << anytimeBit)
}

func (fs *frameState) orDegraded(bit uint32) {
	for {
		old := fs.degraded.Load()
		if old&bit != 0 || fs.degraded.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

// err returns the frame's first error in stage order, if any.
func (fs *frameState) err() error {
	for id := StageID(0); id < NumStages; id++ {
		if e := fs.errs[id]; e != nil {
			return e
		}
	}
	return nil
}

// execStage runs one stage of the graph for one frame. It is the single
// stage executor both Step and Runner go through: upstream-failure
// skipping, fault injection, deadline enforcement with degraded fallback,
// and queue/exec span emission all live here. The caller must have ordered
// every dependency's completion before this call, and the executor
// guarantees each stage sees frames strictly in admission order.
func (p *Pipeline) execStage(spec StageSpec, fs *frameState) {
	ready := fs.admitted
	failed := false
	for _, dep := range spec.Deps {
		if t := fs.doneAt[dep]; t.After(ready) {
			ready = t
		}
		if fs.failed[dep] {
			failed = true
		}
	}
	if !failed {
		failed = p.runStage(spec, fs, ready)
	}
	fs.failed[spec.ID] = failed
	fs.doneAt[spec.ID] = time.Now()
}

// runStage executes one stage body under the fault-injection and deadline
// policies and reports whether the stage failed. Four paths:
//
//   - injected hard error: the stage fails (the frame delivers with Err);
//   - enforcement off (or the stage unbudgeted): run the body, sleeping
//     any injected delay first;
//   - virtual enforcement: charge only the injected delay against the
//     budget, decide miss without timers, and still run the body
//     synchronously (output discarded on miss) so engine state evolves
//     exactly as under wall-clock enforcement;
//   - wall-clock enforcement: write the fallback, race the attempt (on a
//     private copy of the inputs) against the budget timer, and on a miss
//     abandon the attempt to the stage's pending slot — the stage's next
//     frame drains it before touching the engine again.
func (p *Pipeline) runStage(spec StageSpec, fs *frameState, ready time.Time) bool {
	// A previous frame of this stage may have abandoned a late attempt;
	// it must finish before the engine is touched again. Pending slots are
	// only accessed from the stage's own execution context, so no lock.
	p.drainStage(spec.ID)

	start := time.Now()
	frame := fs.res.Frame.Index
	var err error
	missed := false
	charged := time.Duration(0) // extra virtual time charged to the stage

	if spec.ID == StageSrc {
		// SRC renders first so the injector's decision keys on the real
		// frame index (the generator assigns it inside the body). SRC has
		// no budget: an injected error is a dropped frame, an injected
		// delay models a stalled camera.
		err = spec.Run(fs)
		frame = fs.res.Frame.Index
		if err == nil && p.inject != nil {
			delay, ierr := p.inject(spec.ID.String(), frame)
			if delay > 0 {
				if p.deadline.Virtual {
					charged = delay
				} else {
					time.Sleep(delay)
				}
			}
			err = ierr
		}
	} else {
		var delay time.Duration
		if p.inject != nil {
			delay, err = p.inject(spec.ID.String(), frame)
		}
		budget := p.budgets[spec.ID]
		switch {
		case err != nil:
			// Injected hard fault: fail the stage outright.
		case budget <= 0:
			// Unbudgeted (or enforcement off): delays ride the frame.
			if delay > 0 {
				if p.deadline.Virtual {
					charged = delay
				} else {
					time.Sleep(delay)
				}
			}
			err = spec.Run(fs)
		case p.deadline.Virtual:
			charged = delay
			if delay > budget {
				missed = true
				spec.Fallback(fs)
				att := &frameState{admitted: fs.admitted}
				spec.Reads(att, fs)
				spec.Run(att) // engine state advances as under wall mode; output discarded
			} else {
				if spec.Anytime && p.deadline.Anytime && 2*delay > budget {
					// Deterministic anytime rule: more than half the budget
					// consumed by the injected stall ⇒ the body exits early
					// at the remaining-budget fraction. A pure function of
					// (scenario, stage, frame), so virtual runs stay
					// bitwise-reproducible.
					fs.anytimeFrac = 1 - float64(delay)/float64(budget)
				}
				err = spec.Run(fs)
			}
		default:
			if spec.Anytime && p.deadline.Anytime {
				// Arm the body's anytime exit: the guarded slice of the
				// budget is the finish line for network work, the rest is
				// reserved for the body's pre/post-processing so an early
				// exit still commits before the miss timer below.
				fs.detDeadline = time.Now().Add(budget - time.Duration(AnytimeGuardFrac*float64(budget)))
			}
			spec.Fallback(fs)
			att := &frameState{admitted: fs.admitted}
			spec.Reads(att, fs)
			attDone := make(chan struct{})
			var attErr error
			go func() {
				defer close(attDone)
				if delay > 0 {
					time.Sleep(delay)
				}
				attErr = spec.Run(att)
			}()
			timer := time.NewTimer(budget)
			select {
			case <-attDone:
				timer.Stop()
				if attErr != nil {
					err = attErr
				} else {
					spec.Writes(fs, att)
				}
			case <-timer.C:
				missed = true
				p.pending[spec.ID] = attDone
			}
		}
		if err == nil && !missed && spec.Held != nil {
			spec.Held(fs)
		}
	}

	if missed {
		fs.markDegraded(spec.ID)
		p.met.miss.Inc()
		p.met.stageMiss[spec.ID].Inc()
	}
	if spec.Anytime && fs.anytime && !missed {
		// The body exited early and its (possibly raced) attempt committed
		// in time: a coarser on-time frame, not a miss.
		fs.markAnytime()
		p.met.anytime.Inc()
	}
	if err != nil {
		fs.errs[spec.ID] = err
	}
	if p.deadline.Enforce && spec.ID != StageSrc {
		p.met.stageMS[spec.ID].Observe(float64(time.Since(start)+charged) / 1e6)
	}
	p.sink.Span(telemetry.Span{
		Stage: spec.Engine.StageName(),
		Frame: frame,
		Queue: start.Sub(ready),
		Exec:  time.Since(start) + charged,
	})
	return err != nil
}

// drainStage blocks until the stage's abandoned late attempt, if any, has
// finished. Must be called from the stage's execution context (or with the
// pipeline quiescent, as Drain does).
func (p *Pipeline) drainStage(id StageID) {
	if ch := p.pending[id]; ch != nil {
		<-ch
		p.pending[id] = nil
	}
}

// sealFrame freezes the frame's degraded mask into the result at delivery
// time and counts degraded frames. Called exactly once per frame, by the
// delivering executor.
func (p *Pipeline) sealFrame(fs *frameState) {
	mask := DegradedMask(fs.degraded.Load())
	fs.res.Degraded = mask
	if mask.Any() {
		p.met.degraded.Inc()
	}
}

// runFrame executes the whole graph for one frame: one goroutine per
// stage, each starting the moment its dependencies finish. This is the
// sequential executor's body — DET and LOC overlap within the frame
// exactly as Figure 1 allows, but only one frame is in flight.
func (p *Pipeline) runFrame(fs *frameState) {
	var done [NumStages]chan struct{}
	for i := range done {
		done[i] = make(chan struct{})
	}
	for _, id := range p.g.topo {
		spec := p.g.stages[id]
		go func() {
			for _, dep := range spec.Deps {
				<-done[dep]
			}
			p.execStage(spec, fs)
			close(done[spec.ID])
		}()
	}
	// CONTROL is the graph's only sink (validated), so its completion
	// transitively orders every stage's.
	<-done[StageControl]
}
