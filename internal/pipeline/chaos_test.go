package pipeline

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"adsim/internal/faultinject"
	"adsim/internal/scene"
	"adsim/internal/slam"
	"adsim/internal/testutil"
)

// This file is the chaos harness: seeded fault scenarios driven through
// BOTH executors, asserting they deliver bitwise-identical results and
// DegradedMask sequences, plus the wall-clock acceptance tests (a frame
// whose DET stage stalls past budget still delivers inside the frame
// deadline, in TRA-only mode) and the golden-trace regression diff.
//
// Determinism scenarios run under DeadlinePolicy.Virtual: only injected
// delays are charged against budgets and no timers race, so the
// miss/degrade sequence is a pure function of (scenario, seed) — identical
// across executors, schedulers and machines.

// chaosRun is one executor's delivered sequence under a scenario.
type chaosRun struct {
	results []FrameResult
	masks   []DegradedMask
	errs    []string
}

// chaosConfig builds a virtual-enforcement config wired to a fresh
// injector for the scenario spec.
func chaosConfig(t *testing.T, kind scene.Kind, spec string, seed int64) Config {
	t.Helper()
	cfg := fastNativeConfig(kind)
	cfg.Deadline = DeadlinePolicy{Enforce: true, Virtual: true}
	inj, err := faultinject.New(faultinject.MustParse(spec, seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Inject = inj.Stage
	return cfg
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// runChaosStep drives the sequential executor for frames steps, collecting
// results, masks and error strings (injected frame drops and stage errors
// are expected, not fatal).
func runChaosStep(t *testing.T, cfg Config, frames int) chaosRun {
	t.Helper()
	p, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var run chaosRun
	for i := 0; i < frames; i++ {
		res, err := p.Step()
		run.results = append(run.results, stripSchedule(res))
		run.masks = append(run.masks, res.Degraded)
		run.errs = append(run.errs, errString(err))
	}
	p.Drain()
	return run
}

// runChaosRunner drives the pipelined executor for the same scenario.
func runChaosRunner(t *testing.T, cfg Config, frames, inflight int) chaosRun {
	t.Helper()
	p, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, RunnerOptions{InFlight: inflight})
	if err != nil {
		t.Fatal(err)
	}
	var run chaosRun
	for res := range r.Run(frames) {
		run.results = append(run.results, stripSchedule(res.FrameResult))
		run.masks = append(run.masks, res.Degraded)
		run.errs = append(run.errs, errString(res.Err))
	}
	return run
}

// requireIdenticalRuns asserts two executors delivered bitwise-identical
// result + DegradedMask + error sequences.
func requireIdenticalRuns(t *testing.T, seq, pipe chaosRun) {
	t.Helper()
	if len(seq.results) != len(pipe.results) {
		t.Fatalf("Step delivered %d frames, Runner %d", len(seq.results), len(pipe.results))
	}
	for i := range seq.results {
		if seq.masks[i] != pipe.masks[i] {
			t.Errorf("frame %d: Step mask %v, Runner mask %v", i, seq.masks[i], pipe.masks[i])
		}
		if seq.errs[i] != pipe.errs[i] {
			t.Errorf("frame %d: Step err %q, Runner err %q", i, seq.errs[i], pipe.errs[i])
		}
		if !reflect.DeepEqual(seq.results[i], pipe.results[i]) {
			t.Errorf("frame %d: results diverge between executors", i)
		}
	}
}

// TestChaosStepRunnerEquivalence is the chaos suite's core contract: under
// a seeded fault scenario (slow DET, bursty LOC stalls, planner faults,
// dropped frames, probabilistic mixes) the sequential Step loop and the
// pipelined Runner deliver identical result + DegradedMask sequences.
// Run under -race this also exercises the degraded fallback paths
// concurrently with healthy frames in flight.
func TestChaosStepRunnerEquivalence(t *testing.T) {
	const frames = 24
	cases := []struct {
		name string
		kind scene.Kind
		spec string
		seed int64
		// check runs scenario-specific semantic assertions on the (already
		// equivalence-checked) sequential run.
		check func(t *testing.T, run chaosRun)
	}{
		{
			name: "slow-det",
			kind: scene.Urban,
			spec: "DET:delay=50ms:every=3",
			seed: 1,
			check: func(t *testing.T, run chaosRun) {
				for i, m := range run.masks {
					wantDet := i%3 == 0
					if m.Has(StageDet) != wantDet {
						t.Errorf("frame %d: DET degraded=%v, want %v", i, m.Has(StageDet), wantDet)
					}
					if wantDet && run.results[i].Detections != nil {
						t.Errorf("frame %d: degraded DET frame still carries detections", i)
					}
				}
			},
		},
		{
			name: "bursty-loc",
			kind: scene.Urban,
			spec: "LOC:delay=80ms:every=7:burst=3",
			seed: 2,
			check: func(t *testing.T, run chaosRun) {
				for i, m := range run.masks {
					wantLoc := i%7 < 3
					if m.Has(StageLoc) != wantLoc {
						t.Errorf("frame %d: LOC degraded=%v, want %v", i, m.Has(StageLoc), wantLoc)
					}
					pose := run.results[i].Pose
					if wantLoc && (!pose.Stale || pose.Tracked) {
						t.Errorf("frame %d: degraded LOC frame pose = %+v, want stale untracked", i, pose)
					}
					if !wantLoc && pose.Stale {
						t.Errorf("frame %d: clean LOC frame flagged stale", i)
					}
				}
			},
		},
		{
			name: "plan-stall",
			kind: scene.Highway,
			spec: "MOTPLAN:delay=40ms:every=5,FUSION:delay=20ms:every=4",
			seed: 3,
			check: func(t *testing.T, run chaosRun) {
				for i, m := range run.masks {
					if m.Has(StageMotplan) && i > 0 && !m.Has(StageFusion) {
						// Previous-plan hold: the degraded frame replays the
						// last committed plan.
						prev := run.results[i-1].Plan
						if !reflect.DeepEqual(run.results[i].Plan, prev) {
							t.Errorf("frame %d: MOTPLAN hold does not match previous plan", i)
						}
					}
				}
			},
		},
		{
			name: "dropped-frames",
			kind: scene.Urban,
			spec: "SRC:drop:every=6",
			seed: 4,
			check: func(t *testing.T, run chaosRun) {
				for i, e := range run.errs {
					wantDrop := i%6 == 0
					if wantDrop == (e == "") {
						t.Errorf("frame %d: err=%q, want dropped=%v", i, e, wantDrop)
					}
					if wantDrop && !strings.Contains(e, "injected fault") {
						t.Errorf("frame %d: drop error %q missing sentinel", i, e)
					}
				}
			},
		},
		{
			name: "mixed-probabilistic",
			kind: scene.Urban,
			spec: "DET:delay=50ms:every=4,LOC:delay=90ms:p=0.4,MOTPLAN:err:frames=9-10,SRC:drop:every=13",
			seed: 5,
			check: func(t *testing.T, run chaosRun) {
				degraded := 0
				for _, m := range run.masks {
					if m.Any() {
						degraded++
					}
				}
				if degraded == 0 {
					t.Error("mixed scenario produced no degraded frames")
				}
				for _, i := range []int{9, 10} {
					if !strings.Contains(run.errs[i], "MOTPLAN fault") {
						t.Errorf("frame %d: err=%q, want MOTPLAN fault", i, run.errs[i])
					}
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := runChaosStep(t, chaosConfig(t, tc.kind, tc.spec, tc.seed), frames)
			pipe := runChaosRunner(t, chaosConfig(t, tc.kind, tc.spec, tc.seed), frames, 4)
			requireIdenticalRuns(t, seq, pipe)
			if tc.check != nil {
				tc.check(t, seq)
			}
		})
	}
}

// TestChaosFlakyShardStoreIO drives the I/O fault seam: the localizer's
// prior map lives in an on-disk shard store whose opens flow through the
// injector, with a cache budget small enough to force reloads. Both
// executors must see the identical fault sequence (the store is read from
// exactly one stage, so access ordinals line up) and deliver identical
// poses, while the store records the failures as transient degradation.
func TestChaosFlakyShardStoreIO(t *testing.T) {
	base := fastNativeConfig(scene.Urban)
	base.SurveyFrames = 0 // the shard store IS the survey

	// Survey the same scenario into a monolithic map, then shard it.
	gen, err := scene.New(base.Scene)
	if err != nil {
		t.Fatal(err)
	}
	surveyEng, err := slam.NewEngine(base.SLAM, slam.NewPriorMap())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		f := gen.Step()
		surveyEng.Survey(f.Image, f.EgoPose)
	}
	dir := t.TempDir()
	if _, err := slam.WriteShards(surveyEng.Map(), dir, 8); err != nil {
		t.Fatal(err)
	}

	const spec = "IO:err:p=0.35,DET:delay=50ms:every=5"
	const frames = 20
	var stores []*slam.ShardStore
	mkCfg := func() Config {
		inj, err := faultinject.New(faultinject.MustParse(spec, 11))
		if err != nil {
			t.Fatal(err)
		}
		store, err := slam.OpenShardStore(dir, slam.ShardStoreOptions{
			CacheBudget: 1, // floor of one resident tile: every boundary crossing reloads
			Open:        inj.OpenFile,
		})
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, store)
		cfg := base
		cfg.MapStore = store
		cfg.Deadline = DeadlinePolicy{Enforce: true, Virtual: true}
		cfg.Inject = inj.Stage
		return cfg
	}

	seq := runChaosStep(t, mkCfg(), frames)
	pipe := runChaosRunner(t, mkCfg(), frames, 4)
	requireIdenticalRuns(t, seq, pipe)

	for i, store := range stores {
		cs := store.CacheStats()
		if cs.IOErrors == 0 {
			t.Errorf("store %d saw no injected I/O errors (misses=%d)", i, cs.Misses)
		}
		if err := store.Err(); !errors.Is(err, faultinject.ErrInjected) {
			t.Errorf("store %d Err = %v, want injected fault record", i, err)
		}
	}
	// Flaky I/O degrades localization coverage; it must not kill frames.
	for i, e := range seq.errs {
		if e != "" {
			t.Errorf("frame %d errored under flaky I/O: %s", i, e)
		}
	}
}

// anytimeChaosConfig is chaosConfig with the deterministic anytime exit
// armed: injected DET delays in (budget/2, budget] exit early instead of
// riding the frame, delays beyond the budget still miss outright.
func anytimeChaosConfig(t *testing.T, kind scene.Kind, spec string, seed int64) Config {
	t.Helper()
	cfg := chaosConfig(t, kind, spec, seed)
	cfg.Deadline.Anytime = true
	return cfg
}

// TestChaosAnytimeEquivalence extends the chaos contract to the anytime
// exit: under Virtual+Anytime enforcement a DET stall past half the budget
// (35ms default) commits a coarser on-time detection set flagged with the
// mask's Anytime bit, a stall past the full budget is still a full miss,
// and both executors deliver the identical sequence. The two injected
// cadences overlap at frames % 15 == 0, where the longer delay wins and
// the frame must miss, not exit anytime.
func TestChaosAnytimeEquivalence(t *testing.T) {
	const (
		frames = 24
		spec   = "DET:delay=20ms:every=3,DET:delay=50ms:every=5"
		seed   = 7
	)
	seq := runChaosStep(t, anytimeChaosConfig(t, scene.Urban, spec, seed), frames)
	pipe := runChaosRunner(t, anytimeChaosConfig(t, scene.Urban, spec, seed), frames, 4)
	requireIdenticalRuns(t, seq, pipe)

	// The same scenario without faults: full detection sets per frame.
	clean := runChaosStep(t, anytimeChaosConfig(t, scene.Urban, "DET:delay=1ms:every=1000000", seed), frames)

	for i := range seq.masks {
		m := seq.masks[i]
		dets := seq.results[i].Detections
		switch {
		case i%5 == 0: // 50ms > 35ms budget: full miss, never anytime
			if !m.Has(StageDet) || m.Anytime() {
				t.Errorf("frame %d mask = %v, want a plain DET miss", i, m)
			}
			if dets != nil {
				t.Errorf("frame %d: missed DET frame carries detections", i)
			}
		case i%3 == 0: // 20ms in (17.5ms, 35ms]: anytime exit
			if !m.Anytime() || m.AnyMiss() {
				t.Errorf("frame %d mask = %v, want anytime without a miss", i, m)
			}
			if !m.Any() {
				t.Errorf("frame %d: anytime frame not counted as degraded", i)
			}
			full := len(clean.results[i].Detections)
			if full > 0 && (len(dets) == 0 || len(dets) > full) {
				t.Errorf("frame %d: anytime set has %d detections, clean run %d — want a non-empty subset",
					i, len(dets), full)
			}
		default:
			if m.Any() {
				t.Errorf("clean frame %d mask = %v", i, m)
			}
		}
	}
}

// TestGoldenChaosTrace pins the end-to-end chaos behaviour to a committed
// per-frame (degraded mask, error) trace: a fixed seed + scenario must
// reproduce the trace bit-for-bit on every run, so any silent drift in
// injection, budgets or degraded-mode sequencing fails loudly. The trace
// intentionally contains no floats or timings — it is stable across
// architectures. Regenerate with UPDATE_GOLDEN=1 after an intentional
// behaviour change.
func TestGoldenChaosTrace(t *testing.T) {
	const (
		frames = 40
		spec   = "DET:delay=50ms:every=4,LOC:delay=90ms:every=7:burst=2,MOTPLAN:err:frames=9-10,SRC:drop:every=13"
		seed   = 42
	)
	run := runChaosStep(t, chaosConfig(t, scene.Urban, spec, seed), frames)
	var b strings.Builder
	for i := range run.results {
		e := run.errs[i]
		if e == "" {
			e = "-"
		}
		fmt.Fprintf(&b, "frame=%02d degraded=%s err=%s\n", i, run.masks[i], e)
	}
	got := b.String()

	golden := filepath.Join("testdata", "chaos_golden.trace")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden trace rewritten (%d frames)", frames)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden trace (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got == string(want) {
		return
	}
	// Diff line by line so the failure names the drifting frames.
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	sc := bufio.NewScanner(strings.NewReader(got))
	_ = sc
	n := len(gotLines)
	if len(wantLines) > n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("golden trace drift at line %d:\n  got  %q\n  want %q", i+1, g, w)
		}
	}
}

// TestGoldenAnytimeTrace pins the Virtual+Anytime degraded-mode sequencing
// to a committed trace, the same way TestGoldenChaosTrace pins the plain
// deadline path: a mix of anytime exits (20ms cadence), full DET misses
// (50ms cadence, winning where the two overlap) and LOC misses must
// reproduce bit-for-bit. Regenerate with UPDATE_GOLDEN=1 after an
// intentional behaviour change.
func TestGoldenAnytimeTrace(t *testing.T) {
	const (
		frames = 40
		spec   = "DET:delay=20ms:every=3,DET:delay=50ms:every=7,LOC:delay=90ms:every=11"
		seed   = 42
	)
	run := runChaosStep(t, anytimeChaosConfig(t, scene.Urban, spec, seed), frames)
	var b strings.Builder
	for i := range run.results {
		e := run.errs[i]
		if e == "" {
			e = "-"
		}
		fmt.Fprintf(&b, "frame=%02d degraded=%s dets=%d err=%s\n",
			i, run.masks[i], len(run.results[i].Detections), e)
	}
	got := b.String()

	golden := filepath.Join("testdata", "anytime_golden.trace")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden anytime trace rewritten (%d frames)", frames)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden trace (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	n := len(gotLines)
	if len(wantLines) > n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("anytime trace drift at line %d:\n  got  %q\n  want %q", i+1, g, w)
		}
	}
}

// TestDegradedFrameMeetsFrameDeadline is the wall-clock acceptance test: a
// frame whose DET stage is delayed far past its budget must still deliver
// within the 100 ms frame deadline, in degraded TRA-only mode, with the
// tracker coasting its table — and the next frame must recover cleanly
// after draining the late attempt.
func TestDegradedFrameMeetsFrameDeadline(t *testing.T) {
	cfg := fastNativeConfig(scene.Urban)
	cfg.Deadline = DeadlinePolicy{Enforce: true}
	// Budget only the stage under test: the default budgets are sized for
	// real hardware, and race-detector slowdown would blow them on healthy
	// stages, muddying the assertion.
	for i := range cfg.Deadline.Budgets {
		cfg.Deadline.Budgets[i] = -1
	}
	cfg.Deadline.Budgets[StageDet] = 20 * time.Millisecond
	inj, err := faultinject.New(faultinject.MustParse("DET:delay=300ms:frames=5", 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Inject = inj.Stage
	p, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}

	tracksBefore := 0
	for i := 0; i < 5; i++ {
		res, err := p.Step()
		if err != nil {
			t.Fatalf("warmup frame %d: %v", i, err)
		}
		if res.Degraded.Any() {
			t.Fatalf("warmup frame %d unexpectedly degraded: %v", i, res.Degraded)
		}
		tracksBefore = len(res.Tracks)
	}

	start := time.Now()
	res, err := p.Step()
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("degraded frame: %v", err)
	}
	if !res.Degraded.Has(StageDet) {
		t.Fatalf("frame 5 mask = %v, want DET degraded", res.Degraded)
	}
	if res.Detections != nil {
		t.Error("degraded DET frame must carry no fresh detections")
	}
	if tracksBefore > 0 && len(res.Tracks) == 0 {
		t.Error("TRA-only mode lost the coasted track table")
	}
	if res.Pose.Stale || !res.Pose.Tracked {
		t.Errorf("LOC must be unaffected by a DET miss: pose %+v", res.Pose)
	}
	// The injected 300ms stall must never ride the frame — delivery happens
	// as soon as the 20ms budget expires. The tight frame-deadline bound
	// only holds without the race detector's ~10x slowdown inflating the
	// healthy stages.
	if elapsed >= 250*time.Millisecond {
		t.Errorf("degraded frame took %v: the 300ms stall rode the frame", elapsed)
	}
	if !raceEnabled && elapsed >= DefaultFrameBudget {
		t.Errorf("degraded frame took %v, want < %v", elapsed, DefaultFrameBudget)
	}

	// The next frame first drains the late attempt, then runs clean.
	res, err = p.Step()
	if err != nil {
		t.Fatalf("recovery frame: %v", err)
	}
	if res.Degraded.Any() {
		t.Errorf("recovery frame mask = %v, want clean", res.Degraded)
	}
	p.Drain() // idempotent once quiescent
}

// TestRunnerStopDrainsDegradedInFlight is the Stop-ordering satellite:
// stopping the runner while a degraded frame (with a live late attempt)
// is in flight must still drain every admitted frame in order, and by the
// time the result channel closes no abandoned attempt may still be
// touching an engine — verified under -race by stepping the pipeline
// immediately after close.
func TestRunnerStopDrainsDegradedInFlight(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	cfg := fastNativeConfig(scene.Urban)
	cfg.Deadline = DeadlinePolicy{Enforce: true}
	cfg.Deadline.Budgets[StageDet] = 10 * time.Millisecond
	inj, err := faultinject.New(faultinject.MustParse("DET:delay=150ms:every=2", 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Inject = inj.Stage
	p, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, RunnerOptions{InFlight: 4})
	if err != nil {
		t.Fatal(err)
	}

	delivered := 0
	sawDegraded := false
	for res := range r.Run(0) {
		if res.Err != nil {
			t.Fatalf("frame %d: %v", res.Frame.Index, res.Err)
		}
		if res.Frame.Index != delivered {
			t.Fatalf("frame %d delivered at position %d: out of order", res.Frame.Index, delivered)
		}
		if res.Degraded.Has(StageDet) {
			sawDegraded = true
		}
		delivered++
		if delivered == 3 {
			r.Stop() // frames 3..6 are in flight, several mid-degradation
		}
	}
	if !sawDegraded {
		t.Fatal("scenario produced no degraded frames before Stop")
	}
	if delivered < 3 {
		t.Fatalf("only %d frames delivered", delivered)
	}
	// The channel is closed: every stage goroutine has exited and drained
	// its late attempt. Re-entering the engines must be race-free.
	if _, err := p.Step(); err != nil {
		t.Fatalf("post-close step: %v", err)
	}
	p.Drain()
}

// BenchmarkDegradedPipeline measures sequential throughput with wall-clock
// deadline enforcement active and DET blowing its budget every other
// frame — the degraded-mode steady state. The reported degraded/op metric
// is the fraction of frames delivered degraded.
func BenchmarkDegradedPipeline(b *testing.B) {
	cfg := fastNativeConfig(scene.Urban)
	cfg.Deadline = DeadlinePolicy{Enforce: true}
	cfg.Deadline.Budgets[StageDet] = 5 * time.Millisecond
	inj, err := faultinject.New(faultinject.MustParse("DET:delay=20ms:every=2", 1))
	if err != nil {
		b.Fatal(err)
	}
	cfg.Inject = inj.Stage
	p, err := NewNative(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	degraded := 0
	for i := 0; i < b.N; i++ {
		res, err := p.Step()
		if err != nil {
			b.Fatal(err)
		}
		if res.Degraded.Any() {
			degraded++
		}
	}
	b.StopTimer()
	p.Drain()
	b.ReportMetric(float64(degraded)/float64(b.N), "degraded/op")
}
