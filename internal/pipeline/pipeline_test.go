package pipeline

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"adsim/internal/accel"
	"adsim/internal/control"
	"adsim/internal/mission"
	"adsim/internal/plan"
	"adsim/internal/scene"
)

func fastNativeConfig(kind scene.Kind) Config {
	cfg := DefaultConfig(kind)
	cfg.Scene.Width, cfg.Scene.Height = 384, 192
	cfg.SurveyFrames = 20
	cfg.Detect.RunDNN = false // keep unit tests fast
	cfg.Track.RunDNN = false
	return cfg
}

func TestNativePipelineRuns(t *testing.T) {
	p, err := NewNative(fastNativeConfig(scene.Urban))
	if err != nil {
		t.Fatal(err)
	}
	sawDetection, sawTrack, sawPlan := false, false, false
	for i := 0; i < 15; i++ {
		res, err := p.Step()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(res.Detections) > 0 {
			sawDetection = true
		}
		if len(res.Tracks) > 0 {
			sawTrack = true
		}
		if len(res.Plan.Path.Waypoints) > 0 || res.Plan.Decision == plan.EmergencyStop {
			sawPlan = true
		}
		if res.Timing.E2E <= 0 {
			t.Fatal("missing end-to-end timing")
		}
	}
	if !sawDetection {
		t.Error("no detections in 15 urban frames")
	}
	if !sawTrack {
		t.Error("no tracks in 15 urban frames")
	}
	if !sawPlan {
		t.Error("no plans produced")
	}
}

func TestNativeLocalizesOnSurveyedRoute(t *testing.T) {
	p, err := NewNative(fastNativeConfig(scene.Urban))
	if err != nil {
		t.Fatal(err)
	}
	tracked := 0
	var worst float64
	for i := 0; i < 15; i++ {
		res, err := p.Step()
		if err != nil {
			t.Fatal(err)
		}
		if res.Pose.Tracked {
			tracked++
			if e := math.Abs(res.Pose.Pose.Z - res.Frame.EgoPose.Z); e > worst {
				worst = e
			}
		}
	}
	if tracked < 10 {
		t.Errorf("localized only %d/15 frames", tracked)
	}
	if worst > 4 {
		t.Errorf("worst pose error %.2f m", worst)
	}
}

func TestNativeE2ETimingLaw(t *testing.T) {
	p, err := NewNative(fastNativeConfig(scene.Highway))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Step()
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timing
	critical := tm.Det + tm.Tra
	if tm.Loc > critical {
		critical = tm.Loc
	}
	if tm.E2E != critical+tm.Fusion+tm.MotPlan+tm.Control {
		t.Error("E2E law violated")
	}
}

func TestNativeWithMission(t *testing.T) {
	cfg := fastNativeConfig(scene.Urban)
	p, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A straight route along the scenario's road (nodes every 100 m in Z).
	g := mission.NewGraph()
	for i := 0; i < 5; i++ {
		g.AddNode(mission.Node{ID: mission.NodeID(i), X: 0, Z: float64(i) * 100})
	}
	for i := 0; i < 4; i++ {
		if err := g.AddBidirectional(mission.Edge{
			From: mission.NodeID(i), To: mission.NodeID(i + 1), Class: mission.Local,
		}); err != nil {
			t.Fatal(err)
		}
	}
	mp, err := mission.NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Start(0, 4); err != nil {
		t.Fatal(err)
	}
	p.AttachMission(mp)

	res, err := p.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Guidance.SpeedLimit != mission.Local.SpeedLimit() {
		t.Errorf("guidance speed limit = %v", res.Guidance.SpeedLimit)
	}
	// The local speed limit (8.3) must cap the plan's speed (ego 13 m/s).
	if res.Plan.Speed > mission.Local.SpeedLimit()+1e-9 {
		t.Errorf("plan speed %v exceeds guidance limit", res.Plan.Speed)
	}
}

func TestNativeBreakdownInstrumentation(t *testing.T) {
	cfg := fastNativeConfig(scene.Urban)
	cfg.Detect.RunDNN = true
	cfg.Track.RunDNN = true
	p, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Step()
	res, err := p.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.DetDNN <= 0 || res.Timing.LocFE <= 0 {
		t.Error("breakdown instrumentation missing")
	}
	if res.Timing.DetDNN > res.Timing.Det {
		t.Error("DET DNN time exceeds DET total")
	}
	if res.Timing.LocFE > res.Timing.Loc {
		t.Error("LOC FE time exceeds LOC total")
	}
}

func TestAssignmentHelpers(t *testing.T) {
	a := Uniform(accel.GPU)
	if a.Det != accel.GPU || a.Tra != accel.GPU || a.Loc != accel.GPU {
		t.Error("Uniform wrong")
	}
	if a.Short() != "GPU/GPU/GPU" {
		t.Errorf("Short = %q", a.Short())
	}
	if len(AllAssignments()) != 64 {
		t.Errorf("AllAssignments = %d, want 64", len(AllAssignments()))
	}
	m := accel.NewModel()
	want := m.Power(accel.GPU, accel.DET) + m.Power(accel.GPU, accel.TRA) + m.Power(accel.GPU, accel.LOC)
	if a.ComputePowerW(m) != want {
		t.Error("ComputePowerW wrong")
	}
}

func TestSimulateValidation(t *testing.T) {
	m := accel.NewModel()
	if _, err := Simulate(m, SimConfig{Frames: 0}); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestSimulateCPUMatchesPaperE2E(t *testing.T) {
	m := accel.NewModel()
	res, err := Simulate(m, SimConfig{
		Assignment: Uniform(accel.CPU), Frames: 40000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig 11: CPU-only end-to-end mean ≈ 7.9 s, tail ≈ 9.1 s.
	if mean := res.E2E.Mean(); math.Abs(mean-7950) > 250 {
		t.Errorf("CPU e2e mean = %.0f ms, want ~7950", mean)
	}
	if tail := res.E2E.P9999(); math.Abs(tail-9100) > 450 {
		t.Errorf("CPU e2e tail = %.0f ms, want ~9100", tail)
	}
}

func TestSimulateBestConfigMatches16ms(t *testing.T) {
	// Paper: acceleration reduces the end-to-end tail to 16.1 ms
	// (DET on GPU, TRA and LOC on ASIC).
	m := accel.NewModel()
	res, err := Simulate(m, SimConfig{
		Assignment: Assignment{Det: accel.GPU, Tra: accel.ASIC, Loc: accel.ASIC},
		Frames:     40000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tail := res.E2E.P9999()
	if math.Abs(tail-16.1) > 1.5 {
		t.Errorf("best-config tail = %.1f ms, paper says 16.1", tail)
	}
}

func TestSimulateHeadlineReductions(t *testing.T) {
	m := accel.NewModel()
	tail := func(p accel.Platform) float64 {
		res, err := Simulate(m, SimConfig{Assignment: Uniform(p), Frames: 40000, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res.E2E.P9999()
	}
	base := tail(accel.CPU)
	for _, c := range []struct {
		p    accel.Platform
		want float64
		tol  float64
	}{{accel.GPU, 169, 20}, {accel.FPGA, 10, 1}, {accel.ASIC, 93, 8}} {
		got := base / tail(c.p)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%v e2e tail reduction = %.1fx, paper %.0fx", c.p, got, c.want)
		}
	}
}

func TestSimulateResolutionDefaults(t *testing.T) {
	m := accel.NewModel()
	res, err := Simulate(m, SimConfig{Assignment: Uniform(accel.ASIC), Frames: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Res != accel.ResKITTI {
		t.Error("resolution should default to the KITTI base")
	}
}

func BenchmarkNativeStep(b *testing.B) {
	p, err := NewNative(fastNativeConfig(scene.Highway))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulate1kFrames(b *testing.B) {
	m := accel.NewModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(m, SimConfig{
			Assignment: Uniform(accel.ASIC), Frames: 1000, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNativeControlCommand(t *testing.T) {
	p, err := NewNative(fastNativeConfig(scene.Highway))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.Control <= 0 {
		t.Error("control stage not timed")
	}
	cfg := control.DefaultConfig()
	if math.Abs(res.Command.Curvature) > cfg.MaxCurvature {
		t.Errorf("command curvature %v exceeds limit", res.Command.Curvature)
	}
	if res.Command.Accel > cfg.MaxAccel || res.Command.Accel < -cfg.MaxBrake {
		t.Errorf("command accel %v out of limits", res.Command.Accel)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	p, err := NewNative(fastNativeConfig(scene.Urban))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	var want []TraceRecord
	for i := 0; i < 5; i++ {
		res, err := p.Step()
		if err != nil {
			t.Fatal(err)
		}
		rec := NewTraceRecord(res)
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	if w.Count() != 5 {
		t.Errorf("count = %d", w.Count())
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, got[i], want[i])
		}
	}
	// Sanity on content.
	if got[0].Frame != 0 || got[4].Frame != 4 {
		t.Error("frame indices wrong")
	}
	if got[0].E2EMs <= 0 {
		t.Error("missing latency")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{not json")); err == nil {
		t.Error("garbage trace accepted")
	}
}

func TestStopLineRampsSpeedDown(t *testing.T) {
	cfg := fastNativeConfig(scene.Urban)
	cfg.Scene.NumVehicles, cfg.Scene.NumPeds, cfg.Scene.NumSigns = 0, 0, 0
	cfg.SurveyFrames = 90 // survey the full 90 m route (the paper's premise)
	p, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Route with a stop line at the end of the first 100 m leg.
	g := mission.NewGraph()
	for i := 0; i < 3; i++ {
		g.AddNode(mission.Node{ID: mission.NodeID(i), X: 0, Z: float64(i) * 100})
	}
	for i := 0; i < 2; i++ {
		if err := g.AddEdge(mission.Edge{
			From: mission.NodeID(i), To: mission.NodeID(i + 1),
			Class: mission.Arterial, StopAtEnd: i == 0,
		}); err != nil {
			t.Fatal(err)
		}
	}
	mp, _ := mission.NewPlanner(g)
	if err := mp.Start(0, 2); err != nil {
		t.Fatal(err)
	}
	p.AttachMission(mp)

	var farSpeed, nearSpeed float64
	for i := 0; i < 70; i++ { // urban ego: 1.3 m/frame → 91 m
		res, err := p.Step()
		if err != nil {
			t.Fatal(err)
		}
		z := res.Pose.Pose.Z
		if z > 40 && z < 60 && farSpeed == 0 {
			farSpeed = res.Plan.Speed // outside the 30 m approach zone
		}
		if z > 85 && z < 95 {
			nearSpeed = res.Plan.Speed // deep inside the approach zone
		}
	}
	if farSpeed == 0 || nearSpeed == 0 {
		t.Fatal("route positions not sampled; localization drifted?")
	}
	if nearSpeed >= farSpeed*0.7 {
		t.Errorf("approach speed %.1f not ramped down from %.1f before the stop line",
			nearSpeed, farSpeed)
	}
}
