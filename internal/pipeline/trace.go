package pipeline

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// TraceRecord is one frame's entry in a machine-readable pipeline trace —
// the reproduction's equivalent of the instrumentation logs the paper's
// characterization is built from. All latencies are milliseconds.
type TraceRecord struct {
	Frame      int     `json:"frame"`
	Time       float64 `json:"time_s"`
	Detections int     `json:"detections"`
	Tracks     int     `json:"tracks"`
	PoseZ      float64 `json:"pose_z_m"`
	TruthZ     float64 `json:"truth_z_m"`
	Tracked    bool    `json:"tracked"`
	Reloc      bool    `json:"relocalized"`
	Decision   string  `json:"decision"`
	Speed      float64 `json:"speed_mps"`
	// Degraded lists the stages that blew their deadline budget this frame
	// ("DET|LOC" style); empty for a clean frame.
	Degraded string `json:"degraded,omitempty"`

	DetMs     float64 `json:"det_ms"`
	TraMs     float64 `json:"tra_ms"`
	LocMs     float64 `json:"loc_ms"`
	FusionMs  float64 `json:"fusion_ms"`
	MisPlanMs float64 `json:"misplan_ms"`
	MotPlanMs float64 `json:"motplan_ms"`
	ControlMs float64 `json:"control_ms"`
	E2EMs     float64 `json:"e2e_ms"`
	DetDNNMs  float64 `json:"det_dnn_ms"`
	TraDNNMs  float64 `json:"tra_dnn_ms"`
	LocFEMs   float64 `json:"loc_fe_ms"`
}

// NewTraceRecord flattens one FrameResult into a trace record.
func NewTraceRecord(res FrameResult) TraceRecord {
	ms := func(d time.Duration) float64 { return float64(d) / 1e6 }
	degraded := ""
	if res.Degraded.Any() {
		degraded = res.Degraded.String()
	}
	return TraceRecord{
		Degraded:   degraded,
		Frame:      res.Frame.Index,
		Time:       res.Frame.Time,
		Detections: len(res.Detections),
		Tracks:     len(res.Tracks),
		PoseZ:      res.Pose.Pose.Z,
		TruthZ:     res.Frame.EgoPose.Z,
		Tracked:    res.Pose.Tracked,
		Reloc:      res.Pose.Relocalized,
		Decision:   res.Plan.Decision.String(),
		Speed:      res.Plan.Speed,
		DetMs:      ms(res.Timing.Det),
		TraMs:      ms(res.Timing.Tra),
		LocMs:      ms(res.Timing.Loc),
		FusionMs:   ms(res.Timing.Fusion),
		MisPlanMs:  ms(res.Timing.MisPlan),
		MotPlanMs:  ms(res.Timing.MotPlan),
		ControlMs:  ms(res.Timing.Control),
		E2EMs:      ms(res.Timing.E2E),
		DetDNNMs:   ms(res.Timing.DetDNN),
		TraDNNMs:   ms(res.Timing.TraDNN),
		LocFEMs:    ms(res.Timing.LocFE),
	}
}

// TraceWriter streams trace records as JSON Lines (one object per line),
// the format analysis tooling ingests most easily.
type TraceWriter struct {
	enc *json.Encoder
	n   int
}

// NewTraceWriter wraps w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{enc: json.NewEncoder(w)}
}

// Write appends one record.
func (t *TraceWriter) Write(rec TraceRecord) error {
	if err := t.enc.Encode(rec); err != nil {
		return fmt.Errorf("pipeline: trace write: %w", err)
	}
	t.n++
	return nil
}

// Count reports records written.
func (t *TraceWriter) Count() int { return t.n }

// ReadTrace parses a JSON Lines trace back into records.
func ReadTrace(r io.Reader) ([]TraceRecord, error) {
	dec := json.NewDecoder(r)
	var out []TraceRecord
	for dec.More() {
		var rec TraceRecord
		if err := dec.Decode(&rec); err != nil {
			return out, fmt.Errorf("pipeline: trace read: %w", err)
		}
		out = append(out, rec)
	}
	return out, nil
}
