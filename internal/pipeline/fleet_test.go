package pipeline

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"adsim/internal/dnn"
	"adsim/internal/faultinject"
	"adsim/internal/scene"
	"adsim/internal/slam"
	"adsim/internal/testutil"
)

// surveyedBase surveys frames of the template's scenario into a prior map
// and returns its serialized bytes: fleet and solo runs each decode their
// own copy, so every run sees identical map content with the same
// serialization rounding.
func surveyedBase(t *testing.T, cfg Config, frames int) []byte {
	t.Helper()
	base := slam.NewPriorMap()
	eng, err := slam.NewEngine(cfg.SLAM, base)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := scene.New(cfg.Scene)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		f := gen.Step()
		eng.Survey(f.Image, f.EgoPose)
	}
	var buf bytes.Buffer
	if _, err := base.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decodeBase(t *testing.T, raw []byte) *slam.PriorMap {
	t.Helper()
	m, err := slam.ReadPriorMap(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// collectFleet runs the fleet and collects each vehicle's delivered
// sequence (schedule-stripped, like the chaos harness).
func collectFleet(t *testing.T, f *Fleet, frames int) ([]chaosRun, FleetReport) {
	t.Helper()
	runs := make([]chaosRun, len(f.vehicles))
	// Each vehicle index is appended to by exactly one goroutine, so the
	// per-vehicle slices need no lock.
	rep := f.Run(frames, func(v int, res RunnerResult) {
		runs[v].results = append(runs[v].results, stripSchedule(res.FrameResult))
		runs[v].masks = append(runs[v].masks, res.Degraded)
		runs[v].errs = append(runs[v].errs, errString(res.Err))
	})
	return runs, rep
}

// The fleet acceptance bar: N vehicles multiplexed onto one batching
// executor and one shared prior-map store must deliver, per vehicle,
// detections/tracks/poses bitwise-identical to the same seed run solo
// through an ordinary Runner with private engines and a private map. The
// native DNNs are ON so the cross-stream batching seam actually gathers.
func TestFleetMatchesSoloRunners(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const vehicles, frames = 3, 8
	cfg := fastNativeConfig(scene.Urban)
	cfg.Detect.RunDNN = true
	cfg.Detect.InputSize = 32 // small net keeps the DNN-on test quick
	cfg.Track.RunDNN = true
	cfg.SurveyFrames = 0 // the shared base below is the surveyed map
	raw := surveyedBase(t, cfg, 20)

	base := decodeBase(t, raw)
	baseLen := base.Len()
	f, err := NewFleet(FleetConfig{
		Vehicles:  vehicles,
		Config:    cfg,
		InFlight:  4,
		SharedMap: base,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Executor().Batching() {
		t.Fatal("fleet default executor is not batching")
	}
	fleetRuns, rep := collectFleet(t, f, frames)

	for v := 0; v < vehicles; v++ {
		solo := cfg
		solo.Scene.Seed = cfg.Scene.Seed + int64(v)
		solo.MapStore = decodeBase(t, raw) // private monolithic copy
		requireIdenticalRuns(t, runChaosRunner(t, solo, frames, 4), fleetRuns[v])
	}

	if base.Len() != baseLen {
		t.Errorf("fleet run mutated the shared base: %d keyframes, had %d", base.Len(), baseLen)
	}
	if rep.Frames != vehicles*frames {
		t.Errorf("fleet delivered %d frames, want %d", rep.Frames, vehicles*frames)
	}
	if rep.Fleet.N != vehicles*frames {
		t.Errorf("fleet monitor folded %d frames, want %d", rep.Fleet.N, vehicles*frames)
	}
	if len(rep.PerVehicle) != vehicles {
		t.Fatalf("report has %d vehicle scorecards, want %d", len(rep.PerVehicle), vehicles)
	}
	for _, vs := range rep.PerVehicle {
		if vs.Frames != frames {
			t.Errorf("vehicle %d delivered %d frames, want %d", vs.Vehicle, vs.Frames, frames)
		}
	}
	if s := rep.String(); !strings.Contains(s, "fleet P99.99") || !strings.Contains(s, "vehicle 0") {
		t.Errorf("fleet verdict missing expected lines:\n%s", s)
	}
}

// Chaos isolation: one vehicle with an injected DET stall (virtual
// enforcement, so the degrade sequence is deterministic) must degrade on
// schedule while every OTHER vehicle's results and masks stay identical to
// its solo run — a faulted stream cannot perturb its neighbors through the
// shared executor or the shared map.
func TestFleetChaosIsolation(t *testing.T) {
	const vehicles, frames, faulted = 3, 15, 1
	const spec = "DET:delay=30ms:every=5"
	cfg := fastNativeConfig(scene.Urban)
	cfg.SurveyFrames = 0
	cfg.Deadline = DeadlinePolicy{Enforce: true, Virtual: true}
	cfg.Deadline.Budgets[StageDet] = 20 * time.Millisecond // under the 30ms injected stall
	raw := surveyedBase(t, cfg, 20)

	newInject := func(t *testing.T) func(string, int) (time.Duration, error) {
		inj, err := faultinject.New(faultinject.MustParse(spec, 7))
		if err != nil {
			t.Fatal(err)
		}
		return inj.Stage
	}

	f, err := NewFleet(FleetConfig{
		Vehicles:  vehicles,
		Config:    cfg,
		InFlight:  4,
		Executor:  dnn.NewBatchExecutor(2),
		SharedMap: decodeBase(t, raw),
		Injects: map[int]func(string, int) (time.Duration, error){
			faulted: newInject(t),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fleetRuns, _ := collectFleet(t, f, frames)

	for v := 0; v < vehicles; v++ {
		solo := cfg
		solo.Scene.Seed = cfg.Scene.Seed + int64(v)
		solo.MapStore = decodeBase(t, raw)
		if v == faulted {
			solo.Inject = newInject(t)
		}
		requireIdenticalRuns(t, runChaosRunner(t, solo, frames, 4), fleetRuns[v])
	}

	degraded := 0
	for _, m := range fleetRuns[faulted].masks {
		if m.Any() {
			degraded++
		}
	}
	if degraded == 0 {
		t.Error("injected vehicle never degraded; the scenario is not exercising enforcement")
	}
	for v := 0; v < vehicles; v++ {
		if v == faulted {
			continue
		}
		for i, m := range fleetRuns[v].masks {
			if m.Any() {
				t.Errorf("healthy vehicle %d degraded at frame %d: fault leaked across streams", v, i)
			}
		}
	}
}
