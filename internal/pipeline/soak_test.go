package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adsim/internal/faultinject"
	"adsim/internal/scenario"
	"adsim/internal/scene"
	"adsim/internal/testutil"
)

// This file is the fleet's long-haul soak harness: thousands of virtually-
// deadlined frames through a churning, admission-controlled fleet under the
// compound mixed-stress scenario, with structural health checks — zero
// goroutine leaks, bounded heap growth, and monitor/report invariants that
// must hold across every churn boundary. `make soak` runs it under -race;
// `make soak-smoke` (wired into `make check` and CI) runs the -short
// scaling.

// soakFrames picks the soak length: long enough that a per-frame leak of
// even a few KB is unmissable in the heap bound, scaled down under -short
// so the smoke variant stays in unit-test territory.
func soakFrames() int {
	if testing.Short() {
		return 200
	}
	return 1000
}

// TestFleetSoak drives a 4-vehicle admission-controlled fleet through the
// mixed-stress scenario program for thousands of virtual-deadline frames,
// churning membership mid-run (one vehicle added, one removed, both while
// streams are live), and then audits the wreckage: every goroutine gone,
// heap growth bounded (no monotonic per-frame leak), every monitor's frame
// count equal to its stream's delivered count, the fleet monitor equal to
// their sum, and the admission history per-vehicle alternating shed/readmit.
func TestFleetSoak(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	frames := soakFrames()
	const vehicles = 4

	prog, err := scenario.Load("mixed-stress")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastNativeConfig(scene.Urban)
	cfg.Scene = prog.Configure(cfg.Scene)
	cfg.SurveyFrames = 10
	cfg.Deadline = DeadlinePolicy{Enforce: true, Virtual: true}

	// Every vehicle (including the one churned in later, id 4) runs the
	// program's fault rules with a per-vehicle seed: deterministic injected
	// LOC/IO/TRA stalls supply the deadline misses the virtual admission
	// signal feeds on.
	injects := make(map[int]func(string, int) (time.Duration, error))
	for v := 0; v <= vehicles; v++ {
		inj, err := faultinject.New(faultinject.FromProgram(prog, 100+int64(v)))
		if err != nil {
			t.Fatal(err)
		}
		injects[v] = inj.Stage
	}

	f, err := NewFleet(FleetConfig{
		Vehicles: vehicles,
		Config:   cfg,
		InFlight: 3,
		Injects:  injects,
		Admission: &AdmissionConfig{
			Virtual: true,
			Epoch:   16,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// Scripted churn, keyed to total delivered frames so it lands mid-run at
	// any soak length: one vehicle joins at an eighth of the run, one leaves
	// at a quarter. The signal channels fire exactly once.
	addAt := int64(vehicles * frames / 8)
	removeAt := int64(vehicles * frames / 4)
	var delivered atomic.Int64
	addSig, removeSig := make(chan struct{}), make(chan struct{})
	var addOnce, removeOnce sync.Once
	churnDone := make(chan struct{})

	if err := f.Start(frames, func(v int, res RunnerResult) {
		n := delivered.Add(1)
		if n >= addAt {
			addOnce.Do(func() { close(addSig) })
		}
		if n >= removeAt {
			removeOnce.Do(func() { close(removeSig) })
		}
	}); err != nil {
		t.Fatal(err)
	}
	var added int
	var addErr, removeErr error
	go func() {
		defer close(churnDone)
		<-addSig
		added, addErr = f.AddVehicle()
		<-removeSig
		removeErr = f.RemoveVehicle(2)
	}()

	rep := f.Wait()
	<-churnDone
	if addErr != nil {
		t.Fatalf("AddVehicle: %v", addErr)
	}
	if removeErr != nil {
		t.Fatalf("RemoveVehicle: %v", removeErr)
	}
	if added != vehicles {
		t.Errorf("churned-in vehicle got id %d, want %d", added, vehicles)
	}

	// Monitor invariants at (and across) the churn boundaries: every
	// vehicle's private monitor folded exactly its delivered frames — the
	// removed vehicle's a clean prefix, nobody double- or under-counted —
	// and the fleet monitor folded exactly the sum.
	if rep.Vehicles != vehicles+1 {
		t.Errorf("report covers %d vehicles, want %d (4 initial + 1 churned in)", rep.Vehicles, vehicles+1)
	}
	total := 0
	for _, vs := range rep.PerVehicle {
		total += vs.Frames
		if vs.Report.N != vs.Frames {
			t.Errorf("vehicle %d monitor folded %d frames, delivered %d", vs.Vehicle, vs.Report.N, vs.Frames)
		}
		switch vs.Vehicle {
		case 2:
			if !vs.Removed {
				t.Error("vehicle 2 not marked Removed")
			}
			if vs.Frames >= frames {
				t.Errorf("removed vehicle delivered %d frames, want a proper prefix of %d", vs.Frames, frames)
			}
		case vehicles:
			if vs.Removed {
				t.Errorf("churned-in vehicle %d marked Removed", vs.Vehicle)
			}
		}
	}
	if rep.Frames != total {
		t.Errorf("report Frames %d != per-vehicle sum %d", rep.Frames, total)
	}
	if rep.Fleet.N != total {
		t.Errorf("fleet monitor folded %d frames, delivered %d", rep.Fleet.N, total)
	}
	if got := delivered.Load(); int(got) != total {
		t.Errorf("callback saw %d frames, report says %d", got, total)
	}

	// Admission history validity: decisions nondecreasing, and per vehicle
	// strictly alternating shed → readmit → shed …, starting with a shed.
	lastDecision := 0
	shedNow := map[int]bool{}
	for _, e := range rep.Admission {
		if e.Decision < lastDecision {
			t.Errorf("admission history decisions out of order: %v", rep.Admission)
			break
		}
		lastDecision = e.Decision
		if e.Shed == shedNow[e.Vehicle] {
			t.Errorf("vehicle %d admission events do not alternate: %v", e.Vehicle, rep.Admission)
			break
		}
		shedNow[e.Vehicle] = e.Shed
		if e.Pressure < 0 || e.Pressure > 1 {
			t.Errorf("virtual admission pressure %v out of [0,1]", e.Pressure)
		}
	}

	// Heap growth bound: after a full GC the soak must not have accreted
	// state proportional to frames delivered. The allowance covers pooled
	// scratch arenas, the added vehicle's engines and map view, and
	// allocator slack — a per-frame leak of even 4KB would blow through it
	// at either soak length.
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if growth := int64(after.HeapAlloc) - int64(before.HeapAlloc); growth > 64<<20 {
		t.Errorf("heap grew %d MB over the soak (from %d to %d bytes)",
			growth>>20, before.HeapAlloc, after.HeapAlloc)
	}
}

// TestFleetChurnBitwiseParity pins the churn isolation contract at the
// bitwise level: with a vehicle added and another removed while every stream
// is mid-run, each surviving stream's delivered sequence — and the late
// joiner's — is identical to the same seed run solo, and the removed
// stream's is a clean prefix of its solo run. Churn may change schedules and
// costs, never results.
func TestFleetChurnBitwiseParity(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const vehicles, frames = 3, 20
	cfg := fastNativeConfig(scene.Urban)
	cfg.SurveyFrames = 0
	raw := surveyedBase(t, cfg, 20)

	f, err := NewFleet(FleetConfig{
		Vehicles:  vehicles,
		Config:    cfg,
		InFlight:  2,
		SharedMap: decodeBase(t, raw),
	})
	if err != nil {
		t.Fatal(err)
	}

	// The churn window: when vehicle 0 delivers its 6th frame the churn
	// goroutine adds vehicle 3 and removes vehicle 1; vehicle 0's consumer
	// then BLOCKS until both complete, guaranteeing the churn lands while
	// every stream is strictly mid-run.
	churnStart, churnDone := make(chan struct{}), make(chan struct{})
	var startOnce sync.Once
	var addErr, removeErr error
	go func() {
		defer close(churnDone)
		<-churnStart
		_, addErr = f.AddVehicle()
		removeErr = f.RemoveVehicle(1)
	}()

	var mu sync.Mutex
	runs := make(map[int]*chaosRun)
	rep := f.Run(frames, func(v int, res RunnerResult) {
		mu.Lock()
		run := runs[v]
		if run == nil {
			run = &chaosRun{}
			runs[v] = run
		}
		run.results = append(run.results, stripSchedule(res.FrameResult))
		run.masks = append(run.masks, res.Degraded)
		run.errs = append(run.errs, errString(res.Err))
		n := len(run.results)
		mu.Unlock()
		if v == 0 && n == 6 {
			startOnce.Do(func() { close(churnStart) })
			<-churnDone
		}
	})
	<-churnDone
	if addErr != nil {
		t.Fatalf("AddVehicle: %v", addErr)
	}
	if removeErr != nil {
		t.Fatalf("RemoveVehicle: %v", removeErr)
	}

	if rep.Vehicles != vehicles+1 {
		t.Fatalf("report covers %d vehicles, want %d", rep.Vehicles, vehicles+1)
	}
	for _, vs := range rep.PerVehicle {
		if vs.Removed != (vs.Vehicle == 1) {
			t.Errorf("vehicle %d Removed=%v", vs.Vehicle, vs.Removed)
		}
	}

	for id := 0; id <= vehicles; id++ {
		got := runs[id]
		if got == nil {
			t.Errorf("vehicle %d delivered nothing", id)
			continue
		}
		solo := cfg
		solo.Scene.Seed = cfg.Scene.Seed + int64(id)
		solo.MapStore = decodeBase(t, raw)
		want := runChaosRunner(t, solo, frames, 2)
		if id == 1 {
			// The removed stream stops early; whatever it delivered must be
			// a bitwise prefix of its solo run.
			n := len(got.results)
			if n >= frames {
				t.Errorf("removed vehicle delivered %d frames, want a proper prefix of %d", n, frames)
				continue
			}
			want.results = want.results[:n]
			want.masks = want.masks[:n]
			want.errs = want.errs[:n]
		}
		requireIdenticalRuns(t, want, *got)
	}
}
