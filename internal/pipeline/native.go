// Package pipeline assembles the end-to-end autonomous driving system of
// the paper's Figure 1 and drives it in two modes:
//
//   - Native mode executes the real Go implementations of every engine on
//     synthetic camera frames: the frame fans out to the object detector
//     (DET) and the localizer (LOC) in parallel, DET's objects feed the
//     tracker (TRA), the tracked objects and the vehicle pose are fused
//     into one world frame (FUSION), and the motion planner (MOTPLAN)
//     produces the operational decision. The mission planner (MISPLAN) is
//     consulted for route guidance and re-planned only on deviation.
//
//   - Simulated mode (sim.go) composes per-frame latency samples from the
//     calibrated platform models in internal/accel at full paper scale,
//     which is how the paper's latency figures are regenerated.
//
// The topology is declared exactly once, as the stage graph in graph.go;
// the sequential Step loop and the pipelined Runner are both constructed
// from it, and every stage execution is reported to the configured
// telemetry.Sink as a span (queue wait vs. execute split), with engine hot
// kernels emitting "STAGE/kernel" sub-spans.
package pipeline

import (
	"fmt"
	"time"

	"adsim/internal/control"
	"adsim/internal/detect"
	"adsim/internal/fusion"
	"adsim/internal/mission"
	"adsim/internal/plan"
	"adsim/internal/scene"
	"adsim/internal/slam"
	"adsim/internal/telemetry"
	"adsim/internal/track"
)

// Config parameterizes the native pipeline.
type Config struct {
	Scene   scene.Config
	Detect  detect.Config
	Track   track.Config
	SLAM    slam.Config
	Plan    plan.ConformalConfig
	Control control.Config
	// SurveyFrames builds the prior map by surveying this many frames of
	// an identical scenario before the run starts (the offline map
	// provider role). 0 keeps the map empty (the localizer dead-reckons
	// and relocalizes).
	SurveyFrames int
	// MapStore, when non-nil, backs the localizer with this prior-map
	// store instead of a fresh in-memory PriorMap — the seam for the
	// tiled shard store (and for fault-injected I/O in chaos tests).
	MapStore slam.MapStore
	// Telemetry receives every stage span and delivered frame from both
	// executors. nil runs with the no-op sink.
	Telemetry telemetry.Sink
	// Deadline configures per-stage budget enforcement with degraded
	// modes (see deadline.go). The zero value disables enforcement.
	Deadline DeadlinePolicy
	// Metrics receives the deadline counters and distributions
	// (deadline/miss, deadline/degraded, deadline/miss/<stage>,
	// deadline/stage_ms/<stage>). nil keeps them on a private registry.
	Metrics *telemetry.Registry
	// Inject, when non-nil, is consulted before every stage body with the
	// canonical stage name and frame index; the returned delay is charged
	// against the stage's budget (slept under wall-clock enforcement,
	// virtual-charged under DeadlinePolicy.Virtual) and a returned error
	// fails the stage. faultinject.Injector.Stage satisfies this
	// signature. For SRC the injector is consulted after the frame is
	// rendered, so the decision keys on the real frame index; an error at
	// SRC models a dropped frame.
	Inject func(stage string, frame int) (time.Duration, error)
}

// DefaultConfig returns a ready-to-run native configuration for a scenario
// kind, sized so native execution is fast enough for tests and examples.
func DefaultConfig(kind scene.Kind) Config {
	sc := scene.DefaultConfig(kind)
	sc.Width, sc.Height = 512, 256
	pc := plan.DefaultConformalConfig()
	pc.TargetSpeed = sc.EgoSpeed
	return Config{
		Scene:        sc,
		Detect:       detect.DefaultConfig(),
		Track:        track.DefaultConfig(),
		SLAM:         slam.DefaultConfig(),
		Plan:         pc,
		Control:      control.DefaultConfig(),
		SurveyFrames: 60,
	}
}

// StageTiming is the per-frame wall-clock timing of every stage, plus the
// DNN/FE instrumentation the cycle-breakdown experiment consumes.
type StageTiming struct {
	Det, Tra, Loc, Fusion, MisPlan, MotPlan, Control time.Duration
	// E2E follows the dependency structure: max(LOC, DET+TRA) + FUSION +
	// MOTPLAN (DET and LOC run in parallel).
	E2E time.Duration
	// Breakdown instrumentation. TraDNN and TraOther sum per-tracker
	// durations across the tracker pool — total pool work, not wall time,
	// when trackers propagate in parallel — so the TRA cycle breakdown is
	// TraDNN/(TraDNN+TraOther), in consistent units.
	DetDNN, TraDNN, TraOther, LocFE time.Duration
}

// FrameResult is the output of one pipeline step.
type FrameResult struct {
	Frame      scene.Frame
	Detections []detect.Detection
	Tracks     []*track.Track
	Pose       slam.Estimate
	Fused      fusion.Frame
	Plan       plan.ConformalResult
	Guidance   mission.Guidance
	Command    control.Command
	Timing     StageTiming
	// Degraded records which stages blew their deadline budget on this
	// frame and delivered their degraded-mode output instead (zero when
	// enforcement is off or the frame was clean).
	Degraded DegradedMask
}

// Pipeline is the native end-to-end system. Step is not safe for concurrent
// use — one frame at a time; hand the pipeline to a Runner to overlap
// multiple in-flight frames.
type Pipeline struct {
	cfg  Config
	gen  *scene.Generator
	sink telemetry.Sink

	det  *detect.Detector
	tra  *track.Engine
	loc  *slam.Engine
	fuse *fusion.Engine
	mot  *plan.Planner
	ctl  *control.Controller
	mis  *mission.Planner // optional

	// g is the validated stage graph both executors are built from.
	g Graph

	// inject is the fault-injection seam (Config.Inject): consulted in
	// execStage before every stage body with the canonical stage name and
	// frame index.
	inject func(stage string, frame int) (time.Duration, error)

	// deadline is the enforcement policy, budgets its resolved per-stage
	// budgets (0 = unenforced), and met the pre-resolved metric handles.
	deadline DeadlinePolicy
	budgets  [NumStages]time.Duration
	met      deadlineMetrics

	// pending[s] is stage s's abandoned late attempt, if any: closed when
	// the attempt finishes. Only the stage's own execution context (or a
	// quiescent Drain) touches its slot, so no locking.
	pending [NumStages]chan struct{}

	// tail is the sequential executor's tail controller (AttachTail): Step
	// stamps each frame's DET resolution rung from it and feeds delivered
	// wall latencies back. The pipelined Runner takes its scheduler
	// through RunnerOptions.Tail instead — admission control lives with
	// the window.
	tail *TailScheduler

	// held is each stage's last good output, replayed by the degraded
	// fallbacks. Each field is written only from its own stage's
	// execution context.
	held heldState
}

// heldState is the previous-output hold the degraded fallbacks replay.
type heldState struct {
	tracks      []*track.Track
	fused       fusion.Frame
	guidance    mission.Guidance
	targetSpeed float64
	plan        plan.ConformalResult
	command     control.Command
}

// NewNative constructs the native pipeline, surveying the prior map first
// when configured.
func NewNative(cfg Config) (*Pipeline, error) {
	gen, err := scene.New(cfg.Scene)
	if err != nil {
		return nil, err
	}
	det, err := detect.New(cfg.Detect)
	if err != nil {
		return nil, err
	}
	tra, err := track.New(cfg.Track)
	if err != nil {
		return nil, err
	}
	store := cfg.MapStore
	if store == nil {
		store = slam.NewPriorMap()
	}
	loc, err := slam.NewEngineStore(cfg.SLAM, store)
	if err != nil {
		return nil, err
	}
	fuse, err := fusion.New(gen.Camera(), cfg.Scene.FPS)
	if err != nil {
		return nil, err
	}
	ctl, err := control.New(cfg.Control)
	if err != nil {
		return nil, err
	}
	sink := cfg.Telemetry
	if sink == nil {
		sink = telemetry.Nop{}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry(0)
	}
	p := &Pipeline{
		cfg: cfg, gen: gen, sink: sink,
		det: det, tra: tra, loc: loc, fuse: fuse,
		mot: plan.NewPlanner(cfg.Plan), ctl: ctl,
		inject:   cfg.Inject,
		deadline: cfg.Deadline,
		budgets:  cfg.Deadline.resolve(),
		met:      newDeadlineMetrics(reg),
	}
	p.held.targetSpeed = cfg.Plan.TargetSpeed
	p.g = p.buildGraph()
	if err := p.g.finalize(); err != nil {
		return nil, err
	}

	if cfg.SurveyFrames > 0 {
		survey, err := scene.New(cfg.Scene)
		if err != nil {
			return nil, err
		}
		for i := 0; i < cfg.SurveyFrames; i++ {
			f := survey.Step()
			p.loc.Survey(f.Image, f.EgoPose)
		}
	}
	return p, nil
}

// buildGraph declares the Figure 1 stage graph over this pipeline's
// engines. This is the only place the topology — and each stage's
// input/output field ownership (the Reads/Writes copy discipline the
// deadline layer depends on) — is written down.
func (p *Pipeline) buildGraph() Graph {
	var g Graph
	g.stages[StageSrc] = StageSpec{
		ID: StageSrc, Engine: p.gen, Run: p.runSrc,
	}
	g.stages[StageDet] = StageSpec{
		ID: StageDet, Engine: p.det, Deps: []StageID{StageSrc}, Run: p.runDet,
		Anytime: true,
		Reads: func(dst, src *frameState) {
			dst.res.Frame = src.res.Frame
			dst.detSize = src.detSize
			dst.detDeadline = src.detDeadline
			dst.anytimeFrac = src.anytimeFrac
		},
		Writes: func(dst, src *frameState) {
			dst.res.Detections = src.res.Detections
			dst.res.Timing.Det = src.res.Timing.Det
			dst.res.Timing.DetDNN = src.res.Timing.DetDNN
			dst.anytime = src.anytime
		},
		// DET miss ⇒ TRA-only frame: no fresh detections; the tracker
		// coasts its table on motion alone. The zero-value fields already
		// say exactly that.
		Fallback: func(fs *frameState) {},
	}
	g.stages[StageLoc] = StageSpec{
		ID: StageLoc, Engine: p.loc, Deps: []StageID{StageSrc}, Run: p.runLoc,
		Reads: func(dst, src *frameState) {
			dst.res.Frame = src.res.Frame
		},
		Writes: func(dst, src *frameState) {
			dst.res.Pose = src.res.Pose
			dst.res.Timing.Loc = src.res.Timing.Loc
			dst.res.Timing.LocFE = src.res.Timing.LocFE
		},
		// LOC miss ⇒ motion-model-only pose, flagged stale. PredictPose
		// only reads engine state, which is quiescent here: the previous
		// LOC frame is complete and any late attempt was drained.
		Fallback: func(fs *frameState) {
			fs.res.Pose = slam.Estimate{Pose: p.loc.PredictPose(), Stale: true}
		},
	}
	g.stages[StageTra] = StageSpec{
		ID: StageTra, Engine: p.tra, Deps: []StageID{StageDet}, Run: p.runTra,
		Reads: func(dst, src *frameState) {
			dst.res.Frame = src.res.Frame
			dst.res.Detections = src.res.Detections
		},
		Writes: func(dst, src *frameState) {
			dst.res.Tracks = src.res.Tracks
			dst.res.Timing.Tra = src.res.Timing.Tra
			dst.res.Timing.TraDNN = src.res.Timing.TraDNN
			dst.res.Timing.TraOther = src.res.Timing.TraOther
		},
		// TRA miss ⇒ previous frame's track table (a deep-copied snapshot,
		// immune to the tracker's later mutation).
		Fallback: func(fs *frameState) {
			fs.res.Tracks = p.held.tracks
		},
		Held: func(fs *frameState) {
			p.held.tracks = fs.res.Tracks
		},
	}
	g.stages[StageFusion] = StageSpec{
		ID: StageFusion, Engine: p.fuse, Deps: []StageID{StageTra, StageLoc}, Run: p.runFusion,
		Reads: func(dst, src *frameState) {
			dst.res.Tracks = src.res.Tracks
			dst.res.Pose = src.res.Pose
		},
		Writes: func(dst, src *frameState) {
			dst.res.Fused = src.res.Fused
			dst.res.Timing.Fusion = src.res.Timing.Fusion
		},
		Fallback: func(fs *frameState) {
			fs.res.Fused = p.held.fused
		},
		Held: func(fs *frameState) {
			p.held.fused = fs.res.Fused
		},
	}
	g.stages[StageMisplan] = StageSpec{
		ID: StageMisplan, Engine: p.mis, Deps: []StageID{StageLoc}, Run: p.runMisplan,
		Reads: func(dst, src *frameState) {
			dst.res.Pose = src.res.Pose
			dst.res.Frame = src.res.Frame
		},
		Writes: func(dst, src *frameState) {
			dst.res.Guidance = src.res.Guidance
			dst.res.Timing.MisPlan = src.res.Timing.MisPlan
			dst.targetSpeed = src.targetSpeed
		},
		Fallback: func(fs *frameState) {
			fs.res.Guidance = p.held.guidance
			fs.targetSpeed = p.held.targetSpeed
		},
		Held: func(fs *frameState) {
			p.held.guidance = fs.res.Guidance
			p.held.targetSpeed = fs.targetSpeed
		},
	}
	g.stages[StageMotplan] = StageSpec{
		ID: StageMotplan, Engine: p.mot, Deps: []StageID{StageFusion, StageMisplan}, Run: p.runMotplan,
		Reads: func(dst, src *frameState) {
			dst.res.Fused = src.res.Fused
			dst.res.Pose = src.res.Pose
			dst.targetSpeed = src.targetSpeed
		},
		Writes: func(dst, src *frameState) {
			dst.res.Plan = src.res.Plan
			dst.res.Timing.MotPlan = src.res.Timing.MotPlan
		},
		// MOTPLAN miss ⇒ previous-plan hold: the vehicle keeps following
		// the last committed trajectory for one frame.
		Fallback: func(fs *frameState) {
			fs.res.Plan = p.held.plan
		},
		Held: func(fs *frameState) {
			p.held.plan = fs.res.Plan
		},
	}
	g.stages[StageControl] = StageSpec{
		ID: StageControl, Engine: p.ctl, Deps: []StageID{StageMotplan}, Run: p.runControl,
		Reads: func(dst, src *frameState) {
			dst.res.Pose = src.res.Pose
			dst.res.Plan = src.res.Plan
			dst.res.Timing = src.res.Timing
		},
		Writes: func(dst, src *frameState) {
			dst.res.Command = src.res.Command
			dst.res.Timing.Control = src.res.Timing.Control
			dst.res.Timing.E2E = src.res.Timing.E2E
		},
		// CONTROL miss ⇒ previous-command hold. The fallback still seals
		// the frame's E2E timing — CONTROL is the terminal stage.
		Fallback: func(fs *frameState) {
			fs.res.Command = p.held.command
			sealE2E(&fs.res.Timing)
		},
		Held: func(fs *frameState) {
			p.held.command = fs.res.Command
		},
	}
	return g
}

// Graph exposes the validated stage graph (for inspection and tests).
func (p *Pipeline) Graph() *Graph { return &p.g }

// AttachMission wires a mission planner into the pipeline; its per-leg
// speed limit then caps the motion planner's target speed.
func (p *Pipeline) AttachMission(m *mission.Planner) { p.mis = m }

// AttachTail wires a tail-latency controller into the SEQUENTIAL executor:
// every Step is stamped with the controller's current DET resolution rung
// and its delivered wall latency feeds the rolling tail signal. With one
// frame in flight the admission-window knob is pinned at 1, so only the
// resolution ladder (and, via DeadlinePolicy.Anytime, the anytime exit)
// acts. Pipelined runs pass the scheduler to RunnerOptions.Tail instead —
// never to both: a scheduler serves exactly one executor.
func (p *Pipeline) AttachTail(t *TailScheduler) error {
	if t == nil {
		return fmt.Errorf("pipeline: nil tail scheduler")
	}
	if err := t.attach(1); err != nil {
		return err
	}
	p.det.Warm(t.ladder...)
	p.tail = t
	return nil
}

// Localizer exposes the LOC engine (for map/statistics inspection).
func (p *Pipeline) Localizer() *slam.Engine { return p.loc }

// Tracker exposes the TRA engine.
func (p *Pipeline) Tracker() *track.Engine { return p.tra }

// Step renders the next frame and runs it through the full stage graph
// with one frame in flight (stages still overlap within the frame wherever
// the graph allows — DET and LOC in parallel, per Fig 1). Runner pipelines
// the same graph across multiple in-flight frames.
func (p *Pipeline) Step() (FrameResult, error) {
	fs := &frameState{admitted: time.Now()}
	if p.tail != nil {
		// Sequential admission never blocks (the window is pinned at 1 and
		// nothing else is in flight); this claims the slot and commits the
		// frame's resolution rung.
		if size, ok := p.tail.admit(); ok {
			fs.detSize = size
		}
	}
	p.runFrame(fs)
	p.sealFrame(fs)
	err := fs.err()
	wall := time.Since(fs.admitted)
	if p.tail != nil {
		p.tail.frameDone(float64(wall) / 1e6)
	}
	p.sink.FrameDone(telemetry.FrameEnd{
		Frame:    fs.res.Frame.Index,
		Wall:     wall,
		Err:      err != nil,
		Degraded: fs.res.Degraded.Any(),
	})
	return fs.res, err
}

// Drain blocks until every abandoned late stage attempt has finished. Call
// it when the pipeline is quiescent (after Step returns, or after a
// Runner's result channel closes) and before inspecting engines directly —
// under wall-clock deadline enforcement a budget-blown stage's attempt may
// still be running in the background.
func (p *Pipeline) Drain() {
	for id := StageID(0); id < NumStages; id++ {
		p.drainStage(id)
	}
}

// runSrc renders the next scenario frame (the SRC stage).
func (p *Pipeline) runSrc(fs *frameState) error {
	fs.res.Frame = p.gen.Step()
	return nil
}

// runDet executes the DET stage for one frame, filling Detections and the
// DET timings. Timing comes back from the engine by return value, so
// overlapping frames in the pipelined runner cannot alias each other's
// instrumentation. The frame state carries the tail scheduler's per-frame
// resolution rung and the deadline layer's anytime-exit signals into the
// engine, and the engine's early-exit flag back out.
func (p *Pipeline) runDet(fs *frameState) error {
	start := time.Now()
	dets, tm, info := p.det.DetectBudgeted(fs.res.Frame.Image, detect.BudgetOpts{
		InputSize:   fs.detSize,
		Deadline:    fs.detDeadline,
		VirtualFrac: fs.anytimeFrac,
	})
	fs.anytime = info.EarlyExit
	fs.res.Detections = dets
	fs.res.Timing.Det = time.Since(start)
	fs.res.Timing.DetDNN = tm.DNN
	if tm.DNN > 0 {
		p.sink.Span(telemetry.Span{Stage: "DET/dnn", Frame: fs.res.Frame.Index, Exec: tm.DNN})
	}
	return nil
}

// runLoc executes the LOC stage for one frame, filling Pose and the LOC
// timings.
func (p *Pipeline) runLoc(fs *frameState) error {
	start := time.Now()
	est, tm := p.loc.LocalizeTimed(fs.res.Frame.Image)
	fs.res.Pose = est
	fs.res.Timing.Loc = time.Since(start)
	fs.res.Timing.LocFE = tm.FE
	if tm.FE > 0 {
		p.sink.Span(telemetry.Span{Stage: "LOC/fe", Frame: fs.res.Frame.Index, Exec: tm.FE})
	}
	return nil
}

// runTra executes the TRA stage for one frame (step 1c): the tracker table
// advances and res receives a deep-copied snapshot immune to later frames.
// The kernel sub-spans are emitted only on frames where the tracker pool's
// DNN actually ran, mirroring the Fig 7 accounting (per-tracker work sums,
// not wall time).
func (p *Pipeline) runTra(fs *frameState) error {
	start := time.Now()
	dets := make([]track.Detection, len(fs.res.Detections))
	for i, d := range fs.res.Detections {
		dets[i] = track.Detection{Box: d.Box, Class: d.Class}
	}
	tracks, tm := p.tra.Step(fs.res.Frame.Image, dets)
	fs.res.Tracks = tracks
	fs.res.Timing.Tra = time.Since(start)
	fs.res.Timing.TraDNN = tm.DNN
	fs.res.Timing.TraOther = tm.Other
	if tm.DNN > 0 {
		p.sink.Span(telemetry.Span{Stage: "TRA/dnn", Frame: fs.res.Frame.Index, Exec: tm.DNN})
		p.sink.Span(telemetry.Span{Stage: "TRA/other", Frame: fs.res.Frame.Index, Exec: tm.Other})
	}
	return nil
}

// runFusion executes the FUSION stage (step 2): tracked objects and the
// vehicle pose merge into one world frame.
func (p *Pipeline) runFusion(fs *frameState) error {
	start := time.Now()
	tracked := make([]fusion.TrackedObject, len(fs.res.Tracks))
	for i, tr := range fs.res.Tracks {
		tracked[i] = fusion.TrackedObject{
			ID: tr.ID, Class: tr.Class, Box: tr.Box, VX: tr.VX, VY: tr.VY,
		}
	}
	fs.res.Fused = p.fuse.Fuse(fs.res.Pose.Pose, tracked)
	fs.res.Timing.Fusion = time.Since(start)
	return nil
}

// runMisplan executes the MISPLAN stage (step 4; route re-planned only on
// deviation). The rule engine's outputs shape the motion plan: the leg's
// speed limit caps the target speed, and an upcoming stop line ramps it
// down linearly over the approach zone so the vehicle arrives stopped. The
// shaped speed travels to MOTPLAN through the frame state, never by
// mutating shared configuration.
func (p *Pipeline) runMisplan(fs *frameState) error {
	fs.targetSpeed = p.cfg.Plan.TargetSpeed
	if p.mis == nil {
		return nil
	}
	start := time.Now()
	guid, err := p.mis.UpdateAt(fs.res.Pose.Pose.X, fs.res.Pose.Pose.Z, fs.res.Frame.Time)
	if err != nil {
		return fmt.Errorf("pipeline: mission update: %w", err)
	}
	fs.res.Guidance = guid
	ts := fs.targetSpeed
	if guid.SpeedLimit > 0 && guid.SpeedLimit < ts {
		ts = guid.SpeedLimit
	}
	const stopApproach = 30.0 // meters over which to ramp down
	if guid.StopAhead && guid.DistanceToLegEnd < stopApproach {
		ramp := guid.DistanceToLegEnd / stopApproach
		if ramp < 0.15 {
			ramp = 0.15 // planner needs a positive speed; control stops
		}
		if v := ts * ramp; v < ts {
			ts = v
		}
	}
	fs.targetSpeed = ts
	fs.res.Timing.MisPlan = time.Since(start)
	return nil
}

// runMotplan executes the MOTPLAN stage (step 3): plan in the ego lane
// frame against fused objects, under MISPLAN's guidance-shaped target
// speed.
func (p *Pipeline) runMotplan(fs *frameState) error {
	start := time.Now()
	obstacles := make([]plan.Obstacle, 0, len(fs.res.Fused.Objects))
	for _, o := range fs.res.Fused.Objects {
		obstacles = append(obstacles, plan.Obstacle{
			X: o.X, Z: o.Z, Radius: o.Width/2 + 0.5, VX: o.VX, VZ: o.VZ,
		})
	}
	pr, err := p.mot.Plan(fs.res.Pose.Pose.X, fs.res.Pose.Pose.Z, obstacles, fs.targetSpeed)
	if err != nil {
		return fmt.Errorf("pipeline: motion planning: %w", err)
	}
	fs.res.Plan = pr
	fs.res.Timing.MotPlan = time.Since(start)
	return nil
}

// runControl executes the CONTROL stage (step 5): actuation commands that
// follow the plan. As the graph's terminal stage it also seals the frame's
// E2E timing under the dependency law.
func (p *Pipeline) runControl(fs *frameState) error {
	start := time.Now()
	speed := p.cfg.Scene.EgoSpeed // the scenario ego's current speed
	fs.res.Command = p.ctl.Track(control.State{
		X: fs.res.Pose.Pose.X, Z: fs.res.Pose.Pose.Z,
		Theta: fs.res.Pose.Pose.Theta, Speed: speed,
	}, fs.res.Plan.Path)
	fs.res.Timing.Control = time.Since(start)
	sealE2E(&fs.res.Timing)
	return nil
}

// sealE2E computes the frame's end-to-end latency under the dependency
// law: max(LOC, DET+TRA) + FUSION + MOTPLAN + CONTROL. Factored out so
// CONTROL's degraded fallback seals timing the same way the real body
// does.
func sealE2E(tm *StageTiming) {
	critical := tm.Det + tm.Tra
	if tm.Loc > critical {
		critical = tm.Loc
	}
	tm.E2E = critical + tm.Fusion + tm.MotPlan + tm.Control
}
