// Package pipeline assembles the end-to-end autonomous driving system of
// the paper's Figure 1 and drives it in two modes:
//
//   - Native mode executes the real Go implementations of every engine on
//     synthetic camera frames: the frame fans out to the object detector
//     (DET) and the localizer (LOC) in parallel, DET's objects feed the
//     tracker (TRA), the tracked objects and the vehicle pose are fused
//     into one world frame (FUSION), and the motion planner (MOTPLAN)
//     produces the operational decision. The mission planner (MISPLAN) is
//     consulted for route guidance and re-planned only on deviation.
//
//   - Simulated mode (sim.go) composes per-frame latency samples from the
//     calibrated platform models in internal/accel at full paper scale,
//     which is how the paper's latency figures are regenerated.
package pipeline

import (
	"fmt"
	"sync"
	"time"

	"adsim/internal/control"
	"adsim/internal/detect"
	"adsim/internal/fusion"
	"adsim/internal/mission"
	"adsim/internal/plan"
	"adsim/internal/scene"
	"adsim/internal/slam"
	"adsim/internal/track"
)

// Config parameterizes the native pipeline.
type Config struct {
	Scene   scene.Config
	Detect  detect.Config
	Track   track.Config
	SLAM    slam.Config
	Plan    plan.ConformalConfig
	Control control.Config
	// SurveyFrames builds the prior map by surveying this many frames of
	// an identical scenario before the run starts (the offline map
	// provider role). 0 keeps the map empty (the localizer dead-reckons
	// and relocalizes).
	SurveyFrames int
}

// DefaultConfig returns a ready-to-run native configuration for a scenario
// kind, sized so native execution is fast enough for tests and examples.
func DefaultConfig(kind scene.Kind) Config {
	sc := scene.DefaultConfig(kind)
	sc.Width, sc.Height = 512, 256
	pc := plan.DefaultConformalConfig()
	pc.TargetSpeed = sc.EgoSpeed
	return Config{
		Scene:        sc,
		Detect:       detect.DefaultConfig(),
		Track:        track.DefaultConfig(),
		SLAM:         slam.DefaultConfig(),
		Plan:         pc,
		Control:      control.DefaultConfig(),
		SurveyFrames: 60,
	}
}

// StageTiming is the per-frame wall-clock timing of every stage, plus the
// DNN/FE instrumentation the cycle-breakdown experiment consumes.
type StageTiming struct {
	Det, Tra, Loc, Fusion, MotPlan, Control time.Duration
	// E2E follows the dependency structure: max(LOC, DET+TRA) + FUSION +
	// MOTPLAN (DET and LOC run in parallel).
	E2E time.Duration
	// Breakdown instrumentation. TraDNN and TraOther sum per-tracker
	// durations across the tracker pool — total pool work, not wall time,
	// when trackers propagate in parallel — so the TRA cycle breakdown is
	// TraDNN/(TraDNN+TraOther), in consistent units.
	DetDNN, TraDNN, TraOther, LocFE time.Duration
}

// FrameResult is the output of one pipeline step.
type FrameResult struct {
	Frame      scene.Frame
	Detections []detect.Detection
	Tracks     []*track.Track
	Pose       slam.Estimate
	Fused      fusion.Frame
	Plan       plan.ConformalResult
	Guidance   mission.Guidance
	Command    control.Command
	Timing     StageTiming
}

// Pipeline is the native end-to-end system. Step is not safe for concurrent
// use — one frame at a time; hand the pipeline to a Runner to overlap
// multiple in-flight frames.
type Pipeline struct {
	cfg Config
	gen *scene.Generator

	det  *detect.Detector
	tra  *track.Engine
	loc  *slam.Engine
	fuse *fusion.Engine
	ctl  *control.Controller
	mis  *mission.Planner // optional
}

// NewNative constructs the native pipeline, surveying the prior map first
// when configured.
func NewNative(cfg Config) (*Pipeline, error) {
	gen, err := scene.New(cfg.Scene)
	if err != nil {
		return nil, err
	}
	det, err := detect.New(cfg.Detect)
	if err != nil {
		return nil, err
	}
	tra, err := track.New(cfg.Track)
	if err != nil {
		return nil, err
	}
	loc, err := slam.NewEngine(cfg.SLAM, slam.NewPriorMap())
	if err != nil {
		return nil, err
	}
	fuse, err := fusion.New(gen.Camera(), cfg.Scene.FPS)
	if err != nil {
		return nil, err
	}
	ctl, err := control.New(cfg.Control)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{cfg: cfg, gen: gen, det: det, tra: tra, loc: loc, fuse: fuse, ctl: ctl}

	if cfg.SurveyFrames > 0 {
		survey, err := scene.New(cfg.Scene)
		if err != nil {
			return nil, err
		}
		for i := 0; i < cfg.SurveyFrames; i++ {
			f := survey.Step()
			p.loc.Survey(f.Image, f.EgoPose)
		}
	}
	return p, nil
}

// AttachMission wires a mission planner into the pipeline; its per-leg
// speed limit then caps the motion planner's target speed.
func (p *Pipeline) AttachMission(m *mission.Planner) { p.mis = m }

// Localizer exposes the LOC engine (for map/statistics inspection).
func (p *Pipeline) Localizer() *slam.Engine { return p.loc }

// Tracker exposes the TRA engine.
func (p *Pipeline) Tracker() *track.Engine { return p.tra }

// Step renders the next frame and runs it through the full pipeline
// sequentially (one frame in flight). Runner pipelines the same stage
// functions across multiple in-flight frames.
func (p *Pipeline) Step() (FrameResult, error) {
	res := FrameResult{Frame: p.gen.Step()}

	// DET and LOC consume the frame in parallel (Fig 1, steps 1a/1b).
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.runDet(&res)
	}()
	go func() {
		defer wg.Done()
		p.runLoc(&res)
	}()
	wg.Wait()

	p.runTra(&res)
	if err := p.finishFrame(&res); err != nil {
		return res, err
	}
	return res, nil
}

// runDet executes the DET stage for one frame, filling Detections and the
// DET timings. Timing comes back from the engine by return value, so
// overlapping frames in the pipelined runner cannot alias each other's
// instrumentation.
func (p *Pipeline) runDet(res *FrameResult) {
	start := time.Now()
	dets, tm := p.det.DetectTimed(res.Frame.Image)
	res.Detections = dets
	res.Timing.Det = time.Since(start)
	res.Timing.DetDNN = tm.DNN
}

// runLoc executes the LOC stage for one frame, filling Pose and the LOC
// timings.
func (p *Pipeline) runLoc(res *FrameResult) {
	start := time.Now()
	est, tm := p.loc.LocalizeTimed(res.Frame.Image)
	res.Pose = est
	res.Timing.Loc = time.Since(start)
	res.Timing.LocFE = tm.FE
}

// runTra executes the TRA stage for one frame (step 1c): the tracker table
// advances and res receives a deep-copied snapshot immune to later frames.
func (p *Pipeline) runTra(res *FrameResult) {
	start := time.Now()
	dets := make([]track.Detection, len(res.Detections))
	for i, d := range res.Detections {
		dets[i] = track.Detection{Box: d.Box, Class: d.Class}
	}
	tracks, tm := p.tra.Step(res.Frame.Image, dets)
	res.Tracks = tracks
	res.Timing.Tra = time.Since(start)
	res.Timing.TraDNN = tm.DNN
	res.Timing.TraOther = tm.Other
}

// finishFrame runs the back half of the pipeline — FUSION, MISPLAN
// guidance, MOTPLAN and vehicle control — and seals the frame's E2E timing
// under the dependency law. It requires runDet, runLoc and runTra to have
// completed for this frame.
func (p *Pipeline) finishFrame(res *FrameResult) error {
	frame := res.Frame

	// FUSION (step 2).
	startFuse := time.Now()
	tracked := make([]fusion.TrackedObject, len(res.Tracks))
	for i, tr := range res.Tracks {
		tracked[i] = fusion.TrackedObject{
			ID: tr.ID, Class: tr.Class, Box: tr.Box, VX: tr.VX, VY: tr.VY,
		}
	}
	res.Fused = p.fuse.Fuse(res.Pose.Pose, tracked)
	res.Timing.Fusion = time.Since(startFuse)

	// MISPLAN guidance (step 4; route re-planned only on deviation). The
	// rule engine's outputs shape the motion plan: the leg's speed limit
	// caps the target speed, and an upcoming stop line ramps it down
	// linearly over the approach zone so the vehicle arrives stopped.
	planCfg := p.cfg.Plan
	if p.mis != nil {
		guid, err := p.mis.UpdateAt(res.Pose.Pose.X, res.Pose.Pose.Z, frame.Time)
		if err != nil {
			return fmt.Errorf("pipeline: mission update: %w", err)
		}
		res.Guidance = guid
		if guid.SpeedLimit > 0 && guid.SpeedLimit < planCfg.TargetSpeed {
			planCfg.TargetSpeed = guid.SpeedLimit
		}
		const stopApproach = 30.0 // meters over which to ramp down
		if guid.StopAhead && guid.DistanceToLegEnd < stopApproach {
			ramp := guid.DistanceToLegEnd / stopApproach
			if ramp < 0.15 {
				ramp = 0.15 // planner needs a positive speed; control stops
			}
			if v := planCfg.TargetSpeed * ramp; v < planCfg.TargetSpeed {
				planCfg.TargetSpeed = v
			}
		}
	}

	// MOTPLAN (step 3): plan in the ego lane frame against fused objects.
	startPlan := time.Now()
	obstacles := make([]plan.Obstacle, 0, len(res.Fused.Objects))
	for _, o := range res.Fused.Objects {
		obstacles = append(obstacles, plan.Obstacle{
			X: o.X, Z: o.Z, Radius: o.Width/2 + 0.5, VX: o.VX, VZ: o.VZ,
		})
	}
	pr, err := plan.PlanConformal(planCfg, res.Pose.Pose.X, res.Pose.Pose.Z, obstacles)
	if err != nil {
		return fmt.Errorf("pipeline: motion planning: %w", err)
	}
	res.Plan = pr
	res.Timing.MotPlan = time.Since(startPlan)

	// Vehicle control (step 5): actuation commands that follow the plan.
	startCtl := time.Now()
	speed := p.cfg.Scene.EgoSpeed // the scenario ego's current speed
	res.Command = p.ctl.Track(control.State{
		X: res.Pose.Pose.X, Z: res.Pose.Pose.Z,
		Theta: res.Pose.Pose.Theta, Speed: speed,
	}, res.Plan.Path)
	res.Timing.Control = time.Since(startCtl)

	// End-to-end per the dependency law.
	critical := res.Timing.Det + res.Timing.Tra
	if res.Timing.Loc > critical {
		critical = res.Timing.Loc
	}
	res.Timing.E2E = critical + res.Timing.Fusion + res.Timing.MotPlan + res.Timing.Control
	return nil
}
