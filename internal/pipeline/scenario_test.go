package pipeline

import (
	"testing"

	"adsim/internal/faultinject"
	"adsim/internal/scenario"
	"adsim/internal/scene"
)

// This file extends the chaos suite to scenario programs: the executor
// equivalence contract must hold when the world itself changes mid-run
// (arrival-process spawns, driver maneuvers, blackout/occlusion windows,
// loop segments) and the program's fault rules fire on top.

// scenarioChaosProgram is a compound program scaled to the chaos suite's
// short runs (24 frames at 10 fps = 2.4 s): dense aggressive traffic, then
// a dusk phase with a blackout and an occlusion, with DET/LOC faults
// firing throughout.
const scenarioChaosProgram = `
phase 0-1s: density=30/km, peds=10/km, driver=aggressive
phase 1-2.4s: illumination=0.5, blackout=200ms@1.2s, occlusion=300ms@1.6s
DET:delay=50ms:every=4, LOC:delay=90ms:p=0.3
`

// scenarioChaosConfig compiles a program into a virtual-enforcement config:
// timeline onto the scene, fault rules onto the injector.
func scenarioChaosConfig(t *testing.T, kind scene.Kind, src string, seed int64) Config {
	t.Helper()
	prog, err := scenario.Parse("chaos", src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastNativeConfig(kind)
	cfg.Scene = prog.Configure(cfg.Scene)
	cfg.Deadline = DeadlinePolicy{Enforce: true, Virtual: true}
	inj, err := faultinject.New(faultinject.FromProgram(prog, seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Inject = inj.Stage
	return cfg
}

// TestScenarioProgramStepRunnerEquivalence: under a full scenario program —
// world phases and fault rules together — the sequential Step loop and the
// pipelined Runner deliver bitwise-identical result, DegradedMask and error
// sequences.
func TestScenarioProgramStepRunnerEquivalence(t *testing.T) {
	const frames = 24
	for _, seed := range []int64{1, 9} {
		seq := runChaosStep(t, scenarioChaosConfig(t, scene.Urban, scenarioChaosProgram, seed), frames)
		pipe := runChaosRunner(t, scenarioChaosConfig(t, scene.Urban, scenarioChaosProgram, seed), frames, 4)
		requireIdenticalRuns(t, seq, pipe)

		degraded := 0
		for _, m := range seq.masks {
			if m.Any() {
				degraded++
			}
		}
		if degraded == 0 {
			t.Errorf("seed %d: scenario program produced no degraded frames", seed)
		}
	}
}

// TestScenarioProgramReplayIdentical: the same program and seed replays the
// identical delivered sequence — the pipeline-level half of the program
// replayability contract (the scene-level half is in internal/scene).
func TestScenarioProgramReplayIdentical(t *testing.T) {
	const frames = 20
	a := runChaosStep(t, scenarioChaosConfig(t, scene.Highway, scenarioChaosProgram, 3), frames)
	b := runChaosStep(t, scenarioChaosConfig(t, scene.Highway, scenarioChaosProgram, 3), frames)
	requireIdenticalRuns(t, a, b)
}

// TestFleetSceneAssignment: FleetConfig.Scenes assigns a different scenario
// to one vehicle. The assigned vehicle must run its own world (visible in
// its ego trajectory) while the others keep the template's, and the
// assigned scene must still get a per-vehicle seed.
func TestFleetSceneAssignment(t *testing.T) {
	tmpl := fastNativeConfig(scene.Highway)
	tmpl.SurveyFrames = 10

	slow := tmpl.Scene
	slow.EgoSpeed = 5 // template highway ego drives 28 m/s
	prog := scenario.MustParse("crawl", "phase 0-: density=0/km, peds=0/km")
	slow = prog.Configure(slow)

	f, err := NewFleet(FleetConfig{
		Vehicles: 2,
		Config:   tmpl,
		Scenes:   map[int]scene.Config{1: slow},
		InFlight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 10
	var lastZ [2]float64
	rep := f.Run(frames, func(vehicle int, res RunnerResult) {
		if res.Err != nil {
			t.Errorf("vehicle %d frame %d: %v", vehicle, res.Frame.Index, res.Err)
		}
		if res.Frame.Index == frames-1 {
			lastZ[vehicle] = res.Frame.EgoPose.Z
		}
	})
	if rep.Frames != 2*frames {
		t.Fatalf("delivered %d frames, want %d", rep.Frames, 2*frames)
	}
	// 9 frames at 28 m/s vs 5 m/s: the assigned vehicle must trail far behind.
	if lastZ[1] >= lastZ[0]/2 {
		t.Errorf("assigned scene ignored: ego Z = %v (template %v)", lastZ[1], lastZ[0])
	}
	// Ego advances EgoSpeed/FPS per frame starting at frame 1.
	if want := 5 * float64(frames-1) / 10; lastZ[1] <= 0 || lastZ[1] > 2*want {
		t.Errorf("assigned vehicle Z = %g, want ~%g", lastZ[1], want)
	}
}
