package pipeline

import (
	"reflect"
	"testing"
	"time"

	"adsim/internal/faultinject"
	"adsim/internal/scene"
	"adsim/internal/testutil"
)

// This file tests the closed-loop tail-latency controller (tail.go): the
// controller law itself on synthetic latencies, the degenerate pinned-at-1
// window (which must be bitwise-identical to Step), forced mid-flight
// shrinks (which must never reorder delivery), and the anytime/pending
// drain interactions under wall-clock enforcement.

func TestTailSchedulerValidation(t *testing.T) {
	bad := []TailConfig{
		{Target: -time.Millisecond},
		{Window: -1},
		{Period: -1},
		{Recover: -1},
		{HighFrac: 0.3, LowFrac: 0.5}, // low >= high
		{LowFrac: -0.1},               // low <= 0
		{Ladder: []int{100}},          // not a multiple of 16
		{Ladder: []int{64, 64}},       // not strictly descending
		{Ladder: []int{48, 64}},       // ascending
		{Ladder: []int{64, 48, 0}},    // non-positive rung
	}
	for i, cfg := range bad {
		if _, err := NewTailScheduler(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}

	// A scheduler serves exactly one executor.
	ts, err := NewTailScheduler(TailConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.attach(2); err != nil {
		t.Fatal(err)
	}
	if err := ts.attach(2); err == nil {
		t.Error("double attach accepted")
	}
	p, err := NewNative(fastNativeConfig(scene.Highway))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AttachTail(nil); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := NewRunner(p, RunnerOptions{InFlight: 2, Tail: ts}); err == nil {
		t.Error("runner accepted an already-attached scheduler")
	}
	if err := ts.attach(0); err == nil {
		t.Error("non-positive ceiling accepted")
	}
}

// TestTailControllerLaw drives the controller with synthetic delivered
// latencies and checks the committed escalation order: congestion shrinks
// the window all the way to 1 BEFORE the ladder gives up resolution, and
// recovery climbs the ladder back to base BEFORE the window regrows.
func TestTailControllerLaw(t *testing.T) {
	ts, err := NewTailScheduler(TailConfig{
		Target:  100 * time.Millisecond, // watermarks: high 75ms, low 45ms
		Window:  8,
		Period:  4,
		Recover: 2,
		Ladder:  []int{64, 48, 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.attach(3); err != nil {
		t.Fatal(err)
	}
	if got := ts.InputSize(); got != 64 {
		t.Fatalf("base InputSize = %d, want 64", got)
	}

	feed := func(n int, wallMs float64) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, ok := ts.admit(); !ok {
				t.Fatal("admit interrupted")
			}
			ts.frameDone(wallMs)
			// Escalation-order invariant, both directions: the ladder only
			// ever leaves base resolution while the window sits at its floor.
			if ts.InputSize() < 64 && ts.WindowLimit() != 1 {
				t.Fatalf("rung below base at window %d: escalation order violated", ts.WindowLimit())
			}
		}
	}

	// Congestion: 90ms tail, decision every 4 frames. Two decisions take the
	// window 3 -> 1; the ladder must still be at base.
	feed(8, 90)
	if got := ts.WindowLimit(); got != 1 {
		t.Fatalf("after 2 congested periods WindowLimit = %d, want 1", got)
	}
	if got := ts.InputSize(); got != 64 {
		t.Fatalf("ladder moved before the window floor: InputSize = %d", got)
	}
	// Two more decisions descend the ladder 64 -> 48 -> 32.
	feed(8, 90)
	if got := ts.InputSize(); got != 32 {
		t.Fatalf("after 4 congested periods InputSize = %d, want 32", got)
	}
	// Both knobs at their floor: further congestion holds.
	feed(4, 90)
	if ts.WindowLimit() != 1 || ts.InputSize() != 32 {
		t.Fatalf("floors moved: window %d, size %d", ts.WindowLimit(), ts.InputSize())
	}
	if ts.MinWindowLimit() != 1 || ts.MaxRungDepth() != 2 {
		t.Fatalf("trajectory: minLimit %d (want 1), maxRung %d (want 2)",
			ts.MinWindowLimit(), ts.MaxRungDepth())
	}

	// Recovery: 10ms frames. The rolling window (8) must first flush the
	// 90ms samples, then every Recover (2) calm periods steps one knob:
	// ladder back to base first, window regrowth last.
	feed(20, 10)
	if got := ts.InputSize(); got != 64 {
		t.Fatalf("after calm recovery InputSize = %d, want base 64", got)
	}
	if got := ts.WindowLimit(); got != 1 {
		t.Fatalf("window regrew before the ladder reached base: limit = %d", got)
	}
	feed(20, 10)
	if got := ts.WindowLimit(); got != 3 {
		t.Fatalf("after sustained calm WindowLimit = %d, want ceiling 3", got)
	}
	if got := ts.Monitor().Snapshot().Total; got != 60 {
		t.Fatalf("monitor folded %d frames, want 60", got)
	}
}

// TestTailAdmitBlocksAndInterrupts pins the admission contract: admit
// blocks once in-flight reaches the live limit, frameDone frees a slot, and
// interrupt permanently unblocks waiters with ok=false.
func TestTailAdmitBlocksAndInterrupts(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	ts, err := NewTailScheduler(TailConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.attach(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := ts.admit(); !ok {
		t.Fatal("first admit refused")
	}
	admitted := make(chan bool, 2)
	go func() {
		_, ok := ts.admit()
		admitted <- ok
	}()
	select {
	case <-admitted:
		t.Fatal("second admit did not block at limit 1")
	case <-time.After(20 * time.Millisecond):
	}
	ts.frameDone(1)
	select {
	case ok := <-admitted:
		if !ok {
			t.Fatal("unblocked admit reported not-ok")
		}
	case <-time.After(time.Second):
		t.Fatal("frameDone did not unblock admission")
	}
	go func() {
		_, ok := ts.admit()
		admitted <- ok
	}()
	ts.interrupt()
	select {
	case ok := <-admitted:
		if ok {
			t.Fatal("interrupted admit reported ok")
		}
	case <-time.After(time.Second):
		t.Fatal("interrupt did not unblock admission")
	}
}

// TestTailPinnedWindowMatchesStep is the degenerate-window guard: a Runner
// whose tail scheduler is pinned at ceiling 1 must deliver results
// bitwise-identical (modulo timing) to a plain sequential Step loop — the
// adaptive window has nowhere to go and the resolution ladder, when it does
// move, must not change results (the detection path is a pure function of
// the frame, not of the DNN input size).
func TestTailPinnedWindowMatchesStep(t *testing.T) {
	const frames = 8
	cfg := fastNativeConfig(scene.Urban)
	cfg.Detect.RunDNN = true
	cfg.Track.RunDNN = true

	seq, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]FrameResult, 0, frames)
	for i := 0; i < frames; i++ {
		res, err := seq.Step()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, stripSchedule(res))
	}

	ts, err := NewTailScheduler(TailConfig{Ladder: []int{64, 48, 32}})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(pipe, RunnerOptions{InFlight: 1, Tail: ts})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]FrameResult, 0, frames)
	for res := range r.Run(frames) {
		if res.Err != nil {
			t.Fatalf("frame %d: %v", res.Frame.Index, res.Err)
		}
		got = append(got, stripSchedule(res.FrameResult))
	}
	if len(got) != frames {
		t.Fatalf("delivered %d frames, want %d", len(got), frames)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("frame %d: pinned-window tail run differs from sequential Step", i)
		}
	}
	if ts.WindowLimit() != 1 || ts.MinWindowLimit() != 1 {
		t.Errorf("pinned window moved: limit %d, min %d", ts.WindowLimit(), ts.MinWindowLimit())
	}
}

// TestTailRunnerShrinkKeepsOrder forces the controller to shrink on every
// decision (an unreachable nanosecond target) while frames are in flight:
// the window must collapse 6 -> 1 and the ladder descend to its floor
// mid-run, yet delivery stays in admission order and results stay
// bitwise-identical to a static sequential run — in-order scale transitions
// preserve the executors' equivalence.
func TestTailRunnerShrinkKeepsOrder(t *testing.T) {
	const frames = 40
	cfg := fastNativeConfig(scene.Urban)

	seq, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]FrameResult, 0, frames)
	for i := 0; i < frames; i++ {
		res, err := seq.Step()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, stripSchedule(res))
	}

	ts, err := NewTailScheduler(TailConfig{
		Target: time.Nanosecond, // every observed latency reads as congestion
		Window: 16,
		Period: 2,
		Ladder: []int{64, 48, 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(pipe, RunnerOptions{InFlight: 6, Tail: ts})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for res := range r.Run(frames) {
		if res.Err != nil {
			t.Fatalf("frame %d: %v", res.Frame.Index, res.Err)
		}
		if res.Frame.Index != next {
			t.Fatalf("frame %d delivered at position %d: shrink reordered delivery", res.Frame.Index, next)
		}
		if !reflect.DeepEqual(stripSchedule(res.FrameResult), want[next]) {
			t.Errorf("frame %d: adaptive run differs from static sequential run", next)
		}
		next++
	}
	if next != frames {
		t.Fatalf("delivered %d frames, want %d", next, frames)
	}
	if got := ts.MinWindowLimit(); got != 1 {
		t.Errorf("window never collapsed: min limit %d, want 1", got)
	}
	if got := ts.MaxRungDepth(); got != 2 {
		t.Errorf("ladder depth %d, want 2 (floor)", got)
	}
	if got := ts.Monitor().Snapshot().Total; got != frames {
		t.Errorf("monitor folded %d frames, want %d", got, frames)
	}
}

// TestTailSequentialAttach drives the ladder through the SEQUENTIAL
// executor (AttachTail): the window is pinned at 1 by construction, the
// rung descends under the unreachable target, and results stay identical
// to an unscheduled Step loop.
func TestTailSequentialAttach(t *testing.T) {
	const frames = 20
	cfg := fastNativeConfig(scene.Urban)

	plain, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]FrameResult, 0, frames)
	for i := 0; i < frames; i++ {
		res, err := plain.Step()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, stripSchedule(res))
	}

	ts, err := NewTailScheduler(TailConfig{
		Target: time.Nanosecond,
		Window: 16,
		Period: 2,
		Ladder: []int{64, 48, 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.AttachTail(ts); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		res, err := sched.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripSchedule(res), want[i]) {
			t.Errorf("frame %d: scheduled sequential run differs from plain Step", i)
		}
	}
	if ts.WindowLimit() != 1 {
		t.Errorf("sequential window = %d, want pinned 1", ts.WindowLimit())
	}
	if got := ts.MaxRungDepth(); got != 2 {
		t.Errorf("ladder depth %d, want 2", got)
	}
}

// TestAnytimeLateAttemptDrain is the pending-drain regression for the
// anytime path (wall-clock enforcement): an injected stall far past DET's
// budget means the miss timer fires while the attempt is still sleeping —
// the attempt, once it wakes, sees its anytime deadline long expired and
// exits at layer zero, and its abandoned result must be drained exactly
// like a non-anytime late attempt: no leak, no deadlock, no race, and the
// miss (not the anytime bit) on the frame's mask.
func TestAnytimeLateAttemptDrain(t *testing.T) {
	cfg := fastNativeConfig(scene.Urban)
	cfg.Detect.RunDNN = true
	// A small DET input keeps a CLEAN forward a few milliseconds even
	// under the race detector on a slow machine — the test asserts
	// uninjected frames stay clean, so the clean path must never graze
	// the budget on its own.
	cfg.Detect.InputSize = 32
	cfg.Deadline = DeadlinePolicy{Enforce: true, Anytime: true}
	for i := range cfg.Deadline.Budgets {
		cfg.Deadline.Budgets[i] = -1
	}
	// Generous against clean-path jitter, still overshot nearly 3x by the
	// injected 150ms stall so the miss timer always fires during the
	// attempt's sleep.
	cfg.Deadline.Budgets[StageDet] = 60 * time.Millisecond
	inj, err := faultinject.New(faultinject.MustParse("DET:delay=150ms:every=2", 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Inject = inj.Stage
	p, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		res, err := p.Step()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if i%2 == 0 {
			if !res.Degraded.Has(StageDet) {
				t.Errorf("frame %d mask = %v, want DET miss", i, res.Degraded)
			}
			if res.Degraded.Anytime() {
				t.Errorf("frame %d: abandoned late attempt leaked its anytime flag", i)
			}
			if res.Detections != nil {
				t.Errorf("frame %d: missed DET frame carries detections", i)
			}
		} else if res.Degraded.AnyMiss() {
			t.Errorf("clean frame %d mask = %v", i, res.Degraded)
		}
	}
	p.Drain() // idempotent once the last late attempt is waited for
	// Frame 5 is off the injection cadence: it must run clean.
	if res, err := p.Step(); err != nil || res.Degraded.AnyMiss() {
		t.Fatalf("post-drain frame: err=%v mask=%v", err, res.Degraded)
	}
	p.Drain()
}

// TestTailRunnerAnytimeStopDrain combines every moving part of this PR
// under -race: an adaptive window collapsing mid-run, anytime-armed DET
// missing its budget every other frame, and a Stop while degraded frames
// (with live late attempts) are in flight. Every admitted frame must still
// deliver in order, and after the result channel closes no abandoned
// attempt may still be touching an engine.
func TestTailRunnerAnytimeStopDrain(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	cfg := fastNativeConfig(scene.Urban)
	cfg.Detect.RunDNN = true
	cfg.Deadline = DeadlinePolicy{Enforce: true, Anytime: true}
	for i := range cfg.Deadline.Budgets {
		cfg.Deadline.Budgets[i] = -1
	}
	cfg.Deadline.Budgets[StageDet] = 15 * time.Millisecond
	inj, err := faultinject.New(faultinject.MustParse("DET:delay=120ms:every=2", 3))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Inject = inj.Stage
	p, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTailScheduler(TailConfig{
		Target: time.Nanosecond,
		Window: 8,
		Period: 2,
		Ladder: []int{64, 48},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, RunnerOptions{InFlight: 4, Tail: ts})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	sawMiss := false
	for res := range r.Run(0) {
		if res.Err != nil {
			t.Fatalf("frame %d: %v", res.Frame.Index, res.Err)
		}
		if res.Frame.Index != delivered {
			t.Fatalf("frame %d delivered at position %d: out of order", res.Frame.Index, delivered)
		}
		if res.Degraded.Has(StageDet) {
			sawMiss = true
		}
		delivered++
		if delivered == 5 {
			r.Stop()
		}
	}
	if !sawMiss {
		t.Fatal("scenario produced no DET misses before Stop")
	}
	if delivered < 5 {
		t.Fatalf("only %d frames delivered", delivered)
	}
	// Channel closed => every stage drained. Re-entering must be race-free.
	if _, err := p.Step(); err != nil {
		t.Fatalf("post-close step: %v", err)
	}
	p.Drain()
}

// TestWallAnytimeCommitsCoarseFrame exercises the wall-clock anytime
// COMMIT path: the injected stall eats most (but not all) of DET's budget,
// so the attempt starts with its anytime deadline already expired, exits
// the network immediately and commits a coarsened detection set inside the
// remaining guard slice — the frame carries the Anytime bit, not a miss.
// The race detector's ~10x slowdown can push the commit past the budget,
// so the anytime-vs-miss distinction is only pinned without -race.
func TestWallAnytimeCommitsCoarseFrame(t *testing.T) {
	cfg := fastNativeConfig(scene.Urban)
	cfg.Detect.RunDNN = true
	cfg.Deadline = DeadlinePolicy{Enforce: true, Anytime: true}
	for i := range cfg.Deadline.Budgets {
		cfg.Deadline.Budgets[i] = -1
	}
	cfg.Deadline.Budgets[StageDet] = 150 * time.Millisecond
	inj, err := faultinject.New(faultinject.MustParse("DET:delay=125ms:every=3", 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Inject = inj.Stage

	// Reference run, same scene, no faults: the full detection sets.
	clean, err := NewNative(fastNativeConfig(scene.Urban))
	if err != nil {
		t.Fatal(err)
	}
	full := make([]int, 6)
	for i := range full {
		res, err := clean.Step()
		if err != nil {
			t.Fatal(err)
		}
		full[i] = len(res.Detections)
	}

	p, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		res, err := p.Step()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if i%3 != 0 {
			if res.Degraded.Any() {
				t.Errorf("clean frame %d mask = %v", i, res.Degraded)
			}
			continue
		}
		if raceEnabled {
			// Slowed build: accept either outcome, but the frame must be
			// flagged one way or the other.
			if !res.Degraded.Any() {
				t.Errorf("stalled frame %d delivered unflagged", i)
			}
			continue
		}
		if !res.Degraded.Anytime() || res.Degraded.AnyMiss() {
			t.Errorf("frame %d mask = %v, want anytime commit without a miss", i, res.Degraded)
		}
		if full[i] > 0 && (len(res.Detections) == 0 || len(res.Detections) > full[i]) {
			t.Errorf("frame %d: anytime set has %d detections, clean run %d — want a non-empty subset",
				i, len(res.Detections), full[i])
		}
	}
	p.Drain()
}
