package pipeline

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"adsim/internal/constraint"
	"adsim/internal/dnn"
	"adsim/internal/img"
	"adsim/internal/scene"
	"adsim/internal/slam"
	"adsim/internal/telemetry"
)

// FleetConfig parameterizes a Fleet: N independent vehicle streams
// multiplexed onto shared compute and storage resources.
type FleetConfig struct {
	// Vehicles is the number of independent streams (≥ 1).
	Vehicles int
	// Config is the per-vehicle pipeline template; Seeds, Executor,
	// SharedMap and the override maps below specialize it per vehicle.
	Config Config
	// Seeds[i] seeds vehicle i's scenario. Empty derives seeds from the
	// template (Config.Scene.Seed + i); otherwise len must equal Vehicles.
	// Vehicles added later (AddVehicle) always use the derivation.
	Seeds []int64
	// Scenes overrides the template scene configuration for specific
	// vehicles (key = vehicle ID) — per-vehicle scenario assignment, so
	// different vehicles in one fleet drive different scenario programs
	// (scenario.Program.Configure builds the per-vehicle scene.Config).
	// The seed rules still apply on top: Seeds[i] wins, then a nonzero
	// Seed in the assigned scene, then the template derivation — so one
	// scenario can be assigned to several vehicles without colliding
	// streams. Keys past the initial Vehicles pre-provision churn: a
	// vehicle later created by AddVehicle picks up its entry.
	Scenes map[int]scene.Config
	// InFlight is each vehicle Runner's pipelining window; 0 selects
	// DefaultInFlight.
	InFlight int
	// Executor is the inference executor shared by every vehicle's DET and
	// TRA engines — the cross-stream batching seam. nil constructs a
	// batching executor sized to the machine (dnn.NewBatchExecutor(0)).
	// Vehicles whose template already names an engine executor keep it.
	Executor *dnn.Executor
	// SharedMap, when non-nil, is the prior-map store all vehicles share;
	// each vehicle localizes through a private slam.VehicleStore view, so
	// runtime map updates never cross streams. nil gives each vehicle its
	// own store per the template (Config.MapStore or a fresh PriorMap).
	SharedMap slam.MapStore
	// Deadlines overrides the template deadline policy for specific
	// vehicles (key = vehicle ID).
	Deadlines map[int]DeadlinePolicy
	// Injects overrides the template fault injector for specific vehicles
	// (key = vehicle ID). A faulted vehicle must not perturb the others.
	Injects map[int]func(stage string, frame int) (time.Duration, error)
	// MonitorWindow sizes the per-vehicle and fleet-level constraint
	// monitors; 0 selects constraint.DefaultMonitorWindow.
	MonitorWindow int
	// Metrics, when non-nil, receives the fleet gauges
	// (fleet/vehicles_per_sec, fleet/frames_per_sec) after a run and
	// attaches the shared executor's batch-depth instrumentation
	// (dnn/batch_depth, dnn/gather_batches, dnn/gather_calls).
	Metrics *telemetry.Registry
	// Admission, when non-nil, puts the fleet under the frame-budget
	// admission controller (admission.go): when the fleet cannot hold the
	// frame deadline for everyone, whole vehicle streams are shed —
	// lowest-priority, unhealthiest first — and readmitted with hysteresis
	// once pressure clears. FleetReport marks shed vehicles.
	Admission *AdmissionConfig
	// PhaseLock aligns co-resident vehicles' frame admission on a fleet
	// beat and arms the shared executor's gather hold with the live cohort
	// size, so concurrently admitted DET forwards meet in the batching
	// executor's leader drain instead of trickling through one by one.
	// Results are unchanged (batching is bitwise-transparent); mean batch
	// depth is what moves — see BenchmarkFleetCapacity.
	PhaseLock bool
}

// PhaseGatherHold is how long a phase-locked fleet lets the shared
// executor's drain leader wait for its cohort. Frame periods are tens of
// milliseconds; a couple of milliseconds gathers the beat's co-released
// forwards without denting the budget when a peer is late.
const PhaseGatherHold = 5 * time.Millisecond

// Fleet drives N vehicle pipelines concurrently, one pipelined Runner per
// vehicle, with DET/TRA inference multiplexed through one shared (typically
// batching) dnn.Executor and, optionally, one shared prior-map store. Each
// vehicle's delivered results are bitwise-identical to the same seed run
// solo (see TestFleetMatchesSoloRunners) — sharing changes the schedule and
// the cost, never the outputs.
//
// The membership is dynamic: AddVehicle and RemoveVehicle churn streams
// mid-run without perturbing the survivors, and an admission controller
// (FleetConfig.Admission) sheds streams when the machine saturates. Run is
// Start + Wait for callers with static membership.
type Fleet struct {
	cfg      FleetConfig
	exec     *dnn.Executor
	nets     *dnn.NetCache
	fleetMon *constraint.Monitor
	adm      *FleetAdmission

	mu       sync.Mutex
	vehicles []*fleetVehicle
	nextID   int
	started  bool
	startT   time.Time
	frames   int
	onResult func(vehicle int, res RunnerResult)
}

// fleetVehicle is one stream: its pipeline, runner, private monitor and
// shared-store view. delivered/errs are owned by the consumer goroutine and
// read only after done closes.
type fleetVehicle struct {
	id      int
	seed    int64
	p       *Pipeline
	r       *Runner
	mon     *constraint.Monitor
	store   *slam.VehicleStore
	done    chan struct{}
	removed bool

	delivered int
	errs      int
}

// NewFleet builds the N vehicle pipelines (surveying per the template) and
// their runners. Nothing executes until Start/Run.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Vehicles < 1 {
		return nil, fmt.Errorf("pipeline: fleet of %d vehicles", cfg.Vehicles)
	}
	if len(cfg.Seeds) != 0 && len(cfg.Seeds) != cfg.Vehicles {
		return nil, fmt.Errorf("pipeline: %d seeds for %d vehicles", len(cfg.Seeds), cfg.Vehicles)
	}
	exec := cfg.Executor
	if exec == nil {
		exec = dnn.NewBatchExecutor(0)
	}
	f := &Fleet{
		cfg:      cfg,
		exec:     exec,
		nets:     dnn.NewNetCache(),
		fleetMon: constraint.NewMonitor(constraint.MonitorConfig{Window: cfg.MonitorWindow}),
	}
	if cfg.Admission != nil || cfg.PhaseLock {
		acfg := AdmissionConfig{}
		shedding := cfg.Admission != nil
		if shedding {
			acfg = *cfg.Admission
		}
		adm, err := newFleetAdmission(acfg, shedding, cfg.PhaseLock)
		if err != nil {
			return nil, err
		}
		if shedding && !acfg.Virtual {
			adm.setTailSource(f.fleetMon)
		}
		if cfg.PhaseLock {
			adm.onActive = func(active int) { exec.SetGatherHold(active, PhaseGatherHold) }
		}
		f.adm = adm
	}
	if cfg.Metrics != nil {
		exec.SetMetrics(cfg.Metrics)
	}
	for i := 0; i < cfg.Vehicles; i++ {
		if _, err := f.addVehicleLocked(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// addVehicleLocked builds and registers the next vehicle (caller holds the
// lock, or is NewFleet before the fleet escapes).
func (f *Fleet) addVehicleLocked() (*fleetVehicle, error) {
	id := f.nextID
	cfg := f.cfg
	vcfg := cfg.Config
	seed := cfg.Config.Scene.Seed + int64(id)
	if sc, ok := cfg.Scenes[id]; ok {
		vcfg.Scene = sc
		if sc.Seed != 0 {
			seed = sc.Seed
		}
	}
	if id < len(cfg.Seeds) {
		seed = cfg.Seeds[id]
	}
	vcfg.Scene.Seed = seed
	if vcfg.Detect.Executor == nil {
		vcfg.Detect.Executor = f.exec
	}
	if vcfg.Track.Executor == nil {
		vcfg.Track.Executor = f.exec
	}
	// One shared network per architecture+size across the fleet: weights are
	// deterministic, so sharing never changes results, but pointer-identical
	// networks are the precondition for the executor's gather seam to batch
	// DET/TRA forwards across vehicles (and they cost one copy of memory).
	if vcfg.Detect.Nets == nil {
		vcfg.Detect.Nets = f.nets
	}
	if vcfg.Track.Nets == nil {
		vcfg.Track.Nets = f.nets
	}
	var store *slam.VehicleStore
	if cfg.SharedMap != nil {
		store = slam.NewVehicleStore(id, cfg.SharedMap)
		vcfg.MapStore = store
	}
	if dl, ok := cfg.Deadlines[id]; ok {
		vcfg.Deadline = dl
	}
	if inj, ok := cfg.Injects[id]; ok {
		vcfg.Inject = inj
	}
	mon := constraint.NewMonitor(constraint.MonitorConfig{Window: cfg.MonitorWindow})
	sinks := []telemetry.Sink{mon, f.fleetMon}
	if vcfg.Telemetry != nil {
		sinks = append(sinks, vcfg.Telemetry)
	}
	vcfg.Telemetry = telemetry.Multi(sinks...)

	p, err := NewNative(vcfg)
	if err != nil {
		return nil, fmt.Errorf("pipeline: fleet vehicle %d: %w", id, err)
	}
	var gate StreamGate
	if f.adm != nil {
		gate = vehicleGate{a: f.adm, id: id}
	}
	r, err := NewRunner(p, RunnerOptions{InFlight: cfg.InFlight, Gate: gate})
	if err != nil {
		return nil, fmt.Errorf("pipeline: fleet vehicle %d: %w", id, err)
	}
	v := &fleetVehicle{
		id: id, seed: vcfg.Scene.Seed, p: p, r: r, mon: mon, store: store,
		done: make(chan struct{}),
	}
	if f.adm != nil {
		f.adm.Register(id)
	}
	f.vehicles = append(f.vehicles, v)
	f.nextID++
	return v, nil
}

// Executor returns the shared inference executor the fleet multiplexes
// DET/TRA forward passes through.
func (f *Fleet) Executor() *dnn.Executor { return f.exec }

// Admission returns the fleet's admission controller, nil without one.
func (f *Fleet) Admission() *FleetAdmission { return f.adm }

// Snapshot returns the live fleet-level constraint verdict over the rolling
// monitor window — the same measurement the wall-mode admission controller
// feeds on. Safe to call mid-run; use it to observe the delivered tail at a
// chosen instant (e.g. steady state) rather than wherever Wait lands.
func (f *Fleet) Snapshot() constraint.LiveReport { return f.fleetMon.Snapshot() }

// Vehicle returns vehicle id's pipeline (for inspection after the run;
// touching it mid-run races with the stage goroutines), or nil for an
// unknown ID.
func (f *Fleet) Vehicle(id int) *Pipeline {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, v := range f.vehicles {
		if v.id == id {
			return v.p
		}
	}
	return nil
}

// Warm pre-pays every vehicle's one-time cold-start costs so a measured run
// starts from steady state: one DET forward per vehicle primes the shared
// executor's scratch pools for the fleet's input shape, and a shared-map
// advise pages each vehicle's initial tile window into the shard cache.
// Warm never touches a scenario stream or a stateful engine, so a warmed
// run's results are bitwise-identical to a cold one.
func (f *Fleet) Warm() {
	f.mu.Lock()
	vehicles := append([]*fleetVehicle(nil), f.vehicles...)
	f.mu.Unlock()
	w, h := f.cfg.Config.Scene.Width, f.cfg.Config.Scene.Height
	for _, v := range vehicles {
		if w > 0 && h > 0 {
			v.p.det.Detect(img.NewGray(w, h))
		}
		if v.store != nil {
			v.store.Advise(0, 1)
			v.store.Candidates(0, 20)
		}
	}
}

// Stop ceases admitting frames on every vehicle; in-flight frames drain and
// Wait returns after all vehicles deliver what was admitted.
func (f *Fleet) Stop() {
	f.mu.Lock()
	vehicles := append([]*fleetVehicle(nil), f.vehicles...)
	f.mu.Unlock()
	for _, v := range vehicles {
		v.r.Stop()
	}
}

// Start launches every vehicle for frames frames (<= 0: until Stop) and
// returns immediately; Wait blocks for completion and scores the run.
// onResult, when non-nil, receives every delivered frame — in order within
// a vehicle, but concurrently across vehicles (it must be safe for
// concurrent use). Vehicles added later inherit the same frame count and
// callback.
func (f *Fleet) Start(frames int, onResult func(vehicle int, res RunnerResult)) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return fmt.Errorf("pipeline: fleet already started")
	}
	f.started = true
	f.frames = frames
	f.onResult = onResult
	f.startT = time.Now()
	for _, v := range f.vehicles {
		f.startVehicle(v)
	}
	return nil
}

// startVehicle launches one stream's consumer goroutine: drain the runner,
// feed the admission controller and the caller's callback, then close done.
func (f *Fleet) startVehicle(v *fleetVehicle) {
	go func() {
		defer close(v.done)
		for res := range v.r.Run(f.frames) {
			v.delivered++
			if res.Err != nil {
				v.errs++
			}
			if f.adm != nil {
				f.adm.Observe(v.id, float64(res.Wall)/1e6, res.Degraded.AnyMiss())
			}
			if f.onResult != nil {
				f.onResult(v.id, res)
			}
		}
		if f.adm != nil {
			// Full retirement happens HERE, after the final delivery is
			// observed — a position in the vehicle's stream — not at SRC
			// exhaustion, which leads deliveries by the in-flight window.
			f.adm.Leave(v.id)
		}
		v.p.Drain()
	}()
}

// AddVehicle provisions one new vehicle stream — template specialization,
// survey, shared-store view, admission registration — and, on a started
// fleet, launches it immediately. The new vehicle ID (never recycled) is
// returned. Surviving streams only ever observe the addition as load.
func (f *Fleet) AddVehicle() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, err := f.addVehicleLocked()
	if err != nil {
		return 0, err
	}
	if f.started {
		f.startVehicle(v)
	}
	return v.id, nil
}

// RemoveVehicle retires one vehicle stream mid-run: admission ceases, its
// in-flight frames drain and are delivered, its engines drain, and its
// footprint on the shared store (eviction protections) is released — all
// without perturbing surviving vehicles' results. The vehicle keeps its row
// in the final FleetReport, marked Removed. Blocks until the stream is
// fully down.
func (f *Fleet) RemoveVehicle(id int) error {
	f.mu.Lock()
	var v *fleetVehicle
	for _, x := range f.vehicles {
		if x.id == id {
			v = x
			break
		}
	}
	if v == nil || v.removed {
		f.mu.Unlock()
		return fmt.Errorf("pipeline: fleet has no vehicle %d", id)
	}
	v.removed = true
	started := f.started
	if !started {
		// Never ran: drop the row entirely.
		keep := f.vehicles[:0]
		for _, x := range f.vehicles {
			if x != v {
				keep = append(keep, x)
			}
		}
		f.vehicles = keep
	}
	f.mu.Unlock()

	v.r.Stop() // also releases the admission gate (StreamGate.Leave)
	if started {
		<-v.done // admitted frames delivered, engines drained
	}
	if f.adm != nil {
		f.adm.Leave(id) // no-op when the gate already left
	}
	if v.store != nil {
		v.store.Release()
	}
	return nil
}

// Wait blocks until every vehicle stream (including any added mid-run) has
// delivered and drained, then returns the fleet scorecard. Call after
// Start.
func (f *Fleet) Wait() FleetReport {
	for {
		f.mu.Lock()
		pending := f.vehicles[:0:0]
		for _, v := range f.vehicles {
			select {
			case <-v.done:
			default:
				pending = append(pending, v)
			}
		}
		f.mu.Unlock()
		if len(pending) == 0 {
			break
		}
		for _, v := range pending {
			<-v.done
		}
	}
	f.mu.Lock()
	wall := time.Since(f.startT)
	vehicles := append([]*fleetVehicle(nil), f.vehicles...)
	f.mu.Unlock()

	rep := FleetReport{
		Vehicles: len(vehicles),
		Wall:     wall,
		Fleet:    f.fleetMon.Snapshot(),
	}
	if f.adm != nil {
		rep.Admission = f.adm.History()
	}
	for _, v := range vehicles {
		rep.Frames += v.delivered
		score := VehicleScore{
			Vehicle: v.id,
			Seed:    v.seed,
			Frames:  v.delivered,
			Errs:    v.errs,
			Removed: v.removed,
			Report:  v.mon.Snapshot(),
		}
		if f.adm != nil {
			score.Shed = !f.adm.Admitted(v.id)
			score.Sheds = f.adm.Sheds(v.id)
		}
		rep.PerVehicle = append(rep.PerVehicle, score)
	}
	if secs := wall.Seconds(); secs > 0 {
		rep.FramesPerSec = float64(rep.Frames) / secs
	}
	if fps := f.cfg.Config.Scene.FPS; fps > 0 {
		rep.VehiclesPerSec = rep.FramesPerSec / fps
	}
	if f.cfg.Metrics != nil {
		f.cfg.Metrics.Gauge("fleet/vehicles_per_sec").Set(rep.VehiclesPerSec)
		f.cfg.Metrics.Gauge("fleet/frames_per_sec").Set(rep.FramesPerSec)
	}
	return rep
}

// Run drives every vehicle for frames frames concurrently and blocks until
// all streams complete, returning the fleet scorecard (Start + Wait).
func (f *Fleet) Run(frames int, onResult func(vehicle int, res RunnerResult)) FleetReport {
	f.Start(frames, onResult)
	return f.Wait()
}

// FleetReport is the fleet-level scorecard of one Run: the aggregate
// constraint verdict over every vehicle's delivered frames, the sustained
// throughput, and one scorecard per vehicle.
type FleetReport struct {
	Vehicles int
	// Frames is the total delivered across all vehicles.
	Frames int
	Wall   time.Duration
	// FramesPerSec is the fleet's aggregate delivery rate.
	FramesPerSec float64
	// VehiclesPerSec is FramesPerSec normalized by the scenario frame rate:
	// how many real-time vehicle streams this machine sustains — the
	// consolidation headroom number the fleet benchmark scales over cores.
	VehiclesPerSec float64
	// Fleet is the constraint verdict over ALL vehicles' frames — its
	// TailMs is the fleet-level P99.99 frame latency.
	Fleet constraint.LiveReport
	// Admission is the controller's shed/readmit event history (nil
	// without admission control). Under DeadlinePolicy.Virtual plus
	// AdmissionConfig.Virtual it is identical across reruns of a seed.
	Admission  []AdmissionEvent
	PerVehicle []VehicleScore
}

// VehicleScore is one vehicle's scorecard.
type VehicleScore struct {
	Vehicle int
	Seed    int64
	Frames  int
	// Errs counts frames delivered with a pipeline error.
	Errs int
	// Shed marks a stream the admission controller held shed at run end.
	Shed bool
	// Sheds counts how many times the stream was shed during the run.
	Sheds int
	// Removed marks a vehicle retired mid-run by RemoveVehicle.
	Removed bool
	// Report is the vehicle's private constraint verdict; its
	// TotalDegraded counts deadline-degraded frames.
	Report constraint.LiveReport
}

// Pass reports whether the fleet-level verdict passed.
func (r FleetReport) Pass() bool { return r.Fleet.Pass() }

// String renders the fleet verdict: the aggregate constraint lines, the
// throughput, and one scorecard line per vehicle.
func (r FleetReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d vehicles, %d frames in %v (%.1f frames/s ≈ %.2f real-time vehicles)\n",
		r.Vehicles, r.Frames, r.Wall.Round(time.Millisecond), r.FramesPerSec, r.VehiclesPerSec)
	fmt.Fprintf(&b, "fleet P99.99 %.2f ms\n", r.Fleet.TailMs)
	if len(r.Admission) > 0 {
		sheds := 0
		for _, e := range r.Admission {
			if e.Shed {
				sheds++
			}
		}
		fmt.Fprintf(&b, "admission: %d sheds, %d readmits\n", sheds, len(r.Admission)-sheds)
	}
	b.WriteString(r.Fleet.String())
	for _, v := range r.PerVehicle {
		fmt.Fprintf(&b, "vehicle %d (seed %d): %d frames, %d errs, %d degraded, tail %.2f ms, mean %.2f ms",
			v.Vehicle, v.Seed, v.Frames, v.Errs, v.Report.TotalDegraded, v.Report.TailMs, v.Report.MeanMs)
		if v.Sheds > 0 || v.Shed {
			fmt.Fprintf(&b, ", shed ×%d", v.Sheds)
			if v.Shed {
				b.WriteString(" (out)")
			}
		}
		if v.Removed {
			b.WriteString(" (removed)")
		}
		b.WriteString("\n")
	}
	return b.String()
}
