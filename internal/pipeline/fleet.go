package pipeline

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"adsim/internal/constraint"
	"adsim/internal/dnn"
	"adsim/internal/scene"
	"adsim/internal/slam"
	"adsim/internal/telemetry"
)

// FleetConfig parameterizes a Fleet: N independent vehicle streams
// multiplexed onto shared compute and storage resources.
type FleetConfig struct {
	// Vehicles is the number of independent streams (≥ 1).
	Vehicles int
	// Config is the per-vehicle pipeline template; Seeds, Executor,
	// SharedMap and the override maps below specialize it per vehicle.
	Config Config
	// Seeds[i] seeds vehicle i's scenario. Empty derives seeds from the
	// template (Config.Scene.Seed + i); otherwise len must equal Vehicles.
	Seeds []int64
	// Scenes overrides the template scene configuration for specific
	// vehicles (key = vehicle index) — per-vehicle scenario assignment, so
	// different vehicles in one fleet drive different scenario programs
	// (scenario.Program.Configure builds the per-vehicle scene.Config).
	// The seed rules still apply on top: Seeds[i] wins, then a nonzero
	// Seed in the assigned scene, then the template derivation — so one
	// scenario can be assigned to several vehicles without colliding
	// streams.
	Scenes map[int]scene.Config
	// InFlight is each vehicle Runner's pipelining window; 0 selects
	// DefaultInFlight.
	InFlight int
	// Executor is the inference executor shared by every vehicle's DET and
	// TRA engines — the cross-stream batching seam. nil constructs a
	// batching executor sized to the machine (dnn.NewBatchExecutor(0)).
	// Vehicles whose template already names an engine executor keep it.
	Executor *dnn.Executor
	// SharedMap, when non-nil, is the prior-map store all vehicles share;
	// each vehicle localizes through a private slam.VehicleStore view, so
	// runtime map updates never cross streams. nil gives each vehicle its
	// own store per the template (Config.MapStore or a fresh PriorMap).
	SharedMap slam.MapStore
	// Deadlines overrides the template deadline policy for specific
	// vehicles (key = vehicle index).
	Deadlines map[int]DeadlinePolicy
	// Injects overrides the template fault injector for specific vehicles
	// (key = vehicle index). A faulted vehicle must not perturb the others.
	Injects map[int]func(stage string, frame int) (time.Duration, error)
	// MonitorWindow sizes the per-vehicle and fleet-level constraint
	// monitors; 0 selects constraint.DefaultMonitorWindow.
	MonitorWindow int
	// Metrics, when non-nil, receives the fleet gauges
	// (fleet/vehicles_per_sec, fleet/frames_per_sec) after a run.
	Metrics *telemetry.Registry
}

// Fleet drives N vehicle pipelines concurrently, one pipelined Runner per
// vehicle, with DET/TRA inference multiplexed through one shared (typically
// batching) dnn.Executor and, optionally, one shared prior-map store. Each
// vehicle's delivered results are bitwise-identical to the same seed run
// solo (see TestFleetMatchesSoloRunners) — sharing changes the schedule and
// the cost, never the outputs.
type Fleet struct {
	cfg      FleetConfig
	exec     *dnn.Executor
	fleetMon *constraint.Monitor
	vehicles []*fleetVehicle
}

// fleetVehicle is one stream: its pipeline, runner and private monitor.
type fleetVehicle struct {
	id   int
	seed int64
	p    *Pipeline
	r    *Runner
	mon  *constraint.Monitor
}

// NewFleet builds the N vehicle pipelines (surveying per the template) and
// their runners. Nothing executes until Run.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Vehicles < 1 {
		return nil, fmt.Errorf("pipeline: fleet of %d vehicles", cfg.Vehicles)
	}
	if len(cfg.Seeds) != 0 && len(cfg.Seeds) != cfg.Vehicles {
		return nil, fmt.Errorf("pipeline: %d seeds for %d vehicles", len(cfg.Seeds), cfg.Vehicles)
	}
	exec := cfg.Executor
	if exec == nil {
		exec = dnn.NewBatchExecutor(0)
	}
	f := &Fleet{
		cfg:      cfg,
		exec:     exec,
		fleetMon: constraint.NewMonitor(constraint.MonitorConfig{Window: cfg.MonitorWindow}),
	}
	for i := 0; i < cfg.Vehicles; i++ {
		vcfg := cfg.Config
		seed := cfg.Config.Scene.Seed + int64(i)
		if sc, ok := cfg.Scenes[i]; ok {
			vcfg.Scene = sc
			if sc.Seed != 0 {
				seed = sc.Seed
			}
		}
		if len(cfg.Seeds) > 0 {
			seed = cfg.Seeds[i]
		}
		vcfg.Scene.Seed = seed
		if vcfg.Detect.Executor == nil {
			vcfg.Detect.Executor = exec
		}
		if vcfg.Track.Executor == nil {
			vcfg.Track.Executor = exec
		}
		if cfg.SharedMap != nil {
			vcfg.MapStore = slam.NewVehicleStore(i, cfg.SharedMap)
		}
		if dl, ok := cfg.Deadlines[i]; ok {
			vcfg.Deadline = dl
		}
		if inj, ok := cfg.Injects[i]; ok {
			vcfg.Inject = inj
		}
		mon := constraint.NewMonitor(constraint.MonitorConfig{Window: cfg.MonitorWindow})
		sinks := []telemetry.Sink{mon, f.fleetMon}
		if vcfg.Telemetry != nil {
			sinks = append(sinks, vcfg.Telemetry)
		}
		vcfg.Telemetry = telemetry.Multi(sinks...)

		p, err := NewNative(vcfg)
		if err != nil {
			return nil, fmt.Errorf("pipeline: fleet vehicle %d: %w", i, err)
		}
		r, err := NewRunner(p, RunnerOptions{InFlight: cfg.InFlight})
		if err != nil {
			return nil, fmt.Errorf("pipeline: fleet vehicle %d: %w", i, err)
		}
		f.vehicles = append(f.vehicles, &fleetVehicle{
			id: i, seed: vcfg.Scene.Seed, p: p, r: r, mon: mon,
		})
	}
	return f, nil
}

// Executor returns the shared inference executor the fleet multiplexes
// DET/TRA forward passes through.
func (f *Fleet) Executor() *dnn.Executor { return f.exec }

// Vehicle returns vehicle i's pipeline (for inspection after Run returns;
// touching it mid-run races with the stage goroutines).
func (f *Fleet) Vehicle(i int) *Pipeline { return f.vehicles[i].p }

// Stop ceases admitting frames on every vehicle; in-flight frames drain and
// Run returns after all vehicles deliver what was admitted.
func (f *Fleet) Stop() {
	for _, v := range f.vehicles {
		v.r.Stop()
	}
}

// Run drives every vehicle for frames frames concurrently and blocks until
// all streams complete, returning the fleet scorecard. onResult, when
// non-nil, receives every delivered frame — in order within a vehicle, but
// concurrently across vehicles (it must be safe for concurrent use).
func (f *Fleet) Run(frames int, onResult func(vehicle int, res RunnerResult)) FleetReport {
	start := time.Now()
	var wg sync.WaitGroup
	delivered := make([]int, len(f.vehicles))
	errCount := make([]int, len(f.vehicles))
	for _, v := range f.vehicles {
		wg.Add(1)
		go func(v *fleetVehicle) {
			defer wg.Done()
			for res := range v.r.Run(frames) {
				delivered[v.id]++
				if res.Err != nil {
					errCount[v.id]++
				}
				if onResult != nil {
					onResult(v.id, res)
				}
			}
			v.p.Drain()
		}(v)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := FleetReport{
		Vehicles: len(f.vehicles),
		Wall:     wall,
		Fleet:    f.fleetMon.Snapshot(),
	}
	for i, v := range f.vehicles {
		rep.Frames += delivered[i]
		rep.PerVehicle = append(rep.PerVehicle, VehicleScore{
			Vehicle: v.id,
			Seed:    v.seed,
			Frames:  delivered[i],
			Errs:    errCount[i],
			Report:  v.mon.Snapshot(),
		})
	}
	if secs := wall.Seconds(); secs > 0 {
		rep.FramesPerSec = float64(rep.Frames) / secs
	}
	if fps := f.cfg.Config.Scene.FPS; fps > 0 {
		rep.VehiclesPerSec = rep.FramesPerSec / fps
	}
	if f.cfg.Metrics != nil {
		f.cfg.Metrics.Gauge("fleet/vehicles_per_sec").Set(rep.VehiclesPerSec)
		f.cfg.Metrics.Gauge("fleet/frames_per_sec").Set(rep.FramesPerSec)
	}
	return rep
}

// FleetReport is the fleet-level scorecard of one Run: the aggregate
// constraint verdict over every vehicle's delivered frames, the sustained
// throughput, and one scorecard per vehicle.
type FleetReport struct {
	Vehicles int
	// Frames is the total delivered across all vehicles.
	Frames int
	Wall   time.Duration
	// FramesPerSec is the fleet's aggregate delivery rate.
	FramesPerSec float64
	// VehiclesPerSec is FramesPerSec normalized by the scenario frame rate:
	// how many real-time vehicle streams this machine sustains — the
	// consolidation headroom number the fleet benchmark scales over cores.
	VehiclesPerSec float64
	// Fleet is the constraint verdict over ALL vehicles' frames — its
	// TailMs is the fleet-level P99.99 frame latency.
	Fleet      constraint.LiveReport
	PerVehicle []VehicleScore
}

// VehicleScore is one vehicle's scorecard.
type VehicleScore struct {
	Vehicle int
	Seed    int64
	Frames  int
	// Errs counts frames delivered with a pipeline error.
	Errs int
	// Report is the vehicle's private constraint verdict; its
	// TotalDegraded counts deadline-degraded frames.
	Report constraint.LiveReport
}

// Pass reports whether the fleet-level verdict passed.
func (r FleetReport) Pass() bool { return r.Fleet.Pass() }

// String renders the fleet verdict: the aggregate constraint lines, the
// throughput, and one scorecard line per vehicle.
func (r FleetReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d vehicles, %d frames in %v (%.1f frames/s ≈ %.2f real-time vehicles)\n",
		r.Vehicles, r.Frames, r.Wall.Round(time.Millisecond), r.FramesPerSec, r.VehiclesPerSec)
	fmt.Fprintf(&b, "fleet P99.99 %.2f ms\n", r.Fleet.TailMs)
	b.WriteString(r.Fleet.String())
	for _, v := range r.PerVehicle {
		fmt.Fprintf(&b, "vehicle %d (seed %d): %d frames, %d errs, %d degraded, tail %.2f ms, mean %.2f ms\n",
			v.Vehicle, v.Seed, v.Frames, v.Errs, v.Report.TotalDegraded, v.Report.TailMs, v.Report.MeanMs)
	}
	return b.String()
}
