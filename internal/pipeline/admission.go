package pipeline

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"adsim/internal/constraint"
)

// This file is the fleet capacity layer's control plane: a frame-budget
// admission controller that sheds and readmits WHOLE vehicle streams when
// the machine saturates (the paper's 100 ms frame constraint is per frame —
// once every co-resident stream misses it, nobody is driving autonomously),
// plus the phase barrier that aligns co-resident streams' frame admission so
// the executor's gather seam forms deep same-shape batches.
//
// Determinism contract: under DeadlinePolicy.Virtual the controller's entire
// shed/readmit sequence is a pure function of (configs, seeds). The trick is
// that decisions are made over per-vehicle EPOCH BUCKETS — statistics over
// each vehicle's own delivered-frame stream, chunked every Epoch frames —
// and a decision fires only when every admitted stream has an unconsumed
// bucket. Which real moment a decision happens at varies with scheduling;
// which frames feed it cannot: a vehicle's stream is the same ordered,
// deterministic sequence in every run (shedding pauses a stream, it never
// drops frames from it), so bucket k of vehicle v holds the same frames in
// every run, and by induction every decision sees identical inputs and the
// event history is bitwise-reproducible. TestAdmissionDeterministicAcross-
// Executors pins this across the Step and Runner executors.

// AdmissionConfig parameterizes the fleet admission controller.
type AdmissionConfig struct {
	// Target is the frame deadline the controller steers the fleet tail
	// under; 0 selects DefaultFrameBudget (the paper's 100 ms).
	Target time.Duration
	// Epoch is the decision interval, in delivered frames per vehicle; a
	// decision is taken when every admitted vehicle has completed an
	// epoch. 0 selects DefaultAdmissionEpoch.
	Epoch int
	// High and Low are the shed/readmit watermarks on the pressure signal
	// (see Pressure in AdmissionEvent): shed at pressure >= High, count a
	// calm epoch at pressure <= Low. In wall mode pressure is the fleet
	// rolling P99.99 divided by Target, and zero watermarks default to
	// 0.7/0.45 — shedding begins BEFORE the tail crosses the deadline, so
	// the controller has authority while frames still meet it. In Virtual
	// mode pressure is the epoch's deadline-miss fraction and the defaults
	// are 0.25/0.05.
	High, Low float64
	// Hysteresis is how many consecutive calm epochs must pass before one
	// shed vehicle is readmitted; 0 selects DefaultAdmissionHysteresis.
	Hysteresis int
	// MaxAdmitted caps concurrently admitted vehicles (0 = uncapped). The
	// cap is enforced immediately at registration time — the static
	// -max-vehicles form of admission control — and respected by readmits.
	MaxAdmitted int
	// Priority ranks vehicles: HIGHER keeps its stream longer. Among
	// equally unhealthy vehicles the lowest priority is shed first and the
	// highest readmitted first; missing entries rank 0, and ties break
	// toward shedding the highest vehicle ID (so vehicle 0 is the most
	// senior by default).
	Priority map[int]int
	// Virtual selects the deterministic pressure signal (epoch
	// deadline-miss fractions from the DegradedMask stream, which under
	// DeadlinePolicy.Virtual is a pure function of scenario and seed)
	// instead of the wall-clock fleet tail. Use with Virtual deadline
	// enforcement; the shed/readmit sequence becomes seed-deterministic.
	Virtual bool
}

// Default admission parameters.
const (
	DefaultAdmissionEpoch      = 16
	DefaultAdmissionHysteresis = 2
	// Wall-mode watermark defaults (fraction of Target).
	DefaultAdmissionHigh = 0.7
	DefaultAdmissionLow  = 0.45
	// Virtual-mode watermark defaults (epoch miss fraction).
	DefaultVirtualAdmissionHigh = 0.25
	DefaultVirtualAdmissionLow  = 0.05
)

// AdmissionEvent is one shed or readmit in the controller's history.
type AdmissionEvent struct {
	// Decision is the decision epoch the event was taken at (0 =
	// registration-time MaxAdmitted enforcement).
	Decision int
	Vehicle  int
	// Shed is true for a shed, false for a readmit.
	Shed bool
	// Pressure is the signal value the decision saw: fleet tail / target
	// in wall mode, epoch miss fraction in Virtual mode.
	Pressure float64
}

func (e AdmissionEvent) String() string {
	verb := "readmit"
	if e.Shed {
		verb = "shed"
	}
	return fmt.Sprintf("decision %d: %s vehicle %d (pressure %.2f)", e.Decision, verb, e.Vehicle, e.Pressure)
}

// FleetAdmission is the fleet's stream admission controller and phase
// barrier. Vehicles register once, their runners consult it before every
// frame (via the StreamGate seam), and every delivered frame is folded in
// through Observe. All methods are safe for concurrent use.
type FleetAdmission struct {
	target     float64 // ms
	epoch      int
	high, low  float64
	hysteresis int
	maxAdm     int
	virtual    bool
	shedding   bool // false: pure phase-locker, no decisions
	phase      bool
	priority   map[int]int

	// tailSource supplies wall-mode pressure (the fleet monitor); nil in
	// Virtual mode or when detached.
	tailSource *constraint.Monitor
	// onActive, when set, is told the actively admitted stream count after
	// every membership change — the fleet points it at the shared
	// executor's gather-hold cohort.
	onActive func(active int)

	mu        sync.Mutex
	cond      *sync.Cond
	veh       map[int]*admVehicle
	order     []int // registered vehicle IDs, ascending — all iteration is in this order
	waiting   int   // streams parked at the phase barrier
	gen       uint64
	decisions int
	calm      int
	history   []AdmissionEvent
}

// admVehicle is one registered stream's controller state. Its lifetime has
// TWO ends, because admission (gate) and observation (delivery) are up to
// an in-flight window apart: admitting clears when the stream stops asking
// for frames (SRC exhausted, Stop) — a wall-clock moment that governs only
// the phase barrier, never a decision; observing clears when the stream's
// final delivered frame has been folded in (Leave) — a stream-position
// moment, so decision-barrier membership stays schedule-independent.
type admVehicle struct {
	id        int
	priority  int
	admitting bool // stream still admits frames (Register .. gate leave)
	observing bool // deliveries still pending (Register .. Leave)
	shed      bool
	ended     bool // told to end: Admit returns false
	sheds     int  // lifetime shed count

	// Current epoch accumulation and the completed, not-yet-consumed
	// buckets behind it. Bucket boundaries are positions in the vehicle's
	// own delivered stream, so bucket contents are schedule-independent.
	n, bad  int
	wallMax float64
	buckets []admBucket
}

// admBucket is one completed per-vehicle epoch: frames, deadline misses,
// and the worst wall latency seen.
type admBucket struct {
	n, bad  int
	wallMax float64
}

// NewFleetAdmission builds a standalone admission controller (no phase
// barrier) — the form the determinism property tests drive directly. Fleets
// construct theirs through FleetConfig.Admission.
func NewFleetAdmission(cfg AdmissionConfig) (*FleetAdmission, error) {
	return newFleetAdmission(cfg, true, false)
}

func newFleetAdmission(cfg AdmissionConfig, shedding, phase bool) (*FleetAdmission, error) {
	target := cfg.Target
	if target == 0 {
		target = DefaultFrameBudget
	}
	if target < 0 {
		return nil, fmt.Errorf("pipeline: admission target %v must be positive", cfg.Target)
	}
	epoch := cfg.Epoch
	if epoch == 0 {
		epoch = DefaultAdmissionEpoch
	}
	if epoch < 1 {
		return nil, fmt.Errorf("pipeline: admission epoch %d must be positive", cfg.Epoch)
	}
	high, low := cfg.High, cfg.Low
	if high == 0 {
		high = DefaultAdmissionHigh
		if cfg.Virtual {
			high = DefaultVirtualAdmissionHigh
		}
	}
	if low == 0 {
		low = DefaultAdmissionLow
		if cfg.Virtual {
			low = DefaultVirtualAdmissionLow
		}
	}
	if high <= low {
		return nil, fmt.Errorf("pipeline: admission watermarks high %v <= low %v", high, low)
	}
	hyst := cfg.Hysteresis
	if hyst == 0 {
		hyst = DefaultAdmissionHysteresis
	}
	if hyst < 1 {
		return nil, fmt.Errorf("pipeline: admission hysteresis %d must be positive", cfg.Hysteresis)
	}
	if cfg.MaxAdmitted < 0 {
		return nil, fmt.Errorf("pipeline: MaxAdmitted %d must be >= 0", cfg.MaxAdmitted)
	}
	a := &FleetAdmission{
		target:     float64(target) / 1e6,
		epoch:      epoch,
		high:       high,
		low:        low,
		hysteresis: hyst,
		maxAdm:     cfg.MaxAdmitted,
		virtual:    cfg.Virtual,
		shedding:   shedding,
		phase:      phase,
		priority:   cfg.Priority,
		veh:        make(map[int]*admVehicle),
	}
	a.cond = sync.NewCond(&a.mu)
	return a, nil
}

// setTailSource points wall-mode pressure at the fleet's rolling monitor.
func (a *FleetAdmission) setTailSource(m *constraint.Monitor) { a.tailSource = m }

// Register adds a vehicle stream to the controller, admitted unless the
// MaxAdmitted cap forces an immediate shed of the lowest-priority stream.
// Registering an existing ID resets that vehicle (fleet IDs never recycle).
func (a *FleetAdmission) Register(vehicle int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.veh[vehicle]; !ok {
		a.order = append(a.order, vehicle)
		sort.Ints(a.order)
	}
	a.veh[vehicle] = &admVehicle{id: vehicle, priority: a.priority[vehicle], admitting: true, observing: true}
	if a.maxAdm > 0 {
		for a.admittedCountLocked() > a.maxAdm {
			if !a.shedLocked(a.capVictimLocked(), 0) {
				break
			}
		}
	}
	a.membershipChangedLocked()
}

// Leave retires a vehicle's stream from the controller entirely. Call it
// only once the stream's LAST delivered frame has been observed (the fleet
// calls it from the consumer after the result channel closes): leaving is
// then a position in the vehicle's own stream, not a wall-clock moment, so
// the decision sequence stays schedule-independent even though admission
// stopped an in-flight window earlier. When the last admitted stream
// leaves, any still-shed streams are ended too — with nobody delivering
// frames there are no more decision epochs, so a parked stream could
// otherwise never resume.
func (a *FleetAdmission) Leave(vehicle int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.veh[vehicle]
	if st == nil || !st.observing {
		return
	}
	st.observing = false
	st.admitting = false
	if a.admittedCountLocked() == 0 {
		for _, id := range a.order {
			if o := a.veh[id]; o.observing && o.shed {
				o.ended = true
			}
		}
	}
	// The departure may unblock decisions the barrier was holding for this
	// stream's next bucket.
	a.decideLocked()
	a.membershipChangedLocked()
}

// leaveAdmitting marks a stream as done ASKING for frames (SRC exhausted or
// stopped) while its in-flight deliveries may still be pending: it exits
// the phase barrier and the gather cohort, but stays in the decision
// barrier until Leave. This half is wall-timed and deliberately has no
// influence on shed/readmit decisions.
func (a *FleetAdmission) leaveAdmitting(vehicle int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.veh[vehicle]
	if st == nil || !st.admitting {
		return
	}
	st.admitting = false
	a.membershipChangedLocked()
}

// Admitted reports whether the vehicle's stream is currently admitted.
func (a *FleetAdmission) Admitted(vehicle int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.veh[vehicle]
	return st != nil && !st.shed && !st.ended
}

// Sheds reports how many times the vehicle has been shed.
func (a *FleetAdmission) Sheds(vehicle int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st := a.veh[vehicle]; st != nil {
		return st.sheds
	}
	return 0
}

// History returns a copy of the shed/readmit event sequence.
func (a *FleetAdmission) History() []AdmissionEvent {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]AdmissionEvent(nil), a.history...)
}

// Observe folds one delivered frame into the vehicle's current epoch
// bucket: its wall latency (ms) and whether it missed a deadline budget
// (DegradedMask.AnyMiss — under Virtual enforcement a deterministic bit).
// Completing a bucket may trigger a decision.
func (a *FleetAdmission) Observe(vehicle int, wallMs float64, missed bool) {
	if !a.shedding {
		return // pure phase-locker: nothing to decide, keep no state
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.veh[vehicle]
	if st == nil || !st.observing {
		return
	}
	st.n++
	if missed {
		st.bad++
	}
	if wallMs > st.wallMax {
		st.wallMax = wallMs
	}
	if st.n >= a.epoch {
		st.buckets = append(st.buckets, admBucket{n: st.n, bad: st.bad, wallMax: st.wallMax})
		st.n, st.bad, st.wallMax = 0, 0, 0
		a.decideLocked()
	}
}

// admit is the StreamGate entry: block while shed (and, with the phase
// barrier on, until the fleet's admission beat), false to end the stream.
func (a *FleetAdmission) admit(vehicle int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.veh[vehicle]
	if st == nil {
		return false
	}
	for {
		if st.ended || !st.admitting {
			return false
		}
		if st.shed {
			a.cond.Wait()
			continue
		}
		if !a.phase {
			return true
		}
		// Phase barrier: park until every actively admitted stream is
		// parked, then release the round together. Alignment is best
		// effort — a stream shed mid-wait re-parks without the round —
		// and never load-bearing for results, only for batch depth.
		gen := a.gen
		a.waiting++
		a.maybeReleaseLocked()
		for a.gen == gen && !st.shed && !st.ended && st.admitting {
			a.cond.Wait()
		}
		if a.gen != gen {
			return true // round released (a concurrent shed takes effect next frame)
		}
		a.waiting-- // un-park: shed or ended while waiting, recheck
	}
}

// activeLocked counts actively admitted streams (running, not shed).
func (a *FleetAdmission) activeLocked() int {
	n := 0
	for _, id := range a.order {
		if st := a.veh[id]; st.admitting && !st.shed && !st.ended {
			n++
		}
	}
	return n
}

// admittedCountLocked counts admitted live streams (deliveries pending).
func (a *FleetAdmission) admittedCountLocked() int {
	n := 0
	for _, id := range a.order {
		if st := a.veh[id]; st.observing && !st.shed && !st.ended {
			n++
		}
	}
	return n
}

// maybeReleaseLocked fires the phase barrier when every active stream is
// parked at it.
func (a *FleetAdmission) maybeReleaseLocked() {
	if !a.phase || a.waiting == 0 {
		return
	}
	if a.waiting >= a.activeLocked() {
		a.gen++
		a.waiting = 0
		a.cond.Broadcast()
	}
}

// membershipChangedLocked re-evaluates everything that watches the active
// set: the phase barrier, the executor cohort callback, and blocked gates.
func (a *FleetAdmission) membershipChangedLocked() {
	a.maybeReleaseLocked()
	if a.onActive != nil {
		a.onActive(a.activeLocked())
	}
	a.cond.Broadcast()
}

// decideLocked runs decision epochs while every admitted live stream has
// an unconsumed bucket (a stream that raced ahead may have several queued;
// each decision consumes exactly one per stream, FIFO, so decision inputs
// are schedule-independent). Membership is keyed on observing, not
// admitting: a stream whose SRC already exhausted stays in the barrier
// until its trailing in-flight deliveries are folded in and Leave fires.
func (a *FleetAdmission) decideLocked() {
	for {
		var admitted []*admVehicle
		for _, id := range a.order {
			if st := a.veh[id]; st.observing && !st.shed && !st.ended {
				admitted = append(admitted, st)
			}
		}
		if len(admitted) == 0 {
			return
		}
		for _, st := range admitted {
			if len(st.buckets) == 0 {
				return
			}
		}
		a.decisions++
		totN, totBad := 0, 0
		consumed := make([]admBucket, len(admitted))
		for i, st := range admitted {
			consumed[i] = st.buckets[0]
			st.buckets = st.buckets[1:]
			totN += consumed[i].n
			totBad += consumed[i].bad
		}
		pressure := 0.0
		if a.virtual {
			if totN > 0 {
				pressure = float64(totBad) / float64(totN)
			}
		} else if a.tailSource != nil && a.target > 0 {
			pressure = a.tailSource.TailMs() / a.target
		}

		switch {
		case pressure >= a.high:
			a.calm = 0
			if len(admitted) > 1 { // never shed the last stream
				a.shedLocked(a.shedVictimLocked(admitted, consumed), pressure)
			}
		case pressure <= a.low:
			a.calm++
			if a.calm >= a.hysteresis && a.readmitLocked(pressure) {
				a.calm = 0
			}
		default:
			a.calm = 0
		}
	}
}

// shedVictimLocked picks the stream to shed: worst epoch badness first
// (miss fraction in Virtual mode, worst wall latency otherwise), then
// lowest priority, then highest ID.
func (a *FleetAdmission) shedVictimLocked(admitted []*admVehicle, consumed []admBucket) *admVehicle {
	badness := func(i int) float64 {
		b := consumed[i]
		if a.virtual {
			if b.n == 0 {
				return 0
			}
			return float64(b.bad) / float64(b.n)
		}
		return b.wallMax
	}
	best := 0
	for i := 1; i < len(admitted); i++ {
		bi, bb := badness(i), badness(best)
		vi, vb := admitted[i], admitted[best]
		if bi > bb ||
			(bi == bb && vi.priority < vb.priority) ||
			(bi == bb && vi.priority == vb.priority && vi.id > vb.id) {
			best = i
		}
	}
	return admitted[best]
}

// capVictimLocked picks the registration-time MaxAdmitted victim: lowest
// priority first, then highest ID (no load signal exists yet).
func (a *FleetAdmission) capVictimLocked() *admVehicle {
	var victim *admVehicle
	for _, id := range a.order {
		st := a.veh[id]
		if !st.observing || st.shed || st.ended {
			continue
		}
		if victim == nil || st.priority < victim.priority ||
			(st.priority == victim.priority && st.id > victim.id) {
			victim = st
		}
	}
	return victim
}

// shedLocked parks one stream and records the event.
func (a *FleetAdmission) shedLocked(st *admVehicle, pressure float64) bool {
	if st == nil || st.shed {
		return false
	}
	st.shed = true
	st.sheds++
	a.history = append(a.history, AdmissionEvent{Decision: a.decisions, Vehicle: st.id, Shed: true, Pressure: pressure})
	a.membershipChangedLocked()
	return true
}

// readmitLocked resumes the best shed stream (highest priority, then lowest
// ID), respecting the MaxAdmitted cap. Reports whether one was readmitted.
func (a *FleetAdmission) readmitLocked(pressure float64) bool {
	if a.maxAdm > 0 && a.admittedCountLocked() >= a.maxAdm {
		return false
	}
	var pick *admVehicle
	for _, id := range a.order {
		st := a.veh[id]
		if !st.observing || !st.shed || st.ended {
			continue
		}
		if pick == nil || st.priority > pick.priority {
			pick = st
		}
	}
	if pick == nil {
		return false
	}
	pick.shed = false
	a.history = append(a.history, AdmissionEvent{Decision: a.decisions, Vehicle: pick.id, Shed: false, Pressure: pressure})
	a.membershipChangedLocked()
	return true
}

// vehicleGate adapts one vehicle's view of the controller to the runner's
// StreamGate seam.
type vehicleGate struct {
	a  *FleetAdmission
	id int
}

func (g vehicleGate) Admit() bool { return g.a.admit(g.id) }

// Leave on the gate is the ADMITTING half only: the runner calls it when
// the SRC stops asking for frames, while deliveries may still be in
// flight. The fleet's consumer issues the full FleetAdmission.Leave after
// the last delivery is observed.
func (g vehicleGate) Leave() { g.a.leaveAdmitting(g.id) }
