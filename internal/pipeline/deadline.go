package pipeline

import (
	"strings"
	"time"

	"adsim/internal/telemetry"
)

// This file is the deadline-enforcement layer: per-stage time budgets
// carved out of the paper's 100 ms frame deadline, enforced in the shared
// execStage path, with a defined degraded mode per stage when a budget is
// blown. The paper's predictability constraint (§3) is a tail bound — the
// 99.99th-percentile frame must finish under the deadline — which means a
// rare stage stall must not be allowed to ride the frame's critical path.
// Enforcement turns a stall into a bounded wait plus a cheaper fallback:
//
//	DET  miss ⇒ TRA-only frame: no fresh detections; the tracker coasts
//	            its tracked-object table on motion alone.
//	LOC  miss ⇒ motion-model-only pose, flagged Stale (Estimate.Stale).
//	TRA  miss ⇒ previous frame's track table, coasted by reuse.
//	FUSION / MISPLAN / MOTPLAN / CONTROL miss ⇒ previous output held
//	            (fused frame / guidance / plan / command).
//
// Which stages degraded is surfaced per frame as FrameResult.Degraded (a
// DegradedMask) and counted in telemetry: deadline/miss, deadline/degraded,
// deadline/miss/<stage>, and a deadline/stage_ms/<stage> distribution of
// charged stage times.
//
// The abandoned attempt keeps running in the background on a private copy
// of the frame's inputs, so every engine still observes every frame in
// admission order (the determinism invariant survives enforcement); the
// stage's next frame first drains that late attempt before touching the
// engine again. See StageSpec.Reads/Writes in graph.go for the copy
// discipline that makes the late attempt race-free.

// DefaultFrameBudget is the paper's end-to-end latency constraint: frames
// must complete within 100 ms.
const DefaultFrameBudget = 100 * time.Millisecond

// budgetShare is the default per-mille split of the frame budget across
// stages, shaped by the paper's Figure 5/6 latency profile: the DNN-heavy
// perception stages (DET, LOC, TRA) dominate, planning gets the next
// largest share, and the cheap kernels (FUSION, MISPLAN, CONTROL) split
// the rest. SRC (frame acquisition) is not budgeted — it models the
// camera, not a computation the system can shed.
var budgetShare = [NumStages]int{
	StageSrc:     0,
	StageDet:     350,
	StageLoc:     250,
	StageTra:     100,
	StageFusion:  50,
	StageMisplan: 50,
	StageMotplan: 150,
	StageControl: 50,
}

// DefaultStageBudgets splits a frame budget across the stages using the
// default shares. frame <= 0 selects DefaultFrameBudget.
func DefaultStageBudgets(frame time.Duration) [NumStages]time.Duration {
	if frame <= 0 {
		frame = DefaultFrameBudget
	}
	var out [NumStages]time.Duration
	for id := range out {
		out[id] = frame * time.Duration(budgetShare[id]) / 1000
	}
	return out
}

// DeadlinePolicy configures per-stage budget enforcement with degraded
// modes. The zero value disables enforcement (the pipeline behaves exactly
// as before).
type DeadlinePolicy struct {
	// Enforce turns budget enforcement on.
	Enforce bool
	// FrameBudget is the frame deadline the default stage budgets are
	// carved from; 0 selects DefaultFrameBudget.
	FrameBudget time.Duration
	// Budgets overrides individual stage budgets. Zero entries are filled
	// from DefaultStageBudgets(FrameBudget); a negative entry disables
	// enforcement for that stage. SRC is never budgeted.
	Budgets [NumStages]time.Duration
	// Virtual switches enforcement to the deterministic chaos-testing
	// clock: only injected delays (Config.Inject) are charged against
	// budgets, the decision is computed without timers or sleeps, and a
	// missed stage's attempt still runs to completion synchronously (its
	// output discarded) so engine state evolves exactly as under
	// wall-clock enforcement. Virtual runs are bitwise-reproducible
	// across executors and machines.
	Virtual bool
	// Anytime lets anytime-capable stages (DET) exit early at a layer
	// boundary when their budget is nearly spent, committing a coarser
	// on-time result — flagged as the mask's Anytime bit — instead of
	// missing outright. Under wall-clock enforcement the stage body races
	// a guarded deadline (AnytimeGuardFrac of the budget is reserved for
	// the work outside the network); under Virtual enforcement the exit is
	// decided deterministically from the injected delay alone: a delay in
	// (budget/2, budget] exits anytime with the remaining budget fraction,
	// a delay beyond the budget is still a full miss.
	Anytime bool
}

// AnytimeGuardFrac is the slice of an anytime stage's budget reserved for
// its non-network work (pre-processing, proposal decode, NMS): the anytime
// deadline handed to the stage body is start + (1-guard)·budget, so an
// early-exited attempt still commits inside the real budget. This is the
// anytime-exit error budget of DESIGN.md §12.
const AnytimeGuardFrac = 0.2

// resolve fills in the effective per-stage budgets.
func (d DeadlinePolicy) resolve() [NumStages]time.Duration {
	def := DefaultStageBudgets(d.FrameBudget)
	var out [NumStages]time.Duration
	if !d.Enforce {
		return out
	}
	for id := range out {
		switch b := d.Budgets[id]; {
		case b > 0:
			out[id] = b
		case b == 0:
			out[id] = def[id]
		default:
			out[id] = 0 // negative: enforcement off for this stage
		}
	}
	out[StageSrc] = 0
	return out
}

// DegradedMask records, per frame, which stages blew their budget and fell
// back to their degraded mode — one bit per StageID — plus the Anytime bit
// (position NumStages) flagging a frame whose DET committed an early-exited
// coarser result on time. Anytime is deliberately distinct from DET's miss
// bit: a miss delivered the fallback (no detections at all), an anytime
// frame delivered a reduced detection set inside the budget.
type DegradedMask uint16

// anytimeBit is the mask bit position of the Anytime flag, just past the
// per-stage miss bits.
const anytimeBit = uint(NumStages)

// Has reports whether the stage degraded on this frame.
func (m DegradedMask) Has(id StageID) bool { return m&(1<<uint(id)) != 0 }

// Anytime reports whether DET exited early and committed a coarser on-time
// detection set on this frame.
func (m DegradedMask) Anytime() bool { return m&(1<<anytimeBit) != 0 }

// Any reports whether any stage degraded on this frame — a budget miss or
// an anytime early exit; either way the frame's quality was reduced.
func (m DegradedMask) Any() bool { return m != 0 }

// AnyMiss reports whether any stage actually blew its budget and delivered
// its fallback (the anytime bit alone does not count: that frame still
// delivered fresh, if coarser, output on time).
func (m DegradedMask) AnyMiss() bool { return m&^(1<<anytimeBit) != 0 }

// String renders the degraded stages as "DET|LOC", with an anytime early
// exit rendered as "DET~", or "-" for a clean frame.
func (m DegradedMask) String() string {
	if m == 0 {
		return "-"
	}
	var parts []string
	for id := StageID(0); id < NumStages; id++ {
		if m.Has(id) {
			parts = append(parts, id.String())
		}
	}
	if m.Anytime() {
		parts = append(parts, StageDet.String()+"~")
	}
	return strings.Join(parts, "|")
}

// deadlineMetrics are the pre-resolved telemetry handles the enforcement
// path increments; resolving them once at construction keeps execStage off
// the registry's name-lookup path.
type deadlineMetrics struct {
	miss      *telemetry.Counter
	degraded  *telemetry.Counter
	anytime   *telemetry.Counter
	stageMiss [NumStages]*telemetry.Counter
	stageMS   [NumStages]*telemetry.Dist
}

// newDeadlineMetrics resolves the deadline metric handles against a
// registry: deadline/miss (stage budget misses), deadline/degraded
// (frames delivered with a non-empty mask), deadline/anytime (frames whose
// DET committed an early-exited result), deadline/miss/<stage>, and
// the deadline/stage_ms/<stage> charged-time distributions.
func newDeadlineMetrics(reg *telemetry.Registry) deadlineMetrics {
	m := deadlineMetrics{
		miss:     reg.Counter("deadline/miss"),
		degraded: reg.Counter("deadline/degraded"),
		anytime:  reg.Counter("deadline/anytime"),
	}
	for id := StageID(0); id < NumStages; id++ {
		m.stageMiss[id] = reg.Counter("deadline/miss/" + id.String())
		m.stageMS[id] = reg.Dist("deadline/stage_ms/" + id.String())
	}
	return m
}
