package pipeline

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// RunnerOptions parameterizes the pipelined executor.
type RunnerOptions struct {
	// InFlight bounds the number of frames admitted but not yet delivered
	// (the pipelining window). 1 degenerates to sequential Step behaviour;
	// values above 1 let frame N+1's DET/LOC start while frame N is still
	// in TRA→FUSION→MOTPLAN. 0 selects DefaultInFlight.
	InFlight int
}

// DefaultInFlight is the default pipelining window. Three frames cover the
// three sequential macro-stages (DET/LOC, TRA, back end), so every stage
// has work each beat without queueing latency beyond the stage depth.
const DefaultInFlight = 3

// RunnerResult is one frame's output from the pipelined executor, delivered
// in frame order.
type RunnerResult struct {
	FrameResult
	// Err carries this frame's pipeline error (mission update or motion
	// planning), if any. Later frames still flow; the consumer decides
	// whether to Stop.
	Err error
	// Wall is the frame's admission-to-delivery wall-clock latency under
	// pipelined execution. Unlike Timing.E2E (the dependency-law critical
	// path), Wall includes time spent queued behind other in-flight
	// frames, so it is the honest per-frame latency at a given throughput.
	Wall time.Duration
}

// Runner pipelines frames through the native pipeline's stages: the frame
// source, DET, LOC, TRA and the back end (FUSION→MISPLAN→MOTPLAN→CONTROL)
// each run on their own goroutine, connected by channels. Every stateful
// engine still sees frames strictly in order on a single goroutine, so the
// results are bitwise-identical to a sequential Step loop on the same seed
// — only the wall-clock schedule changes.
//
// The stage graph mirrors the paper's Figure 1 dependency law:
//
//	source ─┬─► DET ──► TRA ──┐
//	        └─► LOC ──────────┴─► FUSION → MISPLAN → MOTPLAN → CONTROL ─► Results
//
// A Runner owns its Pipeline from construction: calling Step (or mutating
// engines) while the runner is active races with the stage goroutines.
type Runner struct {
	p       *Pipeline
	opts    RunnerOptions
	results chan RunnerResult
	quit    chan struct{}
	started atomic.Bool
	stop    sync.Once
}

// NewRunner wraps a native pipeline in a pipelined executor.
func NewRunner(p *Pipeline, opts RunnerOptions) (*Runner, error) {
	if p == nil {
		return nil, fmt.Errorf("pipeline: nil pipeline")
	}
	if opts.InFlight == 0 {
		opts.InFlight = DefaultInFlight
	}
	if opts.InFlight < 1 {
		return nil, fmt.Errorf("pipeline: InFlight %d must be positive", opts.InFlight)
	}
	return &Runner{
		p:       p,
		opts:    opts,
		results: make(chan RunnerResult),
		quit:    make(chan struct{}),
	}, nil
}

// InFlight reports the configured pipelining window.
func (r *Runner) InFlight() int { return r.opts.InFlight }

// frameState carries one frame through the stage graph. DET/TRA and LOC
// write disjoint fields concurrently; the back end reads them only after
// both streams hand the frame over (channel receives order those writes).
type frameState struct {
	admitted time.Time
	res      FrameResult
}

// Run starts the stage goroutines and returns the in-order result channel.
// The channel closes after frames results have been delivered, or earlier
// if Stop drains the window first; frames <= 0 runs until Stop. Run may be
// called once; subsequent calls return the same channel.
func (r *Runner) Run(frames int) <-chan RunnerResult {
	if !r.started.CompareAndSwap(false, true) {
		return r.results
	}
	n := r.opts.InFlight
	window := make(chan struct{}, n) // admission tokens: bounds frames in flight
	detCh := make(chan *frameState, n)
	locCh := make(chan *frameState, n)
	traCh := make(chan *frameState, n)
	fuseCh := make(chan *frameState, n)
	locOut := make(chan *frameState, n)

	// SOURCE: render frames in scenario order and admit them into the
	// window. The channel buffers hold at most InFlight frames, so the
	// sends below never block; only admission does.
	go func() {
		defer close(detCh)
		defer close(locCh)
		for i := 0; frames <= 0 || i < frames; i++ {
			select {
			case window <- struct{}{}:
			case <-r.quit:
				return
			}
			fs := &frameState{admitted: time.Now()}
			fs.res.Frame = r.p.gen.Step()
			detCh <- fs
			locCh <- fs
		}
	}()

	// DET stage (stateless per frame).
	go func() {
		defer close(traCh)
		for fs := range detCh {
			r.p.runDet(&fs.res)
			traCh <- fs
		}
	}()

	// LOC stage (stateful: motion model, map updates — frame order
	// preserved by the single goroutine).
	go func() {
		defer close(locOut)
		for fs := range locCh {
			r.p.runLoc(&fs.res)
			locOut <- fs
		}
	}()

	// TRA stage (stateful: tracked-object table; internally fans out one
	// goroutine per tracked object).
	go func() {
		defer close(fuseCh)
		for fs := range traCh {
			r.p.runTra(&fs.res)
			fuseCh <- fs
		}
	}()

	// BACK END: join the LOC stream, then fuse, plan, control and deliver
	// in admission order.
	go func() {
		defer close(r.results)
		for fs := range fuseCh {
			<-locOut // same frame: both streams preserve admission order
			err := r.p.finishFrame(&fs.res)
			r.results <- RunnerResult{
				FrameResult: fs.res,
				Err:         err,
				Wall:        time.Since(fs.admitted),
			}
			<-window // frame delivered: free its in-flight slot
		}
	}()
	return r.results
}

// Stop ceases admitting new frames. Frames already in flight drain through
// the stages and are delivered before the result channel closes, so no
// admitted frame is ever lost. Safe to call multiple times and from any
// goroutine, including while ranging over Run's channel.
func (r *Runner) Stop() {
	r.stop.Do(func() { close(r.quit) })
}
