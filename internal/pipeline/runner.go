package pipeline

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adsim/internal/telemetry"
)

// RunnerOptions parameterizes the pipelined executor.
type RunnerOptions struct {
	// InFlight bounds the number of frames admitted but not yet delivered
	// (the pipelining window). 1 degenerates to sequential Step behaviour;
	// values above 1 let frame N+1's DET/LOC start while frame N is still
	// in TRA→FUSION→MOTPLAN. 0 selects DefaultInFlight.
	//
	// With Tail set this is the window CEILING: the scheduler shrinks the
	// live admission window below it under tail pressure and grows back on
	// recovery, never above InFlight and never below 1.
	InFlight int
	// Tail, when non-nil, puts admission under the closed-loop
	// tail-latency controller (see tail.go): the in-flight window adapts
	// to the rolling P99.99 and each admitted frame is stamped with the
	// controller's current DET resolution rung. A scheduler serves exactly
	// one executor; NewRunner claims it.
	Tail *TailScheduler
	// Gate, when non-nil, is consulted before every frame admission —
	// BEFORE the in-flight window (and before the tail scheduler): the
	// fleet-level seam through which an admission controller pauses a shed
	// stream and a phase-locker aligns co-resident streams' admission
	// beats. Admit blocking only delays this stream; a false return ends
	// it (the runner drains and closes as if Stop had been called).
	Gate StreamGate
}

// StreamGate is the fleet-level stream admission seam (see RunnerOptions.
// Gate). Implementations must be safe for concurrent use: Admit is called
// from the runner's SRC goroutine, Leave additionally from Stop.
type StreamGate interface {
	// Admit blocks until the stream may admit its next frame; returning
	// false ends the stream instead.
	Admit() bool
	// Leave marks the stream as done admitting — called when the frame
	// supply is exhausted, and from Stop to unblock a pending Admit. Must
	// be idempotent.
	Leave()
}

// DefaultInFlight is the default pipelining window. Three frames cover the
// three sequential macro-stages (DET/LOC, TRA, back end), so every stage
// has work each beat without queueing latency beyond the stage depth.
const DefaultInFlight = 3

// RunnerResult is one frame's output from the pipelined executor, delivered
// in frame order.
type RunnerResult struct {
	FrameResult
	// Err carries this frame's pipeline error (mission update or motion
	// planning), if any. Later frames still flow; the consumer decides
	// whether to Stop.
	Err error
	// Wall is the frame's admission-to-delivery wall-clock latency under
	// pipelined execution. Unlike Timing.E2E (the dependency-law critical
	// path), Wall includes time spent queued behind other in-flight
	// frames, so it is the honest per-frame latency at a given throughput.
	Wall time.Duration
}

// Runner pipelines frames through the pipeline's declarative stage graph
// (graph.go): every stage of the graph runs on its own long-lived
// goroutine, connected by one channel per graph edge, with a join at each
// multi-dependency stage. The topology is not restated here — it is read
// from the same Graph the sequential Step executor runs, so the two can
// never diverge. Every stateful engine still sees frames strictly in order
// on a single goroutine, so the results are bitwise-identical to a
// sequential Step loop on the same seed — only the wall-clock schedule
// changes.
//
// A frame whose stage errors (mission update, motion planning) skips its
// downstream stages and is delivered with Err set; later frames are
// unaffected and keep flowing.
//
// A Runner owns its Pipeline from construction: calling Step (or mutating
// engines) while the runner is active races with the stage goroutines.
type Runner struct {
	p       *Pipeline
	opts    RunnerOptions
	results chan RunnerResult
	quit    chan struct{}
	started atomic.Bool
	stop    sync.Once
}

// NewRunner wraps a native pipeline in a pipelined executor.
func NewRunner(p *Pipeline, opts RunnerOptions) (*Runner, error) {
	if p == nil {
		return nil, fmt.Errorf("pipeline: nil pipeline")
	}
	if opts.InFlight == 0 {
		opts.InFlight = DefaultInFlight
	}
	if opts.InFlight < 1 {
		return nil, fmt.Errorf("pipeline: InFlight %d must be positive", opts.InFlight)
	}
	if opts.Tail != nil {
		if err := opts.Tail.attach(opts.InFlight); err != nil {
			return nil, err
		}
		p.det.Warm(opts.Tail.ladder...)
	}
	return &Runner{
		p:       p,
		opts:    opts,
		results: make(chan RunnerResult),
		quit:    make(chan struct{}),
	}, nil
}

// InFlight reports the configured pipelining window.
func (r *Runner) InFlight() int { return r.opts.InFlight }

// Run starts one goroutine per graph stage and returns the in-order result
// channel. The channel closes after frames results have been delivered, or
// earlier if Stop drains the window first; frames <= 0 runs until Stop.
// Run may be called once; subsequent calls return the same channel.
func (r *Runner) Run(frames int) <-chan RunnerResult {
	if !r.started.CompareAndSwap(false, true) {
		return r.results
	}
	n := r.opts.InFlight
	g := &r.p.g

	// One channel per graph edge, buffered to the window size: at most
	// InFlight frames exist at once, so sends below never block — only
	// admission does. inputs[s][i] is the edge from s's i-th dependency.
	var inputs, outputs [NumStages][]chan *frameState
	for _, id := range g.Topo() {
		for _, dep := range g.stages[id].Deps {
			ch := make(chan *frameState, n)
			inputs[id] = append(inputs[id], ch)
			outputs[dep] = append(outputs[dep], ch)
		}
	}
	// The terminal stage's single consumer is the delivery loop.
	deliver := make(chan *frameState, n)
	outputs[StageControl] = append(outputs[StageControl], deliver)

	window := make(chan struct{}, n) // admission tokens: bounds frames in flight
	tail := r.opts.Tail              // non-nil: the scheduler IS the window
	var stages sync.WaitGroup        // every engine-stage goroutine, for shutdown

	closeAll := func(chs []chan *frameState) {
		for _, ch := range chs {
			close(ch)
		}
	}

	// SRC: render frames in scenario order and admit them into the window.
	// Under a tail scheduler, admission blocks on the ADAPTIVE window (the
	// live limit, <= n) while the stage edges above stay buffered to the
	// ceiling n — so a mid-flight shrink only slows admission, it can never
	// make an in-flight frame's fan-out send block and deadlock a join.
	// The admitted frame is stamped with the controller's current
	// resolution rung under the same lock that decides rung transitions,
	// so scale changes reach DET strictly in admission order.
	srcSpec := g.stages[StageSrc]
	srcOut := outputs[StageSrc]
	gate := r.opts.Gate
	go func() {
		defer closeAll(srcOut)
		if gate != nil {
			defer gate.Leave()
		}
		for i := 0; frames <= 0 || i < frames; i++ {
			if gate != nil && !gate.Admit() {
				return // shed stream ended, or Stop
			}
			var detSize int
			if tail != nil {
				size, ok := tail.admit()
				if !ok {
					return // Stop interrupted admission
				}
				detSize = size
			} else {
				select {
				case window <- struct{}{}:
				case <-r.quit:
					return
				}
			}
			fs := &frameState{admitted: time.Now(), detSize: detSize}
			r.p.execStage(srcSpec, fs)
			for _, ch := range srcOut {
				ch <- fs
			}
		}
	}()

	// Engine stages: one goroutine each, consuming every dependency's
	// stream. All streams deliver the same frames in admission order, so
	// receiving one item from each joins the frame; the receive also
	// orders the dependency's writes (including its doneAt stamp) before
	// execStage reads them.
	for _, id := range g.Topo() {
		if id == StageSrc {
			continue
		}
		spec := g.stages[id]
		ins, outs := inputs[id], outputs[id]
		stages.Add(1)
		go func() {
			// Drain before close (LIFO defers): a budget-blown frame may
			// have left a late attempt running against this stage's
			// engine. Waiting for it before the downstream channels close
			// keeps Stop's drain contract honest — once the result channel
			// closes, no stage goroutine is still touching an engine, even
			// if the last in-flight frame degraded. The Done fires last,
			// after the drain: the delivery loop waits on the group, so
			// closure of the result channel orders after every drain —
			// including stages off the terminal close-propagation chain
			// (a join stage exits on its FIRST dependency's closure, so
			// e.g. LOC may still be draining when CONTROL has already
			// closed the delivery channel).
			defer stages.Done()
			defer closeAll(outs)
			defer r.p.drainStage(spec.ID)
			for {
				fs, ok := <-ins[0]
				if !ok {
					return
				}
				for _, ch := range ins[1:] {
					<-ch // same frame: every stream preserves admission order
				}
				r.p.execStage(spec, fs)
				for _, ch := range outs {
					ch <- fs
				}
			}
		}()
	}

	// DELIVER: in admission order, emit telemetry and free the window slot.
	go func() {
		defer close(r.results)
		for fs := range deliver {
			r.p.sealFrame(fs)
			wall := time.Since(fs.admitted)
			err := fs.err()
			r.p.sink.FrameDone(telemetry.FrameEnd{
				Frame:    fs.res.Frame.Index,
				Wall:     wall,
				Err:      err != nil,
				Degraded: fs.res.Degraded.Any(),
			})
			r.results <- RunnerResult{
				FrameResult: fs.res,
				Err:         err,
				Wall:        wall,
			}
			if tail != nil {
				// Frees the slot AND feeds the controller its tail signal.
				tail.frameDone(float64(wall) / 1e6)
			} else {
				<-window // frame delivered: free its in-flight slot
			}
		}
		// All frames are delivered, but stages off the terminal
		// close-propagation chain may still be draining abandoned late
		// attempts. The result-channel close is the caller's license to
		// touch the pipeline again, so it must order after every drain.
		stages.Wait()
	}()
	return r.results
}

// Stop ceases admitting new frames. Frames already in flight drain through
// the stages and are delivered in order before the result channel closes,
// so no admitted frame is ever lost — including frames that degraded under
// deadline enforcement, whose abandoned late attempts are also waited for
// before the stage goroutines exit. Safe to call multiple times and from
// any goroutine, including while ranging over Run's channel.
func (r *Runner) Stop() {
	r.stop.Do(func() {
		close(r.quit)
		if r.opts.Tail != nil {
			r.opts.Tail.interrupt() // unblock a SRC goroutine waiting on admission
		}
		if r.opts.Gate != nil {
			r.opts.Gate.Leave() // unblock a SRC goroutine waiting at the gate
		}
	})
}
