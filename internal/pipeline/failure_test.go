package pipeline

// Failure-injection tests: the end-to-end system must degrade gracefully —
// never panic, never emit unsafe plans — under sensor and stage failures.

import (
	"testing"

	"adsim/internal/detect"
	"adsim/internal/img"
	"adsim/internal/plan"
	"adsim/internal/scene"
	"adsim/internal/slam"
	"adsim/internal/track"
)

// TestDetectorBlackoutTrackerCoasts drives the tracker directly: after a
// detector blackout the tracked-object table must coast on template
// matching and only expire entries after the ten-frame miss limit.
func TestDetectorBlackoutTrackerCoasts(t *testing.T) {
	cfg := scene.DefaultConfig(scene.Highway)
	cfg.Width, cfg.Height = 512, 256
	gen, err := scene.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det, _ := detect.New(func() detect.Config {
		c := detect.DefaultConfig()
		c.RunDNN = false
		return c
	}())
	tra, _ := track.New(func() track.Config {
		c := track.DefaultConfig()
		c.RunDNN = false
		return c
	}())

	// Warm up with detections.
	for i := 0; i < 5; i++ {
		f := gen.Step()
		dets := det.Detect(f.Image)
		converted := make([]track.Detection, len(dets))
		for j, d := range dets {
			converted[j] = track.Detection{Box: d.Box, Class: d.Class}
		}
		tra.Step(f.Image, converted)
	}
	before := tra.ActiveCount()
	if before == 0 {
		t.Fatal("no tracks established before blackout")
	}

	// Blackout shorter than the miss limit: tracks must survive.
	for i := 0; i < track.MissLimit-1; i++ {
		f := gen.Step()
		tra.Step(f.Image, nil)
	}
	if tra.ActiveCount() == 0 {
		t.Error("all tracks lost during a sub-limit blackout")
	}

	// Extended blackout: the table must fully drain (no zombie tracks).
	for i := 0; i < track.MissLimit+1; i++ {
		f := gen.Step()
		tra.Step(f.Image, nil)
	}
	if tra.ActiveCount() != 0 {
		t.Errorf("%d zombie tracks after extended blackout", tra.ActiveCount())
	}
}

// TestCorruptedFramesLocalizerRecovers feeds the localizer noise frames
// mid-route; it must declare tracking lost (not hallucinate a pose) and
// re-acquire via relocalization when good frames resume.
func TestCorruptedFramesLocalizerRecovers(t *testing.T) {
	cfg := scene.DefaultConfig(scene.Urban)
	cfg.Width, cfg.Height = 512, 256
	gen, _ := scene.New(cfg)
	m := slam.NewPriorMap()
	eng, _ := slam.NewEngine(slam.DefaultConfig(), m)
	for i := 0; i < 30; i++ {
		f := gen.Step()
		eng.Survey(f.Image, f.EgoPose)
	}

	replay, _ := scene.New(cfg)
	// Track normally for 8 frames.
	for i := 0; i < 8; i++ {
		f := replay.Step()
		if est := eng.Localize(f.Image); !est.Tracked {
			t.Fatalf("frame %d: lost tracking on clean frames", i)
		}
	}
	// Inject 3 corrupted frames (salt-and-pepper noise).
	noise := img.NewGray(512, 256)
	for i := range noise.Pix {
		if i%3 == 0 {
			noise.Pix[i] = 255
		}
	}
	for i := 0; i < 3; i++ {
		replay.Step() // world advances while the camera is corrupted
		est := eng.Localize(noise)
		if est.Tracked && est.Matches > 100 {
			t.Error("localizer confidently tracked pure noise")
		}
	}
	// Clean frames resume: must re-acquire within a few frames.
	reacquired := false
	for i := 0; i < 6; i++ {
		f := replay.Step()
		if est := eng.Localize(f.Image); est.Tracked {
			reacquired = true
			break
		}
	}
	if !reacquired {
		t.Error("localizer failed to re-acquire after corruption cleared")
	}
	if eng.Relocalizations() == 0 {
		t.Error("recovery should have used the relocalization path")
	}
}

// TestPipelineSurvivesBlankCamera runs the full native pipeline on a
// scenario whose frames are blanked every third frame by wrapping the
// detector input — here approximated by a scene with no objects and
// checking the pipeline emits sane plans regardless.
func TestPipelineSurvivesEmptyWorld(t *testing.T) {
	cfg := DefaultConfig(scene.Urban)
	cfg.Scene.Width, cfg.Scene.Height = 384, 192
	cfg.Scene.NumVehicles, cfg.Scene.NumPeds, cfg.Scene.NumSigns = 0, 0, 0
	cfg.SurveyFrames = 10
	cfg.Detect.RunDNN = false
	cfg.Track.RunDNN = false
	p, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		res, err := p.Step()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(res.Detections) != 0 {
			t.Errorf("frame %d: %d phantom detections in an empty world", i, len(res.Detections))
		}
		if res.Plan.Decision != plan.KeepLane {
			t.Errorf("frame %d: decision %v on an empty road", i, res.Plan.Decision)
		}
	}
}

// TestPipelineEmergencyStopWhenBoxedIn verifies the planner's terminal
// fallback propagates through the pipeline when fused obstacles block every
// lattice offset.
func TestPipelineEmergencyStopWhenBoxedIn(t *testing.T) {
	res, err := plan.PlanConformal(plan.DefaultConformalConfig(), 0, 0,
		func() []plan.Obstacle {
			var o []plan.Obstacle
			for x := -6.0; x <= 6.0; x += 0.7 {
				o = append(o, plan.Obstacle{X: x, Z: 1.5, Radius: 1.5})
			}
			return o
		}())
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != plan.EmergencyStop {
		t.Fatalf("boxed-in decision = %v", res.Decision)
	}
	if len(res.Path.Waypoints) != 0 {
		t.Error("emergency stop should carry no waypoints")
	}
}
