//go:build race

package pipeline

// raceEnabled reports whether the race detector instruments this build.
// Wall-clock deadline assertions widen under its ~10x slowdown.
const raceEnabled = true
