package pipeline

import (
	"reflect"
	"testing"
	"time"

	"adsim/internal/dnn"
	"adsim/internal/faultinject"
	"adsim/internal/scene"
	"adsim/internal/testutil"
)

// feedEpoch folds one clean-or-missed epoch of frames into the controller
// for one vehicle.
func feedEpoch(a *FleetAdmission, vehicle, epoch, misses int) {
	for i := 0; i < epoch; i++ {
		a.Observe(vehicle, 0, i < misses)
	}
}

// TestAdmissionControllerLaw drives the controller directly through its
// decision law: pressure over the high watermark sheds the unhealthiest
// stream, hysteresis gates readmission, the last stream is never shed, and
// priorities order both directions.
func TestAdmissionControllerLaw(t *testing.T) {
	const epoch = 4
	newAdm := func(t *testing.T, cfg AdmissionConfig) *FleetAdmission {
		t.Helper()
		a, err := NewFleetAdmission(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	t.Run("shed-readmit-cycle", func(t *testing.T) {
		a := newAdm(t, AdmissionConfig{
			Virtual: true, Epoch: epoch, High: 0.15, Low: 0.05, Hysteresis: 2,
		})
		for v := 0; v < 3; v++ {
			a.Register(v)
		}
		// Epoch 1: vehicle 2 misses half its frames; fleet pressure 2/12 ≥
		// 0.15 sheds the unhealthiest stream.
		feedEpoch(a, 0, epoch, 0)
		feedEpoch(a, 1, epoch, 0)
		feedEpoch(a, 2, epoch, 2)
		if a.Admitted(2) {
			t.Fatal("vehicle 2 still admitted after a 50% miss epoch")
		}
		if a.Admitted(0) != true || a.Admitted(1) != true {
			t.Fatal("healthy vehicles were shed")
		}
		// A shed stream's residual frames accumulate but neither join the
		// decision barrier nor fire decisions.
		feedEpoch(a, 2, epoch, 4)
		// Epoch 2: calm, but hysteresis=2 holds readmission back.
		feedEpoch(a, 0, epoch, 0)
		feedEpoch(a, 1, epoch, 0)
		if a.Admitted(2) {
			t.Fatal("readmitted after a single calm epoch despite hysteresis 2")
		}
		// Epoch 3: second calm epoch readmits.
		feedEpoch(a, 0, epoch, 0)
		feedEpoch(a, 1, epoch, 0)
		if !a.Admitted(2) {
			t.Fatal("not readmitted after two calm epochs")
		}
		if a.Sheds(2) != 1 {
			t.Errorf("vehicle 2 shed count = %d, want 1", a.Sheds(2))
		}
		want := []AdmissionEvent{
			{Decision: 1, Vehicle: 2, Shed: true, Pressure: 2.0 / 12.0},
			{Decision: 3, Vehicle: 2, Shed: false, Pressure: 0},
		}
		if got := a.History(); !reflect.DeepEqual(got, want) {
			t.Errorf("history = %+v, want %+v", got, want)
		}
	})

	t.Run("never-shed-last", func(t *testing.T) {
		a := newAdm(t, AdmissionConfig{Virtual: true, Epoch: epoch, High: 0.15, Low: 0.05})
		a.Register(0)
		for i := 0; i < 5; i++ {
			feedEpoch(a, 0, epoch, epoch) // 100% misses
		}
		if !a.Admitted(0) {
			t.Fatal("the only stream was shed")
		}
		if len(a.History()) != 0 {
			t.Errorf("history = %+v, want empty", a.History())
		}
	})

	t.Run("priority-orders-shed-and-readmit", func(t *testing.T) {
		a := newAdm(t, AdmissionConfig{
			Virtual: true, Epoch: epoch, High: 0.1, Low: 0.05, Hysteresis: 1,
			Priority: map[int]int{0: 0, 1: 1, 2: 2},
		})
		for v := 0; v < 3; v++ {
			a.Register(v)
		}
		// Equal badness everywhere: the LOWEST priority (vehicle 0) goes.
		for v := 0; v < 3; v++ {
			feedEpoch(a, v, epoch, 1)
		}
		if a.Admitted(0) || !a.Admitted(1) || !a.Admitted(2) {
			t.Fatalf("equal-badness shed order wrong: admitted = %v %v %v",
				a.Admitted(0), a.Admitted(1), a.Admitted(2))
		}
		// Shed vehicle 1 too, then go calm: the HIGHEST priority of the two
		// shed streams (vehicle 1) comes back first.
		feedEpoch(a, 1, epoch, 1)
		feedEpoch(a, 2, epoch, 1)
		if a.Admitted(1) {
			t.Fatal("vehicle 1 survived an over-pressure epoch as the lowest-priority admitted stream")
		}
		feedEpoch(a, 2, epoch, 0)
		if !a.Admitted(1) || a.Admitted(0) {
			t.Fatalf("readmit order wrong: admitted = %v %v", a.Admitted(0), a.Admitted(1))
		}
	})

	t.Run("max-admitted-cap", func(t *testing.T) {
		a := newAdm(t, AdmissionConfig{Virtual: true, MaxAdmitted: 2, Priority: map[int]int{2: 1}})
		for v := 0; v < 4; v++ {
			a.Register(v)
		}
		// Cap 2: registrations 3 and 4 each shed the lowest-priority,
		// highest-ID admitted stream. Vehicle 2 outranks 0 and 1.
		admitted := []bool{a.Admitted(0), a.Admitted(1), a.Admitted(2), a.Admitted(3)}
		want := []bool{true, false, true, false}
		if !reflect.DeepEqual(admitted, want) {
			t.Fatalf("admitted = %v, want %v (cap 2, vehicle 2 prioritized)", admitted, want)
		}
		for _, e := range a.History() {
			if e.Decision != 0 || !e.Shed {
				t.Errorf("cap enforcement event %+v, want decision-0 shed", e)
			}
		}
	})

	t.Run("config-validation", func(t *testing.T) {
		bad := []AdmissionConfig{
			{High: 0.3, Low: 0.5},
			{Epoch: -1},
			{Hysteresis: -2},
			{MaxAdmitted: -1},
			{Target: -time.Second},
		}
		for i, cfg := range bad {
			if _, err := NewFleetAdmission(cfg); err == nil {
				t.Errorf("config %d (%+v) accepted", i, cfg)
			}
		}
	})
}

// admissionFleetConfig is the shared scenario for the determinism property
// tests: three vehicles under virtual deadline enforcement, vehicle 1
// missing its DET budget every other frame via an injected stall.
func admissionFleetConfig(t *testing.T) FleetConfig {
	t.Helper()
	cfg := fastNativeConfig(scene.Urban)
	cfg.Deadline = DeadlinePolicy{Enforce: true, Virtual: true}
	cfg.Deadline.Budgets[StageDet] = 20 * time.Millisecond
	inj, err := faultinject.New(faultinject.MustParse("DET:delay=30ms:every=2", 7))
	if err != nil {
		t.Fatal(err)
	}
	return FleetConfig{
		Vehicles: 3,
		Config:   cfg,
		InFlight: 4,
		Injects: map[int]func(string, int) (time.Duration, error){
			1: inj.Stage,
		},
		Admission: &AdmissionConfig{
			Virtual: true, Epoch: 8, High: 0.15, Low: 0.05, Hysteresis: 2,
		},
	}
}

// TestAdmissionDeterministicAcrossExecutors is the admission determinism
// property: with virtual deadlines and the virtual pressure signal, the
// shed/readmit event history is a pure function of (configs, seeds) —
// identical across reruns of the concurrent fleet, and identical to a
// sequential emulation that feeds the controller each vehicle's Step-
// executor degrade sequence round-robin with pause-on-shed semantics. The
// DET-stalled vehicle must go first, before any healthy neighbor (the
// chaos-shed contract).
func TestAdmissionDeterministicAcrossExecutors(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const frames = 96

	runFleet := func(t *testing.T) ([]chaosRun, FleetReport) {
		t.Helper()
		f, err := NewFleet(admissionFleetConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		return collectFleet(t, f, frames)
	}
	runs1, rep1 := runFleet(t)
	runs2, rep2 := runFleet(t)

	if len(rep1.Admission) == 0 {
		t.Fatal("scenario produced no admission events; the property test is vacuous")
	}
	if !reflect.DeepEqual(rep1.Admission, rep2.Admission) {
		t.Fatalf("event history diverged across runs:\n run 1: %+v\n run 2: %+v",
			rep1.Admission, rep2.Admission)
	}
	if first := rep1.Admission[0]; !first.Shed || first.Vehicle != 1 {
		t.Fatalf("first event %+v, want the DET-stalled vehicle 1 shed before healthy neighbors", first)
	}
	sawReadmit := false
	for _, e := range rep1.Admission {
		if !e.Shed {
			sawReadmit = true
		}
	}
	if !sawReadmit {
		t.Error("scenario never readmitted; hysteresis path unexercised")
	}

	// Solo Step-executor reference per vehicle: the deterministic per-frame
	// miss sequence, and the bitwise baseline for delivered results.
	tmpl := admissionFleetConfig(t)
	solo := make([]chaosRun, tmpl.Vehicles)
	for v := 0; v < tmpl.Vehicles; v++ {
		cfg := admissionFleetConfig(t) // fresh injector per run
		vcfg := cfg.Config
		vcfg.Scene.Seed = cfg.Config.Scene.Seed + int64(v)
		if inj, ok := cfg.Injects[v]; ok {
			vcfg.Inject = inj
		}
		solo[v] = runChaosStep(t, vcfg, frames)
	}

	// Each vehicle's fleet-delivered sequence must be a bitwise prefix of
	// its solo sequence (shedding pauses a stream, it never reorders or
	// drops within it), full-length for never-shed vehicles.
	for v := 0; v < tmpl.Vehicles; v++ {
		for _, runs := range [][]chaosRun{runs1, runs2} {
			got := runs[v]
			if len(got.results) > frames {
				t.Fatalf("vehicle %d delivered %d frames, over the %d asked", v, len(got.results), frames)
			}
			prefix := chaosRun{
				results: solo[v].results[:len(got.results)],
				masks:   solo[v].masks[:len(got.masks)],
				errs:    solo[v].errs[:len(got.errs)],
			}
			requireIdenticalRuns(t, prefix, got)
		}
		if v != 1 && len(runs1[v].results) != frames {
			t.Errorf("healthy vehicle %d delivered %d frames, want all %d", v, len(runs1[v].results), frames)
		}
	}

	// Sequential emulation: a fresh controller fed each vehicle's solo miss
	// sequence one frame at a time, round-robin, skipping shed streams —
	// no goroutines, no runners. Same law, so same history.
	emu, err := NewFleetAdmission(*tmpl.Admission)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < tmpl.Vehicles; v++ {
		emu.Register(v)
	}
	pos := make([]int, tmpl.Vehicles)
	left := make([]bool, tmpl.Vehicles)
	for {
		progress := false
		for v := 0; v < tmpl.Vehicles; v++ {
			if left[v] {
				continue
			}
			if pos[v] >= frames {
				left[v] = true
				emu.Leave(v)
				continue
			}
			if !emu.Admitted(v) {
				continue
			}
			emu.Observe(v, 0, solo[v].masks[pos[v]].AnyMiss())
			pos[v]++
			progress = true
		}
		if !progress {
			break
		}
	}
	if got := emu.History(); !reflect.DeepEqual(got, rep1.Admission) {
		t.Errorf("Step-driven emulation history diverges from the concurrent fleet:\n emu:   %+v\n fleet: %+v",
			got, rep1.Admission)
	}

	// The report surfaces the controller's view per vehicle.
	for _, vs := range rep1.PerVehicle {
		if vs.Vehicle == 1 && vs.Sheds == 0 {
			t.Error("stalled vehicle's scorecard shows no sheds")
		}
		if vs.Vehicle != 1 && (vs.Sheds != 0 || vs.Shed) {
			t.Errorf("healthy vehicle %d scorecard marked shed (%d sheds)", vs.Vehicle, vs.Sheds)
		}
	}
}

// TestFleetPhaseLockDeepensBatches is the phase-locking acceptance bar: at
// 8 co-resident vehicles, aligning admission beats and arming the shared
// executor's gather hold must at least double the mean DET batch depth over
// the same fleet left unphased — and, batching being bitwise-transparent,
// deliver identical results.
func TestFleetPhaseLockDeepensBatches(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const vehicles, frames = 8, 10
	mkCfg := func() Config {
		cfg := fastNativeConfig(scene.Urban)
		cfg.Detect.RunDNN = true
		cfg.Detect.InputSize = 16
		cfg.SurveyFrames = 10
		return cfg
	}

	run := func(t *testing.T, phase bool) (float64, []chaosRun) {
		t.Helper()
		f, err := NewFleet(FleetConfig{
			Vehicles:  vehicles,
			Config:    mkCfg(),
			InFlight:  2,
			PhaseLock: phase,
			Executor:  dnn.NewBatchExecutor(vehicles),
		})
		if err != nil {
			t.Fatal(err)
		}
		runs, _ := collectFleet(t, f, frames)
		batches, calls := f.Executor().GatherStats()
		if batches == 0 {
			t.Fatalf("no batches drained (phase=%v)", phase)
		}
		return float64(calls) / float64(batches), runs
	}

	meanPlain, plainRuns := run(t, false)
	meanPhased, phasedRuns := run(t, true)
	t.Logf("mean DET batch depth: unphased %.2f, phase-locked %.2f", meanPlain, meanPhased)
	if meanPhased < 2*meanPlain {
		t.Errorf("phase-locked mean batch depth %.2f < 2× unphased %.2f", meanPhased, meanPlain)
	}
	for v := 0; v < vehicles; v++ {
		requireIdenticalRuns(t, plainRuns[v], phasedRuns[v])
	}
}
