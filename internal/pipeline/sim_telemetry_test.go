package pipeline

import (
	"math"
	"testing"

	"adsim/internal/accel"
	"adsim/internal/constraint"
	"adsim/internal/stats"
	"adsim/internal/telemetry"
)

// TestSimulateFeedsTelemetry runs the analytic simulator with a collector
// and a live constraint monitor attached, and checks (a) the collector's
// per-stage aggregates match the SimResult distributions exactly, and
// (b) the live monitor's verdicts agree with the offline constraint.Check
// on the same frames — the issue's acceptance criterion.
func TestSimulateFeedsTelemetry(t *testing.T) {
	m := accel.NewModel()
	for _, tc := range []struct {
		name     string
		assign   Assignment
		frames   int
		wantPerf bool
	}{
		// ASIC everywhere is fast and predictable at KITTI resolution.
		{"asic-pass", Uniform(accel.ASIC), constraint.MinTailSamples + 1, true},
		// CPU-only blows the 100 ms tail budget (paper Fig 6).
		{"cpu-fail", Uniform(accel.CPU), 4000, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			col := telemetry.NewCollector(tc.frames)
			mon := constraint.NewMonitor(constraint.MonitorConfig{Window: tc.frames})
			sim, err := Simulate(m, SimConfig{
				Assignment: tc.assign,
				Frames:     tc.frames,
				Seed:       7,
				Telemetry:  telemetry.Multi(col, mon),
			})
			if err != nil {
				t.Fatal(err)
			}

			// Collector aggregates must match the simulator's own
			// distributions bit-for-bit: same samples, same fold.
			for _, s := range []struct {
				stage string
				dist  *stats.Distribution
			}{
				{"DET", sim.Det}, {"TRA", sim.Tra}, {"LOC", sim.Loc},
				{"FUSION", sim.Fusion}, {"MOTPLAN", sim.MotPlan},
			} {
				if got := col.SpanCount(s.stage); got != int64(tc.frames) {
					t.Errorf("%s spans = %d, want %d", s.stage, got, tc.frames)
				}
				// The sink quantizes each span to nanosecond Durations, so
				// allow 1 ns of truncation per sample.
				want := s.dist.Mean() * float64(s.dist.N())
				if got := col.ExecSumMs(s.stage); math.Abs(got-want) > 1e-6*float64(tc.frames) {
					t.Errorf("%s exec sum = %g ms, want %g", s.stage, got, want)
				}
			}
			if col.Frames() != int64(tc.frames) {
				t.Errorf("collector frames = %d, want %d", col.Frames(), tc.frames)
			}

			// Live monitor vs offline Check on identical samples. The
			// monitor's window holds every frame, so tail and mean must
			// match the offline distribution's up to the sink's
			// nanosecond-Duration granularity; the verdict rule is shared
			// code, but assert agreement end to end anyway.
			live := mon.Snapshot()
			off := constraint.Check(constraint.Input{
				Latency:   sim.E2E,
				FrameRate: live.FPS,
			})
			if live.Performance.Passed != off.Verdicts[constraint.Performance].Passed {
				t.Errorf("performance: live %v, offline %v",
					live.Performance.Passed, off.Verdicts[constraint.Performance].Passed)
			}
			if live.Predictability.Passed != off.Verdicts[constraint.Predictability].Passed {
				t.Errorf("predictability: live %v, offline %v",
					live.Predictability.Passed, off.Verdicts[constraint.Predictability].Passed)
			}
			if want := sim.E2E.Quantile(constraint.TailQuantile); math.Abs(live.TailMs-want) > 1e-6*want {
				t.Errorf("live tail %g ms, offline %g ms", live.TailMs, want)
			}
			if want := sim.E2E.Mean(); math.Abs(live.MeanMs-want) > 1e-6*want {
				t.Errorf("live mean %g ms, offline %g ms", live.MeanMs, want)
			}
			if live.Performance.Passed != tc.wantPerf {
				t.Errorf("performance verdict = %v, want %v (%s)",
					live.Performance.Passed, tc.wantPerf, live.Performance.Detail)
			}

			// The synthetic timeline processes frames back to back, so the
			// measured rate must be ~1000/mean(e2e ms) fps.
			if want := 1000 / sim.E2E.Mean(); math.Abs(live.FPS-want)/want > 0.01 {
				t.Errorf("fps %g, want ~%g from back-to-back timeline", live.FPS, want)
			}
		})
	}
}

// TestSimulateNilTelemetry pins that a nil sink emits nothing and changes
// nothing: same seed, same distributions.
func TestSimulateNilTelemetry(t *testing.T) {
	m := accel.NewModel()
	base, err := Simulate(m, SimConfig{Assignment: Uniform(accel.GPU), Frames: 500, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector(0)
	instr, err := Simulate(m, SimConfig{
		Assignment: Uniform(accel.GPU), Frames: 500, Seed: 11, Telemetry: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.E2E.Quantile(0.99) != instr.E2E.Quantile(0.99) || base.E2E.Mean() != instr.E2E.Mean() {
		t.Error("telemetry emission perturbed the simulation")
	}
}
