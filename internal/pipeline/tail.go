package pipeline

import (
	"fmt"
	"sync"
	"time"

	"adsim/internal/constraint"
	"adsim/internal/telemetry"
)

// This file is the tail-latency controller (DESIGN.md §12): where the
// deadline layer (deadline.go) reacts to a blown budget after the fact, the
// TailScheduler works to keep budgets from blowing at all. It closes the
// loop from the delivered-frame latency tail back onto two knobs, in a
// committed escalation order:
//
//  1. the admission window — under congestion each extra in-flight frame
//     is queueing delay on every frame behind it, so the first response to
//     a rising P99.99 is to shrink the window (never below 1: the
//     sequential floor, which cannot deadlock the graph's joins because
//     stage edges stay buffered to the configured ceiling);
//  2. the DET resolution ladder — if the tail stays high at window 1 the
//     work itself doesn't fit, so the scheduler steps detect input
//     resolution down a committed ladder (the paper's Fig 13 knob, closed
//     loop), trading modeled accuracy for compute;
//
// and symmetrically back up on sustained recovery: resolution first (win
// back accuracy), window last (win back throughput).

// Tail-controller defaults.
const (
	// DefaultTailWindow is the rolling latency window (frames) the tail
	// signal is computed over. Small enough to react within a burst, large
	// enough that one outlier doesn't whipsaw the knobs.
	DefaultTailWindow = 256
	// DefaultTailPeriod is how many delivered frames pass between
	// controller decisions — the hysteresis that keeps one decision's
	// effect observable before the next.
	DefaultTailPeriod = 16
	// DefaultTailHighFrac and DefaultTailLowFrac are the congestion
	// watermarks as fractions of the target: above high·target the
	// controller backs off, below low·target for Recover consecutive
	// periods it steps back up, and between them it holds.
	DefaultTailHighFrac = 0.75
	DefaultTailLowFrac  = 0.45
	// DefaultTailRecover is how many consecutive calm periods precede a
	// step back up.
	DefaultTailRecover = 2
)

// TailConfig parameterizes a TailScheduler.
type TailConfig struct {
	// Target is the wall-latency deadline the controller steers the
	// rolling P99.99 toward; 0 selects DefaultFrameBudget.
	Target time.Duration
	// Window is the rolling window (delivered frames) of the tail signal;
	// 0 selects DefaultTailWindow.
	Window int
	// Period is the decision interval in delivered frames; 0 selects
	// DefaultTailPeriod.
	Period int
	// HighFrac / LowFrac are the congestion watermarks as fractions of
	// Target; 0 selects the defaults. Requires 0 < low < high.
	HighFrac, LowFrac float64
	// Recover is how many consecutive calm periods precede a step back up;
	// 0 selects DefaultTailRecover.
	Recover int
	// InitialWindow is the admission window at attach, clamped to the
	// executor's ceiling; 0 selects the ceiling itself. Hard-deadline
	// deployments start at 1 — a reactive controller cannot undo the
	// queueing a deep window stacks up during the FIRST stall burst, so
	// they admit conservatively and let sustained calm earn the ceiling.
	InitialWindow int
	// Ladder is the committed descending DET input-size ladder for
	// resolution scaling: Ladder[0] is the base (clean) rung. Entries must
	// be positive multiples of 16 in strictly descending order. nil or
	// single-entry disables resolution scaling.
	Ladder []int
	// Metrics receives the tail/* counters (shrink, grow, scale_down,
	// scale_up) and gauges (window, input_size). nil keeps them on a
	// private registry.
	Metrics *telemetry.Registry
}

// tailMetrics are the pre-resolved telemetry handles the controller writes.
type tailMetrics struct {
	shrink, grow       *telemetry.Counter
	scaleDown, scaleUp *telemetry.Counter
	window, inputSize  *telemetry.Gauge
}

// TailScheduler is the closed-loop tail-latency controller. One scheduler
// serves one executor: hand it to a Runner through RunnerOptions.Tail
// (adaptive admission window + ladder) or to a sequential pipeline through
// Pipeline.AttachTail (ladder only; the window is pinned at 1). The
// rolling P99.99 signal is a constraint.Monitor fed every delivered
// frame's wall latency, so the controller and the live constraint verdict
// read the exact same tail.
//
// All methods are safe for concurrent use.
type TailScheduler struct {
	targetMs float64
	period   int
	high     float64
	low      float64
	recover  int
	initial  int
	ladder   []int

	mon *constraint.Monitor
	met tailMetrics

	mu       sync.Mutex
	cond     *sync.Cond
	attached bool
	closed   bool
	ceiling  int // admission-window ceiling (RunnerOptions.InFlight)
	limit    int // current admission window, in [1, ceiling]
	minLimit int // smallest window the controller reached (observability)
	inflight int // admitted but undelivered frames
	rung     int // current ladder index; maxRung tracks the deepest visited
	maxRung  int
	since    int // delivered frames since the last decision
	calm     int // consecutive calm periods
}

// NewTailScheduler validates the configuration and builds a controller.
func NewTailScheduler(cfg TailConfig) (*TailScheduler, error) {
	target := cfg.Target
	if target == 0 {
		target = DefaultFrameBudget
	}
	if target < 0 {
		return nil, fmt.Errorf("pipeline: tail target %v must be positive", target)
	}
	window := cfg.Window
	if window == 0 {
		window = DefaultTailWindow
	}
	if window < 1 {
		return nil, fmt.Errorf("pipeline: tail window %d must be positive", window)
	}
	period := cfg.Period
	if period == 0 {
		period = DefaultTailPeriod
	}
	if period < 1 {
		return nil, fmt.Errorf("pipeline: tail period %d must be positive", period)
	}
	high, low := cfg.HighFrac, cfg.LowFrac
	if high == 0 {
		high = DefaultTailHighFrac
	}
	if low == 0 {
		low = DefaultTailLowFrac
	}
	if low <= 0 || low >= high {
		return nil, fmt.Errorf("pipeline: tail watermarks low=%v high=%v need 0 < low < high", low, high)
	}
	recover := cfg.Recover
	if recover == 0 {
		recover = DefaultTailRecover
	}
	if recover < 1 {
		return nil, fmt.Errorf("pipeline: tail recover %d must be positive", recover)
	}
	if cfg.InitialWindow < 0 {
		return nil, fmt.Errorf("pipeline: tail initial window %d must be non-negative", cfg.InitialWindow)
	}
	for i, size := range cfg.Ladder {
		if size <= 0 || size%16 != 0 {
			return nil, fmt.Errorf("pipeline: ladder rung %d (%d) must be a positive multiple of 16", i, size)
		}
		if i > 0 && size >= cfg.Ladder[i-1] {
			return nil, fmt.Errorf("pipeline: ladder must be strictly descending, rung %d (%d) >= rung %d (%d)",
				i, size, i-1, cfg.Ladder[i-1])
		}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry(0)
	}
	t := &TailScheduler{
		targetMs: float64(target) / 1e6,
		period:   period,
		high:     high,
		low:      low,
		recover:  recover,
		initial:  cfg.InitialWindow,
		ladder:   append([]int(nil), cfg.Ladder...),
		mon:      constraint.NewMonitor(constraint.MonitorConfig{Window: window}),
		met: tailMetrics{
			shrink:    reg.Counter("tail/shrink"),
			grow:      reg.Counter("tail/grow"),
			scaleDown: reg.Counter("tail/scale_down"),
			scaleUp:   reg.Counter("tail/scale_up"),
			window:    reg.Gauge("tail/window"),
			inputSize: reg.Gauge("tail/input_size"),
		},
	}
	t.cond = sync.NewCond(&t.mu)
	return t, nil
}

// Monitor exposes the controller's rolling-tail monitor: the same
// constraint.Monitor semantics (live Performance/Predictability verdicts)
// over exactly the frames the controller has seen.
func (t *TailScheduler) Monitor() *constraint.Monitor { return t.mon }

// WindowLimit reports the current admission window.
func (t *TailScheduler) WindowLimit() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.limit
}

// MinWindowLimit reports the smallest admission window the controller
// reached — how hard it had to back off over the run.
func (t *TailScheduler) MinWindowLimit() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.minLimit
}

// InputSize reports the current resolution-ladder rung (0 when no ladder
// is configured).
func (t *TailScheduler) InputSize() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sizeLocked()
}

// MaxRungDepth reports the deepest ladder rung the controller visited
// (0 = never left the base resolution).
func (t *TailScheduler) MaxRungDepth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.maxRung
}

func (t *TailScheduler) sizeLocked() int {
	if len(t.ladder) == 0 {
		return 0
	}
	return t.ladder[t.rung]
}

// attach binds the scheduler to an executor with the given admission
// ceiling. A scheduler serves exactly one executor for its lifetime — its
// monitor window and knob state are that run's trajectory.
func (t *TailScheduler) attach(ceiling int) error {
	if ceiling < 1 {
		return fmt.Errorf("pipeline: tail ceiling %d must be positive", ceiling)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.attached {
		return fmt.Errorf("pipeline: tail scheduler already attached to an executor")
	}
	t.attached = true
	t.ceiling = ceiling
	t.limit = ceiling
	if t.initial > 0 && t.initial < ceiling {
		t.limit = t.initial
	}
	t.minLimit = t.limit
	t.met.window.Set(float64(t.limit))
	t.met.inputSize.Set(float64(t.sizeLocked()))
	return nil
}

// admit blocks until an admission slot is free (in-flight < current
// window) and claims it, returning the DET input size committed for the
// admitted frame — rung transitions are decided here, under the same lock,
// by the single admitting goroutine, so frames observe resolution changes
// strictly in admission order. Returns ok=false after interrupt.
func (t *TailScheduler) admit() (size int, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for !t.closed && t.inflight >= t.limit {
		t.cond.Wait()
	}
	if t.closed {
		return 0, false
	}
	t.inflight++
	return t.sizeLocked(), true
}

// frameDone folds one delivered frame's wall latency into the tail signal,
// frees its admission slot, and every period frames runs the controller.
func (t *TailScheduler) frameDone(wallMs float64) {
	t.mon.Observe(wallMs, time.Now())
	t.mu.Lock()
	if t.inflight > 0 {
		t.inflight--
	}
	t.since++
	if t.since >= t.period {
		t.since = 0
		t.decideLocked()
	}
	t.mu.Unlock()
	t.cond.Signal()
}

// interrupt permanently unblocks admission (the owning executor stopped).
func (t *TailScheduler) interrupt() {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	t.cond.Broadcast()
}

// decideLocked is the controller law, run every period under t.mu. The
// escalation order is fixed: congestion shrinks the window to 1 before the
// ladder gives up any resolution; recovery climbs the ladder back to base
// before the window regrows. One step per period, so every move's effect
// is measured before the next.
func (t *TailScheduler) decideLocked() {
	tail := t.mon.Snapshot().TailMs
	switch {
	case tail > t.high*t.targetMs:
		t.calm = 0
		switch {
		case t.limit > 1:
			t.limit--
			if t.limit < t.minLimit {
				t.minLimit = t.limit
			}
			t.met.shrink.Inc()
		case t.rung+1 < len(t.ladder):
			t.rung++
			if t.rung > t.maxRung {
				t.maxRung = t.rung
			}
			t.met.scaleDown.Inc()
		}
	case tail < t.low*t.targetMs:
		t.calm++
		if t.calm >= t.recover {
			t.calm = 0
			switch {
			case t.rung > 0:
				t.rung--
				t.met.scaleUp.Inc()
			case t.limit < t.ceiling:
				t.limit++
				t.met.grow.Inc()
			}
		}
	default:
		// Between the watermarks: hold, and restart the calm streak.
		t.calm = 0
	}
	t.met.window.Set(float64(t.limit))
	t.met.inputSize.Set(float64(t.sizeLocked()))
}
