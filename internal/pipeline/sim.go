package pipeline

import (
	"fmt"
	"time"

	"adsim/internal/accel"
	"adsim/internal/stats"
	"adsim/internal/telemetry"
)

// Assignment maps each computational bottleneck to a platform — one
// configuration on the x-axis of the paper's Figures 11 and 12.
type Assignment struct {
	Det, Tra, Loc accel.Platform
}

// Uniform returns the assignment running every engine on p.
func Uniform(p accel.Platform) Assignment { return Assignment{Det: p, Tra: p, Loc: p} }

func (a Assignment) String() string {
	return fmt.Sprintf("DET=%v TRA=%v LOC=%v", a.Det, a.Tra, a.Loc)
}

// Short returns a compact label like "GPU/ASIC/ASIC" (DET/TRA/LOC order).
func (a Assignment) Short() string {
	return fmt.Sprintf("%v/%v/%v", a.Det, a.Tra, a.Loc)
}

// ComputePowerW returns the per-camera computing power of the assignment:
// the sum of the three engines' platform powers (Fig 10c).
func (a Assignment) ComputePowerW(m *accel.Model) float64 {
	return m.Power(a.Det, accel.DET) + m.Power(a.Tra, accel.TRA) + m.Power(a.Loc, accel.LOC)
}

// AllAssignments enumerates every platform assignment (4³ = 64).
func AllAssignments() []Assignment {
	var out []Assignment
	for _, d := range accel.Platforms() {
		for _, t := range accel.Platforms() {
			for _, l := range accel.Platforms() {
				out = append(out, Assignment{Det: d, Tra: t, Loc: l})
			}
		}
	}
	return out
}

// SimConfig parameterizes a simulated run.
type SimConfig struct {
	Assignment Assignment
	Res        accel.Resolution
	Frames     int
	Seed       int64
	// IndependentNoise disables the shared per-platform interference draw
	// so each engine's execution noise is independent. Used by the
	// noise-correlation ablation; the default (false) matches the paper's
	// tail composition.
	IndependentNoise bool
	// Telemetry receives one span per modeled stage per frame (Exec set to
	// the sampled latency; the analytic model has no queueing, so Queue is
	// zero) and one FrameDone per frame on a synthetic back-to-back
	// timeline: frame i's timestamp is the cumulative E2E latency of frames
	// 0..i, so a live constraint.Monitor measures the assignment's
	// latency-bound throughput. nil disables emission.
	Telemetry telemetry.Sink
}

// SimResult holds the latency distributions of a simulated run (all in ms).
type SimResult struct {
	Det, Tra, Loc   *stats.Distribution
	Fusion, MotPlan *stats.Distribution
	E2E             *stats.Distribution
	Assignment      Assignment
	Res             accel.Resolution
}

// Simulate runs the latency composition for cfg.Frames frames: per-frame
// samples are drawn from the platform models and combined by the pipeline's
// dependency law E2E = max(LOC, DET+TRA) + FUSION + MOTPLAN.
func Simulate(m *accel.Model, cfg SimConfig) (SimResult, error) {
	if cfg.Frames <= 0 {
		return SimResult{}, fmt.Errorf("pipeline: Frames %d must be positive", cfg.Frames)
	}
	if cfg.Res.Pixels() <= 0 {
		cfg.Res = accel.ResKITTI
	}
	rng := stats.NewRNG(cfg.Seed)
	sink := cfg.Telemetry
	if sink == nil {
		sink = telemetry.Nop{}
	}
	clock := time.Unix(0, 0)
	res := SimResult{
		Det:        stats.NewDistribution(cfg.Frames),
		Tra:        stats.NewDistribution(cfg.Frames),
		Loc:        stats.NewDistribution(cfg.Frames),
		Fusion:     stats.NewDistribution(cfg.Frames),
		MotPlan:    stats.NewDistribution(cfg.Frames),
		E2E:        stats.NewDistribution(cfg.Frames),
		Assignment: cfg.Assignment,
		Res:        cfg.Res,
	}
	for i := 0; i < cfg.Frames; i++ {
		// One execution-noise draw per platform per frame: engines
		// co-located on a platform see common interference, so their
		// latency excursions correlate (see accel.SampleShared).
		var z [accel.NumPlatforms]float64
		for p := range z {
			z[p] = rng.Normal(0, 1)
		}
		zOf := func(p accel.Platform) float64 {
			if cfg.IndependentNoise {
				return rng.Normal(0, 1)
			}
			return z[p]
		}
		det := m.SampleShared(cfg.Assignment.Det, accel.DET, cfg.Res, zOf(cfg.Assignment.Det), rng)
		tra := m.SampleShared(cfg.Assignment.Tra, accel.TRA, cfg.Res, zOf(cfg.Assignment.Tra), rng)
		loc := m.SampleShared(cfg.Assignment.Loc, accel.LOC, cfg.Res, zOf(cfg.Assignment.Loc), rng)
		fuse := m.SampleFusion(rng)
		mot := m.SampleMotPlan(rng)

		critical := det + tra
		if loc > critical {
			critical = loc
		}
		e2e := critical + fuse + mot
		res.Det.Add(det)
		res.Tra.Add(tra)
		res.Loc.Add(loc)
		res.Fusion.Add(fuse)
		res.MotPlan.Add(mot)
		res.E2E.Add(e2e)

		if _, nop := sink.(telemetry.Nop); !nop {
			msDur := func(ms float64) time.Duration { return time.Duration(ms * float64(time.Millisecond)) }
			for _, s := range [...]struct {
				stage string
				ms    float64
			}{
				{StageDet.String(), det}, {StageTra.String(), tra}, {StageLoc.String(), loc},
				{StageFusion.String(), fuse}, {StageMotplan.String(), mot},
			} {
				sink.Span(telemetry.Span{Stage: s.stage, Frame: i, Exec: msDur(s.ms)})
			}
			clock = clock.Add(msDur(e2e))
			sink.FrameDone(telemetry.FrameEnd{Frame: i, Wall: msDur(e2e), At: clock})
		}
	}
	return res, nil
}
