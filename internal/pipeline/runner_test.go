package pipeline

import (
	"reflect"
	"testing"
	"time"

	"adsim/internal/scene"
	"adsim/internal/testutil"
)

// stripSchedule zeroes the fields that legitimately differ between
// sequential and pipelined execution: wall-clock timings. Everything else —
// detections, tracks, pose, fused frame, plan, guidance, command — must be
// bitwise-identical.
func stripSchedule(res FrameResult) FrameResult {
	res.Timing = StageTiming{}
	return res
}

// TestRunnerDeterminismMatchesSequential is the determinism guard of the
// concurrency model: a Runner with ≥4 frames in flight must deliver results
// in frame order that are bitwise-identical (modulo timing) to a sequential
// Step loop on the same seed. Run under -race this also exercises every
// cross-frame stage handoff.
func TestRunnerDeterminismMatchesSequential(t *testing.T) {
	const frames = 10
	cfg := fastNativeConfig(scene.Urban)
	// Enable the native DNNs so the race detector also covers the parallel
	// conv/FC kernels and the shared tracker tower under pipelining.
	cfg.Detect.RunDNN = true
	cfg.Track.RunDNN = true

	seq, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]FrameResult, 0, frames)
	for i := 0; i < frames; i++ {
		res, err := seq.Step()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, stripSchedule(res))
	}

	pipe, err := NewNative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(pipe, RunnerOptions{InFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]FrameResult, 0, frames)
	for res := range r.Run(frames) {
		if res.Err != nil {
			t.Fatalf("frame %d: %v", res.Frame.Index, res.Err)
		}
		if res.Wall <= 0 {
			t.Fatalf("frame %d: missing wall latency", res.Frame.Index)
		}
		got = append(got, stripSchedule(res.FrameResult))
	}

	if len(got) != frames {
		t.Fatalf("runner delivered %d frames, want %d", len(got), frames)
	}
	for i := range got {
		if got[i].Frame.Index != i {
			t.Fatalf("result %d carries frame index %d: out of order", i, got[i].Frame.Index)
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("frame %d: pipelined result differs from sequential Step", i)
		}
	}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := NewRunner(nil, RunnerOptions{}); err == nil {
		t.Error("nil pipeline accepted")
	}
	p, err := NewNative(fastNativeConfig(scene.Highway))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(p, RunnerOptions{InFlight: -1}); err == nil {
		t.Error("negative InFlight accepted")
	}
	r, err := NewRunner(p, RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.InFlight() != DefaultInFlight {
		t.Errorf("InFlight = %d, want default %d", r.InFlight(), DefaultInFlight)
	}
}

// TestRunnerGracefulStop checks the drain contract: after Stop, every
// already-admitted frame is still delivered (in order) and the result
// channel closes without deadlock.
func TestRunnerGracefulStop(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	p, err := NewNative(fastNativeConfig(scene.Highway))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, RunnerOptions{InFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	ch := r.Run(0) // unbounded: only Stop ends the run
	next := 0
	for res := range ch {
		if res.Frame.Index != next {
			t.Fatalf("frame %d delivered, want %d", res.Frame.Index, next)
		}
		next++
		if next == 5 {
			r.Stop()
			r.Stop() // idempotent
		}
	}
	if next < 5 {
		t.Fatalf("only %d frames delivered before close", next)
	}
	// The window bounds the post-Stop drain to the frames already admitted.
	if next > 5+r.InFlight() {
		t.Errorf("%d frames delivered after Stop at 5; window is %d", next-5, r.InFlight())
	}
}

// TestRunnerRunIdempotent checks that a second Run returns the same channel
// instead of spawning a second stage graph over the shared engines.
func TestRunnerRunIdempotent(t *testing.T) {
	p, err := NewNative(fastNativeConfig(scene.Highway))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, RunnerOptions{InFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := r.Run(3)
	if b := r.Run(99); a != b {
		t.Error("second Run returned a different channel")
	}
	deadline := time.After(30 * time.Second)
	delivered := 0
	for {
		select {
		case _, ok := <-a:
			if !ok {
				if delivered != 3 {
					t.Fatalf("delivered %d frames, want 3", delivered)
				}
				return
			}
			delivered++
		case <-deadline:
			t.Fatal("runner did not finish")
		}
	}
}
