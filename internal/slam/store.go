package slam

import "adsim/internal/scene"

// MapStore is the prior-map database interface the LOC engine reads and
// extends. It abstracts where the map lives: PriorMap keeps it monolithic
// in memory; ShardStore pages fixed-pitch longitudinal tiles from disk
// through a byte-budgeted LRU cache — the paper's storage constraint
// (~41 TB of prior maps for the US road network) means a production map can
// never be fully resident, so every engine read has to work through an
// interface that can page.
//
// Implementations must be safe for concurrent use (so several LOC replicas
// can share one store) and must return snapshot keyframes: a retained
// result is never shifted or overwritten by a later Add.
type MapStore interface {
	// Len reports the number of keyframes in the store.
	Len() int
	// Add inserts a keyframe observed at pose (the runtime map-update
	// path) and returns its assigned ID.
	Add(pose scene.Pose, kps []Keypoint, descs []Descriptor) int
	// Candidates returns the keyframes within ±window meters of z, in
	// ascending-Z order. The result is a snapshot the caller owns.
	Candidates(z, window float64) []Keyframe
	// NearestZ returns the keyframe closest to z, and false when empty.
	NearestZ(z float64) (Keyframe, bool)
	// Scan streams every keyframe in ascending-Z order to fn, stopping
	// early when fn returns false. This is the relocalization path: a
	// sharded store streams tiles through its cache instead of
	// materializing the whole map.
	Scan(fn func(Keyframe) bool)
	// StorageBytes estimates the in-memory footprint of the store's
	// currently resident keyframes.
	StorageBytes() int64
}

// Prefetcher is implemented by stores that can warm their cache from a
// motion-model hint. The engine calls Advise after every tracked frame so
// the tile ahead in the travel direction is (usually) already resident when
// the vehicle crosses into it.
type Prefetcher interface {
	Advise(z, velocity float64)
}

var (
	_ MapStore   = (*PriorMap)(nil)
	_ MapStore   = (*ShardStore)(nil)
	_ Prefetcher = (*ShardStore)(nil)
)
