package slam

import (
	"bytes"
	"testing"

	"adsim/internal/scene"
)

// FuzzReadPriorMap throws arbitrary bytes at the ADM1 decoder: it must
// return an error or a valid map, never panic or over-allocate, and any
// map it accepts must re-serialize to exactly SerializedBytes bytes and
// round-trip. `make fuzz-smoke` runs this for 10s as part of `make check`.
func FuzzReadPriorMap(f *testing.F) {
	m := NewPriorMap()
	m.Add(scene.Pose{X: 1.5, Z: 2, Theta: 0.1},
		[]Keypoint{{X: 3, Y: 4, Level: 1, Angle: 0.5}}, make([]Descriptor, 1))
	m.Add(scene.Pose{Z: 7}, make([]Keypoint, 2), make([]Descriptor, 2))
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // truncated mid-feature
	f.Add(valid[:9])            // truncated mid-keyframe
	f.Add([]byte("1MDA"))       // magic only (little-endian "ADM1")
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadPriorMap(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got == nil {
			t.Fatal("nil map without error")
		}
		var out bytes.Buffer
		n, err := got.WriteTo(&out)
		if err != nil {
			t.Fatalf("accepted map failed to re-serialize: %v", err)
		}
		if n != got.SerializedBytes() {
			t.Fatalf("WriteTo wrote %d bytes but SerializedBytes predicts %d", n, got.SerializedBytes())
		}
		back, err := ReadPriorMap(&out)
		if err != nil {
			t.Fatalf("re-reading own output failed: %v", err)
		}
		if back.Len() != got.Len() {
			t.Fatalf("round trip changed keyframe count: %d -> %d", got.Len(), back.Len())
		}
	})
}
