package slam

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"adsim/internal/scene"
)

// sameKeyframeSeq compares two read results by identity-pinning fields; IDs
// are unique across base and overlays, so ID+Pose equality per position is
// equality of the sequences.
func sameKeyframeSeq(got, want []Keyframe) error {
	if len(got) != len(want) {
		return fmt.Errorf("got %d keyframes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Pose != want[i].Pose {
			return fmt.Errorf("keyframe %d: got ID=%d %+v, want ID=%d %+v",
				i, got[i].ID, got[i].Pose, want[i].ID, want[i].Pose)
		}
	}
	return nil
}

// The fleet contract: K goroutine "vehicles" hammer one tightly-budgeted
// shared ShardStore through per-vehicle views — concurrent Candidates,
// NearestZ, Scan, Advise and private runtime Adds — and every read stays
// bit-identical to the same vehicle's private monolithic map. Vehicles must
// never observe each other's runtime keyframes, and the shared cache
// thrashing underneath must never leak into results. Run under -race by
// `make race`.
func TestFleetVehicleViewsBitIdentical(t *testing.T) {
	mono, _ := buildWorld(t, 50)
	var buf bytes.Buffer
	if _, err := mono.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	store := openTestStore(t, mono, 8, ShardStoreOptions{
		CacheBudget: mono.StorageBytes() / 8, // tight: constant eviction
		Prefetch:    true,
	})

	const vehicles = 6
	var wg sync.WaitGroup
	errCh := make(chan error, vehicles)
	for v := 0; v < vehicles; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				errCh <- fmt.Errorf("vehicle %d: %s", v, fmt.Sprintf(format, args...))
			}
			// Private reference: the same survey as a monolithic map, which
			// receives this vehicle's runtime Adds and nothing else.
			ref, err := ReadPriorMap(bytes.NewReader(raw))
			if err != nil {
				fail("decoding reference: %v", err)
				return
			}
			view := NewVehicleStore(v, store)
			rng := rand.New(rand.NewSource(int64(100 + v)))
			for iter := 0; iter < 40; iter++ {
				z := rng.Float64()*80 - 10
				if iter%4 == v%4 {
					pose := scene.Pose{X: float64(v), Z: z}
					kps := []Keypoint{{X: v, Y: iter, Score: 7}}
					descs := []Descriptor{{uint64(v), uint64(iter), 0, 1}}
					if got, want := view.Add(pose, kps, descs), ref.Add(pose, kps, descs); got != want {
						fail("iter %d: Add assigned ID %d, solo map assigned %d", iter, got, want)
						return
					}
				}
				window := 4 + rng.Float64()*12
				if err := sameKeyframeSeq(view.Candidates(z, window), ref.Candidates(z, window)); err != nil {
					fail("iter %d: Candidates(%v, %v): %v", iter, z, window, err)
					return
				}
				gk, gok := view.NearestZ(z)
				wk, wok := ref.NearestZ(z)
				if gok != wok || gk.ID != wk.ID || gk.Pose != wk.Pose {
					fail("iter %d: NearestZ(%v) = %d/%v, want %d/%v", iter, z, gk.ID, gok, wk.ID, wok)
					return
				}
				view.Advise(z, rng.Float64()*2-1)
				if iter%13 == 0 {
					var got, want []Keyframe
					view.Scan(func(kf Keyframe) bool { got = append(got, kf); return true })
					ref.Scan(func(kf Keyframe) bool { want = append(want, kf); return true })
					if err := sameKeyframeSeq(got, want); err != nil {
						fail("iter %d: Scan: %v", iter, err)
						return
					}
				}
			}
			if view.Len() != ref.Len() {
				fail("final Len %d, want %d", view.Len(), ref.Len())
			}
		}(v)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if err := store.Err(); err != nil {
		t.Fatal(err)
	}
	if stats := store.CacheStats(); stats.Evictions == 0 {
		t.Errorf("no evictions under an eighth-size budget: %+v", stats)
	}
}

// Protected tiles (each advised vehicle's current and next) are skipped by
// eviction while unprotected candidates remain, and the budget stays a hard
// bound when everything is protected.
func TestAdviseVehicleProtectsTiles(t *testing.T) {
	mono, _ := buildWorld(t, 50)
	store := openTestStore(t, mono, 8, ShardStoreOptions{CacheBudget: mono.StorageBytes()})
	idx := store.Index()
	if len(idx.Tiles) < 3 {
		t.Skipf("survey produced only %d tiles", len(idx.Tiles))
	}

	// Make every tile resident (the budget is map-sized, nothing evicts),
	// then protect vehicle 0's window at the far Z end.
	for _, tile := range idx.Tiles {
		store.Candidates((tile.ZMin+tile.ZMax)/2, 0.5)
	}
	last := idx.Tiles[len(idx.Tiles)-1]
	store.AdviseVehicle(0, (last.ZMin+last.ZMax)/2, -1)

	store.mu.Lock()
	protPos := append([]int(nil), store.vehicleTiles[0]...)
	if len(protPos) == 0 {
		store.mu.Unlock()
		t.Fatal("AdviseVehicle protected no tiles")
	}
	// Park the protected tiles at the LRU tail: the victim picker must
	// skip them while an unprotected candidate exists.
	for _, pos := range protPos {
		if rt := store.resident[pos]; rt != nil {
			store.lru.MoveToBack(rt.elem)
		}
	}
	if victim := store.evictionVictimLocked(); store.protRef[victim.pos] > 0 {
		t.Errorf("eviction picked protected tile %d over unprotected candidates", victim.pos)
	}
	// With every resident tile protected, the budget stays a hard bound:
	// the picker falls back to the raw LRU tail.
	for pos := range store.resident {
		store.protRef[pos]++
	}
	if fallback := store.evictionVictimLocked(); fallback.elem != store.lru.Back() {
		t.Error("all-protected fallback did not pick the raw LRU tail")
	}
	for pos := range store.resident {
		if store.protRef[pos]--; store.protRef[pos] <= 0 {
			delete(store.protRef, pos)
		}
	}
	store.mu.Unlock()

	// Re-advising the vehicle elsewhere must release the old protections.
	first := idx.Tiles[0]
	store.AdviseVehicle(0, (first.ZMin+first.ZMax)/2, 1)
	store.mu.Lock()
	for _, pos := range protPos {
		stillHeld := false
		for _, p := range store.vehicleTiles[0] {
			if p == pos {
				stillHeld = true
			}
		}
		if !stillHeld && store.protRef[pos] > 0 {
			t.Errorf("tile %d still refcounted after the vehicle moved away", pos)
		}
	}
	store.mu.Unlock()
}

// TestAdviseVehicleReleaseTeardown covers the churn half of the protection
// lifecycle: removing a vehicle (VehicleStore.Release → ReleaseVehicle)
// must drop every protection it held — shared protections decrement, not
// vanish — and be an idempotent no-op afterwards.
func TestAdviseVehicleReleaseTeardown(t *testing.T) {
	mono, _ := buildWorld(t, 50)
	store := openTestStore(t, mono, 8, ShardStoreOptions{CacheBudget: mono.StorageBytes()})
	idx := store.Index()
	if len(idx.Tiles) < 2 {
		t.Skipf("survey produced only %d tiles", len(idx.Tiles))
	}
	mid := idx.Tiles[len(idx.Tiles)/2]
	z := (mid.ZMin + mid.ZMax) / 2

	// Two vehicle views sharing one window: the refcount must survive one
	// vehicle's teardown and clear on the second's.
	v0 := NewVehicleStore(0, store)
	v1 := NewVehicleStore(1, store)
	v0.Advise(z, 1)
	v1.Advise(z, 1)

	store.mu.Lock()
	shared := append([]int(nil), store.vehicleTiles[0]...)
	if len(shared) == 0 {
		store.mu.Unlock()
		t.Fatal("AdviseVehicle protected no tiles")
	}
	for _, pos := range shared {
		if store.protRef[pos] < 2 {
			t.Errorf("tile %d refcount %d, want >= 2 with two advised vehicles", pos, store.protRef[pos])
		}
	}
	store.mu.Unlock()

	v0.Release()
	store.mu.Lock()
	if _, ok := store.vehicleTiles[0]; ok {
		t.Error("vehicle 0 tiles still tracked after Release")
	}
	for _, pos := range shared {
		if store.protRef[pos] != 1 {
			t.Errorf("tile %d refcount %d after one release, want 1", pos, store.protRef[pos])
		}
	}
	store.mu.Unlock()

	v1.Release()
	v1.Release() // idempotent
	store.mu.Lock()
	for _, pos := range shared {
		if store.protRef[pos] != 0 {
			t.Errorf("tile %d refcount %d after full teardown, want 0", pos, store.protRef[pos])
		}
	}
	if len(store.vehicleTiles) != 0 {
		t.Errorf("%d vehicle entries remain after full teardown", len(store.vehicleTiles))
	}
	store.mu.Unlock()

	// A PriorMap-backed view has no protections to drop; Release must
	// still be safe.
	NewVehicleStore(3, mono).Release()
}
