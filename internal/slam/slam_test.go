package slam

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adsim/internal/img"
	"adsim/internal/scene"
)

// checkerFrame builds a frame with strong isolated corners for FE tests:
// bright blocks of varying size, shade and jitter scattered on a dark
// background. FAST responds to isolated L-corners (ideal checkerboard
// X-junctions do not produce the contiguous circle arc the segment test
// requires), and the per-block variation makes descriptors discriminative
// enough to survive the ratio test.
func checkerFrame(w, h, cell int) *img.Gray {
	f := img.NewGray(w, h)
	f.Fill(40)
	for y := cell; y < h-cell; y += cell {
		for x := cell; x < w-cell; x += cell {
			hsh := uint32(x*73856093) ^ uint32(y*19349663)
			hsh = (hsh ^ hsh>>13) * 0x5bd1e995
			if hsh%3 == 0 {
				continue // leave gaps so blocks stay isolated
			}
			size := 4 + int(hsh>>4)%5       // 4..8 px
			jx := int(hsh>>8) % (cell / 3)  // positional jitter
			jy := int(hsh>>16) % (cell / 3) //
			shade := uint8(150 + hsh%80)    // 150..229
			f.FillRect(img.RectWH(float64(x+jx), float64(y+jy), float64(size), float64(size)), shade)
		}
	}
	return f
}

func TestFASTFindsBlockCorners(t *testing.T) {
	// Exact-position frame: isolated 8x8 blocks at known anchors.
	f := img.NewGray(128, 128)
	f.Fill(40)
	anchors := [][2]int{{32, 32}, {64, 48}, {96, 80}, {48, 96}}
	for _, a := range anchors {
		f.FillRect(img.RectWH(float64(a[0]), float64(a[1]), 8, 8), 210)
	}
	kps := DetectFAST(f, DefaultFASTConfig())
	if len(kps) < len(anchors) {
		t.Fatalf("only %d keypoints for %d blocks", len(kps), len(anchors))
	}
	for _, kp := range kps {
		onBlock := false
		for _, a := range anchors {
			if kp.X >= a[0]-3 && kp.X <= a[0]+11 && kp.Y >= a[1]-3 && kp.Y <= a[1]+11 {
				onBlock = true
				break
			}
		}
		if !onBlock {
			t.Errorf("keypoint (%d,%d) not near any block", kp.X, kp.Y)
		}
	}
}

func TestFASTFlatImageNoCorners(t *testing.T) {
	f := img.NewGray(64, 64)
	f.Fill(100)
	if kps := DetectFAST(f, DefaultFASTConfig()); len(kps) != 0 {
		t.Errorf("flat image yielded %d keypoints", len(kps))
	}
}

func TestFASTRespectsMaxFeaturesAndBorder(t *testing.T) {
	f := checkerFrame(256, 256, 8)
	cfg := DefaultFASTConfig()
	cfg.MaxFeatures = 50
	kps := DetectFAST(f, cfg)
	if len(kps) > 50 {
		t.Errorf("MaxFeatures violated: %d", len(kps))
	}
	for _, kp := range kps {
		if kp.X < cfg.Border || kp.Y < cfg.Border ||
			kp.X >= 256-cfg.Border || kp.Y >= 256-cfg.Border {
			t.Fatalf("keypoint (%d,%d) violates border %d", kp.X, kp.Y, cfg.Border)
		}
	}
}

func TestFASTOrderedByScore(t *testing.T) {
	kps := DetectFAST(checkerFrame(128, 128, 16), DefaultFASTConfig())
	for i := 1; i < len(kps); i++ {
		if kps[i].Score > kps[i-1].Score {
			t.Fatal("keypoints not sorted by descending score")
		}
	}
}

func TestHasContigRun(t *testing.T) {
	cases := []struct {
		mask uint32
		n    int
		want bool
	}{
		{0, 9, false},
		{0x1FF, 9, true},           // bits 0..8
		{0x1FF, 10, false},         //
		{0xFF00 | 0x0001, 9, true}, // wraparound: 8..15 + 0
		{0b1010101010101010, 2, false},
		{0xFFFF, 16, true},
	}
	for _, c := range cases {
		if got := hasContigRun(c.mask, c.n); got != c.want {
			t.Errorf("hasContigRun(%#x,%d) = %v, want %v", c.mask, c.n, got, c.want)
		}
	}
}

func TestOrientationDirection(t *testing.T) {
	// Bright half on the right: centroid points along +x, angle ~0.
	f := img.NewGray(64, 64)
	for y := 0; y < 64; y++ {
		for x := 32; x < 64; x++ {
			f.Set(x, y, 200)
		}
	}
	a := orientation(f, 32, 32, 7)
	if math.Abs(a) > 0.2 {
		t.Errorf("right-bright angle = %v, want ~0", a)
	}
	// Bright on the bottom: angle ~ +pi/2 (y grows downward).
	f2 := img.NewGray(64, 64)
	for y := 32; y < 64; y++ {
		for x := 0; x < 64; x++ {
			f2.Set(x, y, 200)
		}
	}
	a2 := orientation(f2, 32, 32, 7)
	if math.Abs(a2-math.Pi/2) > 0.2 {
		t.Errorf("bottom-bright angle = %v, want ~pi/2", a2)
	}
}

func TestDescriptorHamming(t *testing.T) {
	var a, b Descriptor
	if a.Hamming(b) != 0 {
		t.Error("identical descriptors should have distance 0")
	}
	b[0] = 0xFF
	if a.Hamming(b) != 8 {
		t.Errorf("distance = %d, want 8", a.Hamming(b))
	}
	for i := range b {
		a[i] = ^b[i]
	}
	if a.Hamming(b) != 256 {
		t.Errorf("complement distance = %d, want 256", a.Hamming(b))
	}
}

// Property: Hamming distance is a metric (symmetry + triangle inequality).
func TestHammingMetricProperty(t *testing.T) {
	f := func(a, b, c Descriptor) bool {
		ab, ba := a.Hamming(b), b.Hamming(a)
		if ab != ba {
			return false
		}
		return a.Hamming(c) <= ab+b.Hamming(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDescriptorStability(t *testing.T) {
	f := checkerFrame(128, 128, 16)
	kps := DetectFAST(f, DefaultFASTConfig())
	if len(kps) == 0 {
		t.Fatal("no keypoints")
	}
	d1 := Compute(f, kps[0])
	d2 := Compute(f, kps[0])
	if d1 != d2 {
		t.Error("descriptor not deterministic")
	}
}

func TestDescriptorsDiscriminate(t *testing.T) {
	f := checkerFrame(128, 128, 16)
	kps := DetectFAST(f, DefaultFASTConfig())
	if len(kps) < 2 {
		t.Skip("need 2 keypoints")
	}
	// Same keypoint matches itself better than a shifted impostor patch.
	d0 := Compute(f, kps[0])
	imp := kps[0]
	imp.X += 5
	imp.Y += 3
	dImp := Compute(f, imp)
	if d0.Hamming(dImp) == 0 {
		t.Error("shifted patch produced identical descriptor; no discrimination")
	}
}

func TestMatchDescriptorsFindsTranslatedFeatures(t *testing.T) {
	// Same checkerboard shifted by (2,1): features should still match.
	a := checkerFrame(160, 120, 16)
	b := img.NewGray(160, 120)
	for y := 0; y < 120; y++ {
		for x := 0; x < 160; x++ {
			b.Set(x, y, a.At(x-2, y-1))
		}
	}
	cfg := DefaultFASTConfig()
	kpA := DetectFAST(a, cfg)
	kpB := DetectFAST(b, cfg)
	dA := ComputeAll(a, kpA)
	dB := ComputeAll(b, kpB)
	ms := MatchDescriptors(dA, dB, 48, 0.9)
	if len(ms) < len(kpA)/4 {
		t.Errorf("only %d matches from %d keypoints", len(ms), len(kpA))
	}
	// Matched pairs should be spatially consistent with the shift.
	consistent := 0
	for _, m := range ms {
		dx := kpB[m.TrainIdx].X - kpA[m.QueryIdx].X
		dy := kpB[m.TrainIdx].Y - kpA[m.QueryIdx].Y
		if dx >= 1 && dx <= 3 && dy >= 0 && dy <= 2 {
			consistent++
		}
	}
	if float64(consistent) < 0.5*float64(len(ms)) {
		t.Errorf("only %d/%d matches consistent with the shift", consistent, len(ms))
	}
}

func TestMatchDescriptorsEmptyTrain(t *testing.T) {
	if ms := MatchDescriptors([]Descriptor{{}}, nil, 48, 0.8); ms != nil {
		t.Error("empty train set should produce no matches")
	}
}

func TestPriorMapOrderingAndCandidates(t *testing.T) {
	m := NewPriorMap()
	for _, z := range []float64{50, 10, 30, 20, 40} {
		m.Add(scene.Pose{Z: z}, nil, nil)
	}
	if m.Len() != 5 {
		t.Fatalf("len = %d", m.Len())
	}
	all := m.All()
	for i := 1; i < len(all); i++ {
		if all[i].Pose.Z < all[i-1].Pose.Z {
			t.Fatal("keyframes not sorted by Z")
		}
	}
	c := m.Candidates(25, 7)
	if len(c) != 2 || c[0].Pose.Z != 20 || c[1].Pose.Z != 30 {
		t.Errorf("candidates(25,7) = %v", c)
	}
	if len(m.Candidates(-100, 5)) != 0 {
		t.Error("out-of-range candidates should be empty")
	}
}

func TestPriorMapNearestZ(t *testing.T) {
	m := NewPriorMap()
	if _, ok := m.NearestZ(0); ok {
		t.Error("empty map should report no nearest")
	}
	m.Add(scene.Pose{Z: 10}, nil, nil)
	m.Add(scene.Pose{Z: 20}, nil, nil)
	if kf, _ := m.NearestZ(13); kf.Pose.Z != 10 {
		t.Errorf("nearest(13) = %v, want 10", kf.Pose.Z)
	}
	if kf, _ := m.NearestZ(16); kf.Pose.Z != 20 {
		t.Errorf("nearest(16) = %v, want 20", kf.Pose.Z)
	}
}

func TestPriorMapStorageGrows(t *testing.T) {
	m := NewPriorMap()
	before := m.StorageBytes()
	m.Add(scene.Pose{}, make([]Keypoint, 100), make([]Descriptor, 100))
	if m.StorageBytes() <= before {
		t.Error("storage estimate did not grow")
	}
	if m.String() == "" {
		t.Error("empty String()")
	}
}

func TestEngineValidation(t *testing.T) {
	m := NewPriorMap()
	if _, err := NewEngine(DefaultConfig(), nil); err == nil {
		t.Error("nil map accepted")
	}
	bad := DefaultConfig()
	bad.KeyframeSpacing = 0
	if _, err := NewEngine(bad, m); err == nil {
		t.Error("zero spacing accepted")
	}
	bad2 := DefaultConfig()
	bad2.RelocWindow = 1 // < TrackWindow
	if _, err := NewEngine(bad2, m); err == nil {
		t.Error("reloc window narrower than track window accepted")
	}
	if _, err := NewEngine(DefaultConfig(), m); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

// surveyedWorld builds a scenario, surveys it into a prior map, and returns
// a replay generator with identical config.
func surveyedWorld(t *testing.T, frames int) (*Engine, *scene.Generator) {
	t.Helper()
	cfg := scene.DefaultConfig(scene.Urban)
	cfg.Width, cfg.Height = 512, 256
	gen, err := scene.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewPriorMap()
	eng, err := NewEngine(DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		f := gen.Step()
		eng.Survey(f.Image, f.EgoPose)
	}
	replay, err := scene.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, replay
}

func TestSurveyBuildsSpacedKeyframes(t *testing.T) {
	eng, _ := surveyedWorld(t, 40)
	m := eng.Map()
	if m.Len() < 5 {
		t.Fatalf("survey built only %d keyframes", m.Len())
	}
	all := m.All()
	for i := 1; i < len(all); i++ {
		if all[i].Pose.Z-all[i-1].Pose.Z < eng.cfg.KeyframeSpacing-1e-9 {
			t.Fatal("keyframes closer than spacing")
		}
	}
}

func TestLocalizeOnSurveyedRoute(t *testing.T) {
	eng, replay := surveyedWorld(t, 40)
	tracked := 0
	var worstErr float64
	for i := 0; i < 40; i++ {
		f := replay.Step()
		est := eng.Localize(f.Image)
		if est.Tracked {
			tracked++
			if e := math.Abs(est.Pose.Z - f.EgoPose.Z); e > worstErr {
				worstErr = e
			}
		}
	}
	if tracked < 30 {
		t.Fatalf("tracked only %d/40 frames on the surveyed route", tracked)
	}
	if worstErr > 2*eng.cfg.KeyframeSpacing {
		t.Errorf("worst position error %.2f m exceeds 2x keyframe spacing", worstErr)
	}
}

func TestColdStartRelocalizes(t *testing.T) {
	eng, replay := surveyedWorld(t, 20)
	f := replay.Step()
	est := eng.Localize(f.Image)
	if !est.Relocalized {
		t.Error("first frame should take the relocalization path")
	}
	if eng.Relocalizations() == 0 {
		t.Error("relocalization counter not incremented")
	}
}

func TestTimingBreakdownFEDominates(t *testing.T) {
	eng, replay := surveyedWorld(t, 20)
	f := replay.Step()
	_, tm := eng.LocalizeTimed(f.Image)
	if tm.FE <= 0 || tm.Other < 0 {
		t.Fatalf("bad timing %+v", tm)
	}
	if tm.Total() != tm.FE+tm.Other {
		t.Error("Total inconsistent")
	}
}

func TestLocalMappingExtendsMap(t *testing.T) {
	// Survey a short prefix, then drive beyond it: the engine should add
	// keyframes while it can still track (and eventually may lose track,
	// which is fine for this test).
	cfg := scene.DefaultConfig(scene.Urban)
	cfg.Width, cfg.Height = 512, 256
	gen, _ := scene.New(cfg)
	m := NewPriorMap()
	eng, _ := NewEngine(DefaultConfig(), m)
	for i := 0; i < 10; i++ {
		f := gen.Step()
		eng.Survey(f.Image, f.EgoPose)
	}
	sizeAfterSurvey := m.Len()

	replay, _ := scene.New(cfg)
	for i := 0; i < 30; i++ {
		f := replay.Step()
		eng.Localize(f.Image)
	}
	if m.Len() <= sizeAfterSurvey {
		t.Errorf("local mapping never extended the map (%d keyframes)", m.Len())
	}
	if eng.MapUpdates() == 0 {
		t.Error("map-update counter not incremented")
	}
}

func TestDeadReckoningWhenMapEmpty(t *testing.T) {
	m := NewPriorMap()
	eng, _ := NewEngine(DefaultConfig(), m)
	f := checkerFrame(256, 128, 16)
	est := eng.Localize(f)
	if est.Tracked {
		t.Error("tracked=true with an empty map")
	}
	if !est.Relocalized {
		t.Error("empty-map frame should have attempted relocalization")
	}
}

func BenchmarkExtractFeatures(b *testing.B) {
	f := checkerFrame(512, 256, 16)
	cfg := DefaultFASTConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractFeatures(f, cfg)
	}
}

func BenchmarkMatchDescriptors(b *testing.B) {
	f := checkerFrame(512, 256, 16)
	kps, descs := ExtractFeatures(f, DefaultFASTConfig())
	_ = kps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchDescriptors(descs, descs, 48, 0.85)
	}
}

// TestLoopRouteWrapHandled drives a periodic loop route: lap 1 is surveyed
// into the map, lap 2 revisits the same scenery with ever-growing odometry
// Z. The engine must recognize the revisit — via wide-search relocalization
// at the wrap and/or the loop-closing scan — and keep the pose accurate in
// the map frame for the whole second lap.
func TestLoopRouteWrapHandled(t *testing.T) {
	cfg := scene.DefaultConfig(scene.Urban)
	cfg.Width, cfg.Height = 512, 256
	cfg.LoopLength = 120 // multiple of 6 for exact dash periodicity
	cfg.NumSigns = 4
	gen, err := scene.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	m := NewPriorMap()
	ecfg := DefaultConfig()
	ecfg.LoopCloseEvery = 10
	ecfg.LoopCloseMinGap = 60
	eng, err := NewEngine(ecfg, m)
	if err != nil {
		t.Fatal(err)
	}

	framesPerLap := int(cfg.LoopLength / (cfg.EgoSpeed / cfg.FPS)) // ≈ 92
	// Lap 1: survey with the pose wrapped into the loop frame [0, L).
	for i := 0; i < framesPerLap; i++ {
		f := gen.Step()
		pose := f.EgoPose
		pose.Z = math.Mod(pose.Z, cfg.LoopLength)
		eng.Survey(f.Image, pose)
	}
	if m.Len() < 10 {
		t.Fatalf("lap-1 survey built only %d keyframes", m.Len())
	}

	// Lap 2: localize. The odometry Z grows past the map's extent; the
	// engine must re-anchor into the map frame and stay accurate.
	var worstErr float64
	trackedFrames := 0
	for i := 0; i < framesPerLap; i++ {
		f := gen.Step()
		est := eng.Localize(f.Image)
		if !est.Tracked {
			continue
		}
		trackedFrames++
		// Skip the first few frames while the wrap is being resolved.
		if i < 12 {
			continue
		}
		wrapped := math.Mod(f.EgoPose.Z, cfg.LoopLength)
		e := math.Abs(est.Pose.Z - wrapped)
		if alt := cfg.LoopLength - e; alt < e {
			e = alt // wrap-around distance
		}
		if e > worstErr {
			worstErr = e
		}
	}
	if trackedFrames < framesPerLap*3/4 {
		t.Fatalf("tracked only %d/%d lap-2 frames", trackedFrames, framesPerLap)
	}
	if worstErr > 6 {
		t.Errorf("worst lap-2 map-frame pose error %.1f m", worstErr)
	}
	if eng.Relocalizations()+eng.LoopClosures() == 0 {
		t.Error("the revisit was never explicitly recognized (no reloc, no closure)")
	}
}

// TestDetectLoopDirect exercises the loop-closure scan in isolation: with
// the engine believing it is far along the loop, a frame from the start of
// the loop must match its surveyed twin once the evidence threshold allows.
func TestDetectLoopDirect(t *testing.T) {
	cfg := scene.DefaultConfig(scene.Urban)
	cfg.Width, cfg.Height = 512, 256
	cfg.LoopLength = 120
	cfg.NumSigns = 4
	gen, _ := scene.New(cfg)
	ecfg := DefaultConfig()
	ecfg.LoopCloseMinGap = 60
	eng, _ := NewEngine(ecfg, NewPriorMap())
	framesPerLap := int(cfg.LoopLength / (cfg.EgoSpeed / cfg.FPS))
	var early scene.Frame
	for i := 0; i < framesPerLap; i++ {
		f := gen.Step()
		if i == 4 {
			early = f
		}
		pose := f.EgoPose
		pose.Z = math.Mod(pose.Z, cfg.LoopLength)
		eng.Survey(f.Image, pose)
	}
	kps, descs := ExtractFeatures(early.Image, ecfg.FAST)

	// Claimed pose far from the early frame's true position.
	claimed := scene.Pose{Z: 115}
	kf, ok := eng.detectLoop(kps, descs, claimed, 2*ecfg.MinMatches)
	if !ok {
		t.Fatal("loop scan failed to find the surveyed twin")
	}
	if math.Abs(kf.Pose.Z-early.EgoPose.Z) > 2*ecfg.KeyframeSpacing {
		t.Errorf("closure matched keyframe at z=%.1f, want ~%.1f", kf.Pose.Z, early.EgoPose.Z)
	}

	// With an unreachable evidence threshold, no closure may fire.
	if _, ok := eng.detectLoop(kps, descs, claimed, 100000); ok {
		t.Error("closure fired despite an unreachable threshold")
	}

	// With every keyframe inside the minimum gap, no closure may fire.
	if _, ok := eng.detectLoop(kps, descs, scene.Pose{Z: 60}, 1); ok {
		if ecfg.LoopCloseMinGap*2 > cfg.LoopLength {
			t.Error("closure fired with all keyframes inside the gap")
		}
	}
}

// TestLoopWorldIsPeriodic verifies the scene substrate: frames one loop
// apart are pixel-identical, which is what makes loop closure detectable.
func TestLoopWorldIsPeriodic(t *testing.T) {
	cfg := scene.DefaultConfig(scene.Urban)
	cfg.Width, cfg.Height = 256, 128
	cfg.LoopLength = 120
	cfg.EgoSpeed = 12 // 1.2 m/frame: exactly 100 frames per lap
	gen, err := scene.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	framesPerLap := 100
	var lap1 []*img.Gray
	for i := 0; i < framesPerLap; i++ {
		lap1 = append(lap1, gen.Step().Image)
	}
	for i := 0; i < framesPerLap; i++ {
		f := gen.Step()
		for j := range f.Image.Pix {
			if f.Image.Pix[j] != lap1[i].Pix[j] {
				t.Fatalf("lap-2 frame %d differs from lap-1 at pixel %d", i, j)
			}
		}
	}
}

// TestLocalizationAcrossIllumination surveys the map in nominal light and
// localizes a dimmer replay of the same route — the "map built under
// different weather" robustness the paper's map-update path addresses.
// rBRIEF's binary comparisons are invariant to monotone intensity scaling,
// so tracking must survive the change.
func TestLocalizationAcrossIllumination(t *testing.T) {
	cfg := scene.DefaultConfig(scene.Urban)
	cfg.Width, cfg.Height = 512, 256
	gen, err := scene.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := NewEngine(DefaultConfig(), NewPriorMap())
	for i := 0; i < 30; i++ {
		f := gen.Step()
		eng.Survey(f.Image, f.EgoPose)
	}

	dim := cfg
	dim.Illumination = 0.8
	replay, err := scene.New(dim)
	if err != nil {
		t.Fatal(err)
	}
	tracked := 0
	for i := 0; i < 20; i++ {
		f := replay.Step()
		if eng.Localize(f.Image).Tracked {
			tracked++
		}
	}
	if tracked < 15 {
		t.Errorf("localized only %d/20 frames under 0.8x illumination", tracked)
	}
}

// Exhaustive check of the shift-and-AND run detector against a brute-force
// circular scan, over every run length and 40k random masks plus the full
// low-16-bit space for n=9 (the FAST-9 case).
func TestHasContigRunAgainstBruteForce(t *testing.T) {
	brute := func(mask uint32, n int) bool {
		for start := 0; start < 16; start++ {
			run := 0
			for i := 0; i < 16; i++ {
				if mask&(1<<uint((start+i)%16)) != 0 {
					run++
					if run >= n {
						return true
					}
				} else {
					break
				}
			}
		}
		return false
	}
	for mask := uint32(0); mask < 1<<16; mask++ {
		if got, want := hasContigRun(mask, 9), brute(mask, 9); got != want {
			t.Fatalf("hasContigRun(%#x, 9) = %v, want %v", mask, got, want)
		}
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40000; trial++ {
		mask := uint32(rng.Intn(1 << 16))
		n := 1 + rng.Intn(16)
		if got, want := hasContigRun(mask, n), brute(mask, n); got != want {
			t.Fatalf("hasContigRun(%#x, %d) = %v, want %v", mask, n, got, want)
		}
	}
}

// The compass pre-test rests on this fact: any run of >= 9 contiguous
// circle points must contain at least one of the north/south axis points
// {0, 8} AND at least one of the east/west points {4, 12}. Verify it over
// the whole mask space so the fast rejection can never drop a corner.
func TestCompassPretestIsNecessaryCondition(t *testing.T) {
	for mask := uint32(0); mask < 1<<16; mask++ {
		if !hasContigRun(mask, 9) {
			continue
		}
		ns := mask&(1<<0) != 0 || mask&(1<<8) != 0
		ew := mask&(1<<4) != 0 || mask&(1<<12) != 0
		if !ns || !ew {
			t.Fatalf("mask %#x has a 9-run but misses a compass axis (ns=%v ew=%v)", mask, ns, ew)
		}
	}
}

// ExtractFeaturesScratch is ExtractFeatures routed through a reusable
// buffer set; results must be bitwise-identical, including across reuse.
func TestExtractFeaturesScratchIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var s FEScratch
	for trial := 0; trial < 3; trial++ {
		f := img.NewGray(128, 96)
		for i := range f.Pix {
			f.Pix[i] = uint8(rng.Intn(256))
		}
		cfg := DefaultFASTConfig()
		wantK, wantD := ExtractFeatures(f, cfg)
		gotK, gotD := ExtractFeaturesScratch(f, cfg, &s)
		if len(gotK) != len(wantK) || len(gotD) != len(wantD) {
			t.Fatalf("trial %d: %d/%d features scratch vs %d/%d plain",
				trial, len(gotK), len(gotD), len(wantK), len(wantD))
		}
		for i := range wantK {
			if gotK[i] != wantK[i] {
				t.Fatalf("trial %d: kp[%d] = %+v, want %+v", trial, i, gotK[i], wantK[i])
			}
			if gotD[i] != wantD[i] {
				t.Fatalf("trial %d: desc[%d] differs", trial, i)
			}
		}
	}
}
