package slam

import (
	"fmt"
	"sort"

	"adsim/internal/scene"
)

// Keyframe is one entry in the prior map: the feature descriptors observed
// at a surveyed pose. The paper's storage-constraint analysis (41 TB for a
// US-wide map) is the at-scale version of exactly this structure.
type Keyframe struct {
	ID          int
	Pose        scene.Pose
	Keypoints   []Keypoint
	Descriptors []Descriptor
}

// PriorMap is the on-vehicle prior map: keyframes indexed by longitudinal
// position for windowed candidate lookup. The paper's LOC engine matches
// live features against this database to localize at high precision.
type PriorMap struct {
	keyframes []Keyframe // sorted by Pose.Z
	nextID    int
}

// NewPriorMap returns an empty map.
func NewPriorMap() *PriorMap { return &PriorMap{} }

// Len reports the number of keyframes.
func (m *PriorMap) Len() int { return len(m.keyframes) }

// Add inserts a keyframe observed at pose, keeping the database sorted by
// longitudinal position, and returns its assigned ID.
func (m *PriorMap) Add(pose scene.Pose, kps []Keypoint, descs []Descriptor) int {
	m.nextID++
	m.insert(Keyframe{ID: m.nextID, Pose: pose, Keypoints: kps, Descriptors: descs})
	return m.nextID
}

// insert places a fully-formed keyframe at its sorted position (used by Add
// and by deserialization, which preserves stored IDs).
func (m *PriorMap) insert(kf Keyframe) {
	idx := sort.Search(len(m.keyframes), func(i int) bool {
		return m.keyframes[i].Pose.Z >= kf.Pose.Z
	})
	m.keyframes = append(m.keyframes, Keyframe{})
	copy(m.keyframes[idx+1:], m.keyframes[idx:])
	m.keyframes[idx] = kf
	if kf.ID > m.nextID {
		m.nextID = kf.ID // future Adds must not collide with stored IDs
	}
}

// Candidates returns the keyframes whose longitudinal position lies within
// ±window meters of z. This is the tracking-mode search set; relocalization
// passes a much larger window, which is what makes it expensive.
func (m *PriorMap) Candidates(z, window float64) []Keyframe {
	lo := sort.Search(len(m.keyframes), func(i int) bool {
		return m.keyframes[i].Pose.Z >= z-window
	})
	hi := sort.Search(len(m.keyframes), func(i int) bool {
		return m.keyframes[i].Pose.Z > z+window
	})
	return m.keyframes[lo:hi]
}

// All returns every keyframe (the relocalization worst case).
func (m *PriorMap) All() []Keyframe { return m.keyframes }

// NearestZ returns the keyframe whose longitudinal position is closest to
// z, and false if the map is empty.
func (m *PriorMap) NearestZ(z float64) (Keyframe, bool) {
	if len(m.keyframes) == 0 {
		return Keyframe{}, false
	}
	idx := sort.Search(len(m.keyframes), func(i int) bool {
		return m.keyframes[i].Pose.Z >= z
	})
	best := -1
	bestDist := 0.0
	for _, c := range []int{idx - 1, idx} {
		if c < 0 || c >= len(m.keyframes) {
			continue
		}
		d := m.keyframes[c].Pose.Z - z
		if d < 0 {
			d = -d
		}
		if best == -1 || d < bestDist {
			best, bestDist = c, d
		}
	}
	return m.keyframes[best], true
}

// StorageBytes estimates the map's in-memory footprint: descriptors plus
// keypoint coordinates plus pose. Used by the storage-constraint analysis.
func (m *PriorMap) StorageBytes() int64 {
	var total int64
	for _, kf := range m.keyframes {
		total += int64(len(kf.Descriptors)) * 32 // 256-bit descriptors
		total += int64(len(kf.Keypoints)) * 16   // x, y, score, angle (packed)
		total += 24                              // pose
	}
	return total
}

func (m *PriorMap) String() string {
	return fmt.Sprintf("priormap(%d keyframes, %d KB)", m.Len(), m.StorageBytes()/1024)
}
