package slam

import (
	"fmt"
	"sort"
	"sync"

	"adsim/internal/scene"
)

// Keyframe is one entry in the prior map: the feature descriptors observed
// at a surveyed pose. The paper's storage-constraint analysis (41 TB for a
// US-wide map) is the at-scale version of exactly this structure.
type Keyframe struct {
	ID          int
	Pose        scene.Pose
	Keypoints   []Keypoint
	Descriptors []Descriptor
}

// PriorMap is the monolithic in-memory prior-map store: keyframes indexed
// by longitudinal position for windowed candidate lookup. The paper's LOC
// engine matches live features against this database to localize at high
// precision. PriorMap implements MapStore; ShardStore is the tiled on-disk
// alternative for maps that must not be fully resident.
//
// All methods are safe for concurrent use. Reads return snapshots: the
// returned keyframe slices have their own backing array, so a retained
// result is never shifted or overwritten by a later Add (a Keyframe's
// keypoint/descriptor slices are shared with the map, but are immutable
// once inserted).
type PriorMap struct {
	mu        sync.RWMutex
	keyframes []Keyframe // sorted by Pose.Z
	nextID    int
}

// NewPriorMap returns an empty map.
func NewPriorMap() *PriorMap { return &PriorMap{} }

// Len reports the number of keyframes.
func (m *PriorMap) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.keyframes)
}

// Add inserts a keyframe observed at pose, keeping the database sorted by
// longitudinal position, and returns its assigned ID.
func (m *PriorMap) Add(pose scene.Pose, kps []Keypoint, descs []Descriptor) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	id := m.nextID
	m.insertLocked(Keyframe{ID: id, Pose: pose, Keypoints: kps, Descriptors: descs})
	return id
}

// insert places a fully-formed keyframe at its sorted position (used by Add
// and by deserialization, which preserves stored IDs).
func (m *PriorMap) insert(kf Keyframe) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.insertLocked(kf)
}

func (m *PriorMap) insertLocked(kf Keyframe) {
	idx := sort.Search(len(m.keyframes), func(i int) bool {
		return m.keyframes[i].Pose.Z >= kf.Pose.Z
	})
	m.keyframes = append(m.keyframes, Keyframe{})
	copy(m.keyframes[idx+1:], m.keyframes[idx:])
	m.keyframes[idx] = kf
	if kf.ID > m.nextID {
		m.nextID = kf.ID // future Adds must not collide with stored IDs
	}
}

// Candidates returns the keyframes whose longitudinal position lies within
// ±window meters of z, in ascending-Z order. This is the tracking-mode
// search set; relocalization passes a much larger window, which is what
// makes it expensive. The result is a snapshot owned by the caller.
func (m *PriorMap) Candidates(z, window float64) []Keyframe {
	m.mu.RLock()
	defer m.mu.RUnlock()
	lo := sort.Search(len(m.keyframes), func(i int) bool {
		return m.keyframes[i].Pose.Z >= z-window
	})
	hi := sort.Search(len(m.keyframes), func(i int) bool {
		return m.keyframes[i].Pose.Z > z+window
	})
	out := make([]Keyframe, hi-lo)
	copy(out, m.keyframes[lo:hi])
	return out
}

// All returns a snapshot of every keyframe in ascending-Z order. Prefer
// Scan on the relocalization path: a sharded store streams tiles through
// its cache instead of materializing the whole map.
func (m *PriorMap) All() []Keyframe {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Keyframe, len(m.keyframes))
	copy(out, m.keyframes)
	return out
}

// Scan calls fn for every keyframe in ascending-Z order, stopping early
// when fn returns false. fn runs on a snapshot: keyframes added after Scan
// starts are not observed.
func (m *PriorMap) Scan(fn func(Keyframe) bool) {
	for _, kf := range m.All() {
		if !fn(kf) {
			return
		}
	}
}

// NearestZ returns the keyframe whose longitudinal position is closest to
// z, and false if the map is empty. On an exact distance tie the lower-Z
// neighbor wins.
func (m *PriorMap) NearestZ(z float64) (Keyframe, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.keyframes) == 0 {
		return Keyframe{}, false
	}
	idx := sort.Search(len(m.keyframes), func(i int) bool {
		return m.keyframes[i].Pose.Z >= z
	})
	best := -1
	bestDist := 0.0
	for _, c := range []int{idx - 1, idx} {
		if c < 0 || c >= len(m.keyframes) {
			continue
		}
		d := m.keyframes[c].Pose.Z - z
		if d < 0 {
			d = -d
		}
		if best == -1 || d < bestDist {
			best, bestDist = c, d
		}
	}
	return m.keyframes[best], true
}

// StorageBytes estimates the map's in-memory resident footprint:
// descriptors plus keypoint coordinates plus pose. This is the estimate the
// shard cache budgets against; the storage-constraint extrapolation uses
// the serialized density instead (see SerializedBytes).
func (m *PriorMap) StorageBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return storageBytes(m.keyframes)
}

// storageBytes is the resident-footprint estimate shared by PriorMap and
// the shard cache accounting.
func storageBytes(kfs []Keyframe) int64 {
	var total int64
	for _, kf := range kfs {
		total += int64(len(kf.Descriptors)) * 32 // 256-bit descriptors
		total += int64(len(kf.Keypoints)) * 16   // x, y, score, angle (packed)
		total += 24                              // pose
	}
	return total
}

func (m *PriorMap) String() string {
	return fmt.Sprintf("priormap(%d keyframes, %d KB)", m.Len(), m.StorageBytes()/1024)
}
