package slam

import (
	"testing"

	"adsim/internal/img"
	"adsim/internal/scene"
)

func TestPyramidConfigNormalization(t *testing.T) {
	c := PyramidConfig{}.normalized()
	if c.Levels != 1 || c.ScaleFactor != 1.2 {
		t.Errorf("normalized zero config = %+v", c)
	}
	if DefaultPyramidConfig().Levels != 8 {
		t.Error("default pyramid should have 8 levels")
	}
	if s := DefaultPyramidConfig().LevelScale(2); s < 1.43 || s > 1.45 {
		t.Errorf("LevelScale(2) = %v, want 1.44", s)
	}
}

func TestPyramidSingleLevelMatchesBase(t *testing.T) {
	f := checkerFrame(256, 128, 16)
	k1, d1 := ExtractFeatures(f, DefaultFASTConfig())
	k2, d2 := ExtractFeaturesPyramid(f, DefaultFASTConfig(), PyramidConfig{Levels: 1})
	if len(k1) != len(k2) || len(d1) != len(d2) {
		t.Fatalf("single-level pyramid differs from base: %d/%d vs %d/%d",
			len(k1), len(d1), len(k2), len(d2))
	}
}

func TestPyramidProducesMultiLevelFeatures(t *testing.T) {
	f := checkerFrame(512, 256, 16)
	kps, descs := ExtractFeaturesPyramid(f, DefaultFASTConfig(), DefaultPyramidConfig())
	if len(kps) != len(descs) {
		t.Fatal("keypoint/descriptor count mismatch")
	}
	levels := map[int]int{}
	for _, kp := range kps {
		levels[kp.Level]++
		if kp.X < 0 || kp.Y < 0 || kp.X >= 512 || kp.Y >= 256 {
			t.Fatalf("keypoint (%d,%d) outside level-0 frame", kp.X, kp.Y)
		}
	}
	if len(levels) < 3 {
		t.Errorf("features on only %d pyramid levels", len(levels))
	}
	if levels[0] == 0 {
		t.Error("no level-0 features")
	}
}

func TestPyramidBudgetDecaysWithLevel(t *testing.T) {
	f := checkerFrame(512, 256, 16)
	cfg := DefaultFASTConfig()
	cfg.MaxFeatures = 200
	kps, _ := ExtractFeaturesPyramid(f, cfg, DefaultPyramidConfig())
	counts := map[int]int{}
	for _, kp := range kps {
		counts[kp.Level]++
	}
	if counts[0] < counts[4] {
		t.Errorf("level budgets not decaying: %v", counts)
	}
}

func TestPyramidImprovesScaleMatching(t *testing.T) {
	// The same scene at 1.45x zoom: multi-scale extraction should match
	// more features across the zoom than single-scale.
	base := checkerFrame(384, 192, 16)
	zoomFactor := 1.45
	big := base.Resize(int(384*zoomFactor), int(192*zoomFactor))
	zoomed := big.Crop(img.RectWH(
		float64(big.W-384)/2, float64(big.H-192)/2, 384, 192))

	match := func(pyr PyramidConfig) int {
		k1, d1 := ExtractFeaturesPyramid(base, DefaultFASTConfig(), pyr)
		k2, d2 := ExtractFeaturesPyramid(zoomed, DefaultFASTConfig(), pyr)
		_, _ = k1, k2
		ms := MatchDescriptors(d1, d2, 40, 0.8)
		return len(ms)
	}
	single := match(PyramidConfig{Levels: 1})
	multi := match(DefaultPyramidConfig())
	if multi <= single {
		t.Errorf("pyramid matching (%d) should beat single-scale (%d) across a 1.45x zoom",
			multi, single)
	}
}

// TestEnginePyramidMode verifies the engine tracks a surveyed route with
// multi-scale extraction enabled end to end.
func TestEnginePyramidMode(t *testing.T) {
	cfg := scene.DefaultConfig(scene.Urban)
	cfg.Width, cfg.Height = 512, 256
	gen, err := scene.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := DefaultConfig()
	ecfg.Pyramid = PyramidConfig{Levels: 4, ScaleFactor: 1.2}
	eng, err := NewEngine(ecfg, NewPriorMap())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		f := gen.Step()
		eng.Survey(f.Image, f.EgoPose)
	}
	replay, _ := scene.New(cfg)
	tracked := 0
	for i := 0; i < 15; i++ {
		f := replay.Step()
		if eng.Localize(f.Image).Tracked {
			tracked++
		}
	}
	if tracked < 12 {
		t.Errorf("pyramid engine localized only %d/15 frames", tracked)
	}
}
