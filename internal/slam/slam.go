package slam

import (
	"fmt"
	"time"

	"adsim/internal/img"
	"adsim/internal/scene"
)

// Config parameterizes the localization engine.
type Config struct {
	FAST FASTConfig
	// Pyramid controls multi-scale feature extraction; the zero value (or
	// Levels ≤ 1) extracts at full resolution only, ORB's canonical
	// setting is DefaultPyramidConfig (8 levels at 1.2).
	Pyramid PyramidConfig
	// KeyframeSpacing is the survey keyframe pitch in meters.
	KeyframeSpacing float64
	// TrackWindow is the ± candidate search window (meters) around the
	// motion-model prediction during normal tracking.
	TrackWindow float64
	// RelocWindow is the ± search window during relocalization. The
	// paper's LOC tail latency comes from this being much larger.
	RelocWindow float64
	// MinMatches is the geometrically-verified match (inlier) count below
	// which tracking is lost.
	MinMatches int
	// InlierTol is the displacement-consensus tolerance in pixels for
	// geometric match verification.
	InlierTol int
	// MatchMaxDist and MatchRatio gate descriptor matching.
	MatchMaxDist int
	MatchRatio   float64
	// LoopCloseEvery triggers a loop-closing scan every N frames
	// (0 disables).
	LoopCloseEvery int
	// LoopCloseMinGap is the minimum longitudinal separation (meters) for
	// a match to count as a loop closure rather than normal tracking.
	LoopCloseMinGap float64
}

// DefaultConfig returns the standard LOC configuration.
func DefaultConfig() Config {
	return Config{
		FAST:            DefaultFASTConfig(),
		KeyframeSpacing: 2.0,
		TrackWindow:     6.0,
		RelocWindow:     1e9, // whole map: worst-case wide search
		MinMatches:      40,
		InlierTol:       3,
		MatchMaxDist:    48,
		MatchRatio:      0.85,
		LoopCloseEvery:  50,
		LoopCloseMinGap: 100,
	}
}

// Timing reports where one Localize call spent its time, mirroring the
// paper's Fig 7 breakdown: FE (oFAST + rBRIEF feature extraction) versus
// everything else (matching, pose update, map maintenance).
type Timing struct {
	FE    time.Duration
	Other time.Duration
}

// Total returns FE + Other.
func (t Timing) Total() time.Duration { return t.FE + t.Other }

// Estimate is one localization result.
type Estimate struct {
	Pose scene.Pose
	// Tracked is false when neither tracking nor relocalization found
	// enough matches and the pose is dead-reckoned from the motion model.
	Tracked bool
	// Relocalized is true when this frame required the wide-search
	// relocalization path (the latency-spike path).
	Relocalized bool
	// Matches is the number of descriptor matches supporting the pose.
	Matches int
	// LoopClosed is true when the periodic loop-closing scan confirmed a
	// revisit this frame.
	LoopClosed bool
	// Stale is true when this estimate never came from the localizer at
	// all: the pipeline's deadline layer extrapolated it from the motion
	// model (PredictPose) because LOC blew its budget this frame.
	Stale bool
}

// Engine is the LOC engine. Not safe for concurrent use itself — but its
// MapStore is, so several engines (concurrent LOC replicas) may share one
// store.
type Engine struct {
	cfg   Config
	store MapStore

	havePose  bool
	lastPose  scene.Pose
	velocity  float64 // longitudinal m/frame from the constant-motion model
	frame     int
	lost      bool
	prevKps   []Keypoint   // previous frame's keypoints (visual odometry)
	prevDescs []Descriptor // previous frame's descriptors (visual odometry)

	// Stats counters.
	relocalizations int
	loopClosures    int
	mapUpdates      int

	fe FEScratch // reusable FE-stage buffers (engine is single-goroutine)
}

// NewEngine builds a localization engine over a monolithic in-memory prior
// map. The map may be empty (e.g. during a survey run that populates it).
func NewEngine(cfg Config, m *PriorMap) (*Engine, error) {
	if m == nil {
		return nil, fmt.Errorf("slam: nil prior map")
	}
	return NewEngineStore(cfg, m)
}

// NewEngineStore builds a localization engine over any prior-map store —
// in particular a ShardStore, whose tiles page in lazily so the map's
// resident set stays bounded.
func NewEngineStore(cfg Config, store MapStore) (*Engine, error) {
	if store == nil {
		return nil, fmt.Errorf("slam: nil map store")
	}
	if cfg.KeyframeSpacing <= 0 {
		return nil, fmt.Errorf("slam: KeyframeSpacing %v must be positive", cfg.KeyframeSpacing)
	}
	if cfg.MinMatches <= 0 {
		return nil, fmt.Errorf("slam: MinMatches %v must be positive", cfg.MinMatches)
	}
	if cfg.TrackWindow <= 0 || cfg.RelocWindow < cfg.TrackWindow {
		return nil, fmt.Errorf("slam: windows invalid (track %v, reloc %v)", cfg.TrackWindow, cfg.RelocWindow)
	}
	return &Engine{cfg: cfg, store: store}, nil
}

// Map returns the engine's prior map when its store is a monolithic
// in-memory PriorMap, and nil otherwise (use Store for the general case).
func (e *Engine) Map() *PriorMap {
	pm, _ := e.store.(*PriorMap)
	return pm
}

// Store returns the engine's prior-map store.
func (e *Engine) Store() MapStore { return e.store }

// PredictPose extrapolates the current pose one frame ahead with the
// constant-motion model, without touching engine state — the same
// prediction localizeFrom starts from. The pipeline's deadline layer uses
// it as the degraded-mode (stale) pose when a Localize call exceeds its
// budget; it must only be called while the engine is quiescent (no
// Localize in flight).
func (e *Engine) PredictPose() scene.Pose {
	p := e.lastPose
	p.Z += e.velocity
	return p
}

// Relocalizations reports how many frames required the wide-search path.
func (e *Engine) Relocalizations() int { return e.relocalizations }

// LoopClosures reports confirmed loop-closure events.
func (e *Engine) LoopClosures() int { return e.loopClosures }

// MapUpdates reports keyframes added by local mapping at runtime.
func (e *Engine) MapUpdates() int { return e.mapUpdates }

// FEScratch holds the FE stage's reusable working buffers: the smoothed
// image, its integral-image workspace and the FAST score map. The returned
// keypoints/descriptors never alias scratch memory (callers retain them
// across frames); only transient intermediates are reused. Not safe for
// concurrent use.
type FEScratch struct {
	smoothed img.Gray
	integral img.Integral
	scores   []int
}

// ExtractFeatures runs the FE stage (oFAST + rBRIEF) on a frame. Exposed so
// survey runs and benchmarks exercise exactly the code the engine uses.
func ExtractFeatures(frame *img.Gray, cfg FASTConfig) ([]Keypoint, []Descriptor) {
	return ExtractFeaturesScratch(frame, cfg, nil)
}

// ExtractFeaturesScratch is ExtractFeatures drawing its intermediates from
// s (nil uses a throwaway scratch). Results are bitwise-identical to
// ExtractFeatures.
func ExtractFeaturesScratch(frame *img.Gray, cfg FASTConfig, s *FEScratch) ([]Keypoint, []Descriptor) {
	if s == nil {
		s = &FEScratch{}
	}
	smoothed := frame.BoxBlurInto(&s.smoothed, &s.integral, 1)
	if cap(s.scores) < smoothed.W*smoothed.H {
		s.scores = make([]int, smoothed.W*smoothed.H)
	}
	kps := detectFAST(smoothed, cfg, s.scores)
	descs := ComputeAll(smoothed, kps)
	return kps, descs
}

// extract runs the engine's configured FE stage (single- or multi-scale).
func (e *Engine) extract(frame *img.Gray) ([]Keypoint, []Descriptor) {
	if e.cfg.Pyramid.Levels > 1 {
		return ExtractFeaturesPyramid(frame, e.cfg.FAST, e.cfg.Pyramid)
	}
	return ExtractFeaturesScratch(frame, e.cfg.FAST, &e.fe)
}

// Survey adds a keyframe for a frame observed at a known pose if the map
// has no keyframe within KeyframeSpacing of it. Used to build prior maps
// from ground-truth scenario runs — the offline "map provider" role.
func (e *Engine) Survey(frame *img.Gray, pose scene.Pose) bool {
	if kf, ok := e.store.NearestZ(pose.Z); ok {
		dz := kf.Pose.Z - pose.Z
		if dz < 0 {
			dz = -dz
		}
		if dz < e.cfg.KeyframeSpacing {
			return false
		}
	}
	kps, descs := e.extract(frame)
	e.store.Add(pose, kps, descs)
	return true
}

// Localize estimates the vehicle pose from one camera frame against the
// prior map, updating the engine's motion model and (when needed) running
// relocalization, local mapping and loop closing. Use LocalizeTimed when
// the call's time breakdown is needed.
func (e *Engine) Localize(frame *img.Gray) Estimate {
	est, _ := e.LocalizeTimed(frame)
	return est
}

// LocalizeTimed is Localize with the call's FE-vs-other time breakdown
// returned alongside the estimate. Returning the timing (instead of the old
// LastTiming accessor) means a pipelined frame N+1 can never overwrite the
// breakdown frame N is about to read.
func (e *Engine) LocalizeTimed(frame *img.Gray) (Estimate, Timing) {
	e.frame++

	// --- FE stage (dominates LOC compute; Fig 7: 85.9%). ---
	feStart := time.Now()
	kps, descs := e.extract(frame)
	feDur := time.Since(feStart)

	otherStart := time.Now()
	est := e.localizeFrom(kps, descs)
	e.prevKps, e.prevDescs = kps, descs

	// Local mapping: extend the map when tracking confidently in
	// unsurveyed territory (the paper's "map update" path).
	if est.Tracked {
		if kf, ok := e.store.NearestZ(est.Pose.Z); !ok ||
			abs(kf.Pose.Z-est.Pose.Z) >= e.cfg.KeyframeSpacing {
			e.store.Add(est.Pose, kps, descs)
			e.mapUpdates++
		}
	}

	// Periodic loop closing: match against keyframes far from the current
	// position; a strong distant match is a trajectory-loop detection and
	// the pose is re-anchored to the matched keyframe (the map-frame
	// correction a full pose-graph optimizer would produce).
	if e.cfg.LoopCloseEvery > 0 && e.frame%e.cfg.LoopCloseEvery == 0 && est.Tracked {
		// A closure must be supported by strictly more verified inliers
		// than the current local anchor (and at least 2x MinMatches):
		// re-anchoring on weaker evidence than tracking already has would
		// let perceptual aliasing teleport the pose.
		minScore := 2 * e.cfg.MinMatches
		if est.Matches+1 > minScore {
			minScore = est.Matches + 1
		}
		if kf, ok := e.detectLoop(kps, descs, est.Pose, minScore); ok {
			est.LoopClosed = true
			est.Pose = kf.Pose
			e.lastPose = kf.Pose // re-anchor; velocity model is preserved
			e.loopClosures++
		}
	}

	// Warm the tile ahead in the travel direction on stores that page; a
	// pure cache hint, so it cannot change any result.
	if p, ok := e.store.(Prefetcher); ok && est.Tracked {
		p.Advise(est.Pose.Z, e.velocity)
	}

	return est, Timing{FE: feDur, Other: time.Since(otherStart)}
}

// localizeFrom runs the matching cascade: motion-model windowed tracking,
// then relocalization over the whole map on failure.
func (e *Engine) localizeFrom(kps []Keypoint, descs []Descriptor) Estimate {
	predicted := e.lastPose
	predicted.Z += e.velocity

	// Tracking attempt: narrow window around the prediction (skipped when
	// no pose is known yet — cold start relocalizes).
	if e.havePose && !e.lost {
		// Score both anchors: the prior map (absolute) and the previous
		// frame (visual odometry, as ORB-SLAM's tracking thread uses).
		cands := e.store.Candidates(predicted.Z, e.cfg.TrackWindow)
		kf, kfInliers, kfOK := e.bestKeyframe(kps, descs, cands)
		voInliers := 0
		if len(e.prevDescs) > 0 {
			ms := MatchDescriptors(descs, e.prevDescs, e.cfg.MatchMaxDist, e.cfg.MatchRatio)
			voInliers = GeometricInliers(kps, e.prevKps, ms, e.cfg.InlierTol)
		}
		// Prefer the map anchor when its support is comparable (it is
		// drift-free), but fall back to odometry when the frame clearly
		// matches the live world better than any surveyed keyframe —
		// the signature of unsurveyed or perceptually-aliased territory.
		if kfOK && float64(kfInliers) >= 0.8*float64(voInliers) {
			pose := e.refinePose(kf, predicted)
			e.commitPose(pose)
			return Estimate{Pose: pose, Tracked: true, Matches: kfInliers}
		}
		if voInliers >= e.cfg.MinMatches {
			e.commitPose(predicted)
			return Estimate{Pose: predicted, Tracked: true, Matches: voInliers}
		}
		e.lost = true
	}

	// Relocalization: strictly wider search (the tail-latency path). The
	// whole-map case streams through the store's Scan, so a sharded store
	// pages tiles through its cache instead of materializing the map.
	e.relocalizations++
	sc := scorer{e: e, kps: kps, descs: descs}
	if e.cfg.RelocWindow >= 1e9 {
		e.store.Scan(func(kf Keyframe) bool { sc.consider(kf); return true })
	} else {
		for _, kf := range e.store.Candidates(predicted.Z, e.cfg.RelocWindow) {
			sc.consider(kf)
		}
	}
	if kf, matches, ok := sc.result(e.cfg.MinMatches); ok {
		pose := e.refinePose(kf, predicted)
		e.commitPose(pose)
		e.lost = false
		return Estimate{Pose: pose, Tracked: true, Relocalized: true, Matches: matches}
	}

	// Still lost: dead-reckon on the constant-motion model.
	if e.havePose {
		e.lastPose = predicted
	}
	return Estimate{Pose: predicted, Tracked: false, Relocalized: true}
}

// scorer accumulates the best geometrically-verified candidate while
// keyframes stream past. The first best wins ties, preserving the order
// dependence of the old slice-based scan — what makes streamed (sharded)
// relocalization bit-identical to the monolithic one.
type scorer struct {
	e         *Engine
	kps       []Keypoint
	descs     []Descriptor
	bestScore int
	best      Keyframe
}

func (s *scorer) consider(kf Keyframe) {
	ms := MatchDescriptors(s.descs, kf.Descriptors, s.e.cfg.MatchMaxDist, s.e.cfg.MatchRatio)
	if inl := GeometricInliers(s.kps, kf.Keypoints, ms, s.e.cfg.InlierTol); inl > s.bestScore {
		s.bestScore = inl
		s.best = kf
	}
}

func (s *scorer) result(minMatches int) (Keyframe, int, bool) {
	if s.bestScore < minMatches {
		return Keyframe{}, s.bestScore, false
	}
	return s.best, s.bestScore, true
}

// bestKeyframe scores candidate keyframes by geometrically-verified match
// count and returns the best one if it clears MinMatches.
func (e *Engine) bestKeyframe(kps []Keypoint, descs []Descriptor, cands []Keyframe) (Keyframe, int, bool) {
	sc := scorer{e: e, kps: kps, descs: descs}
	for _, kf := range cands {
		sc.consider(kf)
	}
	return sc.result(e.cfg.MinMatches)
}

// refinePose blends the matched keyframe's surveyed pose with the motion
// model: the keyframe anchors absolute position (sub-keyframe precision
// comes from the prediction, which advances smoothly between keyframes).
func (e *Engine) refinePose(kf Keyframe, predicted scene.Pose) scene.Pose {
	if !e.havePose {
		return kf.Pose
	}
	pose := predicted
	// Clamp prediction drift to half the keyframe pitch: when the best
	// match is the nearest keyframe, the true position lies within
	// ±spacing/2 of its surveyed position.
	maxDrift := e.cfg.KeyframeSpacing / 2
	if pose.Z > kf.Pose.Z+maxDrift {
		pose.Z = kf.Pose.Z + maxDrift
	}
	if pose.Z < kf.Pose.Z-maxDrift {
		pose.Z = kf.Pose.Z - maxDrift
	}
	pose.X = kf.Pose.X
	pose.Theta = kf.Pose.Theta
	return pose
}

func (e *Engine) commitPose(pose scene.Pose) {
	if e.havePose {
		v := pose.Z - e.lastPose.Z
		// Constant-motion model with mild adaptation, rejecting negative
		// slips. The first observed displacement seeds the model directly
		// so prediction does not lag through a slow exponential ramp.
		if v >= 0 {
			if e.velocity == 0 {
				e.velocity = v
			} else {
				e.velocity = 0.7*e.velocity + 0.3*v
			}
		}
	}
	e.lastPose = pose
	e.havePose = true
}

// detectLoop streams keyframes at least LoopCloseMinGap away from pose and
// returns the best match with at least minScore verified inliers, if any —
// a trajectory loop.
func (e *Engine) detectLoop(kps []Keypoint, descs []Descriptor, pose scene.Pose, minScore int) (Keyframe, bool) {
	bestScore := minScore - 1
	var best Keyframe
	found := false
	e.store.Scan(func(kf Keyframe) bool {
		if abs(kf.Pose.Z-pose.Z) < e.cfg.LoopCloseMinGap {
			return true
		}
		ms := MatchDescriptors(descs, kf.Descriptors, e.cfg.MatchMaxDist, e.cfg.MatchRatio)
		if inl := GeometricInliers(kps, kf.Keypoints, ms, e.cfg.InlierTol); inl > bestScore {
			bestScore = inl
			best = kf
			found = true
		}
		return true
	})
	return best, found
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
