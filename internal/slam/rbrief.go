package slam

import (
	"math"
	"math/bits"

	"adsim/internal/img"
	"adsim/internal/stats"
)

// DescriptorBits is the rBRIEF descriptor length in binary tests.
const DescriptorBits = 256

// Descriptor is a 256-bit rBRIEF descriptor.
type Descriptor [4]uint64

// Hamming returns the Hamming distance between two descriptors (0..256).
func (d Descriptor) Hamming(o Descriptor) int {
	return bits.OnesCount64(d[0]^o[0]) + bits.OnesCount64(d[1]^o[1]) +
		bits.OnesCount64(d[2]^o[2]) + bits.OnesCount64(d[3]^o[3])
}

// PatchRadius bounds the sampling pattern: all test points lie within this
// radius of the keypoint, so keypoints need a PatchRadius+rotation margin
// from the image border.
const PatchRadius = 13

// briefPattern is the fixed 256-pair sampling pattern, generated
// deterministically at package init from a Gaussian-like distribution, as
// BRIEF does. The same pattern LUT is what the paper's FPGA and ASIC FE
// implementations store on-chip (their "Pattern LUT (256 x 4)").
var briefPattern [DescriptorBits][4]int8

// rotationLUT holds the pattern pre-rotated at 30 discretized angles
// (ORB quantizes orientation to 2π/30 steps to avoid per-keypoint
// trigonometry — the same trick the paper's hardware uses via sin/cos LUTs).
const rotationSteps = 30

var rotationLUT [rotationSteps][DescriptorBits][4]int8

func init() {
	rng := stats.NewRNG(0xB21EF) // fixed pattern seed
	for i := range briefPattern {
		for j := 0; j < 4; j++ {
			// Approximate N(0, r/2) by averaging uniforms, clamped.
			v := (rng.Uniform(-1, 1) + rng.Uniform(-1, 1) + rng.Uniform(-1, 1)) / 3 * PatchRadius
			if v > PatchRadius-1 {
				v = PatchRadius - 1
			}
			if v < -(PatchRadius - 1) {
				v = -(PatchRadius - 1)
			}
			briefPattern[i][j] = int8(v)
		}
	}
	for s := 0; s < rotationSteps; s++ {
		angle := 2 * math.Pi * float64(s) / rotationSteps
		sin, cos := math.Sin(angle), math.Cos(angle)
		for i, p := range briefPattern {
			for pt := 0; pt < 2; pt++ {
				x, y := float64(p[2*pt]), float64(p[2*pt+1])
				rx := cos*x - sin*y
				ry := sin*x + cos*y
				rotationLUT[s][i][2*pt] = int8(math.Round(rx))
				rotationLUT[s][i][2*pt+1] = int8(math.Round(ry))
			}
		}
	}
}

// Compute returns the rBRIEF descriptor for one oriented keypoint: the
// sampling pattern is rotated to the keypoint's angle (via the discretized
// rotation LUT) and each bit is the binary intensity test I(p1) < I(p2).
func Compute(im *img.Gray, kp Keypoint) Descriptor {
	step := int(math.Round(kp.Angle/(2*math.Pi/rotationSteps))) % rotationSteps
	if step < 0 {
		step += rotationSteps
	}
	pattern := &rotationLUT[step]
	var d Descriptor
	for i := 0; i < DescriptorBits; i++ {
		p := pattern[i]
		a := im.At(kp.X+int(p[0]), kp.Y+int(p[1]))
		b := im.At(kp.X+int(p[2]), kp.Y+int(p[3]))
		if a < b {
			d[i/64] |= 1 << uint(i%64)
		}
	}
	return d
}

// ComputeAll extracts descriptors for all keypoints.
func ComputeAll(im *img.Gray, kps []Keypoint) []Descriptor {
	out := make([]Descriptor, len(kps))
	for i, kp := range kps {
		out[i] = Compute(im, kp)
	}
	return out
}

// Match is one descriptor correspondence between two sets.
type Match struct {
	QueryIdx, TrainIdx int
	Distance           int
}

// GeometricInliers counts the matches whose image-space displacement agrees
// with the consensus (median) displacement within tol pixels in both axes.
// This is the verification step that rejects aliased matches from
// self-similar scenery: random false matches scatter in displacement space
// and fail the consensus test, while a true re-observation of the same
// place yields a tight displacement cluster. (ORB-SLAM uses RANSAC-verified
// pose estimation for the same purpose.)
func GeometricInliers(qkps, tkps []Keypoint, ms []Match, tol int) int {
	if len(ms) == 0 {
		return 0
	}
	dxs := make([]int, len(ms))
	dys := make([]int, len(ms))
	for i, m := range ms {
		dxs[i] = qkps[m.QueryIdx].X - tkps[m.TrainIdx].X
		dys[i] = qkps[m.QueryIdx].Y - tkps[m.TrainIdx].Y
	}
	medDx := medianInt(dxs)
	medDy := medianInt(dys)
	inliers := 0
	for i := range ms {
		dx, dy := dxs[i]-medDx, dys[i]-medDy
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx <= tol && dy <= tol {
			inliers++
		}
	}
	return inliers
}

// medianInt returns the median of vs (lower middle for even lengths).
// vs is modified (partially sorted).
func medianInt(vs []int) int {
	// Simple insertion sort: match sets are small (hundreds).
	for i := 1; i < len(vs); i++ {
		v := vs[i]
		j := i - 1
		for ; j >= 0 && vs[j] > v; j-- {
			vs[j+1] = vs[j]
		}
		vs[j+1] = v
	}
	return vs[len(vs)/2]
}

// MatchDescriptors brute-force matches query descriptors against train
// descriptors with Lowe-style acceptance: a match is kept when the best
// distance is below maxDist and strictly better than ratio × second-best.
func MatchDescriptors(query, train []Descriptor, maxDist int, ratio float64) []Match {
	if len(train) == 0 {
		return nil
	}
	var out []Match
	for qi, q := range query {
		best, second := DescriptorBits+1, DescriptorBits+1
		bestIdx := -1
		for ti, t := range train {
			d := q.Hamming(t)
			if d < best {
				second = best
				best = d
				bestIdx = ti
			} else if d < second {
				second = d
			}
		}
		if best <= maxDist && float64(best) < ratio*float64(second) {
			out = append(out, Match{QueryIdx: qi, TrainIdx: bestIdx, Distance: best})
		}
	}
	return out
}
