package slam

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"testing/quick"

	"adsim/internal/scene"
)

func TestMapSerializationRoundTrip(t *testing.T) {
	eng, _ := surveyedWorld(t, 30)
	m := eng.Map()
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}

	got, err := ReadPriorMap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != m.Len() {
		t.Fatalf("round trip %d keyframes, want %d", got.Len(), m.Len())
	}
	a, b := m.All(), got.All()
	for i := range a {
		if a[i].Pose != b[i].Pose {
			t.Fatalf("keyframe %d pose differs: %+v vs %+v", i, a[i].Pose, b[i].Pose)
		}
		if a[i].ID != b[i].ID {
			t.Fatalf("keyframe %d id differs: %d vs %d", i, a[i].ID, b[i].ID)
		}
		if len(a[i].Descriptors) != len(b[i].Descriptors) {
			t.Fatalf("keyframe %d descriptor count differs", i)
		}
		for j := range a[i].Descriptors {
			if a[i].Descriptors[j] != b[i].Descriptors[j] {
				t.Fatalf("keyframe %d descriptor %d differs", i, j)
			}
			ka, kb := a[i].Keypoints[j], b[i].Keypoints[j]
			if ka.X != kb.X || ka.Y != kb.Y || ka.Level != kb.Level {
				t.Fatalf("keyframe %d keypoint %d differs: %+v vs %+v", i, j, ka, kb)
			}
		}
	}
}

func TestLoadedMapLocalizes(t *testing.T) {
	eng, replay := surveyedWorld(t, 30)
	var buf bytes.Buffer
	if _, err := eng.Map().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadPriorMap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := NewEngine(DefaultConfig(), loaded)
	if err != nil {
		t.Fatal(err)
	}
	tracked := 0
	for i := 0; i < 10; i++ {
		f := replay.Step()
		if eng2.Localize(f.Image).Tracked {
			tracked++
		}
	}
	if tracked < 8 {
		t.Errorf("localized only %d/10 frames against the deserialized map", tracked)
	}
}

func TestReadPriorMapRejectsGarbage(t *testing.T) {
	if _, err := ReadPriorMap(strings.NewReader("not a map")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadPriorMap(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	// Valid magic, truncated body.
	var buf bytes.Buffer
	m := NewPriorMap()
	m.Add(scene.Pose{Z: 1}, make([]Keypoint, 3), make([]Descriptor, 3))
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadPriorMap(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated map accepted")
	}
}

func TestWriteToRejectsInconsistentKeyframe(t *testing.T) {
	m := NewPriorMap()
	m.Add(scene.Pose{}, make([]Keypoint, 2), make([]Descriptor, 1))
	if _, err := m.WriteTo(&bytes.Buffer{}); err == nil {
		t.Error("mismatched keypoints/descriptors accepted")
	}
}

// Satellite-bug regression: Level used to be silently truncated to uint8 on
// write, so a level > 255 round-tripped to a wrong pyramid level instead of
// erroring the way out-of-range X/Y always have.
func TestWriteToRejectsOutOfRangeLevel(t *testing.T) {
	for _, level := range []int{-1, 256, 300} {
		m := NewPriorMap()
		m.Add(scene.Pose{}, []Keypoint{{X: 1, Y: 1, Level: level}}, make([]Descriptor, 1))
		if _, err := m.WriteTo(&bytes.Buffer{}); err == nil {
			t.Errorf("out-of-range level %d accepted", level)
		}
	}
}

func TestSerializedBytesMatchesWriteTo(t *testing.T) {
	for _, m := range []*PriorMap{NewPriorMap(), mustMap(t)} {
		var buf bytes.Buffer
		n, err := m.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != m.SerializedBytes() {
			t.Errorf("WriteTo wrote %d bytes, SerializedBytes predicts %d", n, m.SerializedBytes())
		}
	}
}

func mustMap(t *testing.T) *PriorMap {
	t.Helper()
	m := NewPriorMap()
	m.Add(scene.Pose{Z: 1}, make([]Keypoint, 3), make([]Descriptor, 3))
	m.Add(scene.Pose{Z: 5}, []Keypoint{{X: 7, Y: 9, Level: 2}}, make([]Descriptor, 1))
	return m
}

// Every possible truncation of a valid stream must produce an error, never
// a panic or a silently short map.
func TestReadPriorMapTruncations(t *testing.T) {
	var buf bytes.Buffer
	if _, err := mustMap(t).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for cut := 0; cut < len(valid); cut++ {
		if _, err := ReadPriorMap(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at byte %d accepted", cut)
		}
	}
	if _, err := ReadPriorMap(bytes.NewReader(valid)); err != nil {
		t.Fatalf("untruncated stream rejected: %v", err)
	}
}

// A keyframe header claiming a huge feature count must be rejected before
// any allocation is sized from it.
func TestReadPriorMapHostileFeatureCount(t *testing.T) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(mapMagic))
	binary.Write(&buf, binary.LittleEndian, uint32(1)) // one keyframe
	binary.Write(&buf, binary.LittleEndian, int32(1))  // id
	binary.Write(&buf, binary.LittleEndian, [3]float64{})
	binary.Write(&buf, binary.LittleEndian, uint32(1<<30)) // absurd features
	if _, err := ReadPriorMap(&buf); err == nil {
		t.Error("absurd feature count accepted")
	}
}

func TestSerializedDensityMatchesEstimate(t *testing.T) {
	// The on-disk byte density should be close to StorageBytes' estimate
	// (the storage experiment's basis).
	eng, _ := surveyedWorld(t, 30)
	m := eng.Map()
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	est := m.StorageBytes()
	ratio := float64(n) / float64(est)
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("on-disk %d bytes vs estimate %d (ratio %.2f)", n, est, ratio)
	}
}

// Property: ReadPriorMap never panics on arbitrary input — it returns an
// error or a valid map.
func TestReadPriorMapNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadPriorMap panicked on %d bytes: %v", len(data), r)
			}
		}()
		m, err := ReadPriorMap(bytes.NewReader(data))
		return err != nil || m != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a header claiming a huge feature count must not cause a huge
// allocation before validation.
func TestReadPriorMapHugeCountsRejected(t *testing.T) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(mapMagic))
	binary.Write(&buf, binary.LittleEndian, uint32(1<<30)) // absurd keyframes
	if _, err := ReadPriorMap(&buf); err == nil {
		t.Error("absurd keyframe count accepted")
	}
}
