package slam

// StageName identifies the localizer in the pipeline's declarative stage
// graph and in telemetry spans (implements telemetry.Stage).
func (e *Engine) StageName() string { return "LOC" }
