package slam

import (
	"container/list"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"adsim/internal/scene"
	"adsim/internal/telemetry"
)

// ShardStoreOptions parameterizes OpenShardStore.
type ShardStoreOptions struct {
	// CacheBudget bounds the resident-footprint estimate (StorageBytes) of
	// cached tiles, in bytes. The most recently used tile is never evicted,
	// so the effective floor is one tile. ≤ 0 means unlimited.
	CacheBudget int64
	// Telemetry receives the cache metrics (mapstore/hits, misses,
	// prefetches, evictions counters, the mapstore/resident_bytes gauge and
	// the mapstore/load_ms load-latency distribution). nil uses a private
	// registry, reachable via CacheStats.
	Telemetry *telemetry.Registry
	// Prefetch enables the motion-model-directed background prefetcher:
	// Advise warms the next tile in the travel direction off the read path.
	Prefetch bool
	// Open, when non-nil, replaces os.Open for reading shard files — the
	// seam chaos tests inject I/O faults through
	// (faultinject.Injector.OpenFile satisfies it). It receives the full
	// shard path.
	Open func(path string) (io.ReadCloser, error)
}

// ShardStore is the tiled on-disk prior-map store: a directory of ADM1
// shard files (see WriteShards) paged through a byte-budgeted LRU cache,
// plus an in-memory overlay that absorbs runtime map updates. It implements
// MapStore; reads stitch across tile boundaries and merge the overlay so
// results are bit-identical to the equivalent monolithic PriorMap.
//
// All methods are safe for concurrent use. Tile loads happen under the
// store lock, so concurrent readers serialize on a cache miss — the load
// latency they observe is exactly what the mapstore/load_ms distribution
// records.
type ShardStore struct {
	dir    string
	idx    ShardIndex
	budget int64
	open   func(path string) (io.ReadCloser, error)

	mu            sync.Mutex
	resident      map[int]*residentTile // index-position → cache entry
	lru           *list.List            // front = most recently used
	residentBytes int64
	err           error // first I/O error; kept as a sticky record for Err
	closed        bool

	overlay *PriorMap // runtime Adds; never written back to shards

	// Fleet contention bookkeeping: each advised vehicle protects its
	// {current, next} tiles from eviction, so one vehicle's relocalization
	// Scan cannot thrash another vehicle's working set out of the cache.
	protRef      map[int]int   // tile position → protecting-vehicle count
	vehicleTiles map[int][]int // vehicle ID → protected tile positions

	hits, misses, prefetches, evictions, ioErrors *telemetry.Counter
	residentGauge                                 *telemetry.Gauge
	loadMS                                        *telemetry.Dist

	prefetchCh chan int
	prefetchWG sync.WaitGroup
}

type residentTile struct {
	pos  int // position in idx.Tiles
	kfs  []Keyframe
	mem  int64
	elem *list.Element
}

// OpenShardStore opens a shard directory written by WriteShards.
func OpenShardStore(dir string, opts ShardStoreOptions) (*ShardStore, error) {
	idx, err := ReadShardIndex(dir)
	if err != nil {
		return nil, err
	}
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry(0)
	}
	open := opts.Open
	if open == nil {
		open = func(path string) (io.ReadCloser, error) { return os.Open(path) }
	}
	s := &ShardStore{
		dir:           dir,
		idx:           *idx,
		budget:        opts.CacheBudget,
		open:          open,
		resident:      make(map[int]*residentTile),
		lru:           list.New(),
		overlay:       &PriorMap{nextID: idx.MaxID},
		protRef:       make(map[int]int),
		vehicleTiles:  make(map[int][]int),
		hits:          reg.Counter("mapstore/hits"),
		misses:        reg.Counter("mapstore/misses"),
		prefetches:    reg.Counter("mapstore/prefetches"),
		evictions:     reg.Counter("mapstore/evictions"),
		ioErrors:      reg.Counter("mapstore/io_errors"),
		residentGauge: reg.Gauge("mapstore/resident_bytes"),
		loadMS:        reg.Dist("mapstore/load_ms"),
	}
	if opts.Prefetch {
		s.prefetchCh = make(chan int, 4)
		s.prefetchWG.Add(1)
		go s.prefetchLoop()
	}
	return s, nil
}

// Index returns a copy of the store's shard index.
func (s *ShardStore) Index() ShardIndex { return s.idx }

// Err returns the first I/O error the store has hit — a sticky record, not
// a gate: load failures are transient (the read that hit the error
// degrades to whatever is resident plus the overlay, and later accesses
// retry the tile). Callers that need hard guarantees should check Err
// after a replay; the mapstore/io_errors counter tallies every failure.
func (s *ShardStore) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close stops the background prefetcher and returns Err. The store must
// not be used after Close.
func (s *ShardStore) Close() error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if !alreadyClosed && s.prefetchCh != nil {
		close(s.prefetchCh)
		s.prefetchWG.Wait()
	}
	return s.Err()
}

// Len reports stored plus runtime-added keyframes.
func (s *ShardStore) Len() int { return s.idx.Keyframes + s.overlay.Len() }

// StorageBytes reports the resident footprint: cached tiles plus the
// runtime overlay. This is the number the cache budget bounds (up to one
// tile of slack), not the total map size — bounding it is the point.
func (s *ShardStore) StorageBytes() int64 {
	s.mu.Lock()
	resident := s.residentBytes
	s.mu.Unlock()
	return resident + s.overlay.StorageBytes()
}

// Add inserts a runtime keyframe into the in-memory overlay (shard files
// are immutable survey data). IDs continue past the largest stored ID, so
// they match what the monolithic map would have assigned.
func (s *ShardStore) Add(pose scene.Pose, kps []Keypoint, descs []Descriptor) int {
	return s.overlay.Add(pose, kps, descs)
}

// getTileLocked returns tile pos's keyframes through the LRU cache; the
// caller holds s.mu. prefetch marks cache-warming loads so they are counted
// apart from demand misses.
func (s *ShardStore) getTileLocked(pos int, prefetch bool) []Keyframe {
	if rt := s.resident[pos]; rt != nil {
		if !prefetch {
			s.hits.Inc()
		}
		s.lru.MoveToFront(rt.elem)
		return rt.kfs
	}
	if prefetch {
		s.prefetches.Inc()
	} else {
		s.misses.Inc()
	}
	start := time.Now()
	kfs, err := s.loadTile(pos)
	if err != nil {
		// Transient degradation, not a brick: record the first error (Err
		// stays a sticky record), count it, and leave the tile loadable —
		// the next access over this range retries, so a flaky disk costs
		// coverage on the affected reads only.
		if s.err == nil {
			s.err = err
		}
		s.ioErrors.Inc()
		return nil
	}
	s.loadMS.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	rt := &residentTile{pos: pos, kfs: kfs, mem: storageBytes(kfs)}
	rt.elem = s.lru.PushFront(rt)
	s.resident[pos] = rt
	s.residentBytes += rt.mem
	for s.budget > 0 && s.residentBytes > s.budget && s.lru.Len() > 1 {
		victim := s.evictionVictimLocked()
		s.lru.Remove(victim.elem)
		delete(s.resident, victim.pos)
		s.residentBytes -= victim.mem
		s.evictions.Inc()
	}
	s.residentGauge.Set(float64(s.residentBytes))
	return kfs
}

// evictionVictimLocked picks the least-recently-used resident tile not
// protected by any vehicle's advised window. When every eviction candidate
// is protected, the raw LRU tail is evicted anyway: the byte budget is a
// hard bound, and contention awareness only reorders victims within it.
func (s *ShardStore) evictionVictimLocked() *residentTile {
	for e := s.lru.Back(); e != nil && e != s.lru.Front(); e = e.Prev() {
		rt := e.Value.(*residentTile)
		if s.protRef[rt.pos] == 0 {
			return rt
		}
	}
	return s.lru.Back().Value.(*residentTile)
}

func (s *ShardStore) loadTile(pos int) ([]Keyframe, error) {
	name := s.idx.Tiles[pos].File
	f, err := s.open(filepath.Join(s.dir, name))
	if err != nil {
		return nil, fmt.Errorf("slam: opening shard %s: %w", name, err)
	}
	defer f.Close()
	tm, err := ReadPriorMap(f)
	if err != nil {
		return nil, fmt.Errorf("slam: reading shard %s: %w", name, err)
	}
	return tm.keyframes, nil // freshly decoded: no other references exist
}

// Candidates returns the keyframes within ±window meters of z in
// ascending-Z order, stitched across every overlapping tile and merged with
// the runtime overlay. The result is a snapshot the caller owns.
func (s *ShardStore) Candidates(z, window float64) []Keyframe {
	lo, hi := z-window, z+window
	var stored []Keyframe
	s.mu.Lock()
	for pos := range s.idx.Tiles {
		t := &s.idx.Tiles[pos]
		if t.ZMax < lo {
			continue
		}
		if t.ZMin > hi {
			break
		}
		kfs := s.getTileLocked(pos, false)
		a := sort.Search(len(kfs), func(j int) bool { return kfs[j].Pose.Z >= lo })
		b := sort.Search(len(kfs), func(j int) bool { return kfs[j].Pose.Z > hi })
		stored = append(stored, kfs[a:b]...)
	}
	s.mu.Unlock()
	return mergeByZ(s.overlay.Candidates(z, window), stored)
}

// mergeByZ merges two ascending-Z snapshots; on equal Z, entries from a
// precede entries from b — matching PriorMap.insert, which places newer
// keyframes before equal-Z existing ones.
func mergeByZ(a, b []Keyframe) []Keyframe {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]Keyframe, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Pose.Z <= b[j].Pose.Z {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// NearestZ returns the keyframe closest to z across shards and overlay.
// Only the (at most two) tiles that can contain the nearest stored
// keyframe are consulted, so a NearestZ never faults in more than two
// tiles. Ties prefer the lower-Z neighbor, as PriorMap.NearestZ does.
func (s *ShardStore) NearestZ(z float64) (Keyframe, bool) {
	var best Keyframe
	have := false
	consider := func(kf Keyframe) {
		if !have || nearerZ(kf, best, z) {
			best, have = kf, true
		}
	}
	s.mu.Lock()
	// Tiles are disjoint and ascending: the nearest stored keyframe lives
	// in the last tile starting at-or-below z or the first one above it.
	i := sort.Search(len(s.idx.Tiles), func(j int) bool { return s.idx.Tiles[j].ZMin > z })
	for _, pos := range []int{i - 1, i} {
		if pos < 0 || pos >= len(s.idx.Tiles) {
			continue
		}
		kfs := s.getTileLocked(pos, false)
		k := sort.Search(len(kfs), func(j int) bool { return kfs[j].Pose.Z >= z })
		for _, c := range []int{k - 1, k} {
			if c >= 0 && c < len(kfs) {
				consider(kfs[c])
			}
		}
	}
	s.mu.Unlock()
	if kf, ok := s.overlay.NearestZ(z); ok {
		consider(kf)
	}
	return best, have
}

// nearerZ reports whether a is a better nearest-to-z candidate than b:
// strictly nearer, or equally near with lower Z.
func nearerZ(a, b Keyframe, z float64) bool {
	da, db := abs(a.Pose.Z-z), abs(b.Pose.Z-z)
	if da != db {
		return da < db
	}
	return a.Pose.Z < b.Pose.Z
}

// Scan streams every keyframe in ascending-Z order, paging tiles through
// the cache one at a time (evicting per the budget as it goes) and merging
// the overlay — the relocalization worst case now runs in bounded memory.
// fn runs without the store lock held, so concurrent reads proceed between
// tiles; overlay keyframes added after Scan starts are not observed.
func (s *ShardStore) Scan(fn func(Keyframe) bool) {
	ov := s.overlay.All()
	oi := 0
	for pos := range s.idx.Tiles {
		s.mu.Lock()
		kfs := s.getTileLocked(pos, false)
		s.mu.Unlock()
		for _, kf := range kfs {
			for oi < len(ov) && ov[oi].Pose.Z <= kf.Pose.Z {
				if !fn(ov[oi]) {
					return
				}
				oi++
			}
			if !fn(kf) {
				return
			}
		}
	}
	for ; oi < len(ov); oi++ {
		if !fn(ov[oi]) {
			return
		}
	}
}

// Advise hints the store with the motion model's position and velocity; the
// background prefetcher (when enabled) warms the next tile in the travel
// direction so crossing a tile boundary does not take a demand miss. Advise
// never blocks: hints are dropped when the prefetcher is busy.
func (s *ShardStore) Advise(z, velocity float64) {
	if s.prefetchCh == nil {
		return
	}
	ahead := tileOf(z, s.idx.TilePitch)
	var pos int
	if velocity >= 0 {
		ahead++
		pos = sort.Search(len(s.idx.Tiles), func(j int) bool { return s.idx.Tiles[j].Tile >= ahead })
		if pos >= len(s.idx.Tiles) {
			return
		}
	} else {
		ahead--
		pos = sort.Search(len(s.idx.Tiles), func(j int) bool { return s.idx.Tiles[j].Tile > ahead }) - 1
		if pos < 0 {
			return
		}
	}
	s.mu.Lock()
	if !s.closed {
		if _, ok := s.resident[pos]; !ok {
			select {
			case s.prefetchCh <- pos:
			default: // prefetcher busy; the hint will recur next frame
			}
		}
	}
	s.mu.Unlock()
}

// AdviseVehicle is Advise for one vehicle of a fleet sharing the store: in
// addition to the prefetch hint, it marks the vehicle's current tile and the
// next tile in its travel direction as protected, steering LRU eviction away
// from every advised vehicle's working set (see evictionVictimLocked).
// Vehicle IDs are caller-assigned; re-advising moves the protection window.
func (s *ShardStore) AdviseVehicle(id int, z, velocity float64) {
	tile := tileOf(z, s.idx.TilePitch)
	ahead := tile + 1
	if velocity < 0 {
		ahead = tile - 1
	}
	cur := s.tilePos(tile)
	next := s.tilePos(ahead)

	s.mu.Lock()
	if !s.closed {
		for _, pos := range s.vehicleTiles[id] {
			if s.protRef[pos]--; s.protRef[pos] <= 0 {
				delete(s.protRef, pos)
			}
		}
		prot := s.vehicleTiles[id][:0]
		for _, pos := range [2]int{cur, next} {
			if pos >= 0 {
				prot = append(prot, pos)
				s.protRef[pos]++
			}
		}
		s.vehicleTiles[id] = prot

		if s.prefetchCh != nil && next >= 0 {
			if _, ok := s.resident[next]; !ok {
				select {
				case s.prefetchCh <- next:
				default: // prefetcher busy; the hint will recur next frame
				}
			}
		}
	}
	s.mu.Unlock()
}

// ReleaseVehicle drops vehicle id's eviction protections — the teardown half
// of AdviseVehicle, called when a fleet vehicle leaves the shared store so
// its last advised tiles stop pinning cache entries forever. Idempotent;
// unknown IDs are a no-op.
func (s *ShardStore) ReleaseVehicle(id int) {
	s.mu.Lock()
	for _, pos := range s.vehicleTiles[id] {
		if s.protRef[pos]--; s.protRef[pos] <= 0 {
			delete(s.protRef, pos)
		}
	}
	delete(s.vehicleTiles, id)
	s.mu.Unlock()
}

// tilePos maps a tile number to its position in idx.Tiles, -1 when the tile
// does not exist (sparse surveys skip empty tiles).
func (s *ShardStore) tilePos(tile int) int {
	pos := sort.Search(len(s.idx.Tiles), func(j int) bool { return s.idx.Tiles[j].Tile >= tile })
	if pos < len(s.idx.Tiles) && s.idx.Tiles[pos].Tile == tile {
		return pos
	}
	return -1
}

func (s *ShardStore) prefetchLoop() {
	defer s.prefetchWG.Done()
	for pos := range s.prefetchCh {
		s.mu.Lock()
		s.getTileLocked(pos, true)
		s.mu.Unlock()
	}
}

// CacheStats is a point-in-time snapshot of the shard cache counters.
type CacheStats struct {
	Hits, Misses, Prefetches, Evictions int64
	// IOErrors counts failed tile loads (each one a degraded read that a
	// later access retries).
	IOErrors      int64
	ResidentBytes int64
	ResidentTiles int
}

// CacheStats snapshots the cache counters (also exported via the telemetry
// registry passed at open).
func (s *ShardStore) CacheStats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CacheStats{
		Hits:          s.hits.Value(),
		Misses:        s.misses.Value(),
		Prefetches:    s.prefetches.Value(),
		Evictions:     s.evictions.Value(),
		IOErrors:      s.ioErrors.Value(),
		ResidentBytes: s.residentBytes,
		ResidentTiles: s.lru.Len(),
	}
}
