package slam

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// A sharded prior map is a directory of ADM1 tile files plus a small JSON
// index of their Z-ranges:
//
//	mapdir/
//	  index.json       tile pitch, per-tile Z ranges and sizes
//	  tile-000007.adm  keyframes with floor(Z/pitch) == 7, ADM1 format
//	  tile-000008.adm  ...
//
// Each tile is itself a valid ADM1 map file (admap -info works on it), so
// the shard workflow reuses the exact serialization the storage numbers are
// about. Tiles cover fixed-length longitudinal intervals; only non-empty
// tiles are written, so sparse coverage costs nothing.

// ShardIndexFile is the index filename inside a shard directory.
const ShardIndexFile = "index.json"

// DefaultTilePitch is the default longitudinal tile length in meters.
const DefaultTilePitch = 64.0

// TileInfo describes one shard file in the index.
type TileInfo struct {
	File      string  `json:"file"`
	Tile      int     `json:"tile"` // floor(Z / pitch)
	ZMin      float64 `json:"zmin_m"`
	ZMax      float64 `json:"zmax_m"`
	Keyframes int     `json:"keyframes"`
	Bytes     int64   `json:"bytes"`     // serialized size on disk
	MemBytes  int64   `json:"mem_bytes"` // resident-footprint estimate when cached
}

// ShardIndex is a shard directory's table of contents.
type ShardIndex struct {
	Version   int        `json:"version"`
	TilePitch float64    `json:"tile_pitch_m"`
	Keyframes int        `json:"keyframes"`
	MaxID     int        `json:"max_id"` // seeds runtime-add IDs past stored ones
	Bytes     int64      `json:"bytes"`  // total serialized tile bytes
	Tiles     []TileInfo `json:"tiles"`  // ascending Tile order
}

// tileOf maps a longitudinal position to its tile number.
func tileOf(z, pitch float64) int { return int(math.Floor(z / pitch)) }

// WriteShards splits m into fixed-pitch longitudinal tiles under dir and
// writes the index, returning it. pitch ≤ 0 selects DefaultTilePitch. The
// directory is created if needed; an existing index and tiles are
// overwritten.
func WriteShards(m *PriorMap, dir string, pitch float64) (*ShardIndex, error) {
	if pitch <= 0 {
		pitch = DefaultTilePitch
	}
	kfs := m.All()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("slam: creating shard dir: %w", err)
	}
	idx := &ShardIndex{Version: 1, TilePitch: pitch, Keyframes: len(kfs)}
	for start := 0; start < len(kfs); {
		tile := tileOf(kfs[start].Pose.Z, pitch)
		end := start + 1
		for end < len(kfs) && tileOf(kfs[end].Pose.Z, pitch) == tile {
			end++
		}
		group := kfs[start:end]
		// Wrap the already-sorted group directly (not via insert) so the
		// within-tile order is exactly the monolithic order — candidate
		// ordering is what makes sharded reads bit-identical.
		tm := &PriorMap{keyframes: group}
		name := fmt.Sprintf("tile-%06d.adm", tile)
		n, err := writeTileFile(filepath.Join(dir, name), tm)
		if err != nil {
			return nil, err
		}
		for _, kf := range group {
			if kf.ID > idx.MaxID {
				idx.MaxID = kf.ID
			}
		}
		idx.Bytes += n
		idx.Tiles = append(idx.Tiles, TileInfo{
			File:      name,
			Tile:      tile,
			ZMin:      group[0].Pose.Z,
			ZMax:      group[len(group)-1].Pose.Z,
			Keyframes: len(group),
			Bytes:     n,
			MemBytes:  storageBytes(group),
		})
		start = end
	}
	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, ShardIndexFile), append(data, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("slam: writing shard index: %w", err)
	}
	return idx, nil
}

func writeTileFile(path string, tm *PriorMap) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("slam: creating shard: %w", err)
	}
	n, err := tm.WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return n, fmt.Errorf("slam: writing shard %s: %w", filepath.Base(path), err)
	}
	return n, nil
}

// ReadShardIndex loads and validates a shard directory's index.
func ReadShardIndex(dir string) (*ShardIndex, error) {
	data, err := os.ReadFile(filepath.Join(dir, ShardIndexFile))
	if err != nil {
		return nil, fmt.Errorf("slam: reading shard index: %w", err)
	}
	var idx ShardIndex
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, fmt.Errorf("slam: parsing shard index: %w", err)
	}
	if idx.Version != 1 {
		return nil, fmt.Errorf("slam: unsupported shard index version %d", idx.Version)
	}
	if idx.TilePitch <= 0 {
		return nil, fmt.Errorf("slam: shard index tile pitch %v must be positive", idx.TilePitch)
	}
	total := 0
	for i, t := range idx.Tiles {
		// A hostile index must not escape the shard directory.
		if t.File == "" || t.File != filepath.Base(t.File) || strings.HasPrefix(t.File, ".") {
			return nil, fmt.Errorf("slam: shard index entry %d has invalid file %q", i, t.File)
		}
		if i > 0 && t.Tile <= idx.Tiles[i-1].Tile {
			return nil, fmt.Errorf("slam: shard index tiles not in ascending order at entry %d", i)
		}
		if t.ZMax < t.ZMin || t.Keyframes <= 0 {
			return nil, fmt.Errorf("slam: shard index entry %d is inconsistent", i)
		}
		total += t.Keyframes
	}
	if total != idx.Keyframes {
		return nil, fmt.Errorf("slam: shard index keyframe total %d != sum of tiles %d", idx.Keyframes, total)
	}
	return &idx, nil
}
