// Package slam implements the localization engine (LOC) of the pipeline —
// the paper's ORB-SLAM stage. It contains the full front-end the paper's
// FPGA/ASIC sections accelerate (oFAST feature detection and rBRIEF
// descriptor extraction), a prior-map keyframe database, motion-model
// tracking, relocalization on tracking loss, local map update and periodic
// loop closing.
//
// The paper's key performance observation about LOC — large latency
// variability caused by relocalization's wider map search, which is why tail
// latency must be the evaluation metric — is reproduced behaviourally: a
// lost tracker really does search a strictly larger candidate set here.
package slam

import (
	"math"

	"adsim/internal/img"
)

// circleOffsets16 is the Bresenham circle of radius 3 used by FAST: 16
// (dx,dy) offsets in clockwise order starting from (0,-3).
var circleOffsets16 = [16][2]int{
	{0, -3}, {1, -3}, {2, -2}, {3, -1},
	{3, 0}, {3, 1}, {2, 2}, {1, 3},
	{0, 3}, {-1, 3}, {-2, 2}, {-3, 1},
	{-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}

// Keypoint is one detected oFAST feature.
type Keypoint struct {
	X, Y  int
	Score int     // corner response used for non-maximum suppression
	Angle float64 // orientation from the intensity centroid, radians
	Level int     // pyramid level the feature was detected at (0 = full res)
}

// FASTConfig parameterizes the oFAST detector.
type FASTConfig struct {
	// Threshold is the minimum absolute intensity difference for a circle
	// pixel to count as brighter/darker than the center.
	Threshold int
	// ContigMin is the required run of contiguous circle pixels (FAST-9
	// uses 9).
	ContigMin int
	// MaxFeatures caps the number of keypoints returned (strongest first);
	// 0 means unlimited.
	MaxFeatures int
	// Border excludes keypoints within this many pixels of the frame edge
	// so the descriptor patch always fits. Must be >= PatchRadius+1.
	Border int
}

// DefaultFASTConfig returns the standard oFAST configuration (FAST-9-16
// with threshold 20, ORB-style).
func DefaultFASTConfig() FASTConfig {
	return FASTConfig{Threshold: 20, ContigMin: 9, MaxFeatures: 500, Border: 16}
}

// DetectFAST runs the oFAST detector: FAST-9 segment-test corners with a
// 3×3 non-maximum suppression, each keypoint assigned an intensity-centroid
// orientation. Keypoints are returned strongest first.
func DetectFAST(im *img.Gray, cfg FASTConfig) []Keypoint {
	return detectFAST(im, cfg, nil)
}

// detectFAST is DetectFAST with an optional reusable score buffer (the
// returned keypoints are always freshly allocated — callers retain them
// across frames, so they must not alias scratch memory).
func detectFAST(im *img.Gray, cfg FASTConfig, scratch []int) []Keypoint {
	if cfg.ContigMin <= 0 || cfg.ContigMin > 16 {
		cfg.ContigMin = 9
	}
	if cfg.Border < 4 {
		cfg.Border = 4
	}
	w, h := im.W, im.H
	scores := scratch
	if cap(scores) < w*h {
		scores = make([]int, w*h)
	} else {
		scores = scores[:w*h]
		for i := range scores {
			scores[i] = 0
		}
	}

	for y := cfg.Border; y < h-cfg.Border; y++ {
		row := y * w
		for x := cfg.Border; x < w-cfg.Border; x++ {
			// Compass pre-test: any contiguous run of >= 9 among the 16
			// circle positions must include one of {0,8} (top/bottom) AND
			// one of {4,12} (right/left) — each pair is 8 apart, and 9
			// consecutive positions always span one of each. Checking those
			// four pixels first rejects the overwhelmingly common flat case
			// with 4 loads instead of 16; it is a pure necessary condition,
			// so surviving candidates produce bitwise-identical scores.
			if cfg.ContigMin >= 9 {
				c := int(im.Pix[row+x])
				t := cfg.Threshold
				d0 := int(im.Pix[row-3*w+x]) - c
				d8 := int(im.Pix[row+3*w+x]) - c
				d4 := int(im.Pix[row+x+3]) - c
				d12 := int(im.Pix[row+x-3]) - c
				bright := (d0 > t || d8 > t) && (d4 > t || d12 > t)
				dark := (d0 < -t || d8 < -t) && (d4 < -t || d12 < -t)
				if !bright && !dark {
					continue
				}
			}
			s := fastScore(im, x, y, cfg.Threshold, cfg.ContigMin)
			if s > 0 {
				scores[row+x] = s
			}
		}
	}

	// 3×3 non-maximum suppression.
	var kps []Keypoint
	for y := cfg.Border; y < h-cfg.Border; y++ {
		for x := cfg.Border; x < w-cfg.Border; x++ {
			s := scores[y*w+x]
			if s == 0 {
				continue
			}
			isMax := true
			for dy := -1; dy <= 1 && isMax; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					n := scores[(y+dy)*w+(x+dx)]
					if n > s || (n == s && (dy < 0 || (dy == 0 && dx < 0))) {
						isMax = false
						break
					}
				}
			}
			if isMax {
				kps = append(kps, Keypoint{X: x, Y: y, Score: s})
			}
		}
	}

	// Strongest first; deterministic order for equal scores.
	sortKeypoints(kps)
	if cfg.MaxFeatures > 0 && len(kps) > cfg.MaxFeatures {
		kps = kps[:cfg.MaxFeatures]
	}

	// Orientation assignment (the "o" in oFAST): intensity centroid over a
	// radius-7 disc.
	for i := range kps {
		kps[i].Angle = orientation(im, kps[i].X, kps[i].Y, 7)
	}
	return kps
}

// fastScore runs the FAST segment test at (x,y) and returns a corner score
// (sum of absolute differences of the qualifying arc) or 0 if not a corner.
func fastScore(im *img.Gray, x, y, threshold, contigMin int) int {
	c := int(im.Pix[y*im.W+x])
	var bright, dark uint32 // bitmasks over the 16 circle positions
	var diffs [16]int
	for i, off := range circleOffsets16 {
		p := int(im.Pix[(y+off[1])*im.W+(x+off[0])])
		d := p - c
		diffs[i] = d
		if d > threshold {
			bright |= 1 << uint(i)
		} else if d < -threshold {
			dark |= 1 << uint(i)
		}
	}
	if !hasContigRun(bright, contigMin) && !hasContigRun(dark, contigMin) {
		return 0
	}
	score := 0
	for _, d := range diffs {
		if d < 0 {
			d = -d
		}
		if d > threshold {
			score += d - threshold
		}
	}
	return score
}

// hasContigRun reports whether the 16-bit circular mask contains a run of at
// least n consecutive set bits (with wraparound).
func hasContigRun(mask uint32, n int) bool {
	if mask == 0 {
		return false
	}
	// Duplicate the 16-bit pattern to handle wraparound runs, then collapse
	// runs with the shift-and-AND doubling trick: after ANDing with the
	// pattern shifted by k, a set bit proves a run of k+1 ending there.
	// log(n) word ops replace the old 32-iteration bit scan.
	ext := uint64(mask) | uint64(mask)<<16
	remaining := n - 1
	shift := 1
	for remaining > 0 && ext != 0 {
		s := shift
		if s > remaining {
			s = remaining
		}
		ext &= ext << uint(s)
		remaining -= s
		shift *= 2
	}
	return ext != 0
}

// orientation computes the intensity-centroid angle atan2(m01, m10) over a
// disc of the given radius, as ORB does (rotation-invariant descriptors).
func orientation(im *img.Gray, x, y, radius int) float64 {
	var m01, m10 int64
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			if dx*dx+dy*dy > radius*radius {
				continue
			}
			v := int64(im.At(x+dx, y+dy))
			m10 += int64(dx) * v
			m01 += int64(dy) * v
		}
	}
	return math.Atan2(float64(m01), float64(m10))
}

// sortKeypoints orders keypoints by descending score, breaking ties by
// (y,x) for determinism. Insertion-based since lists are short post-NMS;
// switched to a simple quicksort via sort-like shell for larger sets.
func sortKeypoints(kps []Keypoint) {
	// Shell sort: in-place, deterministic, adequate for a few thousand kps.
	n := len(kps)
	for gap := n / 2; gap > 0; gap /= 2 {
		for i := gap; i < n; i++ {
			k := kps[i]
			j := i
			for ; j >= gap && kpLess(k, kps[j-gap]); j -= gap {
				kps[j] = kps[j-gap]
			}
			kps[j] = k
		}
	}
}

func kpLess(a, b Keypoint) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.X < b.X
}
