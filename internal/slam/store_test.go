package slam

import (
	"bytes"
	"sync"
	"testing"

	"adsim/internal/scene"
	"adsim/internal/telemetry"
)

// buildWorld surveys an urban scenario into a prior map and round-trips it
// through the ADM1 serializer, so comparisons between the monolithic map
// and a shard directory built from it share the same serialization
// rounding. It returns the map and the scene config for replays.
func buildWorld(t testing.TB, frames int) (*PriorMap, scene.Config) {
	t.Helper()
	cfg := scene.DefaultConfig(scene.Urban)
	cfg.Width, cfg.Height = 512, 256
	gen, err := scene.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(DefaultConfig(), NewPriorMap())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		f := gen.Step()
		eng.Survey(f.Image, f.EgoPose)
	}
	var buf bytes.Buffer
	if _, err := eng.Map().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	mono, err := ReadPriorMap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mono.Len() < 4 {
		t.Fatalf("survey built only %d keyframes", mono.Len())
	}
	return mono, cfg
}

func openTestStore(t testing.TB, mono *PriorMap, pitch float64, opts ShardStoreOptions) *ShardStore {
	t.Helper()
	dir := t.TempDir()
	if _, err := WriteShards(mono, dir, pitch); err != nil {
		t.Fatal(err)
	}
	store, err := OpenShardStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := store.Close(); err != nil {
			t.Errorf("store error after test: %v", err)
		}
	})
	return store
}

// The acceptance bar: with a cache budget well below the map size, a
// sharded-store replay must deliver bit-identical estimates to the
// monolithic map — across tile boundaries, through cold-start
// relocalization, runtime map updates, loop-close scans and prefetch —
// while the telemetry shows the cache actually churning.
func TestShardedReplayBitIdentical(t *testing.T) {
	mono, cfg := buildWorld(t, 60)
	reg := telemetry.NewRegistry(0)
	store := openTestStore(t, mono, 8, ShardStoreOptions{
		CacheBudget: mono.StorageBytes() / 4,
		Telemetry:   reg,
		Prefetch:    true,
	})
	if store.Len() != mono.Len() {
		t.Fatalf("store has %d keyframes, monolithic %d", store.Len(), mono.Len())
	}

	engMono, err := NewEngine(DefaultConfig(), mono)
	if err != nil {
		t.Fatal(err)
	}
	engShard, err := NewEngineStore(DefaultConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	genA, err := scene.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	genB, err := scene.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		fa, fb := genA.Step(), genB.Step()
		ea := engMono.Localize(fa.Image)
		eb := engShard.Localize(fb.Image)
		if ea != eb {
			t.Fatalf("frame %d diverged:\nmonolithic %+v\nsharded    %+v", i, ea, eb)
		}
	}
	if engMono.Relocalizations() != engShard.Relocalizations() ||
		engMono.LoopClosures() != engShard.LoopClosures() ||
		engMono.MapUpdates() != engShard.MapUpdates() {
		t.Errorf("engine counters diverged: reloc %d/%d loop %d/%d updates %d/%d",
			engMono.Relocalizations(), engShard.Relocalizations(),
			engMono.LoopClosures(), engShard.LoopClosures(),
			engMono.MapUpdates(), engShard.MapUpdates())
	}
	if mono.Len() != store.Len() {
		t.Errorf("runtime map updates diverged: %d vs %d keyframes", mono.Len(), store.Len())
	}
	if err := store.Err(); err != nil {
		t.Fatal(err)
	}

	stats := store.CacheStats()
	if stats.Evictions == 0 {
		t.Errorf("no evictions under a quarter-size budget: %+v", stats)
	}
	if stats.Misses == 0 || stats.Hits == 0 {
		t.Errorf("cache never exercised: %+v", stats)
	}
	if reg.Counter("mapstore/evictions").Value() != stats.Evictions {
		t.Error("CacheStats disagrees with the telemetry registry")
	}
	if got := reg.Dist("mapstore/load_ms").Snapshot(); got.N != stats.Misses+stats.Prefetches {
		t.Errorf("load-latency samples %d, want %d loads", got.N, stats.Misses+stats.Prefetches)
	}
}

// Every read of the sharded store must agree with the monolithic map —
// including windows straddling tile boundaries and queries after runtime
// Adds land in the overlay.
func TestShardStoreMatchesMonolithicQueries(t *testing.T) {
	mono, _ := buildWorld(t, 50)
	store := openTestStore(t, mono, 8, ShardStoreOptions{CacheBudget: 1}) // thrash: one tile resident

	all := mono.All()
	maxZ := all[len(all)-1].Pose.Z

	compare := func(label string) {
		t.Helper()
		for z := -5.0; z < maxZ+5; z += 1.3 {
			for _, w := range []float64{0.5, 3, 9, 1e9} {
				a, b := mono.Candidates(z, w), store.Candidates(z, w)
				if len(a) != len(b) {
					t.Fatalf("%s: Candidates(%v,%v): %d vs %d keyframes", label, z, w, len(a), len(b))
				}
				for i := range a {
					if a[i].ID != b[i].ID || a[i].Pose != b[i].Pose {
						t.Fatalf("%s: Candidates(%v,%v)[%d]: %+v vs %+v", label, z, w, i, a[i], b[i])
					}
				}
			}
			na, oka := mono.NearestZ(z)
			nb, okb := store.NearestZ(z)
			if oka != okb || na.ID != nb.ID {
				t.Fatalf("%s: NearestZ(%v): (%d,%v) vs (%d,%v)", label, z, na.ID, oka, nb.ID, okb)
			}
		}
		var a, b []int
		mono.Scan(func(kf Keyframe) bool { a = append(a, kf.ID); return true })
		store.Scan(func(kf Keyframe) bool { b = append(b, kf.ID); return true })
		if len(a) != len(b) {
			t.Fatalf("%s: Scan lengths %d vs %d", label, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: Scan order diverges at %d: id %d vs %d", label, i, a[i], b[i])
			}
		}
	}
	compare("stored")

	// Runtime adds go to the overlay; IDs and merge order must still match.
	for _, z := range []float64{-2, maxZ / 2, maxZ + 3} {
		kps := []Keypoint{{X: 1, Y: 2}}
		descs := make([]Descriptor, 1)
		if ida, idb := mono.Add(scene.Pose{Z: z}, kps, descs), store.Add(scene.Pose{Z: z}, kps, descs); ida != idb {
			t.Fatalf("Add at z=%v assigned id %d monolithic, %d sharded", z, ida, idb)
		}
	}
	compare("with overlay")

	if stats := store.CacheStats(); stats.Evictions == 0 || stats.ResidentTiles != 1 {
		t.Errorf("1-byte budget should thrash down to one resident tile: %+v", stats)
	}
}

// Satellite-bug regression: Candidates and All used to return live
// sub-slices of the map's backing array, which insert() shifts — a retained
// result was silently corrupted by the runtime map-update path.
func TestCandidatesSnapshotStable(t *testing.T) {
	m := NewPriorMap()
	for i := 0; i < 8; i++ {
		m.Add(scene.Pose{Z: float64(10 + i)}, []Keypoint{{X: i}}, make([]Descriptor, 1))
	}
	cands := m.Candidates(13, 4)
	all := m.All()
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	wantCands := append([]Keyframe(nil), cands...)
	wantAll := append([]Keyframe(nil), all...)

	// Insert below the retained window: this shifts the backing array that
	// the old live sub-slices aliased.
	for i := 0; i < 8; i++ {
		m.Add(scene.Pose{Z: float64(i)}, []Keypoint{{X: 100 + i}}, make([]Descriptor, 1))
	}
	for i := range wantCands {
		if cands[i].ID != wantCands[i].ID || cands[i].Pose != wantCands[i].Pose {
			t.Fatalf("retained Candidates slice corrupted at %d: %+v, want %+v", i, cands[i], wantCands[i])
		}
	}
	for i := range wantAll {
		if all[i].ID != wantAll[i].ID {
			t.Fatalf("retained All slice corrupted at %d", i)
		}
	}
}

// hammerStore drives concurrent reads (Candidates, NearestZ, Scan, and
// prefetch Advise where supported) against a writer calling Add. Run under
// -race via `make check`.
func hammerStore(t *testing.T, store MapStore) {
	t.Helper()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				z := float64((seed*31+i)%60) - 5
				if got := store.Candidates(z, 7); len(got) > store.Len() {
					t.Errorf("Candidates returned more keyframes than the store holds")
					return
				}
				store.NearestZ(z)
				if p, ok := store.(Prefetcher); ok {
					p.Advise(z, float64(seed%3-1))
				}
				if i%25 == 0 {
					n := 0
					store.Scan(func(Keyframe) bool { n++; return n < 100 })
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 80; i++ {
			store.Add(scene.Pose{Z: float64(i) * 0.7}, []Keypoint{{X: i, Y: i}}, make([]Descriptor, 1))
		}
	}()
	wg.Wait()
}

func TestConcurrentStoreAccess(t *testing.T) {
	mono, _ := buildWorld(t, 40)
	t.Run("priormap", func(t *testing.T) {
		var buf bytes.Buffer
		if _, err := mono.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		m, err := ReadPriorMap(&buf)
		if err != nil {
			t.Fatal(err)
		}
		hammerStore(t, m)
	})
	t.Run("shardstore", func(t *testing.T) {
		store := openTestStore(t, mono, 8, ShardStoreOptions{
			CacheBudget: mono.StorageBytes() / 4,
			Prefetch:    true,
		})
		hammerStore(t, store)
		if err := store.Err(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestShardIndexValidation(t *testing.T) {
	mono, _ := buildWorld(t, 30)
	dir := t.TempDir()
	idx, err := WriteShards(mono, dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Tiles) < 2 {
		t.Fatalf("expected multiple tiles, got %d", len(idx.Tiles))
	}
	got, err := ReadShardIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Keyframes != mono.Len() || got.MaxID != idx.MaxID || len(got.Tiles) != len(idx.Tiles) {
		t.Errorf("index round trip mismatch: %+v vs %+v", got, idx)
	}
	var total int64
	for _, ti := range got.Tiles {
		total += ti.Bytes
	}
	if total != got.Bytes {
		t.Errorf("index bytes %d != sum of tiles %d", got.Bytes, total)
	}
	// The serialized density must be conserved by sharding (minus one map
	// header per extra tile) — sharding cannot change the storage story.
	overhead := int64(len(got.Tiles)-1) * serMapHeader
	if want := mono.SerializedBytes() + overhead; got.Bytes != want {
		t.Errorf("shard bytes %d, want monolithic %d + tile headers %d", got.Bytes, mono.SerializedBytes(), overhead)
	}

	if _, err := OpenShardStore(t.TempDir(), ShardStoreOptions{}); err == nil {
		t.Error("opening an empty directory should fail")
	}
}

// BenchmarkShardedReloc compares the cold-start (whole-map) relocalization
// latency of the monolithic map against the sharded store: warm cache,
// then a budget small enough that every reloc pages tiles from disk.
func BenchmarkShardedReloc(b *testing.B) {
	mono, cfg := buildWorld(b, 60)
	dir := b.TempDir()
	if _, err := WriteShards(mono, dir, 8); err != nil {
		b.Fatal(err)
	}
	gen, err := scene.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	frame := gen.Step().Image

	reloc := func(b *testing.B, store MapStore) {
		b.Helper()
		eng, err := NewEngineStore(DefaultConfig(), store)
		if err != nil {
			b.Fatal(err)
		}
		eng.Localize(frame) // cold start: full-map relocalization
	}
	b.Run("monolithic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reloc(b, mono)
		}
	})
	b.Run("sharded-warm", func(b *testing.B) {
		store, err := OpenShardStore(dir, ShardStoreOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer store.Close()
		reloc(b, store) // fault everything in before timing
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reloc(b, store)
		}
	})
	b.Run("sharded-tight-budget", func(b *testing.B) {
		store, err := OpenShardStore(dir, ShardStoreOptions{CacheBudget: mono.StorageBytes() / 8})
		if err != nil {
			b.Fatal(err)
		}
		defer store.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reloc(b, store)
		}
	})
}
