package slam

import "adsim/internal/scene"

// VehicleStore is one fleet vehicle's view of a prior-map store shared by N
// vehicles: reads stitch the shared base (which this vehicle never mutates)
// with a private overlay that absorbs the vehicle's own runtime map updates.
// Vehicles therefore localize against identical survey data without ever
// observing each other's keyframes — the property that makes a fleet run
// bit-identical to the same vehicle running alone against its own store.
//
// The merge semantics (overlay-before-stored on equal Z, nearest-Z ties to
// the lower neighbor, ascending-Z interleave on Scan) replicate ShardStore's
// overlay exactly, and overlay IDs continue past the base's largest stored
// ID, so assigned IDs match a solo run too.
//
// All methods are safe for concurrent use; the base must be too (PriorMap
// and ShardStore both are).
type VehicleStore struct {
	id      int
	base    MapStore
	overlay *PriorMap
}

// NewVehicleStore wraps base as vehicle id's private view. The id keys
// per-vehicle prefetch advice when the base is a ShardStore; any unique
// small integer per vehicle works.
func NewVehicleStore(id int, base MapStore) *VehicleStore {
	maxID := 0
	if ss, ok := base.(*ShardStore); ok {
		maxID = ss.idx.MaxID // avoid paging every tile just to find the max
	} else {
		base.Scan(func(kf Keyframe) bool {
			if kf.ID > maxID {
				maxID = kf.ID
			}
			return true
		})
	}
	return &VehicleStore{id: id, base: base, overlay: &PriorMap{nextID: maxID}}
}

// Vehicle returns the vehicle ID this view was built for.
func (vs *VehicleStore) Vehicle() int { return vs.id }

// Len reports shared plus vehicle-private keyframes.
func (vs *VehicleStore) Len() int { return vs.base.Len() + vs.overlay.Len() }

// StorageBytes reports the base's resident footprint plus this vehicle's
// overlay. When N vehicles share one base the base portion is shared memory,
// counted once per view.
func (vs *VehicleStore) StorageBytes() int64 {
	return vs.base.StorageBytes() + vs.overlay.StorageBytes()
}

// Add inserts a runtime keyframe into this vehicle's private overlay; the
// shared base is never written.
func (vs *VehicleStore) Add(pose scene.Pose, kps []Keypoint, descs []Descriptor) int {
	return vs.overlay.Add(pose, kps, descs)
}

// Candidates merges the base's window with this vehicle's overlay, private
// keyframes preceding shared ones on equal Z (the ShardStore overlay rule).
func (vs *VehicleStore) Candidates(z, window float64) []Keyframe {
	return mergeByZ(vs.overlay.Candidates(z, window), vs.base.Candidates(z, window))
}

// NearestZ returns the closest keyframe across base and overlay; the base's
// answer wins ties exactly as ShardStore's stored-before-overlay order does.
func (vs *VehicleStore) NearestZ(z float64) (Keyframe, bool) {
	best, have := vs.base.NearestZ(z)
	if kf, ok := vs.overlay.NearestZ(z); ok && (!have || nearerZ(kf, best, z)) {
		best, have = kf, true
	}
	return best, have
}

// Scan streams base and overlay keyframes interleaved in ascending-Z order,
// overlay entries first on equal Z. Overlay keyframes added after Scan
// starts are not observed (same snapshot rule as the base stores).
func (vs *VehicleStore) Scan(fn func(Keyframe) bool) {
	ov := vs.overlay.All()
	oi := 0
	stopped := false
	vs.base.Scan(func(kf Keyframe) bool {
		for oi < len(ov) && ov[oi].Pose.Z <= kf.Pose.Z {
			if !fn(ov[oi]) {
				stopped = true
				return false
			}
			oi++
		}
		if !fn(kf) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for ; oi < len(ov); oi++ {
		if !fn(ov[oi]) {
			return
		}
	}
}

// Advise forwards the motion-model hint to the base, tagged with this
// vehicle's ID when the base tracks per-vehicle contention (ShardStore);
// other prefetching bases get the plain hint.
func (vs *VehicleStore) Advise(z, velocity float64) {
	switch b := vs.base.(type) {
	case *ShardStore:
		b.AdviseVehicle(vs.id, z, velocity)
	case Prefetcher:
		b.Advise(z, velocity)
	}
}

// Release tears down this vehicle's footprint on the shared base: any
// eviction protections its Advise calls pinned are dropped so a removed
// fleet vehicle cannot wedge the shared cache's working set. The view
// itself stays readable (reads never required advice); Release is
// idempotent and safe concurrently with other vehicles' traffic.
func (vs *VehicleStore) Release() {
	if ss, ok := vs.base.(*ShardStore); ok {
		ss.ReleaseVehicle(vs.id)
	}
}

var (
	_ MapStore   = (*VehicleStore)(nil)
	_ Prefetcher = (*VehicleStore)(nil)
)
