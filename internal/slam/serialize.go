package slam

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"adsim/internal/scene"
)

// Prior-map serialization: a compact little-endian binary format so maps
// can be built offline (the paper's map-provider role), stored on-vehicle
// and loaded at startup. The format is what the storage-constraint numbers
// are about: keyframe poses, keypoints and 256-bit descriptors.
//
//	magic   uint32 'A','D','M','1'
//	count   uint32 keyframes
//	per keyframe:
//	  id        int32
//	  pose      3 × float64 (X, Z, Theta)
//	  nFeatures uint32
//	  per feature: x,y int16, level uint8, angle float32, desc 4×uint64
//
// Keypoint scores are not persisted: they only order detection, which has
// already happened.

const mapMagic = 0x4144_4D31 // "ADM1"

// Serialized sizes (bytes) of the format above.
const (
	serMapHeader      = 8  // magic + keyframe count
	serKeyframeHeader = 32 // id + pose + feature count
	serFeature        = 41 // x + y + level + angle + descriptor
)

// SerializedBytes reports the exact size WriteTo would encode the map to,
// without serializing it. This on-disk density is what the paper's storage
// constraint is about and is the basis both the storage experiment and
// admap use for the US-map extrapolation (StorageBytes is the in-memory
// estimate, which differs).
func (m *PriorMap) SerializedBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	total := int64(serMapHeader)
	for _, kf := range m.keyframes {
		total += serKeyframeHeader + int64(len(kf.Keypoints))*serFeature
	}
	return total
}

// WriteTo serializes the map. It returns the number of bytes written.
// Concurrent-safe: it writes a snapshot of the map at the time of the call.
func (m *PriorMap) WriteTo(w io.Writer) (int64, error) {
	kfs := m.All()
	bw := bufio.NewWriter(w)
	var n int64
	put := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := put(uint32(mapMagic)); err != nil {
		return n, err
	}
	if err := put(uint32(len(kfs))); err != nil {
		return n, err
	}
	for _, kf := range kfs {
		if len(kf.Keypoints) != len(kf.Descriptors) {
			return n, fmt.Errorf("slam: keyframe %d has %d keypoints but %d descriptors",
				kf.ID, len(kf.Keypoints), len(kf.Descriptors))
		}
		if err := put(int32(kf.ID)); err != nil {
			return n, err
		}
		for _, v := range []float64{kf.Pose.X, kf.Pose.Z, kf.Pose.Theta} {
			if err := put(v); err != nil {
				return n, err
			}
		}
		if err := put(uint32(len(kf.Keypoints))); err != nil {
			return n, err
		}
		for i, kp := range kf.Keypoints {
			if kp.X < math.MinInt16 || kp.X > math.MaxInt16 ||
				kp.Y < math.MinInt16 || kp.Y > math.MaxInt16 {
				return n, fmt.Errorf("slam: keypoint (%d,%d) exceeds int16 frame bounds", kp.X, kp.Y)
			}
			if kp.Level < 0 || kp.Level > math.MaxUint8 {
				return n, fmt.Errorf("slam: keypoint level %d exceeds uint8 bounds", kp.Level)
			}
			if err := put(int16(kp.X)); err != nil {
				return n, err
			}
			if err := put(int16(kp.Y)); err != nil {
				return n, err
			}
			if err := put(uint8(kp.Level)); err != nil {
				return n, err
			}
			if err := put(float32(kp.Angle)); err != nil {
				return n, err
			}
			if err := put(kf.Descriptors[i]); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadPriorMap deserializes a map written by WriteTo.
func ReadPriorMap(r io.Reader) (*PriorMap, error) {
	br := bufio.NewReader(r)
	get := func(v interface{}) error { return binary.Read(br, binary.LittleEndian, v) }

	var magic uint32
	if err := get(&magic); err != nil {
		return nil, fmt.Errorf("slam: reading map header: %w", err)
	}
	if magic != mapMagic {
		return nil, fmt.Errorf("slam: bad map magic %#x", magic)
	}
	var count uint32
	if err := get(&count); err != nil {
		return nil, fmt.Errorf("slam: reading keyframe count: %w", err)
	}
	const maxKeyframes = 1 << 24 // 16M keyframes ≈ continental scale
	if count > maxKeyframes {
		return nil, fmt.Errorf("slam: implausible keyframe count %d", count)
	}

	m := NewPriorMap()
	for k := uint32(0); k < count; k++ {
		var id int32
		if err := get(&id); err != nil {
			return nil, fmt.Errorf("slam: keyframe %d: %w", k, err)
		}
		var pose scene.Pose
		if err := get(&pose.X); err != nil {
			return nil, err
		}
		if err := get(&pose.Z); err != nil {
			return nil, err
		}
		if err := get(&pose.Theta); err != nil {
			return nil, err
		}
		var nf uint32
		if err := get(&nf); err != nil {
			return nil, err
		}
		const maxFeatures = 1 << 20
		if nf > maxFeatures {
			return nil, fmt.Errorf("slam: implausible feature count %d", nf)
		}
		kps := make([]Keypoint, nf)
		descs := make([]Descriptor, nf)
		for i := range kps {
			var x, y int16
			var level uint8
			var angle float32
			if err := get(&x); err != nil {
				return nil, err
			}
			if err := get(&y); err != nil {
				return nil, err
			}
			if err := get(&level); err != nil {
				return nil, err
			}
			if err := get(&angle); err != nil {
				return nil, err
			}
			if err := get(&descs[i]); err != nil {
				return nil, err
			}
			kps[i] = Keypoint{X: int(x), Y: int(y), Level: int(level), Angle: float64(angle)}
		}
		m.insert(Keyframe{ID: int(id), Pose: pose, Keypoints: kps, Descriptors: descs})
	}
	return m, nil
}
