package slam

import (
	"math"

	"adsim/internal/img"
)

// PyramidConfig parameterizes multi-scale feature extraction. ORB detects
// on an image pyramid (canonically 8 levels at scale factor 1.2) so that
// features match across the scale changes forward motion produces — the
// same structure the paper's FPGA/ASIC FE designs process.
type PyramidConfig struct {
	// Levels is the number of pyramid levels (1 = single scale).
	Levels int
	// ScaleFactor is the downscale ratio between consecutive levels.
	ScaleFactor float64
}

// DefaultPyramidConfig returns ORB's canonical pyramid: 8 levels at 1.2.
func DefaultPyramidConfig() PyramidConfig {
	return PyramidConfig{Levels: 8, ScaleFactor: 1.2}
}

func (c PyramidConfig) normalized() PyramidConfig {
	if c.Levels < 1 {
		c.Levels = 1
	}
	if c.ScaleFactor <= 1 {
		c.ScaleFactor = 1.2
	}
	return c
}

// LevelScale returns the absolute scale of pyramid level l (level 0 is 1).
func (c PyramidConfig) LevelScale(l int) float64 {
	return math.Pow(c.normalized().ScaleFactor, float64(l))
}

// ExtractFeaturesPyramid runs the FE stage over an image pyramid: each
// level is smoothed, FAST-detected and rBRIEF-described at its own
// resolution; keypoint coordinates are mapped back to level-0 pixels and
// tagged with their level. The per-level feature budget shrinks with level
// area, as ORB distributes it.
func ExtractFeaturesPyramid(frame *img.Gray, fastCfg FASTConfig, pyrCfg PyramidConfig) ([]Keypoint, []Descriptor) {
	pyrCfg = pyrCfg.normalized()
	if pyrCfg.Levels == 1 {
		return ExtractFeatures(frame, fastCfg)
	}

	var kps []Keypoint
	var descs []Descriptor
	level := frame
	for l := 0; l < pyrCfg.Levels; l++ {
		scale := pyrCfg.LevelScale(l)
		if l > 0 {
			w := int(float64(frame.W) / scale)
			h := int(float64(frame.H) / scale)
			if w < 4*fastCfg.Border || h < 4*fastCfg.Border {
				break // level too small to host features
			}
			level = frame.Resize(w, h)
		}
		cfg := fastCfg
		if fastCfg.MaxFeatures > 0 {
			// Budget proportional to level area (geometric decay).
			cfg.MaxFeatures = int(float64(fastCfg.MaxFeatures) / (scale * scale))
			if cfg.MaxFeatures < 8 {
				cfg.MaxFeatures = 8
			}
		}
		smoothed := level.BoxBlur(1)
		levelKps := DetectFAST(smoothed, cfg)
		levelDescs := ComputeAll(smoothed, levelKps)
		for i := range levelKps {
			kp := levelKps[i]
			kp.Level = l
			kp.X = int(float64(kp.X) * scale)
			kp.Y = int(float64(kp.Y) * scale)
			kps = append(kps, kp)
			descs = append(descs, levelDescs[i])
		}
	}
	return kps, descs
}
