package tensor

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	x.Set(1, 2, 3, 7)
	if x.At(1, 2, 3) != 7 {
		t.Error("At/Set mismatch")
	}
	if x.Data[23] != 7 {
		t.Error("CHW layout: (1,2,3) should be last element")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0,1,1) should panic")
		}
	}()
	New(0, 1, 1)
}

func TestCloneFillSameShape(t *testing.T) {
	x := New(1, 2, 2)
	x.Fill(3)
	y := x.Clone()
	y.Set(0, 0, 0, 9)
	if x.At(0, 0, 0) != 3 {
		t.Error("Clone shares storage")
	}
	if !x.SameShape(y) || x.SameShape(New(2, 2, 2)) {
		t.Error("SameShape wrong")
	}
	if x.String() != "tensor(1x2x2)" {
		t.Errorf("String = %q", x.String())
	}
}

func TestConv2DIdentity(t *testing.T) {
	in := New(1, 3, 3)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	// 1x1 kernel with weight 1 = identity.
	out := Conv2D(in, []float32{1}, nil, 1, 1, 1, 0)
	if !out.SameShape(in) {
		t.Fatalf("identity conv shape %v", out)
	}
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatal("identity conv changed values")
		}
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 1-channel 3x3 input, 3x3 averaging-like kernel of ones, no padding:
	// single output = sum of all inputs.
	in := New(1, 3, 3)
	var want float32
	for i := range in.Data {
		in.Data[i] = float32(i + 1)
		want += float32(i + 1)
	}
	w := make([]float32, 9)
	for i := range w {
		w[i] = 1
	}
	out := Conv2D(in, w, nil, 1, 3, 1, 0)
	if out.C != 1 || out.H != 1 || out.W != 1 {
		t.Fatalf("shape %v, want 1x1x1", out)
	}
	if out.Data[0] != want {
		t.Errorf("conv sum = %v, want %v", out.Data[0], want)
	}
}

func TestConv2DPaddingShape(t *testing.T) {
	in := New(3, 8, 8)
	w := make([]float32, 16*3*3*3)
	out := Conv2D(in, w, nil, 16, 3, 1, 1)
	if out.C != 16 || out.H != 8 || out.W != 8 {
		t.Fatalf("same-pad conv shape %v, want 16x8x8", out)
	}
	out2 := Conv2D(in, w, nil, 16, 3, 2, 1)
	if out2.H != 4 || out2.W != 4 {
		t.Fatalf("stride-2 conv shape %v, want 16x4x4", out2)
	}
}

func TestConv2DBias(t *testing.T) {
	in := New(1, 2, 2)
	w := []float32{0} // 1x1 zero kernel
	out := Conv2D(in, w, []float32{5}, 1, 1, 1, 0)
	for _, v := range out.Data {
		if v != 5 {
			t.Fatalf("bias not applied: %v", v)
		}
	}
}

func TestConv2DPaddingZeros(t *testing.T) {
	// All-ones input, 3x3 ones kernel, pad 1: corner output sees only 4
	// valid taps, center sees 9.
	in := New(1, 3, 3)
	in.Fill(1)
	w := make([]float32, 9)
	for i := range w {
		w[i] = 1
	}
	out := Conv2D(in, w, nil, 1, 3, 1, 1)
	if out.At(0, 0, 0) != 4 {
		t.Errorf("corner = %v, want 4", out.At(0, 0, 0))
	}
	if out.At(0, 1, 1) != 9 {
		t.Errorf("center = %v, want 9", out.At(0, 1, 1))
	}
}

func TestConv2DMultiChannel(t *testing.T) {
	in := New(2, 1, 1)
	in.Data[0], in.Data[1] = 3, 4
	// outC=1, k=1: weight per input channel.
	out := Conv2D(in, []float32{2, 10}, nil, 1, 1, 1, 0)
	if out.Data[0] != 3*2+4*10 {
		t.Errorf("multi-channel conv = %v, want 46", out.Data[0])
	}
}

func TestConv2DPanicsOnBadWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short weights should panic")
		}
	}()
	Conv2D(New(1, 3, 3), []float32{1, 2}, nil, 1, 3, 1, 0)
}

func TestMaxPool(t *testing.T) {
	in := New(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	out := MaxPool2D(in, 2, 2)
	if out.H != 2 || out.W != 2 {
		t.Fatalf("pool shape %v", out)
	}
	want := []float32{5, 7, 13, 15}
	for i, v := range want {
		if out.Data[i] != v {
			t.Errorf("pool[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
}

func TestMaxPoolNegativeValues(t *testing.T) {
	in := New(1, 2, 2)
	in.Data = []float32{-5, -3, -9, -7}
	out := MaxPool2D(in, 2, 2)
	if out.Data[0] != -3 {
		t.Errorf("pool of negatives = %v, want -3", out.Data[0])
	}
}

func TestFullyConnected(t *testing.T) {
	in := NewVec(3)
	in.Data = []float32{1, 2, 3}
	w := []float32{
		1, 0, 0,
		0, 1, 1,
	}
	out := FullyConnected(in, w, []float32{10, 20}, 2)
	if out.Data[0] != 11 || out.Data[1] != 25 {
		t.Errorf("fc = %v, want [11 25]", out.Data)
	}
}

func TestFullyConnectedFlattens(t *testing.T) {
	in := New(2, 2, 1) // 4 elements
	in.Data = []float32{1, 2, 3, 4}
	w := []float32{1, 1, 1, 1}
	out := FullyConnected(in, w, nil, 1)
	if out.Data[0] != 10 {
		t.Errorf("fc over CHW = %v, want 10", out.Data[0])
	}
}

func TestReLU(t *testing.T) {
	x := NewVec(3)
	x.Data = []float32{-1, 0, 2}
	ReLU(x)
	if x.Data[0] != 0 || x.Data[1] != 0 || x.Data[2] != 2 {
		t.Errorf("relu = %v", x.Data)
	}
}

func TestLeakyReLU(t *testing.T) {
	x := NewVec(2)
	x.Data = []float32{-10, 5}
	LeakyReLU(x, 0.1)
	if x.Data[0] != -1 || x.Data[1] != 5 {
		t.Errorf("leaky = %v", x.Data)
	}
}

func TestSigmoidRange(t *testing.T) {
	x := NewVec(3)
	x.Data = []float32{-100, 0, 100}
	Sigmoid(x)
	if x.Data[0] > 0.001 || math.Abs(float64(x.Data[1])-0.5) > 1e-5 || x.Data[2] < 0.999 {
		t.Errorf("sigmoid = %v", x.Data)
	}
}

func TestSoftmax(t *testing.T) {
	seg := []float32{1, 2, 3}
	Softmax(seg)
	var sum float32
	for _, v := range seg {
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-5 {
		t.Errorf("softmax sum = %v", sum)
	}
	if !(seg[2] > seg[1] && seg[1] > seg[0]) {
		t.Errorf("softmax ordering broken: %v", seg)
	}
	Softmax(nil) // must not panic
}

func TestExp32Accuracy(t *testing.T) {
	for _, x := range []float32{-20, -5, -1, -0.1, 0, 0.1, 1, 5, 20} {
		got := float64(exp32(x))
		want := math.Exp(float64(x))
		rel := math.Abs(got-want) / want
		if rel > 1e-5 {
			t.Errorf("exp32(%v) = %v, want %v (rel err %v)", x, got, want, rel)
		}
	}
	if exp32(-100) != 0 {
		t.Error("exp32 underflow should clamp to 0")
	}
	if v := exp32(100); math.IsInf(float64(v), 1) {
		t.Error("exp32 overflow should clamp, not inf")
	}
}

// Property: softmax output is a probability distribution for finite input.
func TestSoftmaxProperty(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		seg := make([]float32, len(raw))
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return true
			}
			// Clamp into activation range.
			if v > 50 {
				v = 50
			}
			if v < -50 {
				v = -50
			}
			seg[i] = v
		}
		Softmax(seg)
		var sum float64
		for _, v := range seg {
			if v < 0 || v > 1 {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: conv with a delta kernel (center 1, pad same) reproduces input.
func TestConvDeltaProperty(t *testing.T) {
	f := func(vals [9]int8) bool {
		in := New(1, 3, 3)
		for i, v := range vals {
			in.Data[i] = float32(v)
		}
		w := make([]float32, 9)
		w[4] = 1 // center tap of 3x3 kernel
		out := Conv2D(in, w, nil, 1, 3, 1, 1)
		for i := range in.Data {
			if out.Data[i] != in.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkConv2D(b *testing.B) {
	in := New(16, 52, 52)
	w := make([]float32, 32*16*3*3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(in, w, nil, 32, 3, 1, 1)
	}
}

func BenchmarkFullyConnected(b *testing.B) {
	in := NewVec(4096)
	w := make([]float32, 1000*4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FullyConnected(in, w, nil, 1000)
	}
}

// Property: the im2col lowering computes exactly what the direct
// convolution computes, across random shapes, strides and padding.
func TestIm2ColMatchesDirectProperty(t *testing.T) {
	f := func(seed uint32, kSel, sSel, pSel, cSel uint8) bool {
		k := int(kSel)%3*2 + 1 // 1, 3, 5
		stride := int(sSel)%2 + 1
		pad := int(pSel) % 2
		inC := int(cSel)%3 + 1
		outC := int(cSel)%4 + 1
		h := 6 + int(seed)%5
		in := New(inC, h, h)
		state := seed | 1
		next := func() float32 {
			state = state*1664525 + 1013904223
			return float32(int32(state>>16)%100) / 25
		}
		for i := range in.Data {
			in.Data[i] = next()
		}
		w := make([]float32, outC*inC*k*k)
		for i := range w {
			w[i] = next()
		}
		bias := make([]float32, outC)
		for i := range bias {
			bias[i] = next()
		}
		a := Conv2D(in, w, bias, outC, k, stride, pad)
		b := Conv2DIm2Col(in, w, bias, outC, k, stride, pad)
		if !a.SameShape(b) {
			return false
		}
		for i := range a.Data {
			d := a.Data[i] - b.Data[i]
			if d > 1e-3 || d < -1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIm2ColPanicsOnBadWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short weights should panic")
		}
	}()
	Conv2DIm2Col(New(1, 4, 4), []float32{1}, nil, 1, 3, 1, 0)
}

func BenchmarkConv2DIm2Col(b *testing.B) {
	in := New(16, 52, 52)
	w := make([]float32, 32*16*3*3)
	for i := range w {
		w[i] = 0.01
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DIm2Col(in, w, nil, 32, 3, 1, 1)
	}
}

// Property: the sharded kernels are bitwise-identical to the serial ones
// for any worker count — every output element is computed by exactly one
// goroutine in the serial arithmetic order. Shapes are sized above the
// parMinMACs floor so the parallel path actually engages.
func TestParallelKernelsBitwiseEqualSerial(t *testing.T) {
	state := uint32(12345)
	next := func() float32 {
		state = state*1664525 + 1013904223
		return float32(int32(state>>16)%100) / 25
	}
	in := New(8, 32, 32)
	for i := range in.Data {
		in.Data[i] = next()
	}
	const outC, k = 16, 3
	w := make([]float32, outC*in.C*k*k)
	for i := range w {
		w[i] = next()
	}
	bias := make([]float32, outC)
	for i := range bias {
		bias[i] = next()
	}
	ref := Conv2DIm2Col(in, w, bias, outC, k, 1, 1)
	for _, workers := range []int{2, 3, 7, 64} {
		got := Conv2DIm2ColPar(in, w, bias, outC, k, 1, 1, workers)
		if !got.SameShape(ref) {
			t.Fatalf("workers=%d: shape %v != %v", workers, got, ref)
		}
		for i := range got.Data {
			if got.Data[i] != ref.Data[i] {
				t.Fatalf("workers=%d: conv elem %d = %v, serial %v", workers, i, got.Data[i], ref.Data[i])
			}
		}
	}

	const outN = 512
	vec := NewVec(1024)
	for i := range vec.Data {
		vec.Data[i] = next()
	}
	fw := make([]float32, outN*vec.Len())
	for i := range fw {
		fw[i] = next()
	}
	fref := FullyConnected(vec, fw, nil, outN)
	for _, workers := range []int{2, 5, 33} {
		got := FullyConnectedPar(vec, fw, nil, outN, workers)
		for i := range got.Data {
			if got.Data[i] != fref.Data[i] {
				t.Fatalf("workers=%d: fc elem %d = %v, serial %v", workers, i, got.Data[i], fref.Data[i])
			}
		}
	}
}

func TestShardCoversRangeOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 1}, {1, 8}, {5, 2}, {7, 7}, {100, 3}, {8, 64},
	} {
		hits := make([]int32, tc.n)
		shard(tc.n, tc.workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d workers=%d: index %d covered %d times", tc.n, tc.workers, i, h)
			}
		}
	}
}
