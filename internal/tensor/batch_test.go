package tensor

import (
	"math/rand"
	"testing"
)

// randBatch builds n same-shape random inputs plus shared conv weights.
func randBatch(seed int64, n int) (ins []*T, w, bias []float32, outC, k int) {
	rng := rand.New(rand.NewSource(seed))
	outC, k = 8, 3
	for b := 0; b < n; b++ {
		in := New(3, 20, 20)
		for i := range in.Data {
			in.Data[i] = float32(rng.NormFloat64())
		}
		ins = append(ins, in)
	}
	w = make([]float32, outC*ins[0].C*k*k)
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	bias = make([]float32, outC)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	return
}

// The batched kernels are the fleet's cross-stream seam: each sample must
// come out bitwise-identical to its solo kernel, for any batch size and
// worker count.
func TestConvBatchBitwiseEqualSolo(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		for _, workers := range []int{1, 2, 4} {
			ins, w, bias, outC, k := randBatch(11, n)
			s := &Scratch{}
			dsts := make([]*T, n)
			for i := range dsts {
				dsts[i] = New(outC, ins[i].H, ins[i].W)
			}
			Conv2DIm2ColBatchInto(dsts, ins, w, bias, outC, k, 1, 1, workers, s)
			for i := range ins {
				want := Conv2DIm2ColPar(ins[i], w, bias, outC, k, 1, 1, 1)
				for j := range want.Data {
					if dsts[i].Data[j] != want.Data[j] {
						t.Fatalf("n=%d workers=%d sample %d: out[%d] = %v, want %v",
							n, workers, i, j, dsts[i].Data[j], want.Data[j])
					}
				}
			}
		}
	}
}

func TestFCBatchBitwiseEqualSolo(t *testing.T) {
	ins, _, _, _, _ := randBatch(12, 4)
	outN := 16
	fcW := make([]float32, outN*ins[0].Len())
	rng := rand.New(rand.NewSource(13))
	for i := range fcW {
		fcW[i] = float32(rng.NormFloat64())
	}
	bias := make([]float32, outN)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	for _, workers := range []int{1, 3} {
		dsts := make([]*T, len(ins))
		for i := range dsts {
			dsts[i] = New(outN, 1, 1)
		}
		FullyConnectedBatchInto(dsts, ins, fcW, bias, outN, workers)
		for i := range ins {
			want := FullyConnectedPar(ins[i], fcW, bias, outN, 1)
			for j := range want.Data {
				if dsts[i].Data[j] != want.Data[j] {
					t.Fatalf("workers=%d sample %d: out[%d] = %v, want %v",
						workers, i, j, dsts[i].Data[j], want.Data[j])
				}
			}
		}
	}
}

// A batch must reject shape-mismatched samples loudly: silently batching
// different shapes would corrupt the shared patch matrix.
func TestConvBatchRejectsMixedShapes(t *testing.T) {
	ins, w, bias, outC, k := randBatch(14, 2)
	ins[1] = New(3, 10, 10)
	dsts := []*T{New(outC, 20, 20), New(outC, 10, 10)}
	defer func() {
		if recover() == nil {
			t.Fatal("mixed-shape batch did not panic")
		}
	}()
	Conv2DIm2ColBatchInto(dsts, ins, w, bias, outC, k, 1, 1, 1, nil)
}

// Warm serial batched calls are on the fleet's per-frame hot path and must
// not allocate (see `make alloc-gate`).
func TestAllocConvBatchInto(t *testing.T) {
	ins, w, bias, outC, k := randBatch(15, 3)
	s := &Scratch{}
	dsts := make([]*T, len(ins))
	for i := range dsts {
		dsts[i] = New(outC, ins[i].H, ins[i].W)
	}
	Conv2DIm2ColBatchInto(dsts, ins, w, bias, outC, k, 1, 1, 1, s) // warm
	allocs := testing.AllocsPerRun(10, func() {
		Conv2DIm2ColBatchInto(dsts, ins, w, bias, outC, k, 1, 1, 1, s)
	})
	if allocs != 0 {
		t.Errorf("warm Conv2DIm2ColBatchInto allocates %.1f/op, want 0", allocs)
	}
}
