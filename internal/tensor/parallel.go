package tensor

import (
	"fmt"
	"sync"
)

// parMinMACs is the work floor below which the parallel kernels run on the
// caller's goroutine: tiny convolutions and FC heads lose more to goroutine
// fan-out and cache ping-pong than they gain from extra cores.
const parMinMACs = 1 << 18

// shard splits [0,n) into at most workers contiguous ranges and runs fn on
// each range from its own goroutine, blocking until all complete. Ranges are
// disjoint, so fn bodies that only write elements inside their range never
// share memory — the output is bitwise-independent of the worker count.
// workers <= 1 degrades to a plain call on the caller's goroutine.
func shard(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// convShape validates conv arguments and returns the output spatial dims.
func convShape(in *T, wLen, outC, k, stride, pad int) (oh, ow int) {
	if stride <= 0 || k <= 0 {
		panic(fmt.Sprintf("tensor: invalid conv k=%d stride=%d", k, stride))
	}
	if wLen != outC*in.C*k*k {
		panic(fmt.Sprintf("tensor: conv weights len %d, want %d", wLen, outC*in.C*k*k))
	}
	oh = (in.H+2*pad-k)/stride + 1
	ow = (in.W+2*pad-k)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv output %dx%d non-positive", oh, ow))
	}
	return oh, ow
}

// intoShape returns dst reshaped to c×h×w, allocating a fresh tensor when
// dst is nil. dst's backing array must already hold c·h·w elements; the
// scratch Buf slots guarantee that.
func intoShape(dst *T, c, h, w int) *T {
	if dst == nil {
		return New(c, h, w)
	}
	if len(dst.Data) != c*h*w {
		panic(fmt.Sprintf("tensor: dst holds %d elements, want %dx%dx%d", len(dst.Data), c, h, w))
	}
	dst.C, dst.H, dst.W = c, h, w
	return dst
}

// lowerPatches writes the im2col patch matrix for in into patches: rows are
// (ic, ky, kx) weight positions, columns are output pixels. Every element is
// written — out-of-bounds (padding) taps get explicit zeros — so the buffer
// needs no pre-clearing and reuse across frames is safe.
// The kernels below split each loop body into a top-level ...Range function
// plus a thin dispatcher: when workers <= 1 the range function is called
// directly, so no closure is materialized and a warm serial call performs
// zero heap allocations (gated by TestAlloc*). The parallel branch builds
// the closure that shard's goroutines need — a couple of transient
// allocations, amortized by the fan-out they pay for.
func lowerPatches(patches []float32, in *T, k, stride, pad, oh, ow, workers int) {
	patchRows := in.C * k * k
	if workers <= 1 || patchRows <= 1 {
		lowerPatchesRange(patches, in, k, stride, pad, oh, ow, 0, patchRows)
		return
	}
	shard(patchRows, workers, func(lo, hi int) {
		lowerPatchesRange(patches, in, k, stride, pad, oh, ow, lo, hi)
	})
}

// lowerPatchesRange writes patch-matrix rows [lo,hi).
func lowerPatchesRange(patches []float32, in *T, k, stride, pad, oh, ow, lo, hi int) {
	cols := oh * ow
	for row := lo; row < hi; row++ {
		ic := row / (k * k)
		rem := row % (k * k)
		ky, kx := rem/k, rem%k
		chanOff := ic * in.H * in.W
		dst := patches[row*cols : (row+1)*cols]
		col := 0
		for oy := 0; oy < oh; oy++ {
			iy := oy*stride - pad + ky
			if iy < 0 || iy >= in.H {
				for ox := 0; ox < ow; ox++ {
					dst[col] = 0
					col++
				}
				continue
			}
			rowOff := chanOff + iy*in.W
			for ox := 0; ox < ow; ox++ {
				ix := ox*stride - pad + kx
				if ix >= 0 && ix < in.W {
					dst[col] = in.Data[rowOff+ix]
				} else {
					dst[col] = 0
				}
				col++
			}
		}
	}
}

// Conv2DIm2ColPar is Conv2DIm2Col with the patch lowering sharded across
// weight-position rows and the GEMM sharded across output channels, spread
// over up to workers goroutines. Every output element is produced by exactly
// one goroutine with the same inner-loop order as the serial kernel, so the
// result is bitwise-identical to Conv2DIm2Col for any worker count.
func Conv2DIm2ColPar(in *T, w []float32, bias []float32, outC, k, stride, pad, workers int) *T {
	return Conv2DIm2ColParInto(nil, in, w, bias, outC, k, stride, pad, workers, nil)
}

// Conv2DIm2ColParInto is Conv2DIm2ColPar writing into dst with every
// intermediate buffer drawn from s, so a warm call allocates nothing. dst
// nil allocates the output; s nil uses a throwaway arena. dst must not
// alias in. Results are bitwise-identical to Conv2DIm2ColPar for any
// (dst, s) combination: buffer reuse never changes arithmetic.
//
// The GEMM accumulates four patch rows per pass (register blocking). That
// reassociates the floating-point sum relative to the direct Conv2D loop,
// so equivalence with Conv2D is to rounding tolerance, not bitwise; the
// blocking itself is fixed, so results never vary run to run or with the
// worker count. Zero weights still multiply into the sum (no sparsity
// skip), so non-finite inputs propagate exactly as in Conv2D: 0·NaN = NaN.
func Conv2DIm2ColParInto(dst *T, in *T, w []float32, bias []float32, outC, k, stride, pad, workers int, s *Scratch) *T {
	oh, ow := convShape(in, len(w), outC, k, stride, pad)
	patchRows := in.C * k * k
	cols := oh * ow
	if int64(outC)*int64(patchRows)*int64(cols) < parMinMACs {
		workers = 1
	}
	if s == nil {
		s = &Scratch{}
	}
	patches := s.Patches(patchRows * cols)
	lowerPatches(patches, in, k, stride, pad, oh, ow, workers)

	// GEMM: out[oc][col] = Σ_r w[oc][r] · patches[r][col] (+ bias). Each
	// output channel is written by exactly one goroutine.
	out := intoShape(dst, outC, oh, ow)
	if workers <= 1 {
		convGemmRange(out.Data, patches, w, bias, patchRows, cols, 0, outC)
	} else {
		shard(outC, workers, func(lo, hi int) {
			convGemmRange(out.Data, patches, w, bias, patchRows, cols, lo, hi)
		})
	}
	return out
}

// convGemmRange computes output channels [lo,hi) of the im2col GEMM.
func convGemmRange(out, patches, w, bias []float32, patchRows, cols, lo, hi int) {
	for oc := lo; oc < hi; oc++ {
		acc := out[oc*cols : (oc+1)*cols]
		var b float32
		if bias != nil {
			b = bias[oc]
		}
		for i := range acc {
			acc[i] = b
		}
		wRow := w[oc*patchRows : (oc+1)*patchRows]
		r := 0
		for ; r+4 <= patchRows; r += 4 {
			w0, w1, w2, w3 := wRow[r], wRow[r+1], wRow[r+2], wRow[r+3]
			s0 := patches[r*cols : (r+1)*cols]
			s1 := patches[(r+1)*cols : (r+2)*cols]
			s2 := patches[(r+2)*cols : (r+3)*cols]
			s3 := patches[(r+3)*cols : (r+4)*cols]
			for i, v0 := range s0 {
				acc[i] += w0*v0 + w1*s1[i] + w2*s2[i] + w3*s3[i]
			}
		}
		for ; r < patchRows; r++ {
			wv := wRow[r]
			src := patches[r*cols : (r+1)*cols]
			for i, pv := range src {
				acc[i] += wv * pv
			}
		}
	}
}

// FullyConnectedPar is FullyConnected with the output neurons sharded over
// up to workers goroutines. Each neuron's dot product runs in a fixed
// four-accumulator order, so the result is bitwise-identical for any worker
// count.
func FullyConnectedPar(in *T, w []float32, bias []float32, outN, workers int) *T {
	return FullyConnectedParInto(nil, in, w, bias, outN, workers)
}

// FullyConnectedParInto is FullyConnectedPar writing into dst (nil
// allocates). Each dot product runs four interleaved accumulator chains
// (fixed reassociation, identical for every worker count and destination),
// which roughly doubles single-core throughput on the FC heads.
func FullyConnectedParInto(dst *T, in *T, w []float32, bias []float32, outN, workers int) *T {
	inN := in.Len()
	if len(w) != outN*inN {
		panic(fmt.Sprintf("tensor: fc weights len %d, want %d", len(w), outN*inN))
	}
	if int64(outN)*int64(inN) < parMinMACs {
		workers = 1
	}
	out := intoShape(dst, outN, 1, 1)
	if workers <= 1 {
		fcRange(out.Data, in.Data, w, bias, inN, 0, outN)
	} else {
		shard(outN, workers, func(lo, hi int) {
			fcRange(out.Data, in.Data, w, bias, inN, lo, hi)
		})
	}
	return out
}

// fcRange computes output neurons [lo,hi) of the fully connected layer.
func fcRange(out, x, w, bias []float32, inN, lo, hi int) {
	for o := lo; o < hi; o++ {
		row := w[o*inN : (o+1)*inN]
		var s0, s1, s2, s3 float32
		i := 0
		for ; i+4 <= inN; i += 4 {
			s0 += row[i] * x[i]
			s1 += row[i+1] * x[i+1]
			s2 += row[i+2] * x[i+2]
			s3 += row[i+3] * x[i+3]
		}
		sum := s0 + s1 + s2 + s3
		for ; i < inN; i++ {
			sum += row[i] * x[i]
		}
		if bias != nil {
			sum += bias[o]
		}
		out[o] = sum
	}
}
