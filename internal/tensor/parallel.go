package tensor

import (
	"fmt"
	"sync"
)

// parMinMACs is the work floor below which the parallel kernels run on the
// caller's goroutine: tiny convolutions and FC heads lose more to goroutine
// fan-out and cache ping-pong than they gain from extra cores.
const parMinMACs = 1 << 18

// shard splits [0,n) into at most workers contiguous ranges and runs fn on
// each range from its own goroutine, blocking until all complete. Ranges are
// disjoint, so fn bodies that only write elements inside their range never
// share memory — the output is bitwise-independent of the worker count.
// workers <= 1 degrades to a plain call on the caller's goroutine.
func shard(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Conv2DIm2ColPar is Conv2DIm2Col with the patch lowering sharded across
// weight-position rows and the GEMM sharded across output channels, spread
// over up to workers goroutines. Every output element is produced by exactly
// one goroutine with the same inner-loop order as the serial kernel, so the
// result is bitwise-identical to Conv2DIm2Col for any worker count.
func Conv2DIm2ColPar(in *T, w []float32, bias []float32, outC, k, stride, pad, workers int) *T {
	if stride <= 0 || k <= 0 {
		panic(fmt.Sprintf("tensor: invalid conv k=%d stride=%d", k, stride))
	}
	if len(w) != outC*in.C*k*k {
		panic(fmt.Sprintf("tensor: conv weights len %d, want %d", len(w), outC*in.C*k*k))
	}
	oh := (in.H+2*pad-k)/stride + 1
	ow := (in.W+2*pad-k)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv output %dx%d non-positive", oh, ow))
	}

	patchRows := in.C * k * k
	cols := oh * ow
	if int64(outC)*int64(patchRows)*int64(cols) < parMinMACs {
		workers = 1
	}

	// Lower the input into the patch matrix: rows are (ic, ky, kx) weight
	// positions, columns are output pixels. Each row is written by exactly
	// one goroutine.
	patches := make([]float32, patchRows*cols)
	shard(patchRows, workers, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			ic := row / (k * k)
			rem := row % (k * k)
			ky, kx := rem/k, rem%k
			chanOff := ic * in.H * in.W
			dst := patches[row*cols : (row+1)*cols]
			col := 0
			for oy := 0; oy < oh; oy++ {
				iy := oy*stride - pad + ky
				if iy < 0 || iy >= in.H {
					col += ow // whole row of zeros
					continue
				}
				rowOff := chanOff + iy*in.W
				for ox := 0; ox < ow; ox++ {
					ix := ox*stride - pad + kx
					if ix >= 0 && ix < in.W {
						dst[col] = in.Data[rowOff+ix]
					}
					col++
				}
			}
		}
	})

	// GEMM: out[oc][col] = Σ_r w[oc][r] · patches[r][col] (+ bias). Each
	// output channel is written by exactly one goroutine.
	out := New(outC, oh, ow)
	shard(outC, workers, func(lo, hi int) {
		for oc := lo; oc < hi; oc++ {
			dst := out.Data[oc*cols : (oc+1)*cols]
			if bias != nil {
				b := bias[oc]
				for i := range dst {
					dst[i] = b
				}
			}
			wRow := w[oc*patchRows : (oc+1)*patchRows]
			for r, wv := range wRow {
				if wv == 0 {
					continue
				}
				src := patches[r*cols : (r+1)*cols]
				for i, pv := range src {
					dst[i] += wv * pv
				}
			}
		}
	})
	return out
}

// FullyConnectedPar is FullyConnected with the output neurons sharded over
// up to workers goroutines. Each neuron's dot product runs in the serial
// kernel's order, so the result is bitwise-identical for any worker count.
func FullyConnectedPar(in *T, w []float32, bias []float32, outN, workers int) *T {
	inN := in.Len()
	if len(w) != outN*inN {
		panic(fmt.Sprintf("tensor: fc weights len %d, want %d", len(w), outN*inN))
	}
	if int64(outN)*int64(inN) < parMinMACs {
		workers = 1
	}
	out := NewVec(outN)
	shard(outN, workers, func(lo, hi int) {
		for o := lo; o < hi; o++ {
			var sum float32
			if bias != nil {
				sum = bias[o]
			}
			row := w[o*inN : (o+1)*inN]
			for i, v := range in.Data {
				sum += row[i] * v
			}
			out.Data[o] = sum
		}
	})
	return out
}
