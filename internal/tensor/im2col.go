package tensor

// Conv2DIm2Col computes the same convolution as Conv2D by lowering to an
// explicit im2col matrix multiplication — the strategy Caffe/cuDNN-era
// frameworks (the paper's software stack) use to turn convolutions into
// GEMM. Semantics match Conv2D; results agree to rounding tolerance (the
// GEMM register-blocks four patch rows per pass, which reassociates the
// float sum relative to Conv2D's tap order) and are bit-for-bit stable
// across runs, worker counts and destination buffers. The memory/compute
// trade-off differs from the direct loop: im2col materializes a
// (inC·k²) × (outH·outW) patch matrix and then performs a dense multiply
// with better locality.
//
// This is the single-threaded entry point; Conv2DIm2ColPar shards the same
// kernel across goroutines with bitwise-identical results.
func Conv2DIm2Col(in *T, w []float32, bias []float32, outC, k, stride, pad int) *T {
	return Conv2DIm2ColPar(in, w, bias, outC, k, stride, pad, 1)
}
