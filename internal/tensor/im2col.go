package tensor

import "fmt"

// Conv2DIm2Col computes the same convolution as Conv2D by lowering to an
// explicit im2col matrix multiplication — the strategy Caffe/cuDNN-era
// frameworks (the paper's software stack) use to turn convolutions into
// GEMM. Semantics and results are identical to Conv2D; the memory/compute
// trade-off differs: im2col materializes a (inC·k²) × (outH·outW) patch
// matrix and then performs a dense multiply with better locality.
func Conv2DIm2Col(in *T, w []float32, bias []float32, outC, k, stride, pad int) *T {
	if stride <= 0 || k <= 0 {
		panic(fmt.Sprintf("tensor: invalid conv k=%d stride=%d", k, stride))
	}
	if len(w) != outC*in.C*k*k {
		panic(fmt.Sprintf("tensor: conv weights len %d, want %d", len(w), outC*in.C*k*k))
	}
	oh := (in.H+2*pad-k)/stride + 1
	ow := (in.W+2*pad-k)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv output %dx%d non-positive", oh, ow))
	}

	// Lower the input into the patch matrix: rows are (ic, ky, kx) weight
	// positions, columns are output pixels.
	patchRows := in.C * k * k
	cols := oh * ow
	patches := make([]float32, patchRows*cols)
	row := 0
	for ic := 0; ic < in.C; ic++ {
		chanOff := ic * in.H * in.W
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				dst := patches[row*cols : (row+1)*cols]
				col := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= in.H {
						col += ow // whole row of zeros
						continue
					}
					rowOff := chanOff + iy*in.W
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < in.W {
							dst[col] = in.Data[rowOff+ix]
						}
						col++
					}
				}
				row++
			}
		}
	}

	// GEMM: out[oc][col] = Σ_r w[oc][r] · patches[r][col] (+ bias).
	out := New(outC, oh, ow)
	for oc := 0; oc < outC; oc++ {
		dst := out.Data[oc*cols : (oc+1)*cols]
		if bias != nil {
			b := bias[oc]
			for i := range dst {
				dst[i] = b
			}
		}
		wRow := w[oc*patchRows : (oc+1)*patchRows]
		for r, wv := range wRow {
			if wv == 0 {
				continue
			}
			src := patches[r*cols : (r+1)*cols]
			for i, pv := range src {
				dst[i] += wv * pv
			}
		}
	}
	return out
}
