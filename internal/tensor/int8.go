// Int8 quantized inference kernels: the same im2col convolution and fully
// connected layers as the float path, executed in 8-bit integer arithmetic
// with per-output-channel symmetric weight scales and a dynamic per-tensor
// input scale — the scheme EIE/Eyeriss-class inference ASICs (modelled in
// internal/accel) and low-latency perception stacks use.
//
// Quantization contract:
//
//   - Weights: per output channel, q = round(w/s_oc), s_oc = maxabs(row)/127.
//   - Inputs: per tensor per call (dynamic), q = round(x/s_in),
//     s_in = maxabs(x)/127.
//   - Accumulation: int32 (exact — products are ≤ 127², so sums stay exact
//     up to ~130k MACs per output, far beyond any layer here).
//   - Dequantization: y = acc·s_in·s_oc + bias, bias kept float32.
//
// Error budget: one rounding step of at most s/2 per operand, so the output
// error is bounded by s_in·s_oc·(Σ|q_w|/2 + Σ|q_x|/2 + N/4) per element and
// in practice lands well under 1% of the activation range for the network
// shapes in the zoo (property-tested in int8_test.go; budget derivation in
// DESIGN.md). Non-finite inputs are outside the contract: quantization
// saturates them to ±127.
package tensor

import (
	"fmt"
	"math"
)

// maxAbs returns the largest absolute value in xs, treating NaN as 0 so a
// corrupt activation cannot poison the scale of a whole tensor.
func maxAbs(xs []float32) float32 {
	var m float32
	for _, v := range xs {
		if v < 0 {
			v = -v
		}
		if v > m { // NaN compares false, so NaN never becomes the max
			m = v
		}
	}
	return m
}

// quantizeInto writes round(x/scale) clamped to [-127,127] into dst.
func quantizeInto(dst []int8, src []float32, scale float32) {
	inv := float32(0)
	if scale != 0 {
		inv = 1 / scale
	}
	for i, v := range src {
		q := math.Round(float64(v * inv))
		switch {
		case q > 127:
			q = 127
		case q < -127:
			q = -127
		case q != q: // NaN
			q = 0
		}
		dst[i] = int8(q)
	}
}

// QuantizeSymmetric quantizes src with one symmetric scale
// (maxabs(src)/127) and returns the quantized values and the scale. A zero
// tensor quantizes to zeros with scale 0.
func QuantizeSymmetric(src []float32) ([]int8, float32) {
	q := make([]int8, len(src))
	scale := maxAbs(src) / 127
	quantizeInto(q, src, scale)
	return q, scale
}

// QuantizePerChannel quantizes the row-major matrix w ([rows][rowLen]) with
// one symmetric scale per row — the per-output-channel weight quantization
// the conv/FC int8 kernels consume. It panics if len(w) is not a multiple
// of rows.
func QuantizePerChannel(w []float32, rows int) ([]int8, []float32) {
	if rows <= 0 || len(w)%rows != 0 {
		panic(fmt.Sprintf("tensor: cannot split %d weights into %d channels", len(w), rows))
	}
	rowLen := len(w) / rows
	q := make([]int8, len(w))
	scales := make([]float32, rows)
	for r := 0; r < rows; r++ {
		row := w[r*rowLen : (r+1)*rowLen]
		scale := maxAbs(row) / 127
		scales[r] = scale
		quantizeInto(q[r*rowLen:(r+1)*rowLen], row, scale)
	}
	return q, scales
}

// lowerPatchesInt8 is the int8 im2col lowering: identical geometry to
// lowerPatches, reading from the quantized input qin.
func lowerPatchesInt8(patches []int8, qin []int8, inC, inH, inW, k, stride, pad, oh, ow, workers int) {
	patchRows := inC * k * k
	if workers <= 1 || patchRows <= 1 {
		lowerPatchesInt8Range(patches, qin, inC, inH, inW, k, stride, pad, oh, ow, 0, patchRows)
		return
	}
	shard(patchRows, workers, func(lo, hi int) {
		lowerPatchesInt8Range(patches, qin, inC, inH, inW, k, stride, pad, oh, ow, lo, hi)
	})
}

// lowerPatchesInt8Range writes int8 patch-matrix rows [lo,hi).
func lowerPatchesInt8Range(patches []int8, qin []int8, inC, inH, inW, k, stride, pad, oh, ow, lo, hi int) {
	cols := oh * ow
	for row := lo; row < hi; row++ {
		ic := row / (k * k)
		rem := row % (k * k)
		ky, kx := rem/k, rem%k
		chanOff := ic * inH * inW
		dst := patches[row*cols : (row+1)*cols]
		col := 0
		for oy := 0; oy < oh; oy++ {
			iy := oy*stride - pad + ky
			if iy < 0 || iy >= inH {
				for ox := 0; ox < ow; ox++ {
					dst[col] = 0
					col++
				}
				continue
			}
			rowOff := chanOff + iy*inW
			for ox := 0; ox < ow; ox++ {
				ix := ox*stride - pad + kx
				if ix >= 0 && ix < inW {
					dst[col] = qin[rowOff+ix]
				} else {
					dst[col] = 0
				}
				col++
			}
		}
	}
}

// macRows4 accumulates four weighted int8 rows into the int32 tile:
// t[i] += Σ w_j·s_j[i]. A standalone function so the register allocator
// works on a small body instead of the conv closure (which otherwise
// spills the loop counter every iteration). Kept out of line: inlined
// back into the closure it loses that benefit.
//
//go:noinline
func macRows4(t []int32, s0, s1, s2, s3 []int8, w0, w1, w2, w3 int32) {
	s1 = s1[:len(s0)]
	s2 = s2[:len(s0)]
	s3 = s3[:len(s0)]
	t = t[:len(s0)]
	for i, v0 := range s0 {
		t[i] += w0*int32(v0) + w1*int32(s1[i]) + w2*int32(s2[i]) + w3*int32(s3[i])
	}
}

// macRow accumulates one weighted int8 row into the int32 tile.
//
//go:noinline
func macRow(t []int32, s []int8, w int32) {
	t = t[:len(s)]
	for i, v := range s {
		t[i] += w * int32(v)
	}
}

// Conv2DInt8 computes the quantized convolution of in: the input is
// dynamically quantized to int8, multiplied against the pre-quantized
// per-channel weights qw in int32 arithmetic, and dequantized into dst
// (+bias, float32). qw/wScale come from QuantizePerChannel over the float
// weights laid out [outC][inC·k·k]. dst nil allocates; s nil uses a
// throwaway arena; a warm (dst, s) call allocates nothing.
func Conv2DInt8(dst *T, in *T, qw []int8, wScale []float32, bias []float32, outC, k, stride, pad, workers int, s *Scratch) *T {
	oh, ow := convShape(in, len(qw), outC, k, stride, pad)
	if len(wScale) != outC {
		panic(fmt.Sprintf("tensor: conv weight scales len %d, want %d", len(wScale), outC))
	}
	patchRows := in.C * k * k
	cols := oh * ow
	if int64(outC)*int64(patchRows)*int64(cols) < parMinMACs {
		workers = 1
	}
	if s == nil {
		s = &Scratch{}
	}
	inScale := maxAbs(in.Data) / 127
	qin := s.QIn(len(in.Data))
	quantizeInto(qin, in.Data, inScale)
	patches := s.QPatches(patchRows * cols)
	lowerPatchesInt8(patches, qin, in.C, in.H, in.W, k, stride, pad, oh, ow, workers)

	out := intoShape(dst, outC, oh, ow)
	if workers <= 1 {
		convInt8Range(out.Data, patches, qw, wScale, bias, inScale, patchRows, cols, 0, outC)
	} else {
		shard(outC, workers, func(lo, hi int) {
			convInt8Range(out.Data, patches, qw, wScale, bias, inScale, patchRows, cols, lo, hi)
		})
	}
	return out
}

// convInt8Range computes output channels [lo,hi) of the int8 GEMM.
func convInt8Range(out []float32, patches, qw []int8, wScale, bias []float32, inScale float32, patchRows, cols, lo, hi int) {
	// Tile the columns so the int32 accumulators stay in a small stack
	// array: exact integer math, no heap accumulator buffer.
	var acc [256]int32
	for oc := lo; oc < hi; oc++ {
		wRow := qw[oc*patchRows : (oc+1)*patchRows]
		dq := inScale * wScale[oc]
		var b float32
		if bias != nil {
			b = bias[oc]
		}
		dstRow := out[oc*cols : (oc+1)*cols]
		for c0 := 0; c0 < cols; c0 += len(acc) {
			c1 := c0 + len(acc)
			if c1 > cols {
				c1 = cols
			}
			n := c1 - c0
			tile := acc[:n]
			for i := range tile {
				tile[i] = 0
			}
			r := 0
			for ; r+4 <= patchRows; r += 4 {
				macRows4(tile,
					patches[r*cols+c0:r*cols+c1],
					patches[(r+1)*cols+c0:(r+1)*cols+c1],
					patches[(r+2)*cols+c0:(r+2)*cols+c1],
					patches[(r+3)*cols+c0:(r+3)*cols+c1],
					int32(wRow[r]), int32(wRow[r+1]), int32(wRow[r+2]), int32(wRow[r+3]))
			}
			for ; r < patchRows; r++ {
				macRow(tile, patches[r*cols+c0:r*cols+c1], int32(wRow[r]))
			}
			d := dstRow[c0:c1]
			for i, v := range tile[:len(d)] {
				d[i] = float32(v)*dq + b
			}
		}
	}
}

// FullyConnectedInt8 computes the quantized fully connected layer: input
// dynamically quantized, int32 dot products against the per-output-row
// quantized weights, dequantized + bias into dst. qw/wScale come from
// QuantizePerChannel(w, outN). dst nil allocates; s nil uses a throwaway
// arena.
func FullyConnectedInt8(dst *T, in *T, qw []int8, wScale []float32, bias []float32, outN, workers int, s *Scratch) *T {
	inN := in.Len()
	if len(qw) != outN*inN {
		panic(fmt.Sprintf("tensor: fc weights len %d, want %d", len(qw), outN*inN))
	}
	if len(wScale) != outN {
		panic(fmt.Sprintf("tensor: fc weight scales len %d, want %d", len(wScale), outN))
	}
	if int64(outN)*int64(inN) < parMinMACs {
		workers = 1
	}
	if s == nil {
		s = &Scratch{}
	}
	inScale := maxAbs(in.Data) / 127
	qin := s.QIn(inN)
	quantizeInto(qin, in.Data, inScale)

	out := intoShape(dst, outN, 1, 1)
	if workers <= 1 {
		fcInt8Range(out.Data, qin, qw, wScale, bias, inScale, inN, 0, outN)
	} else {
		shard(outN, workers, func(lo, hi int) {
			fcInt8Range(out.Data, qin, qw, wScale, bias, inScale, inN, lo, hi)
		})
	}
	return out
}

// fcInt8Range computes output neurons [lo,hi) of the int8 FC layer.
func fcInt8Range(out []float32, qin, qw []int8, wScale, bias []float32, inScale float32, inN, lo, hi int) {
	for o := lo; o < hi; o++ {
		row := qw[o*inN : (o+1)*inN]
		var a0, a1, a2, a3 int32
		i := 0
		for ; i+4 <= inN; i += 4 {
			a0 += int32(row[i]) * int32(qin[i])
			a1 += int32(row[i+1]) * int32(qin[i+1])
			a2 += int32(row[i+2]) * int32(qin[i+2])
			a3 += int32(row[i+3]) * int32(qin[i+3])
		}
		acc := a0 + a1 + a2 + a3
		for ; i < inN; i++ {
			acc += int32(row[i]) * int32(qin[i])
		}
		sum := float32(acc) * (inScale * wScale[o])
		if bias != nil {
			sum += bias[o]
		}
		out[o] = sum
	}
}
