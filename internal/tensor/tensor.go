// Package tensor implements the small dense-tensor math substrate backing
// the DNN inference engine: CHW feature maps, 2D convolution, max pooling,
// fully connected layers and the activation functions used by the YOLO- and
// GOTURN-shaped networks in the paper's pipeline.
//
// The implementation favours clarity and determinism over peak FLOPs — the
// reproduction's CPU-native mode characterizes relative computational cost,
// while full-scale platform latencies come from the calibrated models in
// internal/accel.
package tensor

import (
	"fmt"
	"math"
)

// T is a 3-dimensional tensor in CHW layout (channels, height, width),
// the layout used by the convolutional layers. A vector is represented as
// C=N, H=W=1.
type T struct {
	C, H, W int
	Data    []float32
}

// New allocates a zeroed C×H×W tensor. It panics on non-positive dims.
func New(c, h, w int) *T {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%dx%d", c, h, w))
	}
	return &T{C: c, H: h, W: w, Data: make([]float32, c*h*w)}
}

// NewVec allocates a zeroed length-n vector tensor (n×1×1).
func NewVec(n int) *T { return New(n, 1, 1) }

// Len returns the number of elements.
func (t *T) Len() int { return t.C * t.H * t.W }

// At returns element (c,y,x) without bounds checking beyond the slice's own.
func (t *T) At(c, y, x int) float32 { return t.Data[(c*t.H+y)*t.W+x] }

// Set writes element (c,y,x).
func (t *T) Set(c, y, x int, v float32) { t.Data[(c*t.H+y)*t.W+x] = v }

// Clone returns a deep copy of the tensor.
func (t *T) Clone() *T {
	out := New(t.C, t.H, t.W)
	copy(out.Data, t.Data)
	return out
}

// Fill sets every element to v.
func (t *T) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// SameShape reports whether t and o have identical dimensions.
func (t *T) SameShape(o *T) bool { return t.C == o.C && t.H == o.H && t.W == o.W }

func (t *T) String() string { return fmt.Sprintf("tensor(%dx%dx%d)", t.C, t.H, t.W) }

// Conv2D computes a 2D convolution of in with weights w, writing into a new
// tensor. Weights are laid out [outC][inC][k][k]; bias has length outC and
// may be nil. stride and pad follow the usual conventions. The output has
// dims outC × ((H+2p−k)/s+1) × ((W+2p−k)/s+1).
func Conv2D(in *T, w []float32, bias []float32, outC, k, stride, pad int) *T {
	if stride <= 0 || k <= 0 {
		panic(fmt.Sprintf("tensor: invalid conv k=%d stride=%d", k, stride))
	}
	if len(w) != outC*in.C*k*k {
		panic(fmt.Sprintf("tensor: conv weights len %d, want %d", len(w), outC*in.C*k*k))
	}
	oh := (in.H+2*pad-k)/stride + 1
	ow := (in.W+2*pad-k)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv output %dx%d non-positive", oh, ow))
	}
	out := New(outC, oh, ow)
	for oc := 0; oc < outC; oc++ {
		var b float32
		if bias != nil {
			b = bias[oc]
		}
		wBase := oc * in.C * k * k
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - pad
				sum := b
				for ic := 0; ic < in.C; ic++ {
					wOff := wBase + ic*k*k
					inOff := ic * in.H * in.W
					for ky := 0; ky < k; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= in.H {
							continue
						}
						rowOff := inOff + iy*in.W
						wRow := wOff + ky*k
						for kx := 0; kx < k; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= in.W {
								continue
							}
							sum += w[wRow+kx] * in.Data[rowOff+ix]
						}
					}
				}
				out.Data[(oc*oh+oy)*ow+ox] = sum
			}
		}
	}
	return out
}

// MaxPool2D computes max pooling with a k×k window and the given stride.
func MaxPool2D(in *T, k, stride int) *T {
	return MaxPool2DInto(nil, in, k, stride)
}

// MaxPool2DInto is MaxPool2D writing into dst (nil allocates). dst must not
// alias in. Results are bitwise-identical to MaxPool2D.
func MaxPool2DInto(dst *T, in *T, k, stride int) *T {
	if k <= 0 || stride <= 0 {
		panic(fmt.Sprintf("tensor: invalid pool k=%d stride=%d", k, stride))
	}
	oh := (in.H-k)/stride + 1
	ow := (in.W-k)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: pool output %dx%d non-positive", oh, ow))
	}
	out := intoShape(dst, in.C, oh, ow)
	for c := 0; c < in.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(-3.4e38)
				for ky := 0; ky < k; ky++ {
					iy := oy*stride + ky
					rowOff := (c*in.H + iy) * in.W
					for kx := 0; kx < k; kx++ {
						v := in.Data[rowOff+ox*stride+kx]
						if v > best {
							best = v
						}
					}
				}
				out.Data[(c*oh+oy)*ow+ox] = best
			}
		}
	}
	return out
}

// FullyConnected computes out = W·flatten(in) + bias, where w is row-major
// [outN][inN] and bias may be nil. The result is an outN-vector. This is the
// single-threaded entry point; FullyConnectedPar shards the same kernel
// across goroutines with bitwise-identical results.
func FullyConnected(in *T, w []float32, bias []float32, outN int) *T {
	return FullyConnectedPar(in, w, bias, outN, 1)
}

// ReLU applies max(0,x) in place and returns the tensor.
func ReLU(t *T) *T {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
	return t
}

// LeakyReLU applies x<0 ? alpha*x : x in place (YOLO uses alpha=0.1).
func LeakyReLU(t *T, alpha float32) *T {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = alpha * v
		}
	}
	return t
}

// Sigmoid applies the logistic function in place.
func Sigmoid(t *T) *T {
	for i, v := range t.Data {
		t.Data[i] = 1 / (1 + exp32(-v))
	}
	return t
}

// Softmax normalizes the slice seg in place to a probability distribution
// using the numerically stable max-shift formulation.
func Softmax(seg []float32) {
	if len(seg) == 0 {
		return
	}
	maxV := seg[0]
	for _, v := range seg[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float32
	for i, v := range seg {
		e := exp32(v - maxV)
		seg[i] = e
		sum += e
	}
	if sum == 0 {
		return
	}
	for i := range seg {
		seg[i] /= sum
	}
}

// exp32 is a float32 exponential clamped to the activation range so that
// extreme logits saturate instead of overflowing to +Inf.
func exp32(x float32) float32 {
	if x > 60 {
		x = 60
	}
	if x < -60 {
		return 0
	}
	return float32(math.Exp(float64(x)))
}
