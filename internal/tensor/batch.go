package tensor

import "fmt"

// Batched kernels: one sharded call computes N same-shape convolutions (or
// fully connected layers) for N independent input streams. The win over N
// solo calls is twofold: one goroutine fan-out amortizes across the whole
// batch, and the GEMM walks output channels in the outer loop with samples
// inner, so each weight row is hot in cache while it multiplies every
// stream's patches.
//
// Determinism contract: every output element of sample i is produced by
// exactly one goroutine running the same per-channel loop body as the solo
// kernel over sample i's data alone, so each dsts[i] is bitwise-identical
// to the corresponding solo Conv2DIm2ColParInto / FullyConnectedParInto
// call — for any worker count and any batch composition.

// batchShape validates that every input shares ins[0]'s shape and that dsts
// is a parallel slice of non-nil destinations.
func batchShape(dsts, ins []*T) {
	if len(ins) == 0 || len(dsts) != len(ins) {
		panic(fmt.Sprintf("tensor: batch of %d inputs, %d outputs", len(ins), len(dsts)))
	}
	c, h, w := ins[0].C, ins[0].H, ins[0].W
	for i, in := range ins {
		if in.C != c || in.H != h || in.W != w {
			panic(fmt.Sprintf("tensor: batch input %d is %dx%dx%d, want %dx%dx%d",
				i, in.C, in.H, in.W, c, h, w))
		}
		if dsts[i] == nil {
			panic(fmt.Sprintf("tensor: batch output %d is nil", i))
		}
	}
}

// Conv2DIm2ColBatchInto convolves each ins[i] into dsts[i] in one batched
// im2col GEMM. All inputs must share one shape; every dsts[i] must be
// non-nil with outC·oh·ow elements (scratch Buf slots qualify). Patch
// staging for the whole batch comes from s (nil uses a throwaway arena), so
// a warm serial call allocates nothing. dsts must not alias ins. Each
// sample's result is bitwise-identical to the solo kernel — see the
// determinism contract above.
func Conv2DIm2ColBatchInto(dsts, ins []*T, w []float32, bias []float32, outC, k, stride, pad, workers int, s *Scratch) {
	batchShape(dsts, ins)
	oh, ow := convShape(ins[0], len(w), outC, k, stride, pad)
	b := len(ins)
	patchRows := ins[0].C * k * k
	cols := oh * ow
	if int64(b)*int64(outC)*int64(patchRows)*int64(cols) < parMinMACs {
		workers = 1
	}
	if s == nil {
		s = &Scratch{}
	}
	// One contiguous patch matrix for the whole batch: sample i's rows
	// live at patches[i·patchRows·cols : (i+1)·patchRows·cols].
	patches := s.Patches(b * patchRows * cols)
	for i := range dsts {
		dsts[i] = intoShape(dsts[i], outC, oh, ow)
	}
	if workers <= 1 {
		lowerPatchesBatchRange(patches, ins, k, stride, pad, oh, ow, 0, b*patchRows)
		convGemmBatchRange(dsts, patches, w, bias, patchRows, cols, 0, b*outC)
		return
	}
	shard(b*patchRows, workers, func(lo, hi int) {
		lowerPatchesBatchRange(patches, ins, k, stride, pad, oh, ow, lo, hi)
	})
	shard(b*outC, workers, func(lo, hi int) {
		convGemmBatchRange(dsts, patches, w, bias, patchRows, cols, lo, hi)
	})
}

// lowerPatchesBatchRange lowers batch patch-matrix rows [lo,hi), where row
// unit u addresses sample u/patchRows, patch row u%patchRows. Each unit
// runs the solo lowering over one row of one sample's patch block.
func lowerPatchesBatchRange(patches []float32, ins []*T, k, stride, pad, oh, ow, lo, hi int) {
	patchRows := ins[0].C * k * k
	cols := oh * ow
	block := patchRows * cols
	for u := lo; u < hi; u++ {
		i, row := u/patchRows, u%patchRows
		lowerPatchesRange(patches[i*block:(i+1)*block], ins[i], k, stride, pad, oh, ow, row, row+1)
	}
}

// convGemmBatchRange computes GEMM units [lo,hi), where unit u addresses
// output channel u/len(dsts) of sample u%len(dsts) — channel-major so
// consecutive units reuse one hot weight row across the whole batch. Each
// unit runs the solo per-channel GEMM body over its own sample's block.
func convGemmBatchRange(dsts []*T, patches, w, bias []float32, patchRows, cols, lo, hi int) {
	b := len(dsts)
	block := patchRows * cols
	for u := lo; u < hi; u++ {
		oc, i := u/b, u%b
		convGemmRange(dsts[i].Data, patches[i*block:(i+1)*block], w, bias, patchRows, cols, oc, oc+1)
	}
}

// FullyConnectedBatchInto computes each ins[i]'s fully connected layer into
// dsts[i] in one batched call: output neurons are the outer loop with
// samples inner, so each weight row is read once per neuron while hot and
// dotted against every stream. All inputs must share one shape; every
// dsts[i] must be non-nil with outN elements. A warm serial call allocates
// nothing. Each sample's result is bitwise-identical to the solo
// FullyConnectedParInto.
func FullyConnectedBatchInto(dsts, ins []*T, w []float32, bias []float32, outN, workers int) {
	batchShape(dsts, ins)
	inN := ins[0].Len()
	if len(w) != outN*inN {
		panic(fmt.Sprintf("tensor: fc weights len %d, want %d", len(w), outN*inN))
	}
	b := len(ins)
	if int64(b)*int64(outN)*int64(inN) < parMinMACs {
		workers = 1
	}
	for i := range dsts {
		dsts[i] = intoShape(dsts[i], outN, 1, 1)
	}
	if workers <= 1 {
		fcBatchRange(dsts, ins, w, bias, inN, 0, outN)
		return
	}
	shard(outN, workers, func(lo, hi int) {
		fcBatchRange(dsts, ins, w, bias, inN, lo, hi)
	})
}

// fcBatchRange computes output neurons [lo,hi) for every sample, neurons
// outer and samples inner. Each (neuron, sample) cell runs the solo
// four-chain dot product over that sample's input alone.
func fcBatchRange(dsts, ins []*T, w, bias []float32, inN, lo, hi int) {
	for o := lo; o < hi; o++ {
		for i := range ins {
			fcRange(dsts[i].Data, ins[i].Data, w, bias, inN, o, o+1)
		}
	}
}
