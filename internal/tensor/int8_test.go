package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantizeSymmetricRoundTrip(t *testing.T) {
	src := []float32{-1, -0.5, 0, 0.25, 1}
	q, scale := QuantizeSymmetric(src)
	if scale == 0 {
		t.Fatal("scale = 0 for non-zero tensor")
	}
	for i, want := range src {
		got := float32(q[i]) * scale
		if diff := math.Abs(float64(got - want)); diff > float64(scale)/2+1e-7 {
			t.Errorf("q[%d]: dequant %v, want %v (off by %v > scale/2)", i, got, want, diff)
		}
	}
	// The extreme value must hit the end of the int8 range exactly.
	if q[4] != 127 || q[0] != -127 {
		t.Errorf("extremes quantized to %d and %d, want 127 and -127", q[4], q[0])
	}
}

func TestQuantizeSymmetricZeroTensor(t *testing.T) {
	q, scale := QuantizeSymmetric(make([]float32, 8))
	if scale != 0 {
		t.Errorf("scale = %v, want 0", scale)
	}
	for i, v := range q {
		if v != 0 {
			t.Errorf("q[%d] = %d, want 0", i, v)
		}
	}
}

func TestQuantizeNaNBecomesZero(t *testing.T) {
	nan := float32(math.NaN())
	q, scale := QuantizeSymmetric([]float32{1, nan, -1})
	if scale == 0 {
		t.Fatal("NaN poisoned the scale to 0")
	}
	if q[1] != 0 {
		t.Errorf("NaN quantized to %d, want 0", q[1])
	}
	if q[0] != 127 || q[2] != -127 {
		t.Errorf("finite values %d, %d — NaN corrupted the scale", q[0], q[2])
	}
}

func TestQuantizePerChannelScalesIndependent(t *testing.T) {
	// Two rows with very different magnitudes: per-channel scales keep the
	// small row's resolution; one shared scale would crush it.
	w := []float32{100, -50, 0.01, -0.005}
	q, scales := QuantizePerChannel(w, 2)
	if len(scales) != 2 {
		t.Fatalf("got %d scales, want 2", len(scales))
	}
	if scales[0] == scales[1] {
		t.Error("rows with different ranges got the same scale")
	}
	if q[2] != 127 {
		t.Errorf("small row's max quantized to %d, want 127 (full resolution)", q[2])
	}
}

func TestQuantizePerChannelPanicsOnRemainder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 5 weights over 2 rows")
		}
	}()
	QuantizePerChannel(make([]float32, 5), 2)
}

// int8Tolerance bounds the quantized-vs-float output error for one output
// element: one rounding step of at most scale/2 per operand plus the
// product cross-term, summed over the reduction (see the package doc and
// DESIGN.md). inMax/wMax are the max-abs of the input and of the weight
// row, n the reduction length.
func int8Tolerance(inMax, wMax float32, n int) float64 {
	sIn := float64(inMax) / 127
	sW := float64(wMax) / 127
	// Σ|w_i|·s_in/2 + Σ|x_i|·s_w/2 + n·s_in·s_w/4, bounded by maxima.
	return float64(n) * (float64(wMax)*sIn/2 + float64(inMax)*sW/2 + sIn*sW/4)
}

func TestConv2DInt8MatchesFloatProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		inC := 1 + rng.Intn(4)
		hw := 4 + rng.Intn(13)
		outC := 1 + rng.Intn(8)
		k := 1 + 2*rng.Intn(2) // 1 or 3
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		if hw < k {
			continue
		}
		in := New(inC, hw, hw)
		for i := range in.Data {
			in.Data[i] = float32(rng.NormFloat64())
		}
		w := make([]float32, outC*inC*k*k)
		for i := range w {
			w[i] = float32(rng.NormFloat64())
		}
		bias := make([]float32, outC)
		for i := range bias {
			bias[i] = float32(rng.NormFloat64())
		}

		want := Conv2DIm2ColPar(in, w, bias, outC, k, stride, pad, 1)
		qw, ws := QuantizePerChannel(w, outC)
		got := Conv2DInt8(nil, in, qw, ws, bias, outC, k, stride, pad, 1, nil)

		if got.C != want.C || got.H != want.H || got.W != want.W {
			t.Fatalf("trial %d: shape %dx%dx%d, want %dx%dx%d",
				trial, got.C, got.H, got.W, want.C, want.H, want.W)
		}
		inMax := maxAbs(in.Data)
		cols := want.H * want.W
		for oc := 0; oc < outC; oc++ {
			wMax := maxAbs(w[oc*inC*k*k : (oc+1)*inC*k*k])
			tol := int8Tolerance(inMax, wMax, inC*k*k)
			for c := 0; c < cols; c++ {
				i := oc*cols + c
				if diff := math.Abs(float64(got.Data[i] - want.Data[i])); diff > tol {
					t.Fatalf("trial %d (inC=%d hw=%d outC=%d k=%d): out[%d] int8 %v vs float %v, |diff| %v > budget %v",
						trial, inC, hw, outC, k, i, got.Data[i], want.Data[i], diff, tol)
				}
			}
		}
	}
}

func TestFullyConnectedInt8MatchesFloatProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		inN := 1 + rng.Intn(256)
		outN := 1 + rng.Intn(32)
		in := New(inN, 1, 1)
		for i := range in.Data {
			in.Data[i] = float32(rng.NormFloat64())
		}
		w := make([]float32, outN*inN)
		for i := range w {
			w[i] = float32(rng.NormFloat64())
		}
		bias := make([]float32, outN)
		for i := range bias {
			bias[i] = float32(rng.NormFloat64())
		}

		want := FullyConnectedPar(in, w, bias, outN, 1)
		qw, ws := QuantizePerChannel(w, outN)
		got := FullyConnectedInt8(nil, in, qw, ws, bias, outN, 1, nil)

		inMax := maxAbs(in.Data)
		for o := 0; o < outN; o++ {
			wMax := maxAbs(w[o*inN : (o+1)*inN])
			tol := int8Tolerance(inMax, wMax, inN)
			if diff := math.Abs(float64(got.Data[o] - want.Data[o])); diff > tol {
				t.Fatalf("trial %d (inN=%d outN=%d): out[%d] int8 %v vs float %v, |diff| %v > budget %v",
					trial, inN, outN, o, got.Data[o], want.Data[o], diff, tol)
			}
		}
	}
}

func TestConv2DInt8ZeroInput(t *testing.T) {
	// A zero input tensor has scale 0; the whole output must collapse to the
	// bias, not NaN from a 0/0.
	in := New(2, 5, 5)
	w := make([]float32, 3*2*3*3)
	for i := range w {
		w[i] = 1
	}
	bias := []float32{1, 2, 3}
	qw, ws := QuantizePerChannel(w, 3)
	out := Conv2DInt8(nil, in, qw, ws, bias, 3, 3, 1, 1, 1, nil)
	cols := out.H * out.W
	for oc := 0; oc < 3; oc++ {
		for c := 0; c < cols; c++ {
			if got := out.Data[oc*cols+c]; got != bias[oc] {
				t.Fatalf("out[%d][%d] = %v, want bias %v", oc, c, got, bias[oc])
			}
		}
	}
}

func TestConv2DInt8DeterministicAcrossWorkersAndDst(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := New(3, 16, 16)
	for i := range in.Data {
		in.Data[i] = float32(rng.NormFloat64())
	}
	w := make([]float32, 8*3*3*3)
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	qw, ws := QuantizePerChannel(w, 8)
	ref := Conv2DInt8(nil, in, qw, ws, nil, 8, 3, 1, 1, 1, nil)
	for _, workers := range []int{2, 4} {
		s := &Scratch{}
		dst := New(8, 16, 16)
		got := Conv2DInt8(dst, in, qw, ws, nil, 8, 3, 1, 1, workers, s)
		for i := range ref.Data {
			if got.Data[i] != ref.Data[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v (int math must be exact)",
					workers, i, got.Data[i], ref.Data[i])
			}
		}
	}
}

func BenchmarkConv2DInt8(b *testing.B) {
	in := New(16, 64, 64)
	for i := range in.Data {
		in.Data[i] = float32(i%255)/255 - 0.5
	}
	w := make([]float32, 32*16*3*3)
	for i := range w {
		w[i] = float32(i%17)/17 - 0.5
	}
	bias := make([]float32, 32)
	qw, ws := QuantizePerChannel(w, 32)
	s := &Scratch{}
	dst := New(32, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DInt8(dst, in, qw, ws, bias, 32, 3, 1, 1, 1, s)
	}
}

func BenchmarkFullyConnectedInt8(b *testing.B) {
	in := New(4096, 1, 1)
	for i := range in.Data {
		in.Data[i] = float32(i%255)/255 - 0.5
	}
	w := make([]float32, 256*4096)
	for i := range w {
		w[i] = float32(i%17)/17 - 0.5
	}
	bias := make([]float32, 256)
	qw, ws := QuantizePerChannel(w, 256)
	s := &Scratch{}
	dst := New(256, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FullyConnectedInt8(dst, in, qw, ws, bias, 256, 1, s)
	}
}
