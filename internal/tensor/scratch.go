package tensor

// Scratch is a reusable memory arena for the inference hot path. A warm
// Scratch makes the conv/FC kernels and a dnn feed-forward pass
// allocation-free: the im2col patch matrix, the int8 quantization buffers
// and the activation tensors all come from grow-only backing stores that
// are retained across frames instead of being reallocated per layer.
//
// Ownership rules (see DESIGN.md "Buffer ownership and reuse"):
//
//   - A Scratch is NOT safe for concurrent use. Give each worker its own
//     (the detect and track engines keep theirs in a sync.Pool).
//   - Buf slots 0 and 1 are the network ping-pong slots: a feed-forward
//     pass alternates layer outputs between them, so a tensor returned by
//     a ForwardScratch-style call aliases scratch memory and is only valid
//     until the scratch is used again. Copy out what must survive.
//   - Callers that need values to survive across forward passes (e.g. the
//     tracker's two-branch concat) use Buf slots >= 2, which no kernel
//     touches.
//   - Patches/QPatches/QIn are private to the conv/FC kernels within one
//     kernel call.
//
// The zero value is ready to use.
type Scratch struct {
	patches  []float32 // im2col patch matrix (float path)
	qpatches []int8    // im2col patch matrix (int8 path)
	qin      []int8    // quantized input vector / weights row staging
	slots    []*slot   // indexed tensor slots (0,1 = ping-pong)
}

// slot instances are heap-allocated individually (slots is a slice of
// pointers) so the *T handed out by Buf stays stable even when the slot
// index space grows.
type slot struct {
	t   T
	buf []float32
}

// Patches returns the float32 patch-matrix buffer resized to n elements.
// Contents are unspecified: the im2col lowering writes every element,
// including explicit zeros for padded positions, so no clearing happens
// here.
func (s *Scratch) Patches(n int) []float32 {
	if cap(s.patches) < n {
		s.patches = make([]float32, n)
	}
	return s.patches[:n]
}

// QPatches returns the int8 patch-matrix buffer resized to n elements.
// Contents are unspecified (fully written by the quantized lowering).
func (s *Scratch) QPatches(n int) []int8 {
	if cap(s.qpatches) < n {
		s.qpatches = make([]int8, n)
	}
	return s.qpatches[:n]
}

// QIn returns the int8 input-staging buffer resized to n elements.
// Contents are unspecified (fully written by the quantizer).
func (s *Scratch) QIn(n int) []int8 {
	if cap(s.qin) < n {
		s.qin = make([]int8, n)
	}
	return s.qin[:n]
}

// Buf returns the i'th scratch tensor reshaped to c×h×w, growing its
// backing store as needed. Contents are unspecified — callers must fully
// write the tensor before reading it. The returned pointer stays stable
// for the life of the Scratch (only the Data slice is re-sized), so a warm
// call allocates nothing.
func (s *Scratch) Buf(i, c, h, w int) *T {
	for len(s.slots) <= i {
		s.slots = append(s.slots, &slot{})
	}
	sl := s.slots[i]
	n := c * h * w
	if cap(sl.buf) < n {
		sl.buf = make([]float32, n)
	}
	sl.t = T{C: c, H: h, W: w, Data: sl.buf[:n]}
	return &sl.t
}

// Warm pre-sizes the arena so the first frame through a pooled scratch
// does not allocate either: nPatch float32 patch elements, nQ int8
// elements for each quantization buffer, and ping-pong slots of nAct
// elements each.
func (s *Scratch) Warm(nPatch, nQ, nAct int) {
	s.Patches(nPatch)
	s.QPatches(nQ)
	s.QIn(nQ)
	s.Buf(0, 1, 1, nAct)
	s.Buf(1, 1, 1, nAct)
}
