package tensor

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func randConvCase(seed int64) (in *T, w, bias []float32, outC, k int) {
	rng := rand.New(rand.NewSource(seed))
	in = New(3, 20, 20)
	for i := range in.Data {
		in.Data[i] = float32(rng.NormFloat64())
	}
	outC, k = 8, 3
	w = make([]float32, outC*in.C*k*k)
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	bias = make([]float32, outC)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	return
}

// The Into variants are the allocation-free spine of the steady-state hot
// path; they must be bitwise-identical to their allocating counterparts.
func TestIntoVariantsBitwiseEqualAllocating(t *testing.T) {
	in, w, bias, outC, k := randConvCase(3)

	want := Conv2DIm2ColPar(in, w, bias, outC, k, 1, 1, 2)
	s := &Scratch{}
	dst := New(outC, in.H, in.W)
	got := Conv2DIm2ColParInto(dst, in, w, bias, outC, k, 1, 1, 2, s)
	if got != dst {
		t.Fatal("Conv2DIm2ColParInto did not return its destination")
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("conv into: out[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}

	pw := MaxPool2D(want, 2, 2)
	pdst := New(pw.C, pw.H, pw.W)
	pgot := MaxPool2DInto(pdst, want, 2, 2)
	for i := range pw.Data {
		if pgot.Data[i] != pw.Data[i] {
			t.Fatalf("pool into: out[%d] = %v, want %v", i, pgot.Data[i], pw.Data[i])
		}
	}

	fcW := make([]float32, 16*want.Len())
	rng := rand.New(rand.NewSource(4))
	for i := range fcW {
		fcW[i] = float32(rng.NormFloat64())
	}
	fw := FullyConnectedPar(want, fcW, nil, 16, 2)
	fdst := New(16, 1, 1)
	fgot := FullyConnectedParInto(fdst, want, fcW, nil, 16, 2)
	for i := range fw.Data {
		if fgot.Data[i] != fw.Data[i] {
			t.Fatalf("fc into: out[%d] = %v, want %v", i, fgot.Data[i], fw.Data[i])
		}
	}
}

// Satellite: the GEMM used to skip zero weights, which silently converted
// 0·NaN (= NaN) into 0 and hid corrupt activations. Zero weights must
// propagate non-finite inputs exactly like the direct convolution.
func TestConvNonFinitePropagation(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	in := New(1, 6, 6)
	for i := range in.Data {
		in.Data[i] = 1
	}
	in.Data[14] = nan // somewhere mid-tensor
	in.Data[27] = inf

	// Weight row containing exact zeros: 0·NaN must still poison the sums.
	w := []float32{0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0, 1, 0, 1}
	outC, k := 2, 3

	want := Conv2D(in, w, nil, outC, k, 1, 1)
	got := Conv2DIm2ColPar(in, w, nil, outC, k, 1, 1, 2)
	s := &Scratch{}
	into := Conv2DIm2ColParInto(New(outC, 6, 6), in, w, nil, outC, k, 1, 1, 2, s)

	sawNaN := false
	for i := range want.Data {
		wNaN := math.IsNaN(float64(want.Data[i]))
		if wNaN {
			sawNaN = true
		}
		for name, out := range map[string]*T{"par": got, "into": into} {
			gNaN := math.IsNaN(float64(out.Data[i]))
			if wNaN != gNaN {
				t.Fatalf("%s out[%d] = %v, direct = %v: NaN propagation differs", name, i, out.Data[i], want.Data[i])
			}
			if !wNaN && out.Data[i] != want.Data[i] {
				t.Fatalf("%s out[%d] = %v, want %v", name, i, out.Data[i], want.Data[i])
			}
		}
	}
	if !sawNaN {
		t.Fatal("test case never produced NaN outputs — not exercising propagation")
	}
}

func TestFCNonFinitePropagation(t *testing.T) {
	nan := float32(math.NaN())
	in := New(8, 1, 1)
	for i := range in.Data {
		in.Data[i] = 1
	}
	in.Data[3] = nan
	// Row 0 hits the NaN with weight 0, row 1 avoids index 3 entirely.
	w := make([]float32, 2*8)
	w[0+3] = 0
	w[0+5] = 2
	for i := 8; i < 16; i++ {
		w[i] = 1
	}
	w[8+3] = 0

	want := FullyConnected(in, w, nil, 2)
	got := FullyConnectedPar(in, w, nil, 2, 2)
	for i := range want.Data {
		wNaN := math.IsNaN(float64(want.Data[i]))
		gNaN := math.IsNaN(float64(got.Data[i]))
		if wNaN != gNaN {
			t.Fatalf("out[%d] = %v, direct = %v: NaN propagation differs", i, got.Data[i], want.Data[i])
		}
	}
}

func TestScratchBuffersStableAndDistinct(t *testing.T) {
	s := &Scratch{}
	a := s.Buf(0, 2, 3, 4)
	b := s.Buf(1, 2, 3, 4)
	if a == b || &a.Data[0] == &b.Data[0] {
		t.Fatal("distinct slots aliased")
	}
	a.Data[0] = 42
	// Re-requesting a slot at smaller-or-equal size keeps the same backing.
	a2 := s.Buf(0, 1, 2, 3)
	if &a2.Data[0] != &a.Data[0] {
		t.Fatal("slot re-request moved the backing array")
	}
	// Growing may reallocate but must keep the tensor header stable.
	a3 := s.Buf(0, 8, 8, 8)
	if a3 != a {
		t.Fatal("slot grow returned a different tensor header")
	}
	if a3.C != 8 || a3.H != 8 || a3.W != 8 {
		t.Fatalf("slot shape %dx%dx%d after grow", a3.C, a3.H, a3.W)
	}
}

// Distinct scratch arenas must be safely usable from concurrent goroutines
// (each pipeline worker owns one); run under -race this is the aliasing
// gate for the whole arena design.
func TestScratchConcurrentDistinctArenas(t *testing.T) {
	in, w, bias, outC, k := randConvCase(5)
	want := Conv2DIm2ColPar(in, w, bias, outC, k, 1, 1, 1)
	qw, ws := QuantizePerChannel(w, outC)
	qwant := Conv2DInt8(nil, in, qw, ws, bias, outC, k, 1, 1, 1, nil)

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := &Scratch{}
			dst := New(outC, in.H, in.W)
			qdst := New(outC, in.H, in.W)
			for iter := 0; iter < 20; iter++ {
				got := Conv2DIm2ColParInto(dst, in, w, bias, outC, k, 1, 1, 1, s)
				qgot := Conv2DInt8(qdst, in, qw, ws, bias, outC, k, 1, 1, 1, s)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						errs <- "float conv diverged across goroutines"
						return
					}
					if qgot.Data[i] != qwant.Data[i] {
						errs <- "int8 conv diverged across goroutines"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// Alloc gates (run by `make alloc-gate`, without -race): the warm hot path
// must not allocate at all.
func TestAllocConvInto(t *testing.T) {
	in, w, bias, outC, k := randConvCase(6)
	s := &Scratch{}
	dst := New(outC, in.H, in.W)
	Conv2DIm2ColParInto(dst, in, w, bias, outC, k, 1, 1, 1, s) // warm the arena
	allocs := testing.AllocsPerRun(10, func() {
		Conv2DIm2ColParInto(dst, in, w, bias, outC, k, 1, 1, 1, s)
	})
	if allocs != 0 {
		t.Errorf("warm Conv2DIm2ColParInto allocates %.1f/op, want 0", allocs)
	}
}

func TestAllocConvInt8Into(t *testing.T) {
	in, w, bias, outC, k := randConvCase(7)
	qw, ws := QuantizePerChannel(w, outC)
	s := &Scratch{}
	dst := New(outC, in.H, in.W)
	Conv2DInt8(dst, in, qw, ws, bias, outC, k, 1, 1, 1, s)
	allocs := testing.AllocsPerRun(10, func() {
		Conv2DInt8(dst, in, qw, ws, bias, outC, k, 1, 1, 1, s)
	})
	if allocs != 0 {
		t.Errorf("warm Conv2DInt8 allocates %.1f/op, want 0", allocs)
	}
}

func TestAllocFCAndPoolInto(t *testing.T) {
	in, w, _, _, _ := randConvCase(8)
	fcW := make([]float32, 4*in.Len())
	copy(fcW, w)
	fdst := New(4, 1, 1)
	pdst := New(in.C, in.H/2, in.W/2)
	FullyConnectedParInto(fdst, in, fcW, nil, 4, 1)
	MaxPool2DInto(pdst, in, 2, 2)
	allocs := testing.AllocsPerRun(10, func() {
		FullyConnectedParInto(fdst, in, fcW, nil, 4, 1)
		MaxPool2DInto(pdst, in, 2, 2)
	})
	if allocs != 0 {
		t.Errorf("warm FC+pool Into allocate %.1f/op, want 0", allocs)
	}
}
