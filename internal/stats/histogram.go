package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width-bucket histogram over [Lo, Hi). Samples outside
// the range are clamped into the first/last bucket so totals are preserved,
// which is the behaviour wanted for latency plots with a known axis.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	width   float64
	total   int
}

// NewHistogram creates a histogram with n buckets covering [lo, hi).
// It panics if n <= 0 or hi <= lo, which are programming errors.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%g,%g) n=%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n), width: (hi - lo) / float64(n)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	idx := int(math.Floor((v - h.Lo) / h.width))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Buckets) {
		idx = len(h.Buckets) - 1
	}
	h.Buckets[idx]++
	h.total++
}

// Total reports the number of recorded samples.
func (h *Histogram) Total() int { return h.total }

// BucketRange returns the [lo,hi) span of bucket i.
func (h *Histogram) BucketRange(i int) (float64, float64) {
	return h.Lo + float64(i)*h.width, h.Lo + float64(i+1)*h.width
}

// Render draws a textual bar chart, one row per non-empty bucket, scaled to
// width columns. Useful for CLI experiment output.
func (h *Histogram) Render(width int) string {
	maxCount := 0
	for _, c := range h.Buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		return "(empty histogram)\n"
	}
	var b strings.Builder
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		lo, hi := h.BucketRange(i)
		bar := strings.Repeat("#", int(math.Round(float64(c)/float64(maxCount)*float64(width))))
		fmt.Fprintf(&b, "[%10.2f, %10.2f) %7d %s\n", lo, hi, c, bar)
	}
	return b.String()
}
