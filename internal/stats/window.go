package stats

import (
	"fmt"
	"math"
	"sort"
)

// DefaultWindowCap is the window capacity used when NewWindow is given a
// non-positive capacity. It is sized so the paper's 99.99th-percentile tail
// is resolvable from the window alone (≥ 2/(1-0.9999) samples beyond the
// quantile) with headroom.
const DefaultWindowCap = 1 << 15 // 32768

// Window is a bounded streaming variant of Distribution: it retains only
// the most recent capacity samples in a ring buffer, so folding a sample in
// is O(1) and memory is constant no matter how long the stream runs. It is
// the store behind the live constraint monitor, where Distribution's
// retain-everything + re-sort-on-query behaviour is too expensive for a
// per-frame hot path.
//
// Quantile queries sort a scratch copy of the window lazily and cache the
// order until the next Add, so a burst of queries between folds costs one
// O(k log k) sort of the bounded window (k = capacity), never a sort of the
// whole stream. Quantile interpolation is identical to Distribution's: when
// the window has not yet wrapped, Window and Distribution agree exactly on
// the same samples.
//
// Window additionally tracks lifetime aggregates (TotalN, TotalSum,
// TotalMean) over every sample ever folded in, which windowed eviction does
// not disturb. Not safe for concurrent use; wrap it (telemetry.Dist does).
type Window struct {
	buf      []float64 // ring storage, len == capacity
	head     int       // next write position
	count    int       // samples currently held (≤ capacity)
	sum      kahanSum  // compensated sum of the samples currently held
	totalN   int64     // lifetime samples observed
	totalSum float64   // lifetime sum
	scratch  []float64 // sorted copy of the window, valid when !dirty
	dirty    bool
}

// kahanSum is a Neumaier-compensated float64 accumulator: fold errors are
// carried in a second term instead of being discarded, so long add (and
// add/subtract) streams cannot drift arbitrarily far from the true sum.
// Distribution and Window share it, which keeps their means bitwise-equal
// over the same sample sequence.
type kahanSum struct{ sum, comp float64 }

// fold accumulates v (Neumaier's variant, which also handles |v| exceeding
// |sum|).
func (k *kahanSum) fold(v float64) {
	t := k.sum + v
	if math.Abs(k.sum) >= math.Abs(v) {
		k.comp += (k.sum - t) + v
	} else {
		k.comp += (v - t) + k.sum
	}
	k.sum = t
}

// value returns the compensated total.
func (k *kahanSum) value() float64 { return k.sum + k.comp }

// NewWindow returns an empty window holding the most recent capacity
// samples; capacity <= 0 selects DefaultWindowCap.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		capacity = DefaultWindowCap
	}
	return &Window{buf: make([]float64, capacity)}
}

// Cap reports the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Add folds one sample into the window, evicting the oldest sample once the
// window is full. Amortized O(1).
//
// The running sum is Neumaier-compensated and additionally recomputed from
// the ring every time the write position wraps, so the add/subtract updates
// across evictions cannot drift arbitrarily far from the true window sum
// over long streams (each wrap resets accumulated error; compensation
// bounds it in between).
func (w *Window) Add(v float64) {
	if w.count == len(w.buf) {
		w.sum.fold(-w.buf[w.head])
	} else {
		w.count++
	}
	w.buf[w.head] = v
	w.head++
	w.sum.fold(v)
	if w.head == len(w.buf) {
		w.head = 0
		w.recompute()
	}
	w.totalN++
	w.totalSum += v
	w.dirty = true
}

// recompute re-derives the compensated sum from the ring contents alone.
func (w *Window) recompute() {
	w.sum = kahanSum{}
	for _, v := range w.buf[:w.count] {
		w.sum.fold(v)
	}
}

// N reports the number of samples currently in the window.
func (w *Window) N() int { return w.count }

// TotalN reports the lifetime number of samples folded in.
func (w *Window) TotalN() int64 { return w.totalN }

// TotalSum reports the lifetime sum of all samples folded in.
func (w *Window) TotalSum() float64 { return w.totalSum }

// Mean returns the mean of the samples currently in the window, or 0 when
// empty.
func (w *Window) Mean() float64 {
	if w.count == 0 {
		return 0
	}
	return w.sum.value() / float64(w.count)
}

// TotalMean returns the lifetime mean over every sample ever folded in.
func (w *Window) TotalMean() float64 {
	if w.totalN == 0 {
		return 0
	}
	return w.totalSum / float64(w.totalN)
}

// Min returns the smallest sample in the window, or 0 when empty.
func (w *Window) Min() float64 {
	if w.count == 0 {
		return 0
	}
	return w.ordered()[0]
}

// Max returns the largest sample in the window, or 0 when empty.
func (w *Window) Max() float64 {
	if w.count == 0 {
		return 0
	}
	s := w.ordered()
	return s[len(s)-1]
}

// Quantile returns the q-th quantile (q in [0,1]) of the samples currently
// in the window, using the same linear interpolation between order
// statistics as Distribution.Quantile. Returns 0 when empty.
func (w *Window) Quantile(q float64) float64 {
	if w.count == 0 {
		return 0
	}
	s := w.ordered()
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// P99 is shorthand for Quantile(0.99).
func (w *Window) P99() float64 { return w.Quantile(0.99) }

// P9999 is shorthand for Quantile(0.9999), the paper's tail-latency metric.
func (w *Window) P9999() float64 { return w.Quantile(0.9999) }

// Summary formats the window like Distribution.Summary (over the windowed
// samples only).
func (w *Window) Summary() string {
	return fmt.Sprintf("mean=%.1f p99=%.1f p99.99=%.1f n=%d",
		w.Mean(), w.P99(), w.P9999(), w.N())
}

// ordered returns the window's samples sorted ascending, re-sorting the
// scratch buffer only when samples were folded in since the last query.
func (w *Window) ordered() []float64 {
	if !w.dirty && len(w.scratch) == w.count {
		return w.scratch
	}
	if cap(w.scratch) < w.count {
		w.scratch = make([]float64, w.count)
	}
	w.scratch = w.scratch[:w.count]
	if w.count == len(w.buf) {
		copy(w.scratch, w.buf)
	} else {
		// Not yet wrapped: samples occupy buf[0:count].
		copy(w.scratch, w.buf[:w.count])
	}
	sort.Float64s(w.scratch)
	w.dirty = false
	return w.scratch
}
