package stats

import (
	"math"
	"testing"
)

// TestWindowMatchesDistributionExactly is the satellite's core contract:
// while the window has not wrapped, Window must agree bit-for-bit with the
// exact Distribution on the same samples at every query.
func TestWindowMatchesDistributionExactly(t *testing.T) {
	const n = 5000
	rng := NewRNG(7)
	w := NewWindow(n)
	d := NewDistribution(n)
	for i := 0; i < n; i++ {
		v := math.Abs(rng.Normal(50, 20))
		w.Add(v)
		d.Add(v)
	}
	if w.N() != d.N() {
		t.Fatalf("window n=%d, distribution n=%d", w.N(), d.N())
	}
	if w.Mean() != d.Mean() {
		// Summation order is identical (insertion order), so this must be
		// exact, not approximate.
		t.Errorf("mean: window %v, distribution %v", w.Mean(), d.Mean())
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 0.9999, 1} {
		if got, want := w.Quantile(q), d.Quantile(q); got != want {
			t.Errorf("quantile(%v): window %v, distribution %v", q, got, want)
		}
	}
	if w.Min() != d.Min() || w.Max() != d.Max() {
		t.Error("min/max disagree with distribution")
	}
	if w.P99() != d.P99() || w.P9999() != d.P9999() {
		t.Error("tail shorthands disagree with distribution")
	}
}

// TestWindowEviction checks the rolling semantics: only the most recent
// capacity samples answer queries, while lifetime aggregates keep counting.
func TestWindowEviction(t *testing.T) {
	w := NewWindow(4)
	for i := 1; i <= 10; i++ {
		w.Add(float64(i))
	}
	if w.N() != 4 {
		t.Fatalf("n=%d, want 4", w.N())
	}
	if w.Min() != 7 || w.Max() != 10 {
		t.Errorf("window holds [%v,%v], want [7,10]", w.Min(), w.Max())
	}
	if w.Mean() != 8.5 {
		t.Errorf("windowed mean = %v, want 8.5", w.Mean())
	}
	if w.Quantile(0.5) != 8.5 {
		t.Errorf("median = %v, want 8.5", w.Quantile(0.5))
	}
	if w.TotalN() != 10 {
		t.Errorf("total n = %d, want 10", w.TotalN())
	}
	if w.TotalSum() != 55 {
		t.Errorf("total sum = %v, want 55", w.TotalSum())
	}
	if w.TotalMean() != 5.5 {
		t.Errorf("total mean = %v, want 5.5", w.TotalMean())
	}
}

// TestWindowWrappedQuantileAgainstOracle re-checks quantiles after the ring
// wraps by rebuilding a Distribution over the same trailing window.
func TestWindowWrappedQuantileAgainstOracle(t *testing.T) {
	const capacity, total = 257, 2000
	rng := NewRNG(11)
	samples := make([]float64, total)
	w := NewWindow(capacity)
	for i := range samples {
		samples[i] = rng.Uniform(0, 100)
		w.Add(samples[i])
	}
	oracle := NewDistribution(capacity)
	oracle.AddAll(samples[total-capacity:])
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		if got, want := w.Quantile(q), oracle.Quantile(q); got != want {
			t.Errorf("wrapped quantile(%v): window %v, oracle %v", q, got, want)
		}
	}
}

func TestWindowEmptyAndDefaults(t *testing.T) {
	w := NewWindow(0)
	if w.Cap() != DefaultWindowCap {
		t.Errorf("default capacity = %d, want %d", w.Cap(), DefaultWindowCap)
	}
	if w.Quantile(0.5) != 0 || w.Mean() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Error("empty window must answer 0")
	}
	if w.Summary() == "" {
		t.Error("empty summary")
	}
}

// TestWindowQueryDoesNotDisturbFolds guards the lazy-sort bookkeeping:
// alternating Add/Quantile must not corrupt the ring contents.
func TestWindowAlternatingAddQuery(t *testing.T) {
	w := NewWindow(8)
	d := NewDistribution(8)
	for i := 0; i < 8; i++ {
		v := float64((i * 37) % 11)
		w.Add(v)
		d.Add(v)
		if got, want := w.Quantile(0.5), d.Quantile(0.5); got != want {
			t.Fatalf("after %d adds: median %v, want %v", i+1, got, want)
		}
	}
}

func BenchmarkWindowAdd(b *testing.B) {
	w := NewWindow(DefaultWindowCap)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 1000))
	}
}

// BenchmarkWindowFoldAndQuery measures the live monitor's per-frame pattern
// (one fold, one tail query) on a full window — the hot path the satellite
// bounds.
func BenchmarkWindowFoldAndQuery(b *testing.B) {
	w := NewWindow(4096)
	for i := 0; i < 4096; i++ {
		w.Add(float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 1000))
		_ = w.P9999()
	}
}

// Regression for the running-sum drift bug: the window sum used to be a
// plain float64 updated by add/subtract on every eviction, so one huge
// sample poisoned the mean long after it left the window (1e16 + 1 == 1e16
// in float64, and the absorbed small samples stayed lost forever). The
// compensated sum plus the recompute-on-wrap must recover exactly.
func TestWindowMeanRecoversAfterHugeSample(t *testing.T) {
	w := NewWindow(8)
	w.Add(1e16)
	for i := 0; i < 100; i++ {
		w.Add(1.0)
	}
	if got := w.Mean(); got != 1.0 {
		t.Fatalf("window mean %v after the huge sample left, want exactly 1.0", got)
	}
}

// Long-stream drift: alternating large and small magnitudes for many times
// the window capacity must keep the windowed mean glued to the true mean of
// the current contents.
func TestWindowLongStreamNoDrift(t *testing.T) {
	w := NewWindow(64)
	rng := NewRNG(99)
	var all []float64
	for i := 0; i < 64*200; i++ {
		v := rng.Float64()
		if i%3 == 0 {
			v *= 1e12
		}
		w.Add(v)
		all = append(all, v)
	}
	// Oracle: sum the last 64 samples directly.
	var want float64
	for _, v := range all[len(all)-64:] {
		want += v
	}
	want /= float64(w.N())
	got := w.Mean()
	if math.Abs(got-want) > math.Abs(want)*1e-12 {
		t.Fatalf("windowed mean drifted: %v, oracle %v", got, want)
	}
}
