package stats

import (
	"fmt"
	"math"
	"sort"
)

// Distribution accumulates scalar samples (latencies in milliseconds, power
// in watts, ...) and answers summary queries: mean, min/max, arbitrary
// quantiles. Samples are retained, so quantiles are exact; the simulator's
// experiments run at most a few hundred thousand frames, for which exact
// retention is cheap and removes estimator error from the reproduction.
//
// The zero value is an empty distribution ready for use.
type Distribution struct {
	samples []float64
	sorted  bool
	sum     kahanSum
}

// NewDistribution returns an empty distribution with capacity for n samples.
func NewDistribution(n int) *Distribution {
	return &Distribution{samples: make([]float64, 0, n)}
}

// Add records one sample.
func (d *Distribution) Add(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
	d.sum.fold(v)
}

// AddAll records every sample in vs.
func (d *Distribution) AddAll(vs []float64) {
	for _, v := range vs {
		d.Add(v)
	}
}

// N reports the number of samples recorded.
func (d *Distribution) N() int { return len(d.samples) }

// Mean returns the arithmetic mean, or 0 for an empty distribution.
func (d *Distribution) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.sum.value() / float64(len(d.samples))
}

// Min returns the smallest sample, or 0 for an empty distribution.
func (d *Distribution) Min() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.samples[0]
}

// Max returns the largest sample, or 0 for an empty distribution.
func (d *Distribution) Max() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.samples[len(d.samples)-1]
}

// Quantile returns the q-th quantile (q in [0,1]) using linear interpolation
// between order statistics. Quantile(0.5) is the median; Quantile(0.9999) is
// the paper's 99.99th-percentile tail metric. Returns 0 when empty.
func (d *Distribution) Quantile(q float64) float64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return d.Min()
	}
	if q >= 1 {
		return d.Max()
	}
	d.ensureSorted()
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return d.samples[lo]
	}
	frac := pos - float64(lo)
	return d.samples[lo]*(1-frac) + d.samples[hi]*frac
}

// P99 is shorthand for Quantile(0.99).
func (d *Distribution) P99() float64 { return d.Quantile(0.99) }

// P9999 is shorthand for Quantile(0.9999), the paper's tail-latency metric.
func (d *Distribution) P9999() float64 { return d.Quantile(0.9999) }

// StdDev returns the population standard deviation.
func (d *Distribution) StdDev() float64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	mean := d.Mean()
	var ss float64
	for _, v := range d.samples {
		dv := v - mean
		ss += dv * dv
	}
	return math.Sqrt(ss / float64(n))
}

// Samples returns a copy of the recorded samples. Insertion order is NOT
// preserved: any quantile query (Quantile, Min, Max, P99, ...) sorts the
// backing slice in place, destroying the original order. Use the returned
// values for histograms and re-aggregation only, never as a time series.
func (d *Distribution) Samples() []float64 {
	out := make([]float64, len(d.samples))
	copy(out, d.samples)
	return out
}

// Summary formats the distribution like the paper's figures: mean, P99 and
// P99.99 in the sample unit.
func (d *Distribution) Summary() string {
	return fmt.Sprintf("mean=%.1f p99=%.1f p99.99=%.1f n=%d",
		d.Mean(), d.P99(), d.P9999(), d.N())
}

func (d *Distribution) ensureSorted() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Merge returns a new distribution containing the samples of all inputs.
// Nil inputs are skipped, so partial aggregations (e.g. a stage that never
// ran) merge without special-casing at the call site.
func Merge(ds ...*Distribution) *Distribution {
	total := 0
	for _, d := range ds {
		if d != nil {
			total += d.N()
		}
	}
	out := NewDistribution(total)
	for _, d := range ds {
		if d == nil {
			continue
		}
		for _, v := range d.samples {
			out.Add(v)
		}
	}
	return out
}
