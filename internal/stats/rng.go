// Package stats provides the deterministic statistics substrate used across
// the simulator: seeded random number generation, streaming latency
// distributions, quantile estimation, and fixed-width histograms.
//
// Every stochastic element of the reproduction (scene generation, platform
// jitter, relocalization events) draws from an explicitly seeded RNG so that
// all experiments are reproducible bit-for-bit.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source with the distribution helpers the
// simulator needs. It wraps math/rand with an explicit seed; the zero value
// is not usable — construct with NewRNG.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent deterministic stream from this one, keyed by
// label. Two forks with different labels are decorrelated; the parent stream
// is not advanced.
func (r *RNG) Fork(label string) *RNG {
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	// Mix with the parent seed state via a draw-free hash of one peeked value.
	return NewRNG(int64(h ^ uint64(r.src.Int63())))
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// Uniform returns a uniform value in [lo,hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Normal returns a normal sample with the given mean and standard deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// LogNormal returns a log-normal sample where the underlying normal has
// parameters mu and sigma. The returned value has median exp(mu).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.src.NormFloat64())
}

// Exponential returns an exponential sample with the given mean.
func (r *RNG) Exponential(mean float64) float64 {
	return r.src.ExpFloat64() * mean
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.src.Float64() < p }

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle permutes a slice of indices using swap, mirroring rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }
