package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGForkDecorrelated(t *testing.T) {
	a := NewRNG(7).Fork("det")
	b := NewRNG(7).Fork("loc")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("forked streams correlated: %d/100 identical draws", same)
	}
}

func TestRNGForkDeterministic(t *testing.T) {
	a := NewRNG(7).Fork("det")
	b := NewRNG(7).Fork("det")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-label forks diverged")
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Uniform(10,20) = %v out of range", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(4)
	n := 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		ss += v * v
	}
	mean := sum / float64(n)
	variance := ss/float64(n) - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("normal mean = %v, want ~5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(5)
	n := 100001
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.LogNormal(math.Log(10), 0.5)
	}
	sort.Float64s(vs)
	median := vs[n/2]
	if math.Abs(median-10) > 0.5 {
		t.Errorf("log-normal median = %v, want ~10", median)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(6)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(3)
	}
	if mean := sum / float64(n); math.Abs(mean-3) > 0.05 {
		t.Errorf("exponential mean = %v, want ~3", mean)
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(8)
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if math.Abs(rate-0.25) > 0.01 {
		t.Errorf("bernoulli rate = %v, want ~0.25", rate)
	}
}

func TestDistributionBasics(t *testing.T) {
	d := NewDistribution(4)
	d.AddAll([]float64{4, 1, 3, 2})
	if d.N() != 4 {
		t.Fatalf("N = %d, want 4", d.N())
	}
	if d.Mean() != 2.5 {
		t.Errorf("Mean = %v, want 2.5", d.Mean())
	}
	if d.Min() != 1 || d.Max() != 4 {
		t.Errorf("Min/Max = %v/%v, want 1/4", d.Min(), d.Max())
	}
	if med := d.Quantile(0.5); med != 2.5 {
		t.Errorf("median = %v, want 2.5", med)
	}
}

func TestDistributionEmpty(t *testing.T) {
	var d Distribution
	if d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 || d.Quantile(0.5) != 0 || d.StdDev() != 0 {
		t.Error("empty distribution should report zeros")
	}
}

func TestDistributionQuantileEndpoints(t *testing.T) {
	d := NewDistribution(3)
	d.AddAll([]float64{5, 10, 15})
	if d.Quantile(0) != 5 {
		t.Errorf("Quantile(0) = %v, want 5", d.Quantile(0))
	}
	if d.Quantile(1) != 15 {
		t.Errorf("Quantile(1) = %v, want 15", d.Quantile(1))
	}
	if d.Quantile(-0.5) != 5 || d.Quantile(1.5) != 15 {
		t.Error("out-of-range quantiles should clamp")
	}
}

func TestDistributionTail(t *testing.T) {
	d := NewDistribution(10000)
	for i := 0; i < 9999; i++ {
		d.Add(10)
	}
	d.Add(1000) // one outlier
	if d.P9999() <= 10 {
		t.Errorf("P9999 = %v, should exceed the bulk value", d.P9999())
	}
	if d.Max() != 1000 {
		t.Errorf("Max = %v, want 1000", d.Max())
	}
	if d.Quantile(0.5) != 10 {
		t.Errorf("median = %v, want 10", d.Quantile(0.5))
	}
}

func TestDistributionAddAfterQuantile(t *testing.T) {
	d := NewDistribution(4)
	d.AddAll([]float64{1, 2, 3})
	_ = d.Quantile(0.5) // forces sort
	d.Add(0.5)
	if d.Min() != 0.5 {
		t.Errorf("Min after post-sort Add = %v, want 0.5", d.Min())
	}
	if d.N() != 4 {
		t.Errorf("N = %d, want 4", d.N())
	}
}

func TestDistributionStdDev(t *testing.T) {
	d := NewDistribution(2)
	d.AddAll([]float64{2, 4})
	if sd := d.StdDev(); math.Abs(sd-1) > 1e-12 {
		t.Errorf("StdDev = %v, want 1", sd)
	}
}

func TestMerge(t *testing.T) {
	a := NewDistribution(2)
	a.AddAll([]float64{1, 2})
	b := NewDistribution(2)
	b.AddAll([]float64{3, 4})
	m := Merge(a, b)
	if m.N() != 4 || m.Mean() != 2.5 {
		t.Errorf("merge: N=%d mean=%v, want 4/2.5", m.N(), m.Mean())
	}
}

// Property: quantiles are monotone in q and bounded by [Min, Max].
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		d := NewDistribution(len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			d.Add(v)
		}
		a, b := math.Abs(math.Mod(q1, 1)), math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		qa, qb := d.Quantile(a), d.Quantile(b)
		return qa <= qb && qa >= d.Min() && qb <= d.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [Min, Max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		d := NewDistribution(len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
			d.Add(v)
		}
		if d.N() == 0 {
			return true
		}
		const eps = 1e-9
		return d.Mean() >= d.Min()-eps-math.Abs(d.Min())*1e-9 &&
			d.Mean() <= d.Max()+eps+math.Abs(d.Max())*1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5) // clamps into bucket 0
	h.Add(50) // clamps into bucket 9
	if h.Total() != 12 {
		t.Fatalf("Total = %d, want 12", h.Total())
	}
	if h.Buckets[0] != 2 || h.Buckets[9] != 2 {
		t.Errorf("clamping failed: first=%d last=%d", h.Buckets[0], h.Buckets[9])
	}
	lo, hi := h.BucketRange(3)
	if lo != 3 || hi != 4 {
		t.Errorf("BucketRange(3) = [%v,%v), want [3,4)", lo, hi)
	}
	if h.Render(20) == "" {
		t.Error("Render returned empty output")
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(1,0,5) should panic")
		}
	}()
	NewHistogram(1, 0, 5)
}

func TestHistogramEmptyRender(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Render(10) != "(empty histogram)\n" {
		t.Errorf("empty render = %q", h.Render(10))
	}
}

func TestDistributionSummary(t *testing.T) {
	d := NewDistribution(1)
	d.Add(1)
	if s := d.Summary(); s == "" {
		t.Error("Summary empty")
	}
}

func TestSamplesCopy(t *testing.T) {
	d := NewDistribution(2)
	d.AddAll([]float64{1, 2})
	s := d.Samples()
	s[0] = 99
	if d.Min() == 99 {
		t.Error("Samples() must return a copy")
	}
}
