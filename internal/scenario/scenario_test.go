package scenario_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"adsim/internal/faultinject"
	"adsim/internal/scenario"
	"adsim/internal/scene"
)

func TestParseProgram(t *testing.T) {
	src := `
# compound program: world phases plus fault rules
phase 0-30s: density=8/km, driver=aggressive
phase 30-60s: blackout=2s@45s, illumination=0.4
DET:delay=30ms:every=5, IO:err:p=0.2
`
	p, err := scenario.Parse("demo", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Timeline == nil || len(p.Timeline.Phases) != 2 {
		t.Fatalf("timeline = %+v, want 2 phases", p.Timeline)
	}
	ph0 := p.Timeline.Phases[0]
	if ph0.Start != 0 || ph0.End != 30 {
		t.Errorf("phase 0 range = %g-%g", ph0.Start, ph0.End)
	}
	if !ph0.Set.Has(scene.SetDensity) || ph0.Density != 8 {
		t.Errorf("phase 0 density = %+v", ph0)
	}
	if !ph0.Set.Has(scene.SetDriver) || ph0.Driver != scene.DriverAggressive {
		t.Errorf("phase 0 driver = %+v", ph0)
	}
	ph1 := p.Timeline.Phases[1]
	if want := (scene.TimeWindow{Start: 45, End: 47}); len(ph1.Blackouts) != 1 || ph1.Blackouts[0] != want {
		t.Errorf("phase 1 blackouts = %+v, want [%+v]", ph1.Blackouts, want)
	}
	if !ph1.Set.Has(scene.SetIllumination) || ph1.Illumination != 0.4 {
		t.Errorf("phase 1 illumination = %+v", ph1)
	}
	wantFaults := []scenario.FaultRule{
		{Stage: "DET", Delay: 30 * time.Millisecond, Every: 5},
		{Stage: "IO", Err: true, P: 0.2},
	}
	if !reflect.DeepEqual(p.Faults, wantFaults) {
		t.Errorf("faults = %+v, want %+v", p.Faults, wantFaults)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "empty scenario"},
		{"comments only", "# nothing\n  \n", "empty scenario"},
		{"no range", "phase 30s: density=1/km", "needs a start-end range"},
		{"bad start", "phase x-30s: density=1/km", "bad start time"},
		{"bad end", "phase 0-y: density=1/km", "bad end time"},
		{"overlap", "phase 0-30s: density=1/km; phase 20-40s: density=2/km", "overlaps"},
		{"open not last", "phase 0-: density=1/km; phase 30-40s: density=2/km", "not last"},
		{"density range", "phase 0-10s: density=900/km", "outside [0,200]/km"},
		{"illumination range", "phase 0-10s: illumination=3", "outside (0,2]"},
		{"lanes range", "phase 0-10s: lanes=20", "outside [1,8]"},
		{"unknown clause", "phase 0-10s: fog=0.5", `unknown key "fog"`},
		{"unknown driver", "phase 0-10s: driver=sleepy", "unknown driver profile"},
		{"bad window", "phase 0-10s: blackout=2s", "needs duration@start"},
		{"window outside phase", "phase 0-10s: blackout=2s@40s", "outside phase range"},
		{"loop period", "phase 0-10s: loop=100m", "not a multiple of 6m"},
		{"loop with traffic", "phase 0-10s: density=5/km, loop=120m", "loop worlds are static"},
		{"loop inherits traffic", "phase 0-10s: density=5/km; phase 10-20s: loop=120m", "loop worlds are static"},
		{"bad fault rule", "DET", "needs STAGE:action"},
		{"fault validation", "DET:delay=1ms:every=2:burst=5", "exceeds its period"},
		{"nan density", "phase 0-10s: density=NaN", "outside [0,200]/km"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := scenario.Parse("t", tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse(%q) err = %v, want substring %q", tc.src, err, tc.want)
			}
		})
	}
}

// TestLoopClearedTrafficOK is the positive counterpart of the
// loop-topology rejections: clearing density before the loop phase (as
// the library's loop-closure program does) validates cleanly.
func TestLoopClearedTrafficOK(t *testing.T) {
	_, err := scenario.Parse("t",
		"phase 0-10s: density=5/km; phase 10-20s: density=0/km, peds=0/km, loop=120m")
	if err != nil {
		t.Fatal(err)
	}
}

func TestLibrary(t *testing.T) {
	names := scenario.Library()
	if len(names) < 6 {
		t.Fatalf("library has %d programs, want >= 6: %v", len(names), names)
	}
	for _, want := range []string{"rush-hour", "cut-in", "occlusion-burst", "blackout", "loop-closure", "mixed-stress"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("library %v is missing %q", names, want)
		}
	}
	for _, n := range names {
		p, err := scenario.Load(n)
		if err != nil {
			t.Fatalf("Load(%q): %v", n, err)
		}
		if p.Timeline == nil {
			t.Errorf("library program %q has no timeline", n)
		}
		// Every library program must compile into a generator and injector.
		cfg := p.Configure(scene.DefaultConfig(scene.Urban))
		if _, err := scene.New(cfg); err != nil {
			t.Errorf("library program %q does not build a scene: %v", n, err)
		}
		if _, err := faultinject.New(faultinject.FromProgram(p, 1)); err != nil {
			t.Errorf("library program %q does not build an injector: %v", n, err)
		}
	}
	if _, err := scenario.Load("no-such-program"); err == nil || !strings.Contains(err.Error(), "no library program") {
		t.Errorf("Load(no-such-program) err = %v", err)
	}
}

func TestResolve(t *testing.T) {
	if p, err := scenario.Resolve("rush-hour"); err != nil || p.Name != "rush-hour" {
		t.Fatalf("Resolve(rush-hour) = %v, %v", p, err)
	}
	path := filepath.Join(t.TempDir(), "custom.adsc")
	if err := os.WriteFile(path, []byte("phase 0-10s: density=3/km\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := scenario.Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "custom" || p.Timeline == nil {
		t.Fatalf("Resolve(file) = %+v", p)
	}
	if _, err := scenario.Resolve("/no/such/file.adsc"); err == nil {
		t.Fatal("Resolve of a missing file succeeded")
	}
}

// TestStringRoundTrip: the canonical rendering of every library program
// re-parses to an equivalent program.
func TestStringRoundTrip(t *testing.T) {
	for _, n := range scenario.Library() {
		p, err := scenario.Load(n)
		if err != nil {
			t.Fatal(err)
		}
		q, err := scenario.Parse(n, p.String())
		if err != nil {
			t.Fatalf("%s: re-parse of %q: %v", n, p.String(), err)
		}
		if !reflect.DeepEqual(p.Timeline, q.Timeline) || !reflect.DeepEqual(p.Faults, q.Faults) {
			t.Errorf("%s round-trip changed the program:\n%+v\n%+v", n, p, q)
		}
	}
}

// TestFaultinjectShim: the legacy fault grammar parses identically through
// the unified parser, and world statements are rejected on the fault path.
func TestFaultinjectShim(t *testing.T) {
	sc, err := faultinject.Parse("DET:delay=30ms:every=5, IO:err:p=0.2", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Rules) != 2 || sc.Seed != 7 {
		t.Fatalf("shim parse = %+v", sc)
	}
	_, err = faultinject.Parse("phase 0-10s: density=1/km", 7)
	if err == nil || !strings.Contains(err.Error(), "scenario program") {
		t.Fatalf("world clauses through faultinject.Parse: err = %v", err)
	}
}

// FuzzParseScenarioProgram checks the unified parser never panics, and
// that every program it accepts actually compiles: the timeline builds a
// generator and the fault rules build an injector.
func FuzzParseScenarioProgram(f *testing.F) {
	for _, n := range scenario.Library() {
		p, err := scenario.Load(n)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p.Source)
	}
	f.Add("DET:delay=30ms:every=5, IO:err:p=0.2")
	f.Add("phase 0-30s: density=8/km, driver=aggressive; phase 30-60s: blackout=2s@45s")
	f.Add("phase 0-10s: loop=120m, density=5/km")
	f.Add("phase 0-10s: density=NaN")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := scenario.Parse("fuzz", src)
		if err != nil {
			return
		}
		_ = p.String()
		cfg := p.Configure(scene.DefaultConfig(scene.Highway))
		cfg.Width, cfg.Height = 64, 32
		if _, err := scene.New(cfg); err != nil {
			t.Fatalf("accepted program does not build a scene: %v\nprogram: %q", err, src)
		}
		if _, err := faultinject.New(faultinject.FromProgram(p, 1)); err != nil {
			t.Fatalf("accepted program does not build an injector: %v\nprogram: %q", err, src)
		}
	})
}
