package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"adsim/scenarios"
)

// libraryExt is the scenario-program file extension.
const libraryExt = ".adsc"

// Library returns the names of the committed scenario programs, sorted.
func Library() []string {
	entries, err := scenarios.FS.ReadDir(".")
	if err != nil {
		return nil // the embed is compiled in; this cannot happen
	}
	var names []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), libraryExt); ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Load parses a program from the committed library by name.
func Load(name string) (*Program, error) {
	src, err := scenarios.FS.ReadFile(name + libraryExt)
	if err != nil {
		return nil, fmt.Errorf("scenario: no library program %q (have: %s)", name, strings.Join(Library(), ", "))
	}
	return Parse(name, string(src))
}

// LoadFile parses a program from a file on disk; the program's name is the
// file's base name without its extension.
func LoadFile(path string) (*Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	base := filepath.Base(path)
	name := strings.TrimSuffix(base, filepath.Ext(base))
	return Parse(name, string(src))
}

// Resolve loads a program from the library if name matches a committed
// program, otherwise treats name as a file path. This is the lookup rule
// behind command-line -scenario flags.
func Resolve(name string) (*Program, error) {
	if _, err := scenarios.FS.ReadFile(name + libraryExt); err == nil {
		return Load(name)
	}
	return LoadFile(name)
}
