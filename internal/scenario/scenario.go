// Package scenario implements the text scenario-program format: one
// validated, replayable program describing both what happens in the world
// (phased timelines of density, driver behavior, illumination, geometry,
// sensor windows, loop segments) and what happens to the pipeline (fault
// rules in the faultinject grammar). A program plus a seed is a complete,
// reproducible experiment: the scene generator replays the identical frame
// stream and the injector the identical fault sequence on every run.
//
// # Grammar
//
// A program is a sequence of statements separated by newlines or ";".
// "#" starts a comment that runs to the end of the line. Each statement is
// either a phase statement or a comma-separated list of fault rules:
//
//	phase 0-30s: density=8/km, driver=aggressive
//	phase 30-60s: illumination=0.4, blackout=2s@45s
//	DET:delay=30ms:every=5, IO:err:p=0.2
//
// A phase statement is "phase <start>-<end>s: clause, clause, ...". Times
// are scenario seconds (the trailing "s" is optional); "<start>-" leaves
// the last phase open-ended. Clauses:
//
//	density=8/km       moving-vehicle density, held by an arrival process
//	peds=2/km          pedestrian/cyclist density
//	driver=aggressive  traffic profile: calm | aggressive (cut-in, hard-brake)
//	illumination=0.4   pixel scale (0,2], as Config.Illumination
//	egospeed=20        ego speed in m/s
//	lanewidth=3.2      lane width in meters
//	lanes=4            carriageway width in lanes
//	loop=120m          phase-scoped periodic loop segment (multiple of 6 m)
//	blackout=2s@45s    camera delivers black frames for 2s starting at t=45s
//	occlusion=3s@12s   a foreground occluder covers the view
//
// Unset parameters inherit across phase boundaries, so a phase states only
// what changes. Fault-rule statements use the faultinject grammar
// (STAGE:action[:modifier...]) unchanged — faultinject.Parse is a shim over
// this parser, so every legacy "-fault" spec is already a valid program.
//
// # Validation
//
// Parse statically validates the whole program before any frame renders:
// phase ordering and overlap, parameter ranges, loop-topology constraints
// (a loop segment with nonzero moving-actor density is rejected — loop
// worlds are static), window placement, and fault-rule well-formedness
// (the same checks faultinject.New applies). A parsed Program therefore
// always compiles into a running generator and injector.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"adsim/internal/scene"
)

// FaultRule is one fault source in a program. It mirrors faultinject.Rule
// field for field (faultinject converts with a plain struct conversion);
// the duplication exists because faultinject imports this package for its
// parser, so this package cannot import faultinject back.
type FaultRule struct {
	Stage        string
	Delay        time.Duration
	Err          bool
	From, To     int
	Every, Burst int
	P            float64
}

// Program is one parsed, validated scenario program.
type Program struct {
	// Name identifies the program (library name or file base name); it may
	// be empty for inline programs.
	Name string
	// Source is the program text Parse consumed.
	Source string
	// Timeline is the compiled world timeline, nil when the program has no
	// phase statements (a pure fault program).
	Timeline *scene.Timeline
	// Faults are the program's fault rules in statement order.
	Faults []FaultRule
}

// Parse parses and statically validates a scenario program. name is used
// in error messages and may be empty.
func Parse(name, src string) (*Program, error) {
	p := &Program{Name: name, Source: src}
	var tl scene.Timeline
	for _, stmt := range statements(src) {
		if isPhaseStmt(stmt) {
			ph, err := parsePhase(stmt)
			if err != nil {
				return nil, p.wrap(err)
			}
			tl.Phases = append(tl.Phases, ph)
			continue
		}
		for _, tok := range strings.Split(stmt, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			r, err := parseFaultRule(tok)
			if err != nil {
				return nil, p.wrap(err)
			}
			p.Faults = append(p.Faults, r)
		}
	}
	if len(tl.Phases) > 0 {
		p.Timeline = &tl
	}
	if p.Timeline == nil && len(p.Faults) == 0 {
		return nil, fmt.Errorf("scenario: empty scenario program %q", src)
	}
	if err := p.Timeline.Validate(); err != nil {
		return nil, p.wrap(err)
	}
	if err := validateFaults(p.Faults); err != nil {
		return nil, p.wrap(err)
	}
	return p, nil
}

// MustParse is Parse that panics on a malformed program — for tests and
// compile-time-constant programs.
func MustParse(name, src string) *Program {
	p, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Program) wrap(err error) error {
	if p.Name == "" {
		return err
	}
	return fmt.Errorf("scenario %s: %w", p.Name, err)
}

// Configure returns base with the program's timeline attached. The base
// config provides everything the program leaves unstated — frame geometry,
// seed, initial actor counts, archetype — so an empty-timeline program
// degenerates to exactly the static config.
func (p *Program) Configure(base scene.Config) scene.Config {
	base.Timeline = p.Timeline
	return base
}

// String renders the program in canonical form: phase statements in
// timeline order, then one statement of fault rules. Parsing the result
// yields an equivalent program.
func (p *Program) String() string {
	var stmts []string
	if p.Timeline != nil {
		for _, ph := range p.Timeline.Phases {
			stmts = append(stmts, formatPhase(ph))
		}
	}
	if len(p.Faults) > 0 {
		rules := make([]string, len(p.Faults))
		for i, r := range p.Faults {
			rules[i] = formatFaultRule(r)
		}
		stmts = append(stmts, strings.Join(rules, ", "))
	}
	return strings.Join(stmts, ";\n")
}

// statements splits program text into trimmed, comment-stripped,
// non-empty statements.
func statements(src string) []string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, stmt := range strings.Split(line, ";") {
			if stmt = strings.TrimSpace(stmt); stmt != "" {
				out = append(out, stmt)
			}
		}
	}
	return out
}

func isPhaseStmt(stmt string) bool {
	first, _, _ := strings.Cut(stmt, " ")
	return strings.EqualFold(first, "phase")
}

// parseSeconds parses a scenario time like "30", "30s" or "7.5s".
func parseSeconds(tok string) (float64, error) {
	tok = strings.TrimSuffix(strings.TrimSpace(tok), "s")
	return strconv.ParseFloat(tok, 64)
}

func parsePhase(stmt string) (scene.Phase, error) {
	rest := strings.TrimSpace(stmt[len("phase"):])
	header, body, _ := strings.Cut(rest, ":")
	lo, hi, ranged := strings.Cut(strings.TrimSpace(header), "-")
	if !ranged {
		return scene.Phase{}, fmt.Errorf(`scenario: phase %q needs a start-end range (e.g. "phase 0-30s:" or open-ended "phase 60s-:")`, stmt)
	}
	var ph scene.Phase
	var err error
	if ph.Start, err = parseSeconds(lo); err != nil {
		return scene.Phase{}, fmt.Errorf("scenario: phase %q: bad start time: %v", stmt, err)
	}
	if hi = strings.TrimSpace(hi); hi != "" {
		if ph.End, err = parseSeconds(hi); err != nil {
			return scene.Phase{}, fmt.Errorf("scenario: phase %q: bad end time: %v", stmt, err)
		}
	}
	for _, cl := range strings.Split(body, ",") {
		cl = strings.TrimSpace(cl)
		if cl == "" {
			continue
		}
		if err := parseClause(&ph, cl); err != nil {
			return scene.Phase{}, fmt.Errorf("scenario: phase %q: %w", stmt, err)
		}
	}
	return ph, nil
}

func parseClause(ph *scene.Phase, cl string) error {
	key, val, hasVal := strings.Cut(cl, "=")
	key = strings.ToLower(strings.TrimSpace(key))
	val = strings.TrimSpace(val)
	if !hasVal || val == "" {
		return fmt.Errorf("clause %q needs key=value", cl)
	}
	var err error
	switch key {
	case "density":
		ph.Density, err = strconv.ParseFloat(strings.TrimSuffix(val, "/km"), 64)
		ph.Set |= scene.SetDensity
	case "peds":
		ph.PedDensity, err = strconv.ParseFloat(strings.TrimSuffix(val, "/km"), 64)
		ph.Set |= scene.SetPedDensity
	case "driver":
		switch strings.ToLower(val) {
		case "calm":
			ph.Driver = scene.DriverCalm
		case "aggressive":
			ph.Driver = scene.DriverAggressive
		default:
			return fmt.Errorf("clause %q: unknown driver profile %q (calm|aggressive)", cl, val)
		}
		ph.Set |= scene.SetDriver
	case "illumination":
		ph.Illumination, err = strconv.ParseFloat(val, 64)
		ph.Set |= scene.SetIllumination
	case "egospeed":
		ph.EgoSpeed, err = strconv.ParseFloat(val, 64)
		ph.Set |= scene.SetEgoSpeed
	case "lanewidth":
		ph.LaneWidth, err = strconv.ParseFloat(strings.TrimSuffix(val, "m"), 64)
		ph.Set |= scene.SetLaneWidth
	case "lanes":
		ph.NumLanes, err = strconv.Atoi(val)
		ph.Set |= scene.SetNumLanes
	case "loop":
		ph.LoopLength, err = strconv.ParseFloat(strings.TrimSuffix(val, "m"), 64)
	case "blackout":
		var w scene.TimeWindow
		if w, err = parseWindow(val); err == nil {
			ph.Blackouts = append(ph.Blackouts, w)
		}
	case "occlusion":
		var w scene.TimeWindow
		if w, err = parseWindow(val); err == nil {
			ph.Occlusions = append(ph.Occlusions, w)
		}
	default:
		return fmt.Errorf("clause %q: unknown key %q", cl, key)
	}
	if err != nil {
		return fmt.Errorf("clause %q: bad %s: %v", cl, key, err)
	}
	return nil
}

// parseWindow parses "<duration>@<start>", e.g. "2s@45s": a 2-second
// window opening at t=45s.
func parseWindow(val string) (scene.TimeWindow, error) {
	durTok, atTok, ok := strings.Cut(val, "@")
	if !ok {
		return scene.TimeWindow{}, fmt.Errorf("window %q needs duration@start (e.g. 2s@45s)", val)
	}
	dur, err := time.ParseDuration(strings.TrimSpace(durTok))
	if err != nil {
		return scene.TimeWindow{}, err
	}
	at, err := parseSeconds(atTok)
	if err != nil {
		return scene.TimeWindow{}, err
	}
	return scene.TimeWindow{Start: at, End: at + dur.Seconds()}, nil
}

// parseFaultRule parses one STAGE:action[:modifier...] token — the
// faultinject rule grammar, hosted here so world and fault clauses share
// one parser (faultinject.Parse shims onto it).
func parseFaultRule(tok string) (FaultRule, error) {
	parts := strings.Split(tok, ":")
	if len(parts) < 2 {
		return FaultRule{}, fmt.Errorf("scenario: rule %q needs STAGE:action", tok)
	}
	r := FaultRule{Stage: strings.ToUpper(strings.TrimSpace(parts[0]))}
	for _, p := range parts[1:] {
		key, val, hasVal := strings.Cut(strings.TrimSpace(p), "=")
		var err error
		switch key {
		case "err", "drop":
			if hasVal {
				return FaultRule{}, fmt.Errorf("scenario: rule %q: %s takes no value", tok, key)
			}
			r.Err = true
		case "delay":
			r.Delay, err = time.ParseDuration(val)
		case "every":
			r.Every, err = strconv.Atoi(val)
		case "burst":
			r.Burst, err = strconv.Atoi(val)
		case "p":
			r.P, err = strconv.ParseFloat(val, 64)
		case "frames":
			r.From, r.To, err = parseFrameRange(val)
		default:
			return FaultRule{}, fmt.Errorf("scenario: rule %q: unknown field %q", tok, key)
		}
		if err != nil {
			return FaultRule{}, fmt.Errorf("scenario: rule %q: bad %s: %v", tok, key, err)
		}
	}
	return r, nil
}

// parseFrameRange parses "A-B", "A-" (open-ended) or "A" (a single frame)
// into the inclusive [From,To] convention where To == 0 means unbounded.
func parseFrameRange(s string) (from, to int, err error) {
	lo, hi, ranged := strings.Cut(s, "-")
	if from, err = strconv.Atoi(lo); err != nil {
		return 0, 0, err
	}
	switch {
	case !ranged:
		to = from
	case hi == "":
		to = 0
	default:
		if to, err = strconv.Atoi(hi); err != nil {
			return 0, 0, err
		}
	}
	if ranged && hi != "" && to < from {
		return 0, 0, fmt.Errorf("range %q is inverted", s)
	}
	return from, to, nil
}

// validateFaults applies the same well-formedness checks faultinject.New
// does, so a parsed program always compiles into an injector.
func validateFaults(rules []FaultRule) error {
	for i, r := range rules {
		if r.Stage == "" {
			return fmt.Errorf("scenario: rule %d has no target stage", i)
		}
		if !r.Err && r.Delay <= 0 {
			return fmt.Errorf("scenario: rule %d (%s) has no action: set delay or err", i, r.Stage)
		}
		if r.Delay < 0 {
			return fmt.Errorf("scenario: rule %d (%s) has negative delay", i, r.Stage)
		}
		if r.From < 0 || r.To < 0 || (r.To > 0 && r.To < r.From) {
			return fmt.Errorf("scenario: rule %d (%s) has invalid frame range [%d,%d]", i, r.Stage, r.From, r.To)
		}
		if r.Every < 0 || r.Burst < 0 {
			return fmt.Errorf("scenario: rule %d (%s) has negative cadence", i, r.Stage)
		}
		if r.Burst > 0 && r.Every > 0 && r.Burst > r.Every {
			return fmt.Errorf("scenario: rule %d (%s) burst %d exceeds its period %d", i, r.Stage, r.Burst, r.Every)
		}
		if r.P < 0 || r.P > 1 {
			return fmt.Errorf("scenario: rule %d (%s) probability %v outside [0,1]", i, r.Stage, r.P)
		}
	}
	return nil
}

func formatSeconds(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64) + "s"
}

func formatPhase(ph scene.Phase) string {
	var b strings.Builder
	b.WriteString("phase ")
	b.WriteString(formatSeconds(ph.Start))
	b.WriteString("-")
	if ph.End > 0 {
		b.WriteString(formatSeconds(ph.End))
	}
	b.WriteString(":")
	var cls []string
	add := func(format string, args ...any) { cls = append(cls, fmt.Sprintf(format, args...)) }
	if ph.Set.Has(scene.SetDensity) {
		add("density=%g/km", ph.Density)
	}
	if ph.Set.Has(scene.SetPedDensity) {
		add("peds=%g/km", ph.PedDensity)
	}
	if ph.Set.Has(scene.SetDriver) {
		add("driver=%s", ph.Driver)
	}
	if ph.Set.Has(scene.SetIllumination) {
		add("illumination=%g", ph.Illumination)
	}
	if ph.Set.Has(scene.SetEgoSpeed) {
		add("egospeed=%g", ph.EgoSpeed)
	}
	if ph.Set.Has(scene.SetLaneWidth) {
		add("lanewidth=%gm", ph.LaneWidth)
	}
	if ph.Set.Has(scene.SetNumLanes) {
		add("lanes=%d", ph.NumLanes)
	}
	if ph.LoopLength > 0 {
		add("loop=%gm", ph.LoopLength)
	}
	for _, w := range ph.Blackouts {
		add("blackout=%s@%s", time.Duration((w.End-w.Start)*float64(time.Second)).Round(time.Millisecond), formatSeconds(w.Start))
	}
	for _, w := range ph.Occlusions {
		add("occlusion=%s@%s", time.Duration((w.End-w.Start)*float64(time.Second)).Round(time.Millisecond), formatSeconds(w.Start))
	}
	if len(cls) > 0 {
		b.WriteString(" ")
		b.WriteString(strings.Join(cls, ", "))
	}
	return b.String()
}

func formatFaultRule(r FaultRule) string {
	var b strings.Builder
	b.WriteString(r.Stage)
	if r.Err {
		b.WriteString(":err")
	}
	if r.Delay > 0 {
		fmt.Fprintf(&b, ":delay=%s", r.Delay)
	}
	if r.Every > 0 {
		fmt.Fprintf(&b, ":every=%d", r.Every)
	}
	if r.Burst > 0 {
		fmt.Fprintf(&b, ":burst=%d", r.Burst)
	}
	if r.P > 0 {
		fmt.Fprintf(&b, ":p=%g", r.P)
	}
	switch {
	case r.From == 0 && r.To == 0:
	case r.To == 0:
		fmt.Fprintf(&b, ":frames=%d-", r.From)
	case r.From == r.To:
		fmt.Fprintf(&b, ":frames=%d", r.From)
	default:
		fmt.Fprintf(&b, ":frames=%d-%d", r.From, r.To)
	}
	return b.String()
}
