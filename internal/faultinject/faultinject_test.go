package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
		want string // substring of the error; "" means valid
	}{
		{"valid delay", Rule{Stage: "DET", Delay: time.Millisecond}, ""},
		{"valid err", Rule{Stage: "SRC", Err: true}, ""},
		{"valid io", Rule{Stage: IOTarget, Err: true, P: 0.5}, ""},
		{"no stage", Rule{Delay: time.Millisecond}, "no target stage"},
		{"no action", Rule{Stage: "DET"}, "no action"},
		{"negative delay", Rule{Stage: "DET", Err: true, Delay: -1}, "negative delay"},
		{"negative from", Rule{Stage: "DET", Err: true, From: -1}, "invalid frame range"},
		{"inverted range", Rule{Stage: "DET", Err: true, From: 5, To: 2}, "invalid frame range"},
		{"negative cadence", Rule{Stage: "DET", Err: true, Every: -3}, "negative cadence"},
		{"burst over period", Rule{Stage: "DET", Err: true, Every: 2, Burst: 3}, "exceeds its period"},
		{"p too big", Rule{Stage: "DET", Err: true, P: 1.5}, "outside [0,1]"},
		{"p negative", Rule{Stage: "DET", Err: true, P: -0.1}, "outside [0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(Scenario{Rules: []Rule{tc.rule}})
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid rule rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestFiresTrigger(t *testing.T) {
	cases := []struct {
		name  string
		rule  Rule
		fires []int // frames in 0..19 the rule must fire on
	}{
		{"unconditional", Rule{Stage: "DET", Err: true},
			[]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19}},
		{"range", Rule{Stage: "DET", Err: true, From: 3, To: 5}, []int{3, 4, 5}},
		{"open range", Rule{Stage: "DET", Err: true, From: 17}, []int{17, 18, 19}},
		{"cadence", Rule{Stage: "DET", Err: true, Every: 6}, []int{0, 6, 12, 18}},
		{"cadence from", Rule{Stage: "DET", Err: true, From: 2, Every: 6}, []int{2, 8, 14}},
		{"burst", Rule{Stage: "DET", Err: true, Every: 7, Burst: 3},
			[]int{0, 1, 2, 7, 8, 9, 14, 15, 16}},
		{"range cadence", Rule{Stage: "DET", Err: true, From: 4, To: 12, Every: 4},
			[]int{4, 8, 12}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := map[int]bool{}
			for _, f := range tc.fires {
				want[f] = true
			}
			for frame := 0; frame < 20; frame++ {
				if got := fires(1, 0, tc.rule, frame); got != want[frame] {
					t.Errorf("frame %d: fires=%v, want %v", frame, got, want[frame])
				}
			}
		})
	}
}

// TestStageDeterminism is the core reproducibility contract: two injectors
// built from the same scenario answer identically for every (stage, frame),
// regardless of query order — including probabilistic rules.
func TestStageDeterminism(t *testing.T) {
	sc := MustParse("DET:delay=30ms:every=5,LOC:delay=80ms:p=0.4,MOTPLAN:err:frames=9-10,SRC:drop:p=0.1", 99)
	a, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	stages := []string{"SRC", "DET", "LOC", "MOTPLAN"}
	// Query a forward, b backward: pure decisions cannot notice the order.
	type key struct {
		stage string
		frame int
	}
	got := map[key][2]string{}
	for f := 0; f < 200; f++ {
		for _, s := range stages {
			d, err := a.Stage(s, f)
			got[key{s, f}] = [2]string{d.String() + errSuffix(err), ""}
		}
	}
	for f := 199; f >= 0; f-- {
		for i := len(stages) - 1; i >= 0; i-- {
			s := stages[i]
			d, err := b.Stage(s, f)
			k := key{s, f}
			v := got[k]
			v[1] = d.String() + errSuffix(err)
			got[k] = v
		}
	}
	for k, v := range got {
		if v[0] != v[1] {
			t.Fatalf("%s frame %d: injector A says %q, B says %q", k.stage, k.frame, v[0], v[1])
		}
	}
}

func errSuffix(err error) string {
	if err == nil {
		return ""
	}
	return "|" + err.Error()
}

func TestStageErrorWinsAndWrapsSentinel(t *testing.T) {
	in, err := New(Scenario{Rules: []Rule{
		{Stage: "DET", Delay: 50 * time.Millisecond},
		{Stage: "DET", Err: true, From: 3, To: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if d, err := in.Stage("DET", 2); err != nil || d != 50*time.Millisecond {
		t.Fatalf("frame 2: (%v, %v), want (50ms, nil)", d, err)
	}
	_, err = in.Stage("DET", 3)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("frame 3 err = %v, want wrapped ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "DET fault at frame 3") {
		t.Fatalf("err %q does not name stage and frame", err)
	}
	if d, err := in.Stage("LOC", 3); d != 0 || err != nil {
		t.Fatalf("unmatched stage: (%v, %v), want (0, nil)", d, err)
	}
}

func TestStageLongestDelayWins(t *testing.T) {
	in, err := New(Scenario{Rules: []Rule{
		{Stage: "LOC", Delay: 20 * time.Millisecond},
		{Stage: "LOC", Delay: 70 * time.Millisecond, Every: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := in.Stage("LOC", 0); d != 70*time.Millisecond {
		t.Fatalf("frame 0 delay = %v, want the longer 70ms", d)
	}
	if d, _ := in.Stage("LOC", 1); d != 20*time.Millisecond {
		t.Fatalf("frame 1 delay = %v, want 20ms", d)
	}
}

// TestBernoulliProperties checks the seeded coin flip is deterministic,
// seed-sensitive and roughly calibrated.
func TestBernoulliProperties(t *testing.T) {
	const n = 20000
	hits := 0
	for f := 0; f < n; f++ {
		a := bernoulli(7, 0, f, 0.3)
		if b := bernoulli(7, 0, f, 0.3); a != b {
			t.Fatalf("frame %d: flip not deterministic", f)
		}
		if a {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("p=0.3 flip hit rate %.3f over %d frames", rate, n)
	}
	diff := 0
	for f := 0; f < n; f++ {
		if bernoulli(7, 0, f, 0.3) != bernoulli(8, 0, f, 0.3) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("changing the seed never changed a flip")
	}
}

func TestIOCounterAndFaults(t *testing.T) {
	in, err := New(Scenario{Rules: []Rule{
		{Stage: IOTarget, Err: true, Every: 3},
		{Stage: "DET", Err: true}, // must not affect I/O accesses
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		err := in.IO()
		wantErr := i%3 == 0
		if (err != nil) != wantErr {
			t.Fatalf("access %d: err=%v, want fault=%v", i, err, wantErr)
		}
		if wantErr && !errors.Is(err, ErrInjected) {
			t.Fatalf("access %d: err %v does not wrap sentinel", i, err)
		}
	}
	if n := in.IOAccesses(); n != 9 {
		t.Fatalf("IOAccesses = %d, want 9", n)
	}
}

func TestIOConcurrentAccessCount(t *testing.T) {
	in, err := New(Scenario{Rules: []Rule{{Stage: IOTarget, Err: true, P: 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = in.IO()
			}
		}()
	}
	wg.Wait()
	if n := in.IOAccesses(); n != 400 {
		t.Fatalf("IOAccesses = %d after 8x50 concurrent calls, want 400", n)
	}
}

func TestOpenFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tile.bin")
	if err := os.WriteFile(path, []byte("shard"), 0o644); err != nil {
		t.Fatal(err)
	}
	in, err := New(Scenario{Rules: []Rule{{Stage: IOTarget, Err: true, From: 1, To: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := in.OpenFile(path) // access 0: clean
	if err != nil {
		t.Fatalf("clean open failed: %v", err)
	}
	rc.Close()
	if _, err := in.OpenFile(path); !errors.Is(err, ErrInjected) { // access 1: faulted
		t.Fatalf("faulted open err = %v, want ErrInjected", err)
	}
	rc, err = in.OpenFile(path) // access 2: clean again (transient)
	if err != nil {
		t.Fatalf("post-fault open failed: %v", err)
	}
	rc.Close()
}

func TestScenarioCopy(t *testing.T) {
	in, err := New(MustParse("DET:delay=5ms", 1))
	if err != nil {
		t.Fatal(err)
	}
	sc := in.Scenario()
	sc.Rules[0].Stage = "LOC"
	if d, _ := in.Stage("DET", 0); d != 5*time.Millisecond {
		t.Fatal("mutating the returned scenario changed the injector")
	}
}

func TestParse(t *testing.T) {
	sc, err := Parse("DET:delay=30ms:every=5, LOC:delay=80ms:frames=10-14, SRC:drop:every=50, IO:err:p=0.2, MOTPLAN:err:frames=9, TRA:delay=1ms:frames=7-", 42)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 42 {
		t.Fatalf("seed = %d", sc.Seed)
	}
	want := []Rule{
		{Stage: "DET", Delay: 30 * time.Millisecond, Every: 5},
		{Stage: "LOC", Delay: 80 * time.Millisecond, From: 10, To: 14},
		{Stage: "SRC", Err: true, Every: 50},
		{Stage: IOTarget, Err: true, P: 0.2},
		{Stage: "MOTPLAN", Err: true, From: 9, To: 9},
		{Stage: "TRA", Delay: time.Millisecond, From: 7, To: 0},
	}
	if len(sc.Rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(sc.Rules), len(want))
	}
	for i, w := range want {
		if sc.Rules[i] != w {
			t.Errorf("rule %d = %+v, want %+v", i, sc.Rules[i], w)
		}
	}
	if _, err := New(sc); err != nil {
		t.Fatalf("parsed scenario fails validation: %v", err)
	}
}

func TestParseLowercaseStage(t *testing.T) {
	sc, err := Parse("det:delay=1ms", 0)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Rules[0].Stage != "DET" {
		t.Fatalf("stage = %q, want canonical upper case", sc.Rules[0].Stage)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"", "empty scenario"},
		{" , ,", "empty scenario"},
		{"DET", "needs STAGE:action"},
		{"DET:wibble=3", `unknown field "wibble"`},
		{"DET:err=yes", "err takes no value"},
		{"DET:drop=1", "drop takes no value"},
		{"DET:delay=fast", "bad delay"},
		{"DET:err:every=x", "bad every"},
		{"DET:err:burst=x", "bad burst"},
		{"DET:err:p=lots", "bad p"},
		{"DET:err:frames=a-b", "bad frames"},
		{"DET:err:frames=9-3", "inverted"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec, 0)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) err = %v, want substring %q", tc.spec, err, tc.want)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on a malformed spec")
		}
	}()
	MustParse("DET", 0)
}
