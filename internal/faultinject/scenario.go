package faultinject

import (
	"fmt"

	"adsim/internal/scenario"
)

// Parse builds a scenario from a compact comma-separated rule list, the
// format the adpipe -fault flag accepts:
//
//	DET:delay=30ms:every=5          delay DET 30ms on every 5th frame
//	LOC:delay=80ms:frames=10-14     stall LOC on frames 10..14
//	LOC:delay=60ms:every=7:burst=3  bursty stall: 3 consecutive frames each period
//	SRC:drop:every=50               drop every 50th frame
//	MOTPLAN:err:frames=9            hard-fail MOTPLAN on frame 9
//	IO:err:p=0.2                    fail ~20% of map-shard loads
//
// Each rule is STAGE:action[:modifier...]. Actions are delay=<duration>,
// err, and drop (an alias for err, conventionally used on SRC). Modifiers
// are every=N, burst=N, p=0.x, and frames=A-B (inclusive; A alone pins one
// frame, "A-" leaves the range open-ended).
//
// Parse is a shim over the unified scenario-program parser: the rule
// grammar is the fault sub-grammar of internal/scenario, so every -fault
// spec is also a valid scenario program. Specs containing world (phase)
// statements are rejected here — run those as scenario programs, which
// carry both a world timeline and fault rules.
func Parse(spec string, seed int64) (Scenario, error) {
	prog, err := scenario.Parse("", spec)
	if err != nil {
		return Scenario{}, err
	}
	if prog.Timeline != nil {
		return Scenario{}, fmt.Errorf("faultinject: spec %q contains world (phase) statements; run it as a scenario program", spec)
	}
	return FromRules(prog.Faults, seed), nil
}

// MustParse is Parse that panics on a malformed spec — for tests and
// compile-time-constant scenarios.
func MustParse(spec string, seed int64) Scenario {
	sc, err := Parse(spec, seed)
	if err != nil {
		panic(err)
	}
	return sc
}

// FromRules converts scenario-program fault rules (already validated by
// the program parser) into a runnable Scenario with the given seed.
func FromRules(rules []scenario.FaultRule, seed int64) Scenario {
	sc := Scenario{Seed: seed}
	for _, r := range rules {
		sc.Rules = append(sc.Rules, Rule(r))
	}
	return sc
}

// FromProgram extracts a program's fault rules as a runnable Scenario.
// Programs with no fault rules yield an empty scenario whose injector
// never fires.
func FromProgram(prog *scenario.Program, seed int64) Scenario {
	return FromRules(prog.Faults, seed)
}
