package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds a scenario from a compact comma-separated rule list, the
// format the adpipe -fault flag accepts:
//
//	DET:delay=30ms:every=5          delay DET 30ms on every 5th frame
//	LOC:delay=80ms:frames=10-14     stall LOC on frames 10..14
//	LOC:delay=60ms:every=7:burst=3  bursty stall: 3 consecutive frames each period
//	SRC:drop:every=50               drop every 50th frame
//	MOTPLAN:err:frames=9            hard-fail MOTPLAN on frame 9
//	IO:err:p=0.2                    fail ~20% of map-shard loads
//
// Each rule is STAGE:action[:modifier...]. Actions are delay=<duration>,
// err, and drop (an alias for err, conventionally used on SRC). Modifiers
// are every=N, burst=N, p=0.x, and frames=A-B (inclusive; A alone pins one
// frame, "A-" leaves the range open-ended).
func Parse(spec string, seed int64) (Scenario, error) {
	sc := Scenario{Seed: seed}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		r, err := parseRule(tok)
		if err != nil {
			return Scenario{}, err
		}
		sc.Rules = append(sc.Rules, r)
	}
	if len(sc.Rules) == 0 {
		return Scenario{}, fmt.Errorf("faultinject: empty scenario %q", spec)
	}
	return sc, nil
}

// MustParse is Parse that panics on a malformed spec — for tests and
// compile-time-constant scenarios.
func MustParse(spec string, seed int64) Scenario {
	sc, err := Parse(spec, seed)
	if err != nil {
		panic(err)
	}
	return sc
}

func parseRule(tok string) (Rule, error) {
	parts := strings.Split(tok, ":")
	if len(parts) < 2 {
		return Rule{}, fmt.Errorf("faultinject: rule %q needs STAGE:action", tok)
	}
	r := Rule{Stage: strings.ToUpper(strings.TrimSpace(parts[0]))}
	for _, p := range parts[1:] {
		key, val, hasVal := strings.Cut(strings.TrimSpace(p), "=")
		var err error
		switch key {
		case "err", "drop":
			if hasVal {
				return Rule{}, fmt.Errorf("faultinject: rule %q: %s takes no value", tok, key)
			}
			r.Err = true
		case "delay":
			r.Delay, err = time.ParseDuration(val)
		case "every":
			r.Every, err = strconv.Atoi(val)
		case "burst":
			r.Burst, err = strconv.Atoi(val)
		case "p":
			r.P, err = strconv.ParseFloat(val, 64)
		case "frames":
			r.From, r.To, err = parseRange(val)
		default:
			return Rule{}, fmt.Errorf("faultinject: rule %q: unknown field %q", tok, key)
		}
		if err != nil {
			return Rule{}, fmt.Errorf("faultinject: rule %q: bad %s: %v", tok, key, err)
		}
	}
	return r, nil
}

// parseRange parses "A-B", "A-" (open-ended) or "A" (a single frame) into
// the inclusive [From,To] convention where To == 0 means unbounded.
func parseRange(s string) (from, to int, err error) {
	lo, hi, ranged := strings.Cut(s, "-")
	if from, err = strconv.Atoi(lo); err != nil {
		return 0, 0, err
	}
	switch {
	case !ranged:
		to = from
	case hi == "":
		to = 0
	default:
		if to, err = strconv.Atoi(hi); err != nil {
			return 0, 0, err
		}
	}
	if ranged && hi != "" && to < from {
		return 0, 0, fmt.Errorf("range %q is inverted", s)
	}
	return from, to, nil
}
