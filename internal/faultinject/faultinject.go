// Package faultinject is the deterministic chaos-testing substrate of the
// pipeline: a seeded injector that disturbs stage executions (delays, hard
// errors, dropped frames) and map-shard I/O according to a declarative
// scenario, so a chaos run is exactly reproducible — the same scenario and
// seed produce the same fault sequence no matter which executor (sequential
// Step or pipelined Runner) consumes it, or how its goroutines interleave.
//
// Reproducibility is the design constraint everything here follows from:
//
//   - Stage decisions are pure functions of (scenario, stage, frame). No
//     shared RNG stream is consumed per call — a stream's output would
//     depend on the order stages happen to ask, which differs between
//     executors. Probabilistic rules instead hash (seed, rule, frame).
//
//   - I/O decisions are keyed by the access ordinal of a mutex-guarded
//     counter. The pipeline reads the map store from exactly one stage
//     (LOC), so the access sequence — and therefore the fault sequence —
//     is identical across executors as long as background prefetching is
//     left off.
//
// The injector plugs into pipeline.Config.Inject (stage faults) and
// slam.ShardStoreOptions.Open (shard I/O faults) without either package
// importing this one: the seams are plain function types.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected hard fault, so
// tests and operators can tell a synthetic failure from a real one with
// errors.Is.
var ErrInjected = errors.New("injected fault")

// IOTarget is the Rule.Stage value selecting map-shard I/O instead of a
// pipeline stage. For I/O rules the trigger's "frame" is the shard access
// ordinal (0-based count of loads through the injector).
const IOTarget = "IO"

// Rule is one fault source in a scenario: a target (stage name or
// IOTarget), a trigger (frame range, cadence, probability) and an action
// (delay and/or hard error).
type Rule struct {
	// Stage is the canonical pipeline stage name ("SRC", "DET", "LOC",
	// "TRA", "FUSION", "MISPLAN", "MOTPLAN", "CONTROL") or IOTarget.
	Stage string

	// Delay charges this duration against the stage's deadline budget
	// (and sleeps it under wall-clock enforcement) on frames the rule
	// fires. For I/O rules the delay is slept inside the shard load.
	Delay time.Duration
	// Err injects a hard failure: the stage errors (the frame is
	// delivered with Err set, downstream stages skipped) or the shard
	// load fails. An Err fired at SRC is a dropped frame.
	Err bool

	// From and To bound the frames (or I/O access ordinals) the rule
	// applies to, inclusive. To == 0 leaves the range open-ended.
	From, To int
	// Every fires the rule once per Every frames counted from From
	// (0 fires on every frame in range). Burst widens each firing to
	// that many consecutive frames (0 means 1) — a bursty stall.
	Every, Burst int
	// P, when in (0,1), additionally gates each firing on a
	// deterministic seeded coin flip keyed by (seed, rule, frame).
	P float64
}

// Scenario is a reproducible chaos specification: a seed and a rule list.
type Scenario struct {
	Seed  int64
	Rules []Rule
}

// Injector evaluates a scenario. Stage decisions are stateless and safe
// for concurrent use; I/O decisions serialize on an internal access
// counter. Two injectors built from the same scenario make identical
// decisions.
type Injector struct {
	sc Scenario

	mu         sync.Mutex
	ioAccesses int
}

// New validates the scenario and returns its injector.
func New(sc Scenario) (*Injector, error) {
	for i, r := range sc.Rules {
		if r.Stage == "" {
			return nil, fmt.Errorf("faultinject: rule %d has no target stage", i)
		}
		if !r.Err && r.Delay <= 0 {
			return nil, fmt.Errorf("faultinject: rule %d (%s) has no action: set Delay or Err", i, r.Stage)
		}
		if r.Delay < 0 {
			return nil, fmt.Errorf("faultinject: rule %d (%s) has negative delay", i, r.Stage)
		}
		if r.From < 0 || r.To < 0 || (r.To > 0 && r.To < r.From) {
			return nil, fmt.Errorf("faultinject: rule %d (%s) has invalid frame range [%d,%d]", i, r.Stage, r.From, r.To)
		}
		if r.Every < 0 || r.Burst < 0 {
			return nil, fmt.Errorf("faultinject: rule %d (%s) has negative cadence", i, r.Stage)
		}
		if r.Burst > 0 && r.Every > 0 && r.Burst > r.Every {
			return nil, fmt.Errorf("faultinject: rule %d (%s) burst %d exceeds its period %d", i, r.Stage, r.Burst, r.Every)
		}
		if r.P < 0 || r.P > 1 {
			return nil, fmt.Errorf("faultinject: rule %d (%s) probability %v outside [0,1]", i, r.Stage, r.P)
		}
	}
	return &Injector{sc: sc}, nil
}

// Scenario returns a copy of the injector's scenario.
func (in *Injector) Scenario() Scenario {
	out := in.sc
	out.Rules = append([]Rule(nil), in.sc.Rules...)
	return out
}

// Stage reports the fault, if any, for one execution of the named stage on
// the given frame: the longest matching delay, or a hard error if any
// matching rule injects one (errors win over delays). The decision is a
// pure function of (scenario, stage, frame) — it cannot depend on the
// order executors evaluate stages in. The signature matches
// pipeline.Config.Inject.
func (in *Injector) Stage(stage string, frame int) (time.Duration, error) {
	var delay time.Duration
	for i, r := range in.sc.Rules {
		if r.Stage != stage || !fires(in.sc.Seed, i, r, frame) {
			continue
		}
		if r.Err {
			return 0, fmt.Errorf("faultinject: %s fault at frame %d: %w", stage, frame, ErrInjected)
		}
		if r.Delay > delay {
			delay = r.Delay
		}
	}
	return delay, nil
}

// IO reports the fault, if any, for the next shard I/O access, advancing
// the access counter. Matching delays are slept here (an I/O stall is real
// time on the load path); a matching Err rule fails the access.
func (in *Injector) IO() error {
	in.mu.Lock()
	n := in.ioAccesses
	in.ioAccesses++
	in.mu.Unlock()

	var delay time.Duration
	for i, r := range in.sc.Rules {
		if r.Stage != IOTarget || !fires(in.sc.Seed, i, r, n) {
			continue
		}
		if r.Err {
			return fmt.Errorf("faultinject: io fault at access %d: %w", n, ErrInjected)
		}
		if r.Delay > delay {
			delay = r.Delay
		}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return nil
}

// IOAccesses reports how many shard I/O accesses the injector has seen.
func (in *Injector) IOAccesses() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ioAccesses
}

// OpenFile is os.Open behind the injector's I/O rules. Its signature
// matches slam.ShardStoreOptions.Open, so a shard store opened with it
// sees the scenario's I/O faults.
func (in *Injector) OpenFile(path string) (io.ReadCloser, error) {
	if err := in.IO(); err != nil {
		return nil, fmt.Errorf("faultinject: opening %s: %w", path, err)
	}
	return os.Open(path)
}

// fires reports whether rule idx triggers on frame: inside the frame
// range, on the cadence (with its burst width), and past the seeded coin
// flip.
func fires(seed int64, idx int, r Rule, frame int) bool {
	if frame < r.From || (r.To > 0 && frame > r.To) {
		return false
	}
	if r.Every > 0 {
		burst := r.Burst
		if burst <= 0 {
			burst = 1
		}
		if (frame-r.From)%r.Every >= burst {
			return false
		}
	}
	if r.P > 0 && r.P < 1 {
		return bernoulli(seed, idx, frame, r.P)
	}
	return true
}

// bernoulli is a deterministic coin flip keyed by (seed, rule, frame):
// a splitmix64-style finalizer over the key, mapped to [0,1). Being a pure
// hash — not a consumed stream — is what keeps probabilistic rules
// identical across executors.
func bernoulli(seed int64, rule, frame int, p float64) bool {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(rule+1) + 0xbf58476d1ce4e5b9*uint64(frame+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/float64(1<<53) < p
}
