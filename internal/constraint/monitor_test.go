package constraint

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"adsim/internal/stats"
	"adsim/internal/telemetry"
)

// feed drives one sample set through a fresh monitor at a fixed simulated
// delivery rate and returns the monitor plus the equivalent offline inputs.
func feed(t *testing.T, samples []float64, fps float64) (*Monitor, *stats.Distribution) {
	t.Helper()
	m := NewMonitor(MonitorConfig{Window: len(samples) + 1})
	d := stats.NewDistribution(len(samples))
	base := time.Unix(0, 0)
	dt := time.Duration(float64(time.Second) / fps)
	for i, v := range samples {
		m.Observe(v, base.Add(time.Duration(i)*dt))
		d.Add(v)
	}
	return m, d
}

// TestMonitorAgreesWithOfflineCheck is the acceptance-criteria test: on the
// same sample set (and the monitor's own measured rate), the live monitor's
// Performance and Predictability verdicts must equal the offline Check's.
func TestMonitorAgreesWithOfflineCheck(t *testing.T) {
	rng := stats.NewRNG(42)
	mk := func(n int, mean, sd float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Abs(rng.Normal(mean, sd))
		}
		return out
	}
	cases := []struct {
		name    string
		samples []float64
		fps     float64
	}{
		{"fast-and-predictable", mk(25000, 20, 2), 50},
		{"tail-too-slow", mk(25000, 90, 15), 50},
		{"rate-too-low", mk(25000, 20, 2), 5},
		{"too-few-samples", mk(500, 20, 2), 50},
		{"unpredictable-blowup", append(mk(24999, 5, 0.1), 80), 50},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, d := feed(t, tc.samples, tc.fps)
			live := m.Snapshot()
			offline := Check(Input{Latency: d, FrameRate: live.FPS})
			if live.Performance.Passed != offline.Verdicts[Performance].Passed {
				t.Errorf("performance: live %v, offline %v\nlive: %s\noffline: %s",
					live.Performance.Passed, offline.Verdicts[Performance].Passed,
					live.Performance.Detail, offline.Verdicts[Performance].Detail)
			}
			if live.Predictability.Passed != offline.Verdicts[Predictability].Passed {
				t.Errorf("predictability: live %v, offline %v\nlive: %s\noffline: %s",
					live.Predictability.Passed, offline.Verdicts[Predictability].Passed,
					live.Predictability.Detail, offline.Verdicts[Predictability].Detail)
			}
			// The measurements themselves must agree exactly: same samples,
			// same quantile interpolation.
			if live.TailMs != d.Quantile(TailQuantile) {
				t.Errorf("tail: live %v, offline %v", live.TailMs, d.Quantile(TailQuantile))
			}
			if live.MeanMs != d.Mean() {
				t.Errorf("mean: live %v, offline %v", live.MeanMs, d.Mean())
			}
		})
	}
}

func TestMonitorMeasuresFPS(t *testing.T) {
	samples := make([]float64, 101)
	for i := range samples {
		samples[i] = 10
	}
	m, _ := feed(t, samples, 25)
	if fps := m.FPS(); math.Abs(fps-25) > 0.01 {
		t.Errorf("fps = %v, want ~25", fps)
	}
}

// TestMonitorRollingWindowForgets checks the live half of the contract: a
// latency regression must surface once the window rolls past the good era.
func TestMonitorRollingWindowForgets(t *testing.T) {
	m := NewMonitor(MonitorConfig{Window: 100})
	base := time.Unix(0, 0)
	at := func(i int) time.Time { return base.Add(time.Duration(i) * 20 * time.Millisecond) }
	for i := 0; i < 100; i++ {
		m.Observe(10, at(i))
	}
	if tail := m.Snapshot().TailMs; tail != 10 {
		t.Fatalf("healthy tail = %v", tail)
	}
	for i := 100; i < 200; i++ {
		m.Observe(500, at(i))
	}
	snap := m.Snapshot()
	if snap.TailMs != 500 {
		t.Errorf("regressed tail = %v, want 500 (window should have forgotten the good era)", snap.TailMs)
	}
	if snap.Performance.Passed {
		t.Error("performance verdict should fail after the regression")
	}
	if snap.N != 100 || snap.Total != 200 {
		t.Errorf("window n=%d total=%d, want 100/200", snap.N, snap.Total)
	}
}

// TestMonitorAsTelemetrySink drives the monitor through the Sink interface
// the executors use, with a synthetic timeline.
func TestMonitorAsTelemetrySink(t *testing.T) {
	var sink telemetry.Sink = NewMonitor(MonitorConfig{Window: 64})
	m := sink.(*Monitor)
	base := time.Unix(0, 0)
	for i := 0; i < 32; i++ {
		sink.Span(telemetry.Span{Stage: "DET"}) // ignored
		sink.FrameDone(telemetry.FrameEnd{
			Frame: i,
			Wall:  15 * time.Millisecond,
			At:    base.Add(time.Duration(i) * 50 * time.Millisecond),
		})
	}
	snap := m.Snapshot()
	if snap.N != 32 {
		t.Errorf("n = %d, want 32", snap.N)
	}
	if snap.TailMs != 15 {
		t.Errorf("tail = %v, want 15", snap.TailMs)
	}
	if math.Abs(snap.FPS-20) > 0.01 {
		t.Errorf("fps = %v, want ~20", snap.FPS)
	}
	// Zero At must not panic and must fall back to the host clock.
	sink.FrameDone(telemetry.FrameEnd{Frame: 32, Wall: time.Millisecond})
	if m.Snapshot().N != 33 {
		t.Error("zero-At frame not folded in")
	}
	if s := snap.String(); !strings.Contains(s, "performance") || !strings.Contains(s, "predictability") {
		t.Errorf("report render = %q", s)
	}
}

// TestMonitorDegenerateWindows pins the short-window edges: an empty
// window, a single frame and an all-zero-latency window must produce
// honest failing (or passing) verdicts with finite, renderable numbers —
// never NaN, which fails every comparison and poisons the report text.
func TestMonitorDegenerateWindows(t *testing.T) {
	noNaN := func(t *testing.T, r LiveReport) {
		t.Helper()
		for name, v := range map[string]float64{
			"tail": r.TailMs, "mean": r.MeanMs, "fps": r.FPS, "degraded-rate": r.DegradedRate,
		} {
			if math.IsNaN(v) {
				t.Errorf("%s is NaN", name)
			}
		}
		if s := r.String(); strings.Contains(s, "NaN") {
			t.Errorf("report renders NaN: %q", s)
		}
	}

	t.Run("empty", func(t *testing.T) {
		r := NewMonitor(MonitorConfig{}).Snapshot()
		noNaN(t, r)
		if r.Pass() {
			t.Error("empty window must not certify")
		}
		if r.N != 0 || r.Degraded != 0 || r.DegradedRate != 0 {
			t.Errorf("empty window counts: n=%d degraded=%d rate=%v", r.N, r.Degraded, r.DegradedRate)
		}
	})

	t.Run("single-frame", func(t *testing.T) {
		m := NewMonitor(MonitorConfig{Window: 8})
		m.ObserveDegraded(12, time.Unix(0, 0), true)
		r := m.Snapshot()
		noNaN(t, r)
		if r.N != 1 || r.Degraded != 1 || r.DegradedRate != 1 {
			t.Errorf("n=%d degraded=%d rate=%v, want 1/1/1", r.N, r.Degraded, r.DegradedRate)
		}
		if r.FPS != 0 {
			t.Errorf("one delivery has no measurable rate, got %v", r.FPS)
		}
		if r.Predictability.Passed {
			t.Error("one sample cannot certify predictability")
		}
	})

	t.Run("all-zero-latency", func(t *testing.T) {
		m := NewMonitor(MonitorConfig{Window: 64})
		base := time.Unix(0, 0)
		for i := 0; i < 64; i++ {
			m.Observe(0, base.Add(time.Duration(i)*10*time.Millisecond))
		}
		r := m.Snapshot()
		noNaN(t, r)
		// Zero mean, zero tail: perfectly flat. The blowup guard treats it
		// as 1x, so predictability fails only on sample count here.
		if !strings.Contains(r.Predictability.Detail, "1.0x") {
			t.Errorf("flat window detail = %q, want 1.0x blowup", r.Predictability.Detail)
		}
	})

	t.Run("zero-mean-positive-tail", func(t *testing.T) {
		// Directly exercise the verdict helper's other guard arm: a zero
		// mean with a positive tail is an unbounded blowup, not NaN.
		v := predictabilityVerdict(5, 0, MinTailSamples)
		if v.Passed {
			t.Error("infinite blowup passed")
		}
		if strings.Contains(v.Detail, "NaN") {
			t.Errorf("detail renders NaN: %q", v.Detail)
		}
	})
}

// TestMonitorDegradedWindowEviction checks the degraded ring's accounting
// across window wrap: once degraded frames roll out of the window the
// windowed count and rate must drop back, while the lifetime total keeps
// counting.
func TestMonitorDegradedWindowEviction(t *testing.T) {
	m := NewMonitor(MonitorConfig{Window: 10})
	base := time.Unix(0, 0)
	at := func(i int) time.Time { return base.Add(time.Duration(i) * 10 * time.Millisecond) }
	// 10 degraded frames fill the window...
	for i := 0; i < 10; i++ {
		m.ObserveDegraded(10, at(i), true)
	}
	r := m.Snapshot()
	if r.Degraded != 10 || r.DegradedRate != 1 || r.TotalDegraded != 10 {
		t.Fatalf("full-degraded window: %d in window, rate %v, total %d", r.Degraded, r.DegradedRate, r.TotalDegraded)
	}
	// ...then 7 clean frames evict 7 of them...
	for i := 10; i < 17; i++ {
		m.ObserveDegraded(10, at(i), false)
	}
	r = m.Snapshot()
	if r.Degraded != 3 || r.TotalDegraded != 10 {
		t.Fatalf("after 7 clean: %d in window (want 3), total %d (want 10)", r.Degraded, r.TotalDegraded)
	}
	if r.DegradedRate != 0.3 {
		t.Fatalf("rate = %v, want 0.3", r.DegradedRate)
	}
	// ...and clean frames evicting clean frames change nothing.
	for i := 17; i < 20; i++ {
		m.ObserveDegraded(10, at(i), false)
	}
	r = m.Snapshot()
	if r.Degraded != 0 || r.TotalDegraded != 10 {
		t.Fatalf("fully evicted: %d in window (want 0), total %d (want 10)", r.Degraded, r.TotalDegraded)
	}
	if strings.Contains(r.String(), "degraded") {
		t.Error("report should omit the degraded line when the window is clean")
	}
	// A mixed wrap: alternate degraded frames for two full window turns and
	// verify the steady-state count matches the alternation exactly.
	for i := 20; i < 40; i++ {
		m.ObserveDegraded(10, at(i), i%2 == 0)
	}
	r = m.Snapshot()
	if r.Degraded != 5 || r.TotalDegraded != 20 {
		t.Fatalf("alternating steady state: %d in window (want 5), total %d (want 20)", r.Degraded, r.TotalDegraded)
	}
	if !strings.Contains(r.String(), "5/10 frames in window (50.0%)") {
		t.Errorf("report = %q, want the degraded line", r.String())
	}
}

func TestMonitorHardMissTracking(t *testing.T) {
	m := NewMonitor(MonitorConfig{Window: 8})
	base := time.Unix(0, 0)
	at := func(i int) time.Time { return base.Add(time.Duration(i) * 10 * time.Millisecond) }
	// Frames at exactly the 100ms limit are NOT hard misses (the constraint
	// is <=); only strictly-over frames count, degraded or not.
	m.ObserveDegraded(MaxTailLatencyMs, at(0), true)
	m.Observe(50, at(1))
	m.Observe(130, at(2))
	m.ObserveDegraded(250, at(3), true)
	r := m.Snapshot()
	if r.HardMisses != 2 || r.TotalHardMisses != 2 {
		t.Fatalf("hard misses = %d (total %d), want 2/2", r.HardMisses, r.TotalHardMisses)
	}
	if !strings.Contains(r.String(), "hard misses    2/4 frames in window over 100ms") {
		t.Errorf("report = %q, want the hard-miss line", r.String())
	}
	// Evicting the misses out of the ring drops the windowed count but the
	// lifetime count sticks.
	for i := 4; i < 12; i++ {
		m.Observe(20, at(i))
	}
	r = m.Snapshot()
	if r.HardMisses != 0 || r.TotalHardMisses != 2 {
		t.Fatalf("after eviction: %d in window (want 0), total %d (want 2)", r.HardMisses, r.TotalHardMisses)
	}
	if strings.Contains(r.String(), "hard misses") {
		t.Error("report should omit the hard-miss line when the window is clean")
	}
	// Wrapping misses over misses keeps the windowed count exact.
	for i := 12; i < 28; i++ {
		m.Observe(float64(50+100*(i%2)), at(i)) // alternate 50 / 150
	}
	r = m.Snapshot()
	if r.HardMisses != 4 || r.TotalHardMisses != 10 {
		t.Fatalf("alternating steady state: %d in window (want 4), total %d (want 10)", r.HardMisses, r.TotalHardMisses)
	}
}

func TestMonitorEmptyAndConcurrent(t *testing.T) {
	m := NewMonitor(MonitorConfig{})
	snap := m.Snapshot()
	if snap.Performance.Passed || snap.Predictability.Passed {
		t.Error("empty monitor must not pass")
	}
	if snap.Pass() {
		t.Error("empty Pass() true")
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Observe(10, time.Now())
				_ = m.Snapshot()
			}
		}()
	}
	wg.Wait()
	if m.Snapshot().Total != 2000 {
		t.Errorf("total = %d, want 2000", m.Snapshot().Total)
	}
}
