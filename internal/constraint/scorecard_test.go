package constraint

import (
	"reflect"
	"strings"
	"testing"
)

func foldCleanRun(s *Scorecard, n int) {
	for i := 0; i < n; i++ {
		s.Observe(50, map[string]float64{"DET": 20, "LOC": 30, "TRA": 5}, false)
	}
}

func TestScorecardPass(t *testing.T) {
	s := NewScorecard("rush-hour", 42, 10)
	foldCleanRun(s, MinTailSamples)
	r := s.Report()
	if !r.Pass() {
		t.Fatalf("clean run fails:\n%s", r)
	}
	if r.FPS != 10 {
		t.Errorf("FPS = %g, want the configured 10", r.FPS)
	}
	if r.Dominant != "LOC" {
		t.Errorf("dominant = %q, want LOC (largest tail)", r.Dominant)
	}
	if r.Scenario != "rush-hour" || r.Seed != 42 {
		t.Errorf("identity = %q/%d", r.Scenario, r.Seed)
	}
	if len(r.Stages) != 3 {
		t.Errorf("stages = %+v", r.Stages)
	}
}

func TestScorecardHardMissesDiscountRate(t *testing.T) {
	s := NewScorecard("blackout", 1, 10)
	foldCleanRun(s, MinTailSamples)
	for i := 0; i < MinTailSamples; i++ {
		s.Observe(150, map[string]float64{"DET": 140}, true)
	}
	r := s.Report()
	if r.Pass() {
		t.Fatalf("run with half its frames over %gms passes:\n%s", MaxTailLatencyMs, r)
	}
	if r.HardMisses != MinTailSamples || r.Degraded != MinTailSamples {
		t.Errorf("hard = %d, degraded = %d, want %d each", r.HardMisses, r.Degraded, MinTailSamples)
	}
	if r.FPS >= 10 {
		t.Errorf("FPS = %g not discounted by hard misses", r.FPS)
	}
	if r.Performance.Passed {
		t.Errorf("performance passed with tail %g ms", r.TailMs)
	}
}

func TestScorecardErrorsFail(t *testing.T) {
	s := NewScorecard("mixed-stress", 1, 10)
	foldCleanRun(s, MinTailSamples)
	s.ObserveError()
	r := s.Report()
	if r.Pass() {
		t.Fatal("run with an errored frame passes")
	}
	if r.Errors != 1 {
		t.Errorf("errors = %d", r.Errors)
	}
}

// TestScorecardReplayIdentical: folding the same samples yields the
// identical report — the scorecard half of scenario replayability.
func TestScorecardReplayIdentical(t *testing.T) {
	mk := func() ScorecardReport {
		s := NewScorecard("cut-in", 7, 10)
		for i := 0; i < MinTailSamples+100; i++ {
			wall := 40 + float64(i%17)
			s.Observe(wall, map[string]float64{"DET": wall / 2, "TRA": wall / 4}, i%50 == 0)
		}
		s.ObserveError()
		return s.Report()
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replayed scorecards differ:\n%+v\n%+v", a, b)
	}
}

func TestScorecardString(t *testing.T) {
	s := NewScorecard("loop-closure", 3, 10)
	foldCleanRun(s, MinTailSamples)
	out := s.Report().String()
	for _, want := range []string{"loop-closure", "PASS", "dominant stage LOC", "stage DET"} {
		if !strings.Contains(out, want) {
			t.Errorf("report %q missing %q", out, want)
		}
	}
}
