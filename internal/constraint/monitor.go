package constraint

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"adsim/internal/stats"
	"adsim/internal/telemetry"
)

// MonitorConfig parameterizes the live constraint monitor.
type MonitorConfig struct {
	// Window bounds how many recent frames the rolling verdict is computed
	// over. 0 selects DefaultMonitorWindow; the window must comfortably
	// exceed MinTailSamples or the predictability verdict can never pass.
	Window int
}

// DefaultMonitorWindow holds ~1.6x the samples the P99.99 tail needs to
// resolve, at 8 bytes per sample — constant memory however long the vehicle
// drives.
const DefaultMonitorWindow = 1 << 15 // 32768

// Monitor is the ONLINE half of the constraint story: where Check judges a
// finished stats.Distribution after a run, Monitor folds each delivered
// frame's wall latency into a bounded rolling window as the system executes
// — O(1) amortized per frame — and answers live Performance and
// Predictability verdicts at any moment. Both verdicts apply the exact same
// rules as Check (shared verdict helpers), so a monitor fed a run's frames
// agrees with the offline evaluation of the same samples.
//
// Monitor implements telemetry.Sink, so it attaches anywhere a Collector
// does: stage spans are ignored, delivered frames are folded in. The frame
// rate is measured from inter-delivery times over the same rolling window
// (simulated executors supply a synthetic timeline via FrameEnd.At, so the
// rate reflects simulated time, not host time).
//
// Safe for concurrent use.
type Monitor struct {
	mu    sync.Mutex
	w     *stats.Window
	at    []time.Time // delivery times, ring parallel to w's occupancy
	deg   []bool      // degraded flags, same ring
	hard  []bool      // hard deadline misses (wall > MaxTailLatencyMs), same ring
	head  int
	count int
	// degInWindow counts true entries among the live ring slots; totalDeg
	// is the lifetime degraded-frame count. hardInWindow/totalHard track
	// hard deadline misses the same way — frames whose wall latency
	// exceeded the 100 ms constraint outright, the failures tail-latency
	// scheduling exists to eliminate.
	degInWindow  int
	totalDeg     int64
	hardInWindow int
	totalHard    int64
}

// NewMonitor returns a live monitor with the configured rolling window.
func NewMonitor(cfg MonitorConfig) *Monitor {
	n := cfg.Window
	if n <= 0 {
		n = DefaultMonitorWindow
	}
	return &Monitor{
		w:    stats.NewWindow(n),
		at:   make([]time.Time, n),
		deg:  make([]bool, n),
		hard: make([]bool, n),
	}
}

// Observe folds one delivered frame in: its wall latency (ms) and delivery
// time. O(1) amortized. Equivalent to ObserveDegraded with degraded=false.
func (m *Monitor) Observe(wallMs float64, at time.Time) {
	m.ObserveDegraded(wallMs, at, false)
}

// ObserveDegraded folds one delivered frame in, recording whether it was
// delivered in a deadline-degraded mode (any stage fell back after blowing
// its budget). O(1) amortized.
func (m *Monitor) ObserveDegraded(wallMs float64, at time.Time, degraded bool) {
	hard := wallMs > MaxTailLatencyMs
	m.mu.Lock()
	m.w.Add(wallMs)
	if m.count == len(m.at) {
		// The slot being overwritten leaves the window.
		if m.deg[m.head] {
			m.degInWindow--
		}
		if m.hard[m.head] {
			m.hardInWindow--
		}
	}
	m.at[m.head] = at
	m.deg[m.head] = degraded
	m.hard[m.head] = hard
	if degraded {
		m.degInWindow++
		m.totalDeg++
	}
	if hard {
		m.hardInWindow++
		m.totalHard++
	}
	m.head++
	if m.head == len(m.at) {
		m.head = 0
	}
	if m.count < len(m.at) {
		m.count++
	}
	m.mu.Unlock()
}

// Span implements telemetry.Sink; stage spans carry no constraint signal.
func (m *Monitor) Span(telemetry.Span) {}

// FrameDone implements telemetry.Sink: folds the delivered frame in.
func (m *Monitor) FrameDone(f telemetry.FrameEnd) {
	at := f.At
	if at.IsZero() {
		at = time.Now()
	}
	m.ObserveDegraded(float64(f.Wall)/1e6, at, f.Degraded)
}

// LiveReport is a point-in-time verdict from the rolling window. Only the
// classes the monitor can judge online (Performance, Predictability) are
// present; the static classes (storage, thermal, power) need a platform
// description and remain Check's job.
type LiveReport struct {
	Performance    Verdict
	Predictability Verdict
	// TailMs, MeanMs and FPS are the windowed measurements behind the
	// verdicts.
	TailMs float64
	MeanMs float64
	FPS    float64
	// N is the window occupancy the verdicts were computed over; Total is
	// the lifetime frame count.
	N     int
	Total int64
	// Degraded counts deadline-degraded frames in the window;
	// DegradedRate is Degraded/N (0 on an empty window); TotalDegraded is
	// the lifetime degraded count.
	Degraded      int
	DegradedRate  float64
	TotalDegraded int64
	// HardMisses counts frames in the window whose wall latency exceeded
	// MaxTailLatencyMs outright — frames the vehicle flew blind through,
	// which no degraded mode excuses; TotalHardMisses is the lifetime
	// count. The tail study's acceptance bar is zero under the scheduler.
	HardMisses      int
	TotalHardMisses int64
}

// Pass reports whether both live classes passed.
func (r LiveReport) Pass() bool {
	return r.Performance.Passed && r.Predictability.Passed
}

func (r LiveReport) String() string {
	var b strings.Builder
	for _, v := range []Verdict{r.Performance, r.Predictability} {
		mark := "PASS"
		if !v.Passed {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "%-14s %s  %s\n", v.Class, mark, v.Detail)
	}
	if r.Degraded > 0 {
		fmt.Fprintf(&b, "degraded       %d/%d frames in window (%.1f%%)\n",
			r.Degraded, r.N, 100*r.DegradedRate)
	}
	if r.HardMisses > 0 {
		fmt.Fprintf(&b, "hard misses    %d/%d frames in window over %dms\n",
			r.HardMisses, r.N, int(MaxTailLatencyMs))
	}
	return b.String()
}

// Snapshot computes the live verdicts over the current rolling window.
func (m *Monitor) Snapshot() LiveReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := LiveReport{
		TailMs:          m.w.Quantile(TailQuantile),
		MeanMs:          m.w.Mean(),
		N:               m.w.N(),
		Total:           m.w.TotalN(),
		Degraded:        m.degInWindow,
		TotalDegraded:   m.totalDeg,
		HardMisses:      m.hardInWindow,
		TotalHardMisses: m.totalHard,
	}
	if r.N > 0 {
		r.DegradedRate = float64(r.Degraded) / float64(r.N)
	}
	r.FPS = m.fpsLocked()
	r.Performance = performanceVerdict(r.TailMs, r.FPS, r.N)
	r.Predictability = predictabilityVerdict(r.TailMs, r.MeanMs, r.N)
	return r
}

// TailMs reports the windowed P99.99 frame latency without computing the
// full verdict set — the hot-path query the fleet admission controller polls
// every decision epoch.
func (m *Monitor) TailMs() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.w.Quantile(TailQuantile)
}

// FPS reports the windowed delivery rate (frames per second).
func (m *Monitor) FPS() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fpsLocked()
}

// fpsLocked measures the delivery rate over the window: (frames-1) /
// (newest - oldest delivery time). Needs at least two frames.
func (m *Monitor) fpsLocked() float64 {
	if m.count < 2 {
		return 0
	}
	newest := m.at[(m.head-1+len(m.at))%len(m.at)]
	oldest := m.at[(m.head-m.count+len(m.at))%len(m.at)]
	span := newest.Sub(oldest).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(m.count-1) / span
}
