// Package constraint encodes the paper's Section 2.4 design constraints for
// autonomous driving systems as checkable predicates, so a candidate system
// configuration can be given a verdict per constraint class:
//
//	Performance:    tail latency ≤ 100 ms AND frame rate ≥ 10 fps.
//	Predictability: the performance verdict must be taken at a high
//	                quantile (99.99th percentile), not the mean.
//	Storage:        tens of TB available on-vehicle for prior maps
//	                (41 TB for a US-wide map).
//	Thermal:        the computing system sits in the climate-controlled
//	                cabin, and the cooling system must have headroom for
//	                its heat.
//	Power:          the aggregate draw (compute + storage + cooling) must
//	                not reduce driving range beyond a budget.
//	Other:          shock/vibration tolerance etc. are recorded for
//	                completeness but not modeled.
package constraint

import (
	"fmt"
	"math"
	"strings"

	"adsim/internal/power"
	"adsim/internal/stats"
)

// Paper-derived thresholds.
const (
	// MaxTailLatencyMs: "the latency for processing traffic condition
	// should be within 100 ms" — evaluated at the tail.
	MaxTailLatencyMs = 100.0
	// MinFrameRate: "a frequency of at least once every 100 ms".
	MinFrameRate = 10.0
	// TailQuantile is the predictability constraint's evaluation point.
	TailQuantile = 0.9999
	// RequiredMapTB is the storage constraint's sizing point (US map).
	RequiredMapTB = power.USMapTB
	// CabinMaxAmbientC / ElectronicsMaxC document the thermal constraint:
	// outside the cabin reaches +105°C, beyond typical silicon limits
	// (~75°C), forcing cabin placement.
	CabinMaxAmbientC = 105.0
	ElectronicsMaxC  = 75.0
	// DefaultMaxRangeReduction is the power constraint's default budget on
	// driving-range loss (5%, the paper's bar for acceptable designs).
	DefaultMaxRangeReduction = 0.05
)

// Class enumerates the constraint classes.
type Class int

const (
	Performance Class = iota
	Predictability
	Storage
	Thermal
	Power
	NumClasses = 5
)

var classNames = [NumClasses]string{
	"performance", "predictability", "storage", "thermal", "power",
}

func (c Class) String() string {
	if c < 0 || int(c) >= NumClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// Input describes a candidate system configuration for checking.
type Input struct {
	// Latency is the end-to-end frame latency distribution (ms).
	Latency *stats.Distribution
	// FrameRate is the sustained processing rate (fps).
	FrameRate float64
	// AvailableStorageTB is the on-vehicle storage capacity.
	AvailableStorageTB float64
	// ComputePowerW is the computing engine's power draw.
	ComputePowerW float64
	// MapTB is the prior-map size to be stored.
	MapTB float64
	// CoolingCapacityW is the vehicle's spare air-conditioning capacity
	// available to the computing system.
	CoolingCapacityW float64
	// MaxRangeReduction overrides DefaultMaxRangeReduction when > 0.
	MaxRangeReduction float64
}

// Verdict is the outcome for one constraint class.
type Verdict struct {
	Class  Class
	Passed bool
	Detail string
}

// Report is the full constraint evaluation.
type Report struct {
	Verdicts [NumClasses]Verdict
	// System is the aggregate power breakdown used by the thermal and
	// power verdicts.
	System power.SystemBreakdown
	// RangeReduction is the resulting driving-range loss fraction.
	RangeReduction float64
}

// Pass reports whether every constraint class passed.
func (r Report) Pass() bool {
	for _, v := range r.Verdicts {
		if !v.Passed {
			return false
		}
	}
	return true
}

// Failed lists the failing classes.
func (r Report) Failed() []Class {
	var out []Class
	for _, v := range r.Verdicts {
		if !v.Passed {
			out = append(out, v.Class)
		}
	}
	return out
}

func (r Report) String() string {
	var b strings.Builder
	for _, v := range r.Verdicts {
		mark := "PASS"
		if !v.Passed {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "%-14s %s  %s\n", v.Class, mark, v.Detail)
	}
	fmt.Fprintf(&b, "system power: %v; range reduction %.1f%%\n",
		r.System, 100*r.RangeReduction)
	return b.String()
}

// MinTailSamples is how many latency samples are needed before the tail
// quantile is considered resolved (≥2 samples beyond the quantile).
const MinTailSamples = int(2 / (1 - TailQuantile))

// performanceVerdict judges the Performance class from a tail latency (ms),
// a frame rate (fps) and a sample count. It is the single verdict rule both
// the offline Check and the live Monitor apply, so the two can never drift.
func performanceVerdict(tailMs, fps float64, n int) Verdict {
	return Verdict{
		Class:  Performance,
		Passed: n > 0 && tailMs <= MaxTailLatencyMs && fps >= MinFrameRate,
		Detail: fmt.Sprintf("tail %.1f ms (limit %.0f), %.1f fps (min %.0f)",
			tailMs, MaxTailLatencyMs, fps, MinFrameRate),
	}
}

// predictabilityVerdict judges the Predictability class: enough samples to
// resolve the tail quantile, and a bounded tail-to-mean blowup (a system
// whose tail is far above its mean cannot be certified predictable even if
// the mean is fast). Shared by Check and Monitor.
func predictabilityVerdict(tailMs, meanMs float64, n int) Verdict {
	v := Verdict{Class: Predictability, Detail: "no latency distribution"}
	if n > 0 {
		// Guard the zero-mean corner (all-zero samples are possible on an
		// empty or degenerate window): 0/0 would be NaN, which fails every
		// comparison and poisons the detail string. A zero mean with a
		// zero tail is perfectly flat (blowup 1); a zero mean with a
		// positive tail is an unbounded blowup.
		blowup := 1.0
		switch {
		case meanMs > 0:
			blowup = tailMs / meanMs
		case tailMs > 0:
			blowup = math.Inf(1)
		}
		v.Passed = n >= MinTailSamples && blowup <= 10
		v.Detail = fmt.Sprintf("n=%d (need ≥%d), tail/mean %.1fx (limit 10x)",
			n, MinTailSamples, blowup)
	}
	return v
}

// Check evaluates all constraint classes for the candidate configuration.
func Check(in Input) Report {
	var r Report
	r.System = power.System(in.ComputePowerW, in.MapTB)
	r.RangeReduction = power.RangeReduction(r.System.Total())

	tail, mean := 0.0, 0.0
	n := 0
	if in.Latency != nil {
		tail = in.Latency.Quantile(TailQuantile)
		mean = in.Latency.Mean()
		n = in.Latency.N()
	}
	r.Verdicts[Performance] = performanceVerdict(tail, in.FrameRate, n)
	r.Verdicts[Predictability] = predictabilityVerdict(tail, mean, n)

	storOK := in.AvailableStorageTB >= in.MapTB
	r.Verdicts[Storage] = Verdict{
		Class:  Storage,
		Passed: storOK,
		Detail: fmt.Sprintf("%.0f TB available for %.0f TB map", in.AvailableStorageTB, in.MapTB),
	}

	heat := in.ComputePowerW + power.StoragePower(in.MapTB)
	thermOK := r.System.CoolingW <= in.CoolingCapacityW
	r.Verdicts[Thermal] = Verdict{
		Class:  Thermal,
		Passed: thermOK,
		Detail: fmt.Sprintf("%.0f W heat needs %.0f W cooling (capacity %.0f W)",
			heat, r.System.CoolingW, in.CoolingCapacityW),
	}

	budget := in.MaxRangeReduction
	if budget <= 0 {
		budget = DefaultMaxRangeReduction
	}
	powOK := r.RangeReduction <= budget
	r.Verdicts[Power] = Verdict{
		Class:  Power,
		Passed: powOK,
		Detail: fmt.Sprintf("range reduction %.1f%% (budget %.1f%%)",
			100*r.RangeReduction, 100*budget),
	}
	return r
}
