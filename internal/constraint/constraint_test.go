package constraint

import (
	"strings"
	"testing"

	"adsim/internal/stats"
)

// dist builds a latency distribution of n samples at base ms with one
// outlier.
func dist(n int, base, outlier float64) *stats.Distribution {
	d := stats.NewDistribution(n)
	for i := 0; i < n-1; i++ {
		d.Add(base)
	}
	d.Add(outlier)
	return d
}

func passingInput() Input {
	return Input{
		Latency:            dist(50000, 15, 40),
		FrameRate:          30,
		AvailableStorageTB: 50,
		ComputePowerW:      140, // ASIC-grade
		MapTB:              RequiredMapTB,
		CoolingCapacityW:   800,
	}
}

func TestAllPass(t *testing.T) {
	r := Check(passingInput())
	if !r.Pass() {
		t.Fatalf("expected pass, failed: %v\n%s", r.Failed(), r)
	}
	if len(r.Failed()) != 0 {
		t.Error("Failed() should be empty")
	}
}

func TestPerformanceFailsOnTail(t *testing.T) {
	in := passingInput()
	// Mean fast, tail slow: MUST fail (this is the paper's core point
	// about using tail latency rather than mean).
	in.Latency = stats.NewDistribution(50000)
	for i := 0; i < 50000; i++ {
		if i%100 == 99 {
			in.Latency.Add(250) // 1% of frames over deadline
		} else {
			in.Latency.Add(20)
		}
	}
	r := Check(in)
	if r.Verdicts[Performance].Passed {
		t.Error("tail violation must fail performance even with a fast mean")
	}
}

func TestPerformanceFailsOnFrameRate(t *testing.T) {
	in := passingInput()
	in.FrameRate = 8
	if Check(in).Verdicts[Performance].Passed {
		t.Error("8 fps should fail the ≥10 fps requirement")
	}
}

func TestPredictabilityNeedsSamples(t *testing.T) {
	in := passingInput()
	in.Latency = dist(100, 15, 30) // far too few to resolve P99.99
	r := Check(in)
	if r.Verdicts[Predictability].Passed {
		t.Error("100 samples cannot certify a 99.99th percentile")
	}
}

func TestPredictabilityFailsOnBlowup(t *testing.T) {
	in := passingInput()
	d := stats.NewDistribution(50000)
	for i := 0; i < 50000; i++ {
		if i%500 == 0 {
			d.Add(95) // under the latency limit but 19x the mean
		} else {
			d.Add(5)
		}
	}
	in.Latency = d
	r := Check(in)
	if r.Verdicts[Predictability].Passed {
		t.Error("19x tail/mean blowup should fail predictability")
	}
}

func TestStorageVerdict(t *testing.T) {
	in := passingInput()
	in.AvailableStorageTB = 10 // can't hold the 41 TB map
	r := Check(in)
	if r.Verdicts[Storage].Passed {
		t.Error("10 TB should fail the 41 TB map requirement")
	}
}

func TestThermalVerdict(t *testing.T) {
	in := passingInput()
	in.ComputePowerW = 1000
	in.CoolingCapacityW = 500 // cooling needs ~854 W
	r := Check(in)
	if r.Verdicts[Thermal].Passed {
		t.Error("insufficient cooling capacity should fail thermal")
	}
}

func TestPowerVerdict(t *testing.T) {
	in := passingInput()
	in.ComputePowerW = 1300 // GPU-fleet grade: ~2.5 kW aggregate, >5% range
	in.CoolingCapacityW = 5000
	r := Check(in)
	if r.Verdicts[Power].Passed {
		t.Errorf("%.1f%% range reduction should fail the 5%% budget", 100*r.RangeReduction)
	}
	// With a relaxed budget it passes.
	in.MaxRangeReduction = 0.20
	if !Check(in).Verdicts[Power].Passed {
		t.Error("relaxed budget should pass")
	}
}

func TestNilLatency(t *testing.T) {
	in := passingInput()
	in.Latency = nil
	r := Check(in)
	if r.Verdicts[Performance].Passed || r.Verdicts[Predictability].Passed {
		t.Error("missing latency data must fail performance and predictability")
	}
}

func TestReportString(t *testing.T) {
	s := Check(passingInput()).String()
	for _, want := range []string{"performance", "predictability", "storage", "thermal", "power", "PASS"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestClassString(t *testing.T) {
	if Performance.String() != "performance" || Power.String() != "power" {
		t.Error("class names wrong")
	}
	if Class(42).String() != "class(42)" {
		t.Error("out-of-range class formatting wrong")
	}
}

func TestThermalConstants(t *testing.T) {
	// The documented physical motivation: ambient outside the cabin
	// exceeds what electronics tolerate.
	if CabinMaxAmbientC <= ElectronicsMaxC {
		t.Error("thermal constants inconsistent with the paper's argument")
	}
}
