package constraint

import (
	"fmt"
	"sort"
	"strings"

	"adsim/internal/stats"
)

// Scorecard is the per-scenario constraint record: where Monitor answers a
// rolling live verdict and Check judges a platform, a Scorecard folds one
// whole scenario run — every delivered frame's wall latency plus the
// per-stage latencies behind it — and reports which constraint the
// scenario breaks and in which stage. Replaying the same program and seed
// folds the identical samples, so a scenario's scorecard is as
// reproducible as its frame stream.
//
// Not safe for concurrent use; fold from the delivery loop.
type Scorecard struct {
	scenarioName string
	seed         int64
	fps          float64 // configured source rate

	wall     *stats.Distribution
	stages   map[string]*stats.Distribution
	order    []string // stage fold order of first appearance, for stable reports
	frames   int
	errs     int
	degraded int
	hard     int
}

// NewScorecard starts an empty scorecard for one (scenario, seed) run.
// fps is the configured source frame rate the run was driven at.
func NewScorecard(scenarioName string, seed int64, fps float64) *Scorecard {
	return &Scorecard{
		scenarioName: scenarioName,
		seed:         seed,
		fps:          fps,
		wall:         stats.NewDistribution(1024),
		stages:       map[string]*stats.Distribution{},
	}
}

// Observe folds one delivered frame: its end-to-end wall latency (ms), the
// per-stage latencies behind it (ms, keyed by canonical stage name), and
// whether any stage delivered a degraded fallback.
func (s *Scorecard) Observe(wallMs float64, stageMs map[string]float64, degraded bool) {
	s.frames++
	s.wall.Add(wallMs)
	if wallMs > MaxTailLatencyMs {
		s.hard++
	}
	if degraded {
		s.degraded++
	}
	for name, ms := range stageMs {
		d, ok := s.stages[name]
		if !ok {
			d = stats.NewDistribution(1024)
			s.stages[name] = d
			s.order = append(s.order, name)
		}
		d.Add(ms)
	}
}

// ObserveError records a frame that failed outright (an injected hard
// fault or a stage error) and so delivered no latency sample.
func (s *Scorecard) ObserveError() { s.errs++ }

// StageTail is one stage's latency summary in a scorecard report.
type StageTail struct {
	Stage  string
	MeanMs float64
	TailMs float64 // at TailQuantile
}

// ScorecardReport is the per-scenario verdict: the shared Performance and
// Predictability rules applied to the run's whole distribution, plus the
// per-stage tails that say where the time went.
type ScorecardReport struct {
	Scenario string
	Seed     int64

	Performance    Verdict
	Predictability Verdict

	TailMs float64
	MeanMs float64
	FPS    float64
	Frames int
	Errors int
	// HardMisses counts frames over MaxTailLatencyMs outright; Degraded
	// counts frames delivered through a deadline fallback.
	HardMisses int
	Degraded   int

	// Stages summarizes each stage's latency, in fold order; Dominant is
	// the stage with the largest tail — the scenario's bottleneck.
	Stages   []StageTail
	Dominant string
}

// Pass reports whether the scenario met both live constraint classes with
// no outright frame errors.
func (r ScorecardReport) Pass() bool {
	return r.Performance.Passed && r.Predictability.Passed && r.Errors == 0
}

// Report computes the scorecard's verdict. The frame rate is judged from
// the configured source rate when every frame was delivered on time; each
// hard miss or errored frame discounts it, so a scenario that starves the
// source cannot pass the rate bar on configuration alone.
func (r *Scorecard) Report() ScorecardReport {
	rep := ScorecardReport{
		Scenario:   r.scenarioName,
		Seed:       r.seed,
		TailMs:     r.wall.Quantile(TailQuantile),
		MeanMs:     r.wall.Mean(),
		Frames:     r.frames,
		Errors:     r.errs,
		HardMisses: r.hard,
		Degraded:   r.degraded,
	}
	if total := r.frames + r.errs; total > 0 {
		rep.FPS = r.fps * float64(r.frames-r.hard) / float64(total)
	}
	rep.Performance = performanceVerdict(rep.TailMs, rep.FPS, r.frames)
	rep.Predictability = predictabilityVerdict(rep.TailMs, rep.MeanMs, r.frames)
	for _, name := range r.order {
		d := r.stages[name]
		rep.Stages = append(rep.Stages, StageTail{
			Stage:  name,
			MeanMs: d.Mean(),
			TailMs: d.Quantile(TailQuantile),
		})
	}
	sorted := append([]StageTail(nil), rep.Stages...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].TailMs > sorted[j].TailMs })
	if len(sorted) > 0 {
		rep.Dominant = sorted[0].Stage
	}
	return rep
}

func (r ScorecardReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %-16s seed %-4d ", r.Scenario, r.Seed)
	mark := "PASS"
	if !r.Pass() {
		mark = "FAIL"
	}
	fmt.Fprintf(&b, "%s  tail %.1f ms, mean %.1f ms, %.1f fps over %d frames",
		mark, r.TailMs, r.MeanMs, r.FPS, r.Frames)
	if r.HardMisses > 0 {
		fmt.Fprintf(&b, ", %d hard misses", r.HardMisses)
	}
	if r.Degraded > 0 {
		fmt.Fprintf(&b, ", %d degraded", r.Degraded)
	}
	if r.Errors > 0 {
		fmt.Fprintf(&b, ", %d errors", r.Errors)
	}
	if r.Dominant != "" {
		fmt.Fprintf(&b, "; dominant stage %s", r.Dominant)
	}
	b.WriteString("\n")
	for _, v := range []Verdict{r.Performance, r.Predictability} {
		m := "PASS"
		if !v.Passed {
			m = "FAIL"
		}
		fmt.Fprintf(&b, "  %-14s %s  %s\n", v.Class, m, v.Detail)
	}
	for _, st := range r.Stages {
		fmt.Fprintf(&b, "  stage %-8s mean %6.2f ms  tail %6.2f ms\n", st.Stage, st.MeanMs, st.TailMs)
	}
	return b.String()
}
