// Package img provides the lightweight grayscale image substrate shared by
// the detection, tracking and localization engines: pixel storage, cropping,
// resizing, integral images, box-filter smoothing and simple raster drawing
// for the synthetic scene generator.
//
// Images are 8-bit grayscale. The paper's pipeline consumes camera video;
// all three computational bottlenecks (YOLO, GOTURN, ORB-SLAM) operate on
// luminance or can be fed luminance without changing their computational
// profile, which is what this reproduction characterizes.
package img

import "fmt"

// Gray is an 8-bit grayscale image with row-major pixel storage.
type Gray struct {
	W, H int
	Pix  []uint8 // len == W*H, row-major
}

// NewGray allocates a zeroed W×H image. It panics on non-positive dims,
// which indicate a programming error.
func NewGray(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x,y). Out-of-bounds reads return 0, which gives
// the feature detectors a defined border behaviour.
func (g *Gray) At(x, y int) uint8 {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return 0
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x,y); out-of-bounds writes are ignored.
func (g *Gray) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return
	}
	g.Pix[y*g.W+x] = v
}

// InBounds reports whether (x,y) is a valid pixel coordinate.
func (g *Gray) InBounds(x, y int) bool {
	return x >= 0 && y >= 0 && x < g.W && y < g.H
}

// Clone returns a deep copy.
func (g *Gray) Clone() *Gray {
	out := NewGray(g.W, g.H)
	copy(out.Pix, g.Pix)
	return out
}

// Fill sets every pixel to v.
func (g *Gray) Fill(v uint8) {
	for i := range g.Pix {
		g.Pix[i] = v
	}
}

// Crop extracts the sub-image covering r clipped to the image bounds. If the
// clipped rectangle is empty a 1×1 black image is returned, so callers (the
// GOTURN crop path) never receive an unusable region.
func (g *Gray) Crop(r Rect) *Gray {
	c := r.Clip(0, 0, g.W, g.H)
	if c.Empty() {
		return NewGray(1, 1)
	}
	// Sub-pixel extents truncate to zero; clamp to one pixel so callers
	// always receive a usable image.
	w := int(c.W())
	if w < 1 {
		w = 1
	}
	h := int(c.H())
	if h < 1 {
		h = 1
	}
	out := NewGray(w, h)
	x0, y0 := int(c.X0), int(c.Y0)
	for y := 0; y < h; y++ {
		src := (y0+y)*g.W + x0
		copy(out.Pix[y*w:(y+1)*w], g.Pix[src:src+w])
	}
	return out
}

// Resize scales the image to w×h with bilinear interpolation. Used by the
// DNN front-ends (YOLO/GOTURN resize the frame to the network input dims)
// and by the Fig 13 resolution sweep.
func (g *Gray) Resize(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid resize to %dx%d", w, h))
	}
	out := NewGray(w, h)
	if w == g.W && h == g.H {
		copy(out.Pix, g.Pix)
		return out
	}
	xRatio := float64(g.W) / float64(w)
	yRatio := float64(g.H) / float64(h)
	for y := 0; y < h; y++ {
		sy := (float64(y) + 0.5) * yRatio
		y0 := int(sy - 0.5)
		fy := sy - 0.5 - float64(y0)
		if y0 < 0 {
			y0, fy = 0, 0
		}
		y1 := y0 + 1
		if y1 >= g.H {
			y1 = g.H - 1
		}
		for x := 0; x < w; x++ {
			sx := (float64(x) + 0.5) * xRatio
			x0 := int(sx - 0.5)
			fx := sx - 0.5 - float64(x0)
			if x0 < 0 {
				x0, fx = 0, 0
			}
			x1 := x0 + 1
			if x1 >= g.W {
				x1 = g.W - 1
			}
			p00 := float64(g.Pix[y0*g.W+x0])
			p01 := float64(g.Pix[y0*g.W+x1])
			p10 := float64(g.Pix[y1*g.W+x0])
			p11 := float64(g.Pix[y1*g.W+x1])
			top := p00*(1-fx) + p01*fx
			bot := p10*(1-fx) + p11*fx
			out.Pix[y*w+x] = uint8(top*(1-fy) + bot*fy + 0.5)
		}
	}
	return out
}

// BoxBlur returns the image smoothed with a (2r+1)² box filter, computed via
// an integral image so cost is independent of r. The FAST detector in the
// SLAM engine runs on a lightly smoothed image, as ORB does.
func (g *Gray) BoxBlur(r int) *Gray {
	if r <= 0 {
		return g.Clone()
	}
	ii := NewIntegral(g)
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			x0, y0 := x-r, y-r
			x1, y1 := x+r+1, y+r+1
			if x0 < 0 {
				x0 = 0
			}
			if y0 < 0 {
				y0 = 0
			}
			if x1 > g.W {
				x1 = g.W
			}
			if y1 > g.H {
				y1 = g.H
			}
			sum := ii.Sum(x0, y0, x1, y1)
			area := (x1 - x0) * (y1 - y0)
			out.Pix[y*g.W+x] = uint8((sum + int64(area)/2) / int64(area))
		}
	}
	return out
}

// Integral is a summed-area table: Cum[y][x] holds the sum of all pixels in
// the rectangle [0,x)×[0,y).
type Integral struct {
	W, H int
	Cum  []int64 // (W+1)*(H+1)
}

// NewIntegral computes the integral image of g.
func NewIntegral(g *Gray) *Integral {
	w1, h1 := g.W+1, g.H+1
	ii := &Integral{W: g.W, H: g.H, Cum: make([]int64, w1*h1)}
	for y := 1; y < h1; y++ {
		var rowSum int64
		for x := 1; x < w1; x++ {
			rowSum += int64(g.Pix[(y-1)*g.W+(x-1)])
			ii.Cum[y*w1+x] = ii.Cum[(y-1)*w1+x] + rowSum
		}
	}
	return ii
}

// Sum returns the pixel sum over the half-open rectangle [x0,x1)×[y0,y1).
// Coordinates must already be within [0,W]×[0,H].
func (ii *Integral) Sum(x0, y0, x1, y1 int) int64 {
	w1 := ii.W + 1
	return ii.Cum[y1*w1+x1] - ii.Cum[y0*w1+x1] - ii.Cum[y1*w1+x0] + ii.Cum[y0*w1+x0]
}
