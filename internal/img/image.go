// Package img provides the lightweight grayscale image substrate shared by
// the detection, tracking and localization engines: pixel storage, cropping,
// resizing, integral images, box-filter smoothing and simple raster drawing
// for the synthetic scene generator.
//
// Images are 8-bit grayscale. The paper's pipeline consumes camera video;
// all three computational bottlenecks (YOLO, GOTURN, ORB-SLAM) operate on
// luminance or can be fed luminance without changing their computational
// profile, which is what this reproduction characterizes.
package img

import "fmt"

// Gray is an 8-bit grayscale image with row-major pixel storage.
type Gray struct {
	W, H int
	Pix  []uint8 // len == W*H, row-major
}

// NewGray allocates a zeroed W×H image. It panics on non-positive dims,
// which indicate a programming error.
func NewGray(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x,y). Out-of-bounds reads return 0, which gives
// the feature detectors a defined border behaviour.
func (g *Gray) At(x, y int) uint8 {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return 0
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x,y); out-of-bounds writes are ignored.
func (g *Gray) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return
	}
	g.Pix[y*g.W+x] = v
}

// InBounds reports whether (x,y) is a valid pixel coordinate.
func (g *Gray) InBounds(x, y int) bool {
	return x >= 0 && y >= 0 && x < g.W && y < g.H
}

// Clone returns a deep copy.
func (g *Gray) Clone() *Gray {
	out := NewGray(g.W, g.H)
	copy(out.Pix, g.Pix)
	return out
}

// Fill sets every pixel to v.
func (g *Gray) Fill(v uint8) {
	for i := range g.Pix {
		g.Pix[i] = v
	}
}

// Crop extracts the sub-image covering r clipped to the image bounds. If the
// clipped rectangle is empty a 1×1 black image is returned, so callers (the
// GOTURN crop path) never receive an unusable region.
func (g *Gray) Crop(r Rect) *Gray {
	return g.CropInto(nil, r)
}

// Resize scales the image to w×h with bilinear interpolation. Used by the
// DNN front-ends (YOLO/GOTURN resize the frame to the network input dims)
// and by the Fig 13 resolution sweep.
func (g *Gray) Resize(w, h int) *Gray {
	return g.ResizeInto(nil, w, h)
}

// BoxBlur returns the image smoothed with a (2r+1)² box filter, computed via
// an integral image so cost is independent of r. The FAST detector in the
// SLAM engine runs on a lightly smoothed image, as ORB does.
func (g *Gray) BoxBlur(r int) *Gray {
	return g.BoxBlurInto(nil, nil, r)
}

// Integral is a summed-area table: Cum[y][x] holds the sum of all pixels in
// the rectangle [0,x)×[0,y).
type Integral struct {
	W, H int
	Cum  []int64 // (W+1)*(H+1)
}

// NewIntegral computes the integral image of g.
func NewIntegral(g *Gray) *Integral {
	ii := &Integral{}
	ii.Reset(g)
	return ii
}

// Sum returns the pixel sum over the half-open rectangle [x0,x1)×[y0,y1).
// Coordinates must already be within [0,W]×[0,H].
func (ii *Integral) Sum(x0, y0, x1, y1 int) int64 {
	w1 := ii.W + 1
	return ii.Cum[y1*w1+x1] - ii.Cum[y0*w1+x1] - ii.Cum[y1*w1+x0] + ii.Cum[y0*w1+x0]
}
