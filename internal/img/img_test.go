package img

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewGray(t *testing.T) {
	g := NewGray(4, 3)
	if g.W != 4 || g.H != 3 || len(g.Pix) != 12 {
		t.Fatalf("bad image: %dx%d len=%d", g.W, g.H, len(g.Pix))
	}
}

func TestNewGrayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGray(0,5) should panic")
		}
	}()
	NewGray(0, 5)
}

func TestAtSetBounds(t *testing.T) {
	g := NewGray(3, 3)
	g.Set(1, 1, 77)
	if g.At(1, 1) != 77 {
		t.Errorf("At(1,1) = %d, want 77", g.At(1, 1))
	}
	if g.At(-1, 0) != 0 || g.At(0, -1) != 0 || g.At(3, 0) != 0 || g.At(0, 3) != 0 {
		t.Error("out-of-bounds At should return 0")
	}
	g.Set(-1, 0, 99) // must not panic or corrupt
	g.Set(5, 5, 99)
	for _, p := range g.Pix {
		if p == 99 {
			t.Error("out-of-bounds Set wrote into the image")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := NewGray(2, 2)
	g.Set(0, 0, 10)
	c := g.Clone()
	c.Set(0, 0, 20)
	if g.At(0, 0) != 10 {
		t.Error("Clone shares pixel storage")
	}
}

func TestCrop(t *testing.T) {
	g := NewGray(10, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			g.Set(x, y, uint8(y*10+x))
		}
	}
	c := g.Crop(RectWH(2, 3, 4, 5))
	if c.W != 4 || c.H != 5 {
		t.Fatalf("crop dims %dx%d, want 4x5", c.W, c.H)
	}
	if c.At(0, 0) != g.At(2, 3) || c.At(3, 4) != g.At(5, 7) {
		t.Error("crop pixel content wrong")
	}
}

func TestCropClipsAndNeverEmpty(t *testing.T) {
	g := NewGray(10, 10)
	c := g.Crop(RectWH(-5, -5, 8, 8)) // clips to [0,3)x[0,3)
	if c.W != 3 || c.H != 3 {
		t.Errorf("clipped crop dims %dx%d, want 3x3", c.W, c.H)
	}
	e := g.Crop(RectWH(20, 20, 5, 5)) // fully outside
	if e.W != 1 || e.H != 1 {
		t.Errorf("outside crop should yield 1x1, got %dx%d", e.W, e.H)
	}
}

func TestResizeIdentity(t *testing.T) {
	g := NewGray(5, 4)
	for i := range g.Pix {
		g.Pix[i] = uint8(i * 3)
	}
	r := g.Resize(5, 4)
	for i := range g.Pix {
		if r.Pix[i] != g.Pix[i] {
			t.Fatal("identity resize changed pixels")
		}
	}
}

func TestResizeConstant(t *testing.T) {
	g := NewGray(8, 8)
	g.Fill(100)
	r := g.Resize(3, 5)
	for _, p := range r.Pix {
		if p != 100 {
			t.Fatalf("resize of constant image produced %d", p)
		}
	}
}

func TestResizeDownPreservesMean(t *testing.T) {
	g := NewGray(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			g.Set(x, y, uint8(x*16))
		}
	}
	r := g.Resize(8, 8)
	var gm, rm float64
	for _, p := range g.Pix {
		gm += float64(p)
	}
	for _, p := range r.Pix {
		rm += float64(p)
	}
	gm /= float64(len(g.Pix))
	rm /= float64(len(r.Pix))
	if math.Abs(gm-rm) > 10 {
		t.Errorf("mean shifted: %v -> %v", gm, rm)
	}
}

func TestIntegralSum(t *testing.T) {
	g := NewGray(4, 4)
	for i := range g.Pix {
		g.Pix[i] = 1
	}
	ii := NewIntegral(g)
	if s := ii.Sum(0, 0, 4, 4); s != 16 {
		t.Errorf("full sum = %d, want 16", s)
	}
	if s := ii.Sum(1, 1, 3, 3); s != 4 {
		t.Errorf("inner sum = %d, want 4", s)
	}
	if s := ii.Sum(2, 2, 2, 2); s != 0 {
		t.Errorf("empty sum = %d, want 0", s)
	}
}

// Property: integral-image sums equal brute-force sums.
func TestIntegralMatchesBruteForce(t *testing.T) {
	g := NewGray(9, 7)
	for i := range g.Pix {
		g.Pix[i] = uint8((i * 37) % 251)
	}
	ii := NewIntegral(g)
	f := func(a, b, c, d uint8) bool {
		x0, y0 := int(a)%9, int(b)%7
		x1, y1 := x0+int(c)%(9-x0)+1, y0+int(d)%(7-y0)+1
		var want int64
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				want += int64(g.At(x, y))
			}
		}
		return ii.Sum(x0, y0, x1, y1) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBoxBlurConstant(t *testing.T) {
	g := NewGray(10, 10)
	g.Fill(42)
	b := g.BoxBlur(2)
	for _, p := range b.Pix {
		if p != 42 {
			t.Fatalf("blur of constant image produced %d", p)
		}
	}
}

func TestBoxBlurSmooths(t *testing.T) {
	g := NewGray(11, 11)
	g.Set(5, 5, 255)
	b := g.BoxBlur(1)
	if b.At(5, 5) >= 255 {
		t.Error("blur should reduce the impulse peak")
	}
	if b.At(4, 4) == 0 {
		t.Error("blur should spread the impulse")
	}
	if b2 := g.BoxBlur(0); b2.At(5, 5) != 255 {
		t.Error("radius-0 blur should be identity")
	}
}

func TestRectBasics(t *testing.T) {
	r := RectWH(10, 20, 30, 40)
	if r.W() != 30 || r.H() != 40 || r.Area() != 1200 {
		t.Fatalf("bad rect: %v", r)
	}
	cx, cy := r.Center()
	if cx != 25 || cy != 40 {
		t.Errorf("center = (%v,%v), want (25,40)", cx, cy)
	}
	rc := RectCenter(25, 40, 30, 40)
	if rc != r {
		t.Errorf("RectCenter mismatch: %v vs %v", rc, r)
	}
}

func TestRectEmptyAndInverted(t *testing.T) {
	inv := Rect{X0: 5, Y0: 5, X1: 2, Y1: 9}
	if !inv.Empty() || inv.W() != 0 || inv.Area() != 0 {
		t.Error("inverted rect should be empty with zero extent")
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := RectWH(0, 0, 10, 10)
	b := RectWH(5, 5, 10, 10)
	i := a.Intersect(b)
	if i.W() != 5 || i.H() != 5 {
		t.Errorf("intersect = %v, want 5x5", i)
	}
	u := a.Union(b)
	if u.W() != 15 || u.H() != 15 {
		t.Errorf("union = %v, want 15x15", u)
	}
	d := RectWH(100, 100, 5, 5)
	if !a.Intersect(d).Empty() {
		t.Error("disjoint intersect should be empty")
	}
	if a.Union(Rect{}) != a || (Rect{}).Union(a) != a {
		t.Error("union with empty should be identity")
	}
}

func TestIoU(t *testing.T) {
	a := RectWH(0, 0, 10, 10)
	if v := a.IoU(a); math.Abs(v-1) > 1e-12 {
		t.Errorf("self IoU = %v, want 1", v)
	}
	b := RectWH(5, 0, 10, 10)
	want := 50.0 / 150.0
	if v := a.IoU(b); math.Abs(v-want) > 1e-12 {
		t.Errorf("IoU = %v, want %v", v, want)
	}
	if v := a.IoU(RectWH(100, 100, 5, 5)); v != 0 {
		t.Errorf("disjoint IoU = %v, want 0", v)
	}
}

// Property: IoU is symmetric and in [0,1].
func TestIoUProperty(t *testing.T) {
	f := func(x0, y0, w0, h0, x1, y1, w1, h1 uint8) bool {
		a := RectWH(float64(x0), float64(y0), float64(w0)+1, float64(h0)+1)
		b := RectWH(float64(x1), float64(y1), float64(w1)+1, float64(h1)+1)
		ab, ba := a.IoU(b), b.IoU(a)
		return math.Abs(ab-ba) < 1e-12 && ab >= 0 && ab <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRectTransforms(t *testing.T) {
	r := RectWH(0, 0, 10, 10)
	tr := r.Translate(5, -3)
	if tr.X0 != 5 || tr.Y0 != -3 || tr.W() != 10 {
		t.Errorf("translate = %v", tr)
	}
	s := r.Scale(2)
	if s.W() != 20 || s.H() != 20 {
		t.Errorf("scale = %v", s)
	}
	scx, scy := s.Center()
	cx, cy := r.Center()
	if scx != cx || scy != cy {
		t.Error("scale should preserve center")
	}
}

func TestRectContains(t *testing.T) {
	r := RectWH(0, 0, 10, 10)
	if !r.Contains(5, 5) || r.Contains(10, 10) || r.Contains(-1, 5) {
		t.Error("Contains boundary semantics wrong")
	}
}

func TestFillRectAndStroke(t *testing.T) {
	g := NewGray(10, 10)
	g.FillRect(RectWH(2, 2, 3, 3), 200)
	if g.At(2, 2) != 200 || g.At(4, 4) != 200 || g.At(5, 5) == 200 {
		t.Error("FillRect extent wrong")
	}
	g2 := NewGray(10, 10)
	g2.StrokeRect(RectWH(1, 1, 5, 5), 150)
	if g2.At(1, 1) != 150 || g2.At(5, 5) != 150 {
		t.Error("StrokeRect corners missing")
	}
	if g2.At(3, 3) != 0 {
		t.Error("StrokeRect filled interior")
	}
}

func TestFillRectClips(t *testing.T) {
	g := NewGray(4, 4)
	g.FillRect(RectWH(-10, -10, 100, 100), 9) // must not panic
	for _, p := range g.Pix {
		if p != 9 {
			t.Fatal("full-cover fill incomplete")
		}
	}
}

func TestDrawLine(t *testing.T) {
	g := NewGray(10, 10)
	g.DrawLine(0, 0, 9, 9, 255)
	for i := 0; i < 10; i++ {
		if g.At(i, i) != 255 {
			t.Fatalf("diagonal missing at %d", i)
		}
	}
	g2 := NewGray(10, 10)
	g2.DrawLine(9, 5, 0, 5, 77) // reversed horizontal
	for x := 0; x < 10; x++ {
		if g2.At(x, 5) != 77 {
			t.Fatalf("horizontal missing at %d", x)
		}
	}
}

func TestFillCircle(t *testing.T) {
	g := NewGray(11, 11)
	g.FillCircle(5, 5, 3, 128)
	if g.At(5, 5) != 128 || g.At(5, 8) != 128 {
		t.Error("circle interior missing")
	}
	if g.At(0, 0) != 0 {
		t.Error("circle painted outside radius")
	}
}

func TestChecker(t *testing.T) {
	g := NewGray(8, 8)
	g.Checker(RectWH(0, 0, 8, 8), 2, 10, 200)
	if g.At(0, 0) != 10 || g.At(2, 0) != 200 || g.At(2, 2) != 10 {
		t.Error("checker pattern wrong")
	}
	g2 := NewGray(4, 4)
	g2.Checker(RectWH(0, 0, 4, 4), 0, 1, 2) // cell<=0 coerced to 1
	if g2.At(0, 0) != 1 || g2.At(1, 0) != 2 {
		t.Error("checker with cell=0 should behave as cell=1")
	}
}

func TestCheckerPhaseScrolls(t *testing.T) {
	a := NewGray(16, 8)
	b := NewGray(16, 8)
	a.CheckerPhase(RectWH(0, 0, 16, 8), 4, 0, 10, 200)
	b.CheckerPhase(RectWH(0, 0, 16, 8), 4, 4, 10, 200)
	// Shifting by one cell swaps the colors at a fixed pixel.
	if a.At(0, 0) == b.At(0, 0) {
		t.Error("phase shift by one cell should change the pattern")
	}
	// Full-period shift is the identity.
	c := NewGray(16, 8)
	c.CheckerPhase(RectWH(0, 0, 16, 8), 4, 8, 10, 200)
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			t.Fatal("full-period phase should reproduce the base pattern")
		}
	}
	// Negative offsets must behave periodically too.
	d := NewGray(16, 8)
	d.CheckerPhase(RectWH(0, 0, 16, 8), 4, -8, 10, 200)
	for i := range a.Pix {
		if a.Pix[i] != d.Pix[i] {
			t.Fatal("negative full-period phase should reproduce the base pattern")
		}
	}
}

func TestCropSubPixelExtents(t *testing.T) {
	g := NewGray(100, 100)
	c := g.Crop(RectWH(10, 10, 43, 0.5)) // fractional height
	if c.W < 1 || c.H < 1 {
		t.Fatalf("crop produced %dx%d image", c.W, c.H)
	}
	c2 := g.Crop(RectWH(10, 10, 0.3, 0.3))
	if c2.W != 1 || c2.H != 1 {
		t.Fatalf("sub-pixel crop produced %dx%d", c2.W, c2.H)
	}
}
