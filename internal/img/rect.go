package img

import "fmt"

// Rect is an axis-aligned rectangle in pixel (or normalized) coordinates,
// stored as corners so that width/height arithmetic stays exact. X0/Y0 is
// the top-left corner, X1/Y1 the exclusive bottom-right.
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// RectWH builds a rectangle from a top-left corner and a size.
func RectWH(x, y, w, h float64) Rect {
	return Rect{X0: x, Y0: y, X1: x + w, Y1: y + h}
}

// RectCenter builds a rectangle from a center point and a size.
func RectCenter(cx, cy, w, h float64) Rect {
	return Rect{X0: cx - w/2, Y0: cy - h/2, X1: cx + w/2, Y1: cy + h/2}
}

// W returns the rectangle width (0 when inverted).
func (r Rect) W() float64 {
	if r.X1 < r.X0 {
		return 0
	}
	return r.X1 - r.X0
}

// H returns the rectangle height (0 when inverted).
func (r Rect) H() float64 {
	if r.Y1 < r.Y0 {
		return 0
	}
	return r.Y1 - r.Y0
}

// Area returns W*H.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Empty reports whether the rectangle has no area.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Center returns the rectangle's center point.
func (r Rect) Center() (float64, float64) {
	return (r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2
}

// Translate returns the rectangle shifted by (dx,dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{r.X0 + dx, r.Y0 + dy, r.X1 + dx, r.Y1 + dy}
}

// Scale returns the rectangle scaled about its center by factor s.
func (r Rect) Scale(s float64) Rect {
	cx, cy := r.Center()
	return RectCenter(cx, cy, r.W()*s, r.H()*s)
}

// Clip returns the rectangle intersected with [x0,x1)×[y0,y1) given as ints.
func (r Rect) Clip(x0, y0, x1, y1 int) Rect {
	out := r
	if out.X0 < float64(x0) {
		out.X0 = float64(x0)
	}
	if out.Y0 < float64(y0) {
		out.Y0 = float64(y0)
	}
	if out.X1 > float64(x1) {
		out.X1 = float64(x1)
	}
	if out.Y1 > float64(y1) {
		out.Y1 = float64(y1)
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Intersect returns the overlap of r and o (the zero Rect when disjoint).
func (r Rect) Intersect(o Rect) Rect {
	out := Rect{
		X0: maxf(r.X0, o.X0), Y0: maxf(r.Y0, o.Y0),
		X1: minf(r.X1, o.X1), Y1: minf(r.Y1, o.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	return Rect{
		X0: minf(r.X0, o.X0), Y0: minf(r.Y0, o.Y0),
		X1: maxf(r.X1, o.X1), Y1: maxf(r.Y1, o.Y1),
	}
}

// IoU returns the intersection-over-union overlap ratio in [0,1], the
// standard detection/tracking association metric.
func (r Rect) IoU(o Rect) float64 {
	inter := r.Intersect(o).Area()
	if inter == 0 {
		return 0
	}
	union := r.Area() + o.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Contains reports whether the point (x,y) lies inside the rectangle.
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

func (r Rect) String() string {
	return fmt.Sprintf("[%.1f,%.1f %.1fx%.1f]", r.X0, r.Y0, r.W(), r.H())
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
