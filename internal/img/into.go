package img

import "fmt"

// This file holds the destination-reuse variants of the allocating image
// operations. Each XxxInto(dst, ...) writes into dst's backing store when it
// is large enough, growing it otherwise, and returns dst; passing nil
// allocates. Results are bitwise-identical to the allocating originals —
// buffer reuse never changes pixel math. None of these accept dst aliasing
// the source image.

// grayInto returns dst reshaped to w×h, growing its pixel store as needed;
// nil allocates a fresh image. Contents are unspecified — callers fully
// overwrite the pixels.
func grayInto(dst *Gray, w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	if dst == nil {
		return NewGray(w, h)
	}
	n := w * h
	if cap(dst.Pix) < n {
		dst.Pix = make([]uint8, n)
	}
	dst.W, dst.H, dst.Pix = w, h, dst.Pix[:n]
	return dst
}

// CropInto is Crop writing into dst (nil allocates).
func (g *Gray) CropInto(dst *Gray, r Rect) *Gray {
	c := r.Clip(0, 0, g.W, g.H)
	if c.Empty() {
		out := grayInto(dst, 1, 1)
		out.Pix[0] = 0
		return out
	}
	// Sub-pixel extents truncate to zero; clamp to one pixel so callers
	// always receive a usable image.
	w := int(c.W())
	if w < 1 {
		w = 1
	}
	h := int(c.H())
	if h < 1 {
		h = 1
	}
	out := grayInto(dst, w, h)
	x0, y0 := int(c.X0), int(c.Y0)
	for y := 0; y < h; y++ {
		src := (y0+y)*g.W + x0
		copy(out.Pix[y*w:(y+1)*w], g.Pix[src:src+w])
	}
	return out
}

// ResizeInto is Resize writing into dst (nil allocates).
func (g *Gray) ResizeInto(dst *Gray, w, h int) *Gray {
	out := grayInto(dst, w, h)
	if w == g.W && h == g.H {
		copy(out.Pix, g.Pix)
		return out
	}
	xRatio := float64(g.W) / float64(w)
	yRatio := float64(g.H) / float64(h)
	for y := 0; y < h; y++ {
		sy := (float64(y) + 0.5) * yRatio
		y0 := int(sy - 0.5)
		fy := sy - 0.5 - float64(y0)
		if y0 < 0 {
			y0, fy = 0, 0
		}
		y1 := y0 + 1
		if y1 >= g.H {
			y1 = g.H - 1
		}
		for x := 0; x < w; x++ {
			sx := (float64(x) + 0.5) * xRatio
			x0 := int(sx - 0.5)
			fx := sx - 0.5 - float64(x0)
			if x0 < 0 {
				x0, fx = 0, 0
			}
			x1 := x0 + 1
			if x1 >= g.W {
				x1 = g.W - 1
			}
			p00 := float64(g.Pix[y0*g.W+x0])
			p01 := float64(g.Pix[y0*g.W+x1])
			p10 := float64(g.Pix[y1*g.W+x0])
			p11 := float64(g.Pix[y1*g.W+x1])
			top := p00*(1-fx) + p01*fx
			bot := p10*(1-fx) + p11*fx
			out.Pix[y*w+x] = uint8(top*(1-fy) + bot*fy + 0.5)
		}
	}
	return out
}

// Reset recomputes ii as the integral image of g, growing the cumulative
// table as needed. The receiver must be non-nil; use NewIntegral for
// one-shot computation.
func (ii *Integral) Reset(g *Gray) {
	w1, h1 := g.W+1, g.H+1
	n := w1 * h1
	if cap(ii.Cum) < n {
		ii.Cum = make([]int64, n)
	}
	ii.W, ii.H, ii.Cum = g.W, g.H, ii.Cum[:n]
	// Row 0 and column 0 are zero by construction; rewrite them explicitly
	// since the buffer may hold a previous image's sums.
	for x := 0; x < w1; x++ {
		ii.Cum[x] = 0
	}
	for y := 1; y < h1; y++ {
		ii.Cum[y*w1] = 0
		var rowSum int64
		for x := 1; x < w1; x++ {
			rowSum += int64(g.Pix[(y-1)*g.W+(x-1)])
			ii.Cum[y*w1+x] = ii.Cum[(y-1)*w1+x] + rowSum
		}
	}
}

// BoxBlurInto is BoxBlur writing into dst (nil allocates), reusing ii as the
// integral-image workspace when non-nil.
func (g *Gray) BoxBlurInto(dst *Gray, ii *Integral, r int) *Gray {
	out := grayInto(dst, g.W, g.H)
	if r <= 0 {
		copy(out.Pix, g.Pix)
		return out
	}
	if ii == nil {
		ii = &Integral{}
	}
	ii.Reset(g)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			x0, y0 := x-r, y-r
			x1, y1 := x+r+1, y+r+1
			if x0 < 0 {
				x0 = 0
			}
			if y0 < 0 {
				y0 = 0
			}
			if x1 > g.W {
				x1 = g.W
			}
			if y1 > g.H {
				y1 = g.H
			}
			sum := ii.Sum(x0, y0, x1, y1)
			area := (x1 - x0) * (y1 - y0)
			out.Pix[y*g.W+x] = uint8((sum + int64(area)/2) / int64(area))
		}
	}
	return out
}
