package img

// Drawing primitives used by the synthetic scene generator. These are
// deliberately simple rasterizers: the goal is frames with controllable
// texture, corners and objects, not photorealism.

// FillRect paints every pixel inside r with value v.
func (g *Gray) FillRect(r Rect, v uint8) {
	c := r.Clip(0, 0, g.W, g.H)
	if c.Empty() {
		return
	}
	for y := int(c.Y0); y < int(c.Y1); y++ {
		row := g.Pix[y*g.W+int(c.X0) : y*g.W+int(c.X1)]
		for i := range row {
			row[i] = v
		}
	}
}

// StrokeRect draws the 1-pixel outline of r with value v. Outlines create
// the strong gradients that corner detectors respond to.
func (g *Gray) StrokeRect(r Rect, v uint8) {
	x0, y0, x1, y1 := int(r.X0), int(r.Y0), int(r.X1)-1, int(r.Y1)-1
	for x := x0; x <= x1; x++ {
		g.Set(x, y0, v)
		g.Set(x, y1, v)
	}
	for y := y0; y <= y1; y++ {
		g.Set(x0, y, v)
		g.Set(x1, y, v)
	}
}

// DrawLine draws a 1-pixel line from (x0,y0) to (x1,y1) using Bresenham's
// algorithm. Used for lane markings in the scene generator.
func (g *Gray) DrawLine(x0, y0, x1, y1 int, v uint8) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		g.Set(x0, y0, v)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// FillCircle paints a filled disc of radius r centered at (cx,cy).
func (g *Gray) FillCircle(cx, cy, r int, v uint8) {
	for y := cy - r; y <= cy+r; y++ {
		for x := cx - r; x <= cx+r; x++ {
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy <= r*r {
				g.Set(x, y, v)
			}
		}
	}
}

// CheckerPhase fills r with a checkerboard of cell size cell alternating
// between a and b, with the pattern shifted horizontally by offX pixels.
// Advancing offX frame-over-frame makes the texture scroll, giving the SLAM
// front-end coherent feature displacement to track.
func (g *Gray) CheckerPhase(r Rect, cell, offX int, a, b uint8) {
	if cell <= 0 {
		cell = 1
	}
	c := r.Clip(0, 0, g.W, g.H)
	if c.Empty() {
		return
	}
	// Normalize the offset so x+offX stays non-negative for all pixels.
	offX %= 2 * cell
	if offX < 0 {
		offX += 2 * cell
	}
	for y := int(c.Y0); y < int(c.Y1); y++ {
		for x := int(c.X0); x < int(c.X1); x++ {
			if (((x+offX)/cell)+(y/cell))%2 == 0 {
				g.Pix[y*g.W+x] = a
			} else {
				g.Pix[y*g.W+x] = b
			}
		}
	}
}

// Checker fills r with a checkerboard of cell size cell alternating between
// a and b. Checkerboards give dense, repeatable corner responses, which the
// scene generator uses to texture buildings and road shoulders.
func (g *Gray) Checker(r Rect, cell int, a, b uint8) {
	if cell <= 0 {
		cell = 1
	}
	c := r.Clip(0, 0, g.W, g.H)
	if c.Empty() {
		return
	}
	for y := int(c.Y0); y < int(c.Y1); y++ {
		for x := int(c.X0); x < int(c.X1); x++ {
			if ((x/cell)+(y/cell))%2 == 0 {
				g.Pix[y*g.W+x] = a
			} else {
				g.Pix[y*g.W+x] = b
			}
		}
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
