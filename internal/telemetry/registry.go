package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"adsim/internal/stats"
)

// Registry is a lock-cheap metrics registry. Metric handles are looked up
// (or created) once and then operated on with atomics (Counter, Gauge) or a
// short per-metric mutex (Dist) — the registry-wide lock is only taken on
// first registration or a cold name-miss, never on the hot path when the
// caller retains the handle.
//
// The zero value is ready for use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	dists    map[string]*Dist
	// distCap is the window capacity new Dists are created with; 0 selects
	// stats.DefaultWindowCap.
	distCap int
}

// NewRegistry returns a registry whose streaming distributions keep the
// most recent distCap samples (0 selects stats.DefaultWindowCap).
func NewRegistry(distCap int) *Registry { return &Registry{distCap: distCap} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		if r.counters == nil {
			r.counters = make(map[string]*Counter)
		}
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		if r.gauges == nil {
			r.gauges = make(map[string]*Gauge)
		}
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Dist returns the named streaming latency distribution, creating it on
// first use.
func (r *Registry) Dist(name string) *Dist {
	r.mu.RLock()
	d := r.dists[name]
	r.mu.RUnlock()
	if d != nil {
		return d
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d = r.dists[name]; d == nil {
		if r.dists == nil {
			r.dists = make(map[string]*Dist)
		}
		d = &Dist{w: stats.NewWindow(r.distCap)}
		r.dists[name] = d
	}
	return d
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedKeys(r.counters)
}

// GaugeNames returns the registered gauge names, sorted.
func (r *Registry) GaugeNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedKeys(r.gauges)
}

// DistNames returns the registered distribution names, sorted.
func (r *Registry) DistNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedKeys(r.dists)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use and lock-free.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins float metric. All methods are safe for
// concurrent use and lock-free.
type Gauge struct{ bits atomic.Uint64 }

// Set records the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the most recently set value (0 before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Dist is a streaming latency distribution: a mutex-guarded stats.Window
// plus lifetime count/sum, so Observe is O(1) and quantiles are answered
// over the most recent window.
type Dist struct {
	mu sync.Mutex
	w  *stats.Window
}

// Observe folds one sample in. O(1).
func (d *Dist) Observe(v float64) {
	d.mu.Lock()
	d.w.Add(v)
	d.mu.Unlock()
}

// DistSnapshot is a point-in-time summary of a Dist.
type DistSnapshot struct {
	// N and Sum are lifetime aggregates over every observed sample.
	N   int64
	Sum float64
	// Mean, P50, P99, P9999, Min and Max describe the current window.
	Mean, P50, P99, P9999, Min, Max float64
	// WindowN is how many samples the quantiles were computed over.
	WindowN int
}

// Snapshot summarizes the distribution: lifetime count/sum plus windowed
// mean and quantiles.
func (d *Dist) Snapshot() DistSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DistSnapshot{
		N:       d.w.TotalN(),
		Sum:     d.w.TotalSum(),
		Mean:    d.w.Mean(),
		P50:     d.w.Quantile(0.5),
		P99:     d.w.P99(),
		P9999:   d.w.P9999(),
		Min:     d.w.Min(),
		Max:     d.w.Max(),
		WindowN: d.w.N(),
	}
}

// Quantile answers one windowed quantile query.
func (d *Dist) Quantile(q float64) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.w.Quantile(q)
}

// Render writes every registered metric, one line each in sorted name
// order: counters as integers, gauges as floats, distributions as a
// mean/p50/p99/max summary over the current window. CLIs print this after a
// run; it takes the registry lock only for the name enumeration.
func (r *Registry) Render(w io.Writer) {
	for _, name := range r.CounterNames() {
		fmt.Fprintf(w, "%-28s %d\n", name, r.Counter(name).Value())
	}
	for _, name := range r.GaugeNames() {
		fmt.Fprintf(w, "%-28s %.3f\n", name, r.Gauge(name).Value())
	}
	for _, name := range r.DistNames() {
		s := r.Dist(name).Snapshot()
		fmt.Fprintf(w, "%-28s n=%d mean=%.2f p50=%.2f p99=%.2f max=%.2f\n",
			name, s.N, s.Mean, s.P50, s.P99, s.Max)
	}
}
