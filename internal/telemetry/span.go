// Package telemetry is the unified instrumentation layer of the pipeline:
// per-frame stage spans with a queue-wait vs. execute split, a lock-cheap
// metrics registry (counters, gauges, streaming latency distributions), and
// aggregating sinks the experiments and the live constraint monitor read
// from.
//
// The paper's methodology judges an autonomous driving system by per-engine
// latency breakdowns and 99.99th-percentile tails, which only works if the
// instrumentation is always on and cheap enough to leave enabled. Every
// executor in this repository — the sequential Step loop, the pipelined
// Runner, and the paper-scale simulator — emits into the same Sink
// interface, so a single Collector (or Monitor) observes any of them
// without caring which executor produced the frames.
//
// Span model: one Span per stage per frame. Queue is the time the frame
// spent ready-but-waiting for the stage (all dependencies done, stage busy
// with earlier frames — nonzero only under pipelined execution); Exec is
// the stage's own run time. Engine hot kernels additionally emit sub-spans
// named "STAGE/kernel" (DET/dnn, TRA/dnn, TRA/other, LOC/fe) on frames
// where the kernel ran, which is how the Figure 7 cycle breakdowns are
// derived.
package telemetry

import "time"

// Span is one stage's execution record for one frame.
type Span struct {
	// Stage is the stage name (SRC, DET, LOC, ...) or "STAGE/kernel" for an
	// engine hot-kernel sub-span.
	Stage string
	// Frame is the frame index the span belongs to.
	Frame int
	// Queue is how long the frame sat ready in the stage's input queue
	// before execution started (queue wait). Zero for sub-spans and for
	// executors that start a stage the moment its dependencies finish.
	Queue time.Duration
	// Exec is the stage's execution time for this frame.
	Exec time.Duration
}

// FrameEnd marks one frame's delivery out of an executor.
type FrameEnd struct {
	// Frame is the delivered frame's index.
	Frame int
	// Wall is the frame's admission-to-delivery wall-clock latency: the
	// honest per-frame latency at the executor's operating throughput,
	// including any time queued behind other in-flight frames.
	Wall time.Duration
	// At is when the frame was delivered. The zero time means "now"
	// (sinks substitute time.Now); simulated executors set it to a
	// synthetic timeline instead so rate calculations reflect simulated —
	// not host — time.
	At time.Time
	// Err reports whether the frame was delivered with a pipeline error.
	Err bool
	// Degraded reports whether any stage blew its deadline budget on this
	// frame and delivered its degraded-mode output (pipeline
	// DegradedMask non-zero).
	Degraded bool
}

// Sink consumes telemetry. Implementations must be safe for concurrent use:
// pipelined executors emit spans from one goroutine per stage.
type Sink interface {
	// Span records one stage execution.
	Span(s Span)
	// FrameDone records one delivered frame.
	FrameDone(f FrameEnd)
}

// Nop is the no-op sink: the zero-overhead baseline executors fall back to
// when no telemetry is attached.
type Nop struct{}

func (Nop) Span(Span)          {}
func (Nop) FrameDone(FrameEnd) {}

// multi fans telemetry out to several sinks in order.
type multi []Sink

func (m multi) Span(s Span) {
	for _, sink := range m {
		sink.Span(s)
	}
}

func (m multi) FrameDone(f FrameEnd) {
	for _, sink := range m {
		sink.FrameDone(f)
	}
}

// Multi returns a sink that forwards every event to each non-nil sink in
// order. With zero usable sinks it returns Nop; with one it returns that
// sink unwrapped.
func Multi(sinks ...Sink) Sink {
	out := make(multi, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return Nop{}
	case 1:
		return out[0]
	}
	return out
}

// Stage is the common face every engine presents to the pipeline layer:
// a canonical stage name for the declarative stage graph and for span
// attribution. The engines (detect.Detector, slam.Engine, track.Engine,
// fusion.Engine, mission.Planner, plan.Planner, control.Controller, and
// the scene.Generator source) all implement it.
type Stage interface {
	StageName() string
}
