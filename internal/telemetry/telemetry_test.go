package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersGaugesDists(t *testing.T) {
	r := NewRegistry(0)
	c := r.Counter("frames")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("frames") != c {
		t.Error("counter handle not stable across lookups")
	}
	g := r.Gauge("fps")
	if g.Value() != 0 {
		t.Error("gauge should start at 0")
	}
	g.Set(12.5)
	if g.Value() != 12.5 {
		t.Errorf("gauge = %v, want 12.5", g.Value())
	}
	d := r.Dist("lat_ms")
	for i := 1; i <= 4; i++ {
		d.Observe(float64(i))
	}
	snap := d.Snapshot()
	if snap.N != 4 || snap.Sum != 10 || snap.Mean != 2.5 {
		t.Errorf("dist snapshot = %+v", snap)
	}
	if d.Quantile(1) != 4 {
		t.Errorf("dist max quantile = %v", d.Quantile(1))
	}
	if got := r.CounterNames(); len(got) != 1 || got[0] != "frames" {
		t.Errorf("counter names = %v", got)
	}
	if got := r.DistNames(); len(got) != 1 || got[0] != "lat_ms" {
		t.Errorf("dist names = %v", got)
	}
	if got := r.GaugeNames(); len(got) != 1 || got[0] != "fps" {
		t.Errorf("gauge names = %v", got)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines; run
// under -race this is the lock-cheapness contract's safety half.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(256)
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("n").Inc()
				r.Gauge("g").Set(float64(i))
				r.Dist("d").Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Dist("d").Snapshot().N; got != workers*perWorker {
		t.Errorf("dist lifetime n = %d, want %d", got, workers*perWorker)
	}
}

func TestCollectorAggregatesSpans(t *testing.T) {
	c := NewCollector(0)
	for i := 0; i < 10; i++ {
		c.Span(Span{Stage: "DET", Frame: i, Queue: time.Millisecond, Exec: 2 * time.Millisecond})
		c.Span(Span{Stage: "LOC", Frame: i, Exec: 3 * time.Millisecond})
		if i%2 == 0 {
			c.Span(Span{Stage: "DET/dnn", Frame: i, Exec: time.Millisecond})
		}
		c.FrameDone(FrameEnd{Frame: i, Wall: 5 * time.Millisecond, Err: i == 3})
	}
	if c.Frames() != 10 || c.FrameErrs() != 1 {
		t.Errorf("frames=%d errs=%d", c.Frames(), c.FrameErrs())
	}
	if got := c.SpanCount("DET"); got != 10 {
		t.Errorf("DET span count = %d", got)
	}
	if got := c.ExecSumMs("DET"); got != 20 {
		t.Errorf("DET exec sum = %v ms, want 20", got)
	}
	if got := c.ExecSumMs("DET/dnn"); got != 5 {
		t.Errorf("DET/dnn exec sum = %v ms, want 5", got)
	}
	s := c.Summarize()
	if len(s.Stages) != 3 {
		t.Fatalf("%d stages summarized, want 3", len(s.Stages))
	}
	// First-seen order, not alphabetical.
	if s.Stages[0].Stage != "DET" || s.Stages[1].Stage != "LOC" || s.Stages[2].Stage != "DET/dnn" {
		t.Errorf("stage order = %v %v %v", s.Stages[0].Stage, s.Stages[1].Stage, s.Stages[2].Stage)
	}
	if s.Stages[0].QueueMeanMs != 1 || s.Stages[0].ExecMeanMs != 2 {
		t.Errorf("DET summary = %+v", s.Stages[0])
	}
	if s.Frame.WallMeanMs != 5 || s.Frame.Frames != 10 || s.Frame.Errs != 1 {
		t.Errorf("frame summary = %+v", s.Frame)
	}
	if !strings.Contains(s.String(), "DET") {
		t.Error("table render missing stage")
	}
}

func TestCollectorJSONAndCSV(t *testing.T) {
	c := NewCollector(0)
	c.Span(Span{Stage: "DET", Exec: time.Millisecond})
	c.FrameDone(FrameEnd{Wall: 2 * time.Millisecond})

	var jb bytes.Buffer
	if err := c.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var round Summary
	if err := json.Unmarshal(jb.Bytes(), &round); err != nil {
		t.Fatalf("json export not parseable: %v", err)
	}
	if len(round.Stages) != 1 || round.Stages[0].Stage != "DET" {
		t.Errorf("json round trip = %+v", round)
	}

	var cb bytes.Buffer
	if err := c.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cb.String()), "\n")
	if len(lines) != 3 { // header + DET + frame
		t.Fatalf("csv has %d lines: %q", len(lines), cb.String())
	}
	if !strings.HasPrefix(lines[1], "DET,1,") {
		t.Errorf("csv stage row = %q", lines[1])
	}
}

func TestMulti(t *testing.T) {
	a, b := NewCollector(0), NewCollector(0)
	m := Multi(a, nil, b)
	m.Span(Span{Stage: "DET", Exec: time.Millisecond})
	m.FrameDone(FrameEnd{Wall: time.Millisecond})
	if a.SpanCount("DET") != 1 || b.SpanCount("DET") != 1 {
		t.Error("multi did not fan out spans")
	}
	if a.Frames() != 1 || b.Frames() != 1 {
		t.Error("multi did not fan out frame ends")
	}
	if _, ok := Multi(nil, nil).(Nop); !ok {
		t.Error("all-nil Multi should collapse to Nop")
	}
	if Multi(a) != Sink(a) {
		t.Error("single-sink Multi should unwrap")
	}
}

func TestNopIsSilent(t *testing.T) {
	var n Nop
	n.Span(Span{Stage: "DET"})
	n.FrameDone(FrameEnd{})
}
