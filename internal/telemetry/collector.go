package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Collector is the standard aggregating Sink: it folds every span into
// per-stage queue/exec distributions (via the lock-cheap Registry) and every
// delivered frame into a wall-latency distribution, and renders the result
// as a table, JSON or CSV. Stages are reported in first-seen order, which
// under both executors is the stage-graph order.
type Collector struct {
	reg *Registry

	mu       sync.Mutex
	order    []string        // stage names in first-seen order
	seen     map[string]bool // guards order
	frames   int64
	errs     int64
	degraded int64
}

// NewCollector returns a collector whose streaming distributions keep the
// most recent windowCap samples (0 selects the default window).
func NewCollector(windowCap int) *Collector {
	return &Collector{reg: NewRegistry(windowCap), seen: make(map[string]bool)}
}

const msPerNs = 1e-6

// Span folds one stage execution into the per-stage aggregates.
func (c *Collector) Span(s Span) {
	c.mu.Lock()
	if !c.seen[s.Stage] {
		c.seen[s.Stage] = true
		c.order = append(c.order, s.Stage)
	}
	c.mu.Unlock()
	c.reg.Counter("stage." + s.Stage + ".frames").Inc()
	c.reg.Dist("stage." + s.Stage + ".exec_ms").Observe(float64(s.Exec) * msPerNs)
	c.reg.Dist("stage." + s.Stage + ".queue_ms").Observe(float64(s.Queue) * msPerNs)
}

// FrameDone folds one delivered frame's wall latency in.
func (c *Collector) FrameDone(f FrameEnd) {
	c.mu.Lock()
	c.frames++
	if f.Err {
		c.errs++
	}
	if f.Degraded {
		c.degraded++
	}
	c.mu.Unlock()
	c.reg.Dist("frame.wall_ms").Observe(float64(f.Wall) * msPerNs)
}

// Registry exposes the collector's underlying metrics registry, for callers
// that want to co-locate their own counters/gauges with the span metrics.
func (c *Collector) Registry() *Registry { return c.reg }

// Frames reports how many frames have been delivered into the collector.
func (c *Collector) Frames() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames
}

// FrameErrs reports how many delivered frames carried an error.
func (c *Collector) FrameErrs() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.errs
}

// FrameDegraded reports how many delivered frames carried a non-empty
// deadline DegradedMask.
func (c *Collector) FrameDegraded() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// ExecSumMs returns the lifetime sum (ms) of a stage's execution time over
// every span recorded for it — the aggregate the Figure 7 cycle breakdowns
// divide. Returns 0 for a stage that never ran.
func (c *Collector) ExecSumMs(stage string) float64 {
	return c.reg.Dist("stage." + stage + ".exec_ms").Snapshot().Sum
}

// SpanCount reports how many spans were recorded for a stage.
func (c *Collector) SpanCount(stage string) int64 {
	return c.reg.Counter("stage." + stage + ".frames").Value()
}

// StageSummary is one stage's aggregated span statistics. All latencies are
// milliseconds; quantiles are over the collector's rolling window.
type StageSummary struct {
	Stage       string  `json:"stage"`
	Frames      int64   `json:"frames"`
	QueueMeanMs float64 `json:"queue_mean_ms"`
	QueueP99Ms  float64 `json:"queue_p99_ms"`
	QueueMaxMs  float64 `json:"queue_max_ms"`
	ExecMeanMs  float64 `json:"exec_mean_ms"`
	ExecP99Ms   float64 `json:"exec_p99_ms"`
	ExecP9999Ms float64 `json:"exec_p9999_ms"`
	ExecSumMs   float64 `json:"exec_sum_ms"`
}

// FrameSummary aggregates the delivered-frame wall latencies.
type FrameSummary struct {
	Frames     int64   `json:"frames"`
	Errs       int64   `json:"errs"`
	Degraded   int64   `json:"degraded"`
	WallMeanMs float64 `json:"wall_mean_ms"`
	WallP99Ms  float64 `json:"wall_p99_ms"`
	WallP99p99 float64 `json:"wall_p9999_ms"`
	WallMaxMs  float64 `json:"wall_max_ms"`
}

// Summary is the collector's full export.
type Summary struct {
	Stages []StageSummary `json:"stages"`
	Frame  FrameSummary   `json:"frame"`
}

// Summarize snapshots every stage (in first-seen order) and the frame wall
// distribution.
func (c *Collector) Summarize() Summary {
	c.mu.Lock()
	order := append([]string(nil), c.order...)
	frames, errs, degraded := c.frames, c.errs, c.degraded
	c.mu.Unlock()

	var out Summary
	for _, stage := range order {
		q := c.reg.Dist("stage." + stage + ".queue_ms").Snapshot()
		e := c.reg.Dist("stage." + stage + ".exec_ms").Snapshot()
		out.Stages = append(out.Stages, StageSummary{
			Stage:       stage,
			Frames:      c.reg.Counter("stage." + stage + ".frames").Value(),
			QueueMeanMs: q.Mean,
			QueueP99Ms:  q.P99,
			QueueMaxMs:  q.Max,
			ExecMeanMs:  e.Mean,
			ExecP99Ms:   e.P99,
			ExecP9999Ms: e.P9999,
			ExecSumMs:   e.Sum,
		})
	}
	w := c.reg.Dist("frame.wall_ms").Snapshot()
	out.Frame = FrameSummary{
		Frames:     frames,
		Errs:       errs,
		Degraded:   degraded,
		WallMeanMs: w.Mean,
		WallP99Ms:  w.P99,
		WallP99p99: w.P9999,
		WallMaxMs:  w.Max,
	}
	return out
}

// WriteJSON writes the summary as indented JSON.
func (c *Collector) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c.Summarize()); err != nil {
		return fmt.Errorf("telemetry: json export: %w", err)
	}
	return nil
}

// WriteCSV writes the per-stage summary as CSV (one header row, one row per
// stage, then one "frame" row for the wall-latency aggregate).
func (c *Collector) WriteCSV(w io.Writer) error {
	s := c.Summarize()
	var b strings.Builder
	b.WriteString("stage,frames,queue_mean_ms,queue_p99_ms,queue_max_ms,exec_mean_ms,exec_p99_ms,exec_p9999_ms,exec_sum_ms\n")
	for _, row := range s.Stages {
		fmt.Fprintf(&b, "%s,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			row.Stage, row.Frames, row.QueueMeanMs, row.QueueP99Ms, row.QueueMaxMs,
			row.ExecMeanMs, row.ExecP99Ms, row.ExecP9999Ms, row.ExecSumMs)
	}
	fmt.Fprintf(&b, "frame,%d,,,,%.4f,%.4f,%.4f,\n",
		s.Frame.Frames, s.Frame.WallMeanMs, s.Frame.WallP99Ms, s.Frame.WallP99p99)
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("telemetry: csv export: %w", err)
	}
	return nil
}

// String renders the summary as an aligned human-readable table.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %7s %11s %11s %11s %11s %12s\n",
		"stage", "frames", "queue mean", "queue p99", "exec mean", "exec p99", "exec p99.99")
	for _, row := range s.Stages {
		fmt.Fprintf(&b, "%-12s %7d %9.3fms %9.3fms %9.3fms %9.3fms %10.3fms\n",
			row.Stage, row.Frames, row.QueueMeanMs, row.QueueP99Ms,
			row.ExecMeanMs, row.ExecP99Ms, row.ExecP9999Ms)
	}
	fmt.Fprintf(&b, "frame wall: mean=%.3fms p99=%.3fms p99.99=%.3fms max=%.3fms (%d frames, %d errs, %d degraded)\n",
		s.Frame.WallMeanMs, s.Frame.WallP99Ms, s.Frame.WallP99p99, s.Frame.WallMaxMs,
		s.Frame.Frames, s.Frame.Errs, s.Frame.Degraded)
	return b.String()
}
