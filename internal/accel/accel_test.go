package accel

import (
	"math"
	"testing"

	"adsim/internal/stats"
)

func TestPlatformEngineStrings(t *testing.T) {
	if CPU.String() != "CPU" || ASIC.String() != "ASIC" {
		t.Error("platform names wrong")
	}
	if DET.String() != "DET" || LOC.String() != "LOC" {
		t.Error("engine names wrong")
	}
	if Platform(9).String() != "platform(9)" || Engine(9).String() != "engine(9)" {
		t.Error("out-of-range formatting wrong")
	}
	if len(Platforms()) != NumPlatforms || len(Engines()) != NumEngines {
		t.Error("enumeration lengths wrong")
	}
}

func TestTables(t *testing.T) {
	if len(Table1()) != 4 {
		t.Error("Table 1 should have 4 manufacturers")
	}
	if len(Table2()) != 6 {
		t.Error("Table 2 should list 6 platforms (4 classes, 3 ASICs)")
	}
	t3 := Table3()
	if t3.ClockGHz != 4.0 || t3.PowerMilliW != 21.97 || t3.AreaUm2 != 6539.9 {
		t.Errorf("Table 3 = %+v", t3)
	}
}

func TestResolutionScaling(t *testing.T) {
	if Res1080p.Pixels() != 1920*1080 {
		t.Error("pixel count wrong")
	}
	s := Res1440p.ScaleFrom(Res720p)
	if math.Abs(s-4.0) > 1e-9 {
		t.Errorf("QHD/HD scale = %v, want 4", s)
	}
	if len(SweepResolutions()) != 5 {
		t.Error("Fig 13 sweep should have 5 resolutions")
	}
}

func TestWorkloadProfiles(t *testing.T) {
	w := PaperWorkloads()
	if w.Det.MACs < 1e10 || w.Det.ConvMACs == 0 {
		t.Error("DET workload implausible")
	}
	if w.Tra.FCMACs == 0 || w.Tra.ConvMACs == 0 {
		t.Error("TRA workload missing conv/fc split")
	}
	if w.LocFEOps <= 0 {
		t.Error("LOC FE ops missing")
	}
	// Resolution scaling: conv scales, FC does not.
	base := w.TraMACsAt(ResKITTI)
	scaled := w.TraMACsAt(Res1440p)
	pureScale := ResKITTI.Pixels()
	_ = pureScale
	if scaled <= base {
		t.Error("TRA MACs should grow with resolution")
	}
	ratio := scaled / base
	pixRatio := Res1440p.ScaleFrom(ResKITTI)
	if ratio >= pixRatio {
		t.Errorf("TRA scaling %.2f should be sub-linear in pixels (%.2f) due to fixed FC", ratio, pixRatio)
	}
}

func TestMeanLatencyMatchesCalibrationPoints(t *testing.T) {
	m := NewModel()
	for _, p := range Platforms() {
		for _, e := range Engines() {
			got := m.MeanLatency(p, e, ResKITTI)
			want := PaperMean(p, e)
			// LOC includes the tiny relocalization mean contribution.
			tol := 0.005 * want
			if e == LOC {
				tol = 0.02*want + 0.6
			}
			if math.Abs(got-want) > tol {
				t.Errorf("%v/%v mean = %.2f, want %.2f", p, e, got, want)
			}
		}
	}
}

func TestSampledTailsMatchPaper(t *testing.T) {
	m := NewModel()
	rng := stats.NewRNG(42)
	for _, p := range Platforms() {
		for _, e := range Engines() {
			d := stats.NewDistribution(60000)
			for i := 0; i < 60000; i++ {
				d.Add(m.Sample(p, e, ResKITTI, rng))
			}
			wantTail := PaperTail(p, e)
			gotTail := d.P9999()
			relErr := math.Abs(gotTail-wantTail) / wantTail
			if relErr > 0.15 {
				t.Errorf("%v/%v sampled P99.99 = %.1f, paper %.1f (rel %.2f)",
					p, e, gotTail, wantTail, relErr)
			}
			// Sampled mean must track the calibration mean.
			if meanErr := math.Abs(d.Mean()-PaperMean(p, e)) / PaperMean(p, e); meanErr > 0.05 {
				t.Errorf("%v/%v sampled mean = %.1f, paper %.1f", p, e, d.Mean(), PaperMean(p, e))
			}
		}
	}
}

func TestFixedLatencyPlatformsHaveNoJitter(t *testing.T) {
	m := NewModel()
	rng := stats.NewRNG(7)
	for _, p := range []Platform{FPGA, ASIC} {
		for _, e := range Engines() {
			first := m.Sample(p, e, ResKITTI, rng)
			for i := 0; i < 100; i++ {
				if s := m.Sample(p, e, ResKITTI, rng); s != first {
					t.Fatalf("%v/%v not deterministic: %v vs %v", p, e, s, first)
				}
			}
		}
	}
}

func TestRelocalizationDrivesLOCTail(t *testing.T) {
	m := NewModel()
	rng := stats.NewRNG(9)
	spikes := 0
	n := 20000
	threshold := PaperMean(CPU, LOC) * 3
	for i := 0; i < n; i++ {
		if m.Sample(CPU, LOC, ResKITTI, rng) > threshold {
			spikes++
		}
	}
	rate := float64(spikes) / float64(n)
	if rate < relocProbability/2 || rate > relocProbability*2 {
		t.Errorf("spike rate %.5f, want ~%.5f", rate, relocProbability)
	}
}

func TestLatencyScalesWithResolution(t *testing.T) {
	m := NewModel()
	for _, p := range Platforms() {
		for _, e := range Engines() {
			lo := m.MeanLatency(p, e, ResHHD)
			hi := m.MeanLatency(p, e, Res1440p)
			if hi <= lo {
				t.Errorf("%v/%v latency does not grow with resolution", p, e)
			}
		}
	}
	// DET is fully convolutional: scaling should be exactly the pixel ratio.
	detRatio := m.MeanLatency(GPU, DET, Res1440p) / m.MeanLatency(GPU, DET, ResHHD)
	pixRatio := Res1440p.ScaleFrom(ResHHD)
	if math.Abs(detRatio-pixRatio) > 0.01*pixRatio {
		t.Errorf("DET scaling %.2f != pixel ratio %.2f", detRatio, pixRatio)
	}
}

func TestHeadlineTailReductions(t *testing.T) {
	// The paper's headline: GPU/FPGA/ASIC reduce end-to-end tail latency
	// by 169x/10x/93x. End-to-end tail = max(LOC, DET+TRA) of Fig 10b.
	e2e := func(p Platform) float64 {
		detTra := PaperTail(p, DET) + PaperTail(p, TRA)
		loc := PaperTail(p, LOC)
		return math.Max(detTra, loc)
	}
	base := e2e(CPU)
	for _, c := range []struct {
		p    Platform
		want float64
	}{{GPU, 169}, {FPGA, 10}, {ASIC, 93}} {
		got := base / e2e(c.p)
		if math.Abs(got-c.want)/c.want > 0.02 {
			t.Errorf("%v tail reduction = %.1fx, paper says %.0fx", c.p, got, c.want)
		}
	}
}

func TestPowerTable(t *testing.T) {
	m := NewModel()
	if m.Power(GPU, TRA) != 55.0 {
		t.Error("GPU TRA power wrong")
	}
	// Finding 3: specialized hardware beats general-purpose on power for
	// every engine.
	for _, e := range Engines() {
		if m.Power(ASIC, e) >= m.Power(GPU, e) || m.Power(FPGA, e) >= m.Power(CPU, e) {
			t.Errorf("power ordering violated for %v", e)
		}
	}
}

func TestFitLogNormalSigma(t *testing.T) {
	if fitLogNormalSigma(1.0) != 0 || fitLogNormalSigma(0.5) != 0 {
		t.Error("ratio <= 1 should give zero sigma")
	}
	// Round trip: the fitted sigma reproduces the ratio at the tail z.
	for _, ratio := range []float64{1.05, 1.3, 2.0, 7.0} {
		s := fitLogNormalSigma(ratio)
		got := math.Exp(s*tailZ - s*s/2)
		if math.Abs(got-ratio)/ratio > 1e-9 {
			t.Errorf("sigma fit for %.2f reproduces %.4f", ratio, got)
		}
	}
}

func TestFusionMotPlanSamples(t *testing.T) {
	m := NewModel()
	rng := stats.NewRNG(3)
	var fuseSum, planSum float64
	n := 20000
	for i := 0; i < n; i++ {
		fuseSum += m.SampleFusion(rng)
		planSum += m.SampleMotPlan(rng)
	}
	if math.Abs(fuseSum/float64(n)-FusionMeanMs) > 0.01 {
		t.Errorf("fusion mean = %v", fuseSum/float64(n))
	}
	if math.Abs(planSum/float64(n)-MotPlanMeanMs) > 0.05 {
		t.Errorf("motplan mean = %v", planSum/float64(n))
	}
}

func TestEffectiveRateRenders(t *testing.T) {
	m := NewModel()
	for _, p := range Platforms() {
		for _, e := range Engines() {
			if m.EffectiveRate(p, e) == "" {
				t.Fatal("empty rate description")
			}
		}
	}
}
