// Package accel models the four computing platforms the paper evaluates —
// multicore CPU, GPU, FPGA and ASIC — and converts the pipeline's workload
// profiles (DNN MAC/byte counts from internal/dnn, feature-extraction op
// counts from the SLAM front-end) into per-frame latency samples and power
// figures.
//
// Real GPU/FPGA/ASIC hardware is unavailable to this reproduction, so each
// platform is an analytical model: a spec sheet (the paper's Table 2/3), an
// effective-throughput latency model whose efficiency constants are
// calibrated against the paper's measured means (see calib.go for every
// constant and its derivation), and a predictability model (log-normal
// execution jitter for CPU/GPU, relocalization spikes for the localization
// engine, fixed-latency pipelines for FPGA/ASIC). The calibration pins the
// means; the tails, scaling behaviour, end-to-end composition and every
// figure's *shape* then emerge from the models.
package accel

import "fmt"

// Platform enumerates the computing platforms of the paper's Table 2.
type Platform int

const (
	CPU Platform = iota
	GPU
	FPGA
	ASIC
	NumPlatforms = 4
)

var platformNames = [NumPlatforms]string{"CPU", "GPU", "FPGA", "ASIC"}

func (p Platform) String() string {
	if p < 0 || int(p) >= NumPlatforms {
		return fmt.Sprintf("platform(%d)", int(p))
	}
	return platformNames[p]
}

// Platforms lists all platforms in display order.
func Platforms() []Platform { return []Platform{CPU, GPU, FPGA, ASIC} }

// Engine enumerates the three computational bottlenecks the paper
// accelerates.
type Engine int

const (
	DET Engine = iota
	TRA
	LOC
	NumEngines = 3
)

var engineNames = [NumEngines]string{"DET", "TRA", "LOC"}

func (e Engine) String() string {
	if e < 0 || int(e) >= NumEngines {
		return fmt.Sprintf("engine(%d)", int(e))
	}
	return engineNames[e]
}

// Engines lists all bottleneck engines in display order.
func Engines() []Engine { return []Engine{DET, TRA, LOC} }

// Spec is one row of the paper's Table 2 (computing platform
// specifications), plus the FE ASIC of Table 3.
type Spec struct {
	Platform   Platform
	Model      string
	FreqGHz    float64
	Cores      int     // CPU cores / GPU CUDA cores / FPGA DSPs
	MemGB      float64 // on-board or on-chip memory
	MemBWGBs   float64 // memory bandwidth
	Technology string
}

// Table2 returns the paper's Table 2 platform specifications.
func Table2() []Spec {
	return []Spec{
		{Platform: CPU, Model: "Intel Xeon E5-2630 v3 (dual socket)", FreqGHz: 3.2, Cores: 16, MemGB: 128, MemBWGBs: 59.0},
		{Platform: GPU, Model: "NVIDIA Titan X (Pascal)", FreqGHz: 1.4, Cores: 3584, MemGB: 12, MemBWGBs: 480.0},
		{Platform: FPGA, Model: "Altera Stratix V (256 DSPs)", FreqGHz: 0.8, Cores: 256, MemGB: 2, MemBWGBs: 6.4},
		{Platform: ASIC, Model: "Eyeriss-style CNN ASIC", FreqGHz: 0.2, Cores: 168, MemGB: 181.5e-6, Technology: "TSMC 65 nm"},
		{Platform: ASIC, Model: "EIE-style FC ASIC", FreqGHz: 0.8, Technology: "TSMC 45 nm"},
		{Platform: ASIC, Model: "FE ASIC (this work)", FreqGHz: 4.0, Technology: "ARM 45 nm"},
	}
}

// FEASICSpec is the paper's Table 3: the custom feature-extraction ASIC.
type FEASICSpec struct {
	Technology  string
	AreaUm2     float64
	ClockGHz    float64
	PowerMilliW float64
}

// Table3 returns the paper's Table 3 FE ASIC specification.
func Table3() FEASICSpec {
	return FEASICSpec{
		Technology:  "ARM Artisan IBM SOI 45 nm",
		AreaUm2:     6539.9,
		ClockGHz:    4.0,
		PowerMilliW: 21.97,
	}
}

// IndustrySurveyRow is one row of the paper's Table 1 (autonomous driving
// vehicles under experimentation at industry leaders).
type IndustrySurveyRow struct {
	Manufacturer string
	Automation   string
	ComputePlat  string
	Sensors      string
}

// Table1 returns the paper's Table 1 industry survey.
func Table1() []IndustrySurveyRow {
	return []IndustrySurveyRow{
		{"Mobileye", "level 2", "SoCs", "camera"},
		{"Tesla", "level 2", "SoCs + GPUs", "camera, radar"},
		{"Nvidia/Audi", "level 3", "SoCs + GPUs", "lidar, camera, radar"},
		{"Waymo", "level 3", "SoCs + GPUs", "lidar, camera, radar"},
	}
}
