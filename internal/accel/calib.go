package accel

// Calibration constants.
//
// This file is the single place where the reproduction anchors itself to the
// paper's measurements. The paper's Figure 10 reports, for each of the three
// computational bottlenecks on each platform, the measured mean latency,
// 99.99th-percentile latency and power of the authors' implementations
// (Caffe/cuDNN on the GPU, hand-written RTL on the Stratix V, published
// Eyeriss/EIE numbers extrapolated for the ASICs, a post-synthesis 45 nm
// design for the FE ASIC).
//
// We cannot re-run those artifacts, so the latency models take the paper's
// MEANS as effective-throughput calibration points:
//
//	rate(platform, engine) = workloadMACs(engine) / paperMean(platform, engine)
//
// and everything else is modeled, not copied:
//
//   - Tails come from predictability models: per-frame log-normal jitter for
//     CPU/GPU whose sigma is fit to the paper's tail/mean ratio, explicit
//     relocalization-spike events for LOC, and zero jitter for the
//     fixed-latency FPGA/ASIC pipelines (the paper's Fig 10b shows
//     tail == mean for them).
//   - Resolution scaling (Fig 13) scales the convolutional/feature-extraction
//     portion of each workload with pixel count; FC layers do not scale.
//   - End-to-end latency (Fig 11) is composed from per-engine samples by the
//     pipeline's dependency structure, not taken from the paper.
//   - Power (Fig 10c) is taken directly as the per-engine board power of each
//     platform; cooling/storage/vehicle models live in internal/power.
//
// All times are milliseconds, all powers watts.

// paperMeanMs is Fig 10a: mean latency per engine per platform.
var paperMeanMs = [NumPlatforms][NumEngines]float64{
	CPU:  {7150.0, 799.0, 40.8},
	GPU:  {11.2, 5.5, 20.3},
	FPGA: {369.6, 536.0, 27.1},
	ASIC: {95.9, 1.8, 10.1},
}

// paperTailMs is Fig 10b: 99.99th-percentile latency per engine per
// platform. FPGA and ASIC designs are fixed-latency, so tail == mean.
var paperTailMs = [NumPlatforms][NumEngines]float64{
	CPU:  {7734.4, 1334.0, 294.2},
	GPU:  {14.3, 6.4, 54.0},
	FPGA: {369.6, 536.0, 27.1},
	ASIC: {95.9, 1.8, 10.1},
}

// paperPowerW is Fig 10c: measured power per engine per platform (single
// camera stream). The 0.1 W LOC ASIC entry is the Table 3 FE ASIC (21.97 mW
// rounded up with I/O).
var paperPowerW = [NumPlatforms][NumEngines]float64{
	CPU:  {51.2, 106.9, 53.8},
	GPU:  {54.0, 55.0, 53.0},
	FPGA: {21.5, 22.7, 19.0},
	ASIC: {7.9, 9.3, 0.1},
}

// Fusion and motion planning run on the host CPU in every configuration and
// are not bottlenecks (Fig 6: 0.1 ms and 0.5 ms).
const (
	FusionMeanMs  = 0.1
	MotPlanMeanMs = 0.5
)

// locFEShare is Fig 7's LOC cycle breakdown: feature extraction consumes
// 85.9% of the engine, matching/pose/map the rest. Used to split the LOC
// calibration point into a resolution-scaling FE part and a fixed part.
const locFEShare = 0.859

// locFEAccelerated maps, per platform, the latency of the FE portion after
// acceleration. On the CPU the split follows Fig 7 exactly; on accelerators
// the non-FE portion ("other") stays host-side and constant, so the FE part
// is the platform mean minus the CPU-resident remainder.
func locFEMs(p Platform) float64 {
	other := locOtherMs()
	fe := paperMeanMs[p][LOC] - other
	if fe < 0.05 {
		fe = 0.05
	}
	return fe
}

// locOtherMs is the host-resident non-FE portion of LOC (matching, pose
// update, map maintenance) under normal tracking.
func locOtherMs() float64 {
	return paperMeanMs[CPU][LOC] * (1 - locFEShare)
}

// Relocalization events: the behavioural source of LOC's latency tail. The
// lost tracker searches a much larger candidate set, so the frame costs the
// paper's tail latency instead of the mean. One frame in 500 relocalizes,
// which (a) leaves the mean essentially unchanged and (b) sits above the
// 99.99th percentile, so the tail equals the relocalization cost — matching
// Fig 10b. FPGA/ASIC LOC designs are fixed-latency pipelines provisioned for
// the worst case (the paper measures tail == mean), so no spike applies.
const relocProbability = 1.0 / 500

// cpuGPUJitterZ is the standard normal quantile for the 99.99th percentile,
// used to fit log-normal jitter sigmas from the paper's tail/mean ratios.
const tailZ = 3.719
