package accel

import (
	"fmt"

	"adsim/internal/dnn"
)

// Roofline analysis: classifies each DNN layer as compute- or memory-bound
// on each platform using the layer's arithmetic intensity (MACs per byte
// moved) against the platform's balance point (peak MACs/s ÷ memory GB/s
// from Table 2). This is the analysis behind the paper's Finding 1: the
// FPGA's DSP count bounds DET/TRA compute, while GOTURN's FC layers — tens
// of MB of weights touched once per inference — sit far below every
// platform's balance point and are memory-bound everywhere, which is why
// the paper reaches for EIE's compressed-weight FC ASIC.

// Bound classifies a layer's limiting resource on a platform.
type Bound int

const (
	// ComputeBound: arithmetic intensity above the platform balance point.
	ComputeBound Bound = iota
	// MemoryBound: intensity below the balance point.
	MemoryBound
)

func (b Bound) String() string {
	if b == ComputeBound {
		return "compute"
	}
	return "memory"
}

// LayerRoofline is the roofline classification of one layer on one
// platform.
type LayerRoofline struct {
	Name      string
	MACs      int64
	Bytes     int64   // weights + activations moved
	Intensity float64 // MACs per byte
	Bound     Bound
}

// PlatformBalance returns the balance point (MACs per byte) of a platform:
// layers with lower arithmetic intensity are memory-bound on it. Peaks
// derive from Table 2; the ASIC balance uses the Eyeriss design's on-chip
// reuse, making almost everything compute-bound (its point).
func PlatformBalance(p Platform) float64 {
	switch p {
	case CPU:
		// 409.6 GMAC/s peak ÷ 59 GB/s.
		return 409.6 / 59.0
	case GPU:
		// 5017.6 GMAC/s ÷ 480 GB/s.
		return 5017.6 / 480.0
	case FPGA:
		// 204.8 GMAC/s ÷ 6.4 GB/s: the Stratix V's thin DDR interface
		// gives it the highest balance point — most layers memory-bound.
		return 204.8 / 6.4
	default:
		// Eyeriss's row-stationary dataflow reuses weights and
		// activations on-chip; effective off-chip traffic is ~10x lower,
		// so the effective balance point drops accordingly.
		return 33.6 / 25.0
	}
}

// AnalyzeNetwork classifies every layer of a network on a platform. Bytes
// per layer count the weights (read once per inference) plus input and
// output activations.
func AnalyzeNetwork(n *dnn.Network, p Platform) []LayerRoofline {
	balance := PlatformBalance(p)
	costs := n.LayerCosts()
	out := make([]LayerRoofline, len(costs))
	shape := n.Input
	for i, l := range n.Layers {
		c := costs[i]
		inBytes := int64(4 * shape.Elems())
		bytes := c.WeightBytes + c.ActBytes + inBytes
		intensity := float64(c.MACs) / float64(bytes)
		bound := ComputeBound
		if intensity < balance {
			bound = MemoryBound
		}
		out[i] = LayerRoofline{
			Name:      l.Name(),
			MACs:      c.MACs,
			Bytes:     bytes,
			Intensity: intensity,
			Bound:     bound,
		}
		shape = l.OutShape(shape)
	}
	return out
}

// NetworkSummary aggregates a roofline analysis: the share of MACs in
// memory-bound layers.
type NetworkSummary struct {
	Platform        Platform
	Network         string
	TotalMACs       int64
	MemoryBoundMACs int64
}

// MemoryBoundShare returns the fraction of the network's MACs that sit in
// memory-bound layers on this platform.
func (s NetworkSummary) MemoryBoundShare() float64 {
	if s.TotalMACs == 0 {
		return 0
	}
	return float64(s.MemoryBoundMACs) / float64(s.TotalMACs)
}

func (s NetworkSummary) String() string {
	return fmt.Sprintf("%s on %v: %.0f%% of MACs memory-bound",
		s.Network, s.Platform, 100*s.MemoryBoundShare())
}

// Summarize aggregates AnalyzeNetwork for a network/platform pair.
func Summarize(n *dnn.Network, p Platform) NetworkSummary {
	s := NetworkSummary{Platform: p, Network: n.Name}
	for _, l := range AnalyzeNetwork(n, p) {
		s.TotalMACs += l.MACs
		if l.Bound == MemoryBound {
			s.MemoryBoundMACs += l.MACs
		}
	}
	return s
}
