package accel

import (
	"math"
	"strings"
	"testing"

	"adsim/internal/dnn"
	"adsim/internal/stats"
)

func TestBoundString(t *testing.T) {
	if ComputeBound.String() != "compute" || MemoryBound.String() != "memory" {
		t.Error("Bound strings wrong")
	}
}

func TestPlatformBalancePoints(t *testing.T) {
	// The FPGA's thin 6.4 GB/s link gives it the highest balance point;
	// the reuse-heavy ASIC the lowest.
	if PlatformBalance(FPGA) <= PlatformBalance(GPU) {
		t.Error("FPGA balance should exceed GPU")
	}
	if PlatformBalance(FPGA) <= PlatformBalance(CPU) {
		t.Error("FPGA balance should exceed CPU")
	}
	if PlatformBalance(ASIC) >= PlatformBalance(CPU) {
		t.Error("ASIC effective balance should be the lowest")
	}
	for _, p := range Platforms() {
		if PlatformBalance(p) <= 0 {
			t.Fatalf("%v balance non-positive", p)
		}
	}
}

func TestAnalyzeNetworkClassification(t *testing.T) {
	// A 3x3 conv over a deep feature map has high arithmetic intensity
	// (compute-bound on the GPU); a huge FC layer touches every weight
	// once (memory-bound everywhere).
	n := dnn.MustNetwork("probe", dnn.Shape{C: 64, H: 32, W: 32},
		dnn.NewConv(64, 3, 1, 1, dnn.Leaky, 1),
		dnn.NewFC(4096, dnn.Linear, 2),
	)
	rows := AnalyzeNetwork(n, GPU)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	conv, fc := rows[0], rows[1]
	if conv.Bound != ComputeBound {
		t.Errorf("deep conv classified %v (intensity %.1f)", conv.Bound, conv.Intensity)
	}
	if fc.Bound != MemoryBound {
		t.Errorf("fc classified %v (intensity %.2f)", fc.Bound, fc.Intensity)
	}
	if fc.Intensity >= 1 {
		t.Errorf("fc intensity %.2f should be <1 MAC/byte", fc.Intensity)
	}
	if conv.MACs <= 0 || conv.Bytes <= 0 {
		t.Error("missing layer accounting")
	}
}

func TestSummarize(t *testing.T) {
	head := dnn.GOTURNHead(dnn.Shape{C: 256, H: 6, W: 6})
	s := Summarize(head, FPGA)
	if s.MemoryBoundShare() < 0.99 {
		t.Errorf("GOTURN head on FPGA %.2f memory-bound, want ~1", s.MemoryBoundShare())
	}
	if !strings.Contains(s.String(), "memory-bound") {
		t.Errorf("summary string %q", s.String())
	}
	if (NetworkSummary{}).MemoryBoundShare() != 0 {
		t.Error("empty summary share should be 0")
	}
}

func TestWorkloadsAccessor(t *testing.T) {
	m := NewModel()
	w := m.Workloads()
	if w.Det.MACs <= 0 || w.LocFEOps <= 0 {
		t.Error("workloads accessor broken")
	}
}

func TestLocLatencyAccessors(t *testing.T) {
	m := NewModel()
	// Tracking latency at zero noise equals the tracking mean component.
	base := m.LocTrackingLatency(CPU, ResKITTI, 0)
	if base <= 0 {
		t.Fatal("non-positive tracking latency")
	}
	// Jitter multiplier is mean-preserving: z=0 gives exp(-sigma^2/2) < 1.
	if base >= m.locTrackingMs(CPU, ResKITTI) {
		t.Error("z=0 sample should sit slightly below the raw mean (mean-preserving log-normal)")
	}
	// Reloc latency reproduces the paper tail at base resolution.
	if r := m.LocRelocLatency(CPU, ResKITTI); math.Abs(r-PaperTail(CPU, LOC)) > 0.5 {
		t.Errorf("CPU reloc latency %.1f, want ~%.1f", r, PaperTail(CPU, LOC))
	}
	// Fixed-latency platforms have reloc == tracking mean.
	if r := m.LocRelocLatency(ASIC, ResKITTI); math.Abs(r-m.locTrackingMs(ASIC, ResKITTI)) > 1e-9 {
		t.Error("ASIC reloc should equal its fixed tracking latency")
	}
}

func TestLocFEMsFloor(t *testing.T) {
	// Every platform's FE component must be positive (the 0.05 ms floor
	// guards the ASIC whose Fig 10 LOC mean sits below the CPU-resident
	// 'other' share would otherwise imply).
	for _, p := range Platforms() {
		if locFEMs(p) <= 0 {
			t.Fatalf("%v FE component non-positive", p)
		}
	}
}

func TestSampleSharedMatchesSampleStatistics(t *testing.T) {
	// Sample and SampleShared draw from the same family: their means over
	// many frames must agree.
	m := NewModel()
	r1 := stats.NewRNG(11)
	r2 := stats.NewRNG(11)
	d1 := stats.NewDistribution(20000)
	d2 := stats.NewDistribution(20000)
	for i := 0; i < 20000; i++ {
		d1.Add(m.Sample(GPU, DET, ResKITTI, r1))
		d2.Add(m.SampleShared(GPU, DET, ResKITTI, r2.Normal(0, 1), r2))
	}
	if math.Abs(d1.Mean()-d2.Mean()) > 0.05 {
		t.Errorf("means diverge: %.3f vs %.3f", d1.Mean(), d2.Mean())
	}
}
