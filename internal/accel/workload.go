package accel

import (
	"adsim/internal/detect"
	"adsim/internal/dnn"
	"adsim/internal/track"
)

// Resolution is a camera resolution from the paper's Fig 13 sweep.
type Resolution struct {
	Name string
	W, H int
}

// The paper's Fig 13 x-axis, plus the KITTI base resolution its Fig 10
// measurements correspond to.
var (
	ResKITTI = Resolution{"KITTI", 1242, 375}
	ResHHD   = Resolution{"HHD", 640, 360}
	Res720p  = Resolution{"HD (720p)", 1280, 720}
	ResHDP   = Resolution{"HD+", 1600, 900}
	Res1080p = Resolution{"FHD (1080p)", 1920, 1080}
	Res1440p = Resolution{"QHD (1440p)", 2560, 1440}
)

// SweepResolutions returns the Fig 13 resolutions in sweep order.
func SweepResolutions() []Resolution {
	return []Resolution{ResHHD, Res720p, ResHDP, Res1080p, Res1440p}
}

// Pixels returns the pixel count of the resolution.
func (r Resolution) Pixels() int { return r.W * r.H }

// ScaleFrom returns the compute-scaling factor of this resolution relative
// to base: the ratio of pixel counts, which is how convolutional and
// feature-extraction work grows with input size.
func (r Resolution) ScaleFrom(base Resolution) float64 {
	return float64(r.Pixels()) / float64(base.Pixels())
}

// Workloads aggregates the pipeline's per-frame computational profiles at
// the paper's scale. Built once via PaperWorkloads.
type Workloads struct {
	// Det is the YOLOv2 detection cost per frame.
	Det dnn.Cost
	// Tra is the GOTURN cost per frame (two tower passes + FC head),
	// matching the per-inference numbers the paper reports.
	Tra dnn.Cost
	// LocFEOps is the feature-extraction operation count per frame:
	// the per-pixel FAST segment-test work plus per-feature rBRIEF work.
	LocFEOps int64
	// BaseRes is the resolution the profiles correspond to.
	BaseRes Resolution
}

// PaperWorkloads builds the paper-scale workload profiles from the actual
// network definitions in internal/dnn — the same layer stacks the native
// engines execute at tiny scale.
func PaperWorkloads() Workloads {
	const (
		// oFAST: 16 segment-test comparisons plus bookkeeping per pixel,
		// and the orientation moments for surviving corners folded in.
		fastOpsPerPixel = 48
		// rBRIEF: 256 binary tests, each a rotated 2-point lookup+compare.
		briefOpsPerFeature = 256 * 4
		featuresPerFrame   = 2000
	)
	w := Workloads{
		Det:     detect.PaperWorkloadGraph().Cost(),
		Tra:     track.PaperWorkload(),
		BaseRes: ResKITTI,
	}
	w.LocFEOps = int64(ResKITTI.Pixels())*fastOpsPerPixel +
		featuresPerFrame*briefOpsPerFeature
	return w
}

// DetMACsAt returns the detection workload MACs at a resolution (conv work
// scales with pixels).
func (w Workloads) DetMACsAt(r Resolution) float64 {
	s := r.ScaleFrom(w.BaseRes)
	return float64(w.Det.ConvMACs)*s + float64(w.Det.FCMACs)
}

// TraMACsAt returns the tracking workload MACs at a resolution: the
// convolutional towers scale with input pixels, the FC head does not.
func (w Workloads) TraMACsAt(r Resolution) float64 {
	s := r.ScaleFrom(w.BaseRes)
	return float64(w.Tra.ConvMACs)*s + float64(w.Tra.FCMACs)
}

// LocFEOpsAt returns feature-extraction ops at a resolution (proportional
// to pixel count).
func (w Workloads) LocFEOpsAt(r Resolution) float64 {
	return float64(w.LocFEOps) * r.ScaleFrom(w.BaseRes)
}
