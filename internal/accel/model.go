package accel

import (
	"fmt"
	"math"

	"adsim/internal/stats"
)

// Model converts workload profiles into per-frame latency samples for every
// (platform, engine) pair, and exposes the per-engine power figures. See
// calib.go for how the model is anchored to the paper's measurements.
type Model struct {
	w Workloads

	// Effective throughputs derived from the calibration points:
	// detRate/traRate in MACs per ms, feRate in FE-ops per ms.
	detRate [NumPlatforms]float64
	traRate [NumPlatforms]float64
	feRate  [NumPlatforms]float64
	// locOther is the host-resident non-FE LOC time (ms).
	locOther float64
	// jitter sigma per platform per engine (log-normal, mean-preserving).
	sigma [NumPlatforms][NumEngines]float64
}

// NewModel builds the platform model from the paper-scale workloads.
func NewModel() *Model {
	m := &Model{w: PaperWorkloads(), locOther: locOtherMs()}
	for _, p := range Platforms() {
		m.detRate[p] = m.w.DetMACsAt(ResKITTI) / paperMeanMs[p][DET]
		m.traRate[p] = m.w.TraMACsAt(ResKITTI) / paperMeanMs[p][TRA]
		m.feRate[p] = m.w.LocFEOpsAt(ResKITTI) / locFEMs(p)

		// Jitter sigmas from the paper's tail/mean ratios (DET, TRA).
		// LOC tails are relocalization-driven, so LOC gets only a modest
		// execution-noise sigma on the software platforms.
		for _, e := range []Engine{DET, TRA} {
			m.sigma[p][e] = fitLogNormalSigma(paperTailMs[p][e] / paperMeanMs[p][e])
		}
	}
	m.sigma[CPU][LOC] = 0.15
	m.sigma[GPU][LOC] = 0.05
	return m
}

// fitLogNormalSigma solves for the sigma of a mean-preserving log-normal
// multiplier exp(sigma·Z − sigma²/2) whose 99.99th-percentile equals ratio:
// sigma²/2 − z·sigma + ln(ratio) = 0.
func fitLogNormalSigma(ratio float64) float64 {
	if ratio <= 1 {
		return 0
	}
	disc := tailZ*tailZ - 2*math.Log(ratio)
	if disc < 0 {
		disc = 0
	}
	return tailZ - math.Sqrt(disc)
}

// Workloads returns the paper-scale workload profiles the model is built on.
func (m *Model) Workloads() Workloads { return m.w }

// MeanLatency returns the expected per-frame latency (ms) of engine e on
// platform p at resolution res. At the paper's base resolution this equals
// the Fig 10a calibration point by construction; at other resolutions the
// convolutional / feature-extraction portions scale with pixel count.
func (m *Model) MeanLatency(p Platform, e Engine, res Resolution) float64 {
	switch e {
	case DET:
		return m.w.DetMACsAt(res) / m.detRate[p]
	case TRA:
		return m.w.TraMACsAt(res) / m.traRate[p]
	default:
		return m.locTrackingMs(p, res) + m.relocMeanContribution(p, res)
	}
}

// locTrackingMs is the LOC latency of a normally-tracking frame.
func (m *Model) locTrackingMs(p Platform, res Resolution) float64 {
	return m.w.LocFEOpsAt(res)/m.feRate[p] + m.locOther
}

// locRelocMs is the LOC latency of a relocalizing frame: feature extraction
// plus the wide map search, both scaling with resolution. At base
// resolution it reproduces the paper's Fig 10b LOC tail.
func (m *Model) locRelocMs(p Platform, res Resolution) float64 {
	if !m.locHasSpikes(p) {
		return m.locTrackingMs(p, res)
	}
	scale := res.ScaleFrom(m.w.BaseRes)
	wideSearch := (paperTailMs[p][LOC] - locFEMs(p) - m.locOther) * scale
	return m.w.LocFEOpsAt(res)/m.feRate[p] + m.locOther + wideSearch
}

// locHasSpikes reports whether relocalization produces latency spikes on p.
// The FPGA/ASIC LOC designs are fixed-latency pipelines provisioned for the
// worst case (Fig 10b shows tail == mean), so they do not spike.
func (m *Model) locHasSpikes(p Platform) bool { return p == CPU || p == GPU }

// relocMeanContribution is the expected extra mean latency contributed by
// relocalization frames.
func (m *Model) relocMeanContribution(p Platform, res Resolution) float64 {
	if !m.locHasSpikes(p) {
		return 0
	}
	return relocProbability * (m.locRelocMs(p, res) - m.locTrackingMs(p, res))
}

// Sample draws one frame's latency (ms) for engine e on platform p at
// resolution res. The RNG drives execution jitter and relocalization
// events; FPGA/ASIC samples are deterministic.
func (m *Model) Sample(p Platform, e Engine, res Resolution, rng *stats.RNG) float64 {
	return m.SampleShared(p, e, res, rng.Normal(0, 1), rng)
}

// SampleShared is Sample with the execution-noise draw z supplied by the
// caller. Engines co-located on one platform experience common interference
// (scheduler activity, memory contention), so the pipeline simulator draws
// one z per platform per frame and shares it across that platform's
// engines — which is also what makes the end-to-end tail compose as the sum
// of component tails, as the paper's Figure 11 shows.
func (m *Model) SampleShared(p Platform, e Engine, res Resolution, z float64, rng *stats.RNG) float64 {
	switch e {
	case DET, TRA:
		return m.MeanLatency(p, e, res) * m.jitterMult(p, e, z)
	default:
		// Relocalization frames are dominated by the wide map search,
		// whose cost is set by the candidate-set size rather than
		// execution noise, so no jitter multiplier applies.
		if m.locHasSpikes(p) && rng.Bernoulli(relocProbability) {
			return m.locRelocMs(p, res)
		}
		return m.locTrackingMs(p, res) * m.jitterMult(p, LOC, z)
	}
}

// jitterMult computes the mean-preserving log-normal execution-noise
// multiplier for (p,e) at noise draw z; 1.0 for fixed-latency platforms.
func (m *Model) jitterMult(p Platform, e Engine, z float64) float64 {
	s := m.sigma[p][e]
	if s == 0 {
		return 1
	}
	return math.Exp(s*z - s*s/2)
}

// LocTrackingLatency returns one normally-tracking LOC frame's latency at
// execution-noise draw z. Exposed for the relocalization ablation.
func (m *Model) LocTrackingLatency(p Platform, res Resolution, z float64) float64 {
	return m.locTrackingMs(p, res) * m.jitterMult(p, LOC, z)
}

// LocRelocLatency returns a relocalization frame's latency (the wide
// map-search path). Exposed for the relocalization ablation.
func (m *Model) LocRelocLatency(p Platform, res Resolution) float64 {
	return m.locRelocMs(p, res)
}

// SampleFusion draws the fusion engine's host-CPU latency for one frame.
func (m *Model) SampleFusion(rng *stats.RNG) float64 {
	return FusionMeanMs * math.Exp(0.1*rng.Normal(0, 1)-0.005)
}

// SampleMotPlan draws the motion planner's host-CPU latency for one frame.
func (m *Model) SampleMotPlan(rng *stats.RNG) float64 {
	return MotPlanMeanMs * math.Exp(0.1*rng.Normal(0, 1)-0.005)
}

// Power returns the measured board power (W) of engine e on platform p for
// a single camera stream (Fig 10c).
func (m *Model) Power(p Platform, e Engine) float64 { return paperPowerW[p][e] }

// PaperMean returns the Fig 10a calibration point (ms).
func PaperMean(p Platform, e Engine) float64 { return paperMeanMs[p][e] }

// PaperTail returns the Fig 10b calibration point (ms).
func PaperTail(p Platform, e Engine) float64 { return paperTailMs[p][e] }

// EffectiveRate describes a derived throughput for documentation output.
func (m *Model) EffectiveRate(p Platform, e Engine) string {
	switch e {
	case DET:
		return fmt.Sprintf("%.1f GMAC/s", m.detRate[p]/1e6)
	case TRA:
		return fmt.Sprintf("%.1f GMAC/s", m.traRate[p]/1e6)
	default:
		return fmt.Sprintf("%.1f Gop/s", m.feRate[p]/1e6)
	}
}
