package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/accel"
	"adsim/internal/pipeline"
	"adsim/internal/power"
)

func init() { register("fig12", runFig12) }

// NumCameras is the paper's end-to-end sensor fit: eight cameras (as on a
// Tesla), each paired with a replica of the computing engine.
const NumCameras = 8

// Fig12Row is one configuration's end-to-end power and range impact.
type Fig12Row struct {
	Assignment pipeline.Assignment
	ComputeW   float64 // 8-camera computing power
	SystemW    float64 // + storage + cooling
	RangePct   float64
}

// Fig12Result reproduces Figure 12: end-to-end power consumption and
// driving-range reduction per configuration (8 cameras, 41 TB map storage,
// COP-1.3 cooling).
type Fig12Result struct {
	Rows []Fig12Row
}

func (Fig12Result) ID() string { return "fig12" }

func (r Fig12Result) Render() string {
	var b strings.Builder
	b.WriteString(header("fig12", "End-to-end power and driving-range reduction"))
	fmt.Fprintf(&b, "%-18s %12s %12s %10s\n", "DET/TRA/LOC", "ComputeW", "SystemW", "Range-%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %12.0f %12.0f %10.1f\n",
			row.Assignment.Short(), row.ComputeW, row.SystemW, row.RangePct)
	}
	fmt.Fprintf(&b, "\n(%d cameras, each with a computing-engine replica; %.0f TB prior map;\n",
		NumCameras, power.USMapTB)
	b.WriteString("cooling at COP 1.3. GPU-heavy configurations exceed 1 kW and cut range\n")
	b.WriteString("by >10%; FPGA/ASIC configurations stay within ~5%.)\n")
	return b.String()
}

// Row returns the row for an assignment (zero row when absent).
func (r Fig12Result) Row(a pipeline.Assignment) Fig12Row {
	for _, row := range r.Rows {
		if row.Assignment == a {
			return row
		}
	}
	return Fig12Row{}
}

func runFig12(Options) (Result, error) {
	m := accel.NewModel()
	var rows []Fig12Row
	for _, a := range figureConfigs() {
		computeW := float64(NumCameras) * a.ComputePowerW(m)
		sys := power.System(computeW, power.USMapTB)
		rows = append(rows, Fig12Row{
			Assignment: a,
			ComputeW:   computeW,
			SystemW:    sys.Total(),
			RangePct:   100 * power.RangeReduction(sys.Total()),
		})
	}
	return Fig12Result{Rows: rows}, nil
}
