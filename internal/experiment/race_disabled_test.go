//go:build !race

package experiment

// raceEnabled reports whether the race detector instruments this build.
// Wall-clock deadline assertions widen under its ~10x slowdown.
const raceEnabled = false
