package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/accel"
	"adsim/internal/pipeline"
	"adsim/internal/power"
	"adsim/internal/stats"
)

func init() {
	register("ablate-noise", runAblateNoise)
	register("ablate-reloc", runAblateReloc)
	register("ablate-cooling", runAblateCooling)
}

// AblateNoiseResult quantifies the noise-correlation design choice: with
// engines co-located on one platform sharing an interference draw, the
// end-to-end tail composes as the sum of component tails (what the paper's
// Fig 11 shows); with independent noise the excursions average out and the
// composed tail shrinks.
type AblateNoiseResult struct {
	SharedTailMs      float64
	IndependentTailMs float64
	ComponentTailSum  float64 // Fig 10b DET+TRA on CPU
}

func (AblateNoiseResult) ID() string { return "ablate-noise" }

func (r AblateNoiseResult) Render() string {
	var b strings.Builder
	b.WriteString(header("ablate-noise", "Ablation: co-located interference correlation"))
	fmt.Fprintf(&b, "CPU end-to-end P99.99, shared per-platform noise:   %8.0f ms\n", r.SharedTailMs)
	fmt.Fprintf(&b, "CPU end-to-end P99.99, independent engine noise:    %8.0f ms\n", r.IndependentTailMs)
	fmt.Fprintf(&b, "Sum of component tails (paper Fig 10b DET+TRA):     %8.0f ms\n", r.ComponentTailSum)
	b.WriteString("\nShared interference is what makes the end-to-end tail equal the sum of\n")
	b.WriteString("component tails, as in the paper's Fig 11; with independent noise the\n")
	b.WriteString("composed tail under-shoots it.\n")
	return b.String()
}

func runAblateNoise(opts Options) (Result, error) {
	m := accel.NewModel()
	run := func(independent bool) (float64, error) {
		sim, err := pipeline.Simulate(m, pipeline.SimConfig{
			Assignment:       pipeline.Uniform(accel.CPU),
			Frames:           opts.Frames,
			Seed:             opts.Seed,
			IndependentNoise: independent,
		})
		if err != nil {
			return 0, err
		}
		return sim.E2E.P9999(), nil
	}
	shared, err := run(false)
	if err != nil {
		return nil, err
	}
	indep, err := run(true)
	if err != nil {
		return nil, err
	}
	return AblateNoiseResult{
		SharedTailMs:      shared,
		IndependentTailMs: indep,
		ComponentTailSum: accel.PaperTail(accel.CPU, accel.DET) +
			accel.PaperTail(accel.CPU, accel.TRA),
	}, nil
}

// AblateRelocRow is one relocalization-probability setting's LOC latency.
type AblateRelocRow struct {
	RelocEvery int // one relocalization per N frames (0 = never)
	MeanMs     float64
	TailMs     float64
}

// AblateRelocResult shows that LOC's tail — and essentially nothing else —
// is set by relocalization frequency: the mean barely moves while the
// 99.99th percentile jumps to the wide-search cost as soon as spikes occur
// more often than 1 in 10000 frames. This is the paper's predictability
// argument made quantitative.
type AblateRelocResult struct {
	Rows []AblateRelocRow
}

func (AblateRelocResult) ID() string { return "ablate-reloc" }

func (r AblateRelocResult) Render() string {
	var b strings.Builder
	b.WriteString(header("ablate-reloc", "Ablation: relocalization frequency vs LOC latency (CPU)"))
	fmt.Fprintf(&b, "%-18s %10s %10s\n", "reloc every", "mean ms", "P99.99 ms")
	for _, row := range r.Rows {
		label := "never"
		if row.RelocEvery > 0 {
			label = fmt.Sprintf("%d frames", row.RelocEvery)
		}
		fmt.Fprintf(&b, "%-18s %10.1f %10.1f\n", label, row.MeanMs, row.TailMs)
	}
	b.WriteString("\nThe mean is insensitive to relocalization; the tail is set by it —\n")
	b.WriteString("why the paper evaluates at the 99.99th percentile.\n")
	return b.String()
}

func runAblateReloc(opts Options) (Result, error) {
	m := accel.NewModel()
	var rows []AblateRelocRow
	for _, every := range []int{0, 2000, 500, 100} {
		rng := stats.NewRNG(opts.Seed)
		d := stats.NewDistribution(opts.Frames)
		for i := 0; i < opts.Frames; i++ {
			// Deterministic spike cadence isolates frequency from
			// sampling noise.
			if every > 0 && i%every == every-1 {
				d.Add(m.LocRelocLatency(accel.CPU, accel.ResKITTI))
				// Burn the jitter draw to keep streams aligned.
				rng.Normal(0, 1)
				continue
			}
			d.Add(m.LocTrackingLatency(accel.CPU, accel.ResKITTI, rng.Normal(0, 1)))
		}
		rows = append(rows, AblateRelocRow{RelocEvery: every, MeanMs: d.Mean(), TailMs: d.P9999()})
	}
	return AblateRelocResult{Rows: rows}, nil
}

// AblateCoolingRow compares a configuration's range impact with and without
// the thermal (cooling) model.
type AblateCoolingRow struct {
	Assignment     pipeline.Assignment
	WithCoolingPct float64
	NoCoolingPct   float64
	Magnification  float64
}

// AblateCoolingResult isolates the paper's thermal-constraint finding: the
// cabin-cooling overhead nearly doubles every configuration's driving-range
// impact.
type AblateCoolingResult struct {
	Rows []AblateCoolingRow
}

func (AblateCoolingResult) ID() string { return "ablate-cooling" }

func (r AblateCoolingResult) Render() string {
	var b strings.Builder
	b.WriteString(header("ablate-cooling", "Ablation: thermal (cooling) magnification of range impact"))
	fmt.Fprintf(&b, "%-18s %14s %14s %8s\n", "DET/TRA/LOC", "range-% (full)", "range-% (no AC)", "x")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %14.1f %14.1f %8.2f\n",
			row.Assignment.Short(), row.WithCoolingPct, row.NoCoolingPct, row.Magnification)
	}
	b.WriteString("\nRemoving the cooling model (as a naive power analysis would) understates\n")
	b.WriteString("the driving-range impact by nearly 2x — the paper's thermal finding.\n")
	return b.String()
}

func runAblateCooling(Options) (Result, error) {
	m := accel.NewModel()
	var rows []AblateCoolingRow
	for _, p := range accel.Platforms() {
		a := pipeline.Uniform(p)
		computeW := float64(NumCameras) * a.ComputePowerW(m)
		full := power.System(computeW, power.USMapTB).Total()
		noCooling := computeW + power.StoragePower(power.USMapTB)
		withPct := 100 * power.RangeReduction(full)
		noPct := 100 * power.RangeReduction(noCooling)
		rows = append(rows, AblateCoolingRow{
			Assignment:     a,
			WithCoolingPct: withPct,
			NoCoolingPct:   noPct,
			Magnification:  withPct / noPct,
		})
	}
	return AblateCoolingResult{Rows: rows}, nil
}
