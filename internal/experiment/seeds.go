package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/accel"
	"adsim/internal/pipeline"
)

func init() { register("seeds", runSeeds) }

// SeedsRow summarizes one configuration's key metric across seeds.
type SeedsRow struct {
	Assignment pipeline.Assignment
	// TailsMs holds the end-to-end P99.99 for each seed.
	TailsMs []float64
	MinMs   float64
	MaxMs   float64
	// SpreadPct is (max-min)/min.
	SpreadPct float64
}

// SeedsResult is an extension experiment: every reported number in this
// reproduction is deterministic for a given seed, so this driver re-runs
// the headline configurations across several seeds and reports the spread —
// the reproduction's own error bars. Tails driven by fixed-latency designs
// or constant relocalization costs have near-zero spread; jitter-driven
// tails vary by a few percent.
type SeedsResult struct {
	Seeds []int64
	Rows  []SeedsRow
}

func (SeedsResult) ID() string { return "seeds" }

func (r SeedsResult) Render() string {
	var b strings.Builder
	b.WriteString(header("seeds", "Seed robustness of the key results (extension)"))
	fmt.Fprintf(&b, "seeds: %v\n\n", r.Seeds)
	fmt.Fprintf(&b, "%-18s %12s %12s %10s\n", "DET/TRA/LOC", "min tail ms", "max tail ms", "spread")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %12.1f %12.1f %9.2f%%\n",
			row.Assignment.Short(), row.MinMs, row.MaxMs, row.SpreadPct)
	}
	b.WriteString("\nEvery figure in this reproduction is deterministic per seed; the\n")
	b.WriteString("spread above bounds the sampling sensitivity of the conclusions.\n")
	return b.String()
}

func runSeeds(opts Options) (Result, error) {
	m := accel.NewModel()
	seeds := []int64{opts.Seed, opts.Seed + 101, opts.Seed + 202, opts.Seed + 303, opts.Seed + 404}
	configs := []pipeline.Assignment{
		pipeline.Uniform(accel.CPU),
		pipeline.Uniform(accel.GPU),
		pipeline.Uniform(accel.ASIC),
		{Det: accel.GPU, Tra: accel.ASIC, Loc: accel.ASIC},
	}
	res := SeedsResult{Seeds: seeds}
	for _, a := range configs {
		row := SeedsRow{Assignment: a}
		for _, seed := range seeds {
			sim, err := pipeline.Simulate(m, pipeline.SimConfig{
				Assignment: a, Frames: opts.Frames, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			row.TailsMs = append(row.TailsMs, sim.E2E.P9999())
		}
		row.MinMs, row.MaxMs = row.TailsMs[0], row.TailsMs[0]
		for _, v := range row.TailsMs[1:] {
			if v < row.MinMs {
				row.MinMs = v
			}
			if v > row.MaxMs {
				row.MaxMs = v
			}
		}
		row.SpreadPct = 100 * (row.MaxMs - row.MinMs) / row.MinMs
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
