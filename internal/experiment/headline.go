package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/accel"
	"adsim/internal/pipeline"
)

func init() { register("headline", runHeadline) }

// HeadlineRow is one accelerator's end-to-end tail-latency reduction over
// the CPU baseline.
type HeadlineRow struct {
	Platform  accel.Platform
	TailMs    float64
	Reduction float64 // vs. the CPU baseline
	Paper     float64 // the paper's abstract: 169x / 10x / 93x
}

// HeadlineResult reproduces the paper's abstract claim: GPU-, FPGA- and
// ASIC-accelerated systems reduce end-to-end tail latency by 169x, 10x and
// 93x respectively.
type HeadlineResult struct {
	BaselineTailMs float64
	Rows           []HeadlineRow
	BestMixedTail  float64 // DET=GPU, TRA=LOC=ASIC (the paper's 16.1 ms)
}

func (HeadlineResult) ID() string { return "headline" }

func (r HeadlineResult) Render() string {
	var b strings.Builder
	b.WriteString(header("headline", "Tail-latency reduction vs. CPU baseline"))
	fmt.Fprintf(&b, "CPU baseline end-to-end P99.99: %.0f ms (paper: ~9.1 s)\n\n", r.BaselineTailMs)
	fmt.Fprintf(&b, "%-8s %12s %12s %10s\n", "Platform", "Tail (ms)", "Reduction", "Paper")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %12.1f %11.0fx %9.0fx\n",
			row.Platform, row.TailMs, row.Reduction, row.Paper)
	}
	fmt.Fprintf(&b, "\nBest mixed configuration (DET=GPU, TRA=ASIC, LOC=ASIC): %.1f ms tail\n", r.BestMixedTail)
	b.WriteString("(paper: 16.1 ms)\n")
	return b.String()
}

func runHeadline(opts Options) (Result, error) {
	m := accel.NewModel()
	tail := func(a pipeline.Assignment, seed int64) (float64, error) {
		sim, err := pipeline.Simulate(m, pipeline.SimConfig{
			Assignment: a, Frames: opts.Frames, Seed: seed,
		})
		if err != nil {
			return 0, err
		}
		return sim.E2E.P9999(), nil
	}
	base, err := tail(pipeline.Uniform(accel.CPU), opts.Seed)
	if err != nil {
		return nil, err
	}
	res := HeadlineResult{BaselineTailMs: base}
	paper := map[accel.Platform]float64{accel.GPU: 169, accel.FPGA: 10, accel.ASIC: 93}
	for i, p := range []accel.Platform{accel.GPU, accel.FPGA, accel.ASIC} {
		t, err := tail(pipeline.Uniform(p), opts.Seed+int64(i)+1)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, HeadlineRow{
			Platform: p, TailMs: t, Reduction: base / t, Paper: paper[p],
		})
	}
	best, err := tail(pipeline.Assignment{Det: accel.GPU, Tra: accel.ASIC, Loc: accel.ASIC}, opts.Seed+9)
	if err != nil {
		return nil, err
	}
	res.BestMixedTail = best
	return res, nil
}
