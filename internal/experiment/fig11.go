package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/accel"
	"adsim/internal/constraint"
	"adsim/internal/pipeline"
)

func init() { register("fig11", runFig11) }

// Fig11Row is one platform-assignment configuration's end-to-end latency.
type Fig11Row struct {
	Assignment pipeline.Assignment
	Mean, Tail float64 // ms
	MeetsTail  bool    // tail ≤ 100 ms
	MeetsMean  bool    // mean ≤ 100 ms (the misleading metric)
}

// Fig11Result reproduces Figure 11: end-to-end mean and 99.99th-percentile
// latency across accelerator configurations, including the paper's
// observations that (a) some configurations pass on mean latency but fail
// on tail latency, and (b) acceleration reduces the CPU baseline's 9.1 s
// tail to 16.1 ms.
type Fig11Result struct {
	Rows []Fig11Row
}

func (Fig11Result) ID() string { return "fig11" }

func (r Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString(header("fig11", "End-to-end latency across configurations (ms)"))
	fmt.Fprintf(&b, "%-18s %12s %12s %8s %8s\n",
		"DET/TRA/LOC", "Mean", "P99.99", "mean<=100", "tail<=100")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %12.1f %12.1f %8v %8v\n",
			row.Assignment.Short(), row.Mean, row.Tail, row.MeetsMean, row.MeetsTail)
	}
	b.WriteString("\nConfigurations passing on mean but failing on tail demonstrate why tail\n")
	b.WriteString("latency must be the evaluation metric (the paper's Finding 2/4).\n")
	return b.String()
}

// MeanPassTailFail counts configurations that pass on mean latency but fail
// the tail constraint — the paper's headline predictability observation.
func (r Fig11Result) MeanPassTailFail() int {
	n := 0
	for _, row := range r.Rows {
		if row.MeetsMean && !row.MeetsTail {
			n++
		}
	}
	return n
}

func runFig11(opts Options) (Result, error) {
	m := accel.NewModel()
	var rows []Fig11Row
	for i, a := range figureConfigs() {
		sim, err := pipeline.Simulate(m, pipeline.SimConfig{
			Assignment: a,
			Frames:     opts.Frames,
			Seed:       opts.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig11Row{
			Assignment: a,
			Mean:       sim.E2E.Mean(),
			Tail:       sim.E2E.P9999(),
			MeetsMean:  sim.E2E.Mean() <= constraint.MaxTailLatencyMs,
			MeetsTail:  sim.E2E.P9999() <= constraint.MaxTailLatencyMs,
		})
	}
	return Fig11Result{Rows: rows}, nil
}
