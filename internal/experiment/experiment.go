// Package experiment contains one driver per table and figure of the
// paper's evaluation. Each driver runs the corresponding workload against
// the reproduction's models or native engines and renders the same rows or
// series the paper reports, so `adbench -experiment <id>` regenerates any
// single result and `-experiment all` regenerates the full evaluation.
//
// EXPERIMENTS.md records paper-vs-measured values for every driver.
package experiment

import (
	"fmt"
	"sort"
	"strings"

	"adsim/internal/accel"
	"adsim/internal/pipeline"
)

// Options tune experiment execution.
type Options struct {
	// Frames is the number of simulated frames per configuration.
	Frames int
	// Seed drives all stochastic elements.
	Seed int64
	// NativeFrames is the number of natively-executed frames for the
	// instrumentation experiments (Fig 7).
	NativeFrames int
}

// DefaultOptions returns the standard experiment sizing: enough frames to
// resolve the 99.99th percentile with headroom.
func DefaultOptions() Options {
	return Options{Frames: 40000, Seed: 1, NativeFrames: 12}
}

func (o *Options) normalize() {
	if o.Frames <= 0 {
		o.Frames = 40000
	}
	if o.NativeFrames <= 0 {
		o.NativeFrames = 12
	}
}

// Result is a runnable experiment's rendered output.
type Result interface {
	// ID returns the experiment identifier ("fig10", "table2", ...).
	ID() string
	// Render returns the human-readable reproduction of the table/figure.
	Render() string
}

// Runner executes one experiment.
type Runner func(Options) (Result, error)

// registry maps experiment IDs to runners, populated by each driver file.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs lists all registered experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, opts Options) (Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	opts.normalize()
	return r(opts)
}

// RunAll executes every experiment in ID order.
func RunAll(opts Options) ([]Result, error) {
	opts.normalize()
	var out []Result
	for _, id := range IDs() {
		res, err := registry[id](opts)
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", id, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// figureConfigs is the platform-assignment set plotted in Figures 11–13:
// DET and TRA share a platform (they are the paper's paired DNN engines)
// crossed with every LOC platform, plus the best mixed configuration the
// paper highlights (DET on GPU, TRA and LOC on ASIC → 16.1 ms tail).
func figureConfigs() []pipeline.Assignment {
	var out []pipeline.Assignment
	for _, dnnP := range accel.Platforms() {
		for _, locP := range accel.Platforms() {
			out = append(out, pipeline.Assignment{Det: dnnP, Tra: dnnP, Loc: locP})
		}
	}
	out = append(out, pipeline.Assignment{Det: accel.GPU, Tra: accel.ASIC, Loc: accel.ASIC})
	return out
}

// header renders an experiment banner.
func header(id, title string) string {
	line := strings.Repeat("=", 72)
	return fmt.Sprintf("%s\n%s — %s\n%s\n", line, strings.ToUpper(id), title, line)
}
