package experiment

import (
	"math"
	"strings"
	"testing"

	"adsim/internal/accel"
	"adsim/internal/constraint"
	"adsim/internal/pipeline"
)

// fastOpts keeps unit-test runtime modest while still resolving tails.
func fastOpts() Options {
	return Options{Frames: 40000, Seed: 1, NativeFrames: 8}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablate-cameras", "ablate-cooling", "ablate-noise", "ablate-objects", "ablate-reloc",
		"accuracy", "energy", "fig10", "fig11", "fig12", "fig13", "fig2", "fig6", "fig7",
		"headline", "platform-analysis", "quantized", "roofline", "scenarios", "seeds", "storage", "table1", "table2", "table3", "tail"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry %v != %v", got, want)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", fastOpts()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTables(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3"} {
		res, err := Run(id, fastOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.ID() != id {
			t.Errorf("%s: wrong ID %q", id, res.ID())
		}
		if res.Render() == "" {
			t.Errorf("%s: empty render", id)
		}
	}
	// Spot-check table contents.
	r1, _ := Run("table1", fastOpts())
	if !strings.Contains(r1.Render(), "Waymo") {
		t.Error("table1 missing Waymo")
	}
	r2, _ := Run("table2", fastOpts())
	if !strings.Contains(r2.Render(), "Titan X") {
		t.Error("table2 missing the GPU")
	}
	r3, _ := Run("table3", fastOpts())
	if !strings.Contains(r3.Render(), "21.97 mW") {
		t.Error("table3 missing the FE ASIC power")
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := Run("fig2", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	f := res.(Fig2Result)
	if len(f.Rows) != 3 {
		t.Fatalf("fig2 rows = %d", len(f.Rows))
	}
	threeGPU := f.Rows[2]
	// Paper: 1 kW compute alone → ~6%; aggregate → ~11.5% ("almost
	// doubled").
	if math.Abs(threeGPU.ComputeRangePct-6.25) > 1 {
		t.Errorf("CPU+3GPUs compute range reduction = %.1f%%, want ~6", threeGPU.ComputeRangePct)
	}
	if math.Abs(threeGPU.SystemRangePct-11.5) > 1 {
		t.Errorf("CPU+3GPUs system range reduction = %.1f%%, want ~11.5", threeGPU.SystemRangePct)
	}
	for _, row := range f.Rows {
		if row.SystemRangePct < 1.7*row.ComputeRangePct {
			t.Errorf("%s: aggregate %.1f%% should nearly double compute-alone %.1f%%",
				row.Config, row.SystemRangePct, row.ComputeRangePct)
		}
	}
	// Ordering: FPGA < GPU < 3GPUs.
	if !(f.Rows[0].SystemW < f.Rows[1].SystemW && f.Rows[1].SystemW < f.Rows[2].SystemW) {
		t.Error("fig2 power ordering broken")
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Run("fig6", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	f := res.(Fig6Result)
	if len(f.Rows) != 5 {
		t.Fatalf("fig6 rows = %d", len(f.Rows))
	}
	byName := map[string]Fig6Row{}
	for _, row := range f.Rows {
		byName[row.Component] = row
	}
	// The three bottlenecks each exceed 100 ms on CPU; fusion/motplan are
	// sub-millisecond.
	for _, name := range []string{"DET", "TRA", "LOC"} {
		if byName[name].P9999 < constraint.MaxTailLatencyMs {
			t.Errorf("%s tail %.1f should exceed 100 ms on CPU", name, byName[name].P9999)
		}
	}
	if byName["FUSION"].Mean > 1 || byName["MOTPLAN"].Mean > 2 {
		t.Error("fusion/motplan should be sub-millisecond-scale")
	}
	// Measured values track the paper's calibration points.
	for _, name := range []string{"DET", "TRA", "LOC"} {
		row := byName[name]
		if math.Abs(row.Mean-row.PaperMean)/row.PaperMean > 0.08 {
			t.Errorf("%s mean %.1f vs paper %.1f", name, row.Mean, row.PaperMean)
		}
		if math.Abs(row.P9999-row.PaperTail)/row.PaperTail > 0.15 {
			t.Errorf("%s tail %.1f vs paper %.1f", name, row.P9999, row.PaperTail)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := Run("fig7", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	f := res.(Fig7Result)
	if len(f.Rows) != 3 {
		t.Fatalf("fig7 rows = %d", len(f.Rows))
	}
	for _, row := range f.Rows {
		// The reproduced claim: the hot kernel dominates each engine.
		if row.HotShare < 0.5 {
			t.Errorf("%s %s share = %.2f; kernel should dominate", row.Engine, row.HotLabel, row.HotShare)
		}
		if row.HotShare > 1 {
			t.Errorf("%s share %.2f > 1", row.Engine, row.HotShare)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Run("fig10", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	f := res.(Fig10Result)
	if len(f.Cells) != 12 {
		t.Fatalf("fig10 cells = %d", len(f.Cells))
	}
	for _, c := range f.Cells {
		if math.Abs(c.Mean-c.PaperMean)/c.PaperMean > 0.08 {
			t.Errorf("%v/%v mean %.1f vs paper %.1f", c.Platform, c.Engine, c.Mean, c.PaperMean)
		}
		if math.Abs(c.Tail-c.PaperTail)/c.PaperTail > 0.15 {
			t.Errorf("%v/%v tail %.1f vs paper %.1f", c.Platform, c.Engine, c.Tail, c.PaperTail)
		}
	}
	// Finding 1 shape: GPU beats CPU by orders of magnitude on DET/TRA;
	// FPGA DET/TRA still miss the 100 ms constraint.
	if f.cell(accel.GPU, accel.DET).Mean > f.cell(accel.CPU, accel.DET).Mean/100 {
		t.Error("GPU DET should be >100x faster than CPU")
	}
	if f.cell(accel.FPGA, accel.DET).Mean < 100 || f.cell(accel.FPGA, accel.TRA).Mean < 100 {
		t.Error("FPGA DET/TRA should exceed 100 ms (the paper's DSP-count finding)")
	}
}

func TestFig11Shape(t *testing.T) {
	res, err := Run("fig11", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	f := res.(Fig11Result)
	if len(f.Rows) != 17 {
		t.Fatalf("fig11 rows = %d, want 17", len(f.Rows))
	}
	// The paper's observation: some configs pass on mean yet fail on tail
	// (e.g. DET/TRA on GPU with LOC on CPU).
	if f.MeanPassTailFail() == 0 {
		t.Error("no mean-pass/tail-fail configurations; predictability finding lost")
	}
	// CPU-only is seconds; the best config is ~16 ms.
	var cpuRow, bestRow Fig11Row
	for _, row := range f.Rows {
		if row.Assignment == pipeline.Uniform(accel.CPU) {
			cpuRow = row
		}
		if row.Assignment == (pipeline.Assignment{Det: accel.GPU, Tra: accel.ASIC, Loc: accel.ASIC}) {
			bestRow = row
		}
	}
	if math.Abs(cpuRow.Mean-7950) > 300 || math.Abs(cpuRow.Tail-9100) > 500 {
		t.Errorf("CPU row = %.0f/%.0f, want ~7950/~9100", cpuRow.Mean, cpuRow.Tail)
	}
	if math.Abs(bestRow.Tail-16.1) > 2 {
		t.Errorf("best config tail = %.1f, want ~16.1", bestRow.Tail)
	}
	if !bestRow.MeetsTail {
		t.Error("best config should meet the tail constraint")
	}
}

func TestFig12Shape(t *testing.T) {
	res, err := Run("fig12", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	f := res.(Fig12Result)
	allGPU := f.Row(pipeline.Uniform(accel.GPU))
	allASIC := f.Row(pipeline.Uniform(accel.ASIC))
	allFPGA := f.Row(pipeline.Uniform(accel.FPGA))
	// Paper: GPU-everything cuts range by up to ~12%; ASICs keep it low
	// (~2%); GPUs draw >1 kW end-to-end.
	if allGPU.RangePct < 10 || allGPU.RangePct > 16 {
		t.Errorf("all-GPU range reduction = %.1f%%, want 10-16", allGPU.RangePct)
	}
	if allASIC.RangePct > 5 {
		t.Errorf("all-ASIC range reduction = %.1f%%, want <5", allASIC.RangePct)
	}
	if allGPU.SystemW < 1000 {
		t.Errorf("all-GPU system power = %.0f W, want >1000", allGPU.SystemW)
	}
	if !(allASIC.RangePct < allFPGA.RangePct && allFPGA.RangePct < allGPU.RangePct) {
		t.Error("range-reduction ordering ASIC < FPGA < GPU broken")
	}
}

func TestFig13Shape(t *testing.T) {
	opts := fastOpts()
	opts.Frames = 40000
	res, err := Run("fig13", opts)
	if err != nil {
		t.Fatal(err)
	}
	f := res.(Fig13Result)
	if len(f.Resolutions) != 5 {
		t.Fatalf("fig13 resolutions = %d", len(f.Resolutions))
	}
	// Paper: some configurations meet the constraint at FHD; none at QHD.
	fhdIdx, qhdIdx := 3, 4
	if !f.MeetsAt(fhdIdx) {
		t.Error("no configuration meets 100 ms at FHD; paper says some do")
	}
	if f.MeetsAt(qhdIdx) {
		t.Error("a configuration meets 100 ms at QHD; paper says none can")
	}
	// Latency is monotone in resolution for every series.
	for _, s := range f.Series {
		for i := 1; i < len(s.TailMs); i++ {
			if s.TailMs[i] < s.TailMs[i-1]*0.95 {
				t.Errorf("%s: tail not monotone across resolutions: %v", s.Assignment.Short(), s.TailMs)
			}
		}
	}
}

func TestHeadlineShape(t *testing.T) {
	res, err := Run("headline", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	h := res.(HeadlineResult)
	for _, row := range h.Rows {
		tol := 0.12 * row.Paper
		if math.Abs(row.Reduction-row.Paper) > tol {
			t.Errorf("%v reduction = %.1fx, paper %.0fx", row.Platform, row.Reduction, row.Paper)
		}
	}
	if math.Abs(h.BestMixedTail-16.1) > 2 {
		t.Errorf("best mixed tail = %.1f, want ~16.1", h.BestMixedTail)
	}
}

func TestAllRendersNonEmpty(t *testing.T) {
	results, err := RunAll(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("RunAll returned %d results for %d experiments", len(results), len(IDs()))
	}
	for _, r := range results {
		if r.Render() == "" {
			t.Errorf("%s: empty render", r.ID())
		}
	}
}

func TestAblateNoiseShape(t *testing.T) {
	res, err := Run("ablate-noise", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	a := res.(AblateNoiseResult)
	// Shared noise must land near the component-tail sum; independent
	// noise must under-shoot it.
	if math.Abs(a.SharedTailMs-a.ComponentTailSum)/a.ComponentTailSum > 0.05 {
		t.Errorf("shared tail %.0f should approximate component sum %.0f",
			a.SharedTailMs, a.ComponentTailSum)
	}
	if a.IndependentTailMs >= a.SharedTailMs {
		t.Errorf("independent tail %.0f should undershoot shared %.0f",
			a.IndependentTailMs, a.SharedTailMs)
	}
}

func TestAblateRelocShape(t *testing.T) {
	res, err := Run("ablate-reloc", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	a := res.(AblateRelocResult)
	if len(a.Rows) != 4 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	never, frequent := a.Rows[0], a.Rows[3]
	// Means stay within a few ms of each other; tails diverge hugely.
	if math.Abs(frequent.MeanMs-never.MeanMs) > 5 {
		t.Errorf("means diverged: %.1f vs %.1f", never.MeanMs, frequent.MeanMs)
	}
	if frequent.TailMs < 3*never.TailMs {
		t.Errorf("reloc tail %.1f should dwarf no-reloc tail %.1f",
			frequent.TailMs, never.TailMs)
	}
	// Any reloc rate above 1/10000 pins the tail at the wide-search cost.
	if math.Abs(a.Rows[1].TailMs-a.Rows[3].TailMs) > 1 {
		t.Error("tail should be rate-insensitive once spikes clear the quantile")
	}
}

func TestAblateCoolingShape(t *testing.T) {
	res, err := Run("ablate-cooling", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	a := res.(AblateCoolingResult)
	for _, row := range a.Rows {
		if row.Magnification < 1.5 || row.Magnification > 2.0 {
			t.Errorf("%s: cooling magnification %.2f outside [1.5,2.0]",
				row.Assignment.Short(), row.Magnification)
		}
	}
}

func TestStorageShape(t *testing.T) {
	res, err := Run("storage", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	st := res.(StorageResult)
	if st.Keyframes == 0 || st.MapBytes == 0 {
		t.Fatal("empty survey")
	}
	// The from-scratch extrapolation must land within an order of
	// magnitude of the paper's 41 TB.
	if st.USExtrapolation < st.PaperTB/10 || st.USExtrapolation > st.PaperTB*10 {
		t.Errorf("US extrapolation %.1f TB not within 10x of the paper's %.0f TB",
			st.USExtrapolation, st.PaperTB)
	}
}

func TestPlatformAnalysisShape(t *testing.T) {
	res, err := Run("platform-analysis", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	pa := res.(PlatformAnalysisResult)
	if len(pa.Rows) != 12 {
		t.Fatalf("rows = %d", len(pa.Rows))
	}
	get := func(p accel.Platform, e accel.Engine) PlatformAnalysisRow {
		for _, r := range pa.Rows {
			if r.Platform == p && r.Engine == e {
				return r
			}
		}
		t.Fatalf("missing row %v/%v", p, e)
		return PlatformAnalysisRow{}
	}
	// GPU DET efficiency in the plausible cuDNN band.
	if eff := get(accel.GPU, accel.DET).Efficiency; eff < 0.1 || eff > 0.6 {
		t.Errorf("GPU DET implied efficiency %.2f outside [0.1,0.6]", eff)
	}
	// CPU efficiency is very low (the paper's framework overheads).
	if eff := get(accel.CPU, accel.DET).Efficiency; eff > 0.05 {
		t.Errorf("CPU DET implied efficiency %.3f too high", eff)
	}
	// FPGA DET is DSP-bound below peak.
	if eff := get(accel.FPGA, accel.DET).Efficiency; eff >= 1 {
		t.Errorf("FPGA DET efficiency %.2f should be <1", eff)
	}
	// The extrapolated TRA ASIC implies multiple EIE-grade units.
	if eff := get(accel.ASIC, accel.TRA).Efficiency; eff <= 1 {
		t.Errorf("ASIC TRA implied units %.2f should exceed 1 (extrapolated design)", eff)
	}
}

func TestRooflineShape(t *testing.T) {
	res, err := Run("roofline", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := res.(RooflineResult)
	if len(r.Summaries) != 12 {
		t.Fatalf("summaries = %d, want 3 networks x 4 platforms", len(r.Summaries))
	}
	find := func(net string, p accel.Platform) accel.NetworkSummary {
		for _, s := range r.Summaries {
			if s.Network == net && s.Platform == p {
				return s
			}
		}
		t.Fatalf("missing %s/%v", net, p)
		return accel.NetworkSummary{}
	}
	// YOLOv2's conv stack is compute-dominated on the GPU.
	if share := find("yolov2", accel.GPU).MemoryBoundShare(); share > 0.3 {
		t.Errorf("YOLOv2 on GPU %.0f%% memory-bound; conv should be compute-bound", 100*share)
	}
	// GOTURN's FC head is memory-bound everywhere general-purpose.
	for _, p := range []accel.Platform{accel.CPU, accel.GPU, accel.FPGA} {
		if share := find("goturn-head", p).MemoryBoundShare(); share < 0.9 {
			t.Errorf("GOTURN head on %v only %.0f%% memory-bound", p, 100*share)
		}
	}
	// The FPGA, with its 6.4 GB/s link, is the most memory-bound platform
	// for YOLOv2.
	if find("yolov2", accel.FPGA).MemoryBoundShare() <= find("yolov2", accel.GPU).MemoryBoundShare() {
		t.Error("FPGA should be more memory-bound than GPU on YOLOv2")
	}
}

func TestAblateCamerasShape(t *testing.T) {
	res, err := Run("ablate-cameras", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	a := res.(AblateCamerasResult)
	if len(a.Rows) != 16 {
		t.Fatalf("rows = %d, want 4 configs x 4 camera counts", len(a.Rows))
	}
	find := func(asn pipeline.Assignment, cams int) AblateCamerasRow {
		for _, r := range a.Rows {
			if r.Assignment == asn && r.Cameras == cams {
				return r
			}
		}
		t.Fatalf("missing row %v/%d", asn.Short(), cams)
		return AblateCamerasRow{}
	}
	cpu := pipeline.Assignment{Det: accel.CPU, Tra: accel.CPU, Loc: accel.ASIC}
	asic := pipeline.Uniform(accel.ASIC)
	// CPU-jitter tail inflates with camera count; ASIC pays nothing.
	if find(cpu, 8).InflationPct < 2 {
		t.Errorf("CPU 8-camera inflation %.1f%% too small", find(cpu, 8).InflationPct)
	}
	if abs := find(asic, 8).InflationPct; abs > 0.5 || abs < -0.5 {
		t.Errorf("ASIC 8-camera inflation %.1f%% should be ~0", abs)
	}
	// Inflation grows with camera count on the jittery platform.
	if find(cpu, 8).TailMs < find(cpu, 2).TailMs {
		t.Error("CPU tail should grow with camera count")
	}
}

func TestEnergyShape(t *testing.T) {
	res, err := Run("energy", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	en := res.(EnergyResult)
	if len(en.Rows) != 12 {
		t.Fatalf("rows = %d", len(en.Rows))
	}
	j := func(p accel.Platform, e accel.Engine) float64 { return en.joules(p, e) }
	// The crossover the experiment exists to show: GPU beats the slow CNN
	// ASIC on DET energy, while the TRA/LOC ASICs win by large factors.
	if j(accel.GPU, accel.DET) >= j(accel.ASIC, accel.DET) {
		t.Errorf("GPU DET energy %.3f should beat ASIC %.3f", j(accel.GPU, accel.DET), j(accel.ASIC, accel.DET))
	}
	if j(accel.ASIC, accel.TRA)*10 > j(accel.GPU, accel.TRA) {
		t.Error("TRA ASIC should win energy by >10x")
	}
	if j(accel.ASIC, accel.LOC)*100 > j(accel.GPU, accel.LOC) {
		t.Error("LOC ASIC should win energy by >100x")
	}
	// CPUs lose everywhere.
	for _, e := range accel.Engines() {
		if j(accel.CPU, e) < j(accel.GPU, e) {
			t.Errorf("CPU should lose energy on %v", e)
		}
	}
}

func TestAblateObjectsShape(t *testing.T) {
	res, err := Run("ablate-objects", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	a := res.(AblateObjectsResult)
	if len(a.Rows) != 15 {
		t.Fatalf("rows = %d, want 3 configs x 5 counts", len(a.Rows))
	}
	gpuTra := pipeline.Assignment{Det: accel.GPU, Tra: accel.GPU, Loc: accel.ASIC}
	asicTra := pipeline.Assignment{Det: accel.GPU, Tra: accel.ASIC, Loc: accel.ASIC}
	// The FC ASIC sustains strictly more tracked objects under the
	// deadline than the GPU tracker.
	if a.MaxObjectsUnderDeadline(asicTra) <= a.MaxObjectsUnderDeadline(gpuTra) {
		t.Errorf("ASIC TRA sustains %d objects, GPU TRA %d — ASIC should win",
			a.MaxObjectsUnderDeadline(asicTra), a.MaxObjectsUnderDeadline(gpuTra))
	}
	// GPU tracking fails the deadline before 32 objects.
	if a.MaxObjectsUnderDeadline(gpuTra) >= 32 {
		t.Error("GPU TRA should blow the deadline within the sweep")
	}
	// Tails grow monotonically with object count.
	for _, cfgA := range []pipeline.Assignment{gpuTra, asicTra} {
		var prev float64
		for _, row := range a.Rows {
			if row.Assignment != cfgA {
				continue
			}
			if row.TailMs < prev*0.98 {
				t.Errorf("%s: tail not monotone in objects", cfgA.Short())
			}
			prev = row.TailMs
		}
	}
}

func TestAccuracyShape(t *testing.T) {
	res, err := Run("accuracy", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	acc := res.(AccuracyResult)
	if len(acc.Rows) != 5 {
		t.Fatalf("rows = %d", len(acc.Rows))
	}
	first, last := acc.Rows[0], acc.Rows[len(acc.Rows)-1]
	// Recall grows with resolution until the scenario saturates (the
	// Fig 13 premise), and never regresses.
	if last.Recall <= first.Recall {
		t.Errorf("QHD recall %.2f should exceed HHD %.2f", last.Recall, first.Recall)
	}
	for i := 1; i < len(acc.Rows); i++ {
		if acc.Rows[i].Recall < acc.Rows[i-1].Recall-1e-9 {
			t.Errorf("recall regressed at %s", acc.Rows[i].Res.Name)
		}
	}
	if last.MaxRangeM < first.MaxRangeM {
		t.Errorf("QHD range %.1f m should not trail HHD %.1f m", last.MaxRangeM, first.MaxRangeM)
	}
	for _, row := range acc.Rows {
		if row.Truths == 0 {
			t.Fatalf("%s: no ground truth evaluated", row.Res.Name)
		}
		if row.Recall < 0.4 {
			t.Errorf("%s: recall %.2f implausibly low", row.Res.Name, row.Recall)
		}
	}
}

func TestSeedsShape(t *testing.T) {
	res, err := Run("seeds", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	sd := res.(SeedsResult)
	if len(sd.Rows) != 4 || len(sd.Seeds) != 5 {
		t.Fatalf("rows=%d seeds=%d", len(sd.Rows), len(sd.Seeds))
	}
	for _, row := range sd.Rows {
		if len(row.TailsMs) != 5 {
			t.Fatalf("%s: %d tails", row.Assignment.Short(), len(row.TailsMs))
		}
		if row.MinMs <= 0 || row.MaxMs < row.MinMs {
			t.Fatalf("%s: bad min/max %.1f/%.1f", row.Assignment.Short(), row.MinMs, row.MaxMs)
		}
		// The conclusions must be seed-robust: spread stays in single
		// digits of percent.
		if row.SpreadPct > 10 {
			t.Errorf("%s: seed spread %.1f%% too large", row.Assignment.Short(), row.SpreadPct)
		}
	}
	// Fixed-latency ASIC tails are exactly seed-invariant... except for
	// the sub-ms fusion/motplan jitter; allow a tiny spread.
	for _, row := range sd.Rows {
		if row.Assignment == pipeline.Uniform(accel.ASIC) && row.SpreadPct > 1 {
			t.Errorf("ASIC seed spread %.2f%% should be ~0", row.SpreadPct)
		}
	}
}

func TestQuantizedExperiment(t *testing.T) {
	res, err := Run("quantized", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	q, ok := res.(QuantizedResult)
	if !ok {
		t.Fatalf("result type %T", res)
	}
	if len(q.Rows) != 2 {
		t.Fatalf("rows = %d, want DET and TRA", len(q.Rows))
	}
	for _, row := range q.Rows {
		if row.FloatMs <= 0 || row.Int8Ms <= 0 {
			t.Errorf("%s: non-positive native timings %+v", row.Engine, row)
		}
		// The analytic model's ASIC must beat its CPU by orders of
		// magnitude — that gap is the experiment's point of comparison.
		if row.ASICMs <= 0 || row.CPUMs/row.ASICMs < 10 {
			t.Errorf("%s: model gap %v/%v too small", row.Engine, row.CPUMs, row.ASICMs)
		}
	}
	out := res.Render()
	for _, want := range []string{"Engine", "DET", "TRA", "model-ASIC-ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTailStudy(t *testing.T) {
	// DNN-free sizing: the injected stalls alone create the queueing the
	// scheduler must defeat. Detection stays functional, so a frame sheds
	// detections only when the wall-mode deadline race declares it missed —
	// rare at this sizing's 3ms margin, but not impossible, so detection
	// rates are checked for sanity rather than equality.
	res, err := runTailStudy(tailParams{Frames: 160, DNN: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID() != "tail" {
		t.Fatalf("ID = %q", res.ID())
	}
	base, sched := res.Baseline, res.Scheduled
	if base.MinWindow != tailCeiling || base.MaxRung != 0 || base.Anytime != 0 {
		t.Errorf("static run touched scheduler state: %+v", base)
	}
	if sched.MinWindow != 1 {
		t.Errorf("scheduled MinWindow = %d, want 1 (conservative start)", sched.MinWindow)
	}
	if sched.MaxRung == 0 {
		t.Errorf("controller never descended the resolution ladder under sustained stalls")
	}
	if base.MeanDets <= 0 || sched.MeanDets <= 0 {
		t.Errorf("degenerate detection rates: %.3f vs %.3f dets/frame",
			base.MeanDets, sched.MeanDets)
	}
	// Wall-clock verdicts widen under the race detector's slowdown; the
	// structural assertions above hold regardless.
	// At this sizing the accuracy proxy has no systematic edge — both runs
	// differ only by deadline-race noise — so the strict Pass() ordering is
	// left to the full study; here the tail must improve, nothing may cross
	// the constraint, and accuracy must stay within noise.
	if !raceEnabled {
		if sched.HardMisses != 0 {
			t.Errorf("scheduled run delivered %d frames past the constraint", sched.HardMisses)
		}
		if sched.TailMs >= base.TailMs {
			t.Errorf("tail not reduced:\n%s", res.Render())
		}
		// One-sided: CPU contention from parallel tests makes the STATIC
		// baseline shed more (deeper window, more deadline races), never
		// the scheduled run — so only a scheduled-run deficit is a defect.
		if sched.MeanDets < 0.95*base.MeanDets {
			t.Errorf("accuracy proxy regressed: %.3f vs %.3f", sched.MeanDets, base.MeanDets)
		}
	}
	out := res.Render()
	for _, want := range []string{"static", "adaptive", "tail-study", "p99.99-ms", "hard-miss"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestScenariosStudy(t *testing.T) {
	// Small per-program sizing: the sweep's value here is structural — every
	// library program compiles, runs, scores and replays — not the latency
	// numbers, which need full-size runs to mean anything.
	res, err := runScenariosStudy(scenariosParams{Frames: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID() != "scenarios" {
		t.Fatalf("ID = %q", res.ID())
	}
	if len(res.Runs) < 6 {
		t.Fatalf("swept %d programs, want the whole library (>= 6)", len(res.Runs))
	}
	degraded := 0
	for _, run := range res.Runs {
		if run.Report.Frames != 25 || run.Report.Errors != 0 {
			t.Errorf("%s: frames=%d errors=%d", run.Report.Scenario, run.Report.Frames, run.Report.Errors)
		}
		if !run.ReplayOK {
			t.Errorf("%s: replay diverged", run.Report.Scenario)
		}
		degraded += run.Report.Degraded
	}
	if degraded == 0 {
		t.Error("no program exercised the degraded path; the fault-bearing library programs are inert")
	}
	if !res.Pass() {
		t.Errorf("structural sweep fails its own bar:\n%s", res.Render())
	}
	out := res.Render()
	for _, want := range []string{"rush-hour", "cut-in", "blackout", "loop-closure", "mixed-stress", "replay IDENTICAL", "scenario-sweep"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
