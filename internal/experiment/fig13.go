package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/accel"
	"adsim/internal/constraint"
	"adsim/internal/pipeline"
)

func init() { register("fig13", runFig13) }

// Fig13Series is one configuration's end-to-end tail latency across the
// resolution sweep.
type Fig13Series struct {
	Assignment pipeline.Assignment
	TailMs     []float64 // aligned with Resolutions
}

// Fig13Result reproduces Figure 13: performance scalability with camera
// resolution. Some ASIC/GPU configurations still meet the 100 ms constraint
// at Full HD; none sustain Quad HD.
type Fig13Result struct {
	Resolutions []accel.Resolution
	Series      []Fig13Series
}

func (Fig13Result) ID() string { return "fig13" }

func (r Fig13Result) Render() string {
	var b strings.Builder
	b.WriteString(header("fig13", "End-to-end tail latency vs. camera resolution (ms)"))
	fmt.Fprintf(&b, "%-18s", "DET/TRA/LOC")
	for _, res := range r.Resolutions {
		fmt.Fprintf(&b, " %12s", res.Name)
	}
	b.WriteString("\n")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%-18s", s.Assignment.Short())
		for _, v := range s.TailMs {
			mark := " "
			if v <= constraint.MaxTailLatencyMs {
				mark = "*"
			}
			fmt.Fprintf(&b, " %11.1f%s", v, mark)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "\n(* = meets the %.0f ms constraint. CPU rows omitted: off-scale.)\n",
		constraint.MaxTailLatencyMs)
	return b.String()
}

// MeetsAt reports whether any configuration meets the constraint at the
// given resolution index.
func (r Fig13Result) MeetsAt(resIdx int) bool {
	for _, s := range r.Series {
		if s.TailMs[resIdx] <= constraint.MaxTailLatencyMs {
			return true
		}
	}
	return false
}

func runFig13(opts Options) (Result, error) {
	m := accel.NewModel()
	resolutions := accel.SweepResolutions()
	// Sweep the accelerated configurations (CPU anywhere is off-scale).
	var configs []pipeline.Assignment
	for _, a := range figureConfigs() {
		if a.Det == accel.CPU || a.Tra == accel.CPU || a.Loc == accel.CPU {
			continue
		}
		configs = append(configs, a)
	}
	var series []Fig13Series
	// Fewer frames per point: 5 resolutions x many configs; the tail here
	// is jitter/spike driven and converges quickly.
	frames := opts.Frames / 2
	if frames < 20000 {
		frames = 20000
	}
	for i, a := range configs {
		s := Fig13Series{Assignment: a}
		for _, res := range resolutions {
			sim, err := pipeline.Simulate(m, pipeline.SimConfig{
				Assignment: a,
				Res:        res,
				Frames:     frames,
				Seed:       opts.Seed + int64(i),
			})
			if err != nil {
				return nil, err
			}
			s.TailMs = append(s.TailMs, sim.E2E.P9999())
		}
		series = append(series, s)
	}
	return Fig13Result{Resolutions: resolutions, Series: series}, nil
}
